package dispatch

// DebugTask is one live task's scheduling-relevant state, exported for
// the replay-equivalence tests.
type DebugTask struct {
	ID       uint64
	Key      string
	Priority int
	Attempts int
	State    string // "pending", "assigned" or "local"
}

// DebugState is a point-in-time image of the coordinator's scheduling
// state: the live task table plus the queue structure (stale entries
// skipped, exactly as assignment would skip them). Tests only.
type DebugState struct {
	NextTask   uint64
	NextWorker uint64
	// Requeued lists live pending tasks at the head of the line, in
	// serving order; Buckets lists the remaining pending tasks per
	// priority tier in serving order.
	Requeued []uint64
	Buckets  map[int][]uint64
	Tasks    []DebugTask
}

func (c *Coordinator) DebugSnapshot() DebugState {
	c.mu.Lock()
	defer c.mu.Unlock()
	st := DebugState{
		NextTask:   c.nextTask,
		NextWorker: c.nextWorker,
		Buckets:    make(map[int][]uint64),
	}
	for _, t := range c.requeued {
		if t.state == taskPending {
			st.Requeued = append(st.Requeued, t.id)
		}
	}
	inRequeued := make(map[uint64]bool, len(st.Requeued))
	for _, id := range st.Requeued {
		inRequeued[id] = true
	}
	for _, p := range c.prios {
		for _, t := range c.queue[p] {
			if t.state == taskPending && !inRequeued[t.id] {
				st.Buckets[p] = append(st.Buckets[p], t.id)
			}
		}
	}
	for _, t := range c.tasks {
		dt := DebugTask{ID: t.id, Key: string(t.key), Priority: t.priority, Attempts: t.attempts}
		switch t.state {
		case taskPending:
			dt.State = "pending"
		case taskAssigned:
			dt.State = "assigned"
		case taskLocal:
			dt.State = "local"
		default:
			continue
		}
		st.Tasks = append(st.Tasks, dt)
	}
	for i := 1; i < len(st.Tasks); i++ {
		for j := i; j > 0 && st.Tasks[j].ID < st.Tasks[j-1].ID; j-- {
			st.Tasks[j], st.Tasks[j-1] = st.Tasks[j-1], st.Tasks[j]
		}
	}
	return st
}

// CompactNow runs the janitor's compaction check synchronously. Tests
// only.
func (c *Coordinator) CompactNow() { c.maybeCompact() }
