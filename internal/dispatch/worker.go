package dispatch

import (
	"context"
	"errors"
	"fmt"
	"math/rand/v2"
	"net/http"
	"runtime"
	"time"

	"repro/internal/sim"
	"repro/internal/sweep"
	"repro/rf/api"
	"repro/rf/client"
)

// jitter spreads a retry delay uniformly over (0, d] (full jitter), so a
// fleet of workers knocked loose by the same coordinator restart does
// not reconnect in lockstep.
func jitter(d time.Duration) time.Duration {
	if d <= 0 {
		return d
	}
	return time.Duration(1 + rand.Int64N(int64(d)))
}

// WorkerConfig configures RunWorker.
type WorkerConfig struct {
	// Coordinator is the coordinator's base URL, e.g. http://host:8090.
	Coordinator string
	// Name labels the worker in the coordinator's fleet listing.
	Name string
	// Capacity is the in-flight budget to request: how many jobs the
	// worker simulates concurrently; 0 uses GOMAXPROCS.
	Capacity int
	// Simulate executes one job; nil uses sweep.Simulate. rfserved worker
	// mode routes this through its own cached runner, so a worker's local
	// store also deduplicates.
	Simulate func(sweep.Job) sim.Result
	// SimulateBatch, when non-nil, executes a group of same-workload jobs
	// in one call, returning results in job order — the lockstep seam:
	// rfserved worker mode routes batches through its cached runner, which
	// drives them as one shared trace pass. When both hooks are nil the
	// worker batches through sweep.SimulateLockstep; when only Simulate is
	// set, every job runs through it individually.
	SimulateBatch func([]sweep.Job) []sim.Result
	// Lockstep caps how many same-workload jobs of one poll are grouped
	// into a batch: 0 uses sweep.DefaultLockstepWidth, 1 disables grouping
	// (every job simulates alone).
	Lockstep int
	// ObjectsURL advertises where this worker serves its local result
	// store over GET /v1/objects/{key} (its own rfserved base URL).
	// Empty means no advertisement: the coordinator will not route peer
	// store reads here.
	ObjectsURL string
	// Inventory reports the shard buckets (modulo the coordinator's
	// announced shard count) the worker's store currently holds, sent
	// with every poll. Nil means no advertisement.
	Inventory func(shards int) []int
	// Client issues the HTTP requests; nil uses a default client. Polls
	// are long-held by design, so no fixed Client.Timeout is set —
	// instead every exchange carries a per-request deadline derived from
	// the lease (so a black-holed connection fails in about a lease
	// rather than hanging until TCP gives up).
	Client *http.Client
	// Logf, when non-nil, receives connection lifecycle messages
	// (registrations, retried errors).
	Logf func(format string, args ...any)
}

// RunWorker registers with the coordinator and executes its jobs until
// ctx is canceled (returning ctx.Err()). Finished results are reported on
// the next poll; polls double as lease heartbeats. Transient errors are
// retried with backoff, and an expired lease (404) triggers
// re-registration — completed-but-unreported results are retained across
// both, so they are never lost to a network blip. Jobs in flight when ctx
// is canceled are abandoned; the coordinator's lease expiry requeues
// them elsewhere.
//
// All HTTP exchanges go through rf/client — the same wire implementation
// rfbatch -remote and external consumers use.
func RunWorker(ctx context.Context, cfg WorkerConfig) error {
	if cfg.Capacity <= 0 {
		cfg.Capacity = runtime.GOMAXPROCS(0)
	}
	if cfg.SimulateBatch == nil && cfg.Simulate == nil {
		cfg.SimulateBatch = sweep.SimulateLockstep
	}
	if cfg.Simulate == nil {
		cfg.Simulate = sweep.Simulate
	}
	if cfg.Lockstep == 1 {
		cfg.SimulateBatch = nil
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	opts := []client.Option{client.WithLogf(cfg.Logf)}
	if cfg.Client != nil {
		opts = append(opts, client.WithHTTPClient(cfg.Client))
	}
	w := &workerState{cfg: cfg, cl: client.New(cfg.Coordinator, opts...)}
	if err := w.register(ctx); err != nil {
		return err
	}

	// The coordinator may clamp the requested capacity; budget against
	// the granted value (refreshed on re-registration). The channel is
	// sized for the request, which the grant never exceeds.
	capacity := w.capacity
	finished := make(chan api.TaskResult, cfg.Capacity)
	inflight := 0
	var backlog []api.TaskResult // finished, not yet accepted by the coordinator
	// held inventories every lease this worker owns (simulating or in
	// backlog); polls carry it so the coordinator can requeue leases
	// that were lost in a dropped poll response.
	held := make(map[uint64]struct{})
	backoff := time.Duration(0)
	// The first poll happens immediately; afterwards the timer paces
	// heartbeats when the worker sits at capacity.
	timer := time.NewTimer(0)
	defer timer.Stop()

	for {
		select {
		case <-ctx.Done():
			return ctx.Err()
		case res := <-finished:
			inflight--
			backlog = append(backlog, res)
		case <-timer.C:
		}
		// Batch everything else already finished into the same report.
		for {
			select {
			case res := <-finished:
				inflight--
				backlog = append(backlog, res)
				continue
			default:
			}
			break
		}

		holding := make([]uint64, 0, len(held))
		for id := range held {
			holding = append(holding, id)
		}
		resp, err := w.poll(ctx, backlog, holding, capacity-inflight)
		switch {
		case ctx.Err() != nil:
			return ctx.Err()
		case err != nil:
			var ae *client.APIError
			if errors.As(err, &ae) && ae.StatusCode == http.StatusNotFound {
				// Lease expired: re-register and re-report the backlog
				// under the new identity (task ids stay valid).
				cfg.Logf("dispatch: lease expired, re-registering: %v", err)
				if err := w.register(ctx); err != nil {
					return err
				}
				capacity = w.capacity
				timer.Reset(0)
				continue
			}
			backoff = min(max(backoff*2, 100*time.Millisecond), w.heartbeat())
			delay := jitter(backoff)
			cfg.Logf("dispatch: poll failed (retrying in %v): %v", delay, err)
			timer.Reset(delay)
			continue
		}
		backoff = 0
		for _, res := range backlog {
			delete(held, res.Task)
		}
		backlog = nil
		for _, g := range groupAssignments(resp.Jobs, cfg) {
			inflight += len(g)
			for _, a := range g {
				held[a.Task] = struct{}{}
			}
			go func(g []api.Assignment) {
				for n, res := range simulateGroup(g, cfg) {
					select {
					case finished <- api.TaskResult{Task: g[n].Task, Key: g[n].Key, Result: res}:
					case <-ctx.Done():
						return
					}
				}
			}(g)
		}
		if inflight < capacity {
			// Capacity to spare: poll again immediately. The coordinator
			// long-polls when it has nothing, so this does not spin.
			timer.Reset(0)
		} else {
			timer.Reset(w.heartbeat())
		}
	}
}

// groupAssignments partitions one poll's assignments into execution
// units: lockstep batches of same-workload jobs when batching is on,
// singletons otherwise. A coordinator leases a sweep's jobs roughly in
// spec order, so a worker's poll routinely lands several configurations
// of the same benchmark — exactly what one shared trace pass absorbs.
func groupAssignments(as []api.Assignment, cfg WorkerConfig) [][]api.Assignment {
	if cfg.SimulateBatch == nil || len(as) <= 1 {
		groups := make([][]api.Assignment, len(as))
		for i := range as {
			groups[i] = as[i : i+1 : i+1]
		}
		return groups
	}
	js := make([]sweep.Job, len(as))
	for i := range as {
		js[i] = as[i].Job
	}
	width := cfg.Lockstep
	if width == 0 {
		width = sweep.DefaultLockstepWidth
	}
	idx := sweep.LockstepGroups(js, width)
	groups := make([][]api.Assignment, len(idx))
	for n, g := range idx {
		ga := make([]api.Assignment, len(g))
		for m, i := range g {
			ga[m] = as[i]
		}
		groups[n] = ga
	}
	return groups
}

// simulateGroup executes one unit, returning results in assignment order.
func simulateGroup(g []api.Assignment, cfg WorkerConfig) []sim.Result {
	if cfg.SimulateBatch == nil {
		return []sim.Result{cfg.Simulate(g[0].Job)}
	}
	js := make([]sweep.Job, len(g))
	for i := range g {
		js[i] = g[i].Job
	}
	return cfg.SimulateBatch(js)
}

// workerState is one worker's registration state over the shared client.
type workerState struct {
	cfg      WorkerConfig
	cl       *client.Client
	id       string
	capacity int // granted by the coordinator; ≤ cfg.Capacity
	leaseMS  int64
	pollMS   int64
	// shards is the coordinator's announced store shard-bucket count;
	// 0 disables inventory advertisement.
	shards int
}

// requestBound is the per-request deadline: a healthy exchange finishes
// within one long-poll hold, so a full lease plus two holds means the
// connection is dead — fail it and let the retry/re-register machinery
// take over instead of waiting for TCP to notice.
func (w *workerState) requestBound() time.Duration {
	d := time.Duration(w.leaseMS+2*w.pollMS) * time.Millisecond
	if d <= 0 {
		d = 30 * time.Second // pre-registration default
	}
	return d
}

// heartbeat is how often a busy worker polls to keep its lease: a third
// of the TTL, so two consecutive failures still fit inside a lease.
func (w *workerState) heartbeat() time.Duration {
	d := time.Duration(w.leaseMS) * time.Millisecond / 3
	if d <= 0 {
		d = time.Second
	}
	return d
}

// register acquires a worker id, retrying transient failures with
// backoff until ctx is canceled.
func (w *workerState) register(ctx context.Context) error {
	backoff := 100 * time.Millisecond
	// One timer reused across attempts: time.After in a retry loop leaks
	// a timer per attempt until it fires, which adds up over a long
	// coordinator outage.
	timer := time.NewTimer(0)
	if !timer.Stop() {
		<-timer.C
	}
	defer timer.Stop()
	for {
		rctx, cancel := context.WithTimeout(ctx, w.requestBound())
		resp, err := w.cl.RegisterWorker(rctx,
			api.RegisterRequest{Name: w.cfg.Name, Capacity: w.cfg.Capacity,
				ObjectsURL: w.cfg.ObjectsURL})
		cancel()
		if err == nil {
			w.id = resp.ID
			w.leaseMS = resp.LeaseMS
			w.pollMS = resp.PollMS
			w.shards = resp.StoreShards
			w.capacity = resp.Capacity
			if w.capacity <= 0 || w.capacity > w.cfg.Capacity {
				w.capacity = w.cfg.Capacity
			}
			w.cfg.Logf("dispatch: registered as %s (capacity %d, lease %dms)",
				resp.ID, w.capacity, resp.LeaseMS)
			return nil
		}
		var ae *client.APIError
		if errors.As(err, &ae) && ae.StatusCode == http.StatusServiceUnavailable {
			return fmt.Errorf("dispatch: coordinator rejected registration: %w", err)
		}
		delay := jitter(backoff)
		w.cfg.Logf("dispatch: register failed (retrying in %v): %v", delay, err)
		timer.Reset(delay)
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-timer.C:
		}
		backoff = min(backoff*2, 5*time.Second)
	}
}

// poll reports finished results (and the full held-lease inventory) and
// asks for up to want new jobs, bounded by requestBound on top of the
// caller's context.
func (w *workerState) poll(ctx context.Context, results []api.TaskResult, holding []uint64, want int) (*api.PollResponse, error) {
	rctx, cancel := context.WithTimeout(ctx, w.requestBound())
	defer cancel()
	req := api.PollRequest{Results: results, Holding: holding, Want: want}
	// Advertise the store inventory when the coordinator shards the
	// fleet store: each poll carries the complete current bucket set.
	if w.shards > 0 && w.cfg.Inventory != nil && w.cfg.ObjectsURL != "" {
		req.StoreShards = w.cfg.Inventory(w.shards)
	}
	return w.cl.PollWorker(rctx, w.id, req)
}
