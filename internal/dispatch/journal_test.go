// Replay-vs-live equivalence for the journaled coordinator: drive a
// dispatch history against a live coordinator, abandon it without
// shutdown (a crash flushes nothing), rebuild a second coordinator from
// the same journal, and assert the scheduling state is identical. These
// run in the short tier so CI's -race job covers the journal append and
// replay paths.
package dispatch_test

import (
	"context"
	"encoding/json"
	"net/http/httptest"
	"reflect"
	"strconv"
	"strings"
	"testing"
	"time"

	"repro/internal/dispatch"
	"repro/internal/sim"
	"repro/internal/sweep"
	"repro/internal/tenant"
	"repro/internal/wal"
	"repro/rf/api"
)

// journaledConfig is a quiet-janitor config: leases are long so nothing
// expires behind the test's back, polls return immediately.
func journaledConfig(j *wal.WAL) dispatch.Config {
	return dispatch.Config{
		LeaseTTL: time.Minute,
		PollWait: 10 * time.Millisecond,
		Fallback: fakeSim,
		Journal:  j,
	}
}

func openJournal(t *testing.T, dir string) *wal.WAL {
	t.Helper()
	j, err := wal.Open(dir, wal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return j
}

// enqueue starts one waiter per job (priority = index mod 3) and blocks
// until the coordinator has registered all of them, so task ids are
// assigned in job order.
func enqueue(t *testing.T, c *dispatch.Coordinator, jobs []sweep.Job) {
	t.Helper()
	for i, j := range jobs {
		ctx := tenant.NewContext(context.Background(),
			tenant.Admission{Tenant: "equiv", Priority: i % 3})
		job := j
		go c.SimulateContext(ctx, job)
		deadline := time.Now().Add(5 * time.Second)
		for len(c.DebugSnapshot().Tasks) < i+1 {
			if time.Now().After(deadline) {
				t.Fatalf("task %d never enqueued", i+1)
			}
			time.Sleep(time.Millisecond)
		}
	}
}

func register(t *testing.T, c *dispatch.Coordinator, capacity int) string {
	t.Helper()
	r := httptest.NewRequest("POST", "/v1/workers/register",
		strings.NewReader(`{"capacity":`+itoa(capacity)+`}`))
	w := httptest.NewRecorder()
	c.HandleRegister(w, r)
	var resp api.RegisterResponse
	decodeBody(t, w, &resp)
	if resp.ID == "" {
		t.Fatalf("registration failed: %s", w.Body)
	}
	return resp.ID
}

func poll(t *testing.T, c *dispatch.Coordinator, id string, req api.PollRequest) api.PollResponse {
	t.Helper()
	body := encodeBody(t, req)
	r := httptest.NewRequest("POST", "/v1/workers/"+id+"/poll", strings.NewReader(body))
	r.SetPathValue("id", id)
	w := httptest.NewRecorder()
	c.HandlePoll(w, r)
	var resp api.PollResponse
	decodeBody(t, w, &resp)
	return resp
}

// normalizeLive converts a live coordinator's state into what a replay
// of its journal must produce. Leases cannot survive the restart, so
// assigned tasks come back as pending in their priority bucket; bucket
// order for once-leased tasks is not part of the contract, so buckets
// compare as sorted sets. The requeued head-of-line order is exact.
func normalizeLive(st dispatch.DebugState) dispatch.DebugState {
	for i, dt := range st.Tasks {
		if dt.State == "assigned" {
			st.Tasks[i].State = "pending"
			st.Buckets[dt.Priority] = append(st.Buckets[dt.Priority], dt.ID)
		}
	}
	sortBuckets(st.Buckets)
	return st
}

func sortBuckets(buckets map[int][]uint64) {
	for _, ids := range buckets {
		for i := 1; i < len(ids); i++ {
			for j := i; j > 0 && ids[j] < ids[j-1]; j-- {
				ids[j], ids[j-1] = ids[j-1], ids[j]
			}
		}
	}
}

// history drives a representative dispatch history against c and
// returns the ids of two tasks left assigned to the first worker. The
// resulting state mixes every journaled transition: fresh pending
// tasks, leases, delivered results, reconcile-requeues, and re-leases
// of requeued work.
func history(t *testing.T, c *dispatch.Coordinator, jobs []sweep.Job) (w1 string, held []uint64) {
	t.Helper()
	enqueue(t, c, jobs)

	w1 = register(t, c, 8)
	leases := poll(t, c, w1, api.PollRequest{Want: 4}).Jobs
	if len(leases) != 4 {
		t.Fatalf("leased %d tasks, want 4", len(leases))
	}
	// Deliver two results; keep holding the other two.
	var results []api.TaskResult
	for _, a := range leases[:2] {
		results = append(results, api.TaskResult{Task: a.Task, Key: a.Key, Result: fakeSim(a.Job)})
	}
	held = []uint64{leases[2].Task, leases[3].Task}
	poll(t, c, w1, api.PollRequest{Results: results, Holding: held})

	// A second worker leases three tasks, then loses them all in a
	// reconcile (its poll response "never arrived"), then re-leases two
	// from the requeued head of the line.
	w2 := register(t, c, 4)
	if got := len(poll(t, c, w2, api.PollRequest{Want: 3}).Jobs); got != 3 {
		t.Fatalf("w2 leased %d tasks, want 3", got)
	}
	poll(t, c, w2, api.PollRequest{Holding: nil})
	if got := len(poll(t, c, w2, api.PollRequest{Want: 2}).Jobs); got != 2 {
		t.Fatalf("w2 re-leased %d tasks, want 2", got)
	}
	return w1, held
}

// TestDispatchReplayEquivalence crashes a journaled coordinator
// mid-history and asserts the replayed coordinator reconstructs the
// same scheduling state, then pins the two recovery behaviors the state
// exists for: a worker re-adopts its in-flight lease through poll
// Holding (zero duplicate simulation), and a new waiter attaches to the
// replayed task by key (no duplicate enqueue) and receives the worker's
// result under the pre-crash task id.
func TestDispatchReplayEquivalence(t *testing.T) {
	dir := t.TempDir()
	jobs := append(specJobs(t, testSpec), specJobs(t, strings.Replace(testSpec, "3000", "3001", 1))...)

	j1 := openJournal(t, dir)
	live := dispatch.NewCoordinator(journaledConfig(j1))
	_, held := history(t, live, jobs)
	want := normalizeLive(live.DebugSnapshot())
	// Crash: no coordinator Close (which would flip tasks to local and
	// journal that), no journal flush beyond what Append already wrote.
	j1.Close()

	j2 := openJournal(t, dir)
	defer j2.Close()
	re := dispatch.NewCoordinator(journaledConfig(j2))
	defer re.Close()
	got := re.DebugSnapshot()
	sortBuckets(got.Buckets)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("replayed state differs from live state:\n got %+v\nwant %+v", got, want)
	}

	// The pre-crash worker re-registers (its old id is gone) and reports
	// its live inventory: both leases must be adopted, not re-assigned.
	adopter := register(t, re, 8)
	resp := poll(t, re, adopter, api.PollRequest{Holding: held})
	if len(resp.Jobs) != 0 {
		t.Fatalf("adoption poll handed out %d duplicate leases", len(resp.Jobs))
	}
	if st := re.Stats(); st.Adopted != 2 {
		t.Fatalf("Adopted = %d, want 2", st.Adopted)
	}

	// A new waiter attaches to the adopted task by key without minting a
	// new task id...
	var adoptedJob sweep.Job
	for _, j := range jobs {
		if uint64FromKey(re, j) == held[0] {
			adoptedJob = j
		}
	}
	before := re.DebugSnapshot().NextTask
	resc := make(chan sim.Result, 1)
	go func() { resc <- re.Simulate(adoptedJob) }()
	waitAttached(t, re, before)
	// ...and the worker's eventual result resolves it.
	poll(t, re, adopter, api.PollRequest{
		Results: []api.TaskResult{{Task: held[0], Key: string(adoptedJob.Key()), Result: fakeSim(adoptedJob)}},
		Holding: held,
	})
	select {
	case res := <-resc:
		if want := fakeSim(adoptedJob); res.Cycles != want.Cycles || res.Instructions != want.Instructions {
			t.Fatalf("adopted result %+v, want %+v", res, want)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("waiter never received the adopted worker's result")
	}
	if st := re.Stats(); st.Completed == 0 {
		t.Fatal("adopted delivery not counted as completed")
	}
}

// TestDispatchJournalCompaction is the same equivalence through a
// snapshot: compact mid-history, keep going, crash, and assert the
// snapshot + tail records rebuild the same state.
func TestDispatchJournalCompaction(t *testing.T) {
	dir := t.TempDir()
	jobs := specJobs(t, testSpec)

	j1 := openJournal(t, dir)
	cfg := journaledConfig(j1)
	cfg.CompactBytes = 1 // any journaled byte triggers the janitor's compaction
	live := dispatch.NewCoordinator(cfg)
	enqueue(t, live, jobs)
	w1 := register(t, live, 4)
	leases := poll(t, live, w1, api.PollRequest{Want: 2}).Jobs
	live.CompactNow()
	if st := j1.Stats(); st.Compactions != 1 {
		t.Fatalf("Compactions = %d, want 1", st.Compactions)
	}
	// Post-snapshot history: one result delivered, one lease abandoned.
	poll(t, live, w1, api.PollRequest{
		Results: []api.TaskResult{{Task: leases[0].Task, Key: leases[0].Key, Result: fakeSim(leases[0].Job)}},
		Holding: nil,
	})
	want := normalizeLive(live.DebugSnapshot())
	j1.Close()

	j2 := openJournal(t, dir)
	defer j2.Close()
	re := dispatch.NewCoordinator(journaledConfig(j2))
	defer re.Close()
	got := re.DebugSnapshot()
	sortBuckets(got.Buckets)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("state replayed through a snapshot differs:\n got %+v\nwant %+v", got, want)
	}
	if got.NextTask != uint64(len(jobs)) {
		t.Fatalf("NextTask = %d after replay, want %d", got.NextTask, len(jobs))
	}
}

func itoa(n int) string { return strconv.Itoa(n) }

func encodeBody(t *testing.T, v any) string {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

func decodeBody(t *testing.T, w *httptest.ResponseRecorder, out any) {
	t.Helper()
	if err := json.Unmarshal(w.Body.Bytes(), out); err != nil {
		t.Fatalf("decoding %q: %v", w.Body, err)
	}
}

// uint64FromKey finds the live task id for a job via the debug surface.
func uint64FromKey(c *dispatch.Coordinator, j sweep.Job) uint64 {
	key := string(j.Key())
	for _, dt := range c.DebugSnapshot().Tasks {
		if dt.Key == key {
			return dt.ID
		}
	}
	return 0
}

// waitAttached waits until a Simulate call has attached (NextTask must
// NOT advance — attachment is the assertion — so it waits a settling
// interval and then asserts).
func waitAttached(t *testing.T, c *dispatch.Coordinator, before uint64) {
	t.Helper()
	time.Sleep(50 * time.Millisecond)
	if now := c.DebugSnapshot().NextTask; now != before {
		t.Fatalf("attaching waiter minted task %d; replayed task not found by key", now)
	}
}
