package dispatch

// Journaling and crash recovery for the Coordinator. With Config.Journal
// set, every state transition a restart must reconstruct is appended to
// the WAL as a small JSON record before the transition becomes visible,
// and NewCoordinator replays snapshot + records into a live task table.
//
// What is journaled: task enqueue (with its job, key and priority tier),
// lease grants and adoptions, requeues, the flip to local fallback, task
// completion, and the worker-id counter. What is deliberately not:
// lease *renewals* — a restarted coordinator cannot honor pre-crash
// leases anyway (workers hold ids from a dead registry and must
// re-register), so renewals would be pure journal churn. Instead,
// replayed tasks come back as pending and the poll-inventory reconcile
// re-adopts live workers: a worker still simulating task N reports N in
// Holding, and the coordinator hands the lease back rather than
// scheduling a duplicate.
//
// Replayed tasks have no waiters (the goroutines blocked in Simulate
// died with the old process). They are still simulated and their results
// retained until a new waiter attaches by key — which is exactly what a
// journaled server does when it resumes its sweeps and re-submits the
// unfinished jobs.

import (
	"encoding/json"
	"fmt"

	"repro/internal/sweep"
)

// Journal record ops. Each record is one JSON object, self-contained
// enough to be applied in order against the snapshot state.
const (
	opEnq     = "enq"     // task created: id, key, job, pri
	opLease   = "lease"   // task leased to a worker: id, wk (attempts++)
	opAdopt   = "adopt"   // live lease re-adopted after restart: id, wk
	opRequeue = "requeue" // lease returned to the queue: id
	opLocal   = "local"   // task flipped to local fallback: id
	opDone    = "done"    // result accepted from a worker: id
	opFDone   = "fdone"   // local fallback completed: id
	opWreg    = "wreg"    // worker registered: seq (id counter continuity)
)

// rec is one journal record. Fields are op-dependent; zero fields are
// omitted from the wire.
type rec struct {
	Op   string     `json:"op"`
	Task uint64     `json:"task,omitempty"`
	Key  string     `json:"key,omitempty"`
	Job  *sweep.Job `json:"job,omitempty"`
	Pri  int        `json:"pri,omitempty"`
	Wk   string     `json:"wk,omitempty"`
	Seq  uint64     `json:"seq,omitempty"`
}

// snapTask is one live task inside a compaction snapshot.
type snapTask struct {
	ID       uint64    `json:"id"`
	Key      string    `json:"key"`
	Job      sweep.Job `json:"job"`
	Pri      int       `json:"pri,omitempty"`
	Attempts int       `json:"attempts,omitempty"`
	// State is "pending", "requeued" (pending, but at the head of the
	// line) or "local"; leased tasks snapshot as pending — their leases
	// cannot survive the restart that would load this snapshot.
	State string `json:"state"`
}

// snapshot is the compaction image: everything a restart needs that the
// discarded records described.
type snapshot struct {
	NextTask   uint64     `json:"next_task"`
	NextWorker uint64     `json:"next_worker"`
	Stats      Stats      `json:"stats"`
	Tasks      []snapTask `json:"tasks,omitempty"`
}

// journalLocked appends one record; a journal write error degrades to
// running unjournaled (the WAL poisons itself after the first failure,
// so this stays cheap). c.mu held.
func (c *Coordinator) journalLocked(r rec) {
	if c.cfg.Journal == nil {
		return
	}
	b, err := json.Marshal(r)
	if err != nil {
		return
	}
	c.cfg.Journal.Append(b)
}

// replayState is one task being reconstructed during recovery.
type replayState struct {
	id       uint64
	key      sweep.Key
	job      sweep.Job
	priority int
	attempts int
	local    bool
	requeued bool
	seq      int // arrival order, so rebuilt queues keep FIFO ordering
}

// recover rebuilds the task table from the journal's snapshot + records.
// Called from NewCoordinator before the janitor starts; no locking
// needed, nothing else can see the coordinator yet.
func (c *Coordinator) recover() error {
	live := make(map[uint64]*replayState)
	order := 0
	add := func(t *replayState) {
		t.seq = order
		order++
		live[t.id] = t
		if t.id > c.nextTask {
			c.nextTask = t.id
		}
	}
	if data, _, ok := c.cfg.Journal.Snapshot(); ok {
		var snap snapshot
		if err := json.Unmarshal(data, &snap); err != nil {
			return fmt.Errorf("dispatch: corrupt journal snapshot: %w", err)
		}
		c.nextTask = snap.NextTask
		c.nextWorker = snap.NextWorker
		c.stats = snap.Stats
		c.stats.Workers, c.stats.Pending, c.stats.Inflight = 0, 0, 0
		for _, st := range snap.Tasks {
			add(&replayState{
				id: st.ID, key: sweep.Key(st.Key), job: st.Job,
				priority: st.Pri, attempts: st.Attempts,
				local:    st.State == "local",
				requeued: st.State == "requeued",
			})
		}
	}
	err := c.cfg.Journal.Replay(func(_ uint64, payload []byte) error {
		var r rec
		if err := json.Unmarshal(payload, &r); err != nil {
			// An undecodable record is a foreign or damaged payload the
			// CRC could not catch; skipping it loses one transition,
			// aborting would lose the journal. Skip.
			return nil
		}
		t := live[r.Task]
		switch r.Op {
		case opEnq:
			if r.Job == nil {
				return nil
			}
			add(&replayState{id: r.Task, key: sweep.Key(r.Key), job: *r.Job, priority: r.Pri})
		case opLease:
			if t != nil {
				t.attempts++
				t.requeued = false
			}
		case opAdopt:
			if t != nil {
				t.requeued = false
			}
		case opRequeue:
			if t != nil {
				t.requeued = true
				t.seq = order
				order++
			}
		case opLocal:
			if t != nil {
				t.local = true
			}
		case opDone, opFDone:
			delete(live, r.Task)
		case opWreg:
			if r.Seq > c.nextWorker {
				c.nextWorker = r.Seq
			}
		}
		return nil
	})
	if err != nil {
		return err
	}

	// Materialize the survivors. Requeued tasks keep their
	// head-of-the-line position (in requeue order); everything else
	// pending goes back to its priority bucket in arrival order. Local
	// tasks are recreated with the fallback gate already open: the first
	// waiter to attach by key runs the local simulation.
	tasks := make([]*replayState, 0, len(live))
	for _, t := range live {
		tasks = append(tasks, t)
	}
	for i := 1; i < len(tasks); i++ {
		for j := i; j > 0 && tasks[j].seq < tasks[j-1].seq; j-- {
			tasks[j], tasks[j-1] = tasks[j-1], tasks[j]
		}
	}
	for _, rt := range tasks {
		t := &task{
			id: rt.id, key: rt.key, job: rt.job,
			priority: rt.priority, attempts: rt.attempts,
			done: make(chan struct{}), localc: make(chan struct{}),
		}
		c.tasks[t.id] = t
		c.byKey[t.key] = t
		switch {
		case rt.local:
			t.state = taskLocal
			close(t.localc)
		case rt.requeued:
			t.state = taskPending
			c.stats.Pending++
			c.requeued = append(c.requeued, t)
		default:
			t.state = taskPending
			c.stats.Pending++
			c.enqueueLocked(t)
		}
	}
	return nil
}

// snapshotLocked serializes the live task table for compaction. c.mu
// held.
func (c *Coordinator) snapshotLocked() ([]byte, error) {
	snap := snapshot{NextTask: c.nextTask, NextWorker: c.nextWorker, Stats: c.stats}
	snap.Stats.Workers, snap.Stats.Pending, snap.Stats.Inflight = 0, 0, 0
	// Queue order must survive the round trip: requeued first (their
	// snapshot state says so), then buckets by tier, then whatever is
	// live but unqueued (leased or local).
	seen := make(map[uint64]bool, len(c.tasks))
	addTask := func(t *task, state string) {
		if seen[t.id] {
			return
		}
		seen[t.id] = true
		snap.Tasks = append(snap.Tasks, snapTask{
			ID: t.id, Key: string(t.key), Job: t.job,
			Pri: t.priority, Attempts: t.attempts, State: state,
		})
	}
	for _, t := range c.requeued {
		if t.state == taskPending {
			addTask(t, "requeued")
		}
	}
	for _, p := range c.prios {
		for _, t := range c.queue[p] {
			if t.state == taskPending {
				addTask(t, "pending")
			}
		}
	}
	for _, t := range c.tasks {
		switch t.state {
		case taskLocal:
			addTask(t, "local")
		case taskAssigned, taskPending:
			// A leased task snapshots as pending: its lease cannot
			// survive the restart that loads this snapshot, and the
			// holding worker re-adopts it through poll reconcile.
			addTask(t, "pending")
		}
	}
	return json.Marshal(snap)
}

// maybeCompact snapshots and compacts the journal once its live record
// bytes pass the threshold. Called from the janitor off the lease tick.
func (c *Coordinator) maybeCompact() {
	j := c.cfg.Journal
	if j == nil || j.SizeBytes() < c.cfg.CompactBytes {
		return
	}
	c.mu.Lock()
	snap, err := c.snapshotLocked()
	if err != nil {
		c.mu.Unlock()
		return
	}
	j.Compact(snap)
	c.mu.Unlock()
}
