// Store-inventory protocol tests: workers advertise which shard
// buckets their stores hold on every poll, and the coordinator routes
// peer-store reads by consistent shard ownership.
package dispatch_test

import (
	"context"
	"fmt"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/dispatch"
	"repro/internal/server"
	"repro/internal/store"
	"repro/internal/sweep"
	"repro/rf/api"
	"repro/rf/client"
)

// shardKey synthesizes a valid store key landing in shard sh (mod n,
// for n ≤ 2^32): the first 8 hex chars are the shard number itself.
func shardKey(sh int) sweep.Key {
	return sweep.Key(fmt.Sprintf("%08x%056x", sh, sh))
}

func TestInventoryRoutesPeers(t *testing.T) {
	const shards = 8
	coord := dispatch.NewCoordinator(dispatch.Config{
		LeaseTTL:    time.Minute,
		StoreShards: shards,
	})
	srv := server.New(server.Config{Dispatcher: coord})
	ts := httptest.NewServer(srv)
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
		ts.Close()
	}()
	ctx := context.Background()
	cl := client.New(ts.URL)

	register := func(name, objectsURL string) string {
		t.Helper()
		resp, err := cl.RegisterWorker(ctx, api.RegisterRequest{
			Name: name, Capacity: 1, ObjectsURL: objectsURL,
		})
		if err != nil {
			t.Fatalf("register %s: %v", name, err)
		}
		if resp.StoreShards != shards {
			t.Fatalf("register %s announced %d shards, want %d", name, resp.StoreShards, shards)
		}
		return resp.ID
	}
	advertise := func(id string, inv []int) {
		t.Helper()
		if _, err := cl.PollWorker(ctx, id, api.PollRequest{StoreShards: inv}); err != nil {
			t.Fatalf("poll %s: %v", id, err)
		}
	}

	alice := register("alice", "http://a:1")
	bob := register("bob", "http://b:1")
	carol := register("carol", "") // no object API: never a peer candidate

	advertise(alice, []int{0, 1})
	advertise(bob, []int{1})
	advertise(carol, []int{0, 1})

	// Shard 0: alice alone (carol advertises it but serves no objects).
	if got := coord.Peers(shardKey(0)); len(got) != 1 || got[0] != "http://a:1" {
		t.Fatalf("Peers(shard 0) = %v, want [http://a:1]", got)
	}
	// Shard 1: both alice and bob, ranked by rendezvous over the worker
	// name — the same order ShardOf/RendezvousScore dictate.
	got := coord.Peers(shardKey(1))
	if len(got) != 2 {
		t.Fatalf("Peers(shard 1) = %v, want two candidates", got)
	}
	wantFirst := "http://a:1"
	if store.RendezvousScore("bob", 1) > store.RendezvousScore("alice", 1) {
		wantFirst = "http://b:1"
	}
	if got[0] != wantFirst {
		t.Fatalf("Peers(shard 1) = %v, want %s ranked first", got, wantFirst)
	}
	// Shard nobody advertises: no candidates.
	if got := coord.Peers(shardKey(5)); len(got) != 0 {
		t.Fatalf("Peers(shard 5) = %v, want none", got)
	}

	// Each advertisement replaces the previous one: alice dropping
	// shard 0 (eviction) removes her from that shard's candidates.
	advertise(alice, []int{1})
	if got := coord.Peers(shardKey(0)); len(got) != 0 {
		t.Fatalf("Peers(shard 0) after re-advertisement = %v, want none", got)
	}

	// Out-of-range buckets are dropped, in-range ones kept.
	advertise(bob, []int{-1, 3, shards, 99})
	if got := coord.Peers(shardKey(3)); len(got) != 1 || got[0] != "http://b:1" {
		t.Fatalf("Peers(shard 3) = %v, want [http://b:1]", got)
	}

	// The fleet listing reports the advertised bucket counts.
	ws, err := cl.Workers(ctx)
	if err != nil {
		t.Fatalf("workers: %v", err)
	}
	counts := map[string]int{}
	urls := map[string]string{}
	for _, w := range ws.Workers {
		counts[w.Name] = w.StoreShards
		urls[w.Name] = w.ObjectsURL
	}
	// alice last advertised [1]; bob's [-1,3,8,99] kept only bucket 3.
	if counts["alice"] != 1 || counts["bob"] != 1 || counts["carol"] != 2 {
		t.Fatalf("advertised bucket counts = %v, want alice:1 bob:1 carol:2", counts)
	}
	if urls["alice"] != "http://a:1" || urls["carol"] != "" {
		t.Fatalf("objects URLs = %v", urls)
	}
}

// TestPeersOffWithoutSharding: a coordinator without -store-shards
// never routes peer reads, whatever workers advertise.
func TestPeersOffWithoutSharding(t *testing.T) {
	coord := dispatch.NewCoordinator(dispatch.Config{LeaseTTL: time.Minute})
	srv := server.New(server.Config{Dispatcher: coord})
	ts := httptest.NewServer(srv)
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
		ts.Close()
	}()
	ctx := context.Background()
	cl := client.New(ts.URL)
	resp, err := cl.RegisterWorker(ctx, api.RegisterRequest{
		Name: "alice", Capacity: 1, ObjectsURL: "http://a:1",
	})
	if err != nil {
		t.Fatalf("register: %v", err)
	}
	if resp.StoreShards != 0 {
		t.Fatalf("coordinator announced %d shards, want 0", resp.StoreShards)
	}
	if _, err := cl.PollWorker(ctx, resp.ID, api.PollRequest{StoreShards: []int{0, 1}}); err != nil {
		t.Fatalf("poll: %v", err)
	}
	if got := coord.Peers(shardKey(0)); got != nil {
		t.Fatalf("Peers = %v, want nil with sharding off", got)
	}
}
