package dispatch

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"runtime"
	"sort"
	"sync"
	"time"

	"repro/internal/sim"
	"repro/internal/store"
	"repro/internal/sweep"
	"repro/internal/tenant"
	"repro/internal/wal"
	"repro/rf/api"
)

// Config configures a Coordinator. The zero value is usable: 10 s leases,
// 3 remote attempts, local fallback through sweep.Simulate.
type Config struct {
	// LeaseTTL is how long a worker may go without polling before it is
	// expired and its jobs are requeued; 0 means 10 s.
	LeaseTTL time.Duration
	// PollWait bounds how long an idle poll is held open waiting for work
	// (long poll); 0 means LeaseTTL/4. It is clamped to LeaseTTL/2 so a
	// held poll can never outlive the lease it renews.
	PollWait time.Duration
	// MaxAttempts is how many times a job is handed to a worker before
	// the coordinator gives up on the fleet and simulates it locally;
	// 0 means 3.
	MaxAttempts int
	// MaxCapacity caps the in-flight budget any single worker may request
	// at registration; 0 means 64.
	MaxCapacity int
	// JobTimeout bounds how long one assignment may stay leased before it
	// is requeued even though its worker keeps heartbeating — the defense
	// against a wedged simulation inside a live process. 0 disables it
	// (the default: legitimate jobs can run for minutes, so only an
	// operator who knows the workload's ceiling should set it).
	JobTimeout time.Duration
	// Fallback simulates a job locally when its remote attempts are
	// exhausted (or the coordinator is closed with callers still
	// blocked); nil uses sweep.Simulate.
	Fallback func(sweep.Job) sim.Result
	// LocalParallelism bounds concurrent Fallback runs; 0 uses
	// GOMAXPROCS.
	LocalParallelism int
	// Journal, when non-nil, makes the coordinator durable: every state
	// transition a restart must reconstruct is appended to this WAL, and
	// NewCoordinator replays it so a restarted coordinator re-adopts the
	// fleet's in-flight work instead of re-simulating it (see
	// journal.go). Nil (the default) keeps behavior byte-identical to an
	// unjournaled coordinator. The journal must have been freshly opened
	// (its Replay not yet consumed) and is owned by the caller — the
	// coordinator never closes it.
	Journal *wal.WAL
	// CompactBytes is the journal size that triggers snapshot +
	// compaction (checked from the lease janitor); 0 means 1 MiB.
	CompactBytes int64
	// Logf reports recovery problems (a corrupt journal falls back to a
	// cold start); nil discards.
	Logf func(format string, args ...any)
	// StoreShards turns on fleet store routing: workers advertise which
	// of this many shard buckets their local store holds, and Peers
	// resolves a key's advertisers for the peer store tier. 0 (the
	// default) disables advertisement and Peers returns nothing.
	StoreShards int
}

// taskState is the lifecycle of one distributed job.
type taskState uint8

const (
	taskPending  taskState = iota // in the queue, waiting for a worker
	taskAssigned                  // leased to a worker
	taskLocal                     // abandoned remotely; a waiter runs the fallback
	taskDone                      // result delivered
)

// task is one job flowing through the fleet. Concurrent Simulate calls
// for the same key share a task.
type task struct {
	id         uint64
	key        sweep.Key
	job        sweep.Job
	state      taskState
	priority   int       // scheduling tier; higher leaves the queue sooner
	worker     string    // assigned worker id while taskAssigned
	assignedAt time.Time // lease start while taskAssigned (JobTimeout)
	attempts   int       // times handed to a worker

	// done is closed once result is valid; localc is closed when the
	// task falls back to local simulation (a waiter runs it, guarded by
	// fallback).
	done     chan struct{}
	localc   chan struct{}
	result   sim.Result
	fallback sync.Once
}

// worker is one registered fleet member.
type worker struct {
	id         string
	name       string
	capacity   int
	registered time.Time
	expires    time.Time
	inflight   map[uint64]*task
	completed  uint64
	// objectsURL and shards are the worker's store advertisement: where
	// it serves GET /v1/objects/{key} and which shard buckets (modulo
	// Config.StoreShards) hold at least one object. Soft state — never
	// journaled, rebuilt from the advertisement on every poll, so a
	// restarted coordinator relearns the fleet's inventory as workers
	// re-register.
	objectsURL string
	shards     map[int]bool
}

// Stats is a point-in-time snapshot of fleet activity; it is the wire
// FleetStats document of the public API.
type Stats = api.FleetStats

// Coordinator shards jobs across registered workers. Create one with
// NewCoordinator, hand its Simulate to the sweep runner, mount its
// handlers, and Close it on shutdown.
type Coordinator struct {
	cfg      Config
	localSem chan struct{}
	stop     chan struct{}

	mu      sync.Mutex
	closed  bool
	workers map[string]*worker
	tasks   map[uint64]*task    // live tasks by id (pending/assigned/local)
	byKey   map[sweep.Key]*task // live tasks by content address
	// queue holds pending tasks as one FIFO bucket per priority tier,
	// served highest tier first (prios mirrors the bucket keys, sorted
	// descending); requeued holds leases that came back (expiry,
	// reconciliation, timeout) and is always served before any bucket —
	// those jobs have waited longest, whatever their tier. Either may
	// hold entries whose state moved on; assignment skips them.
	queue      map[int][]*task
	prios      []int
	requeued   []*task
	nextTask   uint64
	nextWorker uint64
	wake       chan struct{} // closed+replaced when the queue gains work
	// lastWorker is the last instant at least one worker was registered
	// (coordinator start counts); a drought longer than LeaseTTL drains
	// pending tasks to local fallback.
	lastWorker time.Time
	stats      Stats
}

// NewCoordinator returns a running Coordinator (its lease janitor is
// started); Close it when done.
func NewCoordinator(cfg Config) *Coordinator {
	if cfg.LeaseTTL <= 0 {
		cfg.LeaseTTL = 10 * time.Second
	}
	if cfg.PollWait <= 0 {
		cfg.PollWait = cfg.LeaseTTL / 4
	}
	if cfg.PollWait > cfg.LeaseTTL/2 {
		cfg.PollWait = cfg.LeaseTTL / 2
	}
	if cfg.MaxAttempts <= 0 {
		cfg.MaxAttempts = 3
	}
	if cfg.MaxCapacity <= 0 {
		cfg.MaxCapacity = 64
	}
	if cfg.Fallback == nil {
		cfg.Fallback = sweep.Simulate
	}
	if cfg.LocalParallelism <= 0 {
		cfg.LocalParallelism = runtime.GOMAXPROCS(0)
	}
	if cfg.CompactBytes <= 0 {
		cfg.CompactBytes = 1 << 20
	}
	c := &Coordinator{
		cfg:        cfg,
		localSem:   make(chan struct{}, cfg.LocalParallelism),
		stop:       make(chan struct{}),
		workers:    make(map[string]*worker),
		tasks:      make(map[uint64]*task),
		byKey:      make(map[sweep.Key]*task),
		queue:      make(map[int][]*task),
		wake:       make(chan struct{}),
		lastWorker: time.Now(),
	}
	if cfg.Journal != nil {
		if err := c.recover(); err != nil {
			// A corrupt snapshot means the pre-crash state is
			// unrecoverable; a cold start is still correct (in-flight
			// work re-simulates), so degrade rather than refuse to run.
			if cfg.Logf != nil {
				cfg.Logf("dispatch: journal recovery failed, starting cold: %v", err)
			}
			c.tasks = make(map[uint64]*task)
			c.byKey = make(map[sweep.Key]*task)
			c.queue = make(map[int][]*task)
			c.prios, c.requeued = nil, nil
			c.stats = Stats{}
		}
	}
	go c.janitor()
	return c
}

// janitor expires workers that stopped polling, so leased jobs are
// requeued even when no HTTP traffic arrives to observe the expiry.
func (c *Coordinator) janitor() {
	tick := time.NewTicker(c.cfg.LeaseTTL / 4)
	defer tick.Stop()
	for {
		select {
		case <-c.stop:
			return
		case now := <-tick.C:
			c.expire(now)
			c.maybeCompact()
		}
	}
}

// expire deregisters every worker whose lease lapsed before now and
// requeues its in-flight tasks; with JobTimeout set it also requeues
// individual leases held too long by workers that are otherwise alive
// (a wedged simulation keeps heartbeating). With the fleet empty for a
// full lease TTL it drains the pending queue into local fallback, so
// queued sweeps are not parked forever waiting for a worker that never
// comes.
func (c *Coordinator) expire(now time.Time) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for id, w := range c.workers {
		if !w.expires.After(now) {
			delete(c.workers, id)
			c.stats.Expired++
			for _, t := range w.inflight {
				c.requeueLocked(t)
			}
			continue
		}
		if c.cfg.JobTimeout > 0 {
			for id, t := range w.inflight {
				if now.Sub(t.assignedAt) > c.cfg.JobTimeout {
					delete(w.inflight, id)
					c.requeueLocked(t)
				}
			}
		}
	}
	if len(c.workers) > 0 {
		c.lastWorker = now
		return
	}
	if now.Sub(c.lastWorker) < c.cfg.LeaseTTL {
		return
	}
	drain := func(t *task) {
		if t.state == taskPending {
			t.state = taskLocal
			c.stats.Pending--
			c.journalLocked(rec{Op: opLocal, Task: t.id})
			close(t.localc)
		}
	}
	for _, t := range c.requeued {
		drain(t)
	}
	for _, bucket := range c.queue {
		for _, t := range bucket {
			drain(t)
		}
	}
	c.requeued = c.requeued[:0]
	c.queue = make(map[int][]*task)
	c.prios = c.prios[:0]
}

// requeueLocked returns an assigned task to the queue, or flips it to
// local fallback once its remote attempts are exhausted. c.mu held.
func (c *Coordinator) requeueLocked(t *task) {
	if t.state != taskAssigned {
		return
	}
	t.worker = ""
	c.stats.Inflight--
	if t.attempts >= c.cfg.MaxAttempts {
		t.state = taskLocal
		c.journalLocked(rec{Op: opLocal, Task: t.id})
		close(t.localc)
		return
	}
	t.state = taskPending
	c.stats.Pending++
	c.stats.Requeued++
	c.journalLocked(rec{Op: opRequeue, Task: t.id})
	c.requeued = append(c.requeued, t)
	c.wakeLocked()
}

// wakeLocked signals long-polling workers that the queue has work.
func (c *Coordinator) wakeLocked() {
	close(c.wake)
	c.wake = make(chan struct{})
}

// enqueueLocked appends a pending task to its priority bucket, creating
// the bucket (and its slot in the descending prios index) on first use.
// c.mu held.
func (c *Coordinator) enqueueLocked(t *task) {
	if _, ok := c.queue[t.priority]; !ok {
		i := sort.Search(len(c.prios), func(i int) bool { return c.prios[i] < t.priority })
		c.prios = append(c.prios, 0)
		copy(c.prios[i+1:], c.prios[i:])
		c.prios[i] = t.priority
	}
	c.queue[t.priority] = append(c.queue[t.priority], t)
}

// popPendingLocked returns the next pending task — requeued FIFO first,
// then the highest-tier bucket FIFO — discarding stale entries (tasks
// whose state moved on while queued) and empty buckets along the way.
// Nil when nothing is pending. c.mu held.
func (c *Coordinator) popPendingLocked() *task {
	for len(c.requeued) > 0 {
		t := c.requeued[0]
		c.requeued = c.requeued[1:]
		if t.state == taskPending {
			return t
		}
	}
	for len(c.prios) > 0 {
		p := c.prios[0]
		bucket := c.queue[p]
		var t *task
		for len(bucket) > 0 && t == nil {
			if bucket[0].state == taskPending {
				t = bucket[0]
			}
			bucket = bucket[1:]
		}
		if len(bucket) == 0 {
			delete(c.queue, p)
			c.prios = c.prios[1:]
		} else {
			c.queue[p] = bucket
		}
		if t != nil {
			return t
		}
	}
	return nil
}

// Simulate is the execution backend: it enqueues the job for the fleet
// and blocks until a worker delivers the result (or the retry cap moves
// the job to local simulation). It is safe for concurrent use; identical
// concurrent jobs share one in-flight task.
func (c *Coordinator) Simulate(j sweep.Job) sim.Result {
	return c.SimulateContext(context.Background(), j)
}

// SimulateContext is Simulate with admission metadata: a priority tier
// carried by ctx (tenant.FromContext) orders the pending queue, higher
// tiers leased first. The context carries metadata only — cancellation
// is not observed, matching Simulate's contract of always returning a
// valid result. Identical concurrent jobs share one task and wait at
// the first submitter's tier.
func (c *Coordinator) SimulateContext(ctx context.Context, j sweep.Job) sim.Result {
	priority := 0
	if a, ok := tenant.FromContext(ctx); ok {
		priority = a.Priority
	}
	k := j.Key()
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return c.runLocal(j)
	}
	t := c.byKey[k]
	if t == nil {
		c.nextTask++
		t = &task{
			id: c.nextTask, key: k, job: j, state: taskPending,
			priority: priority,
			done:     make(chan struct{}), localc: make(chan struct{}),
		}
		c.tasks[t.id] = t
		c.byKey[k] = t
		c.enqueueLocked(t)
		c.stats.Enqueued++
		c.stats.Pending++
		c.journalLocked(rec{Op: opEnq, Task: t.id, Key: string(k), Job: &j, Pri: priority})
		c.wakeLocked()
	}
	c.mu.Unlock()
	return c.wait(t)
}

// wait blocks until the task resolves, running the local fallback if the
// task is flipped to taskLocal (exactly one waiter runs it).
func (c *Coordinator) wait(t *task) sim.Result {
	select {
	case <-t.done:
		return t.result
	case <-t.localc:
		t.fallback.Do(func() {
			res := c.runLocal(t.job)
			c.mu.Lock()
			t.result = res
			t.state = taskDone
			delete(c.tasks, t.id)
			delete(c.byKey, t.key)
			c.stats.Fallbacks++
			c.journalLocked(rec{Op: opFDone, Task: t.id})
			c.mu.Unlock()
			close(t.done)
		})
		<-t.done
		return t.result
	}
}

// runLocal runs the fallback under the local parallelism bound.
func (c *Coordinator) runLocal(j sweep.Job) sim.Result {
	c.localSem <- struct{}{}
	defer func() { <-c.localSem }()
	return c.cfg.Fallback(j)
}

// Close expires the fleet and flips every live task to local fallback so
// blocked Simulate callers terminate. Subsequent Simulate calls run
// locally. Close is idempotent.
func (c *Coordinator) Close() {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return
	}
	c.closed = true
	close(c.stop)
	for _, t := range c.tasks {
		if t.state == taskPending || t.state == taskAssigned {
			t.state = taskLocal
			close(t.localc)
		}
	}
	c.stats.Pending, c.stats.Inflight = 0, 0
	c.workers = make(map[string]*worker)
	c.queue = make(map[int][]*task)
	c.prios, c.requeued = nil, nil
	c.wakeLocked()
	c.mu.Unlock()
}

// Stats returns a snapshot of fleet activity.
func (c *Coordinator) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	st := c.stats
	st.Workers = len(c.workers)
	return st
}

// ---- HTTP protocol ----

// The wire documents of the protocol live in rf/api, shared with
// rf/client so the two sides cannot drift.

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, map[string]string{"error": fmt.Sprintf(format, args...)})
}

// HandleRegister serves POST /v1/workers/register.
func (c *Coordinator) HandleRegister(w http.ResponseWriter, r *http.Request) {
	var req api.RegisterRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<16)).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "dispatch: bad registration: %v", err)
		return
	}
	if req.Capacity < 1 {
		req.Capacity = 1
	}
	if req.Capacity > c.cfg.MaxCapacity {
		req.Capacity = c.cfg.MaxCapacity
	}
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		writeError(w, http.StatusServiceUnavailable, "dispatch: coordinator is shutting down")
		return
	}
	c.nextWorker++
	now := time.Now()
	wk := &worker{
		id:         fmt.Sprintf("w%06d", c.nextWorker),
		name:       req.Name,
		capacity:   req.Capacity,
		registered: now,
		expires:    now.Add(c.cfg.LeaseTTL),
		inflight:   make(map[uint64]*task),
		objectsURL: req.ObjectsURL,
	}
	if wk.name == "" {
		wk.name = wk.id
	}
	c.workers[wk.id] = wk
	c.journalLocked(rec{Op: opWreg, Seq: c.nextWorker})
	c.mu.Unlock()
	writeJSON(w, http.StatusOK, api.RegisterResponse{
		ID:          wk.id,
		Capacity:    wk.capacity,
		LeaseMS:     c.cfg.LeaseTTL.Milliseconds(),
		PollMS:      c.cfg.PollWait.Milliseconds(),
		StoreShards: c.cfg.StoreShards,
	})
}

// HandlePoll serves POST /v1/workers/{id}/poll: it renews the worker's
// lease, accepts completed results, and hands out new leases. When the
// worker wants jobs and none are pending, the request is held open up to
// PollWait (long poll) so idle workers pick up new sweeps immediately.
// An unknown worker id (an expired lease) gets 404: the worker must
// re-register and re-report, and its task ids stay valid.
func (c *Coordinator) HandlePoll(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	var req api.PollRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 64<<20)).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "dispatch: bad poll: %v", err)
		return
	}

	c.mu.Lock()
	wk := c.workers[id]
	if wk == nil {
		c.mu.Unlock()
		writeError(w, http.StatusNotFound, "dispatch: no worker %q (lease expired? re-register)", id)
		return
	}
	wk.expires = time.Now().Add(c.cfg.LeaseTTL)
	// Each advertisement is the worker's complete current inventory, so
	// replace rather than merge; an empty list is indistinguishable from
	// "no store" on the wire and leaves the last advertisement standing
	// (inventories effectively only grow between polls).
	if c.cfg.StoreShards > 0 && len(req.StoreShards) > 0 {
		shards := make(map[int]bool, len(req.StoreShards))
		for _, sh := range req.StoreShards {
			if sh >= 0 && sh < c.cfg.StoreShards {
				shards[sh] = true
			}
		}
		wk.shards = shards
	}
	for _, res := range req.Results {
		c.deliverLocked(wk, res)
	}
	// Reconcile before assigning: a lease the worker does not report
	// holding was lost in a dropped poll response — requeue it now,
	// because this worker will never simulate it and its polling keeps
	// the lease alive.
	if len(wk.inflight) > 0 {
		holding := make(map[uint64]bool, len(req.Holding))
		for _, id := range req.Holding {
			holding[id] = true
		}
		for id, t := range wk.inflight {
			if !holding[id] {
				delete(wk.inflight, id)
				c.requeueLocked(t)
			}
		}
	}
	// Adopt before assigning: a Holding id the coordinator does not
	// track as this worker's lease is a simulation that outlived its
	// lease — the worker re-registered after expiry, or the coordinator
	// itself restarted and replayed the task from its journal as
	// pending. Hand the lease back instead of letting assignment
	// schedule a duplicate of work that is already running.
	for _, hid := range req.Holding {
		if wk.inflight[hid] != nil {
			continue
		}
		t := c.tasks[hid]
		if t == nil || t.state != taskPending {
			continue
		}
		t.state = taskAssigned
		t.worker = wk.id
		t.assignedAt = time.Now()
		wk.inflight[t.id] = t
		c.stats.Pending--
		c.stats.Inflight++
		c.stats.Adopted++
		c.journalLocked(rec{Op: opAdopt, Task: t.id, Wk: wk.id})
	}

	deadline := time.Now().Add(c.cfg.PollWait)
	for {
		jobs := c.assignLocked(wk, req.Want)
		if len(jobs) > 0 || req.Want <= 0 || c.closed || !time.Now().Before(deadline) {
			wk.expires = time.Now().Add(c.cfg.LeaseTTL)
			c.mu.Unlock()
			writeJSON(w, http.StatusOK, api.PollResponse{
				Jobs: jobs, LeaseMS: c.cfg.LeaseTTL.Milliseconds(),
			})
			return
		}
		wakec := c.wake
		c.mu.Unlock()
		wait := time.NewTimer(time.Until(deadline))
		select {
		case <-wakec:
		case <-wait.C:
		case <-c.stop:
		case <-r.Context().Done():
			wait.Stop()
			return
		}
		wait.Stop()
		c.mu.Lock()
		if c.workers[id] != wk {
			// Expired while the poll was held open (clock skew or a tiny
			// TTL); the worker must re-register.
			c.mu.Unlock()
			writeError(w, http.StatusNotFound, "dispatch: worker %q expired", id)
			return
		}
		wk.expires = time.Now().Add(c.cfg.LeaseTTL)
	}
}

// deliverLocked accepts one reported result. Results are matched by task
// id against all live tasks, not just the reporting worker's leases: a
// worker that was expired and re-registered may legitimately deliver a
// task now leased elsewhere (results are deterministic per key, so
// whichever copy lands first wins). c.mu held.
func (c *Coordinator) deliverLocked(wk *worker, res api.TaskResult) {
	t := c.tasks[res.Task]
	if t == nil || t.state == taskLocal || t.state == taskDone || string(t.key) != res.Key {
		c.stats.Late++
		return
	}
	switch t.state {
	case taskAssigned:
		if holder := c.workers[t.worker]; holder != nil {
			delete(holder.inflight, t.id)
		}
		c.stats.Inflight--
	case taskPending:
		// Still queued for a retry; the queue entry is skipped once its
		// state leaves taskPending.
		c.stats.Pending--
	}
	t.state = taskDone
	t.result = res.Result
	delete(c.tasks, t.id)
	delete(c.byKey, t.key)
	wk.completed++
	c.stats.Completed++
	c.journalLocked(rec{Op: opDone, Task: t.id})
	close(t.done)
}

// assignLocked leases up to want pending tasks to the worker, bounded by
// its remaining in-flight budget. Requeued tasks go first, then the
// highest priority tier. c.mu held.
func (c *Coordinator) assignLocked(wk *worker, want int) []api.Assignment {
	if budget := wk.capacity - len(wk.inflight); want > budget {
		want = budget
	}
	var out []api.Assignment
	for want > len(out) {
		t := c.popPendingLocked()
		if t == nil {
			return out
		}
		t.state = taskAssigned
		t.worker = wk.id
		t.assignedAt = time.Now()
		t.attempts++
		wk.inflight[t.id] = t
		c.stats.Pending--
		c.stats.Inflight++
		c.stats.Dispatched++
		c.journalLocked(rec{Op: opLease, Task: t.id, Wk: wk.id})
		out = append(out, api.Assignment{Task: t.id, Key: string(t.key), Job: t.job})
	}
	return out
}

// HandleWorkers serves GET /v1/workers: the registered fleet plus queue
// counters.
func (c *Coordinator) HandleWorkers(w http.ResponseWriter, _ *http.Request) {
	c.mu.Lock()
	out := api.WorkerList{Workers: []api.WorkerInfo{}, Stats: c.stats}
	out.Stats.Workers = len(c.workers)
	for _, wk := range c.workers {
		out.Workers = append(out.Workers, api.WorkerInfo{
			ID: wk.id, Name: wk.name, Capacity: wk.capacity,
			Inflight: len(wk.inflight), Completed: wk.completed,
			Registered:   wk.registered.UTC().Format(time.RFC3339Nano),
			LeaseExpires: wk.expires.UTC().Format(time.RFC3339Nano),
			ObjectsURL:   wk.objectsURL,
			StoreShards:  len(wk.shards),
		})
	}
	c.mu.Unlock()
	sort.Slice(out.Workers, func(i, j int) bool { return out.Workers[i].ID < out.Workers[j].ID })
	writeJSON(w, http.StatusOK, out)
}

// Peers implements store.PeerSource: the object-API base URLs of live
// workers advertising the key's shard, rendezvous-ranked by worker name
// so every key has a consistent primary owner even as workers expire
// and re-register (names are stable across re-registration; ids are
// not). Workers that advertise no store, or not this shard, are
// excluded — but all advertisers of the shard are candidates, because a
// worker stores what it simulated, not only what ranking assigns it.
func (c *Coordinator) Peers(k sweep.Key) []string {
	if c.cfg.StoreShards <= 0 {
		return nil
	}
	shard := store.ShardOf(k, c.cfg.StoreShards)
	type cand struct {
		url   string
		score uint64
	}
	c.mu.Lock()
	var cands []cand
	for _, wk := range c.workers {
		if wk.objectsURL == "" || !wk.shards[shard] {
			continue
		}
		cands = append(cands, cand{url: wk.objectsURL, score: store.RendezvousScore(wk.name, shard)})
	}
	c.mu.Unlock()
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].score != cands[j].score {
			return cands[i].score > cands[j].score
		}
		return cands[i].url < cands[j].url
	})
	urls := make([]string, len(cands))
	for i, cd := range cands {
		urls[i] = cd.url
	}
	return urls
}
