// Package dispatch distributes sweep jobs across a fleet of worker
// processes. A Coordinator is an execution backend for the rfserved
// scheduler: its Simulate method enqueues the job and blocks until a
// registered worker returns the result — so the coordinator's existing
// runner machinery (content-addressed cache, within-batch dedup, in-order
// row streaming) is reused unchanged, and the NDJSON stream of a
// distributed sweep is byte-identical to a single-node run.
//
// Workers pull work over HTTP:
//
//	POST /v1/workers/register         → {id, lease_ms, poll_ms}
//	POST /v1/workers/{id}/poll        report results, lease new jobs
//	GET  /v1/workers                  fleet status
//
// Every poll renews the worker's lease. A worker that stops polling for
// a full lease TTL is expired: it is deregistered and its leased jobs
// are requeued at the front of the queue. Each poll also carries the
// worker's held-lease inventory, so an assignment lost in a dropped poll
// response is reconciled and requeued instead of lingering as a ghost.
// A job handed out MaxAttempts times without a result stops being
// retried remotely and is simulated locally by the coordinator (the
// Fallback hook); likewise, when no worker has been registered for a
// full lease TTL the janitor drains the pending queue into local
// simulation — so a sweep always completes even with zero live workers.
// Results are keyed by the job's content address; identical jobs
// submitted concurrently (across sweeps) share one task, so the fleet
// simulates each configuration at most once.
//
// Leases are granted per job, but execution on the worker side batches:
// RunWorker groups each poll's assignments by workload
// (sweep.LockstepGroups) and runs every same-workload group through one
// WorkerConfig.SimulateBatch call — by default a lockstep pass that
// drives all of the group's register file configurations off one shared
// trace front-end. Results are still reported per task, so the
// coordinator's lease/requeue machinery is oblivious to batching, and
// the stream stays byte-identical either way.
//
// See docs/ARCHITECTURE.md for the protocol walkthrough and failure
// matrix.
package dispatch
