// Tests here drive the full coordinator/worker loop in-process: a real
// server.Server in coordinator mode behind httptest, real RunWorker
// clients pulling over HTTP, and a fake simulate hook on both sides. The
// chaos cases (worker killed mid-sweep, workers that lease jobs and
// vanish repeatedly) run in the short tier, so CI's -race job covers the
// whole dispatch path on every PR.
package dispatch_test

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/dispatch"
	"repro/internal/server"
	"repro/internal/sim"
	"repro/internal/sweep"
	"repro/internal/tenant"
)

// testSpec expands to 6 unique jobs (2 benchmarks × 3 architectures).
const testSpec = `{
  "name": "fleet-smoke",
  "instructions": 3000,
  "benchmarks": ["compress", "swim"],
  "architectures": [
    {"kind": "1cycle"},
    {"kind": "rfcache", "caching": ["nonbypass", "ready"]}
  ]
}`

// fakeSim is a fast deterministic stand-in for the simulator.
func fakeSim(j sweep.Job) sim.Result {
	return sim.Result{
		Instructions: j.Config.MaxInstructions,
		Cycles:       j.Config.MaxInstructions/2 + uint64(len(j.Profile.Name)),
		IPC:          2,
	}
}

// fleet is one coordinator-mode server plus its worker contexts.
type fleet struct {
	t     *testing.T
	coord *dispatch.Coordinator
	srv   *server.Server
	ts    *httptest.Server

	mu      sync.Mutex
	cancels []context.CancelFunc
	done    []chan error
}

// newFleet starts a coordinator-mode server. Leases are short so chaos
// tests converge quickly; the fallback is fakeSim so local completion
// stays byte-compatible with worker results.
func newFleet(t *testing.T, dcfg dispatch.Config) *fleet {
	t.Helper()
	if dcfg.LeaseTTL == 0 {
		dcfg.LeaseTTL = 200 * time.Millisecond
	}
	if dcfg.Fallback == nil {
		dcfg.Fallback = fakeSim
	}
	coord := dispatch.NewCoordinator(dcfg)
	srv := server.New(server.Config{Dispatcher: coord})
	ts := httptest.NewServer(srv)
	f := &fleet{t: t, coord: coord, srv: srv, ts: ts}
	t.Cleanup(f.shutdown)
	return f
}

// shutdown stops workers first (so no poll is in flight), then the
// scheduler and dispatcher, then the HTTP listener.
func (f *fleet) shutdown() {
	f.mu.Lock()
	cancels, done := f.cancels, f.done
	f.cancels, f.done = nil, nil
	f.mu.Unlock()
	for _, cancel := range cancels {
		cancel()
	}
	for _, ch := range done {
		select {
		case <-ch:
		case <-time.After(5 * time.Second):
			f.t.Error("worker did not stop")
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := f.srv.Shutdown(ctx); err != nil {
		f.t.Errorf("server shutdown: %v", err)
	}
	f.ts.Close()
}

// startWorker joins one worker to the fleet and returns a kill switch.
func (f *fleet) startWorker(name string, capacity int, simulate func(sweep.Job) sim.Result) context.CancelFunc {
	f.t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	f.mu.Lock()
	f.cancels = append(f.cancels, cancel)
	f.done = append(f.done, done)
	f.mu.Unlock()
	go func() {
		done <- dispatch.RunWorker(ctx, dispatch.WorkerConfig{
			Coordinator: f.ts.URL,
			Name:        name,
			Capacity:    capacity,
			Simulate:    simulate,
		})
	}()
	return cancel
}

type submitResponse struct {
	ID         string `json:"id"`
	Jobs       int    `json:"jobs"`
	StatusURL  string `json:"status_url"`
	ResultsURL string `json:"results_url"`
}

func (f *fleet) submit(spec string) submitResponse {
	f.t.Helper()
	resp, err := http.Post(f.ts.URL+"/v1/sweeps", "application/json", strings.NewReader(spec))
	if err != nil {
		f.t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		body, _ := io.ReadAll(resp.Body)
		f.t.Fatalf("submit returned %d: %s", resp.StatusCode, body)
	}
	var ack submitResponse
	if err := json.NewDecoder(resp.Body).Decode(&ack); err != nil {
		f.t.Fatal(err)
	}
	return ack
}

func (f *fleet) streamAll(resultsURL string) string {
	f.t.Helper()
	resp, err := http.Get(f.ts.URL + resultsURL)
	if err != nil {
		f.t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		f.t.Fatal(err)
	}
	return string(data)
}

type statusJSON struct {
	State     string `json:"state"`
	Total     int    `json:"total"`
	Completed int    `json:"completed"`
	Cached    int    `json:"cached"`
	Simulated int    `json:"simulated"`
}

func (f *fleet) status(statusURL string) statusJSON {
	f.t.Helper()
	resp, err := http.Get(f.ts.URL + statusURL)
	if err != nil {
		f.t.Fatal(err)
	}
	defer resp.Body.Close()
	var st statusJSON
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		f.t.Fatal(err)
	}
	return st
}

// singleNodeNDJSON renders the spec the way a single-node run does: a
// fresh local runner with the same simulate hook, rows in job order.
func singleNodeNDJSON(t *testing.T, spec string, simulate func(sweep.Job) sim.Result) string {
	t.Helper()
	s, err := sweep.ParseSpec(strings.NewReader(spec))
	if err != nil {
		t.Fatal(err)
	}
	jobs, err := s.Jobs()
	if err != nil {
		t.Fatal(err)
	}
	r := sweep.NewRunner(sweep.RunnerConfig{Simulate: simulate})
	outs := r.RunOutcomes(jobs, 0)
	var buf bytes.Buffer
	if err := sweep.NewReport(s.Name, jobs, outs, r.CacheStats()).WriteNDJSON(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

// TestFleetStreamMatchesSingleNode is the distributed acceptance
// contract: a sweep executed by remote workers streams byte-identical
// NDJSON to a single-node run, and resubmitting it costs zero
// simulations anywhere in the fleet.
func TestFleetStreamMatchesSingleNode(t *testing.T) {
	var sims atomic.Int64
	counted := func(j sweep.Job) sim.Result {
		sims.Add(1)
		return fakeSim(j)
	}
	f := newFleet(t, dispatch.Config{})
	f.startWorker("a", 2, counted)
	f.startWorker("b", 2, counted)

	ack := f.submit(testSpec)
	got := f.streamAll(ack.ResultsURL)
	want := singleNodeNDJSON(t, testSpec, fakeSim)
	if got != want {
		t.Errorf("fleet stream differs from single-node output:\n--- fleet ---\n%s--- single ---\n%s", got, want)
	}
	if n := sims.Load(); n != 6 {
		t.Errorf("fleet simulated %d jobs, want 6", n)
	}
	st := f.coord.Stats()
	if st.Completed != 6 || st.Fallbacks != 0 {
		t.Errorf("coordinator stats = %+v, want 6 remote completions and no fallbacks", st)
	}

	// Warm resubmit: the coordinator's cache answers before the fleet is
	// consulted.
	again := f.submit(testSpec)
	f.streamAll(again.ResultsURL)
	if n := sims.Load(); n != 6 {
		t.Errorf("resubmission reached the fleet: %d total simulations, want 6", n)
	}
	if st := f.status(again.StatusURL); st.Cached != st.Total || st.Simulated != 0 {
		t.Errorf("resubmission status = %+v, want 100%% cached", st)
	}
}

// TestCoordinatorWorkerFailover is the chaos contract: a worker killed
// while holding leased jobs must not stall or corrupt the sweep — its
// lease expires, the jobs are requeued to the surviving worker, and the
// stream still completes byte-identical to a single-node run.
func TestCoordinatorWorkerFailover(t *testing.T) {
	f := newFleet(t, dispatch.Config{LeaseTTL: 150 * time.Millisecond})

	// Worker A leases up to 3 jobs and blocks inside every simulation;
	// it is killed once the first job provably started.
	started := make(chan struct{}, 8)
	gate := make(chan struct{})
	stuck := func(j sweep.Job) sim.Result {
		started <- struct{}{}
		<-gate
		return fakeSim(j)
	}
	defer close(gate) // release A's goroutines at test end
	killA := f.startWorker("doomed", 3, stuck)

	ack := f.submit(testSpec)
	select {
	case <-started:
	case <-time.After(10 * time.Second):
		t.Fatal("worker A never started a job")
	}
	killA()

	// The survivor joins only after A is dead, so every one of A's
	// leases must travel through expiry+requeue to get to it.
	f.startWorker("survivor", 2, fakeSim)

	got := f.streamAll(ack.ResultsURL)
	want := singleNodeNDJSON(t, testSpec, fakeSim)
	if got != want {
		t.Errorf("post-failover stream differs from single-node output:\n--- fleet ---\n%s--- single ---\n%s", got, want)
	}
	if st := f.status(ack.StatusURL); st.State != "done" || st.Completed != 6 {
		t.Errorf("post-failover status = %+v", st)
	}
	st := f.coord.Stats()
	if st.Requeued == 0 && st.Fallbacks == 0 {
		t.Errorf("failover left no trace in stats: %+v", st)
	}
	if st.Expired == 0 {
		t.Errorf("killed worker was never expired: %+v", st)
	}
}

// TestJobTimeoutRequeuesWedgedWorker pins the -job-timeout defense: a
// worker whose simulations hang while its poll loop keeps heartbeating
// never misses a lease, so only the per-job deadline can recover its
// tasks. The sweep must complete byte-identical through the healthy
// worker.
func TestJobTimeoutRequeuesWedgedWorker(t *testing.T) {
	f := newFleet(t, dispatch.Config{
		LeaseTTL:   time.Second,
		JobTimeout: 100 * time.Millisecond,
	})

	// The wedge: simulations park forever, but RunWorker's loop (a
	// separate goroutine) keeps polling and renewing the lease.
	gate := make(chan struct{})
	defer close(gate)
	started := make(chan struct{}, 8)
	wedged := func(j sweep.Job) sim.Result {
		started <- struct{}{}
		<-gate
		return fakeSim(j)
	}
	f.startWorker("wedged", 2, wedged)

	ack := f.submit(testSpec)
	select {
	case <-started:
	case <-time.After(10 * time.Second):
		t.Fatal("wedged worker never leased a job")
	}
	f.startWorker("healthy", 2, fakeSim)

	got := f.streamAll(ack.ResultsURL)
	want := singleNodeNDJSON(t, testSpec, fakeSim)
	if got != want {
		t.Errorf("stream differs after job-timeout recovery:\n--- fleet ---\n%s--- single ---\n%s", got, want)
	}
	st := f.coord.Stats()
	if st.Requeued == 0 {
		t.Errorf("wedged leases never timed out: %+v", st)
	}
	if st.Expired != 0 {
		t.Errorf("heartbeating worker was expired (timeout should requeue, not expire): %+v", st)
	}
}

// TestRetryCapFallsBackLocally starves the fleet: every worker leases
// jobs and vanishes without reporting. After MaxAttempts such leases a
// job must be simulated locally by the coordinator, so the sweep still
// completes.
func TestRetryCapFallsBackLocally(t *testing.T) {
	f := newFleet(t, dispatch.Config{
		LeaseTTL:    100 * time.Millisecond,
		MaxAttempts: 2,
	})

	// A "black hole" worker: leases jobs, never finishes one, and stops
	// polling after its first grab so its lease expires. Its simulations
	// stay parked until test cleanup — after its context is dead — so it
	// can never report a result.
	release := make(chan struct{})
	t.Cleanup(func() { close(release) })
	spawnBlackHole := func() {
		grabbed := make(chan struct{}, 64)
		kill := f.startWorker("blackhole", 8, func(j sweep.Job) sim.Result {
			grabbed <- struct{}{}
			<-release
			return sim.Result{}
		})
		go func() {
			select {
			case <-grabbed:
			case <-time.After(5 * time.Second):
			}
			kill()
		}()
	}
	spawnBlackHole()
	spawnBlackHole()

	spec := `{"instructions": 1000, "benchmarks": ["compress"], "architectures": [{"kind": "1cycle"}]}`
	ack := f.submit(spec)
	got := f.streamAll(ack.ResultsURL)
	want := singleNodeNDJSON(t, spec, fakeSim)
	if got != want {
		t.Errorf("fallback stream differs from single-node output:\ngot:  %swant: %s", got, want)
	}
	if st := f.coord.Stats(); st.Fallbacks == 0 {
		t.Errorf("sweep completed without local fallbacks: %+v", st)
	}
}

// TestNoWorkersFallsBackLocally pins the empty-fleet liveness guarantee:
// a sweep submitted to a coordinator that no worker ever joins must
// still complete (the janitor drains the queue into local fallback after
// a workerless lease TTL), byte-identical to a single-node run.
func TestNoWorkersFallsBackLocally(t *testing.T) {
	f := newFleet(t, dispatch.Config{LeaseTTL: 100 * time.Millisecond})
	spec := `{"instructions": 1000, "benchmarks": ["compress", "swim"], "architectures": [{"kind": "1cycle"}]}`
	ack := f.submit(spec)
	got := f.streamAll(ack.ResultsURL)
	want := singleNodeNDJSON(t, spec, fakeSim)
	if got != want {
		t.Errorf("workerless stream differs from single-node output:\ngot:  %swant: %s", got, want)
	}
	st := f.coord.Stats()
	if st.Fallbacks == 0 || st.Completed != 0 {
		t.Errorf("workerless sweep stats = %+v, want only local fallbacks", st)
	}
}

// TestCapacityClampIsHonored registers a greedy worker against a
// coordinator that grants less; the worker must budget against the
// granted capacity, never exceeding it in flight.
func TestCapacityClampIsHonored(t *testing.T) {
	var running, peak atomic.Int64
	tracked := func(j sweep.Job) sim.Result {
		n := running.Add(1)
		for {
			p := peak.Load()
			if n <= p || peak.CompareAndSwap(p, n) {
				break
			}
		}
		time.Sleep(2 * time.Millisecond)
		running.Add(-1)
		return fakeSim(j)
	}
	f := newFleet(t, dispatch.Config{MaxCapacity: 1})
	f.startWorker("greedy", 8, tracked)

	ack := f.submit(testSpec)
	f.streamAll(ack.ResultsURL)
	if p := peak.Load(); p > 1 {
		t.Errorf("worker ran %d simulations concurrently; coordinator granted capacity 1", p)
	}
}

// TestWorkersEndpoint pins the fleet listing and its counters.
func TestWorkersEndpoint(t *testing.T) {
	f := newFleet(t, dispatch.Config{})
	f.startWorker("alpha", 2, fakeSim)

	// Registration is asynchronous; wait for the listing to show it.
	deadline := time.Now().Add(5 * time.Second)
	for {
		resp, err := http.Get(f.ts.URL + "/v1/workers")
		if err != nil {
			t.Fatal(err)
		}
		var out struct {
			Workers []struct {
				ID       string `json:"id"`
				Name     string `json:"name"`
				Capacity int    `json:"capacity"`
			} `json:"workers"`
			Stats dispatch.Stats `json:"stats"`
		}
		err = json.NewDecoder(resp.Body).Decode(&out)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if len(out.Workers) == 1 {
			if w := out.Workers[0]; w.Name != "alpha" || w.Capacity != 2 || !strings.HasPrefix(w.ID, "w") {
				t.Errorf("worker listing = %+v", w)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("worker never appeared in /v1/workers")
		}
		time.Sleep(5 * time.Millisecond)
	}

	// The dispatch gauges appear on /metrics in coordinator mode.
	resp, err := http.Get(f.ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, want := range []string{"rfserved_dispatch_workers 1", "rfserved_dispatch_tasks_pending"} {
		if !strings.Contains(string(body), want) {
			t.Errorf("metrics missing %q", want)
		}
	}
}

// wireAssignment mirrors the poll-response job entry of the HTTP
// protocol for raw-protocol tests.
type wireAssignment struct {
	Task uint64    `json:"task"`
	Key  string    `json:"key"`
	Job  sweep.Job `json:"job"`
}

// postJSON exchanges one raw JSON request against the coordinator.
func postJSON(t *testing.T, url string, body any, out any) {
	t.Helper()
	data, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(resp.Body)
		t.Fatalf("%s returned %d: %s", url, resp.StatusCode, msg)
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		t.Fatal(err)
	}
}

// TestLostPollResponseLeasesReconciled drives the protocol raw to pin
// the ghost-lease defense: a worker that never received a poll response
// keeps polling (renewing its lease), so the coordinator must detect the
// orphaned assignments from the holding inventory and requeue them.
func TestLostPollResponseLeasesReconciled(t *testing.T) {
	// Expiry cannot rescue these ghosts no matter the TTL — the worker
	// keeps polling, which renews the lease; only reconciliation can.
	// The short TTL just keeps the long-poll holds (TTL/4) test-sized.
	f := newFleet(t, dispatch.Config{LeaseTTL: 400 * time.Millisecond})
	ack := f.submit(testSpec)

	var reg struct {
		ID string `json:"id"`
	}
	postJSON(t, f.ts.URL+"/v1/workers/register", map[string]any{"capacity": 6}, &reg)
	pollURL := f.ts.URL + "/v1/workers/" + reg.ID + "/poll"

	// Lease two jobs and pretend the response was lost on the wire.
	var lost struct {
		Jobs []wireAssignment `json:"jobs"`
	}
	deadline := time.Now().Add(5 * time.Second)
	for len(lost.Jobs) == 0 {
		if time.Now().After(deadline) {
			t.Fatal("queue never offered jobs")
		}
		postJSON(t, pollURL, map[string]any{"want": 2, "holding": []uint64{}}, &lost)
	}

	// The next poll truthfully reports holding nothing; the coordinator
	// must requeue the ghosts instead of leaving them assigned forever.
	var again struct {
		Jobs []wireAssignment `json:"jobs"`
	}
	postJSON(t, pollURL, map[string]any{"want": 0, "holding": []uint64{}}, &again)
	if st := f.coord.Stats(); st.Requeued < uint64(len(lost.Jobs)) {
		t.Fatalf("ghost leases not requeued: lost %d, stats %+v", len(lost.Jobs), st)
	}

	// The honest worker now executes everything it is offered; the sweep
	// must complete byte-identical despite the earlier lost response.
	held := []uint64{}
	results := []map[string]any{}
	for {
		var resp struct {
			Jobs []wireAssignment `json:"jobs"`
		}
		postJSON(t, pollURL, map[string]any{
			"want": 6, "holding": held, "results": results,
		}, &resp)
		held, results = nil, nil
		if len(resp.Jobs) == 0 {
			st := f.status(ack.StatusURL)
			if st.State == "done" {
				break
			}
			continue
		}
		for _, a := range resp.Jobs {
			results = append(results, map[string]any{
				"task": a.Task, "key": a.Key, "result": fakeSim(a.Job),
			})
			held = append(held, a.Task)
		}
	}
	got := f.streamAll(ack.ResultsURL)
	want := singleNodeNDJSON(t, testSpec, fakeSim)
	if got != want {
		t.Errorf("stream differs after a lost poll response:\n--- fleet ---\n%s--- single ---\n%s", got, want)
	}
	if st := f.coord.Stats(); st.Fallbacks != 0 {
		t.Errorf("recovery leaked into local fallback: %+v", st)
	}
}

// TestTrailingSlashCoordinatorURL pins URL normalization: a -join URL
// with a trailing slash must still register (ServeMux would otherwise
// 301 the POST into a GET and the worker would retry a 405 forever).
func TestTrailingSlashCoordinatorURL(t *testing.T) {
	f := newFleet(t, dispatch.Config{})
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	f.mu.Lock()
	f.cancels = append(f.cancels, cancel)
	f.done = append(f.done, done)
	f.mu.Unlock()
	go func() {
		done <- dispatch.RunWorker(ctx, dispatch.WorkerConfig{
			Coordinator: f.ts.URL + "/", Capacity: 2, Simulate: fakeSim,
		})
	}()

	deadline := time.Now().Add(5 * time.Second)
	for f.coord.Stats().Workers == 0 {
		if time.Now().After(deadline) {
			t.Fatal("worker with trailing-slash URL never registered")
		}
		time.Sleep(5 * time.Millisecond)
	}
	spec := `{"instructions":1000,"benchmarks":["compress"],"architectures":[{"kind":"1cycle"}]}`
	ack := f.submit(spec)
	f.streamAll(ack.ResultsURL)
	if st := f.coord.Stats(); st.Completed == 0 {
		t.Errorf("job did not run through the slash-joined worker: %+v", st)
	}
}

// TestPollUnknownWorker pins the re-registration contract: polling with
// a stale id must 404 so the worker knows to re-register.
func TestPollUnknownWorker(t *testing.T) {
	f := newFleet(t, dispatch.Config{})
	resp, err := http.Post(f.ts.URL+"/v1/workers/w999999/poll", "application/json",
		strings.NewReader(`{"want": 1}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("stale poll returned %d, want 404", resp.StatusCode)
	}
}

// TestDuplicateJobsShareOneTask submits the same spec through two
// concurrent sweeps; the fleet must simulate each unique configuration
// exactly once even though neither sweep hits the cache when it starts.
func TestDuplicateJobsShareOneTask(t *testing.T) {
	var sims atomic.Int64
	block := make(chan struct{})
	slow := func(j sweep.Job) sim.Result {
		sims.Add(1)
		<-block
		return fakeSim(j)
	}
	f := newFleet(t, dispatch.Config{LeaseTTL: time.Second})
	f.startWorker("slow", 8, slow)

	a := f.submit(testSpec)
	b := f.submit(testSpec)
	// Both sweeps must be parked against the dispatcher before any job
	// can finish. Each sweep's cache scan records 6 misses and precedes
	// its Simulate calls, so 12 misses means both are enqueuing; the
	// grace sleep covers the last goroutine spawns.
	deadline := time.Now().Add(5 * time.Second)
	for f.srv.CacheStats().Misses < 12 {
		if time.Now().After(deadline) {
			t.Fatal("second sweep never scanned its jobs")
		}
		time.Sleep(2 * time.Millisecond)
	}
	time.Sleep(100 * time.Millisecond)
	close(block)
	gotA := f.streamAll(a.ResultsURL)
	gotB := f.streamAll(b.ResultsURL)
	if gotA != gotB {
		t.Error("concurrent identical sweeps streamed different bytes")
	}
	if n := sims.Load(); n != 6 {
		t.Errorf("fleet simulated %d jobs for two identical 6-job sweeps, want 6", n)
	}
}

// TestCloseUnblocksSimulate pins shutdown liveness: Close must resolve
// every parked Simulate call through the local fallback.
func TestCloseUnblocksSimulate(t *testing.T) {
	coord := dispatch.NewCoordinator(dispatch.Config{Fallback: fakeSim})
	jobs := specJobs(t, testSpec)

	var wg sync.WaitGroup
	results := make([]sim.Result, 3)
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i] = coord.Simulate(jobs[i])
		}(i)
	}
	time.Sleep(20 * time.Millisecond) // let the calls park (no workers exist)
	coord.Close()
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Close left Simulate callers blocked")
	}
	for i := range results {
		if want := fakeSim(jobs[i]); results[i].Cycles != want.Cycles || results[i].Instructions != want.Instructions {
			t.Errorf("job %d: fallback result = %+v, want %+v", i, results[i], want)
		}
	}
	// After Close, Simulate degrades to direct local execution.
	if got, want := coord.Simulate(jobs[3]), fakeSim(jobs[3]); got.Cycles != want.Cycles {
		t.Errorf("post-Close Simulate = %+v, want %+v", got, want)
	}
}

func specJobs(t *testing.T, spec string) []sweep.Job {
	t.Helper()
	s, err := sweep.ParseSpec(strings.NewReader(spec))
	if err != nil {
		t.Fatal(err)
	}
	jobs, err := s.Jobs()
	if err != nil {
		t.Fatal(err)
	}
	return jobs
}

// TestPriorityOrdering: with a single-slot worker draining the queue
// serially, queued tasks are assigned strictly by tenant priority tier
// (higher first), regardless of enqueue order.
func TestPriorityOrdering(t *testing.T) {
	f := newFleet(t, dispatch.Config{})

	// Nine unique jobs (distinct instruction budgets → distinct content
	// keys) across three tiers, enqueued lowest-tier first so FIFO order
	// alone would fail the assertion.
	type queued struct {
		job  sweep.Job
		prio int
	}
	var qs []queued
	tiers := []struct {
		name string
		prio int
	}{{"free", 0}, {"standard", 2}, {"premium", 5}}
	n := 0
	for _, tier := range tiers {
		for i := 0; i < 3; i++ {
			n++
			spec := fmt.Sprintf(`{"instructions": %d, "benchmarks": ["compress"],
			  "architectures": [{"kind": "1cycle"}]}`, 1000*n)
			qs = append(qs, queued{specJobs(t, spec)[0], tier.prio})
		}
	}
	prioOf := make(map[uint64]int, len(qs))
	for _, q := range qs {
		prioOf[q.job.Config.MaxInstructions] = q.prio
	}

	// Park all nine in the queue before any worker exists. Enqueue order
	// is sequential (each call confirmed queued via Stats before the
	// next), so intra-tier FIFO is deterministic too.
	var wg sync.WaitGroup
	for i, q := range qs {
		wg.Add(1)
		go func(q queued) {
			defer wg.Done()
			ctx := tenant.NewContext(context.Background(),
				tenant.Admission{Tenant: fmt.Sprintf("prio%d", q.prio), Priority: q.prio})
			f.coord.SimulateContext(ctx, q.job)
		}(q)
		deadline := time.Now().Add(5 * time.Second)
		for f.coord.Stats().Pending != i+1 {
			if time.Now().After(deadline) {
				t.Fatalf("task %d never queued", i)
			}
			time.Sleep(time.Millisecond)
		}
	}

	// One worker, one slot: assignment order is pop order.
	var mu sync.Mutex
	var order []uint64
	f.startWorker("serial", 1, func(j sweep.Job) sim.Result {
		mu.Lock()
		order = append(order, j.Config.MaxInstructions)
		mu.Unlock()
		return fakeSim(j)
	})
	wg.Wait()

	mu.Lock()
	defer mu.Unlock()
	if len(order) != len(qs) {
		t.Fatalf("worker ran %d jobs, want %d", len(order), len(qs))
	}
	wantPrios := []int{5, 5, 5, 2, 2, 2, 0, 0, 0}
	for i, instr := range order {
		if prioOf[instr] != wantPrios[i] {
			got := make([]int, len(order))
			for j, in := range order {
				got[j] = prioOf[in]
			}
			t.Fatalf("execution tier order = %v, want %v", got, wantPrios)
		}
	}
	// Within the premium tier the three jobs ran in enqueue order.
	for i := 1; i < 3; i++ {
		if order[i] < order[i-1] {
			t.Errorf("intra-tier order not FIFO: %v", order[:3])
		}
	}
}

// TestWorkerLockstepBatches pins the worker batch seam: with a
// SimulateBatch hook, every batch a worker executes holds same-workload
// jobs only, every leased job reaches the hook exactly once, and the
// stream stays byte-identical to a single-node run.
func TestWorkerLockstepBatches(t *testing.T) {
	var mu sync.Mutex
	var batches [][]sweep.Job
	batch := func(js []sweep.Job) []sim.Result {
		mu.Lock()
		batches = append(batches, js)
		mu.Unlock()
		res := make([]sim.Result, len(js))
		for i, j := range js {
			res[i] = fakeSim(j)
		}
		return res
	}
	f := newFleet(t, dispatch.Config{})
	ack := f.submit(testSpec) // queue all 6 jobs before the worker polls

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	f.mu.Lock()
	f.cancels = append(f.cancels, cancel)
	f.done = append(f.done, done)
	f.mu.Unlock()
	go func() {
		done <- dispatch.RunWorker(ctx, dispatch.WorkerConfig{
			Coordinator:   f.ts.URL,
			Name:          "batcher",
			Capacity:      6,
			SimulateBatch: batch,
		})
	}()

	got := f.streamAll(ack.ResultsURL)
	want := singleNodeNDJSON(t, testSpec, fakeSim)
	if got != want {
		t.Errorf("batched fleet stream differs from single-node output:\n--- fleet ---\n%s--- single ---\n%s", got, want)
	}
	mu.Lock()
	defer mu.Unlock()
	total := 0
	for _, js := range batches {
		total += len(js)
		for _, j := range js[1:] {
			if j.Profile != js[0].Profile {
				t.Errorf("batch mixes workloads: %s and %s", js[0].Profile.Name, j.Profile.Name)
			}
		}
	}
	if total != 6 {
		t.Errorf("batches covered %d jobs, want 6", total)
	}
	if st := f.coord.Stats(); st.Completed != 6 || st.Fallbacks != 0 {
		t.Errorf("coordinator stats = %+v, want 6 remote completions and no fallbacks", st)
	}
}
