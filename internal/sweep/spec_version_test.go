package sweep

import (
	"strings"
	"testing"
)

// TestParseSpecSchemaVersion pins the versioned decode path: an absent
// stamp means the current version, the current version is accepted
// explicitly, and anything else is rejected loudly.
func TestParseSpecSchemaVersion(t *testing.T) {
	cases := []struct {
		name    string
		spec    string
		wantErr string
	}{
		{"absent", `{"architectures":[{"kind":"1cycle"}]}`, ""},
		{"current", `{"schema":1,"architectures":[{"kind":"1cycle"}]}`, ""},
		{"future", `{"schema":2,"architectures":[{"kind":"1cycle"}]}`, "schema version 2 not supported"},
		{"negative", `{"schema":-1,"architectures":[{"kind":"1cycle"}]}`, "schema version -1 not supported"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ParseSpec(strings.NewReader(tc.spec))
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("ParseSpec: %v", err)
				}
				return
			}
			if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("ParseSpec error = %v, want containing %q", err, tc.wantErr)
			}
		})
	}
}

// TestParseSpecUnknownFields pins the fail-loud contract: a typo'd key
// at any nesting level is an error, never silently ignored.
func TestParseSpecUnknownFields(t *testing.T) {
	for _, spec := range []string{
		`{"architectures":[{"kind":"1cycle"}],"instrs":5000}`,
		`{"architectures":[{"kind":"1cycle","portz":[1]}]}`,
		`{"benchmark":["compress"],"architectures":[{"kind":"1cycle"}]}`,
	} {
		if _, err := ParseSpec(strings.NewReader(spec)); err == nil {
			t.Errorf("ParseSpec accepted a spec with an unknown field: %s", spec)
		} else if !strings.Contains(err.Error(), "unknown field") {
			t.Errorf("ParseSpec error %v does not name the unknown field for %s", err, spec)
		}
	}
}

// TestRegisterFamilyRejects pins registry error cases surfaced through
// the spec path.
func TestSpecUnknownKind(t *testing.T) {
	_, err := ParseSpec(strings.NewReader(`{"architectures":[{"kind":"warp-drive"}]}`))
	if err == nil || !strings.Contains(err.Error(), `unknown architecture kind "warp-drive"`) {
		t.Fatalf("ParseSpec error = %v, want unknown architecture kind", err)
	}
}
