package sweep

import (
	"sync"

	"repro/internal/sim"
)

// Cache stores simulation results by job content address. Implementations
// must be safe for concurrent use; the Runner calls them from its worker
// goroutines. A Cache is best-effort: a Get miss after a Put of the same
// key is allowed (an evicting or persistent cache may drop entries), and
// results are deterministic per key, so concurrent Puts of one key always
// carry identical values.
//
// The in-memory MemCache, the disk-backed store in internal/store, and
// the two-level Tiered combination all satisfy it.
type Cache interface {
	// Get returns the cached result for a key, if present.
	Get(Key) (sim.Result, bool)
	// Put records a result under its key.
	Put(Key, sim.Result)
}

// MemCache is the process-local Cache: a mutex-guarded map. It is the
// Runner's default when no Cache is configured.
type MemCache struct {
	mu sync.Mutex
	m  map[Key]sim.Result
}

// NewMemCache returns an empty in-memory cache.
func NewMemCache() *MemCache {
	return &MemCache{m: make(map[Key]sim.Result)}
}

// Get returns the cached result for a key, if present.
func (c *MemCache) Get(k Key) (sim.Result, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	res, ok := c.m[k]
	return res, ok
}

// Put records a result under its key.
func (c *MemCache) Put(k Key, res sim.Result) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.m[k] = res
}

// Len returns the number of distinct results held.
func (c *MemCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.m)
}

// Reset drops every entry.
func (c *MemCache) Reset() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.m = make(map[Key]sim.Result)
}

// tiered is a two-level cache: a fast front (typically a MemCache) over a
// larger or persistent back (typically the disk store).
type tiered struct {
	front, back Cache
}

// Tiered combines two caches. Get tries front then back, promoting back
// hits into the front; Put writes through to both. Either level may be
// nil, in which case the other is returned as-is.
func Tiered(front, back Cache) Cache {
	if front == nil {
		return back
	}
	if back == nil {
		return front
	}
	return &tiered{front: front, back: back}
}

func (t *tiered) Get(k Key) (sim.Result, bool) {
	if res, ok := t.front.Get(k); ok {
		return res, true
	}
	res, ok := t.back.Get(k)
	if ok {
		t.front.Put(k, res)
	}
	return res, ok
}

func (t *tiered) Put(k Key, res sim.Result) {
	t.front.Put(k, res)
	t.back.Put(k, res)
}
