package sweep

import (
	"bytes"
	"reflect"
	"sync"
	"testing"

	"repro/internal/sim"
)

// sixFamilySpec builds a sweep touching all six built-in register file
// families on two workloads — the grouping shape of a real paper sweep.
func sixFamilySpec() *Spec {
	return &Spec{
		Instructions: 25000,
		Benchmarks:   []string{"compress", "swim"},
		Architectures: []ArchMatrix{
			{Kind: "1cycle"}, {Kind: "2cycle"}, {Kind: "2cycle1b"},
			{Kind: "rfcache"}, {Kind: "onelevel"}, {Kind: "replicated"},
		},
	}
}

// ndjsonOf runs jobs through a fresh runner and renders the NDJSON the
// CLIs and server would emit.
func ndjsonOf(t *testing.T, cfg RunnerConfig, jobs []Job, parallelism int) []byte {
	t.Helper()
	r := NewRunner(cfg)
	outs := r.RunOutcomes(jobs, parallelism)
	rep := NewReport("lockstep-test", jobs, outs, r.CacheStats())
	var buf bytes.Buffer
	if err := rep.WriteNDJSON(&buf); err != nil {
		t.Fatalf("write ndjson: %v", err)
	}
	return buf.Bytes()
}

// TestLockstepMatchesSequential is the wire-level lockstep contract: the
// NDJSON a lockstep sweep emits is byte-identical to the sequential
// path's, across all six built-in families, at parallelism 1 and 8.
func TestLockstepMatchesSequential(t *testing.T) {
	if testing.Short() {
		t.Skip("simulates 12 configurations twice")
	}
	jobs, err := sixFamilySpec().Jobs()
	if err != nil {
		t.Fatalf("expand spec: %v", err)
	}
	if len(jobs) != 12 {
		t.Fatalf("spec expanded to %d jobs, want 12", len(jobs))
	}
	want := ndjsonOf(t, RunnerConfig{Lockstep: 1}, jobs, 1)
	for _, parallelism := range []int{1, 8} {
		got := ndjsonOf(t, RunnerConfig{}, jobs, parallelism)
		if !bytes.Equal(got, want) {
			t.Errorf("parallelism %d: lockstep NDJSON differs from sequential:\nlockstep:\n%s\nsequential:\n%s",
				parallelism, got, want)
		}
	}
}

// TestLockstepGroups pins the grouping contract: same-workload jobs share
// a group regardless of configuration, seed overrides split workloads,
// width caps group size, and order is first-appearance.
func TestLockstepGroups(t *testing.T) {
	jobs, err := (&Spec{
		Instructions:  5000,
		Benchmarks:    []string{"compress", "swim"},
		Seeds:         []uint64{0, 7},
		Architectures: []ArchMatrix{{Kind: "1cycle"}, {Kind: "rfcache"}},
	}).Jobs()
	if err != nil {
		t.Fatalf("expand spec: %v", err)
	}
	// 2 architectures × 2 benchmarks × 2 seeds = 8 jobs, 4 workloads.
	groups := LockstepGroups(jobs, 0)
	if len(groups) != 4 {
		t.Fatalf("got %d groups, want 4 (one per benchmark×seed): %v", len(groups), groups)
	}
	seen := 0
	for _, g := range groups {
		if len(g) != 2 {
			t.Errorf("group %v has %d jobs, want 2", g, len(g))
		}
		p := jobs[g[0]].profile()
		for _, i := range g {
			if jobs[i].profile() != p {
				t.Errorf("group %v mixes workloads", g)
			}
			seen++
		}
	}
	if seen != len(jobs) {
		t.Errorf("groups cover %d jobs, want %d", seen, len(jobs))
	}
	// Width 1 degenerates to singleton groups covering every job once.
	narrow := LockstepGroups(jobs, 1)
	if len(narrow) != len(jobs) {
		t.Fatalf("width 1: got %d groups, want %d", len(narrow), len(jobs))
	}
	covered := make([]bool, len(jobs))
	for _, g := range narrow {
		if len(g) != 1 {
			t.Fatalf("width 1: group %v not a singleton", g)
		}
		if covered[g[0]] {
			t.Fatalf("width 1: job %d appears twice", g[0])
		}
		covered[g[0]] = true
	}
}

// TestSimulateLockstepRejectsMixedWorkloads pins the misuse guard: a batch
// spanning two workloads must panic rather than silently simulate one
// job on another's trace.
func TestSimulateLockstepRejectsMixedWorkloads(t *testing.T) {
	jobs, err := (&Spec{
		Instructions:  5000,
		Benchmarks:    []string{"compress", "swim"},
		Architectures: []ArchMatrix{{Kind: "1cycle"}},
	}).Jobs()
	if err != nil || len(jobs) != 2 {
		t.Fatalf("expand spec: %v (%d jobs)", err, len(jobs))
	}
	defer func() {
		if recover() == nil {
			t.Errorf("SimulateLockstep accepted a mixed-workload batch")
		}
	}()
	SimulateLockstep(jobs)
}

// TestLockstepDisabledForCustomSimulate pins the hook contract: a custom
// per-job Simulate sees every job individually unless a batch hook is
// also provided.
func TestLockstepDisabledForCustomSimulate(t *testing.T) {
	jobs, err := sixFamilySpec().Jobs()
	if err != nil {
		t.Fatalf("expand spec: %v", err)
	}
	var mu sync.Mutex
	got := make(map[Key]int)
	r := NewRunner(RunnerConfig{
		Simulate: func(j Job) (res sim.Result) {
			mu.Lock()
			got[j.Key()]++
			mu.Unlock()
			return
		},
	})
	r.RunOutcomes(jobs, 1)
	want := make(map[Key]int)
	for _, j := range jobs {
		want[j.Key()]++
	}
	// Duplicate keys within the batch simulate once; every distinct job
	// must reach the custom hook exactly once.
	for k := range want {
		want[k] = 1
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("custom Simulate saw %d distinct jobs, want %d", len(got), len(want))
	}
}
