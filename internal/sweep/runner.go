package sweep

import (
	"runtime"
	"sync"

	"repro/internal/sim"
)

// Progress reports one finished job to the RunnerConfig.OnProgress
// callback.
type Progress struct {
	// Done and Total count jobs of the current batch.
	Done, Total int
	// Index is the job's position in the batch.
	Index int
	// Job is the finished job.
	Job Job
	// Cached marks a result served from the cache (or deduplicated
	// against an identical job earlier in the same batch).
	Cached bool
}

// CacheStats counts cache effectiveness across a Runner's lifetime. A job
// counts as a hit when its result was not simulated for it: it was found
// in the cache, or it duplicated another job of the same batch.
type CacheStats struct {
	Hits   uint64 `json:"hits"`
	Misses uint64 `json:"misses"`
}

// RunnerConfig configures a Runner. The zero value is usable: GOMAXPROCS
// workers, caching enabled, no progress callback.
type RunnerConfig struct {
	// Parallelism bounds concurrent simulations; 0 uses GOMAXPROCS.
	Parallelism int
	// OnProgress, when non-nil, is called after each job of a batch
	// resolves. Calls are serialized.
	OnProgress func(Progress)
	// Simulate overrides the simulation function (tests); nil runs the
	// real simulator.
	Simulate func(Job) sim.Result
	// DisableCache turns the result cache off; every job simulates.
	DisableCache bool
}

// Runner executes job batches through a bounded worker pool, memoizing
// results by job content. It is safe for concurrent use, and its cache
// persists across Run calls.
type Runner struct {
	cfg RunnerConfig

	mu    sync.Mutex
	cache map[Key]sim.Result
	stats CacheStats
}

// NewRunner returns a Runner with the given configuration.
func NewRunner(cfg RunnerConfig) *Runner {
	if cfg.Simulate == nil {
		cfg.Simulate = simulate
	}
	return &Runner{cfg: cfg, cache: make(map[Key]sim.Result)}
}

// Outcome is one job's result plus its cache provenance.
type Outcome struct {
	// Result holds the simulation measurements.
	Result sim.Result
	// Key is the job's content address.
	Key Key
	// Cached marks a result not simulated for this job (cache hit or
	// within-batch duplicate).
	Cached bool
}

// RunOutcomes executes the batch and reports per-job results with cache
// provenance, in job order. parallelism overrides the configured bound
// for this batch; 0 defers to RunnerConfig.Parallelism, then GOMAXPROCS.
// Results are identical at every parallelism level.
func (r *Runner) RunOutcomes(jobs []Job, parallelism int) []Outcome {
	if parallelism <= 0 {
		parallelism = r.cfg.Parallelism
	}
	if parallelism <= 0 {
		parallelism = runtime.GOMAXPROCS(0)
	}
	outs := make([]Outcome, len(jobs))

	// Resolve each job against the cache, and group the rest by key so
	// within-batch duplicates simulate once. firstOf holds, per unique
	// key, the index of the job that will simulate it; later indices with
	// the same key are hits.
	var unique []int
	waiters := make(map[Key][]int)
	fromCache := make([]bool, len(jobs))
	done := 0
	var progressMu sync.Mutex
	emit := func(i int, cached bool) {
		progressMu.Lock()
		defer progressMu.Unlock()
		done++
		if r.cfg.OnProgress != nil {
			r.cfg.OnProgress(Progress{Done: done, Total: len(jobs), Index: i, Job: jobs[i], Cached: cached})
		}
	}

	r.mu.Lock()
	for i := range jobs {
		k := jobs[i].Key()
		outs[i].Key = k
		if !r.cfg.DisableCache {
			if res, ok := r.cache[k]; ok {
				outs[i].Result = res
				outs[i].Cached = true
				fromCache[i] = true
				r.stats.Hits++
				continue
			}
			if _, dup := waiters[k]; dup {
				waiters[k] = append(waiters[k], i)
				outs[i].Cached = true
				r.stats.Hits++
				continue
			}
			waiters[k] = []int{}
		}
		unique = append(unique, i)
		r.stats.Misses++
	}
	r.mu.Unlock()

	// Report jobs resolved from the cache before any simulation starts;
	// within-batch duplicates are reported when their unique job finishes.
	for i := range jobs {
		if fromCache[i] {
			emit(i, true)
		}
	}

	sem := make(chan struct{}, parallelism)
	var wg sync.WaitGroup
	for _, i := range unique {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			res := r.cfg.Simulate(jobs[i])
			outs[i].Result = res
			k := outs[i].Key
			var dups []int
			r.mu.Lock()
			if !r.cfg.DisableCache {
				r.cache[k] = res
				dups = waiters[k]
				for _, w := range dups {
					outs[w].Result = res
				}
			}
			r.mu.Unlock()
			emit(i, false)
			for _, w := range dups {
				emit(w, true)
			}
		}(i)
	}
	wg.Wait()
	return outs
}

// CacheStats returns the lifetime hit/miss counts.
func (r *Runner) CacheStats() CacheStats {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.stats
}

// CacheLen returns the number of distinct results held.
func (r *Runner) CacheLen() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.cache)
}

// ResetCache drops every cached result and zeroes the statistics.
func (r *Runner) ResetCache() {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.cache = make(map[Key]sim.Result)
	r.stats = CacheStats{}
}
