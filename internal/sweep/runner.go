package sweep

import (
	"context"
	"runtime"
	"sync"

	"repro/internal/sim"
)

// Progress reports one finished job to a progress callback.
type Progress struct {
	// Done and Total count jobs of the current batch.
	Done, Total int
	// Index is the job's position in the batch.
	Index int
	// Job is the finished job.
	Job Job
	// Key is the job's content address.
	Key Key
	// Result holds the job's measurements; it is valid by the time the
	// callback runs, whether simulated or served from the cache.
	Result sim.Result
	// Cached marks a result served from the cache (or deduplicated
	// against an identical job earlier in the same batch).
	Cached bool
}

// CacheStats counts cache effectiveness across a Runner's lifetime. A job
// counts as a hit when its result was not simulated for it: it was found
// in the cache, or it duplicated another job of the same batch. Jobs of a
// canceled batch keep the classification they got when the batch was
// scheduled, even if cancellation then skipped their simulation.
type CacheStats struct {
	Hits   uint64 `json:"hits"`
	Misses uint64 `json:"misses"`
}

// RunnerConfig configures a Runner. The zero value is usable: GOMAXPROCS
// workers, in-memory caching, no progress callback.
type RunnerConfig struct {
	// Parallelism bounds concurrent simulations; 0 uses GOMAXPROCS.
	Parallelism int
	// OnProgress, when non-nil, is called after each job of a batch
	// resolves. Calls are serialized per batch.
	OnProgress func(Progress)
	// Simulate overrides the simulation function (tests); nil runs the
	// real simulator.
	Simulate func(Job) sim.Result
	// SimulateContext, when non-nil, takes precedence over Simulate and
	// receives the batch context. It is the seam through which rfserved
	// threads per-request admission metadata (tenant, priority) into its
	// scheduler; the context carries metadata only — implementations must
	// still return a valid Result even when it is already canceled,
	// because the runner caches whatever they return.
	SimulateContext func(context.Context, Job) sim.Result
	// Lockstep controls grouping of same-workload jobs into lockstep
	// batches driven by one shared front-end pass (sim.Lockstep): 0 groups
	// up to DefaultLockstepWidth configurations, 1 disables grouping (the
	// sequential path), n ≥ 2 caps batches at n. Results are bit-identical
	// either way; grouping only removes redundant trace generation and
	// branch prediction work. Grouping activates when the batch hooks
	// below are set or when the per-job Simulate/SimulateContext hooks are
	// left at their defaults — a custom per-job hook expects to see every
	// job and is honored unchanged.
	Lockstep int
	// SimulateBatch, when non-nil, simulates a lockstep group (all jobs
	// share one workload) and returns results in job order. Nil uses
	// SimulateLockstep.
	SimulateBatch func([]Job) []sim.Result
	// SimulateBatchContext, when non-nil, takes precedence over
	// SimulateBatch and receives the batch context, like SimulateContext.
	SimulateBatchContext func(context.Context, []Job) []sim.Result
	// Cache supplies the result cache: an in-memory MemCache, the
	// disk-backed store in internal/store, or a Tiered combination. Nil
	// uses a fresh MemCache.
	Cache Cache
	// DisableCache turns the result cache off; every job simulates.
	DisableCache bool
}

// Runner executes job batches through a bounded worker pool, memoizing
// results by job content in a pluggable Cache. It is safe for concurrent
// use, and its cache persists across Run calls (and, with a disk-backed
// cache, across processes).
type Runner struct {
	cfg   RunnerConfig
	cache Cache
	// customSim records that the caller supplied a per-job simulation hook
	// before defaulting: lockstep grouping then stays off unless a batch
	// hook is also provided, so every job still reaches the custom hook.
	customSim bool

	mu    sync.Mutex
	stats CacheStats
}

// NewRunner returns a Runner with the given configuration.
func NewRunner(cfg RunnerConfig) *Runner {
	custom := cfg.Simulate != nil || cfg.SimulateContext != nil
	if cfg.Simulate == nil {
		cfg.Simulate = Simulate
	}
	cache := cfg.Cache
	if cache == nil {
		cache = NewMemCache()
	}
	return &Runner{cfg: cfg, cache: cache, customSim: custom}
}

// lockstepGroups plans the lockstep batches for the unique (non-cached)
// job indices, or nil when grouping is off. Each group occupies one
// parallelism slot, like a single job on the sequential path.
func (r *Runner) lockstepGroups(jobs []Job, unique []int) [][]int {
	if r.cfg.Lockstep == 1 {
		return nil
	}
	if r.customSim && r.cfg.SimulateBatch == nil && r.cfg.SimulateBatchContext == nil {
		return nil
	}
	width := r.cfg.Lockstep
	if width == 0 {
		width = DefaultLockstepWidth
	}
	uniqJobs := make([]Job, len(unique))
	for n, i := range unique {
		uniqJobs[n] = jobs[i]
	}
	groups := LockstepGroups(uniqJobs, width)
	for _, g := range groups {
		for n := range g {
			g[n] = unique[g[n]]
		}
	}
	return groups
}

// simulateBatch runs one lockstep group through the configured batch hook.
func (r *Runner) simulateBatch(ctx context.Context, js []Job) []sim.Result {
	if r.cfg.SimulateBatchContext != nil {
		return r.cfg.SimulateBatchContext(ctx, js)
	}
	if r.cfg.SimulateBatch != nil {
		return r.cfg.SimulateBatch(js)
	}
	return SimulateLockstep(js)
}

// Outcome is one job's result plus its cache provenance.
type Outcome struct {
	// Result holds the simulation measurements.
	Result sim.Result
	// Key is the job's content address.
	Key Key
	// Cached marks a result not simulated for this job (cache hit or
	// within-batch duplicate).
	Cached bool
}

// RunOutcomes executes the batch and reports per-job results with cache
// provenance, in job order. parallelism overrides the configured bound
// for this batch; 0 defers to RunnerConfig.Parallelism, then GOMAXPROCS.
// Results are identical at every parallelism level.
func (r *Runner) RunOutcomes(jobs []Job, parallelism int) []Outcome {
	outs, _ := r.RunOutcomesContext(context.Background(), jobs, parallelism, nil)
	return outs
}

// RunOutcomesContext is RunOutcomes with cancellation and a per-batch
// progress callback (nil falls back to RunnerConfig.OnProgress). When ctx
// is canceled, jobs that have not started simulating are skipped: their
// Outcome keeps a zero Result, no progress event fires for them, and the
// returned error is ctx.Err(). Jobs already simulating run to completion,
// so every emitted progress event carries a valid result.
func (r *Runner) RunOutcomesContext(ctx context.Context, jobs []Job, parallelism int, onProgress func(Progress)) ([]Outcome, error) {
	if parallelism <= 0 {
		parallelism = r.cfg.Parallelism
	}
	if parallelism <= 0 {
		parallelism = runtime.GOMAXPROCS(0)
	}
	if onProgress == nil {
		onProgress = r.cfg.OnProgress
	}
	outs := make([]Outcome, len(jobs))

	// Resolve each job against the cache, and group the rest by key so
	// within-batch duplicates simulate once. waiters holds, per unique
	// in-flight key, the later indices that share it; they are hits served
	// when the first index finishes. The map is fully built before any
	// worker starts and each key's list is read only by the worker that
	// owns that key, so it needs no locking.
	var unique []int
	waiters := make(map[Key][]int)
	fromCache := make([]bool, len(jobs))
	done := 0
	var progressMu sync.Mutex
	emit := func(i int, cached bool) {
		progressMu.Lock()
		defer progressMu.Unlock()
		done++
		if onProgress != nil {
			onProgress(Progress{
				Done: done, Total: len(jobs), Index: i, Job: jobs[i],
				Key: outs[i].Key, Result: outs[i].Result, Cached: cached,
			})
		}
	}

	var scanned CacheStats
	for i := range jobs {
		k := jobs[i].Key()
		outs[i].Key = k
		if !r.cfg.DisableCache {
			if res, ok := r.cache.Get(k); ok {
				outs[i].Result = res
				outs[i].Cached = true
				fromCache[i] = true
				scanned.Hits++
				continue
			}
			if _, dup := waiters[k]; dup {
				waiters[k] = append(waiters[k], i)
				outs[i].Cached = true
				scanned.Hits++
				continue
			}
			waiters[k] = []int{}
		}
		unique = append(unique, i)
		scanned.Misses++
	}
	r.mu.Lock()
	r.stats.Hits += scanned.Hits
	r.stats.Misses += scanned.Misses
	r.mu.Unlock()

	// Report jobs resolved from the cache before any simulation starts;
	// within-batch duplicates are reported when their unique job finishes.
	for i := range jobs {
		if fromCache[i] {
			emit(i, true)
		}
	}

	// Plan the work units: lockstep groups when grouping is on, one unit
	// per unique job otherwise. Either way a unit occupies one parallelism
	// slot, and a canceled batch skips units that have not started.
	groups := r.lockstepGroups(jobs, unique)
	lockstep := groups != nil
	if !lockstep {
		groups = make([][]int, len(unique))
		for n := range unique {
			groups[n] = unique[n : n+1 : n+1]
		}
	}

	sem := make(chan struct{}, parallelism)
	var wg sync.WaitGroup
	for _, g := range groups {
		if ctx.Err() != nil {
			break
		}
		wg.Add(1)
		go func(g []int) {
			defer wg.Done()
			select {
			case sem <- struct{}{}:
			case <-ctx.Done():
				return
			}
			defer func() { <-sem }()
			if ctx.Err() != nil {
				return
			}
			var results []sim.Result
			if lockstep {
				js := make([]Job, len(g))
				for n, i := range g {
					js[n] = jobs[i]
				}
				results = r.simulateBatch(ctx, js)
				if len(results) != len(g) {
					panic("sweep: batch simulate hook returned wrong result count")
				}
			} else {
				i := g[0]
				var one [1]sim.Result
				if r.cfg.SimulateContext != nil {
					one[0] = r.cfg.SimulateContext(ctx, jobs[i])
				} else {
					one[0] = r.cfg.Simulate(jobs[i])
				}
				results = one[:]
			}
			for n, i := range g {
				res := results[n]
				outs[i].Result = res
				k := outs[i].Key
				var dups []int
				if !r.cfg.DisableCache {
					r.cache.Put(k, res)
					dups = waiters[k]
					for _, w := range dups {
						outs[w].Result = res
					}
				}
				emit(i, false)
				for _, w := range dups {
					emit(w, true)
				}
			}
		}(g)
	}
	wg.Wait()
	return outs, ctx.Err()
}

// CacheStats returns the lifetime hit/miss counts.
func (r *Runner) CacheStats() CacheStats {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.stats
}

// CacheLen returns the number of distinct results held, or -1 when the
// configured Cache does not report a length.
func (r *Runner) CacheLen() int {
	if c, ok := r.cache.(interface{ Len() int }); ok {
		return c.Len()
	}
	return -1
}

// ResetCache zeroes the statistics and, when the configured Cache
// supports it (MemCache does), drops every cached result.
func (r *Runner) ResetCache() {
	if c, ok := r.cache.(interface{ Reset() }); ok {
		c.Reset()
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.stats = CacheStats{}
}
