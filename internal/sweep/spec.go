package sweep

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"

	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/trace"
)

// Spec is a user-defined sweep matrix: the cross product of benchmarks,
// architecture configurations and seed replicates, each run for the same
// instruction budget. It is the JSON input of cmd/rfbatch.
type Spec struct {
	// Name labels the sweep in reports.
	Name string `json:"name,omitempty"`
	// Instructions is the per-run dynamic instruction budget
	// (default 120000).
	Instructions uint64 `json:"instructions,omitempty"`
	// Parallelism bounds concurrent simulations (default GOMAXPROCS).
	Parallelism int `json:"parallelism,omitempty"`
	// Benchmarks names the workloads; empty runs all 18 SPEC95 proxies.
	Benchmarks []string `json:"benchmarks,omitempty"`
	// Seeds lists trace-seed overrides for replicated runs; empty uses
	// each profile's built-in seed.
	Seeds []uint64 `json:"seeds,omitempty"`
	// Architectures holds one matrix per register file family; each
	// expands to the cross product of its dimension lists.
	Architectures []ArchMatrix `json:"architectures"`
}

// ArchMatrix describes one register file family plus per-dimension value
// lists. Every empty list defaults to a single family-appropriate value,
// and the expansion is the cross product of all lists.
type ArchMatrix struct {
	// Kind is the family: 1cycle, 2cycle, 2cycle1b, rfcache, onelevel or
	// replicated.
	Kind string `json:"kind"`
	// ReadPorts and WritePorts list port counts; 0 means unlimited. For
	// onelevel and replicated they are per-bank counts.
	ReadPorts  []int `json:"read_ports,omitempty"`
	WritePorts []int `json:"write_ports,omitempty"`
	// Buses lists rf-cache transfer bus counts; 0 means unlimited.
	Buses []int `json:"buses,omitempty"`
	// UpperSizes lists rf-cache upper bank capacities (default 16).
	UpperSizes []int `json:"upper_sizes,omitempty"`
	// Caching lists rf-cache caching policies: nonbypass, ready, all,
	// none (default nonbypass).
	Caching []string `json:"caching,omitempty"`
	// Prefetch lists rf-cache prefetch policies: demand, firstpair
	// (default firstpair).
	Prefetch []string `json:"prefetch,omitempty"`
	// Banks lists bank counts for onelevel (default 2).
	Banks []int `json:"banks,omitempty"`
	// Clusters lists cluster counts for replicated (default 2).
	Clusters []int `json:"clusters,omitempty"`
	// PhysRegs lists per-file physical register counts (default 128).
	PhysRegs []int `json:"phys_regs,omitempty"`
}

// ParseSpec decodes and validates a JSON sweep specification.
func ParseSpec(r io.Reader) (*Spec, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var s Spec
	if err := dec.Decode(&s); err != nil {
		return nil, fmt.Errorf("sweep: bad spec: %w", err)
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return &s, nil
}

// Validate reports a specification error, or nil. It never expands the
// sweep matrix, so it stays cheap on specs whose cross product is huge;
// use JobCount to bound the expansion before calling Jobs.
func (s *Spec) Validate() error {
	if len(s.Architectures) == 0 {
		return fmt.Errorf("sweep: spec needs at least one architecture")
	}
	for _, b := range s.Benchmarks {
		if _, ok := trace.ByName(b); !ok {
			return fmt.Errorf("sweep: unknown benchmark %q", b)
		}
	}
	for i := range s.Architectures {
		if err := s.Architectures[i].validate(); err != nil {
			return fmt.Errorf("sweep: architectures[%d]: %w", i, err)
		}
	}
	return nil
}

// validate checks the matrix without expanding it: the kind must be
// known, and the policy lists of an rf-cache matrix must parse. (Policy
// lists on other kinds are ignored by expand, so they are ignored here
// too.)
func (a *ArchMatrix) validate() error {
	switch strings.ToLower(a.Kind) {
	case "1cycle", "2cycle", "2cycle1b", "onelevel", "replicated":
		return nil
	case "rfcache":
		for _, cs := range a.Caching {
			if _, err := ParseCachingPolicy(cs); err != nil {
				return err
			}
		}
		for _, ps := range a.Prefetch {
			if _, err := ParsePrefetchPolicy(ps); err != nil {
				return err
			}
		}
		return nil
	case "":
		return fmt.Errorf("architecture kind missing")
	default:
		return fmt.Errorf("unknown architecture kind %q", a.Kind)
	}
}

// MaxJobCount is the saturation bound of JobCount: any spec expanding to
// at least this many jobs reports exactly MaxJobCount. It fits a 32-bit
// int so the package builds on every GOARCH, and it dwarfs any job limit
// a server would actually accept.
const MaxJobCount = 1 << 30

// mulSat multiplies saturating at MaxJobCount; both factors must be
// in [1, MaxJobCount].
func mulSat(a, b int) int {
	if a > MaxJobCount/b {
		return MaxJobCount
	}
	return a * b
}

// countOr is the length a dimension list contributes to the cross
// product: its own length, or 1 when empty (the default applies).
func countOr(n int) int {
	if n == 0 {
		return 1
	}
	return n
}

// pointCount returns how many architecture points the matrix expands to
// (saturating at MaxJobCount), without building them. It mirrors the
// dimension lists expand consumes per kind.
func (a *ArchMatrix) pointCount() int {
	n := mulSat(mulSat(countOr(len(a.ReadPorts)), countOr(len(a.WritePorts))), countOr(len(a.PhysRegs)))
	switch strings.ToLower(a.Kind) {
	case "rfcache":
		n = mulSat(n, countOr(len(a.Buses)))
		n = mulSat(n, countOr(len(a.UpperSizes)))
		n = mulSat(n, countOr(len(a.Caching)))
		n = mulSat(n, countOr(len(a.Prefetch)))
	case "onelevel":
		n = mulSat(n, countOr(len(a.Banks)))
	case "replicated":
		n = mulSat(n, countOr(len(a.Clusters)))
	}
	return n
}

// JobCount returns the number of jobs the spec expands to, without
// allocating the expansion; counts saturate at MaxJobCount. It lets
// callers reject oversized specs before Jobs materializes them.
func (s *Spec) JobCount() (int, error) {
	if err := s.Validate(); err != nil {
		return 0, err
	}
	benchmarks := len(s.Benchmarks)
	if benchmarks == 0 {
		benchmarks = len(trace.All())
	}
	perPoint := mulSat(benchmarks, countOr(len(s.Seeds)))
	total := 0
	for i := range s.Architectures {
		n := mulSat(s.Architectures[i].pointCount(), perPoint)
		if total > MaxJobCount-n {
			return MaxJobCount, nil
		}
		total += n
	}
	return total, nil
}

// instructions returns the budget with its default applied.
func (s *Spec) instructions() uint64 {
	if s.Instructions == 0 {
		return 120000
	}
	return s.Instructions
}

// Jobs expands the matrix into the full job list: for each architecture
// point, every benchmark at every seed.
func (s *Spec) Jobs() ([]Job, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	profiles := trace.All()
	if len(s.Benchmarks) > 0 {
		profiles = nil
		for _, b := range s.Benchmarks {
			p, _ := trace.ByName(b)
			profiles = append(profiles, p)
		}
	}
	seeds := s.Seeds
	if len(seeds) == 0 {
		seeds = []uint64{0}
	}
	var jobs []Job
	for _, a := range s.Architectures {
		specs, err := a.expand()
		if err != nil {
			return nil, err
		}
		for _, spec := range specs {
			for _, p := range profiles {
				for _, seed := range seeds {
					cfg := sim.DefaultConfig(spec.rf, s.instructions())
					if spec.physRegs > 0 {
						cfg.PhysRegs = spec.physRegs
					}
					jobs = append(jobs, Job{Profile: p, Config: cfg, Seed: seed})
				}
			}
		}
	}
	return jobs, nil
}

// point is one expanded architecture configuration.
type point struct {
	rf       sim.RFSpec
	physRegs int
}

// ports maps the spec convention (0 = unlimited) onto core.Unlimited.
func ports(v int) int {
	if v <= 0 {
		return core.Unlimited
	}
	return v
}

// orInts substitutes a default for an empty dimension list.
func orInts(vs []int, def int) []int {
	if len(vs) == 0 {
		return []int{def}
	}
	return vs
}

// orStrings substitutes a default for an empty dimension list.
func orStrings(vs []string, def string) []string {
	if len(vs) == 0 {
		return []string{def}
	}
	return vs
}

// ParseCachingPolicy parses a caching policy name: nonbypass, ready, all
// or none (case-insensitive). It is the one enumeration of policy names,
// shared by sweep specs and the CLIs.
func ParseCachingPolicy(s string) (core.CachingPolicy, error) {
	switch strings.ToLower(s) {
	case "nonbypass":
		return core.CacheNonBypass, nil
	case "ready":
		return core.CacheReady, nil
	case "all":
		return core.CacheAll, nil
	case "none":
		return core.CacheNone, nil
	}
	return 0, fmt.Errorf("unknown caching policy %q", s)
}

// ParsePrefetchPolicy parses a prefetch policy name: demand/on-demand or
// firstpair/first-pair (case-insensitive).
func ParsePrefetchPolicy(s string) (core.PrefetchPolicy, error) {
	switch strings.ToLower(s) {
	case "demand", "on-demand":
		return core.FetchOnDemand, nil
	case "firstpair", "first-pair":
		return core.PrefetchFirstPair, nil
	}
	return 0, fmt.Errorf("unknown prefetch policy %q", s)
}

// portLabel renders a port count for spec names.
func portLabel(v int) string {
	if v == core.Unlimited {
		return "∞"
	}
	return fmt.Sprint(v)
}

// expand returns the cross product of the matrix dimensions as named
// register file specs.
func (a *ArchMatrix) expand() ([]point, error) {
	var out []point
	add := func(rf sim.RFSpec, regs int) {
		if regs != 128 {
			rf.Name = fmt.Sprintf("%s P%d", rf.Name, regs)
		}
		out = append(out, point{rf: rf, physRegs: regs})
	}
	switch strings.ToLower(a.Kind) {
	case "1cycle", "2cycle", "2cycle1b":
		for _, r := range orInts(a.ReadPorts, 0) {
			for _, w := range orInts(a.WritePorts, 0) {
				for _, regs := range orInts(a.PhysRegs, 128) {
					var rf sim.RFSpec
					switch strings.ToLower(a.Kind) {
					case "1cycle":
						rf = sim.Mono1Cycle(ports(r), ports(w))
					case "2cycle":
						rf = sim.Mono2CycleFull(ports(r), ports(w))
					default:
						rf = sim.Mono2CycleSingle(ports(r), ports(w))
					}
					rf.Name = fmt.Sprintf("%s R%sW%s", rf.Name, portLabel(ports(r)), portLabel(ports(w)))
					add(rf, regs)
				}
			}
		}
	case "rfcache":
		for _, r := range orInts(a.ReadPorts, 0) {
			for _, w := range orInts(a.WritePorts, 0) {
				for _, b := range orInts(a.Buses, 0) {
					for _, u := range orInts(a.UpperSizes, 16) {
						for _, cs := range orStrings(a.Caching, "nonbypass") {
							for _, ps := range orStrings(a.Prefetch, "firstpair") {
								for _, regs := range orInts(a.PhysRegs, 128) {
									caching, err := ParseCachingPolicy(cs)
									if err != nil {
										return nil, err
									}
									prefetch, err := ParsePrefetchPolicy(ps)
									if err != nil {
										return nil, err
									}
									cfg := core.PaperCacheConfig()
									cfg.ReadPorts = ports(r)
									cfg.UpperWritePorts = ports(w)
									cfg.LowerWritePorts = ports(w)
									cfg.Buses = ports(b)
									cfg.UpperSize = u
									cfg.Caching = caching
									cfg.Prefetch = prefetch
									rf := sim.CacheSpec(cfg)
									rf.Name = fmt.Sprintf("rf-cache R%sW%sB%s U%d %s+%s",
										portLabel(cfg.ReadPorts), portLabel(cfg.UpperWritePorts),
										portLabel(cfg.Buses), u, cs, ps)
									add(rf, regs)
								}
							}
						}
					}
				}
			}
		}
	case "onelevel":
		for _, banks := range orInts(a.Banks, 2) {
			for _, r := range orInts(a.ReadPorts, 0) {
				for _, w := range orInts(a.WritePorts, 0) {
					for _, regs := range orInts(a.PhysRegs, 128) {
						rf := sim.OneLevelSpec(core.OneLevelConfig{
							Banks:             banks,
							ReadPortsPerBank:  ports(r),
							WritePortsPerBank: ports(w),
						})
						rf.Name = fmt.Sprintf("one-level %db R%sW%s", banks, portLabel(ports(r)), portLabel(ports(w)))
						add(rf, regs)
					}
				}
			}
		}
	case "replicated":
		for _, clusters := range orInts(a.Clusters, 2) {
			for _, r := range orInts(a.ReadPorts, 0) {
				for _, w := range orInts(a.WritePorts, 0) {
					for _, regs := range orInts(a.PhysRegs, 128) {
						rf := sim.ReplicatedSpec(core.ReplicatedConfig{
							Clusters:          clusters,
							ReadPortsPerBank:  ports(r),
							WritePortsPerBank: ports(w),
							RemoteDelay:       1,
						})
						rf.Name = fmt.Sprintf("replicated %dc R%sW%s", clusters, portLabel(ports(r)), portLabel(ports(w)))
						add(rf, regs)
					}
				}
			}
		}
	case "":
		return nil, fmt.Errorf("architecture kind missing")
	default:
		return nil, fmt.Errorf("unknown architecture kind %q", a.Kind)
	}
	return out, nil
}
