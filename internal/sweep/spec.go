package sweep

import (
	"encoding/json"
	"fmt"
	"io"

	"repro/internal/arch"
	"repro/internal/sim"
	"repro/internal/trace"
)

// SchemaVersion is the version of the JSON sweep-spec and wire schema.
// Specs may carry it explicitly ("schema": 1); a missing field means
// version 1 (the schema predates the stamp), and any other value is
// rejected loudly. The rf package re-exports this constant, and the
// rfserved API negotiates it via the X-RF-API-Version header.
const SchemaVersion = 1

// Spec is a user-defined sweep matrix: the cross product of benchmarks,
// architecture configurations and seed replicates, each run for the same
// instruction budget. It is the JSON input of cmd/rfbatch and the
// rfserved submission body.
type Spec struct {
	// Schema is the spec schema version; 0 (absent) means SchemaVersion.
	Schema int `json:"schema,omitempty"`
	// Name labels the sweep in reports.
	Name string `json:"name,omitempty"`
	// Instructions is the per-run dynamic instruction budget
	// (default 120000).
	Instructions uint64 `json:"instructions,omitempty"`
	// Parallelism bounds concurrent simulations (default GOMAXPROCS).
	Parallelism int `json:"parallelism,omitempty"`
	// Priority requests a scheduling tier for the sweep's jobs under
	// contention; higher runs sooner. rfserved clamps it to the submitting
	// tenant's tier, so a tenant cannot outrank its plan by asking.
	// Ignored by local (rfbatch, library) runs, which have no queue to
	// jump.
	Priority int `json:"priority,omitempty"`
	// Benchmarks names the workloads; empty runs all 18 SPEC95 proxies.
	Benchmarks []string `json:"benchmarks,omitempty"`
	// Seeds lists trace-seed overrides for replicated runs; empty uses
	// each profile's built-in seed.
	Seeds []uint64 `json:"seeds,omitempty"`
	// Architectures holds one matrix per register file family; each
	// expands to the cross product of its dimension lists through the
	// family registry (internal/arch, re-exported as rf).
	Architectures []ArchMatrix `json:"architectures"`
}

// ArchMatrix is the registry's matrix type: one register file family
// plus per-dimension value lists. See arch.Matrix for the field schema.
type ArchMatrix = arch.Matrix

// ParseSpec decodes and validates a JSON sweep specification. Unknown
// fields and unsupported schema versions are rejected, so a typo'd or
// drifted spec fails loudly instead of being silently ignored.
func ParseSpec(r io.Reader) (*Spec, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var s Spec
	if err := dec.Decode(&s); err != nil {
		return nil, fmt.Errorf("sweep: bad spec: %w", err)
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return &s, nil
}

// Validate reports a specification error, or nil. It never expands the
// sweep matrix, so it stays cheap on specs whose cross product is huge;
// use JobCount to bound the expansion before calling Jobs.
func (s *Spec) Validate() error {
	if s.Schema != 0 && s.Schema != SchemaVersion {
		return fmt.Errorf("sweep: spec schema version %d not supported (this build speaks %d)",
			s.Schema, SchemaVersion)
	}
	if len(s.Architectures) == 0 {
		return fmt.Errorf("sweep: spec needs at least one architecture")
	}
	for _, b := range s.Benchmarks {
		if _, ok := trace.ByName(b); !ok {
			return fmt.Errorf("sweep: unknown benchmark %q", b)
		}
	}
	for i := range s.Architectures {
		if err := s.Architectures[i].Validate(); err != nil {
			return fmt.Errorf("sweep: architectures[%d]: %w", i, err)
		}
	}
	return nil
}

// MaxJobCount is the saturation bound of JobCount: any spec expanding to
// at least this many jobs reports exactly MaxJobCount (see
// arch.MaxCount).
const MaxJobCount = arch.MaxCount

// JobCount returns the number of jobs the spec expands to, without
// allocating the expansion; counts saturate at MaxJobCount. It lets
// callers reject oversized specs before Jobs materializes them.
func (s *Spec) JobCount() (int, error) {
	if err := s.Validate(); err != nil {
		return 0, err
	}
	benchmarks := len(s.Benchmarks)
	if benchmarks == 0 {
		benchmarks = len(trace.All())
	}
	perPoint := arch.MulSat(benchmarks, arch.CountOr(len(s.Seeds)))
	total := 0
	for i := range s.Architectures {
		n := arch.MulSat(s.Architectures[i].PointCount(), perPoint)
		if total > MaxJobCount-n {
			return MaxJobCount, nil
		}
		total += n
	}
	return total, nil
}

// instructions returns the budget with its default applied.
func (s *Spec) instructions() uint64 {
	if s.Instructions == 0 {
		return 120000
	}
	return s.Instructions
}

// Jobs expands the matrix into the full job list: for each architecture
// point (resolved through the family registry), every benchmark at every
// seed.
func (s *Spec) Jobs() ([]Job, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	profiles := trace.All()
	if len(s.Benchmarks) > 0 {
		profiles = nil
		for _, b := range s.Benchmarks {
			p, _ := trace.ByName(b)
			profiles = append(profiles, p)
		}
	}
	seeds := s.Seeds
	if len(seeds) == 0 {
		seeds = []uint64{0}
	}
	var jobs []Job
	for i := range s.Architectures {
		points, err := s.Architectures[i].Expand()
		if err != nil {
			return nil, err
		}
		for _, pt := range points {
			for _, p := range profiles {
				for _, seed := range seeds {
					cfg := sim.DefaultConfig(pt.RF, s.instructions())
					if pt.PhysRegs > 0 {
						cfg.PhysRegs = pt.PhysRegs
					}
					jobs = append(jobs, Job{Profile: p, Config: cfg, Seed: seed})
				}
			}
		}
	}
	return jobs, nil
}
