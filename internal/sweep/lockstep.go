package sweep

import (
	"repro/internal/sim"
	"repro/internal/trace"
)

// DefaultLockstepWidth caps how many configurations one lockstep batch
// carries when RunnerConfig.Lockstep is 0 (automatic). Wider batches share
// one front-end pass across more back-ends but hold more simulator state
// live at once; 16 covers the paper's per-figure architecture counts.
const DefaultLockstepWidth = 16

// LockstepGroups partitions jobs into lockstep batches: jobs that share a
// workload — the same trace profile after the Seed override is applied —
// are driven by a single front-end pass, so they land in one group, split
// into chunks of at most width (width ≤ 0 means unbounded). The returned
// groups hold indices into jobs; groups appear in order of their first
// job, and jobs keep their relative order within a group. Results are
// independent of the grouping — sim.Lockstep is bit-identical to
// sequential runs — so callers may regroup freely.
func LockstepGroups(jobs []Job, width int) [][]int {
	byProfile := make(map[trace.Profile]int, 8)
	members := make([][]int, 0, 8)
	for i := range jobs {
		p := jobs[i].profile()
		gi, ok := byProfile[p]
		if !ok {
			gi = len(members)
			byProfile[p] = gi
			members = append(members, nil)
		}
		members[gi] = append(members[gi], i)
	}
	var groups [][]int
	for _, g := range members {
		for width > 0 && len(g) > width {
			groups = append(groups, g[:width])
			g = g[width:]
		}
		if len(g) > 0 {
			groups = append(groups, g)
		}
	}
	return groups
}

// SimulateLockstep runs a batch of jobs sharing one workload through a
// single lockstep front-end pass and returns their results in job order.
// It is the Runner's default batch hook and the worker fleet's default
// batch simulator. Every job must carry the same profile (after seed
// override) — the grouping invariant LockstepGroups establishes; it panics
// otherwise, since simulating a job on another job's trace would corrupt
// results silently. A single-job batch takes the plain path, avoiding the
// front-end's chunk buffering for no sharing.
func SimulateLockstep(jobs []Job) []sim.Result {
	if len(jobs) == 0 {
		return nil
	}
	if len(jobs) == 1 {
		return []sim.Result{Simulate(jobs[0])}
	}
	prof := jobs[0].profile()
	cfgs := make([]sim.Config, len(jobs))
	for i := range jobs {
		if jobs[i].profile() != prof {
			panic("sweep: lockstep batch mixes workloads (group with LockstepGroups)")
		}
		cfgs[i] = jobs[i].Config
	}
	return sim.NewLockstep(cfgs, trace.New(prof)).Run()
}
