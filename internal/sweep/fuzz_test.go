package sweep

import (
	"bytes"
	"math"
	"strings"
	"testing"
	"unicode/utf8"
)

// FuzzParseSpec throws arbitrary bytes at the spec parser and checks the
// invariants every accepted spec must satisfy: Jobs never panics, its
// length matches JobCount, and every job has a well-defined content
// address. Seed corpus files live under testdata/fuzz/FuzzParseSpec.
func FuzzParseSpec(f *testing.F) {
	f.Add([]byte(`{"architectures": [{"kind": "1cycle"}]}`))
	f.Add([]byte(`{"name": "x", "instructions": 5000, "benchmarks": ["compress", "swim"],
		"seeds": [1, 2], "parallelism": 3,
		"architectures": [
			{"kind": "rfcache", "read_ports": [2, 4], "write_ports": [0], "buses": [1],
			 "upper_sizes": [8, 16], "caching": ["nonbypass", "ready"], "prefetch": ["demand"]},
			{"kind": "onelevel", "banks": [2, 4]},
			{"kind": "replicated", "clusters": [2], "phys_regs": [96, 128]}
		]}`))
	f.Add([]byte(`{"architectures": [{"kind": "2cycle1b", "read_ports": [-1, 0, 99]}]}`))
	f.Add([]byte(`{"architectures":[{"kind":"nope"}]}`))
	f.Add([]byte(`{`))
	f.Add([]byte(`[]`))
	f.Add([]byte(`{"schema":1,"architectures":[{"kind":"replicated","clusters":[2,4]}]}`))
	f.Add([]byte(`{"schema":2,"architectures":[{"kind":"1cycle"}]}`))
	f.Add([]byte(`{"architectures":[{"kind":"1cycle"}],"instrs":5000}`))
	f.Add([]byte(`{"architectures":[{"kind":"1cycle","portz":[1]}]}`))

	f.Fuzz(func(t *testing.T, data []byte) {
		spec, err := ParseSpec(bytes.NewReader(data))
		if err != nil {
			return // rejected input: the only requirement is "no panic"
		}
		count, err := spec.JobCount()
		if err != nil {
			t.Fatalf("ParseSpec accepted a spec JobCount rejects: %v", err)
		}
		if count > 20000 {
			return // valid but huge; don't materialize it in the fuzzer
		}
		jobs, err := spec.Jobs()
		if err != nil {
			t.Fatalf("ParseSpec accepted a spec Jobs rejects: %v", err)
		}
		if len(jobs) != count {
			t.Fatalf("JobCount = %d but Jobs expanded to %d", count, len(jobs))
		}
		for i := range jobs {
			if k := jobs[i].Key(); len(k) != 64 {
				t.Fatalf("job %d: malformed key %q", i, k)
			}
		}
	})
}

// FuzzRowRoundTrip checks that any row WriteRow emits is decoded back
// bit-identically by ReadRows — the contract that lets rfbatch -remote
// reassemble a coordinator's NDJSON stream into the same report a local
// run produces. Seed corpus files live under testdata/fuzz/FuzzRowRoundTrip.
func FuzzRowRoundTrip(f *testing.F) {
	f.Add("compress", "1-cycle R∞W∞", uint64(0), uint64(120000), uint64(60000),
		2.0, 0.0311, 0.001, 0.047, strings.Repeat("ab", 32), false)
	f.Add("swim\n", `arch "quoted"`, uint64(1<<63), uint64(0), uint64(math.MaxUint64),
		math.SmallestNonzeroFloat64, -0.0, 1e308, math.MaxFloat64, "", true)

	f.Fuzz(func(t *testing.T, benchmark, arch string, seed, instrs, cycles uint64,
		ipc, mispred, icache, dcache float64, key string, cached bool) {
		if !utf8.ValidString(benchmark) || !utf8.ValidString(arch) || !utf8.ValidString(key) {
			// encoding/json replaces invalid UTF-8 with U+FFFD; real rows
			// only carry profile names, constructed arch labels and hex
			// keys, all valid UTF-8.
			return
		}
		row := Row{
			Benchmark: benchmark, Arch: arch, Seed: seed,
			Instructions: instrs, Cycles: cycles, IPC: ipc,
			MispredRate: mispred, ICacheMiss: icache, DCacheMiss: dcache,
			Key: key, Cached: cached,
		}
		var buf bytes.Buffer
		if err := WriteRow(&buf, row); err != nil {
			// encoding/json rejects NaN and ±Inf; nothing to round-trip.
			// Real rows cannot carry them (rates are finite by
			// construction), so an error for any other reason is a bug.
			if hasNonFinite(ipc, mispred, icache, dcache) {
				return
			}
			t.Fatalf("WriteRow failed on finite row: %v", err)
		}
		rows, err := ReadRows(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("ReadRows rejected WriteRow output %q: %v", buf.String(), err)
		}
		if len(rows) != 1 {
			t.Fatalf("round trip returned %d rows, want 1", len(rows))
		}
		if rows[0] != row {
			t.Fatalf("row changed across NDJSON round trip:\nin:  %+v\nout: %+v", row, rows[0])
		}
	})
}

func hasNonFinite(vs ...float64) bool {
	for _, v := range vs {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return true
		}
	}
	return false
}
