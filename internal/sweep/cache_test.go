package sweep

import (
	"bytes"
	"context"
	"encoding/json"
	"strings"
	"sync/atomic"
	"testing"

	"repro/internal/sim"
)

// countingCache wraps a Cache and counts operations.
type countingCache struct {
	Cache
	gets, puts atomic.Int64
}

func (c *countingCache) Get(k Key) (sim.Result, bool) {
	c.gets.Add(1)
	return c.Cache.Get(k)
}

func (c *countingCache) Put(k Key, res sim.Result) {
	c.puts.Add(1)
	c.Cache.Put(k, res)
}

func TestTieredCachePromotesAndWritesThrough(t *testing.T) {
	front := NewMemCache()
	back := &countingCache{Cache: NewMemCache()}
	c := Tiered(front, back)

	k := fakeJob(0).Key()
	want := sim.Result{Cycles: 42}

	// Put writes through to both levels.
	c.Put(k, want)
	if _, ok := front.Get(k); !ok {
		t.Error("put did not reach the front cache")
	}
	if _, ok := back.Cache.Get(k); !ok {
		t.Error("put did not reach the back cache")
	}

	// A front hit never consults the back.
	back.gets.Store(0)
	if res, ok := c.Get(k); !ok || res.Cycles != 42 {
		t.Fatalf("tiered get = %+v, %v", res, ok)
	}
	if back.gets.Load() != 0 {
		t.Error("front hit consulted the back cache")
	}

	// A back-only entry is promoted into the front on Get.
	k2 := fakeJob(1).Key()
	back.Cache.Put(k2, sim.Result{Cycles: 7})
	if res, ok := c.Get(k2); !ok || res.Cycles != 7 {
		t.Fatalf("back-level get = %+v, %v", res, ok)
	}
	if _, ok := front.Get(k2); !ok {
		t.Error("back hit not promoted into the front cache")
	}

	// Nil levels collapse to the other cache.
	if Tiered(front, nil) != Cache(front) || Tiered(nil, back) != Cache(back) {
		t.Error("Tiered with a nil level must return the other level")
	}
}

func TestRunnerUsesConfiguredCache(t *testing.T) {
	shared := NewMemCache()
	var sims atomic.Int64
	mk := func() *Runner {
		return NewRunner(RunnerConfig{
			Cache: shared,
			Simulate: func(Job) sim.Result {
				sims.Add(1)
				return sim.Result{Cycles: 1}
			},
		})
	}
	batch := []Job{fakeJob(0), fakeJob(1)}
	mk().RunOutcomes(batch, 2)
	if got := sims.Load(); got != 2 {
		t.Fatalf("cold batch simulated %d times, want 2", got)
	}
	// A fresh Runner over the same Cache — the cross-process scenario the
	// disk store enables — serves everything from the cache.
	outs := mk().RunOutcomes(batch, 2)
	if got := sims.Load(); got != 2 {
		t.Errorf("warm batch re-simulated: %d total runs", got)
	}
	for i, o := range outs {
		if !o.Cached {
			t.Errorf("warm job %d not marked cached", i)
		}
	}
}

func TestRunOutcomesContextCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	started := make(chan struct{}, 64)
	release := make(chan struct{})
	r := NewRunner(RunnerConfig{
		Simulate: func(Job) sim.Result {
			started <- struct{}{}
			<-release
			return sim.Result{Cycles: 9}
		},
	})
	jobs := make([]Job, 16)
	for i := range jobs {
		jobs[i] = fakeJob(i)
	}
	var events atomic.Int64
	type runRet struct {
		outs []Outcome
		err  error
	}
	got := make(chan runRet, 1)
	go func() {
		outs, err := r.RunOutcomesContext(ctx, jobs, 2, func(Progress) { events.Add(1) })
		got <- runRet{outs, err}
	}()
	// Wait for the two workers to start, cancel, then release them.
	<-started
	<-started
	cancel()
	close(release)
	ret := <-got
	if ret.err != context.Canceled {
		t.Fatalf("canceled run returned err %v", ret.err)
	}
	finished := 0
	for _, o := range ret.outs {
		if o.Result.Cycles == 9 {
			finished++
		}
	}
	if finished >= len(jobs) {
		t.Error("cancellation did not skip any job")
	}
	if finished == 0 {
		t.Error("in-flight jobs must run to completion")
	}
	if got := events.Load(); int(got) != finished {
		t.Errorf("%d progress events for %d finished jobs", got, finished)
	}
	// A second, uncanceled run completes the remaining jobs.
	outs, err := r.RunOutcomesContext(context.Background(), jobs, 4, nil)
	if err != nil {
		t.Fatalf("clean run returned err %v", err)
	}
	for i, o := range outs {
		if o.Result.Cycles != 9 {
			t.Errorf("job %d has no result after clean run", i)
		}
	}
}

func TestProgressCarriesResult(t *testing.T) {
	r := NewRunner(RunnerConfig{
		Simulate: func(j Job) sim.Result { return sim.Result{Cycles: j.Seed} },
	})
	jobs := []Job{fakeJob(0), fakeJob(1), fakeJob(0)}
	var events []Progress
	if _, err := r.RunOutcomesContext(context.Background(), jobs, 1, func(p Progress) {
		events = append(events, p)
	}); err != nil {
		t.Fatal(err)
	}
	if len(events) != len(jobs) {
		t.Fatalf("%d events for %d jobs", len(events), len(jobs))
	}
	for _, e := range events {
		if e.Result.Cycles != jobs[e.Index].Seed {
			t.Errorf("event for job %d carries result %d, want %d",
				e.Index, e.Result.Cycles, jobs[e.Index].Seed)
		}
		if e.Key != jobs[e.Index].Key() {
			t.Errorf("event for job %d carries wrong key", e.Index)
		}
	}
	// Per-call progress must run even when the config has none, and rows
	// built from events must match the returned outcomes.
	for _, e := range events {
		row := RowOf(jobs[e.Index], Outcome{Result: e.Result, Key: e.Key, Cached: e.Cached})
		if row.Cycles != e.Result.Cycles || row.Key != string(e.Key) {
			t.Errorf("RowOf(progress) mismatch for job %d", e.Index)
		}
	}
}

func TestWriteNDJSON(t *testing.T) {
	r := NewRunner(RunnerConfig{
		Simulate: func(j Job) sim.Result {
			return sim.Result{Instructions: 100, Cycles: 50, IPC: 2}
		},
	})
	jobs := []Job{fakeJob(0), fakeJob(0)}
	outs := r.RunOutcomes(jobs, 1)
	rep := NewReport("nd", jobs, outs, r.CacheStats())

	var buf bytes.Buffer
	if err := rep.WriteNDJSON(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSuffix(buf.String(), "\n"), "\n")
	if len(lines) != 2 {
		t.Fatalf("NDJSON has %d lines, want 2", len(lines))
	}
	for i, line := range lines {
		var row Row
		if err := json.Unmarshal([]byte(line), &row); err != nil {
			t.Fatalf("line %d is not valid JSON: %v", i, err)
		}
		if row != rep.Rows[i] {
			t.Errorf("line %d decodes to %+v, want %+v", i, row, rep.Rows[i])
		}
	}
	// WriteRow on the same row reproduces the exact line — the invariant
	// the rfserved stream relies on for byte-identical output.
	var one bytes.Buffer
	if err := WriteRow(&one, rep.Rows[0]); err != nil {
		t.Fatal(err)
	}
	if got := strings.TrimSuffix(one.String(), "\n"); got != lines[0] {
		t.Errorf("WriteRow emitted %q, report emitted %q", got, lines[0])
	}
}

// TestCancelBeforeStart ensures a pre-canceled context runs nothing but
// still serves cache hits.
func TestCancelBeforeStart(t *testing.T) {
	var sims atomic.Int64
	r := NewRunner(RunnerConfig{
		Simulate: func(Job) sim.Result {
			sims.Add(1)
			return sim.Result{Cycles: 3}
		},
	})
	warm := []Job{fakeJob(0)}
	r.RunOutcomes(warm, 1)

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	outs, err := r.RunOutcomesContext(ctx, []Job{fakeJob(0), fakeJob(1)}, 1, nil)
	if err == nil {
		t.Fatal("pre-canceled run returned nil error")
	}
	if sims.Load() != 1 {
		t.Error("pre-canceled run simulated")
	}
	if !outs[0].Cached || outs[0].Result.Cycles != 3 {
		t.Error("cache hit not served under a canceled context")
	}
}
