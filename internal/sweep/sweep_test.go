package sweep

import (
	"bytes"
	"encoding/json"
	"reflect"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/trace"
)

// fakeJob returns a distinct cheap job; i differentiates the key via the
// seed override.
func fakeJob(i int) Job {
	p, _ := trace.ByName("compress")
	return Job{
		Profile: p,
		Config:  sim.DefaultConfig(sim.Mono1Cycle(core.Unlimited, core.Unlimited), 1000),
		Seed:    uint64(i + 1),
	}
}

// realJobs returns a small benchmark × architecture matrix at a tiny
// budget for tests that run the real simulator.
func realJobs(t *testing.T) []Job {
	t.Helper()
	var jobs []Job
	for _, bench := range []string{"compress", "swim"} {
		p, ok := trace.ByName(bench)
		if !ok {
			t.Fatalf("unknown benchmark %s", bench)
		}
		for _, spec := range []sim.RFSpec{
			sim.Mono1Cycle(core.Unlimited, core.Unlimited),
			sim.PaperCache(),
		} {
			jobs = append(jobs, Job{Profile: p, Config: sim.DefaultConfig(spec, 3000)})
		}
	}
	return jobs
}

func TestKeyIgnoresSpecName(t *testing.T) {
	a := fakeJob(0)
	b := fakeJob(0)
	b.Config.RF.Name = "renamed"
	if a.Key() != b.Key() {
		t.Error("cosmetic spec rename changed the job key")
	}
	c := fakeJob(0)
	c.Config.MaxInstructions++
	if a.Key() == c.Key() {
		t.Error("instruction budget not part of the job key")
	}
	d := fakeJob(0)
	d.Seed = 99
	if a.Key() == d.Key() {
		t.Error("seed override not part of the job key")
	}
	e := fakeJob(0)
	e.Config.RF.Cache.UpperSize = 32
	if a.Key() == e.Key() {
		t.Error("architecture config not part of the job key")
	}
}

func TestWorkerPoolBounded(t *testing.T) {
	const limit = 3
	var running, peak atomic.Int64
	r := NewRunner(RunnerConfig{
		Simulate: func(Job) sim.Result {
			n := running.Add(1)
			for {
				p := peak.Load()
				if n <= p || peak.CompareAndSwap(p, n) {
					break
				}
			}
			time.Sleep(2 * time.Millisecond)
			running.Add(-1)
			return sim.Result{Cycles: 1}
		},
	})
	jobs := make([]Job, 24)
	for i := range jobs {
		jobs[i] = fakeJob(i)
	}
	r.RunOutcomes(jobs, limit)
	if p := peak.Load(); p > limit {
		t.Errorf("observed %d concurrent jobs, pool bound is %d", p, limit)
	}
	if p := peak.Load(); p == 0 {
		t.Error("no job ever ran")
	}
}

func TestConfiguredParallelismHonored(t *testing.T) {
	var running, peak atomic.Int64
	r := NewRunner(RunnerConfig{
		Parallelism: 1,
		Simulate: func(Job) sim.Result {
			n := running.Add(1)
			for {
				p := peak.Load()
				if n <= p || peak.CompareAndSwap(p, n) {
					break
				}
			}
			time.Sleep(time.Millisecond)
			running.Add(-1)
			return sim.Result{}
		},
	})
	jobs := make([]Job, 8)
	for i := range jobs {
		jobs[i] = fakeJob(i)
	}
	// Parallelism 0 must defer to the configured bound, not GOMAXPROCS.
	r.RunOutcomes(jobs, 0)
	if p := peak.Load(); p != 1 {
		t.Errorf("observed %d concurrent jobs with RunnerConfig.Parallelism = 1", p)
	}
}

func TestCacheAccounting(t *testing.T) {
	var sims atomic.Int64
	r := NewRunner(RunnerConfig{
		Parallelism: 4,
		Simulate: func(j Job) sim.Result {
			sims.Add(1)
			return sim.Result{Cycles: j.Seed}
		},
	})
	// 3 unique jobs; the batch repeats the first two.
	batch := []Job{fakeJob(0), fakeJob(1), fakeJob(2), fakeJob(0), fakeJob(1)}
	outs := r.RunOutcomes(batch, 4)
	if got := sims.Load(); got != 3 {
		t.Errorf("batch with 3 unique jobs simulated %d times", got)
	}
	if st := r.CacheStats(); st.Misses != 3 || st.Hits != 2 {
		t.Errorf("stats after first batch = %+v, want 3 misses / 2 hits", st)
	}
	// Within-batch duplicates are marked cached and share results.
	for i, dup := range map[int]int{3: 0, 4: 1} {
		if !outs[i].Cached {
			t.Errorf("duplicate job %d not marked cached", i)
		}
		if !reflect.DeepEqual(outs[i].Result, outs[dup].Result) {
			t.Errorf("duplicate job %d result differs from job %d", i, dup)
		}
	}
	if outs[0].Cached || outs[1].Cached || outs[2].Cached {
		t.Error("first occurrences must not be marked cached")
	}
	// A repeat run is served entirely from the cache.
	r.RunOutcomes(batch, 4)
	if got := sims.Load(); got != 3 {
		t.Errorf("repeat batch re-simulated: %d total runs", got)
	}
	if st := r.CacheStats(); st.Misses != 3 || st.Hits != 7 {
		t.Errorf("stats after repeat = %+v, want 3 misses / 7 hits", st)
	}
	if r.CacheLen() != 3 {
		t.Errorf("cache holds %d entries, want 3", r.CacheLen())
	}
	// ResetCache forgets everything.
	r.ResetCache()
	if r.CacheLen() != 0 {
		t.Error("reset left cache entries behind")
	}
	r.RunOutcomes(batch[:3], 4)
	if got := sims.Load(); got != 6 {
		t.Errorf("post-reset batch did not re-simulate (total %d)", got)
	}
}

func TestDisableCache(t *testing.T) {
	var sims atomic.Int64
	r := NewRunner(RunnerConfig{
		DisableCache: true,
		Simulate: func(Job) sim.Result {
			sims.Add(1)
			return sim.Result{}
		},
	})
	batch := []Job{fakeJob(0), fakeJob(0), fakeJob(0)}
	outs := r.RunOutcomes(batch, 2)
	if got := sims.Load(); got != 3 {
		t.Errorf("cache disabled but only %d of 3 jobs simulated", got)
	}
	for i, o := range outs {
		if o.Cached {
			t.Errorf("job %d marked cached with caching disabled", i)
		}
	}
}

func TestDeterministicAcrossParallelism(t *testing.T) {
	jobs := realJobs(t)
	seq := NewRunner(RunnerConfig{}).RunOutcomes(jobs, 1)
	par := NewRunner(RunnerConfig{}).RunOutcomes(jobs, 8)
	for i := range jobs {
		if !reflect.DeepEqual(seq[i].Result, par[i].Result) {
			t.Errorf("job %d: parallelism changed the result: IPC %.6f vs %.6f",
				i, seq[i].Result.IPC, par[i].Result.IPC)
		}
		if seq[i].Key != par[i].Key {
			t.Errorf("job %d: key differs across runs", i)
		}
	}
}

func TestProgressCallback(t *testing.T) {
	var mu sync.Mutex
	var events []Progress
	r := NewRunner(RunnerConfig{
		Simulate: func(Job) sim.Result { return sim.Result{} },
		OnProgress: func(p Progress) {
			mu.Lock()
			events = append(events, p)
			mu.Unlock()
		},
	})
	batch := []Job{fakeJob(0), fakeJob(1), fakeJob(0)}
	r.RunOutcomes(batch, 2)
	if len(events) != len(batch) {
		t.Fatalf("%d progress events for %d jobs", len(events), len(batch))
	}
	cached := 0
	seen := map[int]bool{}
	for i, e := range events {
		if e.Done != i+1 || e.Total != len(batch) {
			t.Errorf("event %d: Done/Total = %d/%d", i, e.Done, e.Total)
		}
		if e.Cached {
			cached++
		}
		seen[e.Index] = true
	}
	if cached != 1 {
		t.Errorf("%d cached progress events, want 1", cached)
	}
	if len(seen) != len(batch) {
		t.Errorf("progress covered %d distinct jobs, want %d", len(seen), len(batch))
	}
}

func TestSpecJSONRoundTrip(t *testing.T) {
	spec := &Spec{
		Name:         "ports-x-policy",
		Instructions: 9000,
		Parallelism:  2,
		Benchmarks:   []string{"compress", "swim"},
		Seeds:        []uint64{1, 2},
		Architectures: []ArchMatrix{
			{Kind: "1cycle", ReadPorts: []int{2, 4}, WritePorts: []int{2}},
			{Kind: "rfcache", Caching: []string{"nonbypass", "ready"}, Prefetch: []string{"firstpair"}},
		},
	}
	blob, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	back, err := ParseSpec(bytes.NewReader(blob))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(spec, back) {
		t.Errorf("spec round-trip mismatch:\n%+v\n%+v", spec, back)
	}
	jobs, err := back.Jobs()
	if err != nil {
		t.Fatal(err)
	}
	// (2 port points + 2 caching points) × 2 benchmarks × 2 seeds.
	if len(jobs) != 16 {
		t.Errorf("matrix expanded to %d jobs, want 16", len(jobs))
	}
	for _, j := range jobs {
		if j.Config.MaxInstructions != 9000 {
			t.Errorf("job budget %d, want 9000", j.Config.MaxInstructions)
		}
		if j.Config.RF.Name == "" {
			t.Error("expanded spec has no display name")
		}
		if err := j.Config.Validate(); err != nil {
			t.Errorf("expanded config invalid: %v", err)
		}
	}
}

func TestSpecValidation(t *testing.T) {
	cases := []struct {
		name string
		blob string
	}{
		{"no architectures", `{"benchmarks":["compress"]}`},
		{"unknown benchmark", `{"benchmarks":["nope"],"architectures":[{"kind":"1cycle"}]}`},
		{"unknown kind", `{"architectures":[{"kind":"quantum"}]}`},
		{"missing kind", `{"architectures":[{}]}`},
		{"unknown caching", `{"architectures":[{"kind":"rfcache","caching":["wat"]}]}`},
		{"unknown prefetch", `{"architectures":[{"kind":"rfcache","prefetch":["wat"]}]}`},
		{"unknown field", `{"architectures":[{"kind":"1cycle"}],"bogus":1}`},
		{"malformed", `{`},
	}
	for _, c := range cases {
		if _, err := ParseSpec(strings.NewReader(c.blob)); err == nil {
			t.Errorf("%s: spec accepted", c.name)
		}
	}
	// A minimal valid spec defaults to all benchmarks.
	s, err := ParseSpec(strings.NewReader(`{"architectures":[{"kind":"rfcache"}]}`))
	if err != nil {
		t.Fatal(err)
	}
	jobs, err := s.Jobs()
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) != len(trace.All()) {
		t.Errorf("default expansion has %d jobs, want %d", len(jobs), len(trace.All()))
	}
}

func TestJobCountMatchesJobs(t *testing.T) {
	specs := []string{
		`{"architectures":[{"kind":"1cycle"}]}`,
		`{"benchmarks":["compress"],"architectures":[{"kind":"rfcache"}]}`,
		`{"benchmarks":["compress","swim"],"seeds":[1,2,3],"architectures":[
			{"kind":"1cycle","read_ports":[2,4],"write_ports":[2]},
			{"kind":"rfcache","caching":["nonbypass","ready"],"prefetch":["demand","firstpair"],"upper_sizes":[8,16]},
			{"kind":"onelevel","banks":[2,4]},
			{"kind":"replicated","clusters":[2,4],"phys_regs":[96,128]}]}`,
	}
	for _, blob := range specs {
		s, err := ParseSpec(strings.NewReader(blob))
		if err != nil {
			t.Fatal(err)
		}
		count, err := s.JobCount()
		if err != nil {
			t.Fatal(err)
		}
		jobs, err := s.Jobs()
		if err != nil {
			t.Fatal(err)
		}
		if count != len(jobs) {
			t.Errorf("%s: JobCount = %d, Jobs expanded to %d", blob, count, len(jobs))
		}
	}
}

func TestJobCountSaturates(t *testing.T) {
	// 8 dimensions of 100k values each would overflow any naive product;
	// JobCount must saturate instead of wrapping (and must not allocate
	// the expansion).
	big := make([]int, 100000)
	for i := range big {
		big[i] = i + 1
	}
	s := &Spec{Architectures: []ArchMatrix{{
		Kind: "rfcache", ReadPorts: big, WritePorts: big, Buses: big,
		UpperSizes: big, PhysRegs: big,
	}}}
	count, err := s.JobCount()
	if err != nil {
		t.Fatal(err)
	}
	if count != MaxJobCount {
		t.Errorf("JobCount = %d, want saturation at %d", count, MaxJobCount)
	}
}

func TestSeedOverride(t *testing.T) {
	j := fakeJob(0)
	j.Seed = 7777
	if got := j.profile().Seed; got != 7777 {
		t.Errorf("seed override not applied: %d", got)
	}
	j.Seed = 0
	if got := j.profile().Seed; got != j.Profile.Seed {
		t.Errorf("zero seed must keep the profile seed, got %d", got)
	}
}

func TestReportEmission(t *testing.T) {
	r := NewRunner(RunnerConfig{
		Simulate: func(j Job) sim.Result {
			return sim.Result{Instructions: 100, Cycles: 50, IPC: 2.0}
		},
	})
	jobs := []Job{fakeJob(0), fakeJob(0)}
	outs := r.RunOutcomes(jobs, 1)
	rep := NewReport("smoke", jobs, outs, r.CacheStats())
	if len(rep.Rows) != 2 || !rep.Rows[1].Cached || rep.Rows[0].Cached {
		t.Fatalf("report rows wrong: %+v", rep.Rows)
	}
	if rep.Cache.Hits != 1 || rep.Cache.Misses != 1 {
		t.Errorf("report cache stats = %+v", rep.Cache)
	}

	var jsonBuf bytes.Buffer
	if err := rep.WriteJSON(&jsonBuf); err != nil {
		t.Fatal(err)
	}
	var back Report
	if err := json.Unmarshal(jsonBuf.Bytes(), &back); err != nil {
		t.Fatalf("report JSON does not round-trip: %v", err)
	}
	if !reflect.DeepEqual(rep.Rows, back.Rows) || back.Cache != rep.Cache {
		t.Error("report JSON round-trip mismatch")
	}

	var csvBuf bytes.Buffer
	if err := rep.WriteCSV(&csvBuf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(csvBuf.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("CSV has %d lines, want header + 2 rows", len(lines))
	}
	if !strings.HasPrefix(lines[0], "benchmark,arch,") {
		t.Errorf("CSV header wrong: %s", lines[0])
	}
	if !strings.Contains(lines[2], "true") {
		t.Errorf("cached row not flagged in CSV: %s", lines[2])
	}
}
