package sweep

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
)

// Row is one job's flattened measurements in a Report.
type Row struct {
	Benchmark    string  `json:"benchmark"`
	Arch         string  `json:"arch"`
	Seed         uint64  `json:"seed,omitempty"`
	Instructions uint64  `json:"instructions"`
	Cycles       uint64  `json:"cycles"`
	IPC          float64 `json:"ipc"`
	MispredRate  float64 `json:"mispredict_rate"`
	ICacheMiss   float64 `json:"icache_miss_rate"`
	DCacheMiss   float64 `json:"dcache_miss_rate"`
	Key          string  `json:"key"`
	Cached       bool    `json:"cached"`
}

// Report is the emission-ready form of a finished sweep.
type Report struct {
	Name  string     `json:"name,omitempty"`
	Rows  []Row      `json:"rows"`
	Cache CacheStats `json:"cache"`
}

// RowOf flattens one job outcome into a report row. It is the single
// construction point for rows, so cmd/rfbatch reports and the rfserved
// NDJSON stream render byte-identical lines for the same outcome.
func RowOf(j Job, o Outcome) Row {
	return Row{
		Benchmark:    j.Profile.Name,
		Arch:         j.Config.RF.Name,
		Seed:         j.Seed,
		Instructions: o.Result.Instructions,
		Cycles:       o.Result.Cycles,
		IPC:          o.Result.IPC,
		MispredRate:  o.Result.MispredictRate(),
		ICacheMiss:   o.Result.ICacheMissRate,
		DCacheMiss:   o.Result.DCacheMissRate,
		Key:          string(o.Key),
		Cached:       o.Cached,
	}
}

// NewReport flattens job outcomes into a report. The jobs and outcomes
// slices must be parallel, as produced by Runner.RunOutcomes.
func NewReport(name string, jobs []Job, outs []Outcome, stats CacheStats) *Report {
	rep := &Report{Name: name, Cache: stats}
	for i, o := range outs {
		rep.Rows = append(rep.Rows, RowOf(jobs[i], o))
	}
	return rep
}

// WriteRow emits one row as a single compact JSON line — the NDJSON
// format streamed by rfserved and written by rfbatch -ndjson.
func WriteRow(w io.Writer, row Row) error {
	return json.NewEncoder(w).Encode(row)
}

// ReadRows decodes an NDJSON row stream — the inverse of WriteRow. It is
// the reassembly seam for consumers of a remote stream: cmd/rfbatch
// -remote uses it to rebuild a Report from a coordinator's results
// endpoint. Unknown fields are rejected, so a drifted producer fails
// loudly instead of silently dropping columns.
func ReadRows(r io.Reader) ([]Row, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var rows []Row
	for {
		var row Row
		if err := dec.Decode(&row); err != nil {
			if err == io.EOF {
				return rows, nil
			}
			return rows, fmt.Errorf("sweep: row %d: %w", len(rows), err)
		}
		rows = append(rows, row)
	}
}

// WriteNDJSON emits the report's rows as NDJSON, one row per line, with
// no surrounding report object.
func (r *Report) WriteNDJSON(w io.Writer) error {
	for _, row := range r.Rows {
		if err := WriteRow(w, row); err != nil {
			return err
		}
	}
	return nil
}

// WriteJSON emits the report as indented JSON.
func (r *Report) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// WriteCSV emits the rows as CSV with a header line.
func (r *Report) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{
		"benchmark", "arch", "seed", "instructions", "cycles", "ipc",
		"mispredict_rate", "icache_miss_rate", "dcache_miss_rate", "cached",
	}); err != nil {
		return err
	}
	for _, row := range r.Rows {
		if err := cw.Write([]string{
			row.Benchmark, row.Arch, fmt.Sprint(row.Seed),
			fmt.Sprint(row.Instructions), fmt.Sprint(row.Cycles),
			fmt.Sprintf("%.4f", row.IPC),
			fmt.Sprintf("%.4f", row.MispredRate),
			fmt.Sprintf("%.4f", row.ICacheMiss),
			fmt.Sprintf("%.4f", row.DCacheMiss),
			fmt.Sprint(row.Cached),
		}); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
