// Package sweep is the experiment-orchestration engine: it runs batches of
// simulations (a benchmark profile × a processor configuration each)
// through a bounded worker pool with a content-addressed result cache.
//
// Jobs are keyed by a hash of their full semantic content — the workload
// profile, the processor and register file configuration, and the
// instruction budget — so identical configurations requested by different
// sweeps (or repeated within one sweep) are simulated exactly once. The
// figure runners in internal/experiments share one Runner per invocation,
// which removes the cross-figure duplication of the paper's evaluation
// (the 1-cycle baseline alone appears in Figures 2, 6 and 8).
//
// Results are deterministic: a job's outcome depends only on its content,
// never on scheduling, so a sweep produces bit-identical results at any
// parallelism level.
package sweep

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"

	"repro/internal/sim"
	"repro/internal/trace"
)

// Job is one simulation: a synthetic workload and a processor
// configuration (which embeds the register file architecture and the
// instruction budget).
type Job struct {
	// Profile is the workload; its Seed field makes trace generation
	// deterministic.
	Profile trace.Profile
	// Config is the full processor configuration.
	Config sim.Config
	// Seed, when nonzero, overrides Profile.Seed — the hook for running
	// statistically independent replicates of one benchmark. It
	// participates in the job key, so replicates never collide in the
	// cache.
	Seed uint64
}

// Key is the content address of a Job.
type Key string

// keyable is the canonical serialized form of a job. Cosmetic fields
// (spec names) are excluded so renamed but semantically identical
// configurations share a cache entry.
type keyable struct {
	Profile trace.Profile
	Config  sim.Config
	Seed    uint64
}

// Key returns the job's content address: a SHA-256 over the canonical
// JSON encoding of the profile, configuration and seed override, with the
// register file spec's display name cleared.
func (j Job) Key() Key {
	k := keyable{Profile: j.Profile, Config: j.Config, Seed: j.Seed}
	k.Config.RF.Name = ""
	b, err := json.Marshal(k)
	if err != nil {
		// Profile and Config are plain exported data; Marshal cannot fail
		// on them unless a future field breaks that invariant.
		panic(fmt.Sprintf("sweep: unhashable job: %v", err))
	}
	sum := sha256.Sum256(b)
	return Key(hex.EncodeToString(sum[:]))
}

// profile returns the job's workload with the seed override applied.
func (j Job) profile() trace.Profile {
	p := j.Profile
	if j.Seed != 0 {
		p.Seed = j.Seed
	}
	return p
}

// Simulate runs the job to completion. It is the Runner's default
// Simulate hook, exported so servers can wrap it (e.g. with a global
// concurrency budget) while keeping the same simulation path.
func Simulate(j Job) sim.Result {
	return sim.New(j.Config, trace.New(j.profile())).Run()
}
