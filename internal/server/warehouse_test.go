// Warehouse integration tests: the /v1/query endpoint must answer
// exactly what a client computes from the NDJSON row stream (the golden
// parity contract behind "zero row streaming"), survive losing its
// directory (rebuild from the content-addressed store), and sit behind
// the same tenant auth and quotas as every other endpoint.
package server

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"os"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/sim"
	"repro/internal/store"
	"repro/internal/sweep"
	"repro/internal/tenant"
	"repro/internal/warehouse"
	"repro/rf/api"
)

// warehouseSpec bounds every port dimension so areas are modeled and
// the pareto op has a non-empty frontier.
const warehouseSpec = `{
  "name": "wh-smoke",
  "instructions": 3000,
  "benchmarks": ["compress", "swim"],
  "architectures": [
    {"kind": "1cycle", "read_ports": [4, 6], "write_ports": [3]},
    {"kind": "rfcache", "read_ports": [4], "write_ports": [3], "buses": [2],
     "upper_sizes": [16], "caching": ["nonbypass", "ready"]}
  ]
}`

func newWarehouse(t *testing.T, dir string) *warehouse.Warehouse {
	t.Helper()
	wh, err := warehouse.Open(dir, warehouse.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return wh
}

// queryHTTP posts a query document and returns the raw response; the
// caller owns the body.
func queryHTTP(t *testing.T, base, key, doc string) *http.Response {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost, base+"/v1/query", strings.NewReader(doc))
	if err != nil {
		t.Fatal(err)
	}
	if key != "" {
		req.Header.Set(api.KeyHeader, key)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

// queryMerged walks the endpoint's cursor pages exactly the way rfbatch
// does and returns the merged document.
func queryMerged(t *testing.T, base, key string, q *api.Query) *api.QueryResult {
	t.Helper()
	var merged *api.QueryResult
	page := *q
	for {
		body, err := json.Marshal(&page)
		if err != nil {
			t.Fatal(err)
		}
		resp := queryHTTP(t, base, key, string(body))
		if resp.StatusCode != http.StatusOK {
			raw, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			t.Fatalf("query returned %d: %s", resp.StatusCode, raw)
		}
		var res api.QueryResult
		err = json.NewDecoder(resp.Body).Decode(&res)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if merged == nil {
			cp := res
			cp.NextCursor = ""
			merged = &cp
		} else {
			merged.Rows = append(merged.Rows, res.Rows...)
			merged.Matched = res.Matched
		}
		if res.NextCursor == "" {
			return merged
		}
		page.Cursor = res.NextCursor
	}
}

// localMerged evaluates the same query over a segment rebuilt from the
// streamed NDJSON rows, walking the same cursor loop.
func localMerged(t *testing.T, seg *warehouse.Segment, q *api.Query) *api.QueryResult {
	t.Helper()
	var merged *api.QueryResult
	page := *q
	for {
		res, err := warehouse.Eval([]*warehouse.Segment{seg}, &page)
		if err != nil {
			t.Fatal(err)
		}
		if merged == nil {
			cp := *res
			cp.NextCursor = ""
			merged = &cp
		} else {
			merged.Rows = append(merged.Rows, res.Rows...)
			merged.Matched = res.Matched
		}
		if res.NextCursor == "" {
			return merged
		}
		page.Cursor = res.NextCursor
	}
}

func waitIndexed(t *testing.T, wh *warehouse.Warehouse, sweepID string) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !wh.Has(sweepID) {
		if time.Now().After(deadline) {
			t.Fatalf("sweep %s never sealed into the warehouse", sweepID)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestQueryGoldenParity is the acceptance pin for the query API: for
// every op, the server's merged cursor pages are byte-identical to a
// client-side evaluation over the streamed NDJSON rows re-expanded
// against the spec — rfbatch -query's local mode. The server answer is
// trustworthy precisely because this equivalence holds.
func TestQueryGoldenParity(t *testing.T) {
	wh := newWarehouse(t, t.TempDir())
	_, ts := newTestServer(t, Config{Warehouse: wh})
	ack := submit(t, ts.URL, warehouseSpec)
	waitStatus(t, ts.URL, ack.StatusURL, func(_ int, state string) bool { return state == "done" })
	waitIndexed(t, wh, ack.ID)

	// Client side: stream the rows, re-expand the spec, build a segment.
	ndjson := streamAll(t, ts.URL, ack.ResultsURL)
	rows, err := sweep.ReadRows(strings.NewReader(ndjson))
	if err != nil {
		t.Fatal(err)
	}
	s, err := sweep.ParseSpec(strings.NewReader(warehouseSpec))
	if err != nil {
		t.Fatal(err)
	}
	jobs, err := s.Jobs()
	if err != nil {
		t.Fatal(err)
	}
	seg, err := warehouse.SegmentFromRows(ack.ID, s.Name, jobs, rows)
	if err != nil {
		t.Fatal(err)
	}

	queries := []*api.Query{
		{Op: api.QueryOpRows, Sweep: ack.ID},
		{Op: api.QueryOpRows, Sweep: ack.ID, Limit: 3}, // forces pagination: 8 jobs, 3 pages
		{Op: api.QueryOpSeries, Sweep: ack.ID},
		{Op: api.QueryOpPareto, Sweep: ack.ID},
		{Op: api.QueryOpAggregate, Sweep: ack.ID, GroupBy: []string{"family", "suite"},
			Metrics: []api.QueryMetric{{Op: "mean", Metric: "ipc"}, {Op: "max", Metric: "area"}}},
		{Op: api.QueryOpRows, Sweep: ack.ID, Families: []string{"rfcache"},
			Dims: map[string][]int{"read_ports": {4}}},
	}
	for _, q := range queries {
		remote := queryMerged(t, ts.URL, "", q)
		local := localMerged(t, seg, q)
		rj, _ := json.Marshal(remote)
		lj, _ := json.Marshal(local)
		if !bytes.Equal(rj, lj) {
			t.Errorf("op %s limit %d: server and client disagree:\nserver %s\nclient %s",
				q.Op, q.Limit, rj, lj)
		}
	}

	// GET with the document in the q parameter is the same evaluator.
	doc := `{"op": "series", "sweep": "` + ack.ID + `"}`
	resp, err := http.Get(ts.URL + "/v1/query?q=" + url.QueryEscape(doc))
	if err != nil {
		t.Fatal(err)
	}
	getBody, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET query returned %d: %s", resp.StatusCode, getBody)
	}
	post := queryHTTP(t, ts.URL, "", doc)
	postBody, _ := io.ReadAll(post.Body)
	post.Body.Close()
	if !bytes.Equal(getBody, postBody) {
		t.Errorf("GET and POST answers differ:\nGET  %s\nPOST %s", getBody, postBody)
	}

	// A malformed document is a 400 with a structured error.
	bad := queryHTTP(t, ts.URL, "", `{"op": "drop"}`)
	if bad.StatusCode != http.StatusBadRequest {
		t.Errorf("bad query returned %d, want 400", bad.StatusCode)
	}
	bad.Body.Close()

	// /metrics exports the warehouse gauges once a query has run.
	metrics := getMetrics(t, ts.URL)
	for _, want := range []string{
		"rfserved_warehouse_segments 1",
		"rfserved_warehouse_queries_total",
		"rfserved_warehouse_query_seconds_total",
		"rfserved_warehouse_ingest_errors_total 0",
	} {
		if !strings.Contains(metrics, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}

func getMetrics(t *testing.T, base string) string {
	t.Helper()
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(data)
}

// TestWarehouseRebuildFromStore pins the "never authoritative"
// invariant: delete the warehouse directory, restart on the same
// journal and store, and every query answers byte-identically without
// one job re-simulating.
func TestWarehouseRebuildFromStore(t *testing.T) {
	walDir := t.TempDir()
	storeDir := t.TempDir()
	whDir := t.TempDir()

	st1, err := store.Open(storeDir, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	j1 := openWAL(t, walDir)
	wh1 := newWarehouse(t, whDir)
	srv1 := New(Config{Cache: st1, Simulate: fakeSim, Journal: j1, Warehouse: wh1})
	ts1 := httptest.NewServer(srv1)
	ack := submit(t, ts1.URL, warehouseSpec)
	waitStatus(t, ts1.URL, ack.StatusURL, func(_ int, state string) bool { return state == "done" })
	waitIndexed(t, wh1, ack.ID)

	queries := []string{
		`{"op": "rows"}`,
		`{"op": "series"}`,
		`{"op": "pareto"}`,
		`{"op": "aggregate", "group_by": ["arch"], "metrics": [{"op": "mean", "metric": "ipc"}]}`,
	}
	before := make([]string, len(queries))
	for i, doc := range queries {
		resp := queryHTTP(t, ts1.URL, "", doc)
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("query %s returned %d: %s", doc, resp.StatusCode, body)
		}
		before[i] = string(body)
	}

	// Shut down cleanly, then lose the warehouse directory entirely.
	ts1.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	srv1.Shutdown(ctx)
	cancel()
	j1.Close()
	if err := os.RemoveAll(whDir); err != nil {
		t.Fatal(err)
	}
	if err := os.MkdirAll(whDir, 0o755); err != nil {
		t.Fatal(err)
	}

	var resims atomic.Int64
	st2, err := store.Open(storeDir, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	j2 := openWAL(t, walDir)
	wh2 := newWarehouse(t, whDir)
	srv2 := New(Config{Cache: st2, Journal: j2, Warehouse: wh2,
		Simulate: func(j sweep.Job) sim.Result { resims.Add(1); return fakeSim(j) }})
	ts2 := httptest.NewServer(srv2)
	t.Cleanup(func() {
		ts2.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		srv2.Shutdown(ctx)
		j2.Close()
	})
	waitIndexed(t, wh2, ack.ID)

	for i, doc := range queries {
		resp := queryHTTP(t, ts2.URL, "", doc)
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("rebuilt query %s returned %d: %s", doc, resp.StatusCode, body)
		}
		if string(body) != before[i] {
			t.Errorf("query %s differs after rebuild:\nbefore %s\nafter  %s", doc, before[i], body)
		}
	}
	if got := resims.Load(); got != 0 {
		t.Errorf("rebuild re-simulated %d jobs, want 0", got)
	}
}

// TestObjectPutStoreQuota pins the per-tenant store byte quota: the
// object PUT that crosses the lifetime budget is a 429 over_quota, and
// both the accepted bytes and the rejection surface on /metrics.
func TestObjectPutStoreQuota(t *testing.T) {
	st, err := store.Open(t.TempDir(), store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	// Quota exactly one object body: the first upload lands, the second
	// crosses the lifetime budget.
	oneBody, _ := json.Marshal(api.Object{Key: objKey(0), Result: fakeSim(sweep.Job{})})
	reg, err := tenant.Load(strings.NewReader(`{
	  "tenants": [{"name": "small", "key": "key-small"}]
	}`), tenant.Limits{MaxStoreBytes: int64(len(oneBody))})
	if err != nil {
		t.Fatal(err)
	}
	_, ts := newTestServer(t, Config{Objects: st.Backend(), Tenants: reg})

	put := func(i int) *http.Response {
		obj := api.Object{Key: objKey(i), Result: fakeSim(sweep.Job{})}
		body, _ := json.Marshal(obj)
		req, err := http.NewRequest(http.MethodPut, ts.URL+"/v1/objects/"+objKey(i), bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set(api.KeyHeader, "key-small")
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		return resp
	}

	resp := put(0)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("first put = %d, want 200", resp.StatusCode)
	}
	resp = put(1)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-quota put = %d, want 429", resp.StatusCode)
	}
	if e := decodeError(t, resp); e.Code != api.ErrCodeOverQuota {
		t.Errorf("over-quota error code = %q, want %q", e.Code, api.ErrCodeOverQuota)
	}

	metrics := getMetrics(t, ts.URL)
	if !strings.Contains(metrics, `rfserved_tenant_store_bytes{tenant="small"}`) {
		t.Error("/metrics missing rfserved_tenant_store_bytes for the tenant")
	}
	if !strings.Contains(metrics, `rfserved_tenant_store_rejected_total{tenant="small"} 1`) {
		t.Error("/metrics missing the store rejection counter")
	}
}

// TestSetTenantsRotation pins SIGHUP-style key rotation: after
// SetTenants swaps the registry, the retired key is refused, the new
// key works, and ownership of live sweeps follows the tenant name, not
// the key.
func TestSetTenantsRotation(t *testing.T) {
	srv, ts := newTestServer(t, Config{Tenants: testRegistry(t)})
	resp := postSpec(t, ts.URL, "key-big", testSpec)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit = %d, want 202", resp.StatusCode)
	}
	var ack api.SubmitResponse
	if err := json.NewDecoder(resp.Body).Decode(&ack); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	waitStatus2(t, ts.URL, ack.StatusURL, "key-big")

	rotated, err := tenant.Load(strings.NewReader(`{
	  "tenants": [
	    {"name": "small", "key": "key-small", "max_queued": 3},
	    {"name": "big", "keys": ["key-big-rotated"], "priority": 5}
	  ]
	}`), tenant.Limits{})
	if err != nil {
		t.Fatal(err)
	}
	srv.SetTenants(rotated)

	// The retired key is refused on every authed surface.
	resp = postSpec(t, ts.URL, "key-big", testSpec)
	if resp.StatusCode != http.StatusUnauthorized {
		t.Errorf("retired key submit = %d, want 401", resp.StatusCode)
	}
	resp.Body.Close()

	// The surviving key reaches the sweep the retired key created:
	// ownership is by tenant name.
	got := streamKeyed(t, ts.URL, ack.ResultsURL, "key-big-rotated")
	want := rfbatchNDJSON(t, testSpec, fakeSim)
	if got != want {
		t.Errorf("rotated key reads a different stream:\n got %s\nwant %s", got, want)
	}

	// SetTenants(nil) is ignored (a failed reload must not drop
	// admission control): the rotated registry stays live, so the
	// retired key is still refused and the surviving key still works.
	srv.SetTenants(nil)
	resp = postSpec(t, ts.URL, "key-big", testSpec)
	if resp.StatusCode != http.StatusUnauthorized {
		t.Errorf("after SetTenants(nil), retired key submit = %d, want 401", resp.StatusCode)
	}
	resp.Body.Close()
	resp = postSpec(t, ts.URL, "key-big-rotated", testSpec)
	if resp.StatusCode != http.StatusAccepted {
		t.Errorf("after SetTenants(nil), surviving key submit = %d, want 202", resp.StatusCode)
	}
	resp.Body.Close()
}

// waitStatus2 polls a keyed status endpoint until the sweep is done.
func waitStatus2(t *testing.T, base, statusURL, key string) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		req, err := http.NewRequest(http.MethodGet, base+statusURL, nil)
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set(api.KeyHeader, key)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		var st api.SweepStatus
		err = json.NewDecoder(resp.Body).Decode(&st)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if st.State == "done" {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("sweep never finished (state=%s)", st.State)
		}
		time.Sleep(5 * time.Millisecond)
	}
}
