package server

// Journaling and crash-resume for the sweep service. With Config.Journal
// set, every externally visible sweep transition is appended to the WAL
// before it is published: the accepted spec (verbatim, so replay
// re-expands the exact job list), every completed row (the full wire
// row, so a resumed sweep's NDJSON stream reproduces the original bytes,
// cached flags included), cancellation requests, and the terminal state.
// A restarted server replays snapshot + records, rebuilds every sweep's
// row table, marks the interrupted ones recovered, and resumes them by
// running only the jobs with no journaled row — completed work is never
// re-simulated.
//
// The window this cannot close: a job's result reaches the
// content-addressed store (inside the runner) an instant before its row
// record reaches the journal. A crash in that window re-runs the job on
// resume and finds it in the cache, so the resumed row says cached where
// the uninterrupted run said simulated. The window is microseconds per
// job; the recovery smoke keeps it closed by construction (it kills the
// server between rows, not inside the commit pair).

import (
	"context"
	"encoding/json"
	"fmt"
	"sort"
	"strings"
	"time"

	"repro/internal/sweep"
)

// srvRec is one server journal record; fields are op-dependent.
type srvRec struct {
	Op string `json:"op"` // "submit", "row", "cancel" or "end"
	ID string `json:"id"`
	// submit fields. Spec is the accepted request body verbatim; replay
	// re-expands it, so the job list never has to be journaled.
	Name      string    `json:"name,omitempty"`
	Tenant    string    `json:"tenant,omitempty"`
	Pri       int       `json:"pri,omitempty"`
	Par       int       `json:"par,omitempty"`
	Spec      string    `json:"spec,omitempty"`
	Submitted time.Time `json:"submitted,omitempty"`
	// row fields. Index is the job's position in the sweep's expansion;
	// Row is the full wire row.
	Index int        `json:"index,omitempty"`
	Row   *sweep.Row `json:"row,omitempty"`
	// end fields.
	State    string    `json:"state,omitempty"`
	Finished time.Time `json:"finished,omitempty"`
}

// srvSweep is one sweep inside a compaction snapshot. Rows holds only
// completed entries (indexes align with Done).
type srvSweep struct {
	ID        string      `json:"id"`
	Name      string      `json:"name,omitempty"`
	Tenant    string      `json:"tenant,omitempty"`
	Pri       int         `json:"pri,omitempty"`
	Par       int         `json:"par,omitempty"`
	Jobs      []sweep.Job `json:"jobs"`
	Rows      []sweep.Row `json:"rows"`
	Done      []bool      `json:"done"`
	State     string      `json:"state"`
	Submitted time.Time   `json:"submitted"`
	Finished  time.Time   `json:"finished,omitempty"`
	Recovered bool        `json:"recovered,omitempty"`
}

// srvSnapshot is the compaction image of the whole sweep table.
type srvSnapshot struct {
	NextID uint64     `json:"next_id"`
	Sweeps []srvSweep `json:"sweeps,omitempty"`
}

// journalAppend writes one record. s.jmu serializes appends against
// compaction's snapshot+Compact pair, so a record can never slip into
// the gap between "state captured" and "records discarded". Callers
// must not hold s.mu or any run.mu (compaction acquires them under
// s.jmu). Append errors degrade to running unjournaled — the WAL
// poisons itself after the first write error, so the cost stays one
// failed syscall per record.
func (s *Server) journalAppend(r srvRec) {
	if s.cfg.Journal == nil {
		return
	}
	b, err := json.Marshal(r)
	if err != nil {
		return
	}
	s.jmu.Lock()
	s.cfg.Journal.Append(b)
	s.jmu.Unlock()
}

func (s *Server) logf(format string, args ...any) {
	if s.cfg.Logf != nil {
		s.cfg.Logf(format, args...)
	}
}

// replaySweep is one sweep being reconstructed during recovery.
type replaySweep struct {
	run      *sweepRun
	par      int
	canceled bool // a journaled cancel request with no end record yet
}

// recoverJournal rebuilds the sweep table from the journal and resumes
// every sweep the crash interrupted. Called from New before the server
// is visible; the returned error means the snapshot itself was
// unreadable (records are skipped individually).
func (s *Server) recoverJournal() error {
	runs := make(map[string]*replaySweep)
	var order []string

	if data, _, ok := s.cfg.Journal.Snapshot(); ok {
		var snap srvSnapshot
		if err := json.Unmarshal(data, &snap); err != nil {
			return fmt.Errorf("rfserved: corrupt journal snapshot: %w", err)
		}
		s.nextID = snap.NextID
		for _, sw := range snap.Sweeps {
			if len(sw.Rows) != len(sw.Jobs) || len(sw.Done) != len(sw.Jobs) {
				s.logf("rfserved: journal snapshot sweep %s is inconsistent; dropping it", sw.ID)
				continue
			}
			run := &sweepRun{
				id: sw.ID, name: sw.Name, tenant: sw.Tenant, priority: sw.Pri,
				jobs: sw.Jobs, rows: sw.Rows, done: sw.Done,
				state: sweepState(sw.State), submitted: sw.Submitted,
				finished: sw.Finished, recovered: sw.Recovered,
				notify: make(chan struct{}),
			}
			for i, d := range sw.Done {
				if d {
					run.completed++
					if sw.Rows[i].Cached {
						run.cached++
					}
				}
			}
			runs[sw.ID] = &replaySweep{run: run, par: sw.Par}
			order = append(order, sw.ID)
		}
	}

	err := s.cfg.Journal.Replay(func(_ uint64, payload []byte) error {
		var r srvRec
		if err := json.Unmarshal(payload, &r); err != nil {
			return nil // skip a foreign or damaged record, keep the rest
		}
		rs := runs[r.ID]
		switch r.Op {
		case "submit":
			spec, err := sweep.ParseSpec(strings.NewReader(r.Spec))
			if err != nil {
				s.logf("rfserved: journaled sweep %s no longer parses; dropping it: %v", r.ID, err)
				return nil
			}
			jobs, err := spec.Jobs()
			if err != nil {
				s.logf("rfserved: journaled sweep %s no longer expands; dropping it: %v", r.ID, err)
				return nil
			}
			run := &sweepRun{
				id: r.ID, name: r.Name, tenant: r.Tenant, priority: r.Pri,
				jobs: jobs, rows: make([]sweep.Row, len(jobs)),
				done: make([]bool, len(jobs)), state: stateRunning,
				submitted: r.Submitted, notify: make(chan struct{}),
			}
			runs[r.ID] = &replaySweep{run: run, par: r.Par}
			order = append(order, r.ID)
			if n := idNumber(r.ID); n > s.nextID {
				s.nextID = n
			}
		case "row":
			if rs == nil || r.Row == nil || r.Index < 0 || r.Index >= len(rs.run.jobs) {
				return nil
			}
			run := rs.run
			if !run.done[r.Index] {
				run.done[r.Index] = true
				run.completed++
				if r.Row.Cached {
					run.cached++
				}
			}
			run.rows[r.Index] = *r.Row
		case "cancel":
			if rs != nil {
				rs.canceled = true
			}
		case "end":
			if rs == nil {
				return nil
			}
			rs.run.state = sweepState(r.State)
			rs.run.finished = r.Finished
			rs.canceled = false
		}
		return nil
	})
	if err != nil {
		return err
	}

	// Materialize and resume. A sweep the crash interrupted restarts
	// with only its unfinished jobs; quota re-acquisition is unlimited —
	// recovery must never be refused admission for work that was already
	// admitted once.
	for _, id := range order {
		rs := runs[id]
		run := rs.run
		// Terminal (or immediately-settled) sweeps still get a cancel hook:
		// handleCancel calls it unconditionally.
		run.cancel = func() {}
		s.sweeps[id] = run
		s.order = append(s.order, id)
		if run.state != stateRunning {
			s.warehouseRebuildDone(run)
			continue
		}
		run.recovered = true
		if rs.canceled || run.completed == len(run.jobs) {
			// Nothing left to run: settle the terminal state directly.
			if rs.canceled {
				run.state = stateCanceled
			} else {
				run.state = stateDone
			}
			run.finished = time.Now()
			s.journalAppend(srvRec{Op: "end", ID: id, State: string(run.state), Finished: run.finished})
			s.warehouseRebuildDone(run)
			continue
		}
		remaining := len(run.jobs) - run.completed
		par := rs.par
		if par <= 0 || par > s.cfg.MaxSweepWorkers {
			par = s.cfg.MaxSweepWorkers
		}
		s.active.Acquire(run.tenant, 1, 0)
		s.queued.Acquire(run.tenant, remaining, 0)
		s.queueDepth.Add(int64(remaining))
		// Pre-populate the warehouse builder before execute can publish
		// rows, so live Adds never race an absent builder.
		s.warehousePrepareResume(run)
		ctx, cancel := context.WithCancel(s.ctx)
		run.cancel = cancel
		s.wg.Add(1)
		go s.execute(ctx, run, par)
		s.logf("rfserved: resuming sweep %s (%d of %d jobs journaled complete)",
			id, run.completed, len(run.jobs))
	}
	if st := s.cfg.Journal.Stats(); st.Replayed > 0 || len(order) > 0 {
		s.logf("rfserved: journal replayed %d records in %s (%d sweeps, %d bytes truncated)",
			st.Replayed, st.ReplayDuration.Round(time.Millisecond), len(order), st.TruncatedBytes)
	}
	return nil
}

// idNumber parses the numeric part of a sweep id ("s%06d").
func idNumber(id string) uint64 {
	var n uint64
	if _, err := fmt.Sscanf(id, "s%d", &n); err != nil {
		return 0
	}
	return n
}

// snapshotJournal serializes the sweep table for compaction. Terminal
// sweeps ride along in full: the journal is the only thing that lets a
// restarted server keep serving their status and result streams.
func (s *Server) snapshotJournal() ([]byte, error) {
	s.mu.Lock()
	snap := srvSnapshot{NextID: s.nextID}
	runs := make([]*sweepRun, 0, len(s.order))
	for _, id := range s.order {
		runs = append(runs, s.sweeps[id])
	}
	s.mu.Unlock()
	for _, run := range runs {
		run.mu.Lock()
		sw := srvSweep{
			ID: run.id, Name: run.name, Tenant: run.tenant, Pri: run.priority,
			Par: run.parallelism, Jobs: run.jobs,
			Rows:  append([]sweep.Row(nil), run.rows...),
			Done:  append([]bool(nil), run.done...),
			State: string(run.state), Submitted: run.submitted,
			Finished: run.finished, Recovered: run.recovered,
		}
		run.mu.Unlock()
		snap.Sweeps = append(snap.Sweeps, sw)
	}
	return json.Marshal(snap)
}

// compactLoop snapshots and compacts the journal whenever its live
// record bytes pass the threshold; it exits with the server context.
func (s *Server) compactLoop() {
	tick := time.NewTicker(5 * time.Second)
	defer tick.Stop()
	for {
		select {
		case <-s.ctx.Done():
			return
		case <-tick.C:
			s.compactJournal()
		}
	}
}

// compactJournal runs one compaction check. Exported to the tests via
// export_test.go so they need not wait out the ticker.
func (s *Server) compactJournal() {
	j := s.cfg.Journal
	if j == nil || j.SizeBytes() < s.cfg.CompactBytes {
		return
	}
	s.jmu.Lock()
	defer s.jmu.Unlock()
	snap, err := s.snapshotJournal()
	if err != nil {
		return
	}
	if err := j.Compact(snap); err != nil {
		s.logf("rfserved: journal compaction failed: %v", err)
	}
}

// walJournals returns the journal labels for /metrics, sorted: the
// server's own journal plus any extra journals wired in for exposure
// (the coordinator's, in cmd/rfserved).
func (s *Server) walJournals() []string {
	names := make([]string, 0, len(s.cfg.ExtraJournals)+1)
	if s.cfg.Journal != nil {
		names = append(names, "server")
	}
	for name, j := range s.cfg.ExtraJournals {
		if j != nil && name != "server" {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	return names
}
