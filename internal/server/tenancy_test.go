package server

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"repro/internal/sim"
	"repro/internal/sweep"
	"repro/internal/tenant"
	"repro/rf/api"
)

// testRegistry builds the registry used across the tenancy tests:
// "small" is tightly quota'd, "big" is a high-tier tenant with a rotated
// key pair.
func testRegistry(t *testing.T) *tenant.Registry {
	t.Helper()
	reg, err := tenant.Load(strings.NewReader(`{
	  "tenants": [
	    {"name": "small", "key": "key-small", "max_queued": 3},
	    {"name": "big", "keys": ["key-big", "key-big-rotated"], "priority": 5}
	  ]
	}`), tenant.Limits{})
	if err != nil {
		t.Fatal(err)
	}
	return reg
}

// postSpec submits a spec with an API key and returns the raw response;
// the caller owns the body.
func postSpec(t *testing.T, base, key, spec string) *http.Response {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost, base+"/v1/sweeps", strings.NewReader(spec))
	if err != nil {
		t.Fatal(err)
	}
	if key != "" {
		req.Header.Set(api.KeyHeader, key)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

// streamKeyed is streamAll with an API key attached: result streams are
// owner-only on a tenanted server.
func streamKeyed(t *testing.T, base, resultsURL, key string) string {
	t.Helper()
	req, err := http.NewRequest(http.MethodGet, base+resultsURL, nil)
	if err != nil {
		t.Fatal(err)
	}
	if key != "" {
		req.Header.Set(api.KeyHeader, key)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("results returned %d", resp.StatusCode)
	}
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(data)
}

// decodeError decodes and closes a non-2xx response body.
func decodeError(t *testing.T, resp *http.Response) api.Error {
	t.Helper()
	defer resp.Body.Close()
	var e api.Error
	if err := json.NewDecoder(resp.Body).Decode(&e); err != nil {
		t.Fatal(err)
	}
	return e
}

func TestTenantAuthAndStamping(t *testing.T) {
	_, ts := newTestServer(t, Config{Tenants: testRegistry(t)})

	// A wrong key is a 401 with the machine-readable code.
	resp := postSpec(t, ts.URL, "key-wrong", testSpec)
	if resp.StatusCode != http.StatusUnauthorized {
		t.Fatalf("wrong key: status %d, want 401", resp.StatusCode)
	}
	if e := decodeError(t, resp); e.Code != api.ErrCodeUnauthenticated {
		t.Errorf("wrong key: code %q, want %q", e.Code, api.ErrCodeUnauthenticated)
	}

	// The rotated (secondary) key authenticates as the same tenant, and
	// the ack and status documents are stamped with tenant and tier.
	resp = postSpec(t, ts.URL, "key-big-rotated", testSpec)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("rotated key: status %d, want 202", resp.StatusCode)
	}
	var ack api.SubmitResponse
	if err := json.NewDecoder(resp.Body).Decode(&ack); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if ack.Tenant != "big" || ack.Priority != 5 {
		t.Errorf("ack stamped %q/%d, want big/5", ack.Tenant, ack.Priority)
	}
	if st := getStatus(t, ts.URL, ack.StatusURL); st.Tenant != "big" || st.Priority != 5 {
		t.Errorf("status stamped %q/%d, want big/5", st.Tenant, st.Priority)
	}

	// A spec may lower its own tier but never raise it past the tenant's.
	lowered := strings.Replace(testSpec, `"name": "smoke",`, `"name": "smoke", "priority": 2,`, 1)
	resp = postSpec(t, ts.URL, "key-big", lowered)
	if err := json.NewDecoder(resp.Body).Decode(&ack); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if ack.Priority != 2 {
		t.Errorf("lowered priority = %d, want 2", ack.Priority)
	}
	raised := strings.Replace(testSpec, `"name": "smoke",`, `"name": "smoke", "priority": 99,`, 1)
	resp = postSpec(t, ts.URL, "key-small", raised)
	var smallAck api.SubmitResponse
	if err := json.NewDecoder(resp.Body).Decode(&smallAck); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if smallAck.Priority != 0 {
		t.Errorf("raised priority = %d, want clamp to small's tier 0", smallAck.Priority)
	}

	// Anonymous (keyless) callers still work against a tenanted server.
	resp = postSpec(t, ts.URL, "", testSpec)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("anonymous: status %d, want 202", resp.StatusCode)
	}
	if err := json.NewDecoder(resp.Body).Decode(&ack); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if ack.Tenant != tenant.Anonymous {
		t.Errorf("anonymous ack stamped %q", ack.Tenant)
	}
}

func TestTenantQueuedQuotaAndIsolation(t *testing.T) {
	_, ts := newTestServer(t, Config{Tenants: testRegistry(t)})

	// testSpec expands to 6 jobs; small's queued-job quota is 3, so the
	// submission is rejected deterministically — while big's identical
	// sweep runs to completion, byte-identical to rfbatch.
	resp := postSpec(t, ts.URL, "key-small", testSpec)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-quota submit: status %d, want 429", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" {
		t.Error("over-quota submit: no Retry-After header")
	}
	e := decodeError(t, resp)
	if e.Code != api.ErrCodeOverQuota {
		t.Errorf("over-quota submit: code %q, want %q", e.Code, api.ErrCodeOverQuota)
	}
	if e.RetryAfterMS <= 0 {
		t.Errorf("over-quota submit: retry_after_ms = %d, want > 0", e.RetryAfterMS)
	}

	resp = postSpec(t, ts.URL, "key-big", testSpec)
	var ack api.SubmitResponse
	if err := json.NewDecoder(resp.Body).Decode(&ack); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	got := streamKeyed(t, ts.URL, ack.ResultsURL, "key-big")
	want := rfbatchNDJSON(t, testSpec, fakeSim)
	if got != want {
		t.Errorf("tenanted stream differs from rfbatch output:\ngot:\n%s\nwant:\n%s", got, want)
	}

	// Quotas drain with the sweep: once big's sweep is done its queued
	// count is back to zero, and small's rejection is visible in metrics.
	metricsResp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(metricsResp.Body)
	metricsResp.Body.Close()
	metrics := string(body)
	for _, want := range []string{
		`rfserved_tenant_rejected_total{tenant="small"} 1`,
		`rfserved_tenant_admitted_total{tenant="big"} 1`,
		`rfserved_tenant_queued_jobs{tenant="big"} 0`,
	} {
		if !strings.Contains(metrics, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
}

func TestTenantActiveQuota(t *testing.T) {
	release := make(chan struct{})
	started := make(chan struct{}, 16)
	reg, err := tenant.Load(strings.NewReader(`{
	  "tenants": [{"name": "slow", "key": "key-slow", "max_active": 1}]
	}`), tenant.Limits{})
	if err != nil {
		t.Fatal(err)
	}
	_, ts := newTestServer(t, Config{
		Tenants: reg,
		Simulate: func(j sweep.Job) sim.Result {
			started <- struct{}{}
			<-release
			return fakeSim(j)
		},
	})

	resp := postSpec(t, ts.URL, "key-slow", testSpec)
	var ack api.SubmitResponse
	if err := json.NewDecoder(resp.Body).Decode(&ack); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	<-started // the first sweep is genuinely running

	// A second concurrent sweep exceeds max_active 1.
	resp = postSpec(t, ts.URL, "key-slow", testSpec)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("second sweep: status %d, want 429", resp.StatusCode)
	}
	if e := decodeError(t, resp); e.Code != api.ErrCodeOverQuota {
		t.Errorf("second sweep: code %q, want %q", e.Code, api.ErrCodeOverQuota)
	}

	close(release)
	deadline := time.Now().Add(5 * time.Second)
	for getStatus(t, ts.URL, ack.StatusURL).State == "running" {
		if time.Now().After(deadline) {
			t.Fatal("first sweep never finished")
		}
		time.Sleep(5 * time.Millisecond)
	}
	// With the slot back, the tenant may submit again.
	resp = postSpec(t, ts.URL, "key-slow", testSpec)
	if resp.StatusCode != http.StatusAccepted {
		body, _ := io.ReadAll(resp.Body)
		t.Fatalf("post-drain sweep: status %d, want 202: %s", resp.StatusCode, body)
	}
	resp.Body.Close()
}

func TestTenantRateLimit(t *testing.T) {
	reg, err := tenant.Load(strings.NewReader(`{
	  "tenants": [{"name": "paced", "key": "key-paced", "rate": 0.001, "burst": 1}]
	}`), tenant.Limits{})
	if err != nil {
		t.Fatal(err)
	}
	_, ts := newTestServer(t, Config{Tenants: reg})

	resp := postSpec(t, ts.URL, "key-paced", testSpec)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("first submit: status %d, want 202", resp.StatusCode)
	}
	resp.Body.Close()

	// The burst is spent; at 0.001 req/s the next token is ~17 min away.
	resp = postSpec(t, ts.URL, "key-paced", testSpec)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("second submit: status %d, want 429", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" {
		t.Error("second submit: no Retry-After header")
	}
	if e := decodeError(t, resp); e.Code != api.ErrCodeRateLimited {
		t.Errorf("second submit: code %q, want %q", e.Code, api.ErrCodeRateLimited)
	}

	// Other tenants (here: anonymous) are not collateral damage.
	resp = postSpec(t, ts.URL, "", testSpec)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("anonymous submit: status %d, want 202", resp.StatusCode)
	}
	resp.Body.Close()
}

func TestTenantCancelOwnership(t *testing.T) {
	_, ts := newTestServer(t, Config{Tenants: testRegistry(t)})
	resp := postSpec(t, ts.URL, "key-big", testSpec)
	var ack api.SubmitResponse
	if err := json.NewDecoder(resp.Body).Decode(&ack); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	cancel := func(key string) *http.Response {
		req, err := http.NewRequest(http.MethodDelete, ts.URL+"/v1/sweeps/"+ack.ID, nil)
		if err != nil {
			t.Fatal(err)
		}
		if key != "" {
			req.Header.Set(api.KeyHeader, key)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		return resp
	}

	// Another tenant (and an anonymous caller) cannot cancel big's sweep.
	resp = cancel("key-small")
	if resp.StatusCode != http.StatusForbidden {
		t.Fatalf("cross-tenant cancel: status %d, want 403", resp.StatusCode)
	}
	if e := decodeError(t, resp); e.Code != api.ErrCodeForbidden {
		t.Errorf("cross-tenant cancel: code %q, want %q", e.Code, api.ErrCodeForbidden)
	}
	resp = cancel("")
	if resp.StatusCode != http.StatusForbidden {
		t.Fatalf("anonymous cancel: status %d, want 403", resp.StatusCode)
	}
	resp.Body.Close()

	// The owner can, with either of its keys.
	resp = cancel("key-big-rotated")
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("owner cancel: status %d, want 202", resp.StatusCode)
	}
	resp.Body.Close()
}

// TestTenantResultsOwnership pins result-stream isolation: sweep IDs
// are sequential and listable, so the payload stream must demand
// ownership rather than rely on ID secrecy.
func TestTenantResultsOwnership(t *testing.T) {
	_, ts := newTestServer(t, Config{Tenants: testRegistry(t)})
	resp := postSpec(t, ts.URL, "key-big", testSpec)
	var ack api.SubmitResponse
	if err := json.NewDecoder(resp.Body).Decode(&ack); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	stream := func(key string) *http.Response {
		req, err := http.NewRequest(http.MethodGet, ts.URL+ack.ResultsURL, nil)
		if err != nil {
			t.Fatal(err)
		}
		if key != "" {
			req.Header.Set(api.KeyHeader, key)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		return resp
	}

	// Another tenant — and an anonymous caller who merely guessed the
	// sequential ID — gets a 403, not big's rows.
	resp = stream("key-small")
	if resp.StatusCode != http.StatusForbidden {
		t.Fatalf("cross-tenant stream: status %d, want 403", resp.StatusCode)
	}
	if e := decodeError(t, resp); e.Code != api.ErrCodeForbidden {
		t.Errorf("cross-tenant stream: code %q, want %q", e.Code, api.ErrCodeForbidden)
	}
	resp = stream("")
	if resp.StatusCode != http.StatusForbidden {
		t.Fatalf("anonymous stream: status %d, want 403", resp.StatusCode)
	}
	resp.Body.Close()

	// The owner streams the full result set, with either of its keys.
	got := streamKeyed(t, ts.URL, ack.ResultsURL, "key-big-rotated")
	if want := rfbatchNDJSON(t, testSpec, fakeSim); got != want {
		t.Errorf("owner stream differs from rfbatch output:\ngot:\n%s\nwant:\n%s", got, want)
	}
}

// TestUntenantedIgnoresKeys pins the compatibility contract: without a
// registry, credentials are ignored, documents carry no tenant fields,
// and nothing is ever admission-limited.
func TestUntenantedIgnoresKeys(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp := postSpec(t, ts.URL, "some-random-key", testSpec)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("keyed submit on untenanted server: status %d, want 202", resp.StatusCode)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if strings.Contains(string(raw), `"tenant"`) || strings.Contains(string(raw), `"priority"`) {
		t.Errorf("untenanted ack leaks tenancy fields: %s", raw)
	}
	var ack api.SubmitResponse
	if err := json.Unmarshal(raw, &ack); err != nil {
		t.Fatal(err)
	}
	got := streamAll(t, ts.URL, ack.ResultsURL)
	if want := rfbatchNDJSON(t, testSpec, fakeSim); got != want {
		t.Errorf("untenanted stream differs from rfbatch output")
	}
}
