// Package server implements rfserved, the HTTP sweep service: clients
// submit JSON sweep specifications (the same schema cmd/rfbatch reads),
// poll sweep status, and stream per-job result rows as NDJSON while the
// sweep runs. All sweeps share one cached sweep.Runner — usually backed
// by the disk store in internal/store — so a configuration simulated for
// any client is never simulated again for another.
//
// API (see the README for schemas):
//
//	POST   /v1/sweeps               submit a sweep spec → 202 + {id, ...}
//	GET    /v1/sweeps               list sweeps
//	GET    /v1/sweeps/{id}          sweep status
//	GET    /v1/sweeps/{id}/results  NDJSON row stream (live)
//	DELETE /v1/sweeps/{id}          cancel a running sweep
//	GET    /metrics                 Prometheus-style text metrics
//	GET    /healthz                 liveness probe
//
// Scheduling is doubly bounded: each sweep runs through the runner's
// per-sweep worker budget, and every simulation additionally acquires a
// global slot, so many concurrent sweeps cannot oversubscribe the host.
// Rows stream in job order — the order cmd/rfbatch emits — so a sweep's
// streamed NDJSON is byte-identical to an rfbatch -ndjson run of the
// same spec.
package server

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/dispatch"
	"repro/internal/sim"
	"repro/internal/sweep"
	"repro/rf"
	"repro/rf/api"
)

// Config configures a Server. The zero value is usable: GOMAXPROCS
// global workers, an in-memory cache, real simulations.
type Config struct {
	// Cache backs the shared runner: an in-memory MemCache, the disk
	// store in internal/store, or a Tiered combination. Nil uses a fresh
	// MemCache (results die with the process).
	Cache sweep.Cache
	// Simulate overrides the simulation function (tests); nil runs the
	// real simulator.
	Simulate func(sweep.Job) sim.Result
	// Dispatcher, when non-nil, turns the server into a fleet
	// coordinator: jobs execute on registered remote workers (see
	// internal/dispatch) instead of locally, the /v1/workers endpoints
	// are mounted, and the dispatcher is closed by Shutdown. Simulate is
	// then only used as documentation — the dispatcher's own Fallback
	// covers local execution.
	Dispatcher *dispatch.Coordinator
	// MaxWorkers bounds concurrent simulations across all sweeps; 0 uses
	// GOMAXPROCS — except in coordinator mode, where a "simulation" is a
	// blocked wait on the fleet and the default is max(256, GOMAXPROCS)
	// so the fan-out is not throttled to local core count.
	MaxWorkers int
	// MaxSweepWorkers caps any single sweep's worker budget (a spec may
	// request less via its parallelism field, never more); 0 uses
	// MaxWorkers.
	MaxSweepWorkers int
	// MaxJobs rejects specs that expand to more jobs than this;
	// 0 means 100000.
	MaxJobs int
	// MaxBodyBytes bounds the request body of a submission; 0 means 1 MiB.
	MaxBodyBytes int64
}

// sweepState is the lifecycle of one submitted sweep.
type sweepState string

const (
	stateRunning  sweepState = "running"
	stateDone     sweepState = "done"
	stateCanceled sweepState = "canceled"
)

// sweepRun holds one submitted sweep and its incrementally filled rows.
type sweepRun struct {
	id     string
	name   string
	jobs   []sweep.Job
	cancel context.CancelFunc

	mu        sync.Mutex
	rows      []sweep.Row
	done      []bool
	completed int
	cached    int
	state     sweepState
	submitted time.Time
	finished  time.Time
	// notify is closed and replaced whenever rows or state change;
	// streamers wait on it instead of polling.
	notify chan struct{}
}

// Server is the rfserved HTTP handler plus its sweep scheduler.
type Server struct {
	cfg    Config
	runner *sweep.Runner
	sem    chan struct{} // global simulation slots
	mux    *http.ServeMux

	ctx    context.Context // canceled by Shutdown; parents every sweep
	cancel context.CancelFunc
	wg     sync.WaitGroup

	mu     sync.Mutex
	sweeps map[string]*sweepRun
	order  []string
	nextID uint64
	closed bool

	start          time.Time
	jobsCompleted  atomic.Uint64
	jobsFromCache  atomic.Uint64
	simsStarted    atomic.Uint64
	instrsSim      atomic.Uint64
	simNanos       atomic.Int64
	queueDepth     atomic.Int64
	sweepsCanceled atomic.Uint64
}

// New returns a ready-to-serve Server.
func New(cfg Config) *Server {
	if cfg.MaxWorkers <= 0 {
		cfg.MaxWorkers = runtime.GOMAXPROCS(0)
		if cfg.Dispatcher != nil && cfg.MaxWorkers < 256 {
			cfg.MaxWorkers = 256
		}
	}
	if cfg.MaxSweepWorkers <= 0 || cfg.MaxSweepWorkers > cfg.MaxWorkers {
		cfg.MaxSweepWorkers = cfg.MaxWorkers
	}
	if cfg.MaxJobs <= 0 {
		cfg.MaxJobs = 100000
	}
	if cfg.MaxBodyBytes <= 0 {
		cfg.MaxBodyBytes = 1 << 20
	}
	s := &Server{
		cfg:    cfg,
		sem:    make(chan struct{}, cfg.MaxWorkers),
		sweeps: make(map[string]*sweepRun),
		start:  time.Now(),
	}
	s.ctx, s.cancel = context.WithCancel(context.Background())

	simulate := cfg.Simulate
	if simulate == nil {
		simulate = sweep.Simulate
	}
	if cfg.Dispatcher != nil {
		simulate = cfg.Dispatcher.Simulate
	}
	s.runner = sweep.NewRunner(sweep.RunnerConfig{
		Cache: cfg.Cache,
		Simulate: func(j sweep.Job) sim.Result {
			// The per-sweep pool admitted this job; the global semaphore
			// keeps the sum over all sweeps bounded too.
			s.sem <- struct{}{}
			defer func() { <-s.sem }()
			s.simsStarted.Add(1)
			if cfg.Dispatcher != nil {
				// The call blocks on the fleet; its wall time is queueing
				// and network, not simulation, so it must not feed the
				// simulation-seconds/throughput metrics.
				res := simulate(j)
				s.instrsSim.Add(res.Instructions)
				return res
			}
			t0 := time.Now()
			res := simulate(j)
			s.simNanos.Add(time.Since(t0).Nanoseconds())
			s.instrsSim.Add(res.Instructions)
			return res
		},
	})

	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/version", handleVersion)
	mux.HandleFunc("POST /v1/sweeps", s.handleSubmit)
	mux.HandleFunc("GET /v1/sweeps", s.handleList)
	mux.HandleFunc("GET /v1/sweeps/{id}", s.handleStatus)
	mux.HandleFunc("GET /v1/sweeps/{id}/results", s.handleResults)
	mux.HandleFunc("DELETE /v1/sweeps/{id}", s.handleCancel)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		writeJSON(w, http.StatusOK, map[string]any{"ok": true})
	})
	if d := cfg.Dispatcher; d != nil {
		mux.HandleFunc("POST /v1/workers/register", d.HandleRegister)
		mux.HandleFunc("POST /v1/workers/{id}/poll", d.HandlePoll)
		mux.HandleFunc("GET /v1/workers", d.HandleWorkers)
	}
	s.mux = mux
	return s
}

// ServeHTTP dispatches to the API routes. Every response carries the
// X-RF-API-Version header, and a request stamped with a different
// schema version is rejected up front — version negotiation happens
// before any handler runs.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	w.Header().Set(api.VersionHeader, strconv.Itoa(api.Version))
	if h := r.Header.Get(api.VersionHeader); h != "" {
		if v, err := strconv.Atoi(h); err != nil || v != api.Version {
			writeError(w, http.StatusBadRequest,
				"rfserved: API schema version %q not supported (this server speaks %d)",
				h, api.Version)
			return
		}
	}
	s.mux.ServeHTTP(w, r)
}

// handleVersion serves GET /v1/version: the build and schema versions,
// so clients and scripts can assert compatibility before submitting.
func handleVersion(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, api.VersionInfo{Schema: api.Version, Module: rf.ModuleVersion()})
}

// Shutdown stops accepting sweeps, cancels the ones still running, and
// waits for their goroutines (bounded by ctx). In coordinator mode it
// also closes the dispatcher, so jobs blocked on the fleet resolve
// through the local fallback instead of waiting on workers forever.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	s.closed = true
	s.mu.Unlock()
	s.cancel()
	if s.cfg.Dispatcher != nil {
		s.cfg.Dispatcher.Close()
	}
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// CacheStats exposes the shared runner's lifetime hit/miss counts.
func (s *Server) CacheStats() sweep.CacheStats {
	return s.runner.CacheStats()
}

// RunJob executes one job through the server's shared cached runner —
// the execution hook for rfserved worker mode, so jobs leased from a
// coordinator share this process's cache, store, scheduler budget and
// metrics with locally submitted sweeps.
func (s *Server) RunJob(j sweep.Job) sim.Result {
	return s.runner.RunOutcomes([]sweep.Job{j}, 1)[0].Result
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, api.Error{Error: fmt.Sprintf(format, args...)})
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	spec, err := sweep.ParseSpec(http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes))
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	// Count before expanding, so an absurd cross product is rejected
	// without materializing it.
	count, err := spec.JobCount()
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if count == 0 {
		writeError(w, http.StatusBadRequest, "sweep: spec expands to zero jobs")
		return
	}
	// A saturated count is rejected no matter how generous MaxJobs is:
	// past the saturation point the true expansion is unknown and
	// materializing it is exactly the DoS the pre-count exists to stop.
	if count >= sweep.MaxJobCount {
		writeError(w, http.StatusRequestEntityTooLarge,
			"sweep: spec expands to at least %d jobs", sweep.MaxJobCount)
		return
	}
	if count > s.cfg.MaxJobs {
		writeError(w, http.StatusRequestEntityTooLarge,
			"sweep: spec expands to %d jobs, limit is %d", count, s.cfg.MaxJobs)
		return
	}
	jobs, err := spec.Jobs()
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	parallelism := spec.Parallelism
	if parallelism <= 0 || parallelism > s.cfg.MaxSweepWorkers {
		parallelism = s.cfg.MaxSweepWorkers
	}

	ctx, cancel := context.WithCancel(s.ctx)
	run := &sweepRun{
		name:      spec.Name,
		jobs:      jobs,
		cancel:    cancel,
		rows:      make([]sweep.Row, len(jobs)),
		done:      make([]bool, len(jobs)),
		state:     stateRunning,
		submitted: time.Now(),
		notify:    make(chan struct{}),
	}

	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		cancel()
		writeError(w, http.StatusServiceUnavailable, "rfserved: shutting down")
		return
	}
	s.nextID++
	run.id = fmt.Sprintf("s%06d", s.nextID)
	s.sweeps[run.id] = run
	s.order = append(s.order, run.id)
	s.wg.Add(1)
	s.mu.Unlock()

	s.queueDepth.Add(int64(len(jobs)))
	go s.execute(ctx, run, parallelism)

	writeJSON(w, http.StatusAccepted, api.SubmitResponse{
		Schema: api.Version,
		ID:     run.id, Name: run.name, Jobs: len(jobs),
		StatusURL:  "/v1/sweeps/" + run.id,
		ResultsURL: "/v1/sweeps/" + run.id + "/results",
	})
}

// execute runs one sweep to completion (or cancellation) on the shared
// runner, publishing rows as jobs resolve.
func (s *Server) execute(ctx context.Context, run *sweepRun, parallelism int) {
	defer s.wg.Done()
	_, err := s.runner.RunOutcomesContext(ctx, run.jobs, parallelism, func(p sweep.Progress) {
		row := sweep.RowOf(p.Job, sweep.Outcome{Result: p.Result, Key: p.Key, Cached: p.Cached})
		run.mu.Lock()
		run.rows[p.Index] = row
		run.done[p.Index] = true
		run.completed++
		if p.Cached {
			run.cached++
		}
		run.wakeLocked()
		run.mu.Unlock()
		s.jobsCompleted.Add(1)
		if p.Cached {
			s.jobsFromCache.Add(1)
		}
		s.queueDepth.Add(-1)
	})

	run.mu.Lock()
	if err == nil {
		run.state = stateDone
	} else {
		run.state = stateCanceled
		s.sweepsCanceled.Add(1)
	}
	run.finished = time.Now()
	skipped := len(run.jobs) - run.completed
	run.wakeLocked()
	run.mu.Unlock()
	s.queueDepth.Add(-int64(skipped))
	run.cancel() // release the context regardless of how the sweep ended
}

// wakeLocked signals streamers; run.mu must be held.
func (r *sweepRun) wakeLocked() {
	close(r.notify)
	r.notify = make(chan struct{})
}

func (r *sweepRun) status() api.SweepStatus {
	r.mu.Lock()
	defer r.mu.Unlock()
	st := api.SweepStatus{
		Schema: api.Version,
		ID:     r.id, Name: r.name, State: string(r.state),
		Total: len(r.jobs), Completed: r.completed, Cached: r.cached,
		Simulated:  r.completed - r.cached,
		Submitted:  r.submitted.UTC().Format(time.RFC3339Nano),
		ResultsURL: "/v1/sweeps/" + r.id + "/results",
	}
	if !r.finished.IsZero() {
		st.Finished = r.finished.UTC().Format(time.RFC3339Nano)
	}
	return st
}

func (s *Server) lookup(w http.ResponseWriter, r *http.Request) *sweepRun {
	id := r.PathValue("id")
	s.mu.Lock()
	run := s.sweeps[id]
	s.mu.Unlock()
	if run == nil {
		writeError(w, http.StatusNotFound, "rfserved: no sweep %q", id)
	}
	return run
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	run := s.lookup(w, r)
	if run == nil {
		return
	}
	writeJSON(w, http.StatusOK, run.status())
}

func (s *Server) handleList(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	runs := make([]*sweepRun, 0, len(s.order))
	for _, id := range s.order {
		runs = append(runs, s.sweeps[id])
	}
	s.mu.Unlock()
	out := api.SweepList{Sweeps: []api.SweepStatus{}}
	for _, run := range runs {
		out.Sweeps = append(out.Sweeps, run.status())
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	run := s.lookup(w, r)
	if run == nil {
		return
	}
	run.cancel()
	writeJSON(w, http.StatusAccepted, run.status())
}

// handleResults streams the sweep's rows as NDJSON in job order,
// emitting each row as soon as it (and every row before it) resolves.
// The stream ends when the sweep finishes or is canceled, or when the
// client disconnects (the request context governs the stream, not the
// sweep: disconnecting a streamer never cancels the simulations).
func (s *Server) handleResults(w http.ResponseWriter, r *http.Request) {
	run := s.lookup(w, r)
	if run == nil {
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	flusher, _ := w.(http.Flusher)

	next := 0
	var batch []sweep.Row
	for {
		run.mu.Lock()
		batch = batch[:0]
		for next < len(run.jobs) && run.done[next] {
			batch = append(batch, run.rows[next])
			next++
		}
		state := run.state
		notify := run.notify
		run.mu.Unlock()

		// A terminal sweep delivers everything it has: a cancellation can
		// leave gaps (skipped jobs between completed ones), and rows past
		// a gap must still reach the client. While running, emission stays
		// strictly in-order so a completed sweep's stream is byte-identical
		// to rfbatch output.
		if state != stateRunning {
			run.mu.Lock()
			for i := next; i < len(run.jobs); i++ {
				if run.done[i] {
					batch = append(batch, run.rows[i])
				}
			}
			next = len(run.jobs)
			run.mu.Unlock()
		}
		for _, row := range batch {
			if err := sweep.WriteRow(w, row); err != nil {
				return
			}
		}
		if len(batch) > 0 && flusher != nil {
			flusher.Flush()
		}
		// Close only on a terminal state, never merely because every row
		// has been delivered: the state flips moments after the last
		// progress event, and a client that checks status the instant the
		// stream ends must never observe "running" on a finished sweep.
		if state != stateRunning {
			return
		}
		select {
		case <-notify:
		case <-r.Context().Done():
			return
		}
	}
}

// handleMetrics renders Prometheus-style text exposition: throughput
// (jobs, simulated instructions, wall-clock simulation seconds), cache
// effectiveness, and scheduler queue depth.
func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	total := len(s.sweeps)
	active := 0
	for _, run := range s.sweeps {
		run.mu.Lock()
		if run.state == stateRunning {
			active++
		}
		run.mu.Unlock()
	}
	s.mu.Unlock()

	cache := s.runner.CacheStats()
	hitRate := 0.0
	if n := cache.Hits + cache.Misses; n > 0 {
		hitRate = float64(cache.Hits) / float64(n)
	}
	simSecs := float64(s.simNanos.Load()) / 1e9
	throughput := 0.0
	if simSecs > 0 {
		throughput = float64(s.instrsSim.Load()) / simSecs
	}

	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	m := func(name string, value any, help string) {
		fmt.Fprintf(w, "# HELP %s %s\n%s %v\n", name, help, name, value)
	}
	m("rfserved_uptime_seconds", fmt.Sprintf("%.3f", time.Since(s.start).Seconds()),
		"seconds since the server started")
	m("rfserved_sweeps_total", total, "sweeps submitted since start")
	m("rfserved_sweeps_active", active, "sweeps currently running")
	m("rfserved_sweeps_canceled_total", s.sweepsCanceled.Load(), "sweeps canceled before completion")
	m("rfserved_jobs_completed_total", s.jobsCompleted.Load(), "jobs resolved (simulated or cached)")
	m("rfserved_jobs_cached_total", s.jobsFromCache.Load(), "jobs served without simulating")
	m("rfserved_simulations_started_total", s.simsStarted.Load(), "simulations actually executed")
	m("rfserved_queue_depth", s.queueDepth.Load(), "jobs submitted but not yet resolved")
	m("rfserved_cache_hits_total", cache.Hits, "runner cache hits since start")
	m("rfserved_cache_misses_total", cache.Misses, "runner cache misses since start")
	m("rfserved_cache_hit_rate", fmt.Sprintf("%.6f", hitRate), "hits / (hits + misses)")
	m("rfserved_instructions_simulated_total", s.instrsSim.Load(), "dynamic instructions simulated")
	m("rfserved_simulation_seconds_total", fmt.Sprintf("%.3f", simSecs), "cumulative wall-clock seconds inside the simulator")
	m("rfserved_instructions_per_second", fmt.Sprintf("%.0f", throughput), "simulation throughput (instructions / simulation second)")

	if d := s.cfg.Dispatcher; d != nil {
		ds := d.Stats()
		m("rfserved_dispatch_workers", ds.Workers, "workers currently registered")
		m("rfserved_dispatch_tasks_pending", ds.Pending, "tasks queued for the fleet")
		m("rfserved_dispatch_tasks_inflight", ds.Inflight, "tasks leased to workers")
		m("rfserved_dispatch_leases_total", ds.Dispatched, "job leases handed out (including retries)")
		m("rfserved_dispatch_results_total", ds.Completed, "results accepted from workers")
		m("rfserved_dispatch_requeues_total", ds.Requeued, "leases expired and requeued")
		m("rfserved_dispatch_fallbacks_total", ds.Fallbacks, "tasks simulated locally after exhausting remote attempts")
		m("rfserved_dispatch_workers_expired_total", ds.Expired, "workers deregistered for missing their lease")
	}
}
