// Package server implements rfserved, the HTTP sweep service: clients
// submit JSON sweep specifications (the same schema cmd/rfbatch reads),
// poll sweep status, and stream per-job result rows as NDJSON while the
// sweep runs. All sweeps share one cached sweep.Runner — usually backed
// by the disk store in internal/store — so a configuration simulated for
// any client is never simulated again for another.
//
// API (see the README for schemas):
//
//	POST   /v1/sweeps               submit a sweep spec → 202 + {id, ...}
//	GET    /v1/sweeps               list sweeps
//	GET    /v1/sweeps/{id}          sweep status
//	GET    /v1/sweeps/{id}/results  NDJSON row stream (live)
//	DELETE /v1/sweeps/{id}          cancel a running sweep
//	GET    /metrics                 Prometheus-style text metrics
//	GET    /healthz                 liveness probe
//
// Scheduling is doubly bounded: each sweep runs through the runner's
// per-sweep worker budget, and every simulation additionally acquires a
// global slot, so many concurrent sweeps cannot oversubscribe the host.
// Rows stream in job order — the order cmd/rfbatch emits — so a sweep's
// streamed NDJSON is byte-identical to an rfbatch -ndjson run of the
// same spec.
//
// With a tenant registry configured (Config.Tenants), the server
// additionally authenticates API keys, enforces per-tenant rate limits
// and capacity quotas (429 with a machine-readable code and Retry-After),
// hands global slots out fairly by (priority tier, per-tenant deficit),
// and reports per-tenant activity on /metrics. Without one, every caller
// is the anonymous tenant with no limits and the wire output is
// byte-identical to pre-tenancy builds.
package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/dispatch"
	"repro/internal/sim"
	"repro/internal/store"
	"repro/internal/sweep"
	"repro/internal/tenant"
	"repro/internal/wal"
	"repro/internal/warehouse"
	"repro/rf"
	"repro/rf/api"
)

// Config configures a Server. The zero value is usable: GOMAXPROCS
// global workers, an in-memory cache, real simulations.
type Config struct {
	// Cache backs the shared runner: an in-memory MemCache, the disk
	// store in internal/store, or a Tiered combination. Nil uses a fresh
	// MemCache (results die with the process).
	Cache sweep.Cache
	// Simulate overrides the simulation function (tests); nil runs the
	// real simulator.
	Simulate func(sweep.Job) sim.Result
	// Dispatcher, when non-nil, turns the server into a fleet
	// coordinator: jobs execute on registered remote workers (see
	// internal/dispatch) instead of locally, the /v1/workers endpoints
	// are mounted, and the dispatcher is closed by Shutdown. Simulate is
	// then only used as documentation — the dispatcher's own Fallback
	// covers local execution.
	Dispatcher *dispatch.Coordinator
	// MaxWorkers bounds concurrent simulations across all sweeps; 0 uses
	// GOMAXPROCS — except in coordinator mode, where a "simulation" is a
	// blocked wait on the fleet and the default is max(256, GOMAXPROCS)
	// so the fan-out is not throttled to local core count.
	MaxWorkers int
	// MaxSweepWorkers caps any single sweep's worker budget (a spec may
	// request less via its parallelism field, never more); 0 uses
	// MaxWorkers.
	MaxSweepWorkers int
	// MaxJobs rejects specs that expand to more jobs than this;
	// 0 means 100000.
	MaxJobs int
	// MaxBodyBytes bounds the request body of a submission; 0 means 1 MiB.
	MaxBodyBytes int64
	// Lockstep controls same-workload lockstep batching in the shared
	// runner (see sweep.RunnerConfig.Lockstep): 0 groups up to
	// sweep.DefaultLockstepWidth configurations per trace pass, 1 disables
	// grouping, n ≥ 2 caps batches at n. Results are byte-identical on the
	// wire either way. Batching applies only when the server simulates
	// locally — coordinator mode leases individual jobs to workers, which
	// regroup them fleet-side.
	Lockstep int
	// Objects, when non-nil, serves this node's result store over
	// GET/PUT /v1/objects/{key} — the remote tier other nodes read
	// through and the fleet-peer tier workers advertise. Usually the
	// local disk store's Backend(). Requests are tenant-authenticated
	// and rate-limited exactly like submissions.
	Objects store.Backend
	// TierStats, when non-nil, reports the tiered store's read-through
	// counters on /metrics (rfserved_store_*). Usually Tiers.Stats.
	TierStats func() store.TierStats
	// Tenants, when non-nil, turns on multi-tenant admission control:
	// API-key authentication, per-tenant rate limits and quotas, and
	// fair-share scheduling. Nil serves every caller as the unlimited
	// anonymous tenant — the pre-tenancy behavior, byte-identical on the
	// wire. The registry can be swapped at runtime with SetTenants (key
	// rotation without restart); this field only seeds the initial one.
	Tenants *tenant.Registry
	// Warehouse, when non-nil, maintains the columnar result index:
	// completed rows are ingested as they publish (next to the journal
	// hook), segments seal when sweeps finish, and GET/POST /v1/query is
	// mounted over it. Nil (the default) keeps the wire surface and
	// behavior byte-identical to pre-warehouse builds. Sweeps recovered
	// from the journal as already-done are rebuilt into segments from
	// the content-addressed store at startup.
	Warehouse *warehouse.Warehouse
	// Journal, when non-nil, makes sweeps durable: accepted specs,
	// completed rows and terminal states are appended to this WAL, and a
	// restarted server replays it, re-serves finished sweeps, and
	// resumes interrupted ones without re-simulating their journaled
	// rows (see journal.go). Nil (the default) keeps behavior
	// byte-identical to an unjournaled server. The journal must have
	// been freshly opened (its Replay not yet consumed) and is owned by
	// the caller — the server never closes it.
	Journal *wal.WAL
	// ExtraJournals exposes additional journals (the coordinator's, in
	// cmd/rfserved) on /metrics under rfserved_wal_*{journal="<name>"};
	// the server does not write to them.
	ExtraJournals map[string]*wal.WAL
	// CompactBytes is the journal size that triggers snapshot +
	// compaction; 0 means 1 MiB.
	CompactBytes int64
	// Logf reports journal recovery and resume events; nil discards.
	Logf func(format string, args ...any)
}

// sweepState is the lifecycle of one submitted sweep.
type sweepState string

const (
	stateRunning  sweepState = "running"
	stateDone     sweepState = "done"
	stateCanceled sweepState = "canceled"
)

// sweepRun holds one submitted sweep and its incrementally filled rows.
type sweepRun struct {
	id          string
	name        string
	tenant      string // owning tenant's name
	priority    int    // effective scheduling tier
	parallelism int    // effective per-sweep worker budget (journaling)
	jobs        []sweep.Job
	cancel      context.CancelFunc

	mu        sync.Mutex
	rows      []sweep.Row
	done      []bool
	completed int
	cached    int
	state     sweepState
	submitted time.Time
	finished  time.Time
	// recovered marks a sweep resumed from the journal after a restart.
	recovered bool
	// notify is closed and replaced whenever rows or state change;
	// streamers wait on it instead of polling.
	notify chan struct{}
}

// tenantCounters is one tenant's admission outcome tally (under
// Server.tmu).
type tenantCounters struct {
	admitted      uint64 // sweeps accepted
	rejected      uint64 // sweeps refused by a capacity quota (429 over_quota)
	throttled     uint64 // requests refused by the rate limiter (429 rate_limited)
	storeRejected uint64 // object PUTs refused by the store byte quota (429 over_quota)
}

// Server is the rfserved HTTP handler plus its sweep scheduler.
type Server struct {
	cfg    Config
	runner *sweep.Runner
	fair   *tenant.FairQueue // global simulation slots, tenant-fair
	mux    *http.ServeMux

	// Admission state. These run in every mode — without a registry all
	// traffic accounts to the anonymous tenant with no limits — so the
	// tenanted and untenanted code paths cannot drift apart.
	limiter    *tenant.Limiter  // per-tenant submit/stream-open pacing
	active     *tenant.Reserver // per-tenant running sweeps
	queued     *tenant.Reserver // per-tenant unresolved jobs
	storeBytes *tenant.Reserver // per-tenant object-store bytes accepted
	tmu        sync.Mutex
	tstats     map[string]*tenantCounters

	// tenants is the live registry, swappable at runtime (SetTenants) for
	// key rotation without restart. Nil means untenanted; a server that
	// starts untenanted stays untenanted (rotation replaces keys, it
	// never turns admission control on or off).
	tenants atomic.Pointer[tenant.Registry]

	ctx    context.Context // canceled by Shutdown; parents every sweep
	cancel context.CancelFunc
	wg     sync.WaitGroup

	mu     sync.Mutex
	sweeps map[string]*sweepRun
	order  []string
	nextID uint64
	closed bool

	// jmu serializes journal appends against compaction (see
	// journalAppend); never acquired while holding mu or a run's mu.
	jmu sync.Mutex

	start          time.Time
	jobsCompleted  atomic.Uint64
	jobsFromCache  atomic.Uint64
	simsStarted    atomic.Uint64
	instrsSim      atomic.Uint64
	simNanos       atomic.Int64
	queueDepth     atomic.Int64
	sweepsCanceled atomic.Uint64
}

// New returns a ready-to-serve Server.
func New(cfg Config) *Server {
	if cfg.MaxWorkers <= 0 {
		cfg.MaxWorkers = runtime.GOMAXPROCS(0)
		if cfg.Dispatcher != nil && cfg.MaxWorkers < 256 {
			cfg.MaxWorkers = 256
		}
	}
	if cfg.MaxSweepWorkers <= 0 || cfg.MaxSweepWorkers > cfg.MaxWorkers {
		cfg.MaxSweepWorkers = cfg.MaxWorkers
	}
	if cfg.MaxJobs <= 0 {
		cfg.MaxJobs = 100000
	}
	if cfg.MaxBodyBytes <= 0 {
		cfg.MaxBodyBytes = 1 << 20
	}
	if cfg.CompactBytes <= 0 {
		cfg.CompactBytes = 1 << 20
	}
	s := &Server{
		cfg:        cfg,
		fair:       tenant.NewFairQueue(cfg.MaxWorkers),
		limiter:    tenant.NewLimiter(),
		active:     tenant.NewReserver(),
		queued:     tenant.NewReserver(),
		storeBytes: tenant.NewReserver(),
		tstats:     make(map[string]*tenantCounters),
		sweeps:     make(map[string]*sweepRun),
		start:      time.Now(),
	}
	if cfg.Tenants != nil {
		s.tenants.Store(cfg.Tenants)
	}
	s.ctx, s.cancel = context.WithCancel(context.Background())

	simulate := cfg.Simulate
	if simulate == nil {
		simulate = sweep.Simulate
	}
	rcfg := sweep.RunnerConfig{
		Cache:    cfg.Cache,
		Lockstep: cfg.Lockstep,
		SimulateContext: func(ctx context.Context, j sweep.Job) sim.Result {
			// The per-sweep pool admitted this job; the global fair queue
			// keeps the sum over all sweeps bounded too, handing freed
			// slots to the waiting tenant with the highest priority tier
			// and the fewest slots already held. ctx carries admission
			// metadata only: the slot wait is deliberately uncancelable
			// (like the plain semaphore it replaced), because the runner
			// caches whatever this function returns — a canceled wait
			// would poison the content-addressed store with a zero result.
			adm, _ := tenant.FromContext(ctx)
			if adm.Tenant == "" {
				adm.Tenant = tenant.Anonymous
			}
			s.fair.Acquire(context.Background(), adm.Tenant, adm.Priority)
			defer s.fair.Release(adm.Tenant)
			s.simsStarted.Add(1)
			if cfg.Dispatcher != nil {
				// The call blocks on the fleet; its wall time is queueing
				// and network, not simulation, so it must not feed the
				// simulation-seconds/throughput metrics.
				res := cfg.Dispatcher.SimulateContext(ctx, j)
				s.instrsSim.Add(res.Instructions)
				return res
			}
			t0 := time.Now()
			res := simulate(j)
			s.simNanos.Add(time.Since(t0).Nanoseconds())
			s.instrsSim.Add(res.Instructions)
			return res
		},
	}
	if cfg.Dispatcher == nil && cfg.Simulate == nil {
		// Locally simulating server: batch same-workload jobs into one
		// lockstep trace pass. A batch is one sequential thread of
		// simulation, so it holds one fair-queue slot, exactly like a
		// single job — batching changes per-job cost, not concurrency.
		// Coordinator mode and test fakes keep the per-job path.
		rcfg.SimulateBatchContext = func(ctx context.Context, js []sweep.Job) []sim.Result {
			adm, _ := tenant.FromContext(ctx)
			if adm.Tenant == "" {
				adm.Tenant = tenant.Anonymous
			}
			s.fair.Acquire(context.Background(), adm.Tenant, adm.Priority)
			defer s.fair.Release(adm.Tenant)
			s.simsStarted.Add(uint64(len(js)))
			t0 := time.Now()
			res := sweep.SimulateLockstep(js)
			s.simNanos.Add(time.Since(t0).Nanoseconds())
			for i := range res {
				s.instrsSim.Add(res[i].Instructions)
			}
			return res
		}
	}
	s.runner = sweep.NewRunner(rcfg)

	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/version", handleVersion)
	mux.HandleFunc("POST /v1/sweeps", s.handleSubmit)
	mux.HandleFunc("GET /v1/sweeps", s.handleList)
	mux.HandleFunc("GET /v1/sweeps/{id}", s.handleStatus)
	mux.HandleFunc("GET /v1/sweeps/{id}/results", s.handleResults)
	mux.HandleFunc("DELETE /v1/sweeps/{id}", s.handleCancel)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		writeJSON(w, http.StatusOK, map[string]any{"ok": true})
	})
	if d := cfg.Dispatcher; d != nil {
		mux.HandleFunc("POST /v1/workers/register", d.HandleRegister)
		mux.HandleFunc("POST /v1/workers/{id}/poll", d.HandlePoll)
		mux.HandleFunc("GET /v1/workers", d.HandleWorkers)
	}
	if cfg.Objects != nil {
		// GET patterns also serve HEAD (existence probes without the body).
		mux.HandleFunc("GET /v1/objects/{key}", s.handleObjectGet)
		mux.HandleFunc("PUT /v1/objects/{key}", s.handleObjectPut)
	}
	if cfg.Warehouse != nil {
		mux.HandleFunc("GET /v1/query", s.handleQuery)
		mux.HandleFunc("POST /v1/query", s.handleQuery)
	}
	s.mux = mux
	if cfg.Journal != nil {
		if err := s.recoverJournal(); err != nil {
			// An unreadable snapshot loses the pre-crash sweep table but
			// nothing else: the content-addressed store still has every
			// result, so resubmitted sweeps are warm. Degrade to a cold
			// start rather than refuse to serve.
			s.logf("rfserved: journal recovery failed, starting cold: %v", err)
			s.sweeps = make(map[string]*sweepRun)
			s.order = nil
		}
		go s.compactLoop()
	}
	return s
}

// ServeHTTP dispatches to the API routes. Every response carries the
// X-RF-API-Version header, and a request stamped with a different
// schema version is rejected up front — version negotiation happens
// before any handler runs.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	w.Header().Set(api.VersionHeader, strconv.Itoa(api.Version))
	if h := r.Header.Get(api.VersionHeader); h != "" {
		if v, err := strconv.Atoi(h); err != nil || v != api.Version {
			writeError(w, http.StatusBadRequest,
				"rfserved: API schema version %q not supported (this server speaks %d)",
				h, api.Version)
			return
		}
	}
	s.mux.ServeHTTP(w, r)
}

// handleVersion serves GET /v1/version: the build and schema versions,
// so clients and scripts can assert compatibility before submitting.
func handleVersion(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, api.VersionInfo{Schema: api.Version, Module: rf.ModuleVersion()})
}

// Shutdown stops accepting sweeps, cancels the ones still running, and
// waits for their goroutines (bounded by ctx). In coordinator mode it
// also closes the dispatcher, so jobs blocked on the fleet resolve
// through the local fallback instead of waiting on workers forever.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	s.closed = true
	s.mu.Unlock()
	s.cancel()
	if s.cfg.Dispatcher != nil {
		s.cfg.Dispatcher.Close()
	}
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// CacheStats exposes the shared runner's lifetime hit/miss counts.
func (s *Server) CacheStats() sweep.CacheStats {
	return s.runner.CacheStats()
}

// RunJob executes one job through the server's shared cached runner —
// the execution hook for rfserved worker mode, so jobs leased from a
// coordinator share this process's cache, store, scheduler budget and
// metrics with locally submitted sweeps.
func (s *Server) RunJob(j sweep.Job) sim.Result {
	return s.runner.RunOutcomes([]sweep.Job{j}, 1)[0].Result
}

// RunJobs executes a batch of jobs through the shared cached runner — the
// worker fleet's batch hook. Same-workload jobs the cache cannot serve run
// as one lockstep trace pass (when the server simulates locally); results
// come back in job order.
func (s *Server) RunJobs(js []sweep.Job) []sim.Result {
	outs := s.runner.RunOutcomes(js, 1)
	res := make([]sim.Result, len(outs))
	for i := range outs {
		res[i] = outs[i].Result
	}
	return res
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, api.Error{Error: fmt.Sprintf(format, args...)})
}

// writeErrorCode is writeError with a machine-readable code and an
// optional retry hint: retryAfter > 0 sets the Retry-After header
// (whole seconds, rounded up, minimum 1) and the body's retry_after_ms.
func writeErrorCode(w http.ResponseWriter, status int, code string, retryAfter time.Duration, format string, args ...any) {
	e := api.Error{Error: fmt.Sprintf(format, args...), Code: code}
	if retryAfter > 0 {
		e.RetryAfterMS = retryAfter.Milliseconds()
		if e.RetryAfterMS <= 0 {
			e.RetryAfterMS = 1
		}
		secs := int(math.Ceil(retryAfter.Seconds()))
		if secs < 1 {
			secs = 1
		}
		w.Header().Set("Retry-After", strconv.Itoa(secs))
	}
	writeJSON(w, status, e)
}

// tenanted reports whether admission control is live. It reads the
// swappable registry pointer, so every handler observes a SetTenants
// rotation immediately and atomically.
func (s *Server) tenanted() bool { return s.tenants.Load() != nil }

// SetTenants atomically replaces the live tenant registry — the SIGHUP
// key-rotation hook. In-flight requests finish under the registry they
// authenticated against (an open result stream is never torn down), and
// every subsequent request authenticates against the new one. A nil
// registry is ignored: rotation replaces keys, it never turns admission
// control off.
func (s *Server) SetTenants(reg *tenant.Registry) {
	if reg == nil || !s.tenanted() {
		return
	}
	s.tenants.Store(reg)
}

// authTenant resolves the request's tenant. Without a registry every
// caller is the unlimited anonymous tenant and credentials are ignored
// (the pre-tenancy contract). With one, the key comes from the
// X-RF-API-Key header or an Authorization: Bearer credential; an
// unknown key gets a 401 here and nil back.
func (s *Server) authTenant(w http.ResponseWriter, r *http.Request) *tenant.Tenant {
	reg := s.tenants.Load()
	if reg == nil {
		return tenant.Open()
	}
	key := r.Header.Get(api.KeyHeader)
	if key == "" {
		if auth := r.Header.Get("Authorization"); strings.HasPrefix(auth, "Bearer ") {
			key = strings.TrimPrefix(auth, "Bearer ")
		}
	}
	tn, ok := reg.Authenticate(key)
	if !ok {
		writeErrorCode(w, http.StatusUnauthorized, api.ErrCodeUnauthenticated, 0,
			"rfserved: unknown API key")
		return nil
	}
	return tn
}

// counters returns the tenant's tally, creating it on first use.
// Callers hold s.tmu only inside this package's helpers; use bump.
func (s *Server) bump(name string, f func(*tenantCounters)) {
	s.tmu.Lock()
	c := s.tstats[name]
	if c == nil {
		c = &tenantCounters{}
		s.tstats[name] = c
	}
	f(c)
	s.tmu.Unlock()
}

// rateLimit applies the tenant's request pacing; false means a 429 has
// been written. Submissions and result-stream opens draw from the same
// bucket: both are client-initiated requests the operator wants paced
// with one knob.
func (s *Server) rateLimit(w http.ResponseWriter, tn *tenant.Tenant) bool {
	ok, wait := s.limiter.Allow(tn.Name, tn.Limits.Rate, tn.Limits.Burst)
	if ok {
		return true
	}
	s.bump(tn.Name, func(c *tenantCounters) { c.throttled++ })
	writeErrorCode(w, http.StatusTooManyRequests, api.ErrCodeRateLimited, wait,
		"rfserved: tenant %q over its request rate (%.3g/s)", tn.Name, tn.Limits.Rate)
	return false
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	tn := s.authTenant(w, r)
	if tn == nil {
		return
	}
	if !s.rateLimit(w, tn) {
		return
	}
	body := io.Reader(http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes))
	var rawSpec []byte
	if s.cfg.Journal != nil {
		// Capture the body verbatim: the journal replays the accepted
		// bytes, not a re-marshaled spec, so recovery expands exactly the
		// job list this submission did.
		data, err := io.ReadAll(body)
		if err != nil {
			writeError(w, http.StatusBadRequest, "%v", err)
			return
		}
		rawSpec = data
		body = bytes.NewReader(data)
	}
	spec, err := sweep.ParseSpec(body)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	// Count before expanding, so an absurd cross product is rejected
	// without materializing it.
	count, err := spec.JobCount()
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if count == 0 {
		writeError(w, http.StatusBadRequest, "sweep: spec expands to zero jobs")
		return
	}
	// A saturated count is rejected no matter how generous MaxJobs is:
	// past the saturation point the true expansion is unknown and
	// materializing it is exactly the DoS the pre-count exists to stop.
	if count >= sweep.MaxJobCount {
		writeError(w, http.StatusRequestEntityTooLarge,
			"sweep: spec expands to at least %d jobs", sweep.MaxJobCount)
		return
	}
	if count > s.cfg.MaxJobs {
		writeError(w, http.StatusRequestEntityTooLarge,
			"sweep: spec expands to %d jobs, limit is %d", count, s.cfg.MaxJobs)
		return
	}
	jobs, err := spec.Jobs()
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	parallelism := spec.Parallelism
	if parallelism <= 0 || parallelism > s.cfg.MaxSweepWorkers {
		parallelism = s.cfg.MaxSweepWorkers
	}
	// The effective tier is the tenant's, lowered (never raised) by an
	// explicit spec request: asking cannot outrank the plan.
	priority := tn.Priority
	if spec.Priority > 0 && spec.Priority < priority {
		priority = spec.Priority
	}

	// Capacity quotas, taken in a fixed order so a failure releases
	// exactly what was granted: one active-sweep unit, then the sweep's
	// job count against the queued-jobs bound.
	if err := s.active.Acquire(tn.Name, 1, tn.Limits.MaxActive); err != nil {
		s.bump(tn.Name, func(c *tenantCounters) { c.rejected++ })
		writeErrorCode(w, http.StatusTooManyRequests, api.ErrCodeOverQuota, time.Second,
			"rfserved: tenant %q at its concurrent-sweep limit (%d)", tn.Name, tn.Limits.MaxActive)
		return
	}
	if err := s.queued.Acquire(tn.Name, len(jobs), tn.Limits.MaxQueued); err != nil {
		s.active.Release(tn.Name, 1)
		s.bump(tn.Name, func(c *tenantCounters) { c.rejected++ })
		writeErrorCode(w, http.StatusTooManyRequests, api.ErrCodeOverQuota, time.Second,
			"rfserved: tenant %q over its queued-job quota (%d queued, %d more wanted, limit %d)",
			tn.Name, s.queued.Held(tn.Name), len(jobs), tn.Limits.MaxQueued)
		return
	}

	ctx, cancel := context.WithCancel(s.ctx)
	run := &sweepRun{
		name:        spec.Name,
		tenant:      tn.Name,
		priority:    priority,
		parallelism: parallelism,
		jobs:        jobs,
		cancel:      cancel,
		rows:        make([]sweep.Row, len(jobs)),
		done:        make([]bool, len(jobs)),
		state:       stateRunning,
		submitted:   time.Now(),
		notify:      make(chan struct{}),
	}

	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		cancel()
		s.queued.Release(tn.Name, len(jobs))
		s.active.Release(tn.Name, 1)
		writeError(w, http.StatusServiceUnavailable, "rfserved: shutting down")
		return
	}
	s.nextID++
	run.id = fmt.Sprintf("s%06d", s.nextID)
	s.sweeps[run.id] = run
	s.order = append(s.order, run.id)
	s.wg.Add(1)
	s.mu.Unlock()

	s.bump(tn.Name, func(c *tenantCounters) { c.admitted++ })
	s.queueDepth.Add(int64(len(jobs)))
	// Journaled before execution starts and before the ack is written:
	// a sweep the client saw accepted must survive a crash.
	s.journalAppend(srvRec{
		Op: "submit", ID: run.id, Name: run.name, Tenant: run.tenant,
		Pri: run.priority, Par: parallelism, Spec: string(rawSpec),
		Submitted: run.submitted,
	})
	if s.cfg.Warehouse != nil {
		// Open the sweep's index builder before execution can publish a
		// row; rows then ingest through the seam in execute, right next to
		// the journal hook.
		s.cfg.Warehouse.Begin(run.id, run.name, run.tenant, len(jobs))
	}
	go s.execute(ctx, run, parallelism)

	ack := api.SubmitResponse{
		Schema: api.Version,
		ID:     run.id, Name: run.name, Jobs: len(jobs),
		StatusURL:  "/v1/sweeps/" + run.id,
		ResultsURL: "/v1/sweeps/" + run.id + "/results",
	}
	if s.tenanted() {
		// Stamped only in tenanted mode so an untenanted server's wire
		// bytes stay exactly as before.
		ack.Tenant = run.tenant
		ack.Priority = run.priority
	}
	writeJSON(w, http.StatusAccepted, ack)
}

// execute runs one sweep to completion (or cancellation) on the shared
// runner, publishing rows as jobs resolve.
func (s *Server) execute(ctx context.Context, run *sweepRun, parallelism int) {
	defer s.wg.Done()
	// Resume-aware job selection: run only the jobs with no completed
	// row, reporting progress under each job's original index. For a
	// fresh sweep this is the identity mapping; for a recovered one it
	// is exactly the work the crash interrupted.
	run.mu.Lock()
	remap := make([]int, 0, len(run.jobs))
	jobs := make([]sweep.Job, 0, len(run.jobs))
	for i, done := range run.done {
		if !done {
			remap = append(remap, i)
			jobs = append(jobs, run.jobs[i])
		}
	}
	run.mu.Unlock()
	doneHere := 0
	// The admission metadata rides the batch context into the runner's
	// SimulateContext hook (fair queue) and, in coordinator mode, the
	// dispatcher's priority queue.
	ctx = tenant.NewContext(ctx, tenant.Admission{Tenant: run.tenant, Priority: run.priority})
	_, err := s.runner.RunOutcomesContext(ctx, jobs, parallelism, func(p sweep.Progress) {
		idx := remap[p.Index]
		row := sweep.RowOf(p.Job, sweep.Outcome{Result: p.Result, Key: p.Key, Cached: p.Cached})
		// Journaled before publishing: a row a client may have streamed
		// must survive the crash that follows it.
		s.journalAppend(srvRec{Op: "row", ID: run.id, Index: idx, Row: &row})
		if s.cfg.Warehouse != nil {
			// The warehouse ingest seam sits beside the journal hook: the
			// row is indexed under its job-expansion index, so the sealed
			// segment's order never depends on completion order.
			s.cfg.Warehouse.Add(run.id, idx, p.Job, row)
		}
		run.mu.Lock()
		run.rows[idx] = row
		run.done[idx] = true
		run.completed++
		if p.Cached {
			run.cached++
		}
		doneHere++
		run.wakeLocked()
		run.mu.Unlock()
		s.jobsCompleted.Add(1)
		if p.Cached {
			s.jobsFromCache.Add(1)
		}
		s.queueDepth.Add(-1)
		s.queued.Release(run.tenant, 1)
	})

	run.mu.Lock()
	if err == nil {
		run.state = stateDone
	} else {
		run.state = stateCanceled
		s.sweepsCanceled.Add(1)
	}
	run.finished = time.Now()
	state, finished := run.state, run.finished
	skipped := len(jobs) - doneHere
	run.wakeLocked()
	run.mu.Unlock()
	s.journalAppend(srvRec{Op: "end", ID: run.id, State: string(state), Finished: finished})
	if wh := s.cfg.Warehouse; wh != nil {
		if state == stateDone {
			// Seal logs and counts its own failures; a sweep that cannot
			// seal stays unindexed and is rebuilt from the store next start.
			wh.Seal(run.id)
		} else {
			wh.Discard(run.id)
		}
	}
	s.queueDepth.Add(-int64(skipped))
	s.queued.Release(run.tenant, skipped) // jobs skipped by cancellation
	s.active.Release(run.tenant, 1)
	run.cancel() // release the context regardless of how the sweep ended
}

// wakeLocked signals streamers; run.mu must be held.
func (r *sweepRun) wakeLocked() {
	close(r.notify)
	r.notify = make(chan struct{})
}

// status renders the wire status document; stamped adds the tenancy
// fields (only servers with a registry stamp them, keeping untenanted
// wire bytes unchanged).
func (r *sweepRun) status(stamped bool) api.SweepStatus {
	r.mu.Lock()
	defer r.mu.Unlock()
	st := api.SweepStatus{
		Schema: api.Version,
		ID:     r.id, Name: r.name, State: string(r.state),
		Total: len(r.jobs), Completed: r.completed, Cached: r.cached,
		Simulated:  r.completed - r.cached,
		Submitted:  r.submitted.UTC().Format(time.RFC3339Nano),
		ResultsURL: "/v1/sweeps/" + r.id + "/results",
	}
	if !r.finished.IsZero() {
		st.Finished = r.finished.UTC().Format(time.RFC3339Nano)
	}
	// Only ever true for journaled servers, and omitted from the wire
	// when false, so unjournaled status bytes are unchanged.
	st.Recovered = r.recovered
	if stamped {
		st.Tenant = r.tenant
		st.Priority = r.priority
	}
	return st
}

func (s *Server) lookup(w http.ResponseWriter, r *http.Request) *sweepRun {
	id := r.PathValue("id")
	s.mu.Lock()
	run := s.sweeps[id]
	s.mu.Unlock()
	if run == nil {
		writeError(w, http.StatusNotFound, "rfserved: no sweep %q", id)
	}
	return run
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	run := s.lookup(w, r)
	if run == nil {
		return
	}
	writeJSON(w, http.StatusOK, run.status(s.tenanted()))
}

func (s *Server) handleList(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	runs := make([]*sweepRun, 0, len(s.order))
	for _, id := range s.order {
		runs = append(runs, s.sweeps[id])
	}
	s.mu.Unlock()
	out := api.SweepList{Sweeps: []api.SweepStatus{}}
	for _, run := range runs {
		out.Sweeps = append(out.Sweeps, run.status(s.tenanted()))
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	run := s.lookup(w, r)
	if run == nil {
		return
	}
	// Cancellation mutates another tenant's sweep, so in tenanted mode it
	// demands ownership (status and listing stay open — they expose
	// metadata, not result payloads, and operators' dashboards rely on
	// them). The anonymous tenant is deliberately one shared identity:
	// every keyless caller collectively owns every anonymous sweep, for
	// cancellation as for result streaming, so a deployment that wants
	// isolation between unauthenticated users must issue keys instead.
	if s.tenanted() {
		tn := s.authTenant(w, r)
		if tn == nil {
			return
		}
		if run.tenant != tn.Name {
			writeErrorCode(w, http.StatusForbidden, api.ErrCodeForbidden, 0,
				"rfserved: sweep %s belongs to tenant %q", run.id, run.tenant)
			return
		}
	}
	// Journaled before the cancel takes effect: if the server dies before
	// execute settles the terminal state, recovery must not resume the
	// sweep the client was told is being canceled.
	s.journalAppend(srvRec{Op: "cancel", ID: run.id})
	run.cancel()
	writeJSON(w, http.StatusAccepted, run.status(s.tenanted()))
}

// handleObjectGet serves GET /v1/objects/{key}: one stored result from
// this node's local store tier, for remote read-through and fleet-peer
// fetches. A miss is a clean 404 — the reading tier falls through, it
// does not error. Requests are authenticated and rate-limited like
// submissions, so a tenanted deployment's quotas also govern its
// object traffic.
func (s *Server) handleObjectGet(w http.ResponseWriter, r *http.Request) {
	tn := s.authTenant(w, r)
	if tn == nil {
		return
	}
	if !s.rateLimit(w, tn) {
		return
	}
	k := sweep.Key(r.PathValue("key"))
	if !store.ValidKey(k) {
		writeError(w, http.StatusBadRequest, "rfserved: malformed object key %q", k)
		return
	}
	res, ok, err := s.cfg.Objects.Get(r.Context(), k)
	if err != nil {
		writeError(w, http.StatusInternalServerError, "rfserved: object read failed: %v", err)
		return
	}
	if !ok {
		writeError(w, http.StatusNotFound, "rfserved: no object %.8s", string(k))
		return
	}
	writeJSON(w, http.StatusOK, api.Object{Key: string(k), Result: res})
}

// handleObjectPut serves PUT /v1/objects/{key}: write-behind
// replication from another node's store. The body's embedded key must
// match the path — the same entry-embeds-key check the disk format
// enforces — so a misrouted or corrupt upload is rejected, never
// stored under a wrong name.
func (s *Server) handleObjectPut(w http.ResponseWriter, r *http.Request) {
	tn := s.authTenant(w, r)
	if tn == nil {
		return
	}
	if !s.rateLimit(w, tn) {
		return
	}
	k := sweep.Key(r.PathValue("key"))
	if !store.ValidKey(k) {
		writeError(w, http.StatusBadRequest, "rfserved: malformed object key %q", k)
		return
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes))
	if err != nil {
		writeError(w, http.StatusBadRequest, "rfserved: bad object body: %v", err)
		return
	}
	var obj api.Object
	if err := json.Unmarshal(body, &obj); err != nil {
		writeError(w, http.StatusBadRequest, "rfserved: bad object body: %v", err)
		return
	}
	if obj.Key != string(k) {
		writeError(w, http.StatusBadRequest,
			"rfserved: object body key %.8s does not match path key %.8s", obj.Key, string(k))
		return
	}
	// Byte quota on the accepted body, reserved before the write so a
	// failure stores nothing. Accounting is lifetime-accepted bytes per
	// tenant (re-uploads and later evictions included), which is the
	// bound an operator can reason about without trusting dedup.
	if err := s.storeBytes.Acquire(tn.Name, len(body), int(tn.Limits.MaxStoreBytes)); err != nil {
		s.bump(tn.Name, func(c *tenantCounters) { c.storeRejected++ })
		writeErrorCode(w, http.StatusTooManyRequests, api.ErrCodeOverQuota, 0,
			"rfserved: tenant %q over its result-store byte quota (%d bytes held, %d wanted, limit %d)",
			tn.Name, s.storeBytes.Held(tn.Name), len(body), tn.Limits.MaxStoreBytes)
		return
	}
	if err := s.cfg.Objects.Put(r.Context(), k, obj.Result); err != nil {
		s.storeBytes.Release(tn.Name, len(body))
		writeError(w, http.StatusInternalServerError, "rfserved: object write failed: %v", err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"ok": true})
}

// handleResults streams the sweep's rows as NDJSON in job order,
// emitting each row as soon as it (and every row before it) resolves.
// The stream ends when the sweep finishes or is canceled, or when the
// client disconnects (the request context governs the stream, not the
// sweep: disconnecting a streamer never cancels the simulations).
func (s *Server) handleResults(w http.ResponseWriter, r *http.Request) {
	run := s.lookup(w, r)
	if run == nil {
		return
	}
	// Stream opens are paced by the same bucket as submissions: each open
	// pins a connection and replays every row, so an unpaced reconnect
	// loop is as costly as a submit loop.
	tn := s.authTenant(w, r)
	if tn == nil {
		return
	}
	if !s.rateLimit(w, tn) {
		return
	}
	// The stream is the sweep's payload, so in tenanted mode it demands
	// ownership exactly as cancellation does: sweep IDs are sequential
	// and listable, so isolation must never rest on their secrecy. (The
	// anonymous tenant is one shared identity — see handleCancel.)
	if s.tenanted() && run.tenant != tn.Name {
		writeErrorCode(w, http.StatusForbidden, api.ErrCodeForbidden, 0,
			"rfserved: sweep %s belongs to tenant %q", run.id, run.tenant)
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	flusher, _ := w.(http.Flusher)

	next := 0
	var batch []sweep.Row
	for {
		run.mu.Lock()
		batch = batch[:0]
		for next < len(run.jobs) && run.done[next] {
			batch = append(batch, run.rows[next])
			next++
		}
		state := run.state
		notify := run.notify
		run.mu.Unlock()

		// A terminal sweep delivers everything it has: a cancellation can
		// leave gaps (skipped jobs between completed ones), and rows past
		// a gap must still reach the client. While running, emission stays
		// strictly in-order so a completed sweep's stream is byte-identical
		// to rfbatch output.
		if state != stateRunning {
			run.mu.Lock()
			for i := next; i < len(run.jobs); i++ {
				if run.done[i] {
					batch = append(batch, run.rows[i])
				}
			}
			next = len(run.jobs)
			run.mu.Unlock()
		}
		for _, row := range batch {
			if err := sweep.WriteRow(w, row); err != nil {
				return
			}
		}
		if len(batch) > 0 && flusher != nil {
			flusher.Flush()
		}
		// Close only on a terminal state, never merely because every row
		// has been delivered: the state flips moments after the last
		// progress event, and a client that checks status the instant the
		// stream ends must never observe "running" on a finished sweep.
		if state != stateRunning {
			return
		}
		select {
		case <-notify:
		case <-r.Context().Done():
			return
		}
	}
}

// handleMetrics renders Prometheus-style text exposition: throughput
// (jobs, simulated instructions, wall-clock simulation seconds), cache
// effectiveness, and scheduler queue depth.
func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	total := len(s.sweeps)
	active := 0
	for _, run := range s.sweeps {
		run.mu.Lock()
		if run.state == stateRunning {
			active++
		}
		run.mu.Unlock()
	}
	s.mu.Unlock()

	cache := s.runner.CacheStats()
	hitRate := 0.0
	if n := cache.Hits + cache.Misses; n > 0 {
		hitRate = float64(cache.Hits) / float64(n)
	}
	simSecs := float64(s.simNanos.Load()) / 1e9
	throughput := 0.0
	if simSecs > 0 {
		throughput = float64(s.instrsSim.Load()) / simSecs
	}

	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	m := func(name string, value any, help string) {
		fmt.Fprintf(w, "# HELP %s %s\n%s %v\n", name, help, name, value)
	}
	m("rfserved_uptime_seconds", fmt.Sprintf("%.3f", time.Since(s.start).Seconds()),
		"seconds since the server started")
	m("rfserved_sweeps_total", total, "sweeps submitted since start")
	m("rfserved_sweeps_active", active, "sweeps currently running")
	m("rfserved_sweeps_canceled_total", s.sweepsCanceled.Load(), "sweeps canceled before completion")
	m("rfserved_jobs_completed_total", s.jobsCompleted.Load(), "jobs resolved (simulated or cached)")
	m("rfserved_jobs_cached_total", s.jobsFromCache.Load(), "jobs served without simulating")
	m("rfserved_simulations_started_total", s.simsStarted.Load(), "simulations actually executed")
	m("rfserved_queue_depth", s.queueDepth.Load(), "jobs submitted but not yet resolved")
	m("rfserved_cache_hits_total", cache.Hits, "runner cache hits since start")
	m("rfserved_cache_misses_total", cache.Misses, "runner cache misses since start")
	m("rfserved_cache_hit_rate", fmt.Sprintf("%.6f", hitRate), "hits / (hits + misses)")
	m("rfserved_instructions_simulated_total", s.instrsSim.Load(), "dynamic instructions simulated")
	m("rfserved_simulation_seconds_total", fmt.Sprintf("%.3f", simSecs), "cumulative wall-clock seconds inside the simulator")
	m("rfserved_instructions_per_second", fmt.Sprintf("%.0f", throughput), "simulation throughput (instructions / simulation second)")

	if d := s.cfg.Dispatcher; d != nil {
		ds := d.Stats()
		m("rfserved_dispatch_workers", ds.Workers, "workers currently registered")
		m("rfserved_dispatch_tasks_pending", ds.Pending, "tasks queued for the fleet")
		m("rfserved_dispatch_tasks_inflight", ds.Inflight, "tasks leased to workers")
		m("rfserved_dispatch_leases_total", ds.Dispatched, "job leases handed out (including retries)")
		m("rfserved_dispatch_results_total", ds.Completed, "results accepted from workers")
		m("rfserved_dispatch_requeues_total", ds.Requeued, "leases expired and requeued")
		m("rfserved_dispatch_fallbacks_total", ds.Fallbacks, "tasks simulated locally after exhausting remote attempts")
		m("rfserved_dispatch_workers_expired_total", ds.Expired, "workers deregistered for missing their lease")
		m("rfserved_dispatch_tasks_adopted_total", ds.Adopted, "in-flight leases re-adopted after a coordinator restart")
	}

	// Local store occupancy plus tiered read-through activity; absent on
	// servers without a store / tiered cache, keeping their exposition
	// bytes unchanged.
	if s.cfg.Objects != nil {
		m("rfserved_store_objects", s.cfg.Objects.Len(), "objects resident in the local store tier")
		m("rfserved_store_bytes", s.cfg.Objects.SizeBytes(), "bytes resident in the local store tier")
	}
	if s.cfg.TierStats != nil {
		ts := s.cfg.TierStats()
		tiers := make([]string, 0, len(ts.Hits))
		for name := range ts.Hits {
			tiers = append(tiers, name)
		}
		sort.Strings(tiers)
		fmt.Fprintf(w, "# HELP rfserved_store_tier_hits cache hits per store tier\n")
		for _, name := range tiers {
			fmt.Fprintf(w, "rfserved_store_tier_hits{tier=%q} %d\n", name, ts.Hits[name])
		}
		m("rfserved_store_tier_misses", ts.Misses, "read-throughs that missed every tier and fell back to simulation")
		m("rfserved_store_hedged_fetches", ts.HedgedFetches, "secondary fetches fired past the hedge latency budget")
		m("rfserved_store_hedge_wins", ts.HedgeWins, "reads won by a hedged fetch")
		m("rfserved_store_remote_errors", ts.RemoteErrors, "failed remote store operations (fetch or replicate)")
	}

	// Journal activity, one labeled row per WAL this process owns (the
	// server's own plus any wired in via ExtraJournals — the dispatch
	// coordinator's, in cmd/rfserved). Absent entirely when unjournaled.
	if names := s.walJournals(); len(names) > 0 {
		journals := make(map[string]*wal.WAL, len(names))
		stats := make(map[string]wal.Stats, len(names))
		for _, name := range names {
			j := s.cfg.ExtraJournals[name]
			if name == "server" && s.cfg.Journal != nil {
				j = s.cfg.Journal
			}
			journals[name] = j
			stats[name] = j.Stats()
		}
		walRow := func(family, help string, value func(string) any) {
			fmt.Fprintf(w, "# HELP %s %s\n", family, help)
			for _, name := range names {
				fmt.Fprintf(w, "%s{journal=%q} %v\n", family, name, value(name))
			}
		}
		walRow("rfserved_wal_appends_total", "records appended to the journal",
			func(n string) any { return stats[n].Appends })
		walRow("rfserved_wal_append_errors_total", "journal append failures",
			func(n string) any { return stats[n].AppendErrors })
		walRow("rfserved_wal_fsyncs_total", "group-commit fsync batches",
			func(n string) any { return stats[n].Fsyncs })
		walRow("rfserved_wal_replayed_records", "records replayed at the last startup",
			func(n string) any { return stats[n].Replayed })
		walRow("rfserved_wal_replay_seconds", "wall-clock seconds the last replay took",
			func(n string) any { return fmt.Sprintf("%.6f", stats[n].ReplayDuration.Seconds()) })
		walRow("rfserved_wal_truncated_bytes_total", "torn-tail bytes discarded during recovery",
			func(n string) any { return stats[n].TruncatedBytes })
		walRow("rfserved_wal_compactions_total", "snapshot compactions since start",
			func(n string) any { return stats[n].Compactions })
		walRow("rfserved_wal_size_bytes", "live journal bytes on disk",
			func(n string) any { return journals[n].SizeBytes() })
	}

	// Warehouse index occupancy and query activity; absent entirely on
	// servers without -warehouse-dir, keeping their exposition unchanged.
	if s.cfg.Warehouse != nil {
		ws := s.cfg.Warehouse.Stats()
		m("rfserved_warehouse_segments", ws.Segments, "sealed sweep segments in the warehouse")
		m("rfserved_warehouse_rows", ws.Rows, "rows across all sealed segments")
		m("rfserved_warehouse_bytes", ws.Bytes, "encoded bytes of all sealed segments")
		m("rfserved_warehouse_queries_total", ws.Queries, "queries served by /v1/query")
		m("rfserved_warehouse_query_seconds_total", fmt.Sprintf("%.6f", ws.QuerySeconds),
			"cumulative seconds spent evaluating queries")
		m("rfserved_warehouse_ingest_errors_total", ws.IngestErrors,
			"rows or sweeps the warehouse failed to index (rebuild candidates, not data loss)")
	}

	// Per-tenant admission activity, one labeled row per tenant that has
	// done anything since start. Untenanted deployments account all
	// traffic to "anonymous", so these families appear there too.
	activeSnap := s.active.Snapshot()
	queuedSnap := s.queued.Snapshot()
	storeSnap := s.storeBytes.Snapshot()
	s.tmu.Lock()
	counters := make(map[string]tenantCounters, len(s.tstats))
	for name, c := range s.tstats {
		counters[name] = *c
	}
	s.tmu.Unlock()
	seen := make(map[string]bool)
	for name := range counters {
		seen[name] = true
	}
	for name := range activeSnap {
		seen[name] = true
	}
	for name := range queuedSnap {
		seen[name] = true
	}
	for name := range storeSnap {
		seen[name] = true
	}
	if len(seen) == 0 {
		return
	}
	names := make([]string, 0, len(seen))
	for name := range seen {
		names = append(names, name)
	}
	sort.Strings(names)
	labeled := func(family, help string, value func(string) uint64) {
		fmt.Fprintf(w, "# HELP %s %s\n", family, help)
		for _, name := range names {
			fmt.Fprintf(w, "%s{tenant=%q} %d\n", family, name, value(name))
		}
	}
	labeled("rfserved_tenant_active_sweeps", "sweeps running right now, per tenant",
		func(n string) uint64 { return uint64(activeSnap[n]) })
	labeled("rfserved_tenant_queued_jobs", "jobs submitted but not yet resolved, per tenant",
		func(n string) uint64 { return uint64(queuedSnap[n]) })
	labeled("rfserved_tenant_admitted_total", "sweeps admitted since start, per tenant",
		func(n string) uint64 { return counters[n].admitted })
	labeled("rfserved_tenant_rejected_total", "sweeps refused by a capacity quota since start, per tenant",
		func(n string) uint64 { return counters[n].rejected })
	labeled("rfserved_tenant_throttled_total", "requests refused by the rate limiter since start, per tenant",
		func(n string) uint64 { return counters[n].throttled })
	labeled("rfserved_tenant_store_bytes", "result-store bytes accepted since start, per tenant",
		func(n string) uint64 { return uint64(storeSnap[n]) })
	labeled("rfserved_tenant_store_rejected_total", "object uploads refused by the store byte quota since start, per tenant",
		func(n string) uint64 { return counters[n].storeRejected })
}
