package server

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/sim"
	"repro/internal/store"
	"repro/internal/sweep"
	"repro/rf/api"
)

// testSpec is a small two-benchmark, three-architecture sweep (6 jobs).
const testSpec = `{
  "name": "smoke",
  "instructions": 3000,
  "benchmarks": ["compress", "swim"],
  "architectures": [
    {"kind": "1cycle"},
    {"kind": "rfcache", "caching": ["nonbypass", "ready"]}
  ]
}`

// fakeSim is a fast deterministic stand-in for the simulator.
func fakeSim(j sweep.Job) sim.Result {
	return sim.Result{
		Instructions: j.Config.MaxInstructions,
		Cycles:       j.Config.MaxInstructions/2 + uint64(len(j.Profile.Name)),
		IPC:          2,
	}
}

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	if cfg.Simulate == nil {
		cfg.Simulate = fakeSim
	}
	srv := New(cfg)
	ts := httptest.NewServer(srv)
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
	})
	return srv, ts
}

// submit POSTs a spec and decodes the acknowledgment.
func submit(t *testing.T, base, spec string) api.SubmitResponse {
	t.Helper()
	resp, err := http.Post(base+"/v1/sweeps", "application/json", strings.NewReader(spec))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		body, _ := io.ReadAll(resp.Body)
		t.Fatalf("submit returned %d: %s", resp.StatusCode, body)
	}
	var ack api.SubmitResponse
	if err := json.NewDecoder(resp.Body).Decode(&ack); err != nil {
		t.Fatal(err)
	}
	return ack
}

// streamAll reads the full NDJSON stream of a sweep.
func streamAll(t *testing.T, base, resultsURL string) string {
	t.Helper()
	resp, err := http.Get(base + resultsURL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("results returned %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("results content-type = %q", ct)
	}
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(data)
}

// getStatus polls a sweep's status document.
func getStatus(t *testing.T, base, statusURL string) api.SweepStatus {
	t.Helper()
	resp, err := http.Get(base + statusURL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st api.SweepStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	return st
}

// rfbatchNDJSON renders the spec exactly the way `rfbatch -ndjson` does:
// a fresh runner with the same simulate hook, rows in job order.
func rfbatchNDJSON(t *testing.T, spec string, simulate func(sweep.Job) sim.Result) string {
	t.Helper()
	s, err := sweep.ParseSpec(strings.NewReader(spec))
	if err != nil {
		t.Fatal(err)
	}
	jobs, err := s.Jobs()
	if err != nil {
		t.Fatal(err)
	}
	r := sweep.NewRunner(sweep.RunnerConfig{Simulate: simulate})
	outs := r.RunOutcomes(jobs, 0)
	var buf bytes.Buffer
	if err := sweep.NewReport(s.Name, jobs, outs, r.CacheStats()).WriteNDJSON(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

// TestStreamMatchesRFBatch is the e2e acceptance contract: the NDJSON
// stream of a submitted sweep is byte-identical to an rfbatch run of the
// same spec.
func TestStreamMatchesRFBatch(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	ack := submit(t, ts.URL, testSpec)
	if ack.Jobs != 6 {
		t.Fatalf("spec expanded to %d jobs, want 6", ack.Jobs)
	}
	got := streamAll(t, ts.URL, ack.ResultsURL)
	want := rfbatchNDJSON(t, testSpec, fakeSim)
	if got != want {
		t.Errorf("stream differs from rfbatch output:\n--- rfserved ---\n%s--- rfbatch ---\n%s", got, want)
	}

	st := getStatus(t, ts.URL, ack.StatusURL)
	if st.State != "done" || st.Completed != 6 {
		t.Errorf("status after stream = %+v", st)
	}
	// Streaming a finished sweep replays the identical bytes.
	if again := streamAll(t, ts.URL, ack.ResultsURL); again != got {
		t.Error("replayed stream differs from the live stream")
	}
}

// TestResubmitAllCacheHits is the warm-store contract: a second
// submission of the same spec performs zero simulations.
func TestResubmitAllCacheHits(t *testing.T) {
	var sims atomic.Int64
	counted := func(j sweep.Job) sim.Result {
		sims.Add(1)
		return fakeSim(j)
	}
	_, ts := newTestServer(t, Config{Simulate: counted})

	first := submit(t, ts.URL, testSpec)
	streamAll(t, ts.URL, first.ResultsURL)
	cold := sims.Load()
	if cold == 0 {
		t.Fatal("cold submission simulated nothing")
	}

	second := submit(t, ts.URL, testSpec)
	streamAll(t, ts.URL, second.ResultsURL)
	if sims.Load() != cold {
		t.Errorf("resubmission simulated: %d runs total, want %d", sims.Load(), cold)
	}
	st := getStatus(t, ts.URL, second.StatusURL)
	if st.Cached != st.Total || st.Simulated != 0 {
		t.Errorf("resubmission status = %+v, want 100%% cached", st)
	}
}

// TestStoreSurvivesServerRestart submits against a disk store, tears the
// server down, and verifies a fresh server over the same store serves
// the resubmission entirely from disk.
func TestStoreSurvivesServerRestart(t *testing.T) {
	dir := t.TempDir()
	var sims atomic.Int64
	counted := func(j sweep.Job) sim.Result {
		sims.Add(1)
		return fakeSim(j)
	}

	open := func() (*store.Store, *Server, *httptest.Server) {
		st, err := store.Open(dir, store.Options{})
		if err != nil {
			t.Fatal(err)
		}
		srv := New(Config{
			Simulate: counted,
			Cache:    sweep.Tiered(sweep.NewMemCache(), st),
		})
		return st, srv, httptest.NewServer(srv)
	}

	st, srv, ts := open()
	ack := submit(t, ts.URL, testSpec)
	firstRows := streamAll(t, ts.URL, ack.ResultsURL)
	cold := sims.Load()
	ts.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	srv.Shutdown(ctx)
	cancel()
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	st2, srv2, ts2 := open()
	defer func() {
		ts2.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		srv2.Shutdown(ctx)
		st2.Close()
	}()
	ack2 := submit(t, ts2.URL, testSpec)
	warmRows := streamAll(t, ts2.URL, ack2.ResultsURL)
	if sims.Load() != cold {
		t.Errorf("restarted server re-simulated: %d total, want %d", sims.Load(), cold)
	}
	stJSON := getStatus(t, ts2.URL, ack2.StatusURL)
	if stJSON.Cached != stJSON.Total {
		t.Errorf("restarted status = %+v, want 100%% cached", stJSON)
	}
	// Rows match except for cache provenance: flip the cold rows' cached
	// flags that differ. Simpler: compare everything but the cached field.
	strip := func(ndjson string) []sweep.Row {
		var rows []sweep.Row
		dec := json.NewDecoder(strings.NewReader(ndjson))
		for dec.More() {
			var row sweep.Row
			if err := dec.Decode(&row); err != nil {
				t.Fatal(err)
			}
			row.Cached = false
			rows = append(rows, row)
		}
		return rows
	}
	a, b := strip(firstRows), strip(warmRows)
	if len(a) != len(b) {
		t.Fatalf("row counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Errorf("row %d differs across restart:\n%+v\n%+v", i, a[i], b[i])
		}
	}
}

// TestCancelSweep verifies DELETE stops a running sweep and the stream
// terminates.
func TestCancelSweep(t *testing.T) {
	release := make(chan struct{})
	var once atomic.Bool
	started := make(chan struct{})
	slow := func(j sweep.Job) sim.Result {
		if once.CompareAndSwap(false, true) {
			close(started)
		}
		<-release
		return fakeSim(j)
	}

	_, ts := newTestServer(t, Config{Simulate: slow, MaxWorkers: 2})
	// 18 benchmarks × 1 arch: plenty of jobs left when we cancel.
	ack := submit(t, ts.URL, `{"instructions": 1000, "architectures": [{"kind": "1cycle"}]}`)
	<-started

	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/sweeps/"+ack.ID, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("cancel returned %d", resp.StatusCode)
	}
	// Unblock the in-flight simulations; everything not yet started must
	// now be skipped.
	close(release)

	// The stream must terminate without delivering every row.
	stream := streamAll(t, ts.URL, ack.ResultsURL)
	deadline := time.Now().Add(5 * time.Second)
	for {
		st := getStatus(t, ts.URL, ack.StatusURL)
		if st.State == "canceled" {
			if st.Completed >= st.Total {
				t.Errorf("canceled sweep completed all %d jobs", st.Total)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("sweep never reached canceled state: %+v", st)
		}
		time.Sleep(10 * time.Millisecond)
	}
	if n := strings.Count(stream, "\n"); n >= ack.Jobs {
		t.Errorf("canceled stream delivered %d of %d rows", n, ack.Jobs)
	}
	// Every row the cancellation kept must be streamable, even past a
	// gap left by a skipped job.
	final := getStatus(t, ts.URL, ack.StatusURL)
	replay := streamAll(t, ts.URL, ack.ResultsURL)
	if n := strings.Count(replay, "\n"); n != final.Completed {
		t.Errorf("terminal stream delivered %d rows, status says %d completed", n, final.Completed)
	}
}

func TestSubmitValidation(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	cases := []struct {
		name, body string
		status     int
	}{
		{"malformed", `{`, http.StatusBadRequest},
		{"no architectures", `{"benchmarks":["compress"]}`, http.StatusBadRequest},
		{"unknown benchmark", `{"benchmarks":["nope"],"architectures":[{"kind":"1cycle"}]}`, http.StatusBadRequest},
	}
	for _, c := range cases {
		resp, err := http.Post(ts.URL+"/v1/sweeps", "application/json", strings.NewReader(c.body))
		if err != nil {
			t.Fatal(err)
		}
		var e api.Error
		json.NewDecoder(resp.Body).Decode(&e)
		resp.Body.Close()
		if resp.StatusCode != c.status {
			t.Errorf("%s: status %d, want %d", c.name, resp.StatusCode, c.status)
		}
		if e.Error == "" {
			t.Errorf("%s: no error message", c.name)
		}
	}

	// Oversized expansions are rejected up front.
	_, ts2 := newTestServer(t, Config{MaxJobs: 3})
	resp, err := http.Post(ts2.URL+"/v1/sweeps", "application/json", strings.NewReader(testSpec))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Errorf("oversized spec: status %d, want %d", resp.StatusCode, http.StatusRequestEntityTooLarge)
	}

	// Unknown sweeps 404.
	for _, url := range []string{"/v1/sweeps/nope", "/v1/sweeps/nope/results"} {
		resp, err := http.Get(ts.URL + url)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("%s: status %d, want 404", url, resp.StatusCode)
		}
	}
}

func TestGlobalWorkerBudget(t *testing.T) {
	var running, peak atomic.Int64
	tracked := func(j sweep.Job) sim.Result {
		n := running.Add(1)
		for {
			p := peak.Load()
			if n <= p || peak.CompareAndSwap(p, n) {
				break
			}
		}
		time.Sleep(2 * time.Millisecond)
		running.Add(-1)
		return fakeSim(j)
	}
	_, ts := newTestServer(t, Config{Simulate: tracked, MaxWorkers: 2})
	// Two concurrent sweeps, each happy to use many workers.
	a := submit(t, ts.URL, `{"instructions":1000,"parallelism":8,"benchmarks":["compress","swim","gcc","perl"],"architectures":[{"kind":"1cycle"}]}`)
	b := submit(t, ts.URL, `{"instructions":1000,"parallelism":8,"benchmarks":["compress","swim","gcc","perl"],"architectures":[{"kind":"2cycle"}]}`)
	streamAll(t, ts.URL, a.ResultsURL)
	streamAll(t, ts.URL, b.ResultsURL)
	if p := peak.Load(); p > 2 {
		t.Errorf("observed %d concurrent simulations, global budget is 2", p)
	}
}

func TestMetricsAndList(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	ack := submit(t, ts.URL, testSpec)
	streamAll(t, ts.URL, ack.ResultsURL)
	submit(t, ts.URL, testSpec) // warm resubmit; let it finish via status polls

	deadline := time.Now().Add(5 * time.Second)
	for getStatus(t, ts.URL, "/v1/sweeps/s000002").State != "done" {
		if time.Now().After(deadline) {
			t.Fatal("second sweep never finished")
		}
		time.Sleep(5 * time.Millisecond)
	}

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	metrics := string(body)
	for _, want := range []string{
		"rfserved_sweeps_total 2",
		"rfserved_jobs_completed_total 12",
		"rfserved_queue_depth 0",
		"rfserved_cache_hits_total",
		"rfserved_cache_hit_rate",
		"rfserved_instructions_per_second",
	} {
		if !strings.Contains(metrics, want) {
			t.Errorf("metrics missing %q:\n%s", want, metrics)
		}
	}

	listResp, err := http.Get(ts.URL + "/v1/sweeps")
	if err != nil {
		t.Fatal(err)
	}
	var list struct {
		Sweeps []api.SweepStatus `json:"sweeps"`
	}
	err = json.NewDecoder(listResp.Body).Decode(&list)
	listResp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if len(list.Sweeps) != 2 || list.Sweeps[0].ID != "s000001" || list.Sweeps[1].ID != "s000002" {
		t.Errorf("list = %+v", list.Sweeps)
	}
}

func TestShutdownRejectsNewSweeps(t *testing.T) {
	srv := New(Config{Simulate: fakeSim})
	ts := httptest.NewServer(srv)
	defer ts.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/v1/sweeps", "application/json", strings.NewReader(testSpec))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("post-shutdown submit returned %d, want 503", resp.StatusCode)
	}
}

// TestRealSimulatorSmoke runs one tiny sweep through the real simulator
// to pin the full path together (skipped in -short).
func TestRealSimulatorSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("real simulation in -short mode")
	}
	spec := `{"instructions": 2000, "benchmarks": ["compress"], "architectures": [{"kind": "1cycle"}]}`
	_, ts := newTestServer(t, Config{Simulate: sweep.Simulate})
	ack := submit(t, ts.URL, spec)
	got := streamAll(t, ts.URL, ack.ResultsURL)
	want := rfbatchNDJSON(t, spec, nil)
	if got != want {
		t.Errorf("real-sim stream differs from rfbatch:\n%s\nvs\n%s", got, want)
	}
	var row sweep.Row
	if err := json.Unmarshal([]byte(strings.TrimSpace(got)), &row); err != nil {
		t.Fatal(err)
	}
	if row.Instructions == 0 || row.IPC <= 0 {
		t.Errorf("real simulation produced empty row: %+v", row)
	}
}
