package server

import (
	"io"
	"net/http"

	"repro/internal/sim"
	"repro/internal/sweep"
	"repro/internal/warehouse"
)

// handleQuery serves GET/POST /v1/query over the warehouse: GET carries
// the query document URL-encoded in the q parameter, POST carries it as
// the body. Authentication and rate limiting match the rest of the
// surface; in tenanted mode a caller only sees its own sweeps' segments
// (the anonymous tenant is one shared identity, as for streams).
func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	tn := s.authTenant(w, r)
	if tn == nil {
		return
	}
	if !s.rateLimit(w, tn) {
		return
	}
	var doc []byte
	if r.Method == http.MethodGet {
		qs := r.URL.Query().Get("q")
		if qs == "" {
			writeError(w, http.StatusBadRequest, "rfserved: missing q parameter (URL-encoded query JSON)")
			return
		}
		doc = []byte(qs)
	} else {
		data, err := io.ReadAll(http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes))
		if err != nil {
			writeError(w, http.StatusBadRequest, "rfserved: bad query body: %v", err)
			return
		}
		doc = data
	}
	q, err := warehouse.ParseQuery(doc)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	res, err := s.cfg.Warehouse.Query(q, tn.Name, s.tenanted())
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, res)
}

// warehouseRebuildDone re-indexes one journal-recovered done sweep that
// has no sealed segment (warehouse directory deleted, segment corrupt,
// or the crash predates the seal). Each job's row is re-derived from
// the content-addressed store, falling back to the journaled row — the
// rebuildability invariant: the warehouse is a view, never a source.
// Called during recovery, before the sweep's run is shared.
func (s *Server) warehouseRebuildDone(run *sweepRun) {
	wh := s.cfg.Warehouse
	if wh == nil || run.state != stateDone || wh.Has(run.id) {
		return
	}
	get := func(k sweep.Key) (sim.Result, bool) {
		if s.cfg.Cache == nil {
			return sim.Result{}, false
		}
		return s.cfg.Cache.Get(k)
	}
	if err := wh.RebuildSweep(run.id, run.name, run.tenant, run.jobs, run.rows, run.done, get); err != nil {
		s.logf("rfserved: warehouse rebuild of sweep %s failed: %v", run.id, err)
		return
	}
	s.logf("rfserved: warehouse rebuilt sweep %s (%d rows) from the store", run.id, len(run.jobs))
}

// warehousePrepareResume opens a resuming sweep's index builder and
// pre-populates it with the journaled rows, so the live ingest seam in
// execute supplies only the jobs the crash interrupted and the eventual
// seal covers the whole sweep. Must run before the sweep's execute
// goroutine starts.
func (s *Server) warehousePrepareResume(run *sweepRun) {
	wh := s.cfg.Warehouse
	if wh == nil {
		return
	}
	wh.Begin(run.id, run.name, run.tenant, len(run.jobs))
	for i, done := range run.done {
		if done {
			wh.Add(run.id, i, run.jobs[i], run.rows[i])
		}
	}
}
