// Object-API and remote-store-tier tests: the /v1/objects endpoints
// serve a node's store to the fleet, and a second server with a remote
// tier pointed at the first resolves a whole sweep without simulating.
package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync/atomic"
	"testing"

	"repro/internal/sim"
	"repro/internal/store"
	"repro/internal/sweep"
	"repro/rf/api"
)

func objKey(i int) string { return fmt.Sprintf("%064x", i+1) }

func putObject(t *testing.T, base, pathKey string, obj api.Object) *http.Response {
	t.Helper()
	body, _ := json.Marshal(obj)
	req, err := http.NewRequest(http.MethodPut, base+"/v1/objects/"+pathKey, bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func TestObjectsAPI(t *testing.T) {
	st, err := store.Open(t.TempDir(), store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	_, ts := newTestServer(t, Config{Objects: st.Backend()})

	// Missing object: 404, so a remote tier treats it as a clean miss.
	resp, err := http.Get(ts.URL + "/v1/objects/" + objKey(0))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("GET missing object = %d, want 404", resp.StatusCode)
	}

	// Malformed key: 400, never a store probe.
	resp, err = http.Get(ts.URL + "/v1/objects/not-a-key")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("GET malformed key = %d, want 400", resp.StatusCode)
	}

	// Body key must match the path key — a corrupt replication can
	// never poison some other key's slot.
	resp = putObject(t, ts.URL, objKey(0), api.Object{Key: objKey(1), Result: sim.Result{Cycles: 3}})
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("PUT with mismatched body key = %d, want 400", resp.StatusCode)
	}
	if _, ok := st.Get(sweep.Key(objKey(0))); ok {
		t.Fatal("mismatched PUT landed in the store")
	}

	// Round trip.
	resp = putObject(t, ts.URL, objKey(0), api.Object{Key: objKey(0), Result: sim.Result{Cycles: 3}})
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("PUT = %d, want 200", resp.StatusCode)
	}
	resp, err = http.Get(ts.URL + "/v1/objects/" + objKey(0))
	if err != nil {
		t.Fatal(err)
	}
	var obj api.Object
	if err := json.NewDecoder(resp.Body).Decode(&obj); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if obj.Key != objKey(0) || obj.Result.Cycles != 3 {
		t.Fatalf("GET round trip = %+v", obj)
	}

	// HEAD probes existence without a body.
	resp, err = http.Head(ts.URL + "/v1/objects/" + objKey(0))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("HEAD = %d, want 200", resp.StatusCode)
	}

	// The store gauge families are exported.
	resp, err = http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	metrics, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, want := range []string{"rfserved_store_objects 1", "rfserved_store_bytes "} {
		if !strings.Contains(string(metrics), want) {
			t.Errorf("metrics missing %q", want)
		}
	}
}

// TestRemoteTierWarmResubmit is the fleet-store acceptance pin: a sweep
// already resolved on server A is resubmitted to a fresh server B whose
// only remote tier is A's object API. B must complete it with zero
// simulations and stream bytes identical to A's own warm stream.
func TestRemoteTierWarmResubmit(t *testing.T) {
	stA, err := store.Open(t.TempDir(), store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer stA.Close()
	_, tsA := newTestServer(t, Config{
		Cache:   sweep.Tiered(sweep.NewMemCache(), stA),
		Objects: stA.Backend(),
	})

	// Cold run on A populates its store; the second run is the warm
	// reference stream (every row cached:true).
	ack := submit(t, tsA.URL, testSpec)
	streamAll(t, tsA.URL, ack.ResultsURL)
	ack = submit(t, tsA.URL, testSpec)
	warmA := streamAll(t, tsA.URL, ack.ResultsURL)

	// Server B: fresh local store, remote tier pointing at A.
	stB, err := store.Open(t.TempDir(), store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer stB.Close()
	tiers := store.NewTiers(store.TierConfig{
		Local: stB,
		Remotes: []store.Tier{{
			Name: "remote", ID: tsA.URL,
			Backend:      store.NewRemote(tsA.URL, store.RemoteOptions{}),
			WriteThrough: true,
		}},
	})
	defer tiers.Close()
	var simulated atomic.Int64
	_, tsB := newTestServer(t, Config{
		Cache:     sweep.Tiered(sweep.NewMemCache(), tiers),
		TierStats: tiers.Stats,
		Simulate: func(j sweep.Job) sim.Result {
			simulated.Add(1)
			return fakeSim(j)
		},
	})

	ack = submit(t, tsB.URL, testSpec)
	gotB := streamAll(t, tsB.URL, ack.ResultsURL)
	if n := simulated.Load(); n != 0 {
		t.Fatalf("server B simulated %d jobs, want 0 (all remote-tier hits)", n)
	}
	if gotB != warmA {
		t.Fatalf("server B stream differs from A's warm stream:\nA: %s\nB: %s", warmA, gotB)
	}
	st := getStatus(t, tsB.URL, ack.StatusURL)
	if st.Simulated != 0 || st.Cached != st.Total {
		t.Fatalf("status = %+v, want all cached", st)
	}
	ts := tiers.Stats()
	if ts.Hits["remote"] == 0 || ts.Misses != 0 {
		t.Fatalf("tier stats = %+v, want remote hits and no misses", ts)
	}
	if ts.Promotions == 0 {
		t.Fatalf("tier stats = %+v, want promotions into B's local store", ts)
	}

	// The tier counter families are exported on B's /metrics.
	resp, err := http.Get(tsB.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	metrics, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, want := range []string{
		`rfserved_store_tier_hits{tier="remote"}`,
		"rfserved_store_tier_misses 0",
		"rfserved_store_hedged_fetches ",
		"rfserved_store_hedge_wins ",
		"rfserved_store_remote_errors 0",
	} {
		if !strings.Contains(string(metrics), want) {
			t.Errorf("metrics missing %q", want)
		}
	}

	// A third submit resolves from B's own promoted store even with A
	// gone: kill A and resubmit.
	tsA.Close()
	ack = submit(t, tsB.URL, testSpec)
	gotB2 := streamAll(t, tsB.URL, ack.ResultsURL)
	if gotB2 != warmA {
		t.Fatal("server B stream changed after losing the remote tier")
	}
	if n := simulated.Load(); n != 0 {
		t.Fatalf("server B simulated %d jobs after promotion, want 0", n)
	}
}
