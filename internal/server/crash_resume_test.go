package server

// Crash-resume pin for the journaled server: kill it mid-sweep (no
// Shutdown — nothing flushes beyond what Append already wrote), restart
// on the same journal, and assert the resumed sweep finishes with
// byte-identical NDJSON and zero re-simulation of completed jobs. This
// is the in-process twin of the CI recovery job in scripts/smoke_e2e.sh
// phase 6.

import (
	"context"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/sim"
	"repro/internal/store"
	"repro/internal/sweep"
	"repro/internal/wal"
)

// resumeSpec is testSpec with serialized execution, so rows land one at
// a time and the crash point falls cleanly between jobs.
const resumeSpec = `{
  "name": "resume",
  "instructions": 3000,
  "parallelism": 1,
  "benchmarks": ["compress", "swim"],
  "architectures": [
    {"kind": "1cycle"},
    {"kind": "rfcache", "caching": ["nonbypass", "ready"]}
  ]
}`

func openWAL(t *testing.T, dir string) *wal.WAL {
	t.Helper()
	j, err := wal.Open(dir, wal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return j
}

func waitStatus(t *testing.T, base, statusURL string, ok func(int, string) bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		st := getStatus(t, base, statusURL)
		if ok(st.Completed, st.State) {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("sweep never reached the expected state (completed=%d state=%s)",
				st.Completed, st.State)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestServerCrashResume(t *testing.T) {
	walDir := t.TempDir()
	storeDir := t.TempDir()

	// First life: simulate three jobs, then block the fourth in the
	// simulator until the test ends — the crash happens "between rows".
	release := make(chan struct{})
	var sims1 atomic.Int64
	gated := func(j sweep.Job) sim.Result {
		if sims1.Add(1) > 3 {
			<-release
		}
		return fakeSim(j)
	}
	st1, err := store.Open(storeDir, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	j1 := openWAL(t, walDir)
	srv1 := New(Config{Cache: st1, Simulate: gated, Journal: j1})
	ts1 := httptest.NewServer(srv1)
	// Registered before any assertion so it runs after ts2's cleanup but
	// before the TempDir removals: unblock the abandoned server's stuck
	// execute goroutine and wait it out, so it cannot race file writes
	// against the directory cleanup.
	t.Cleanup(func() {
		close(release)
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		srv1.Shutdown(ctx)
	})
	ack := submit(t, ts1.URL, resumeSpec)
	if ack.Jobs != 6 {
		t.Fatalf("spec expanded to %d jobs, want 6", ack.Jobs)
	}
	waitStatus(t, ts1.URL, ack.StatusURL, func(completed int, _ string) bool {
		return completed == 3
	})
	// Crash: close the HTTP front end and the journal file handles, but
	// never call Shutdown — the abandoned server flushes nothing and its
	// in-memory sweep table is lost.
	ts1.Close()
	j1.Close()

	// Second life: same journal, same store, a fresh simulator that
	// counts every job it is asked to run.
	var sims2 atomic.Int64
	counted := func(j sweep.Job) sim.Result {
		sims2.Add(1)
		return fakeSim(j)
	}
	st2, err := store.Open(storeDir, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	j2 := openWAL(t, walDir)
	srv2 := New(Config{Cache: st2, Simulate: counted, Journal: j2})
	ts2 := httptest.NewServer(srv2)
	t.Cleanup(func() {
		ts2.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		srv2.Shutdown(ctx)
		j2.Close()
	})

	waitStatus(t, ts2.URL, ack.StatusURL, func(_ int, state string) bool {
		return state == "done"
	})
	st := getStatus(t, ts2.URL, ack.StatusURL)
	if !st.Recovered {
		t.Error("resumed sweep status does not carry the recovered marker")
	}
	if st.Completed != 6 || st.Cached != 0 {
		t.Errorf("resumed status completed=%d cached=%d, want 6 and 0", st.Completed, st.Cached)
	}
	if got := sims2.Load(); got != 3 {
		t.Errorf("restart re-simulated %d jobs, want exactly the 3 interrupted ones", got)
	}
	// The acceptance contract: the resumed stream is byte-identical to an
	// uninterrupted run of the same spec.
	got := streamAll(t, ts2.URL, ack.ResultsURL)
	want := rfbatchNDJSON(t, resumeSpec, fakeSim)
	if got != want {
		t.Errorf("resumed stream differs from uninterrupted output:\n--- resumed ---\n%s--- reference ---\n%s", got, want)
	}
}

// TestServerJournalCompactionResume pins that a snapshot-compacted
// journal still resumes: compact after the sweep finishes, restart, and
// assert the terminal sweep is still fully servable.
func TestServerJournalCompactionResume(t *testing.T) {
	walDir := t.TempDir()

	j1 := openWAL(t, walDir)
	srv1 := New(Config{Simulate: fakeSim, Journal: j1, CompactBytes: 1})
	ts1 := httptest.NewServer(srv1)
	ack := submit(t, ts1.URL, testSpec)
	waitStatus(t, ts1.URL, ack.StatusURL, func(_ int, state string) bool {
		return state == "done"
	})
	want := streamAll(t, ts1.URL, ack.ResultsURL)
	srv1.compactJournal()
	if st := j1.Stats(); st.Compactions != 1 {
		t.Fatalf("Compactions = %d, want 1", st.Compactions)
	}
	ts1.Close()
	j1.Close()

	j2 := openWAL(t, walDir)
	srv2 := New(Config{Simulate: fakeSim, Journal: j2})
	ts2 := httptest.NewServer(srv2)
	t.Cleanup(func() {
		ts2.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		srv2.Shutdown(ctx)
		j2.Close()
	})
	st := getStatus(t, ts2.URL, ack.StatusURL)
	if st.State != "done" || st.Completed != 6 {
		t.Fatalf("terminal sweep not preserved through compaction: %+v", st)
	}
	if st.Recovered {
		t.Error("a sweep that finished before the restart must not be marked recovered")
	}
	if got := streamAll(t, ts2.URL, ack.ResultsURL); got != want {
		t.Error("replayed terminal stream differs from the original")
	}
}
