// Package rng provides a small, deterministic pseudo-random number
// generator (PCG-XSH-RR 64/32) used by the synthetic workload generators.
//
// The standard library's math/rand is avoided so that workload streams are
// bit-for-bit reproducible across Go releases: the experiments in this
// repository compare register file architectures on identical instruction
// streams, and that comparison is only meaningful if the stream cannot
// drift.
package rng

// PCG is a PCG-XSH-RR 64/32 generator. The zero value is not useful;
// construct with New.
type PCG struct {
	state uint64
	inc   uint64
}

const pcgMult = 6364136223846793005

// New returns a generator seeded with seed on stream seq.
// Two generators with different seq values produce independent streams
// even with the same seed.
func New(seed, seq uint64) *PCG {
	p := &PCG{inc: seq<<1 | 1}
	p.state = 0
	p.Uint32()
	p.state += seed
	p.Uint32()
	return p
}

// Uint32 returns the next 32 uniformly distributed bits.
func (p *PCG) Uint32() uint32 {
	old := p.state
	p.state = old*pcgMult + p.inc
	xorshifted := uint32(((old >> 18) ^ old) >> 27)
	rot := uint32(old >> 59)
	return xorshifted>>rot | xorshifted<<((-rot)&31)
}

// Uint64 returns the next 64 uniformly distributed bits.
func (p *PCG) Uint64() uint64 {
	return uint64(p.Uint32())<<32 | uint64(p.Uint32())
}

// Intn returns a uniformly distributed int in [0, n). It panics if n <= 0.
func (p *PCG) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn called with non-positive n")
	}
	// Lemire's nearly-divisionless bounded generation.
	bound := uint32(n)
	for {
		v := p.Uint32()
		prod := uint64(v) * uint64(bound)
		low := uint32(prod)
		if low >= bound || low >= -bound%bound {
			return int(prod >> 32)
		}
	}
}

// Float64 returns a uniformly distributed float64 in [0, 1).
func (p *PCG) Float64() float64 {
	return float64(p.Uint64()>>11) / (1 << 53)
}

// Bernoulli reports true with probability prob.
func (p *PCG) Bernoulli(prob float64) bool {
	return p.Float64() < prob
}

// Geometric returns a sample from a geometric distribution with the given
// success probability (mean ≈ 1/prob), always at least 1. It is used for
// dependence-distance and run-length draws in the workload generators.
func (p *PCG) Geometric(prob float64) int {
	if prob >= 1 {
		return 1
	}
	if prob <= 0 {
		panic("rng: Geometric needs prob in (0, 1]")
	}
	n := 1
	for !p.Bernoulli(prob) {
		n++
		if n >= 1<<20 { // safety valve; statistically unreachable
			return n
		}
	}
	return n
}
