package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a := New(42, 7)
	b := New(42, 7)
	for i := 0; i < 1000; i++ {
		if x, y := a.Uint64(), b.Uint64(); x != y {
			t.Fatalf("step %d: same-seed generators diverged: %d vs %d", i, x, y)
		}
	}
}

func TestStreamsIndependent(t *testing.T) {
	a := New(42, 1)
	b := New(42, 2)
	same := 0
	for i := 0; i < 1000; i++ {
		if a.Uint32() == b.Uint32() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("streams with different seq look correlated: %d/1000 equal draws", same)
	}
}

func TestSeedChangesStream(t *testing.T) {
	a := New(1, 0)
	b := New(2, 0)
	same := 0
	for i := 0; i < 1000; i++ {
		if a.Uint32() == b.Uint32() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("different seeds look correlated: %d/1000 equal draws", same)
	}
}

func TestIntnRange(t *testing.T) {
	p := New(3, 3)
	for _, n := range []int{1, 2, 3, 7, 100, 1 << 20} {
		for i := 0; i < 200; i++ {
			v := p.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1, 1).Intn(0)
}

func TestIntnUniformity(t *testing.T) {
	p := New(99, 5)
	const n, draws = 10, 100000
	var counts [n]int
	for i := 0; i < draws; i++ {
		counts[p.Intn(n)]++
	}
	want := float64(draws) / n
	for i, c := range counts {
		if math.Abs(float64(c)-want) > 5*math.Sqrt(want) {
			t.Errorf("bucket %d: got %d, want ≈%.0f", i, c, want)
		}
	}
}

func TestFloat64Range(t *testing.T) {
	p := New(5, 9)
	sum := 0.0
	const draws = 100000
	for i := 0; i < draws; i++ {
		f := p.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64() = %v out of [0,1)", f)
		}
		sum += f
	}
	if mean := sum / draws; math.Abs(mean-0.5) > 0.01 {
		t.Errorf("Float64 mean = %v, want ≈0.5", mean)
	}
}

func TestGeometricMean(t *testing.T) {
	p := New(11, 13)
	for _, prob := range []float64{0.1, 0.25, 0.5, 0.9} {
		sum := 0
		const draws = 50000
		for i := 0; i < draws; i++ {
			sum += p.Geometric(prob)
		}
		mean := float64(sum) / draws
		want := 1 / prob
		if math.Abs(mean-want)/want > 0.05 {
			t.Errorf("Geometric(%v) mean = %v, want ≈%v", prob, mean, want)
		}
	}
}

func TestGeometricAtLeastOne(t *testing.T) {
	p := New(17, 19)
	for i := 0; i < 10000; i++ {
		if g := p.Geometric(0.99); g < 1 {
			t.Fatalf("Geometric returned %d < 1", g)
		}
	}
}

func TestBernoulliExtremes(t *testing.T) {
	p := New(23, 29)
	for i := 0; i < 1000; i++ {
		if p.Bernoulli(0) {
			t.Fatal("Bernoulli(0) returned true")
		}
		if !p.Bernoulli(1) {
			t.Fatal("Bernoulli(1) returned false")
		}
	}
}

// Property: Intn always lands in range for arbitrary seeds and bounds.
func TestQuickIntnInRange(t *testing.T) {
	f := func(seed, seq uint64, nRaw uint16) bool {
		n := int(nRaw%1000) + 1
		p := New(seed, seq)
		for i := 0; i < 50; i++ {
			v := p.Intn(n)
			if v < 0 || v >= n {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: identical (seed, seq) ⇒ identical streams.
func TestQuickDeterminism(t *testing.T) {
	f := func(seed, seq uint64) bool {
		a, b := New(seed, seq), New(seed, seq)
		for i := 0; i < 20; i++ {
			if a.Uint64() != b.Uint64() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
