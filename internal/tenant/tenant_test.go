package tenant

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"
)

const testFile = `{
  "tenants": [
    {"name": "paid", "keys": ["pk-1", "pk-2"], "priority": 10,
     "rate": 100, "burst": 200, "max_active": -1},
    {"name": "free", "key": "fk-1", "max_queued": 50},
    {"name": "anonymous", "max_active": 1}
  ]
}`

func loadTestRegistry(t *testing.T, defaults Limits) *Registry {
	t.Helper()
	reg, err := Load(strings.NewReader(testFile), defaults)
	if err != nil {
		t.Fatal(err)
	}
	return reg
}

func TestRegistryAuthenticate(t *testing.T) {
	reg := loadTestRegistry(t, Limits{Rate: 2, MaxActive: 3, MaxQueued: 1000})

	paid, ok := reg.Authenticate("pk-1")
	if !ok || paid.Name != "paid" || paid.Priority != 10 {
		t.Fatalf("pk-1 → %+v, %v", paid, ok)
	}
	// Key rotation: both keys of a tenant resolve to the same identity.
	paid2, ok := reg.Authenticate("pk-2")
	if !ok || paid2 != paid {
		t.Errorf("pk-2 resolved to %+v, want the same tenant as pk-1", paid2)
	}
	// Explicit -1 overrides the server default with "unlimited".
	if paid.Limits.MaxActive != 0 {
		t.Errorf("paid MaxActive = %d, want 0 (unlimited)", paid.Limits.MaxActive)
	}
	if paid.Limits.Rate != 100 || paid.Limits.Burst != 200 {
		t.Errorf("paid rate/burst = %v/%d", paid.Limits.Rate, paid.Limits.Burst)
	}

	free, ok := reg.Authenticate("fk-1")
	if !ok || free.Name != "free" || free.Priority != 0 {
		t.Fatalf("fk-1 → %+v, %v", free, ok)
	}
	// Absent fields inherit the defaults; explicit values win.
	if free.Limits.MaxActive != 3 || free.Limits.MaxQueued != 50 || free.Limits.Rate != 2 {
		t.Errorf("free limits = %+v", free.Limits)
	}
	// Rate with no burst derives a burst.
	if free.Limits.Burst != 2 {
		t.Errorf("free burst = %d, want ceil(rate)", free.Limits.Burst)
	}

	// Empty key is anonymous; the file's anonymous entry applies.
	anon, ok := reg.Authenticate("")
	if !ok || anon.Name != Anonymous || anon.Limits.MaxActive != 1 {
		t.Fatalf("anonymous → %+v, %v", anon, ok)
	}
	if _, ok := reg.Authenticate("wrong"); ok {
		t.Error("unknown key authenticated")
	}
	if reg.Len() != 3 {
		t.Errorf("Len = %d, want 3", reg.Len())
	}
}

func TestRegistryLoadRejects(t *testing.T) {
	cases := []struct{ name, body string }{
		{"unknown field", `{"tenants": [{"name": "a", "key": "k", "color": "red"}]}`},
		{"no name", `{"tenants": [{"key": "k"}]}`},
		{"no keys", `{"tenants": [{"name": "a"}]}`},
		{"empty key", `{"tenants": [{"name": "a", "keys": [""]}]}`},
		{"duplicate name", `{"tenants": [{"name": "a", "key": "k1"}, {"name": "a", "key": "k2"}]}`},
		{"shared key", `{"tenants": [{"name": "a", "key": "k"}, {"name": "b", "key": "k"}]}`},
		{"keyed anonymous", `{"tenants": [{"name": "anonymous", "key": "k"}]}`},
	}
	for _, c := range cases {
		if _, err := Load(strings.NewReader(c.body), Limits{}); err == nil {
			t.Errorf("%s: loaded without error", c.name)
		}
	}
}

func TestReserverBoundsAndCleanup(t *testing.T) {
	r := NewReserver()
	if err := r.Acquire("alice", 1, 2); err != nil {
		t.Fatal(err)
	}
	if err := r.Acquire("alice", 1, 2); err != nil {
		t.Fatal(err)
	}
	if err := r.Acquire("alice", 1, 2); !errors.Is(err, ErrOverLimit) {
		t.Fatalf("third acquire = %v, want ErrOverLimit", err)
	}
	// The failed acquire must not have bumped the count.
	if got := r.Held("alice"); got != 2 {
		t.Fatalf("held = %d after failed acquire, want 2", got)
	}
	// Unlimited tenants never fail.
	if err := r.Acquire("bob", 1000, 0); err != nil {
		t.Fatal(err)
	}
	if r.Tenants() != 2 {
		t.Errorf("Tenants = %d, want 2", r.Tenants())
	}
	if err := r.Release("alice", 2); err != nil {
		t.Fatal(err)
	}
	if err := r.Release("bob", 1000); err != nil {
		t.Fatal(err)
	}
	// Zero-count entries are deleted: the map is empty again.
	if r.Tenants() != 0 {
		t.Errorf("Tenants = %d after full release, want 0 (unbounded-memory regression)", r.Tenants())
	}
	// A fictitious release is a loud bookkeeping error, not a silent
	// negative count.
	if err := r.Release("alice", 1); !errors.Is(err, ErrNoReservation) {
		t.Errorf("fictitious release = %v, want ErrNoReservation", err)
	}
	if r.Tenants() != 0 || r.Held("alice") != 0 {
		t.Errorf("state corrupted by fictitious release: %v", r.Snapshot())
	}
}

func TestLimiterPacing(t *testing.T) {
	l := NewLimiter()
	now := time.Unix(1000, 0)
	l.now = func() time.Time { return now }

	// Burst admits back-to-back, then pacing kicks in.
	for i := 0; i < 3; i++ {
		if ok, _ := l.Allow("a", 2, 3); !ok {
			t.Fatalf("request %d inside burst denied", i)
		}
	}
	ok, wait := l.Allow("a", 2, 3)
	if ok {
		t.Fatal("request over burst admitted")
	}
	if wait <= 0 || wait > time.Second {
		t.Fatalf("retry-after = %v, want (0, 500ms]-ish at rate 2", wait)
	}
	// After the advertised wait a token is back.
	now = now.Add(wait)
	if ok, _ := l.Allow("a", 2, 3); !ok {
		t.Fatal("request after advertised wait still denied")
	}

	// Unlimited rate never consults (or creates) a bucket.
	if ok, _ := l.Allow("b", 0, 0); !ok {
		t.Fatal("unlimited tenant denied")
	}
	if l.Len() != 1 {
		t.Fatalf("Len = %d, want 1 (only the limited tenant has a bucket)", l.Len())
	}

	// Once fully refilled, the bucket is pruned — absent and full are the
	// same state, so memory stays bounded over tenant churn.
	now = now.Add(time.Hour)
	l.ops = pruneEvery - 1
	l.Allow("c", 2, 3)
	if l.Len() != 1 {
		t.Errorf("Len = %d after prune, want 1 (a's refilled bucket deleted, c's live)", l.Len())
	}
}

// TestLimiterPruneHeterogeneousRates pins that a prune sweep triggered
// by a high-rate tenant judges every bucket by its *own* rate and burst:
// deleting a slow tenant's drained bucket would recreate it full on the
// owner's next call, handing out a free burst.
func TestLimiterPruneHeterogeneousRates(t *testing.T) {
	l := NewLimiter()
	now := time.Unix(1000, 0)
	l.now = func() time.Time { return now }

	// "slow" spends its whole burst: 0 tokens left, next token ~17 min out.
	if ok, _ := l.Allow("slow", 0.001, 1); !ok {
		t.Fatal("slow's first request denied")
	}
	if ok, _ := l.Allow("slow", 0.001, 1); ok {
		t.Fatal("slow's second request admitted inside drained burst")
	}

	// One second later a fast tenant's call triggers a prune. Judged by the
	// caller's rate (100/s), slow's bucket would look refilled and die.
	now = now.Add(time.Second)
	l.ops = pruneEvery - 1
	l.Allow("fast", 100, 100)
	if l.Len() != 2 {
		t.Fatalf("Len = %d after fast-rate prune, want 2 (slow's drained bucket must survive)", l.Len())
	}
	if ok, _ := l.Allow("slow", 0.001, 1); ok {
		t.Fatal("slow admitted right after a fast-rate prune: bucket was deleted and recreated full")
	}
}

func TestFairQueuePriorityAndDeficit(t *testing.T) {
	q := NewFairQueue(3)
	for i := 0; i < 3; i++ {
		if err := q.Acquire(context.Background(), "heavy", 0); err != nil {
			t.Fatal(err)
		}
	}

	// Three waiters on a saturated pool, queued in this order: a fourth
	// slot for the heavy tenant, a light tenant at the same tier, and a
	// paid tenant at a higher tier.
	grants := make(chan string, 3)
	acquire := func(who string, prio int) {
		go func() {
			if err := q.Acquire(context.Background(), who, prio); err == nil {
				grants <- who
			}
		}()
		// Deterministic arrival order: wait until this waiter is queued.
		for deadline := time.Now().Add(5 * time.Second); ; {
			q.mu.Lock()
			queued := len(q.waiters) > 0 && q.waiters[len(q.waiters)-1].who == who
			q.mu.Unlock()
			if queued {
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("%s never queued", who)
			}
			time.Sleep(time.Millisecond)
		}
	}
	acquire("heavy", 0)
	acquire("light", 0)
	acquire("paid", 5)

	// Release heavy's slots one by one. Expected grants: paid first
	// (higher tier), then light (same tier as heavy's waiter but heavy
	// still holds slots — deficit tie-break), then heavy (FIFO, last).
	for _, expect := range []string{"paid", "light", "heavy"} {
		q.Release("heavy")
		select {
		case got := <-grants:
			if got != expect {
				t.Fatalf("grant order: got %q, want %q", got, expect)
			}
		case <-time.After(5 * time.Second):
			t.Fatalf("no grant for %q", expect)
		}
	}
	for _, who := range []string{"paid", "light", "heavy"} {
		q.Release(who)
	}
	if q.InUse() != 0 || q.Tenants() != 0 {
		t.Errorf("slots still held after drain: in-use %d, tenants %d", q.InUse(), q.Tenants())
	}
}

func TestFairQueueAcquireCancel(t *testing.T) {
	q := NewFairQueue(1)
	if err := q.Acquire(context.Background(), "a", 0); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	if err := q.Acquire(ctx, "b", 0); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("canceled acquire = %v", err)
	}
	q.Release("a")
	// The canceled waiter left no debris: the slot is free again.
	if err := q.Acquire(context.Background(), "c", 0); err != nil {
		t.Fatal(err)
	}
	q.Release("c")
	if q.InUse() != 0 || q.Tenants() != 0 {
		t.Errorf("in-use %d, tenants %d after drain", q.InUse(), q.Tenants())
	}
}

func TestAdmissionContext(t *testing.T) {
	ctx := context.Background()
	if _, ok := FromContext(ctx); ok {
		t.Fatal("bare context reported admission metadata")
	}
	ctx = NewContext(ctx, Admission{Tenant: "t", Priority: 3})
	a, ok := FromContext(ctx)
	if !ok || a.Tenant != "t" || a.Priority != 3 {
		t.Fatalf("FromContext = %+v, %v", a, ok)
	}
}
