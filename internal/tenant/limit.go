package tenant

import (
	"sync"
	"time"
)

// pruneEvery is how many Allow calls pass between opportunistic sweeps
// of refilled buckets. Pruning keeps the map's size tracking tenants
// with recent traffic rather than every tenant ever seen.
const pruneEvery = 256

// Limiter paces per-tenant request admission with one token bucket per
// tenant. Buckets are created on first use and deleted once they refill
// completely (a full bucket is indistinguishable from no bucket), so the
// map stays bounded under many-tenant churn. Safe for concurrent use.
type Limiter struct {
	mu      sync.Mutex
	buckets map[string]*bucket
	ops     int
	now     func() time.Time // test seam
}

type bucket struct {
	tokens float64
	rate   float64 // the owner's admission rate (tokens/second)
	burst  float64 // the owner's bucket depth
	last   time.Time
}

// NewLimiter returns an empty Limiter.
func NewLimiter() *Limiter {
	return &Limiter{buckets: make(map[string]*bucket), now: time.Now}
}

// Allow spends one token from the tenant's bucket, reporting whether the
// request is admitted and, when it is not, how long until a token will
// be available. rate <= 0 admits everything; burst is clamped to at
// least 1.
func (l *Limiter) Allow(name string, rate float64, burst int) (bool, time.Duration) {
	if rate <= 0 {
		return true, 0
	}
	if burst < 1 {
		burst = 1
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	now := l.now()
	if l.ops++; l.ops >= pruneEvery {
		l.ops = 0
		l.pruneLocked(now)
	}
	b := l.buckets[name]
	if b == nil {
		b = &bucket{tokens: float64(burst), last: now}
		l.buckets[name] = b
	} else {
		b.tokens = min(float64(burst), b.tokens+rate*now.Sub(b.last).Seconds())
		b.last = now
	}
	// The caller is the bucket's owner, so these are the owner's current
	// limits; stamping them on every call keeps pruning honest even if a
	// tenant's configured rate ever changes between calls.
	b.rate, b.burst = rate, float64(burst)
	if b.tokens >= 1 {
		b.tokens--
		return true, 0
	}
	return false, time.Duration((1 - b.tokens) / rate * float64(time.Second))
}

// pruneLocked deletes every bucket that has refilled to its own full
// burst: absent and full are the same state, so the entry is pure
// memory. Each bucket is judged against the rate and burst its owner
// stamped on it, never the pruning caller's — judging a slow tenant's
// drained bucket by a fast caller's rate would delete it early, and the
// owner's next Allow would recreate it full, handing out a free burst.
func (l *Limiter) pruneLocked(now time.Time) {
	for name, b := range l.buckets {
		if b.tokens+b.rate*now.Sub(b.last).Seconds() >= b.burst {
			delete(l.buckets, name)
		}
	}
}

// Len reports how many buckets are live (for tests and metrics).
func (l *Limiter) Len() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.buckets)
}
