package tenant

import (
	"errors"
	"fmt"
	"sync"
)

// ErrOverLimit reports an Acquire that would push a tenant past its
// bound.
var ErrOverLimit = errors.New("tenant: reservation limit exceeded")

// ErrNoReservation reports a Release without a matching Acquire — a
// bookkeeping bug on the caller's side, surfaced instead of silently
// corrupting the counts.
var ErrNoReservation = errors.New("tenant: no reservation held")

// Reserver counts per-tenant reservations against per-call bounds. One
// instance tracks one resource (rfserved keeps two: running sweeps and
// queued jobs). A tenant's map entry exists only while its count is
// nonzero — with many tenants coming and going, the map's size tracks
// the tenants active right now, not every tenant ever seen.
//
// The zero value is not usable; call NewReserver. Safe for concurrent
// use.
type Reserver struct {
	mu     sync.Mutex
	counts map[string]int
}

// NewReserver returns an empty Reserver.
func NewReserver() *Reserver {
	return &Reserver{counts: make(map[string]int)}
}

// Acquire reserves n units for the tenant, failing with ErrOverLimit if
// that would exceed limit (limit <= 0 is unlimited). The acquisition is
// atomic: on failure the tenant's count is unchanged.
func (r *Reserver) Acquire(name string, n, limit int) error {
	if n <= 0 {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	held := r.counts[name]
	if limit > 0 && held+n > limit {
		return fmt.Errorf("%w: tenant %q holds %d, wants %d more, limit %d",
			ErrOverLimit, name, held, n, limit)
	}
	r.counts[name] = held + n
	return nil
}

// Release returns n units. Releasing more than is held reports
// ErrNoReservation and drops the count to zero rather than negative.
func (r *Reserver) Release(name string, n int) error {
	if n <= 0 {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	held, ok := r.counts[name]
	switch {
	case held > n:
		r.counts[name] = held - n
	default:
		// Zero (or an over-release, clamped): delete the entry so the
		// map stays bounded by the tenants currently holding something.
		delete(r.counts, name)
		if held < n {
			if !ok {
				return fmt.Errorf("%w: tenant %q", ErrNoReservation, name)
			}
			return fmt.Errorf("%w: tenant %q held %d, released %d",
				ErrNoReservation, name, held, n)
		}
	}
	return nil
}

// Held returns the tenant's current count.
func (r *Reserver) Held(name string) int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.counts[name]
}

// Tenants returns how many tenants currently hold reservations — the
// map's size, which the zero-count cleanup keeps bounded.
func (r *Reserver) Tenants() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.counts)
}

// Snapshot copies the current per-tenant counts (for metrics).
func (r *Reserver) Snapshot() map[string]int {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[string]int, len(r.counts))
	for k, v := range r.counts {
		out[k] = v
	}
	return out
}
