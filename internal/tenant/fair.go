package tenant

import (
	"context"
	"sync"
)

// FairQueue is a pool of execution slots with tenant-aware ordering.
// Acquire takes a slot immediately when one is free and nobody is
// waiting; otherwise the caller queues, and each freed slot goes to the
// waiter with the highest priority tier, ties broken by fewest slots the
// waiter's tenant already holds (its scheduling deficit), then by
// arrival order. A heavy tenant saturating the pool therefore cannot
// starve a light tenant: the light tenant's first waiter outranks every
// additional slot the heavy tenant asks for.
//
// With a single tenant the queue degrades to plain FIFO over a counting
// semaphore, which is how an untenanted rfserved uses it. Safe for
// concurrent use.
type FairQueue struct {
	mu      sync.Mutex
	free    int
	held    map[string]int // slots in use per tenant; entries deleted at zero
	waiters []*fairWaiter
	seq     uint64
}

type fairWaiter struct {
	who      string
	priority int
	seq      uint64
	ready    chan struct{}
	granted  bool
}

// NewFairQueue returns a queue with the given number of slots
// (minimum 1).
func NewFairQueue(slots int) *FairQueue {
	if slots < 1 {
		slots = 1
	}
	return &FairQueue{free: slots, held: make(map[string]int)}
}

// Acquire takes one slot for the tenant, blocking until one is granted
// or ctx ends. On success the caller must Release(who) with the same
// name. On ctx expiry no slot is held (a grant racing the cancellation
// is returned to the pool).
func (q *FairQueue) Acquire(ctx context.Context, who string, priority int) error {
	q.mu.Lock()
	if q.free > 0 && len(q.waiters) == 0 {
		q.free--
		q.held[who]++
		q.mu.Unlock()
		return nil
	}
	w := &fairWaiter{who: who, priority: priority, seq: q.seq, ready: make(chan struct{})}
	q.seq++
	q.waiters = append(q.waiters, w)
	q.mu.Unlock()

	select {
	case <-w.ready:
		return nil
	case <-ctx.Done():
		q.mu.Lock()
		if w.granted {
			// The grant won the race; hand the slot back.
			q.mu.Unlock()
			q.Release(who)
			return ctx.Err()
		}
		for i, other := range q.waiters {
			if other == w {
				q.waiters = append(q.waiters[:i], q.waiters[i+1:]...)
				break
			}
		}
		q.mu.Unlock()
		return ctx.Err()
	}
}

// Release returns the tenant's slot and grants it to the best waiter.
func (q *FairQueue) Release(who string) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if n := q.held[who]; n > 1 {
		q.held[who] = n - 1
	} else {
		delete(q.held, who) // bounded memory: no entry without a slot
	}
	q.free++
	q.grantLocked()
}

// grantLocked hands free slots to waiters, best first. q.mu held.
func (q *FairQueue) grantLocked() {
	for q.free > 0 && len(q.waiters) > 0 {
		best := 0
		for i := 1; i < len(q.waiters); i++ {
			if q.betterLocked(q.waiters[i], q.waiters[best]) {
				best = i
			}
		}
		w := q.waiters[best]
		q.waiters = append(q.waiters[:best], q.waiters[best+1:]...)
		q.free--
		q.held[w.who]++
		w.granted = true
		close(w.ready)
	}
}

// betterLocked reports whether waiter a should be served before b:
// higher priority, then lower tenant deficit (fewer held slots), then
// earlier arrival. q.mu held.
func (q *FairQueue) betterLocked(a, b *fairWaiter) bool {
	if a.priority != b.priority {
		return a.priority > b.priority
	}
	if ha, hb := q.held[a.who], q.held[b.who]; ha != hb {
		return ha < hb
	}
	return a.seq < b.seq
}

// Held reports the tenant's slots in use.
func (q *FairQueue) Held(who string) int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.held[who]
}

// InUse reports the total slots currently held.
func (q *FairQueue) InUse() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	total := 0
	for _, n := range q.held {
		total += n
	}
	return total
}

// Tenants reports how many tenants currently hold slots.
func (q *FairQueue) Tenants() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.held)
}
