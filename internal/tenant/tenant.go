package tenant

import (
	"context"
	"crypto/sha256"
	"crypto/subtle"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
)

// Anonymous is the name of the tenant every unauthenticated caller maps
// to. A tenants file may include an entry with this name (and no keys)
// to give unauthenticated traffic its own quotas.
const Anonymous = "anonymous"

// Limits bounds one tenant's traffic. A zero field is unlimited; the
// registry resolves the file's "0 = inherit the server default,
// -1 = explicitly unlimited" convention into this form at load time.
type Limits struct {
	// Rate is the sustained admission rate in requests per second,
	// shared by sweep submissions and result-stream opens.
	Rate float64
	// Burst is the token-bucket depth of Rate: how many requests may
	// land back-to-back before pacing kicks in. Ignored when Rate is
	// unlimited; a limited Rate with no burst resolves to max(1, ⌈Rate⌉).
	Burst int
	// MaxActive caps the tenant's concurrently running sweeps.
	MaxActive int
	// MaxQueued caps the tenant's unresolved (submitted but not yet
	// completed) jobs across all its sweeps.
	MaxQueued int
	// MaxStoreBytes caps the total bytes a tenant may upload to the
	// result object store over the server's lifetime (accepted PUT
	// bodies; deduplicated re-uploads of an existing key still count,
	// since admission is checked before the store is consulted).
	MaxStoreBytes int64
}

// Tenant is one resolved identity: who a request belongs to and what it
// is allowed to do. Values are immutable after Load.
type Tenant struct {
	// Name identifies the tenant in status documents and metrics.
	Name string
	// Priority is the scheduling tier; higher runs sooner under
	// contention (paid > free). Anonymous and unlisted fields are 0.
	Priority int
	// Limits are the tenant's resolved quotas (0 = unlimited).
	Limits Limits
}

// open is the tenant of deployments without a registry: anonymous,
// unlimited, priority 0 — exactly the pre-tenancy behavior.
var open = &Tenant{Name: Anonymous}

// Open returns the unlimited anonymous tenant used when no registry is
// configured.
func Open() *Tenant { return open }

// Registry authenticates API keys against the loaded tenant set. It is
// immutable after Load and safe for concurrent use.
type Registry struct {
	anonymous *Tenant
	keys      []registeredKey
	count     int
}

// registeredKey holds a key's SHA-256 digest, never the key itself:
// digests are fixed-size, so the authentication compare is constant
// time even across keys of different lengths (ConstantTimeCompare on
// raw keys returns immediately on a length mismatch, which would leak
// whether a guess's length matched a registered key).
type registeredKey struct {
	digest [sha256.Size]byte
	t      *Tenant
}

// tenantsFile is the JSON schema of the -tenants file:
//
//	{
//	  "tenants": [
//	    {"name": "acme", "keys": ["k1", "k2"], "priority": 10,
//	     "rate": 5, "burst": 10, "max_active": 2, "max_queued": 10000},
//	    {"name": "anonymous", "max_queued": 100}
//	  ]
//	}
//
// "key" and "keys" are interchangeable (multiple keys per tenant make
// rotation a two-step file edit with no outage window). For the numeric
// limit fields, 0 (or absence) inherits the server-wide default and -1
// is explicitly unlimited. The "anonymous" entry must have no keys; it
// configures unauthenticated traffic.
type tenantsFile struct {
	Tenants []tenantEntry `json:"tenants"`
}

type tenantEntry struct {
	Name      string   `json:"name"`
	Key       string   `json:"key,omitempty"`
	Keys      []string `json:"keys,omitempty"`
	Priority  int      `json:"priority,omitempty"`
	Rate      float64  `json:"rate,omitempty"`
	Burst     int      `json:"burst,omitempty"`
	MaxActive int      `json:"max_active,omitempty"`
	MaxQueued int      `json:"max_queued,omitempty"`
	// MaxStoreMB is the object-store upload cap in MiB (the file speaks
	// MiB for legibility; Limits stores bytes).
	MaxStoreMB int64 `json:"max_store_mb,omitempty"`
}

// NewRegistry returns a registry with no keyed tenants: every caller is
// anonymous, bounded by defaults. It is the -tenants-less way to put
// quotas on a single-tenant deployment.
func NewRegistry(defaults Limits) *Registry {
	return &Registry{
		anonymous: &Tenant{Name: Anonymous, Limits: resolveLimits(Limits{}, defaults)},
		count:     1,
	}
}

// Load parses a tenants file. Unknown fields, duplicate names, duplicate
// keys and keyless non-anonymous tenants are rejected loudly. defaults
// fills the limit fields each entry leaves at 0.
func Load(r io.Reader, defaults Limits) (*Registry, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var f tenantsFile
	if err := dec.Decode(&f); err != nil {
		return nil, fmt.Errorf("tenant: bad tenants file: %w", err)
	}
	reg := NewRegistry(defaults)
	names := map[string]bool{Anonymous: false} // value: seen in file
	seenKeys := map[string]string{}            // key → tenant name
	for i, e := range f.Tenants {
		if e.Name == "" {
			return nil, fmt.Errorf("tenant: tenants[%d] has no name", i)
		}
		if seen, ok := names[e.Name]; ok && (seen || e.Name != Anonymous) {
			return nil, fmt.Errorf("tenant: duplicate tenant %q", e.Name)
		}
		names[e.Name] = true
		keys := e.Keys
		if e.Key != "" {
			keys = append([]string{e.Key}, keys...)
		}
		t := &Tenant{
			Name:     e.Name,
			Priority: e.Priority,
			Limits: resolveLimits(Limits{
				Rate: e.Rate, Burst: e.Burst,
				MaxActive: e.MaxActive, MaxQueued: e.MaxQueued,
				MaxStoreBytes: storeMBToBytes(e.MaxStoreMB),
			}, defaults),
		}
		if e.Name == Anonymous {
			if len(keys) > 0 {
				return nil, fmt.Errorf("tenant: the %q tenant cannot have API keys", Anonymous)
			}
			reg.anonymous = t
			continue
		}
		if len(keys) == 0 {
			return nil, fmt.Errorf("tenant: tenant %q has no API keys", e.Name)
		}
		for _, k := range keys {
			if k == "" {
				return nil, fmt.Errorf("tenant: tenant %q has an empty API key", e.Name)
			}
			if other, dup := seenKeys[k]; dup {
				return nil, fmt.Errorf("tenant: tenants %q and %q share an API key", other, e.Name)
			}
			seenKeys[k] = e.Name
			reg.keys = append(reg.keys, registeredKey{digest: sha256.Sum256([]byte(k)), t: t})
		}
		reg.count++
	}
	return reg, nil
}

// LoadFile is Load over a file path.
func LoadFile(path string, defaults Limits) (*Registry, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("tenant: %w", err)
	}
	defer f.Close()
	return Load(f, defaults)
}

// storeMBToBytes converts a file entry's max_store_mb to bytes while
// preserving the 0 = inherit / negative = unlimited sentinels.
func storeMBToBytes(mb int64) int64 {
	if mb <= 0 {
		return mb
	}
	return mb << 20
}

// resolveLimits applies the file convention to one entry: 0 inherits
// the default, negative is explicitly unlimited (stored as 0).
func resolveLimits(l, def Limits) Limits {
	resolve := func(v, d int) int {
		if v == 0 {
			v = d
		}
		return max(v, 0)
	}
	resolve64 := func(v, d int64) int64 {
		if v == 0 {
			v = d
		}
		return max(v, 0)
	}
	out := Limits{
		Burst:         resolve(l.Burst, def.Burst),
		MaxActive:     resolve(l.MaxActive, def.MaxActive),
		MaxQueued:     resolve(l.MaxQueued, def.MaxQueued),
		MaxStoreBytes: resolve64(l.MaxStoreBytes, def.MaxStoreBytes),
	}
	out.Rate = l.Rate
	if out.Rate == 0 {
		out.Rate = def.Rate
	}
	out.Rate = math.Max(out.Rate, 0)
	if out.Rate > 0 && out.Burst <= 0 {
		out.Burst = max(1, int(math.Ceil(out.Rate)))
	}
	return out
}

// Authenticate resolves an API key to its tenant. An empty key is the
// anonymous tenant; an unknown key is (nil, false). The presented key is
// hashed once and its fixed-size digest compared against every
// registered digest on every call, so the response timing reveals
// neither how nearly a guess matched nor whether its length matched any
// registered key.
func (r *Registry) Authenticate(key string) (*Tenant, bool) {
	if key == "" {
		return r.anonymous, true
	}
	var found *Tenant
	kd := sha256.Sum256([]byte(key))
	for i := range r.keys {
		if subtle.ConstantTimeCompare(r.keys[i].digest[:], kd[:]) == 1 {
			found = r.keys[i].t
		}
	}
	if found == nil {
		return nil, false
	}
	return found, true
}

// Anonymous returns the tenant unauthenticated callers resolve to.
func (r *Registry) Anonymous() *Tenant { return r.anonymous }

// Len is the number of tenants, the anonymous one included.
func (r *Registry) Len() int { return r.count }

// Admission is the per-request tenancy metadata threaded through
// contexts into the scheduler seams (server fair queue, dispatch
// priority queue).
type Admission struct {
	// Tenant is the owning tenant's name.
	Tenant string
	// Priority is the sweep's effective scheduling tier.
	Priority int
}

type admissionKey struct{}

// NewContext attaches admission metadata to ctx.
func NewContext(ctx context.Context, a Admission) context.Context {
	return context.WithValue(ctx, admissionKey{}, a)
}

// FromContext extracts the admission metadata; a context without any
// (a direct library call, a test) reports the zero Admission and false.
func FromContext(ctx context.Context) (Admission, bool) {
	a, ok := ctx.Value(admissionKey{}).(Admission)
	return a, ok
}
