// Package tenant is the multi-tenant admission layer of rfserved:
// API-key authentication, per-tenant reservation accounting, token-bucket
// rate limiting and fair-share scheduling. It holds no HTTP or simulation
// code — internal/server wires its pieces into the request path, and
// internal/dispatch reads the admission metadata it threads through
// contexts to order the fleet queue.
//
// The pieces:
//
//   - Registry — tenants loaded from a JSON file, each with one or more
//     API keys (so keys rotate without a restart gap), a priority tier
//     and resolved Limits. Lookup compares fixed-size key digests in
//     constant time over every key, so response timing leaks neither how
//     close a guess came nor whether its length matched a real key.
//   - Reserver — bounded per-tenant counts (concurrent sweeps, queued
//     jobs) whose map entries are deleted when a count returns to zero,
//     so memory stays bounded under many-tenant churn.
//   - Limiter — per-tenant token buckets for submit/stream-open rates.
//   - FairQueue — a slot pool that orders waiting tenants by (priority
//     tier, fewest slots already held), so a light tenant's small sweep
//     is never parked behind a heavy tenant's monster sweep. A slot is
//     one thread of simulation: a lockstep batch (several configurations
//     behind one shared trace pass) occupies a single slot, the same as
//     one sequential job.
//   - Admission — the per-request metadata (tenant name, priority)
//     carried through contexts from the HTTP layer down to the
//     scheduler and the fleet queue.
//
// Every caller without a key is the "anonymous" tenant; a deployment
// with no tenants file serves anonymous unlimited, which keeps existing
// single-tenant setups working unchanged.
//
// See docs/ARCHITECTURE.md for how admission fits into the full request
// path.
package tenant
