package tenant

import (
	"context"
	"errors"
	"fmt"
	"math/rand/v2"
	"sync"
	"sync/atomic"
	"testing"
)

// TestReserverTorture hammers one Reserver from many goroutines across a
// handful of tenants, the shape under which the per-tenant accounting
// has to stay exact: no goroutine ever observes its tenant over the
// limit, every successful Acquire is paired with a Release, and when the
// dust settles the counts are zero and the map is empty. Run under
// -race.
func TestReserverTorture(t *testing.T) {
	const (
		goroutines = 64
		tenants    = 7
		iters      = 400
		limit      = 5
	)
	r := NewReserver()
	var acquired, rejected atomic.Int64

	type held struct {
		name string
		n    int
	}
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(seed uint64) {
			defer wg.Done()
			rng := rand.New(rand.NewPCG(seed, seed^0x9e3779b97f4a7c15))
			// Each goroutine keeps reservations open across iterations so
			// tenants genuinely contend for their limits.
			var open []held
			for i := 0; i < iters; i++ {
				if len(open) > 0 && rng.IntN(3) == 0 {
					last := len(open) - 1
					h := open[last]
					open = open[:last]
					if err := r.Release(h.name, h.n); err != nil {
						t.Errorf("Release(%s, %d): %v", h.name, h.n, err)
					}
					continue
				}
				id := rng.IntN(tenants)
				name := fmt.Sprintf("tenant-%d", id)
				n := 1 + rng.IntN(2)
				if err := r.Acquire(name, n, limit); err != nil {
					if !errors.Is(err, ErrOverLimit) {
						t.Errorf("Acquire(%s, %d): %v", name, n, err)
						return
					}
					rejected.Add(1)
					continue
				}
				acquired.Add(1)
				if got := r.Held(name); got > limit {
					t.Errorf("Held(%s) = %d, limit %d", name, got, limit)
				}
				open = append(open, held{name, n})
			}
			for _, h := range open {
				if err := r.Release(h.name, h.n); err != nil {
					t.Errorf("drain Release(%s, %d): %v", h.name, h.n, err)
				}
			}
		}(uint64(g + 1))
	}
	wg.Wait()

	if acquired.Load() == 0 || rejected.Load() == 0 {
		t.Fatalf("torture did not exercise both paths: %d acquired, %d rejected",
			acquired.Load(), rejected.Load())
	}
	for id := 0; id < tenants; id++ {
		name := fmt.Sprintf("tenant-%d", id)
		if got := r.Held(name); got != 0 {
			t.Errorf("Held(%s) = %d after drain, want 0", name, got)
		}
	}
	// The defining property from the reservation-accounting exemplars:
	// once every reservation is returned, the tenant map is empty, not
	// full of zero-count tombstones.
	if got := r.Tenants(); got != 0 {
		t.Errorf("Tenants() = %d after drain, want 0 (map leaks entries): %v",
			got, r.Snapshot())
	}
}

// TestFairQueueTorture drives the slot pool from many tenants at mixed
// priorities with occasional cancellations, asserting the pool never
// over-grants and drains to empty. Run under -race.
func TestFairQueueTorture(t *testing.T) {
	const (
		slots      = 4
		goroutines = 48
		tenants    = 6
		iters      = 60
	)
	q := NewFairQueue(slots)
	var inUse atomic.Int64

	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(seed uint64) {
			defer wg.Done()
			rng := rand.New(rand.NewPCG(seed, seed^0xdeadbeef))
			for i := 0; i < iters; i++ {
				who := fmt.Sprintf("tenant-%d", rng.IntN(tenants))
				ctx := context.Background()
				cancel := context.CancelFunc(func() {})
				if rng.IntN(4) == 0 {
					// Some acquires give up almost immediately, racing
					// the grant path.
					ctx, cancel = context.WithCancel(ctx)
					go cancel()
				}
				err := q.Acquire(ctx, who, rng.IntN(3))
				cancel()
				if err != nil {
					continue
				}
				if now := inUse.Add(1); now > slots {
					t.Errorf("%d slots in use, pool has %d", now, slots)
				}
				inUse.Add(-1)
				q.Release(who)
			}
		}(uint64(g + 1))
	}
	wg.Wait()

	if got := q.InUse(); got != 0 {
		t.Errorf("InUse = %d after drain, want 0", got)
	}
	if got := q.Tenants(); got != 0 {
		t.Errorf("Tenants = %d after drain, want 0 (held map leaks entries)", got)
	}
	// All slots must still be grantable — none lost to a grant/cancel race.
	for i := 0; i < slots; i++ {
		if err := q.Acquire(context.Background(), "probe", 0); err != nil {
			t.Fatalf("slot %d not grantable after torture: %v", i, err)
		}
	}
	for i := 0; i < slots; i++ {
		q.Release("probe")
	}
}

// TestLimiterTorture checks the token bucket under concurrency: with N
// tenants hammered in parallel the admitted count per tenant never
// exceeds burst + rate*elapsed (checked loosely via the real clock), and
// the bucket map stays consistent. Run under -race.
func TestLimiterTorture(t *testing.T) {
	const (
		goroutines = 32
		tenants    = 4
		iters      = 300
		burst      = 10
	)
	l := NewLimiter()
	var admitted [tenants]atomic.Int64

	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				id := i % tenants
				ok, wait := l.Allow(fmt.Sprintf("tenant-%d", id), 1, burst)
				if ok {
					admitted[id].Add(1)
				} else if wait <= 0 {
					t.Errorf("denied with non-positive retry-after %v", wait)
				}
			}
		}()
	}
	wg.Wait()

	// The whole run takes well under a minute; at 1 req/s each tenant can
	// have earned at most burst + ~60 extra tokens.
	for id := 0; id < tenants; id++ {
		if got := admitted[id].Load(); got > burst+60 {
			t.Errorf("tenant-%d admitted %d requests, want <= %d", id, got, burst+60)
		}
		if admitted[id].Load() < burst {
			t.Errorf("tenant-%d admitted %d, want at least the burst %d", id, admitted[id].Load(), burst)
		}
	}
}
