package bpred

import (
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

func TestAlwaysTakenLearned(t *testing.T) {
	g := NewGshare(10)
	const pc = 0x4000
	for i := 0; i < 100; i++ {
		g.Update(pc, true)
	}
	if !g.Predict(pc) {
		t.Error("predictor failed to learn an always-taken branch")
	}
	if rate := g.MispredictRate(); rate > 0.05 {
		t.Errorf("mispredict rate %v too high for trivial branch", rate)
	}
}

func TestAlwaysNotTakenLearned(t *testing.T) {
	g := NewGshare(10)
	const pc = 0x4000
	for i := 0; i < 100; i++ {
		g.Update(pc, false)
	}
	if g.Predict(pc) {
		t.Error("predictor failed to learn an always-not-taken branch")
	}
}

func TestAlternatingPatternLearned(t *testing.T) {
	// Gshare keys on global history, so a strict T/NT alternation is
	// perfectly predictable after warmup.
	g := NewGshare(14)
	const pc = 0x1000
	taken := false
	warm := 200
	miss := 0
	for i := 0; i < 2000; i++ {
		if i >= warm && g.Predict(pc) != taken {
			miss++
		}
		g.Update(pc, taken)
		taken = !taken
	}
	if miss > 10 {
		t.Errorf("alternating pattern: %d misses after warmup", miss)
	}
}

func TestLoopPatternLearned(t *testing.T) {
	// A loop branch taken 7 times then not taken once — classic gshare food.
	g := NewGshare(16)
	const pc = 0x2000
	miss := 0
	total := 0
	for iter := 0; iter < 500; iter++ {
		for i := 0; i < 8; i++ {
			taken := i != 7
			if iter > 50 {
				total++
				if g.Predict(pc) != taken {
					miss++
				}
			}
			g.Update(pc, taken)
		}
	}
	if rate := float64(miss) / float64(total); rate > 0.05 {
		t.Errorf("loop pattern mispredict rate %.3f, want < 0.05", rate)
	}
}

func TestRandomBranchNearChance(t *testing.T) {
	g := NewGshare(16)
	r := rng.New(1, 1)
	const pc = 0x3000
	for i := 0; i < 20000; i++ {
		g.Update(pc, r.Bernoulli(0.5))
	}
	rate := g.MispredictRate()
	if rate < 0.35 || rate > 0.65 {
		t.Errorf("random branch mispredict rate %.3f, want ≈0.5", rate)
	}
}

func TestStatsCounting(t *testing.T) {
	g := NewGshare(8)
	g.Update(0, true)
	g.Update(0, true)
	if g.Lookups() != 2 {
		t.Errorf("Lookups = %d", g.Lookups())
	}
	if g.Mispredicts() > 2 {
		t.Errorf("Mispredicts = %d", g.Mispredicts())
	}
}

func TestReset(t *testing.T) {
	g := NewGshare(8)
	for i := 0; i < 50; i++ {
		g.Update(uint64(i*4), i%2 == 0)
	}
	g.Reset()
	if g.Lookups() != 0 || g.Mispredicts() != 0 {
		t.Error("Reset did not clear statistics")
	}
	if g.MispredictRate() != 0 {
		t.Error("MispredictRate nonzero after reset")
	}
}

func TestNewPanicsOnBadBits(t *testing.T) {
	for _, bits := range []uint{0, 31} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewGshare(%d) did not panic", bits)
				}
			}()
			NewGshare(bits)
		}()
	}
}

// Property: Update's reported correctness always matches the Predict that
// immediately preceded it.
func TestQuickPredictUpdateAgree(t *testing.T) {
	f := func(pcs []uint16, outcomes []bool) bool {
		g := NewGshare(12)
		n := len(pcs)
		if len(outcomes) < n {
			n = len(outcomes)
		}
		for i := 0; i < n; i++ {
			pc := uint64(pcs[i]) * 4
			pred := g.Predict(pc)
			correct := g.Update(pc, outcomes[i])
			if correct != (pred == outcomes[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: mispredict count never exceeds lookup count.
func TestQuickCountsSane(t *testing.T) {
	f := func(seed uint64, n uint16) bool {
		g := NewGshare(10)
		r := rng.New(seed, 0)
		for i := 0; i < int(n%2000); i++ {
			g.Update(uint64(r.Intn(1<<20))*4, r.Bernoulli(0.6))
		}
		return g.Mispredicts() <= g.Lookups()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
