// Package bpred implements the branch predictor used by the simulated
// processor: a gshare predictor with 64K 2-bit counters, per Table 1 of the
// paper ("Gshare with 64K entries").
package bpred

// Gshare is a global-history XOR-indexed pattern history table of 2-bit
// saturating counters.
type Gshare struct {
	table    []uint8
	mask     uint64
	histMask uint64
	history  uint64
	bits     uint

	// statistics
	lookups     uint64
	mispredicts uint64
}

// NewGshare returns a predictor with 2^bits two-bit counters (the paper
// uses bits=16, i.e. 64K entries) and a history length equal to the index
// width. Counters start weakly taken.
func NewGshare(bits uint) *Gshare { return NewGshareHist(bits, bits) }

// NewGshareHist returns a gshare predictor with 2^bits counters and a
// global history of histBits branches (histBits ≤ bits). Shorter histories
// trade pattern depth for faster warmup and less destructive interference —
// valuable at this repository's simulation lengths, which are ~500× shorter
// than the paper's 100M-instruction runs.
func NewGshareHist(bits, histBits uint) *Gshare {
	if bits == 0 || bits > 30 {
		panic("bpred: table size bits out of range")
	}
	if histBits > bits {
		panic("bpred: history longer than index")
	}
	size := 1 << bits
	t := make([]uint8, size)
	for i := range t {
		t[i] = 2 // weakly taken
	}
	return &Gshare{
		table: t, mask: uint64(size - 1),
		histMask: uint64(1<<histBits - 1), bits: bits,
	}
}

func (g *Gshare) index(pc uint64) uint64 {
	return ((pc >> 2) ^ g.history) & g.mask
}

// Predict returns the predicted direction for the branch at pc without
// updating any state.
func (g *Gshare) Predict(pc uint64) bool {
	return g.table[g.index(pc)] >= 2
}

// Update records the actual outcome of the branch at pc, trains the counter
// that produced the prediction, shifts the global history, and reports
// whether the prediction was correct. It must be called once per executed
// branch, in program order.
func (g *Gshare) Update(pc uint64, taken bool) (correct bool) {
	idx := g.index(pc)
	pred := g.table[idx] >= 2
	if taken {
		if g.table[idx] < 3 {
			g.table[idx]++
		}
	} else {
		if g.table[idx] > 0 {
			g.table[idx]--
		}
	}
	g.history = (g.history << 1) & g.histMask
	if taken {
		g.history |= 1
	}
	g.lookups++
	correct = pred == taken
	if !correct {
		g.mispredicts++
	}
	return correct
}

// Lookups returns the number of Update calls.
func (g *Gshare) Lookups() uint64 { return g.lookups }

// Mispredicts returns the number of incorrect predictions.
func (g *Gshare) Mispredicts() uint64 { return g.mispredicts }

// MispredictRate returns mispredictions per lookup, or 0 if no lookups.
func (g *Gshare) MispredictRate() float64 {
	if g.lookups == 0 {
		return 0
	}
	return float64(g.mispredicts) / float64(g.lookups)
}

// Reset clears history, counters and statistics.
func (g *Gshare) Reset() {
	for i := range g.table {
		g.table[i] = 2
	}
	g.history = 0
	g.lookups = 0
	g.mispredicts = 0
}
