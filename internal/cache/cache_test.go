package cache

import (
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

func tiny() Config {
	return Config{SizeBytes: 256, LineBytes: 32, Ways: 2, HitCycles: 1, MissCycles: 6}
}

func TestColdMissThenHit(t *testing.T) {
	c := New(tiny())
	r := c.Access(0x100, false, 0)
	if r.Hit {
		t.Error("cold access hit")
	}
	if r.Latency != 7 {
		t.Errorf("miss latency = %d, want 7", r.Latency)
	}
	r = c.Access(0x100, false, 10)
	if !r.Hit || r.Latency != 1 {
		t.Errorf("second access: hit=%v lat=%d, want hit lat=1", r.Hit, r.Latency)
	}
}

func TestSameLineHits(t *testing.T) {
	c := New(tiny())
	c.Access(0x100, false, 0)
	if r := c.Access(0x11f, false, 1); !r.Hit {
		t.Error("access within the same 32B line missed")
	}
	if r := c.Access(0x120, false, 2); r.Hit {
		t.Error("access to the next line hit unexpectedly")
	}
}

func TestAssociativityAndLRU(t *testing.T) {
	c := New(tiny()) // 4 sets × 2 ways, 32B lines; set stride = 128B
	// Three lines mapping to the same set: 0x000, 0x080... set = (addr>>5)&3.
	a := uint64(0x000) // set 0
	b := uint64(0x080) // set 0 (0x80>>5 = 4, &3 = 0)
	d := uint64(0x100) // set 0
	c.Access(a, false, 0)
	c.Access(b, false, 1)
	c.Access(a, false, 2) // touch a: b becomes LRU
	c.Access(d, false, 3) // evicts b
	if r := c.Access(a, false, 4); !r.Hit {
		t.Error("a should still be resident")
	}
	if r := c.Access(b, false, 5); r.Hit {
		t.Error("b should have been evicted (LRU)")
	}
}

func TestDirtyEvictionPenalty(t *testing.T) {
	cfg := tiny()
	cfg.WriteBack = true
	cfg.DirtyMissCycles = 8
	c := New(cfg)
	a, b, d := uint64(0x000), uint64(0x080), uint64(0x100) // same set
	c.Access(a, true, 0)                                   // dirty
	c.Access(b, false, 1)
	r := c.Access(d, false, 2) // evicts a (dirty, LRU)
	if r.Hit {
		t.Fatal("expected miss")
	}
	if r.Latency != 1+8 {
		t.Errorf("dirty-evict miss latency = %d, want 9", r.Latency)
	}
	if c.DirtyEvictions() != 1 {
		t.Errorf("DirtyEvictions = %d, want 1", c.DirtyEvictions())
	}
}

func TestCleanEvictionUsesCleanPenalty(t *testing.T) {
	cfg := tiny()
	cfg.WriteBack = true
	cfg.DirtyMissCycles = 8
	c := New(cfg)
	a, b, d := uint64(0x000), uint64(0x080), uint64(0x100)
	c.Access(a, false, 0) // clean
	c.Access(b, false, 1)
	r := c.Access(d, false, 2) // evicts clean a
	if r.Latency != 1+6 {
		t.Errorf("clean-evict miss latency = %d, want 7", r.Latency)
	}
}

func TestWriteMarksDirtyOnlyWhenWriteBack(t *testing.T) {
	c := New(tiny()) // not write-back
	a, b, d := uint64(0x000), uint64(0x080), uint64(0x100)
	c.Access(a, true, 0)
	c.Access(b, false, 1)
	c.Access(d, false, 2)
	if c.DirtyEvictions() != 0 {
		t.Error("read-only cache recorded a dirty eviction")
	}
}

func TestMSHRLimitStalls(t *testing.T) {
	cfg := tiny()
	cfg.MSHRs = 2
	c := New(cfg)
	// Three distinct-set misses in the same cycle: third must stall until
	// the first completes (cycle 7).
	r1 := c.Access(0x0000, false, 0)
	r2 := c.Access(0x1020, false, 0)
	r3 := c.Access(0x2040, false, 0)
	if r1.MSHRStall != 0 || r2.MSHRStall != 0 {
		t.Errorf("first two misses stalled: %d %d", r1.MSHRStall, r2.MSHRStall)
	}
	if r3.MSHRStall == 0 {
		t.Error("third simultaneous miss did not stall on MSHRs")
	}
	if r3.Latency != r3.MSHRStall+7 {
		t.Errorf("latency %d != stall %d + 7", r3.Latency, r3.MSHRStall)
	}
}

func TestMSHRsFreeOverTime(t *testing.T) {
	cfg := tiny()
	cfg.MSHRs = 1
	c := New(cfg)
	c.Access(0x0000, false, 0) // completes at 7
	r := c.Access(0x1020, false, 100)
	if r.MSHRStall != 0 {
		t.Errorf("miss long after completion stalled %d cycles", r.MSHRStall)
	}
}

func TestStats(t *testing.T) {
	c := New(tiny())
	c.Access(0x0, false, 0)
	c.Access(0x0, false, 1)
	c.Access(0x40, false, 2)
	if c.Accesses() != 3 || c.Misses() != 2 {
		t.Errorf("accesses=%d misses=%d", c.Accesses(), c.Misses())
	}
	if rate := c.MissRate(); rate < 0.66 || rate > 0.67 {
		t.Errorf("MissRate = %v", rate)
	}
	c.Reset()
	if c.Accesses() != 0 || c.MissRate() != 0 {
		t.Error("Reset did not clear stats")
	}
	if r := c.Access(0x0, false, 0); r.Hit {
		t.Error("Reset did not invalidate lines")
	}
}

func TestPaperConfigs(t *testing.T) {
	ic := New(ICacheConfig())
	dc := New(DCacheConfig())
	if r := ic.Access(0x1000, false, 0); r.Latency != 7 {
		t.Errorf("I-cache miss latency = %d, want 7", r.Latency)
	}
	if r := ic.Access(0x1000, false, 1); r.Latency != 1 {
		t.Errorf("I-cache hit latency = %d, want 1", r.Latency)
	}
	if r := dc.Access(0x1000, false, 0); r.Latency != 7 {
		t.Errorf("D-cache clean miss latency = %d, want 7", r.Latency)
	}
}

func TestNewPanicsOnBadGeometry(t *testing.T) {
	bad := []Config{
		{SizeBytes: 0, LineBytes: 32, Ways: 2},
		{SizeBytes: 256, LineBytes: 0, Ways: 2},
		{SizeBytes: 256, LineBytes: 32, Ways: 0},
		{SizeBytes: 300, LineBytes: 32, Ways: 2}, // not a power of two
		{SizeBytes: 256, LineBytes: 24, Ways: 2}, // line not power of two
	}
	for i, cfg := range bad {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("config %d did not panic", i)
				}
			}()
			New(cfg)
		}()
	}
}

func TestWorkingSetFitsHasLowMissRate(t *testing.T) {
	c := New(ICacheConfig()) // 64KB
	r := rng.New(7, 7)
	for i := 0; i < 50000; i++ {
		c.Access(uint64(r.Intn(32<<10)), false, uint64(i)) // 32KB working set
	}
	if rate := c.MissRate(); rate > 0.05 {
		t.Errorf("fitting working set miss rate %.3f, want small", rate)
	}
}

func TestThrashingWorkingSetHasHighMissRate(t *testing.T) {
	c := New(ICacheConfig())
	r := rng.New(7, 9)
	for i := 0; i < 50000; i++ {
		c.Access(uint64(r.Intn(16<<20)), false, uint64(i)) // 16MB working set
	}
	if rate := c.MissRate(); rate < 0.5 {
		t.Errorf("thrashing miss rate %.3f, want high", rate)
	}
}

// Property: an access immediately repeated always hits, and latency is
// always ≥ HitCycles.
func TestQuickRepeatHits(t *testing.T) {
	f := func(addrs []uint32) bool {
		c := New(tiny())
		now := uint64(0)
		for _, a := range addrs {
			addr := uint64(a)
			r1 := c.Access(addr, false, now)
			if r1.Latency < 1 {
				return false
			}
			r2 := c.Access(addr, false, now+1)
			if !r2.Hit {
				return false
			}
			now += 2
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: misses ≤ accesses and eviction counters are consistent.
func TestQuickCounterInvariants(t *testing.T) {
	f := func(seed uint64, n uint16) bool {
		cfg := tiny()
		cfg.WriteBack = true
		c := New(cfg)
		r := rng.New(seed, 3)
		for i := 0; i < int(n); i++ {
			c.Access(uint64(r.Intn(4096)), r.Bernoulli(0.3), uint64(i))
		}
		return c.Misses() <= c.Accesses() &&
			c.Evictions() <= c.Misses() &&
			c.DirtyEvictions() <= c.Evictions()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
