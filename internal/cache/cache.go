// Package cache models the instruction and data caches of the simulated
// processor (Table 1 of the paper): 64KB, 2-way set-associative, 64-byte
// lines, 1-cycle hits. The I-cache has a 6-cycle miss time. The D-cache is
// write-back with a 6-cycle miss time (8 cycles if the victim is dirty) and
// supports up to 16 outstanding misses (MSHRs).
package cache

// Config describes one cache.
type Config struct {
	// SizeBytes is the total capacity.
	SizeBytes int
	// LineBytes is the line size.
	LineBytes int
	// Ways is the set associativity.
	Ways int
	// HitCycles is the access latency on a hit.
	HitCycles int
	// MissCycles is the latency added by a clean miss.
	MissCycles int
	// DirtyMissCycles is the latency added by a miss that evicts a dirty
	// line (write-back caches); if 0, MissCycles is used.
	DirtyMissCycles int
	// WriteBack selects write-back (true) or read-only (false) behaviour.
	WriteBack bool
	// MSHRs bounds the number of outstanding misses; 0 means unlimited.
	MSHRs int
}

// ICacheConfig returns the paper's instruction cache configuration.
func ICacheConfig() Config {
	return Config{SizeBytes: 64 << 10, LineBytes: 64, Ways: 2, HitCycles: 1, MissCycles: 6}
}

// DCacheConfig returns the paper's data cache configuration.
func DCacheConfig() Config {
	return Config{
		SizeBytes: 64 << 10, LineBytes: 64, Ways: 2, HitCycles: 1,
		MissCycles: 6, DirtyMissCycles: 8, WriteBack: true, MSHRs: 16,
	}
}

type line struct {
	tag   uint64
	valid bool
	dirty bool
	// lru is a per-set timestamp; larger = more recently used.
	lru uint64
}

// Cache is a set-associative cache timing model. It tracks hit/miss status
// and outstanding-miss occupancy; it stores no data (the simulator is
// timing-only).
type Cache struct {
	cfg      Config
	sets     [][]line
	setMask  uint64
	lineBits uint
	tick     uint64

	// outstanding tracks in-flight miss completion times (absolute cycles)
	// for MSHR accounting.
	outstanding []uint64

	accesses  uint64
	misses    uint64
	evictions uint64
	dirtyEvs  uint64
}

// New builds a cache from cfg. It panics on non-power-of-two geometry,
// matching how hardware parameterization is validated at design time.
func New(cfg Config) *Cache {
	if cfg.SizeBytes <= 0 || cfg.LineBytes <= 0 || cfg.Ways <= 0 {
		panic("cache: non-positive geometry")
	}
	nLines := cfg.SizeBytes / cfg.LineBytes
	if nLines%cfg.Ways != 0 {
		panic("cache: lines not divisible by ways")
	}
	nSets := nLines / cfg.Ways
	if nSets&(nSets-1) != 0 || cfg.LineBytes&(cfg.LineBytes-1) != 0 {
		panic("cache: geometry must be a power of two")
	}
	lineBits := uint(0)
	for 1<<lineBits < cfg.LineBytes {
		lineBits++
	}
	sets := make([][]line, nSets)
	backing := make([]line, nSets*cfg.Ways)
	for i := range sets {
		sets[i] = backing[i*cfg.Ways : (i+1)*cfg.Ways]
	}
	if cfg.DirtyMissCycles == 0 {
		cfg.DirtyMissCycles = cfg.MissCycles
	}
	return &Cache{cfg: cfg, sets: sets, setMask: uint64(nSets - 1), lineBits: lineBits}
}

// Result reports the outcome of one access.
type Result struct {
	// Hit reports whether the access hit.
	Hit bool
	// Latency is the total access latency in cycles, including any miss
	// penalty and MSHR stall.
	Latency int
	// MSHRStall is the portion of Latency spent waiting for a free MSHR.
	MSHRStall int
}

func (c *Cache) setIndex(addr uint64) uint64 { return (addr >> c.lineBits) & c.setMask }
func (c *Cache) tag(addr uint64) uint64      { return addr >> c.lineBits >> uint(popcount(c.setMask)) }

func popcount(x uint64) int {
	n := 0
	for x != 0 {
		x &= x - 1
		n++
	}
	return n
}

// Access performs a read (isWrite=false) or write (isWrite=true) at addr at
// absolute cycle now and returns the timing result. The model is
// non-blocking up to the MSHR limit: concurrent misses overlap, and an
// access that needs an MSHR when all are busy is delayed until one frees.
func (c *Cache) Access(addr uint64, isWrite bool, now uint64) Result {
	c.tick++
	c.accesses++
	set := c.sets[c.setIndex(addr)]
	tag := c.tag(addr)

	for i := range set {
		if set[i].valid && set[i].tag == tag {
			set[i].lru = c.tick
			if isWrite && c.cfg.WriteBack {
				set[i].dirty = true
			}
			return Result{Hit: true, Latency: c.cfg.HitCycles}
		}
	}

	// Miss: find victim (invalid first, else LRU).
	c.misses++
	victim := 0
	for i := range set {
		if !set[i].valid {
			victim = i
			break
		}
		if set[i].lru < set[victim].lru {
			victim = i
		}
	}
	penalty := c.cfg.MissCycles
	if set[victim].valid {
		c.evictions++
		if set[victim].dirty {
			c.dirtyEvs++
			penalty = c.cfg.DirtyMissCycles
		}
	}
	stall := c.reserveMSHR(now)
	set[victim] = line{tag: tag, valid: true, dirty: isWrite && c.cfg.WriteBack, lru: c.tick}
	lat := c.cfg.HitCycles + penalty + stall
	c.retireMSHR(now + uint64(lat))
	return Result{Hit: false, Latency: lat, MSHRStall: stall}
}

// reserveMSHR returns the number of cycles the access must wait for a free
// MSHR at cycle now, and drops completed entries.
func (c *Cache) reserveMSHR(now uint64) int {
	if c.cfg.MSHRs <= 0 {
		return 0
	}
	// Drop completed misses.
	live := c.outstanding[:0]
	for _, t := range c.outstanding {
		if t > now {
			live = append(live, t)
		}
	}
	c.outstanding = live
	if len(c.outstanding) < c.cfg.MSHRs {
		return 0
	}
	// Wait for the earliest completion.
	earliest := c.outstanding[0]
	for _, t := range c.outstanding {
		if t < earliest {
			earliest = t
		}
	}
	return int(earliest - now)
}

func (c *Cache) retireMSHR(completion uint64) {
	if c.cfg.MSHRs <= 0 {
		return
	}
	c.outstanding = append(c.outstanding, completion)
}

// Accesses returns the total number of accesses.
func (c *Cache) Accesses() uint64 { return c.accesses }

// Misses returns the total number of misses.
func (c *Cache) Misses() uint64 { return c.misses }

// Evictions returns the number of valid lines replaced.
func (c *Cache) Evictions() uint64 { return c.evictions }

// DirtyEvictions returns the number of dirty lines replaced.
func (c *Cache) DirtyEvictions() uint64 { return c.dirtyEvs }

// MissRate returns misses per access, or 0 with no accesses.
func (c *Cache) MissRate() float64 {
	if c.accesses == 0 {
		return 0
	}
	return float64(c.misses) / float64(c.accesses)
}

// Reset invalidates all lines and clears statistics.
func (c *Cache) Reset() {
	for _, set := range c.sets {
		for i := range set {
			set[i] = line{}
		}
	}
	c.outstanding = c.outstanding[:0]
	c.accesses, c.misses, c.evictions, c.dirtyEvs = 0, 0, 0, 0
	c.tick = 0
}
