// Package core implements the register file architectures studied in
// "Multiple-Banked Register File Architectures" (Cruz, González, Valero,
// Topham; ISCA 2000) — the paper's primary contribution.
//
// Three architectures are provided, all behind the File interface consumed
// by the pipeline simulator (internal/sim):
//
//   - Monolithic: a single-banked register file with a 1- or 2-cycle access
//     time and either a full bypass network or a single (last) level of
//     bypass. These are the paper's baselines.
//   - CacheFile: the paper's proposal — a two-level ("register file cache")
//     organization with a small 1-cycle fully-associative upper bank that
//     alone feeds the functional units, a large lower bank that receives
//     every result, configurable caching policies (non-bypass / ready),
//     fetch-on-demand, and the prefetch-first-pair prefetching scheme.
//   - OneLevel: the single-level multiple-banked organization the paper
//     outlines in Section 3 and lists as ongoing work in Section 6
//     (implemented here as an extension).
//
// # Timing contract
//
// The simulator issues an instruction at cycle s; the instruction reads
// registers during cycles s+1..s+L (L = ReadLatency), begins execution at
// s+L+1, and its result completes at c and drives the result/write-back bus
// at the cycle w ≥ c+1 returned by ReserveWriteback. The register file
// writes in the first half of cycle w and supports write-through reads, so
// a read stage starting at cycle w sees the value: instructions issuing at
// t ≥ w−1 read through a port. The bypass network covers the gap between
// execution-to-execution forwarding and the file:
//
//   - with a full bypass network (L levels: one per cycle between the
//     producer's completion and the earliest file read), a consumer may
//     issue as early as t = w−(L+1), executing back-to-back at c+1;
//   - with a single level of bypass — the *last* level, which is the one
//     that avoids availability holes (paper, Section 2) — a consumer may
//     issue no earlier than t = w−2, one cycle later than full bypass
//     allows when L = 2.
//
// For L=1 the two cases coincide (one level suffices). Operands obtained
// from the bypass network (t ≤ w−2) consume no register file read port.
package core

import "fmt"

// PhysReg identifies a physical register within one register file.
type PhysReg int32

// Unlimited is the port/bus count meaning "unconstrained", used by the
// paper's infinite-bandwidth experiments (Figures 2 and 5–7).
const Unlimited = int(^uint32(0) >> 1) // max int32

// Operand describes one register source of an issuing instruction.
type Operand struct {
	// Reg is the physical register holding the value.
	Reg PhysReg
	// Bus is the absolute cycle at which the value drives the result bus
	// (the producer's write-back cycle). Values architecturally present
	// before the simulation window use Bus = 0.
	Bus uint64
	// ViaBypass is filled in by TryRead: true if the operand will be
	// captured from the bypass network rather than read through a port.
	ViaBypass bool
}

// WBHints carries the information the caching policies need at write-back
// time. The simulator computes both from its instruction window.
type WBHints struct {
	// BypassCaught reports whether at least one consumer captured this
	// result from the bypass network (used by non-bypass caching: such
	// values are not cached).
	BypassCaught bool
	// ReadyConsumer reports whether some not-yet-issued instruction in the
	// window uses this result and has all of its source operands produced
	// (used by ready caching: only such values are cached).
	ReadyConsumer bool
}

// FileStats aggregates observable behaviour of a register file model.
type FileStats struct {
	// Reads counts operands obtained through register file ports.
	Reads uint64
	// BypassReads counts operands captured from the bypass network.
	BypassReads uint64
	// ReadPortConflicts counts instruction issue attempts rejected because
	// no read port was available.
	ReadPortConflicts uint64
	// UpperHits counts operands served by the upper bank (cache file only).
	UpperHits uint64
	// DemandFetches counts lower→upper transfers triggered on demand.
	DemandFetches uint64
	// Prefetches counts lower→upper transfers triggered by prefetching.
	Prefetches uint64
	// CachingWrites counts results written to the upper bank at write-back.
	CachingWrites uint64
	// CachingSkipped counts results the policy wanted to cache but could
	// not for lack of an upper-bank write port that cycle.
	CachingSkipped uint64
	// Evictions counts upper-bank replacements of valid entries.
	Evictions uint64
}

// Sub returns s minus base, field-wise. Simulators use it to discard
// warmup-phase statistics.
func (s FileStats) Sub(base FileStats) FileStats {
	return FileStats{
		Reads:             s.Reads - base.Reads,
		BypassReads:       s.BypassReads - base.BypassReads,
		ReadPortConflicts: s.ReadPortConflicts - base.ReadPortConflicts,
		UpperHits:         s.UpperHits - base.UpperHits,
		DemandFetches:     s.DemandFetches - base.DemandFetches,
		Prefetches:        s.Prefetches - base.Prefetches,
		CachingWrites:     s.CachingWrites - base.CachingWrites,
		CachingSkipped:    s.CachingSkipped - base.CachingSkipped,
		Evictions:         s.Evictions - base.Evictions,
	}
}

// File is the register file model contract used by the pipeline simulator.
// Implementations are single-threaded, driven one cycle at a time.
type File interface {
	// ReadLatency returns the number of pipeline cycles of the operand
	// read stage (1 or 2 in the paper).
	ReadLatency() int
	// BeginCycle advances the model to cycle t. It must be called exactly
	// once per cycle with consecutive values of t. Bus transfers progress
	// and per-cycle port counters reset here.
	BeginCycle(t uint64)
	// ReserveWriteback books the earliest write-back slot ≥ earliest with
	// a free write port and returns that cycle. The value is considered on
	// the result bus, and written to the file, at the returned cycle.
	ReserveWriteback(earliest uint64) uint64
	// TryRead attempts to secure every source operand in ops for an
	// instruction issuing at cycle t. On success it consumes the needed
	// read ports, fills each Operand's ViaBypass field, and returns true;
	// on failure the port state is left unchanged. When demand is true and
	// every operand's value has been produced but some reside only in a
	// slower bank, the model enqueues demand fetches for them
	// (fetch-on-demand, cache file only).
	TryRead(t uint64, ops []Operand, demand bool) bool
	// Writeback delivers the result for p at its reserved cycle t (as
	// returned by ReserveWriteback). hints feed the caching policy.
	Writeback(t uint64, p PhysReg, hints WBHints)
	// NotePrefetch asks the prefetch engine to stage register p (result
	// bus cycle w) into the fast bank. Models without prefetching ignore
	// it.
	NotePrefetch(t uint64, p PhysReg, w uint64)
	// Release invalidates any cached state for p; the physical register
	// has been freed by the renamer and may be reallocated.
	Release(p PhysReg)
	// Stats returns accumulated statistics.
	Stats() FileStats
}

// wbReservation is a write-port reservation calendar: a ring of per-cycle
// use counts. The horizon must comfortably exceed the farthest-future
// reservation distance (bounded by pipeline depth plus worst-case port
// contention).
type wbReservation struct {
	counts []int32
	ports  int
	now    uint64
}

const reservationHorizon = 1 << 14

func newWBReservation(ports int) *wbReservation {
	if ports <= 0 {
		panic("core: write port count must be positive (use Unlimited)")
	}
	return &wbReservation{counts: make([]int32, reservationHorizon), ports: ports}
}

// advance moves the calendar to cycle t, recycling slots that have fallen
// into the past.
func (w *wbReservation) advance(t uint64) {
	if w.ports == Unlimited {
		return
	}
	for w.now < t {
		w.now++
		// The slot that now maps to the farthest future cycle must be
		// cleared before it can be reserved again.
		w.counts[(w.now+reservationHorizon-1)%reservationHorizon] = 0
	}
}

// reserve books the earliest cycle ≥ earliest with spare capacity.
func (w *wbReservation) reserve(earliest uint64) uint64 {
	if w.ports == Unlimited {
		return earliest
	}
	t := earliest
	for {
		if t >= w.now+reservationHorizon {
			panic(fmt.Sprintf("core: write-back reservation ran past horizon (earliest %d, now %d)", earliest, w.now))
		}
		idx := t % reservationHorizon
		if int(w.counts[idx]) < w.ports {
			w.counts[idx]++
			return t
		}
		t++
	}
}
