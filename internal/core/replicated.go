package core

import "fmt"

// ReplicatedConfig describes a replicated multi-banked register file in
// the style of the Alpha 21264 integer unit (paper §5, Kessler [3]): every
// bank holds a full copy of all values, each functional-unit cluster reads
// only from its local bank, and results are written to every bank — the
// local bank immediately, remote banks one cycle later. Replication cuts
// per-bank read ports at the cost of duplicated storage and a one-cycle
// cross-cluster penalty.
type ReplicatedConfig struct {
	// NumPhys is the number of physical registers (replicated per bank).
	NumPhys int
	// Clusters is the number of banks/clusters (2 in the 21264).
	Clusters int
	// ReadPortsPerBank bounds per-cluster, per-cycle operand reads.
	ReadPortsPerBank int
	// WritePortsPerBank bounds per-bank result writes per cycle; every
	// result needs a slot in every bank.
	WritePortsPerBank int
	// RemoteDelay is the extra cycles before a result reaches non-local
	// banks (1 in the 21264).
	RemoteDelay int
}

// Replicated implements the replicated organization. It is driven through
// the File interface plus the cluster-aware entry points the simulator
// uses when it knows the instruction's cluster (AssignCluster,
// TryReadCluster, ReserveWritebackAll).
type Replicated struct {
	cfg       ReplicatedConfig
	home      []int8 // producing cluster per physical register
	readsLeft []int
	wb        []*wbReservation
	nextClu   int
	now       uint64
	stats     FileStats
}

// NewReplicated validates cfg and builds the model.
func NewReplicated(cfg ReplicatedConfig) *Replicated {
	if cfg.NumPhys <= 0 {
		panic("core: NumPhys must be positive")
	}
	if cfg.Clusters < 1 || cfg.Clusters > 8 {
		panic(fmt.Sprintf("core: cluster count %d out of range", cfg.Clusters))
	}
	if cfg.ReadPortsPerBank <= 0 || cfg.WritePortsPerBank <= 0 {
		panic("core: port counts must be positive (use Unlimited)")
	}
	if cfg.RemoteDelay < 0 {
		panic("core: negative remote delay")
	}
	if cfg.RemoteDelay == 0 {
		cfg.RemoteDelay = 1
	}
	f := &Replicated{
		cfg:       cfg,
		home:      make([]int8, cfg.NumPhys),
		readsLeft: make([]int, cfg.Clusters),
		wb:        make([]*wbReservation, cfg.Clusters),
	}
	for i := range f.wb {
		f.wb[i] = newWBReservation(cfg.WritePortsPerBank)
	}
	return f
}

// ReadLatency implements File: banks are single-cycle.
func (f *Replicated) ReadLatency() int { return 1 }

// BeginCycle implements File.
func (f *Replicated) BeginCycle(t uint64) {
	f.now = t
	for c := range f.readsLeft {
		f.readsLeft[c] = f.cfg.ReadPortsPerBank
		f.wb[c].advance(t)
	}
}

// AssignCluster steers the instruction producing p to a cluster
// (round-robin, like the 21264's slotting) and returns it. The simulator
// calls it at dispatch.
func (f *Replicated) AssignCluster(p PhysReg) int {
	c := f.nextClu
	f.nextClu = (f.nextClu + 1) % f.cfg.Clusters
	f.home[p] = int8(c)
	return c
}

// SetHome records that p is produced by an instruction already steered to
// cluster c (used when the simulator owns the steering decision).
func (f *Replicated) SetHome(p PhysReg, c int) { f.home[p] = int8(c) }

// Clusters returns the configured cluster count.
func (f *Replicated) Clusters() int { return f.cfg.Clusters }

// HomeCluster returns the cluster that produces (or produced) p.
func (f *Replicated) HomeCluster(p PhysReg) int { return int(f.home[p]) }

// BusCycleAt returns the cycle at which p's value reaches cluster c's
// bank: the local bank at the write-back cycle w, remote banks RemoteDelay
// later. The simulator's issue scheduler uses it to compute when an
// operand first becomes catchable from cluster c.
func (f *Replicated) BusCycleAt(p PhysReg, w uint64, c int) uint64 {
	if int(f.home[p]) == c || w == 0 {
		return w
	}
	return w + uint64(f.cfg.RemoteDelay)
}

// TryReadCluster attempts to secure the operands for an instruction
// issuing at cycle t in cluster c: bypass (within the effective bus cycle
// window) or a local-bank read port.
func (f *Replicated) TryReadCluster(t uint64, ops []Operand, c int) bool {
	need := 0
	for i := range ops {
		w := f.BusCycleAt(ops[i].Reg, ops[i].Bus, c)
		switch {
		case t+2 == w:
			ops[i].ViaBypass = true
		case t+1 >= w:
			ops[i].ViaBypass = false
			need++
		default:
			return false
		}
	}
	if need > f.readsLeft[c] {
		f.stats.ReadPortConflicts++
		return false
	}
	f.readsLeft[c] -= need
	for i := range ops {
		if ops[i].ViaBypass {
			f.stats.BypassReads++
		} else {
			f.stats.Reads++
		}
	}
	return true
}

// TryRead implements File; without a cluster hint it reads from cluster 0.
func (f *Replicated) TryRead(t uint64, ops []Operand, demand bool) bool {
	return f.TryReadCluster(t, ops, 0)
}

// ReserveWritebackAll books a write slot for p in every bank — the local
// bank at the earliest free cycle, remote banks checked RemoteDelay later —
// and returns the local write-back cycle.
func (f *Replicated) ReserveWritebackAll(p PhysReg, earliest uint64) uint64 {
	home := int(f.home[p])
	w := f.wb[home].reserve(earliest)
	for c := range f.wb {
		if c == home {
			continue
		}
		// The remote write follows the cross-cluster bus; contention there
		// pushes the remote copy later but not the local result.
		f.wb[c].reserve(w + uint64(f.cfg.RemoteDelay))
	}
	return w
}

// ReserveWriteback implements File.
func (f *Replicated) ReserveWriteback(earliest uint64) uint64 {
	return f.wb[0].reserve(earliest)
}

// Writeback implements File; replication needs no policy decisions.
func (f *Replicated) Writeback(t uint64, p PhysReg, hints WBHints) {}

// NotePrefetch implements File; a replicated organization has no
// transfers to schedule.
func (f *Replicated) NotePrefetch(t uint64, p PhysReg, w uint64) {}

// Release implements File.
func (f *Replicated) Release(p PhysReg) {}

// Stats implements File.
func (f *Replicated) Stats() FileStats { return f.stats }
