package core

import "testing"

func repl2() *Replicated {
	return NewReplicated(ReplicatedConfig{
		NumPhys: 32, Clusters: 2, ReadPortsPerBank: 2, WritePortsPerBank: 2, RemoteDelay: 1,
	})
}

func TestReplicatedClusterAssignmentRoundRobin(t *testing.T) {
	f := repl2()
	if f.AssignCluster(0) != 0 || f.AssignCluster(1) != 1 || f.AssignCluster(2) != 0 {
		t.Error("round-robin steering broken")
	}
	if f.HomeCluster(1) != 1 {
		t.Error("home cluster not recorded")
	}
}

func TestReplicatedLocalVsRemoteTiming(t *testing.T) {
	f := repl2()
	f.AssignCluster(5) // home cluster 0
	// Local consumer: bypass at w-2, port read from w-1.
	f.BeginCycle(8)
	o := ops([2]uint64{5, 10})
	if !f.TryReadCluster(8, o, 0) || !o[0].ViaBypass {
		t.Fatal("local consumer should bypass at w-2")
	}
	// Remote consumer sees the value one cycle later: at w-2 nothing, at
	// w-1 the (delayed) bypass.
	f.BeginCycle(8)
	if f.TryReadCluster(8, ops([2]uint64{5, 10}), 1) {
		t.Fatal("remote consumer caught the value too early")
	}
	f.BeginCycle(9)
	o = ops([2]uint64{5, 10})
	if !f.TryReadCluster(9, o, 1) || !o[0].ViaBypass {
		t.Fatal("remote consumer should catch the delayed bus at w-1")
	}
}

func TestReplicatedOldValuesEverywhere(t *testing.T) {
	f := repl2()
	// Architectural values (bus 0) are in every bank.
	f.BeginCycle(100)
	if !f.TryReadCluster(100, ops([2]uint64{3, 0}), 0) {
		t.Fatal("cluster 0 read failed")
	}
	if !f.TryReadCluster(100, ops([2]uint64{4, 0}), 1) {
		t.Fatal("cluster 1 read failed")
	}
}

func TestReplicatedPerClusterPorts(t *testing.T) {
	f := repl2() // 2 read ports per bank
	f.BeginCycle(50)
	if !f.TryReadCluster(50, ops([2]uint64{1, 0}, [2]uint64{2, 0}), 0) {
		t.Fatal("first 2-port read should succeed")
	}
	if f.TryReadCluster(50, ops([2]uint64{3, 0}), 0) {
		t.Fatal("cluster 0 ports exhausted; read should fail")
	}
	if !f.TryReadCluster(50, ops([2]uint64{3, 0}), 1) {
		t.Fatal("cluster 1 ports are independent")
	}
	if f.Stats().ReadPortConflicts != 1 {
		t.Errorf("conflicts = %d", f.Stats().ReadPortConflicts)
	}
}

func TestReplicatedWritebackAllBanks(t *testing.T) {
	cfg := ReplicatedConfig{NumPhys: 8, Clusters: 2, ReadPortsPerBank: 2, WritePortsPerBank: 1, RemoteDelay: 1}
	f := NewReplicated(cfg)
	f.BeginCycle(0)
	f.AssignCluster(0) // home 0
	f.AssignCluster(1) // home 1
	w0 := f.ReserveWritebackAll(0, 5)
	if w0 != 5 {
		t.Fatalf("first local WB = %d", w0)
	}
	// Register 1's home bank is 1; its remote write lands in bank 0 at
	// w+1. Bank 0's cycle-5 slot is taken, but that does not block a
	// home-bank reservation at 5 in bank 1.
	if w1 := f.ReserveWritebackAll(1, 5); w1 != 5 {
		t.Fatalf("bank-1 local WB = %d, want 5", w1)
	}
	// A second bank-0-homed result at 5 must be pushed past both the
	// cycle-5 local write of reg 0 and the cycle-6 remote write of reg 1.
	f.AssignCluster(2) // home 0
	if w2 := f.ReserveWritebackAll(2, 5); w2 != 7 {
		t.Fatalf("contended bank-0 WB = %d, want 7", w2)
	}
}

func TestReplicatedConfigValidation(t *testing.T) {
	bad := []ReplicatedConfig{
		{NumPhys: 0, Clusters: 2, ReadPortsPerBank: 1, WritePortsPerBank: 1},
		{NumPhys: 8, Clusters: 0, ReadPortsPerBank: 1, WritePortsPerBank: 1},
		{NumPhys: 8, Clusters: 9, ReadPortsPerBank: 1, WritePortsPerBank: 1},
		{NumPhys: 8, Clusters: 2, ReadPortsPerBank: 0, WritePortsPerBank: 1},
		{NumPhys: 8, Clusters: 2, ReadPortsPerBank: 1, WritePortsPerBank: 1, RemoteDelay: -1},
	}
	for i, cfg := range bad {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("config %d did not panic", i)
				}
			}()
			NewReplicated(cfg)
		}()
	}
}

func TestCacheFileDemandPinSurvivesPressure(t *testing.T) {
	// The forward-progress guarantee: a demand-fetched entry must survive
	// sustained caching-write pressure long enough to be read.
	cfg := PaperCacheConfig()
	cfg.UpperSize = 4
	f := NewCacheFile(cfg)
	f.BeginCycle(5)
	f.Writeback(5, 30, WBHints{BypassCaught: true}) // lower-only
	f.TryRead(5, ops([2]uint64{30, 5}), true)       // demand fetch
	f.BeginCycle(6)                                 // granted
	f.BeginCycle(7)                                 // delivered, pinned
	// Hammer the upper bank with caching writes.
	for r := PhysReg(0); r < 8; r++ {
		f.Writeback(7, r, WBHints{})
	}
	if !f.InUpper(30) {
		t.Fatal("pinned demand-fetched entry was evicted")
	}
	// The pin holds across cycles until the value is read.
	f.BeginCycle(50)
	for r := PhysReg(8); r < 20; r++ {
		f.Writeback(50, r, WBHints{})
	}
	if !f.InUpper(30) {
		t.Fatal("unread demand-fetched entry lost its pin")
	}
	// Releasing the register frees the slot regardless of the pin.
	f.Release(30)
	if f.InUpper(30) {
		t.Fatal("released register still resident")
	}
}

func TestCacheFileReadClearsPin(t *testing.T) {
	cfg := PaperCacheConfig()
	cfg.UpperSize = 4
	f := NewCacheFile(cfg)
	f.BeginCycle(5)
	f.Writeback(5, 30, WBHints{BypassCaught: true})
	f.TryRead(5, ops([2]uint64{30, 5}), true)
	f.BeginCycle(6)
	f.BeginCycle(7)
	if !f.TryRead(7, ops([2]uint64{30, 5}), true) {
		t.Fatal("delivered entry not readable")
	}
	// Once read, the entry competes normally and can be evicted.
	for r := PhysReg(0); r < 8; r++ {
		f.Writeback(7, r, WBHints{})
	}
	if f.InUpper(30) {
		t.Fatal("consumed entry still pinned against eviction")
	}
}
