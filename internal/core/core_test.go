package core

import (
	"testing"
	"testing/quick"
)

func TestWBReservationUnlimited(t *testing.T) {
	r := newWBReservation(Unlimited)
	for i := uint64(0); i < 100; i++ {
		if got := r.reserve(i); got != i {
			t.Fatalf("unlimited reserve(%d) = %d", i, got)
		}
	}
}

func TestWBReservationContention(t *testing.T) {
	r := newWBReservation(2)
	r.advance(0)
	if r.reserve(5) != 5 || r.reserve(5) != 5 {
		t.Fatal("first two reservations should land on 5")
	}
	if got := r.reserve(5); got != 6 {
		t.Fatalf("third reservation = %d, want 6", got)
	}
	if got := r.reserve(5); got != 6 {
		t.Fatalf("fourth reservation = %d, want 6", got)
	}
	if got := r.reserve(5); got != 7 {
		t.Fatalf("fifth reservation = %d, want 7", got)
	}
}

func TestWBReservationRecycling(t *testing.T) {
	r := newWBReservation(1)
	for cyc := uint64(0); cyc < 3*reservationHorizon; cyc++ {
		r.advance(cyc)
		if got := r.reserve(cyc + 1); got != cyc+1 {
			t.Fatalf("cycle %d: reserve = %d, want %d", cyc, got, cyc+1)
		}
	}
}

func TestWBReservationZeroPortsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for zero ports")
		}
	}()
	newWBReservation(0)
}

func ops(specs ...[2]uint64) []Operand {
	out := make([]Operand, len(specs))
	for i, s := range specs {
		out[i] = Operand{Reg: PhysReg(s[0]), Bus: s[1]}
	}
	return out
}

func TestMonolithic1CycleTiming(t *testing.T) {
	m := NewMonolithic(MonolithicConfig{NumPhys: 128, Latency: 1, FullBypass: true, ReadPorts: Unlimited, WritePorts: Unlimited})
	// Producer bus cycle 10: consumer may issue at 8 (bypass, back-to-back)
	// or ≥9 (write-through read from the file).
	m.BeginCycle(7)
	if m.TryRead(7, ops([2]uint64{1, 10}), false) {
		t.Error("issue at w-3 should fail for 1-cycle file")
	}
	m.BeginCycle(8)
	o := ops([2]uint64{1, 10})
	if !m.TryRead(8, o, false) {
		t.Fatal("issue at w-2 should succeed via bypass")
	}
	if !o[0].ViaBypass {
		t.Error("operand at w-2 should be via bypass")
	}
	m.BeginCycle(9)
	o = ops([2]uint64{1, 10})
	if !m.TryRead(9, o, false) || o[0].ViaBypass {
		t.Error("issue at w-1 should read from the file, not bypass")
	}
	m.BeginCycle(10)
	o = ops([2]uint64{1, 10})
	if !m.TryRead(10, o, false) || o[0].ViaBypass {
		t.Error("issue at w should read from the file, not bypass")
	}
}

func TestMonolithic2CycleFullBypassTiming(t *testing.T) {
	m := NewMonolithic(MonolithicConfig{NumPhys: 128, Latency: 2, FullBypass: true, ReadPorts: Unlimited, WritePorts: Unlimited})
	m.BeginCycle(6)
	if m.TryRead(6, ops([2]uint64{1, 10}), false) {
		t.Error("issue at w-4 should fail")
	}
	for cyc := uint64(7); cyc <= 11; cyc++ {
		m.BeginCycle(cyc)
		o := ops([2]uint64{1, 10})
		if !m.TryRead(cyc, o, false) {
			t.Errorf("issue at %d should succeed (full bypass, L=2)", cyc)
		}
		wantBypass := cyc <= 8 // w-3 and w-2 come from the two bypass levels
		if o[0].ViaBypass != wantBypass {
			t.Errorf("cycle %d: ViaBypass = %v, want %v", cyc, o[0].ViaBypass, wantBypass)
		}
	}
}

func TestMonolithic2CycleSingleBypassTiming(t *testing.T) {
	m := NewMonolithic(MonolithicConfig{NumPhys: 128, Latency: 2, FullBypass: false, ReadPorts: Unlimited, WritePorts: Unlimited})
	m.BeginCycle(7)
	if m.TryRead(7, ops([2]uint64{1, 10}), false) {
		t.Error("issue at w-3 should fail with a single bypass level")
	}
	m.BeginCycle(8)
	o := ops([2]uint64{1, 10})
	if !m.TryRead(8, o, false) || !o[0].ViaBypass {
		t.Error("issue at w-2 should succeed via the last bypass level")
	}
	m.BeginCycle(9)
	o = ops([2]uint64{1, 10})
	if !m.TryRead(9, o, false) || o[0].ViaBypass {
		t.Error("issue at w-1 should read through a port")
	}
}

func TestMonolithicReadPortLimit(t *testing.T) {
	m := NewMonolithic(MonolithicConfig{NumPhys: 128, Latency: 1, FullBypass: true, ReadPorts: 3, WritePorts: Unlimited})
	m.BeginCycle(100)
	// Values produced long ago: every operand needs a port.
	if !m.TryRead(100, ops([2]uint64{1, 0}, [2]uint64{2, 0}), false) {
		t.Fatal("first read (2 ports) should succeed")
	}
	if !m.TryRead(100, ops([2]uint64{3, 0}), false) {
		t.Fatal("second read (1 port) should succeed")
	}
	if m.TryRead(100, ops([2]uint64{4, 0}), false) {
		t.Fatal("fourth port should not exist")
	}
	if m.Stats().ReadPortConflicts != 1 {
		t.Errorf("ReadPortConflicts = %d, want 1", m.Stats().ReadPortConflicts)
	}
	m.BeginCycle(101)
	if !m.TryRead(101, ops([2]uint64{4, 0}), false) {
		t.Fatal("ports should refresh next cycle")
	}
}

func TestMonolithicBypassNeedsNoPort(t *testing.T) {
	m := NewMonolithic(MonolithicConfig{NumPhys: 128, Latency: 1, FullBypass: true, ReadPorts: 1, WritePorts: Unlimited})
	m.BeginCycle(8)
	// Two operands on the bypass (w=10, issue at w-2) plus zero ports used.
	if !m.TryRead(8, ops([2]uint64{1, 10}, [2]uint64{2, 10}), false) {
		t.Fatal("bypassed operands must not consume ports")
	}
	st := m.Stats()
	if st.BypassReads != 2 || st.Reads != 0 {
		t.Errorf("stats = %+v", st)
	}
}

func TestMonolithicFailedTryReadLeavesPorts(t *testing.T) {
	m := NewMonolithic(MonolithicConfig{NumPhys: 128, Latency: 1, FullBypass: true, ReadPorts: 1, WritePorts: Unlimited})
	m.BeginCycle(50)
	// One operand readable, one not produced: must fail and not consume the port.
	if m.TryRead(50, ops([2]uint64{1, 0}, [2]uint64{2, 99}), false) {
		t.Fatal("read with unproduced operand should fail")
	}
	if !m.TryRead(50, ops([2]uint64{3, 0}), false) {
		t.Fatal("port should still be free after failed TryRead")
	}
}

func TestMonolithicWritebackReservation(t *testing.T) {
	m := NewMonolithic(MonolithicConfig{NumPhys: 128, Latency: 1, FullBypass: true, ReadPorts: Unlimited, WritePorts: 1})
	m.BeginCycle(0)
	if w := m.ReserveWriteback(4); w != 4 {
		t.Errorf("first WB = %d", w)
	}
	if w := m.ReserveWriteback(4); w != 5 {
		t.Errorf("contended WB = %d, want 5", w)
	}
}

func TestMonolithicConfigValidation(t *testing.T) {
	bad := []MonolithicConfig{
		{NumPhys: 0, Latency: 1, ReadPorts: 1, WritePorts: 1},
		{NumPhys: 8, Latency: 0, ReadPorts: 1, WritePorts: 1},
		{NumPhys: 8, Latency: 1, ReadPorts: 0, WritePorts: 1},
		{NumPhys: 8, Latency: 1, ReadPorts: 1, WritePorts: 0},
	}
	for i, cfg := range bad {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("config %d did not panic", i)
				}
			}()
			NewMonolithic(cfg)
		}()
	}
}

func TestTreePLRUVictimRotation(t *testing.T) {
	p := newTreePLRU(4)
	seen := map[int]bool{}
	for i := 0; i < 4; i++ {
		seen[p.Victim()] = true
	}
	if len(seen) != 4 {
		t.Errorf("4 victims covered only %d distinct slots", len(seen))
	}
}

func TestTreePLRUTouchProtects(t *testing.T) {
	p := newTreePLRU(8)
	for i := 0; i < 100; i++ {
		p.Touch(3)
		if v := p.Victim(); v == 3 {
			t.Fatal("most recently touched slot chosen as victim")
		}
		p.Touch(3)
	}
}

func TestTreePLRUBadSizePanics(t *testing.T) {
	for _, n := range []int{0, 3, -4} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("size %d did not panic", n)
				}
			}()
			newTreePLRU(n)
		}()
	}
}

func TestListLRUExact(t *testing.T) {
	l := newListLRU(3)
	l.Touch(0)
	l.Touch(1)
	l.Touch(2)
	l.Touch(0) // order now 1 < 2 < 0
	if v := l.Victim(); v != 1 {
		t.Errorf("victim = %d, want 1", v)
	}
	if v := l.Victim(); v != 2 {
		t.Errorf("victim = %d, want 2", v)
	}
}

func TestNewReplacerFallback(t *testing.T) {
	if _, ok := newReplacer(PseudoLRU, 16).(*treePLRU); !ok {
		t.Error("power-of-two pseudo-LRU should use the tree")
	}
	if _, ok := newReplacer(PseudoLRU, 12).(*listLRU); !ok {
		t.Error("non-power-of-two should fall back to exact LRU")
	}
	if _, ok := newReplacer(TrueLRU, 16).(*listLRU); !ok {
		t.Error("TrueLRU should use the list")
	}
}

// Property: a pseudo-LRU victim is never one of the (n/2) most recently
// touched distinct slots... weaker but robust: the victim never equals the
// last-touched slot.
func TestQuickPLRUNeverEvictsMRU(t *testing.T) {
	f := func(touches []uint8) bool {
		p := newTreePLRU(16)
		last := -1
		for _, tc := range touches {
			slot := int(tc % 16)
			p.Touch(slot)
			last = slot
			if p.Victim() == last {
				return false
			}
			p.Touch(last) // restore MRU status disturbed by Victim's touch
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func unlimitedCache() CacheConfig {
	c := PaperCacheConfig()
	return c
}

func TestCacheFileBypassCatch(t *testing.T) {
	f := NewCacheFile(unlimitedCache())
	f.BeginCycle(9)
	o := ops([2]uint64{5, 10})
	if !f.TryRead(9, o, false) || !o[0].ViaBypass {
		t.Fatal("operand at w-1 should come from bypass")
	}
}

func TestCacheFileUpperHitAfterCachingWriteback(t *testing.T) {
	f := NewCacheFile(unlimitedCache())
	f.BeginCycle(10)
	f.Writeback(10, 5, WBHints{BypassCaught: false}) // non-bypass → cached
	if !f.InUpper(5) {
		t.Fatal("non-bypassed result not cached")
	}
	o := ops([2]uint64{5, 10})
	if !f.TryRead(10, o, false) || o[0].ViaBypass {
		t.Fatal("cached value should be readable from the upper bank at w")
	}
	if f.Stats().UpperHits != 1 {
		t.Errorf("UpperHits = %d", f.Stats().UpperHits)
	}
}

func TestCacheFileNonBypassPolicySkipsBypassedValues(t *testing.T) {
	f := NewCacheFile(unlimitedCache())
	f.BeginCycle(10)
	f.Writeback(10, 5, WBHints{BypassCaught: true})
	if f.InUpper(5) {
		t.Fatal("bypassed result should not be cached under non-bypass policy")
	}
}

func TestCacheFileReadyPolicy(t *testing.T) {
	cfg := unlimitedCache()
	cfg.Caching = CacheReady
	f := NewCacheFile(cfg)
	f.BeginCycle(10)
	f.Writeback(10, 5, WBHints{ReadyConsumer: false})
	if f.InUpper(5) {
		t.Fatal("no ready consumer → should not cache")
	}
	f.Writeback(10, 6, WBHints{ReadyConsumer: true})
	if !f.InUpper(6) {
		t.Fatal("ready consumer → should cache")
	}
}

func TestCacheFileCacheAllAndNone(t *testing.T) {
	cfg := unlimitedCache()
	cfg.Caching = CacheAll
	f := NewCacheFile(cfg)
	f.BeginCycle(1)
	f.Writeback(1, 3, WBHints{BypassCaught: true})
	if !f.InUpper(3) {
		t.Error("cache-all should cache bypassed results")
	}
	cfg.Caching = CacheNone
	g := NewCacheFile(cfg)
	g.BeginCycle(1)
	g.Writeback(1, 3, WBHints{})
	if g.InUpper(3) {
		t.Error("cache-none cached a value")
	}
}

func TestCacheFileDemandFetch(t *testing.T) {
	f := NewCacheFile(unlimitedCache())
	// Value of reg 7 produced at cycle 5 but bypassed → lower bank only.
	f.BeginCycle(5)
	f.Writeback(5, 7, WBHints{BypassCaught: true})
	// At cycle 20 a consumer wants it: not in upper → demand fetch.
	f.BeginCycle(20)
	o := ops([2]uint64{7, 5})
	if f.TryRead(20, o, true) {
		t.Fatal("lower-only operand must not be readable immediately")
	}
	// Bus granted at 21, delivered at 22, readable for issues ≥ 22.
	f.BeginCycle(21)
	if f.TryRead(21, o, true) {
		t.Fatal("operand should still be in flight at cycle 21")
	}
	f.BeginCycle(22)
	if !f.TryRead(22, o, true) {
		t.Fatal("operand should be readable after delivery")
	}
	if f.Stats().DemandFetches != 1 {
		t.Errorf("DemandFetches = %d, want 1", f.Stats().DemandFetches)
	}
}

func TestCacheFileDemandOnlyWhenAllProduced(t *testing.T) {
	f := NewCacheFile(unlimitedCache())
	f.BeginCycle(5)
	f.Writeback(5, 7, WBHints{BypassCaught: true})
	f.BeginCycle(20)
	// Second operand not yet produced (w=100): no demand fetch enqueued.
	o := ops([2]uint64{7, 5}, [2]uint64{8, 100})
	if f.TryRead(20, o, true) {
		t.Fatal("read should fail")
	}
	f.BeginCycle(21)
	f.BeginCycle(22)
	if f.Stats().DemandFetches != 0 {
		t.Errorf("premature demand fetch issued: %d", f.Stats().DemandFetches)
	}
}

func TestCacheFilePrefetch(t *testing.T) {
	f := NewCacheFile(unlimitedCache())
	f.BeginCycle(5)
	f.Writeback(5, 9, WBHints{BypassCaught: true}) // lower only
	f.BeginCycle(6)
	f.NotePrefetch(6, 9, 5)
	f.BeginCycle(7) // granted
	f.BeginCycle(8) // delivered
	if !f.InUpper(9) {
		t.Fatal("prefetched value not in upper bank")
	}
	if f.Stats().Prefetches != 1 {
		t.Errorf("Prefetches = %d", f.Stats().Prefetches)
	}
}

func TestCacheFilePrefetchDisabledUnderFetchOnDemand(t *testing.T) {
	cfg := unlimitedCache()
	cfg.Prefetch = FetchOnDemand
	f := NewCacheFile(cfg)
	f.BeginCycle(5)
	f.Writeback(5, 9, WBHints{BypassCaught: true})
	f.NotePrefetch(5, 9, 5)
	f.BeginCycle(6)
	f.BeginCycle(7)
	if f.Stats().Prefetches != 0 {
		t.Error("fetch-on-demand issued a prefetch")
	}
}

func TestCacheFilePrefetchIgnoresUnproduced(t *testing.T) {
	f := NewCacheFile(unlimitedCache())
	f.BeginCycle(5)
	f.NotePrefetch(5, 9, 50) // value not produced until cycle 50
	f.BeginCycle(6)
	if f.Stats().Prefetches != 0 {
		t.Error("prefetch of unproduced value issued")
	}
}

func TestCacheFileDemandPriorityOverPrefetch(t *testing.T) {
	cfg := unlimitedCache()
	cfg.Buses = 1
	f := NewCacheFile(cfg)
	f.BeginCycle(5)
	f.Writeback(5, 1, WBHints{BypassCaught: true})
	f.Writeback(5, 2, WBHints{BypassCaught: true})
	// Enqueue a prefetch for 1 then a demand for 2.
	f.NotePrefetch(5, 1, 5)
	o := ops([2]uint64{2, 5})
	f.TryRead(5, o, true)
	f.BeginCycle(6) // one bus: demand for reg 2 must win
	if f.Stats().DemandFetches != 1 || f.Stats().Prefetches != 0 {
		t.Errorf("demand=%d pref=%d after first grant", f.Stats().DemandFetches, f.Stats().Prefetches)
	}
}

func TestCacheFileBusOccupancy(t *testing.T) {
	cfg := unlimitedCache()
	cfg.Buses = 1
	cfg.TransferCycles = 2
	f := NewCacheFile(cfg)
	f.BeginCycle(5)
	for _, r := range []PhysReg{1, 2} {
		f.Writeback(5, r, WBHints{BypassCaught: true})
	}
	f.TryRead(5, ops([2]uint64{1, 5}), true)
	f.TryRead(5, ops([2]uint64{2, 5}), true)
	f.BeginCycle(6) // grant reg 1; bus busy 6-7
	f.BeginCycle(7) // delivery of 1; bus still busy
	if got := f.Stats().DemandFetches; got != 1 {
		t.Fatalf("grants after cycle 7 = %d, want 1", got)
	}
	f.BeginCycle(8) // bus free again: grant reg 2
	if got := f.Stats().DemandFetches; got != 2 {
		t.Fatalf("grants after cycle 8 = %d, want 2", got)
	}
}

func TestCacheFileEviction(t *testing.T) {
	cfg := unlimitedCache()
	cfg.UpperSize = 4
	f := NewCacheFile(cfg)
	f.BeginCycle(1)
	for r := PhysReg(0); r < 5; r++ {
		f.Writeback(1, r, WBHints{})
	}
	if f.UpperResidents() != 4 {
		t.Errorf("residents = %d, want 4", f.UpperResidents())
	}
	if f.Stats().Evictions != 1 {
		t.Errorf("Evictions = %d, want 1", f.Stats().Evictions)
	}
}

func TestCacheFileReleaseInvalidates(t *testing.T) {
	f := NewCacheFile(unlimitedCache())
	f.BeginCycle(1)
	f.Writeback(1, 5, WBHints{})
	f.Release(5)
	if f.InUpper(5) {
		t.Fatal("released register still in upper bank")
	}
	// Freed slot must be reusable without eviction.
	f.Writeback(1, 6, WBHints{})
	if !f.InUpper(6) || f.Stats().Evictions != 0 {
		t.Error("slot not recycled cleanly")
	}
}

func TestCacheFileReleaseCancelsInflight(t *testing.T) {
	f := NewCacheFile(unlimitedCache())
	f.BeginCycle(5)
	f.Writeback(5, 7, WBHints{BypassCaught: true})
	f.TryRead(5, ops([2]uint64{7, 5}), true) // enqueue demand
	f.Release(7)                             // freed before grant
	f.BeginCycle(6)
	f.BeginCycle(7)
	if f.InUpper(7) {
		t.Fatal("stale transfer installed a released register")
	}
}

func TestCacheFileGenerationGuard(t *testing.T) {
	f := NewCacheFile(unlimitedCache())
	f.BeginCycle(5)
	f.Writeback(5, 7, WBHints{BypassCaught: true})
	f.TryRead(5, ops([2]uint64{7, 5}), true)
	f.BeginCycle(6) // granted: in flight, delivery at 7
	f.Release(7)    // released mid-flight; register reallocated
	f.BeginCycle(7) // delivery must be dropped
	if f.InUpper(7) {
		t.Fatal("mid-flight release not honored")
	}
}

func TestCacheFileUpperWritePortLimit(t *testing.T) {
	cfg := unlimitedCache()
	cfg.UpperWritePorts = 1
	f := NewCacheFile(cfg)
	f.BeginCycle(1)
	f.Writeback(1, 1, WBHints{})
	f.Writeback(1, 2, WBHints{})
	if f.InUpper(2) {
		t.Fatal("second caching write should be skipped (one port)")
	}
	st := f.Stats()
	if st.CachingWrites != 1 || st.CachingSkipped != 1 {
		t.Errorf("stats = %+v", st)
	}
	f.BeginCycle(2)
	f.Writeback(2, 3, WBHints{})
	if !f.InUpper(3) {
		t.Error("upper write ports should refresh each cycle")
	}
}

func TestCacheFileReadPortLimit(t *testing.T) {
	cfg := unlimitedCache()
	cfg.ReadPorts = 1
	f := NewCacheFile(cfg)
	f.BeginCycle(1)
	f.Writeback(1, 1, WBHints{})
	f.Writeback(1, 2, WBHints{})
	if !f.TryRead(1, ops([2]uint64{1, 1}), false) {
		t.Fatal("first read should get the port")
	}
	if f.TryRead(1, ops([2]uint64{2, 1}), false) {
		t.Fatal("second read should be port-limited")
	}
}

func TestCacheFileConfigValidation(t *testing.T) {
	bad := []CacheConfig{
		{NumPhys: 0, UpperSize: 4, ReadPorts: 1, UpperWritePorts: 1, LowerWritePorts: 1, Buses: 1},
		{NumPhys: 8, UpperSize: 0, ReadPorts: 1, UpperWritePorts: 1, LowerWritePorts: 1, Buses: 1},
		{NumPhys: 8, UpperSize: 16, ReadPorts: 1, UpperWritePorts: 1, LowerWritePorts: 1, Buses: 1},
		{NumPhys: 8, UpperSize: 4, ReadPorts: 0, UpperWritePorts: 1, LowerWritePorts: 1, Buses: 1},
		{NumPhys: 8, UpperSize: 4, ReadPorts: 1, UpperWritePorts: 1, LowerWritePorts: 1, Buses: 1, TransferCycles: -1},
	}
	for i, cfg := range bad {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("config %d did not panic", i)
				}
			}()
			NewCacheFile(cfg)
		}()
	}
}

func TestPolicyStrings(t *testing.T) {
	if CacheNonBypass.String() != "non-bypass caching" || CacheReady.String() != "ready caching" {
		t.Error("caching policy names wrong")
	}
	if FetchOnDemand.String() != "fetch-on-demand" || PrefetchFirstPair.String() != "prefetch-first-pair" {
		t.Error("prefetch policy names wrong")
	}
	if PseudoLRU.String() != "pseudo-LRU" || TrueLRU.String() != "true-LRU" {
		t.Error("replacement names wrong")
	}
	if AssignRoundRobin.String() != "round-robin" || AssignLeastLoaded.String() != "least-loaded" {
		t.Error("assignment names wrong")
	}
}

// Property: the upper bank never holds more than UpperSize valid entries,
// and slotOf is consistent with slots, under arbitrary operation sequences.
func TestQuickCacheFileInvariants(t *testing.T) {
	f := func(opsSeq []uint16) bool {
		cfg := unlimitedCache()
		cfg.UpperSize = 8
		cfg.NumPhys = 32
		cf := NewCacheFile(cfg)
		cycle := uint64(0)
		for _, op := range opsSeq {
			reg := PhysReg(op % 32)
			switch (op >> 5) % 4 {
			case 0:
				cycle++
				cf.BeginCycle(cycle)
			case 1:
				cf.Writeback(cycle, reg, WBHints{BypassCaught: op&1 == 0})
			case 2:
				cf.Release(reg)
			case 3:
				cf.NotePrefetch(cycle, reg, uint64(op%8))
			}
			if cf.UpperResidents() > 8 {
				return false
			}
			// slotOf ↔ slots consistency.
			for r := PhysReg(0); r < 32; r++ {
				if s := cf.slotOf[r]; s >= 0 {
					if !cf.slots[s].valid || cf.slots[s].reg != r {
						return false
					}
				}
			}
			for si, s := range cf.slots {
				if s.valid && cf.slotOf[s.reg] != int32(si) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestOneLevelBankAssignmentRoundRobin(t *testing.T) {
	f := NewOneLevel(OneLevelConfig{NumPhys: 16, Banks: 4, ReadPortsPerBank: 2, WritePortsPerBank: 1})
	got := []int{f.AssignBank(0), f.AssignBank(1), f.AssignBank(2), f.AssignBank(3), f.AssignBank(4)}
	want := []int{0, 1, 2, 3, 0}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("round-robin assignment %v, want %v", got, want)
		}
	}
}

func TestOneLevelLeastLoaded(t *testing.T) {
	f := NewOneLevel(OneLevelConfig{NumPhys: 4, Banks: 2, ReadPortsPerBank: 2, WritePortsPerBank: 1, Assignment: AssignLeastLoaded})
	// Initial spread: regs 0,2 → bank 0; regs 1,3 → bank 1 (2 each).
	f.Release(0)
	f.Release(2) // bank 0 now lighter
	if b := f.AssignBank(0); b != 0 {
		t.Errorf("least-loaded chose bank %d, want 0", b)
	}
}

func TestOneLevelReadPortContentionPerBank(t *testing.T) {
	f := NewOneLevel(OneLevelConfig{NumPhys: 8, Banks: 2, ReadPortsPerBank: 1, WritePortsPerBank: 1})
	f.BeginCycle(10)
	// regs 0 and 2 are both in bank 0 (round-robin initial spread).
	if !f.TryRead(10, ops([2]uint64{0, 0}), false) {
		t.Fatal("first bank-0 read should succeed")
	}
	if f.TryRead(10, ops([2]uint64{2, 0}), false) {
		t.Fatal("second bank-0 read should be port-limited")
	}
	// reg 1 is in bank 1: its port is independent.
	if !f.TryRead(10, ops([2]uint64{1, 0}), false) {
		t.Fatal("bank-1 read should succeed")
	}
}

func TestOneLevelBypassTiming(t *testing.T) {
	f := NewOneLevel(OneLevelConfig{NumPhys: 8, Banks: 2, ReadPortsPerBank: 1, WritePortsPerBank: 1})
	f.BeginCycle(8)
	o := ops([2]uint64{0, 10})
	if !f.TryRead(8, o, false) || !o[0].ViaBypass {
		t.Fatal("one-level file should bypass at w-2")
	}
	f.BeginCycle(9)
	o = ops([2]uint64{0, 10})
	if !f.TryRead(9, o, false) || o[0].ViaBypass {
		t.Fatal("issue at w-1 should read through a port")
	}
	f.BeginCycle(7)
	if f.TryRead(7, ops([2]uint64{0, 10}), false) {
		t.Fatal("issue at w-3 should fail")
	}
}

func TestOneLevelWritebackBank(t *testing.T) {
	f := NewOneLevel(OneLevelConfig{NumPhys: 8, Banks: 2, ReadPortsPerBank: 1, WritePortsPerBank: 1})
	f.BeginCycle(0)
	// Bank 0 gets congested; bank 1 stays free.
	if w := f.ReserveWritebackBank(0, 5); w != 5 {
		t.Errorf("first WB = %d", w)
	}
	if w := f.ReserveWritebackBank(2, 5); w != 6 {
		t.Errorf("contended same-bank WB = %d, want 6", w)
	}
	if w := f.ReserveWritebackBank(1, 5); w != 5 {
		t.Errorf("other-bank WB = %d, want 5", w)
	}
}

func TestOneLevelConfigValidation(t *testing.T) {
	bad := []OneLevelConfig{
		{NumPhys: 0, Banks: 2, ReadPortsPerBank: 1, WritePortsPerBank: 1},
		{NumPhys: 8, Banks: 0, ReadPortsPerBank: 1, WritePortsPerBank: 1},
		{NumPhys: 8, Banks: 2, ReadPortsPerBank: 0, WritePortsPerBank: 1},
	}
	for i, cfg := range bad {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("config %d did not panic", i)
				}
			}()
			NewOneLevel(cfg)
		}()
	}
}
