package core

import "fmt"

// CachingPolicy selects which results are written to the upper bank at
// write-back (every result is always written to the lower bank).
type CachingPolicy uint8

const (
	// CacheNonBypass caches results that no consumer captured from the
	// bypass network (the paper's best-performing and simplest policy).
	CacheNonBypass CachingPolicy = iota
	// CacheReady caches results that are source operands of a
	// not-yet-issued instruction whose operands are now all produced.
	CacheReady
	// CacheAll caches every result (Yung & Wilhelm-style; ablation).
	CacheAll
	// CacheNone never caches at write-back; the upper bank is filled only
	// by demand fetches and prefetches (ablation).
	CacheNone
)

// String returns the policy name as used in the paper's figure legends.
func (p CachingPolicy) String() string {
	switch p {
	case CacheNonBypass:
		return "non-bypass caching"
	case CacheReady:
		return "ready caching"
	case CacheAll:
		return "cache-all"
	case CacheNone:
		return "cache-none"
	}
	return "unknown"
}

// PrefetchPolicy selects the lower→upper prefetching scheme.
type PrefetchPolicy uint8

const (
	// FetchOnDemand performs only demand transfers.
	FetchOnDemand PrefetchPolicy = iota
	// PrefetchFirstPair additionally prefetches, on each issue, the other
	// source operand of the first consumer of the issuing instruction's
	// result (the paper's prefetching scheme).
	PrefetchFirstPair
)

// String returns the policy name as used in the paper's figure legends.
func (p PrefetchPolicy) String() string {
	switch p {
	case FetchOnDemand:
		return "fetch-on-demand"
	case PrefetchFirstPair:
		return "prefetch-first-pair"
	}
	return "unknown"
}

// CacheConfig describes a two-level register file cache.
type CacheConfig struct {
	// NumPhys is the number of physical registers (lower bank capacity).
	NumPhys int
	// UpperSize is the number of upper-bank entries (16 in the paper).
	UpperSize int
	// ReadPorts bounds upper-bank reads per cycle.
	ReadPorts int
	// UpperWritePorts bounds caching writes into the upper bank per cycle
	// (the "W" of the uppermost level in the paper's Table 2).
	UpperWritePorts int
	// LowerWritePorts bounds result write-backs per cycle (every result is
	// written to the lower bank).
	LowerWritePorts int
	// Buses is the number of lower→upper transfer buses; each bus implies
	// a lower-bank read port and an upper-bank write port of its own
	// (Table 2's "B").
	Buses int
	// TransferCycles is the bus occupancy of one transfer; the value is
	// readable the cycle after the bus is granted. Defaults to 2.
	TransferCycles int
	// Caching selects the caching policy.
	Caching CachingPolicy
	// Prefetch selects the prefetching scheme.
	Prefetch PrefetchPolicy
	// Replacement selects the upper-bank replacement policy (the paper
	// uses pseudo-LRU).
	Replacement Replacement
}

// PaperCacheConfig returns the paper's evaluation configuration: 128
// physical registers, a 16-register fully-associative upper bank with
// pseudo-LRU, non-bypass caching and prefetch-first-pair, with unlimited
// bandwidth (the Figure 5–7 setting).
func PaperCacheConfig() CacheConfig {
	return CacheConfig{
		NumPhys: 128, UpperSize: 16,
		ReadPorts: Unlimited, UpperWritePorts: Unlimited,
		LowerWritePorts: Unlimited, Buses: Unlimited,
		Caching: CacheNonBypass, Prefetch: PrefetchFirstPair,
	}
}

type upperSlot struct {
	reg        PhysReg
	readableAt uint64
	// pinnedUntil protects demand-fetched entries from replacement until
	// they are read (pinForever) — the forward-progress guarantee a real
	// design needs so that sustained caching-write pressure cannot evict a
	// just-fetched operand before its (stalled, oldest) consumer has
	// gathered all of its operands. Reading or releasing the register
	// clears the pin; if every slot is pinned, replacement proceeds anyway
	// (see pickVictim), so inserts cannot deadlock.
	pinnedUntil uint64
	valid       bool
}

// pinForever marks a demand-fetched entry pinned until read.
const pinForever = ^uint64(0)

type transfer struct {
	reg       PhysReg
	gen       uint32
	deliverAt uint64
	demand    bool
}

type fetchRequest struct {
	reg PhysReg
	gen uint32
}

// fetchFIFO is an allocation-stable FIFO of fetch requests: pops advance a
// head index, and the backing array is rewound whenever the queue drains,
// so steady-state operation allocates nothing.
type fetchFIFO struct {
	buf  []fetchRequest
	head int
}

func (q *fetchFIFO) push(r fetchRequest) { q.buf = append(q.buf, r) }

func (q *fetchFIFO) pop() (fetchRequest, bool) {
	if q.head == len(q.buf) {
		q.reset()
		return fetchRequest{}, false
	}
	r := q.buf[q.head]
	q.head++
	if q.head == len(q.buf) {
		q.reset()
	}
	return r, true
}

func (q *fetchFIFO) reset() {
	q.buf = q.buf[:0]
	q.head = 0
}

func (q *fetchFIFO) len() int { return len(q.buf) - q.head }

// Queue membership states for CacheFile.queued.
const (
	queueNone uint8 = iota
	queueDemand
	queuePref
)

// CacheFile is the two-level register file cache. Only the upper bank
// feeds the functional units (ReadLatency 1, single bypass level); the
// lower bank receives every result and sources lower→upper transfers.
type CacheFile struct {
	cfg CacheConfig

	slots     []upperSlot
	slotOf    []int32 // per physical register: slot index or -1
	gen       []uint32
	freeSlots []int32
	repl      replacer

	inflight []bool  // per physical register: transfer in progress
	queued   []uint8 // per physical register: queueNone/queueDemand/queuePref

	demandQ fetchFIFO
	prefQ   fetchFIFO

	deliveries []transfer
	busFreeAt  []uint64 // per bus; empty when Buses == Unlimited

	lowerWB         *wbReservation
	now             uint64
	readsLeft       int
	upperWritesLeft int

	stats FileStats
}

// NewCacheFile validates cfg and builds the model.
func NewCacheFile(cfg CacheConfig) *CacheFile {
	if cfg.NumPhys <= 0 {
		panic("core: NumPhys must be positive")
	}
	if cfg.UpperSize <= 0 || cfg.UpperSize > cfg.NumPhys {
		panic(fmt.Sprintf("core: upper bank size %d out of range", cfg.UpperSize))
	}
	if cfg.ReadPorts <= 0 || cfg.UpperWritePorts <= 0 || cfg.LowerWritePorts <= 0 || cfg.Buses <= 0 {
		panic("core: port and bus counts must be positive (use Unlimited)")
	}
	if cfg.TransferCycles == 0 {
		cfg.TransferCycles = 2
	}
	if cfg.TransferCycles < 1 {
		panic("core: TransferCycles must be at least 1")
	}
	f := &CacheFile{
		cfg:      cfg,
		slots:    make([]upperSlot, cfg.UpperSize),
		slotOf:   make([]int32, cfg.NumPhys),
		gen:      make([]uint32, cfg.NumPhys),
		inflight: make([]bool, cfg.NumPhys),
		queued:   make([]uint8, cfg.NumPhys),
		repl:     newReplacer(cfg.Replacement, cfg.UpperSize),
		lowerWB:  newWBReservation(cfg.LowerWritePorts),
	}
	for i := range f.slotOf {
		f.slotOf[i] = -1
	}
	for i := cfg.UpperSize - 1; i >= 0; i-- {
		f.freeSlots = append(f.freeSlots, int32(i))
	}
	if cfg.Buses != Unlimited {
		f.busFreeAt = make([]uint64, cfg.Buses)
	}
	return f
}

// ReadLatency implements File: the upper bank is single-cycle.
func (f *CacheFile) ReadLatency() int { return 1 }

// BeginCycle implements File: deliver completed transfers, then grant free
// buses to queued demand fetches (first) and prefetches.
func (f *CacheFile) BeginCycle(t uint64) {
	f.now = t
	f.readsLeft = f.cfg.ReadPorts
	f.upperWritesLeft = f.cfg.UpperWritePorts
	f.lowerWB.advance(t)

	// Deliver transfers arriving this cycle.
	live := f.deliveries[:0]
	for _, tr := range f.deliveries {
		switch {
		case tr.deliverAt > t:
			live = append(live, tr)
		case tr.gen == f.gen[tr.reg]:
			f.inflight[tr.reg] = false
			pin := uint64(0)
			if tr.demand {
				pin = pinForever
			}
			f.insertUpperPinned(tr.reg, t, pin)
		default:
			// The register was released mid-flight; drop the transfer.
		}
	}
	f.deliveries = live

	// Grant buses: demand queue has priority over prefetches.
	for f.busAvailable(t) {
		req, demand, ok := f.popFetch()
		if !ok {
			break
		}
		f.takeBus(t)
		f.inflight[req.reg] = true
		f.deliveries = append(f.deliveries, transfer{
			reg: req.reg, gen: req.gen, deliverAt: t + 1, demand: demand,
		})
		if demand {
			f.stats.DemandFetches++
		} else {
			f.stats.Prefetches++
		}
	}
}

func (f *CacheFile) busAvailable(t uint64) bool {
	if f.cfg.Buses == Unlimited {
		return true
	}
	for _, free := range f.busFreeAt {
		if free <= t {
			return true
		}
	}
	return false
}

func (f *CacheFile) takeBus(t uint64) {
	if f.cfg.Buses == Unlimited {
		return
	}
	for i, free := range f.busFreeAt {
		if free <= t {
			f.busFreeAt[i] = t + uint64(f.cfg.TransferCycles)
			return
		}
	}
	panic("core: takeBus without available bus")
}

// popFetch pops the next live fetch request, demand queue first. A queue
// entry is live only while the register's queued state still names that
// queue — a prefetch entry promoted to a demand fetch leaves a dead entry
// behind, dropped here.
func (f *CacheFile) popFetch() (req fetchRequest, demand, ok bool) {
	for {
		req, ok := f.demandQ.pop()
		if !ok {
			break
		}
		if req.gen == f.gen[req.reg] && f.queued[req.reg] == queueDemand {
			f.queued[req.reg] = queueNone
			if f.slotOf[req.reg] < 0 && !f.inflight[req.reg] {
				return req, true, true
			}
		}
	}
	for {
		req, ok := f.prefQ.pop()
		if !ok {
			break
		}
		if req.gen == f.gen[req.reg] && f.queued[req.reg] == queuePref {
			f.queued[req.reg] = queueNone
			if f.slotOf[req.reg] < 0 && !f.inflight[req.reg] {
				return req, false, true
			}
		}
	}
	return fetchRequest{}, false, false
}

// insertUpper places reg into the upper bank, evicting a pseudo-LRU victim
// if the bank is full. The lower bank always retains the value, so
// evictions are silent drops.
func (f *CacheFile) insertUpper(reg PhysReg, readableAt uint64) {
	f.insertUpperPinned(reg, readableAt, 0)
}

func (f *CacheFile) insertUpperPinned(reg PhysReg, readableAt uint64, pinnedUntil uint64) {
	if f.slotOf[reg] >= 0 {
		// Already present (e.g. a caching write raced a prefetch); refresh.
		s := &f.slots[f.slotOf[reg]]
		s.readableAt = min64(s.readableAt, readableAt)
		if pinnedUntil > s.pinnedUntil {
			s.pinnedUntil = pinnedUntil
		}
		f.repl.Touch(int(f.slotOf[reg]))
		return
	}
	var slot int32
	if n := len(f.freeSlots); n > 0 {
		slot = f.freeSlots[n-1]
		f.freeSlots = f.freeSlots[:n-1]
		f.repl.Touch(int(slot))
	} else {
		slot = f.pickVictim()
		old := f.slots[slot]
		if old.valid {
			f.slotOf[old.reg] = -1
			f.stats.Evictions++
		}
	}
	f.slots[slot] = upperSlot{reg: reg, readableAt: readableAt, pinnedUntil: pinnedUntil, valid: true}
	f.slotOf[reg] = slot
}

// pickVictim returns a replacement slot, skipping pinned entries when
// possible. If every slot is pinned, replacement proceeds anyway so
// inserts cannot deadlock.
func (f *CacheFile) pickVictim() int32 {
	for try := 0; try < 4; try++ {
		v := int32(f.repl.Victim())
		if f.slots[v].pinnedUntil <= f.now {
			return v
		}
	}
	for i := range f.slots {
		if f.slots[i].pinnedUntil <= f.now {
			f.repl.Touch(i)
			return int32(i)
		}
	}
	return int32(f.repl.Victim())
}

func min64(a, b uint64) uint64 {
	if a < b {
		return a
	}
	return b
}

// ReserveWriteback implements File: results contend for lower-bank write
// ports.
func (f *CacheFile) ReserveWriteback(earliest uint64) uint64 {
	return f.lowerWB.reserve(earliest)
}

// TryRead implements File. Operands are served by the bypass network
// (issue at t ∈ {w−2, w−1}: the result is on the FU-output/write-back path,
// enabling back-to-back execution), or by the upper bank through a read
// port (t ≥ w); operands resident only in the lower bank make the
// instruction non-issuable and — when demand is true and every operand of
// the instruction has been produced — enqueue demand fetches
// (fetch-on-demand).
func (f *CacheFile) TryRead(t uint64, ops []Operand, demand bool) bool {
	portsNeeded := 0
	missing := false
	allProduced := true
	for i := range ops {
		p := ops[i].Reg
		w := ops[i].Bus
		switch {
		case t+2 == w || t+1 == w:
			ops[i].ViaBypass = true
		case t >= w:
			ops[i].ViaBypass = false
			if s := f.slotOf[p]; s >= 0 && f.slots[s].readableAt <= t {
				portsNeeded++
			} else {
				missing = true
			}
		default:
			allProduced = false
		}
	}
	if !allProduced {
		return false
	}
	if missing {
		if demand {
			for i := range ops {
				p := ops[i].Reg
				if t >= ops[i].Bus && f.slotOf[p] < 0 && !f.inflight[p] && f.queued[p] != queueDemand {
					// New request, or promotion of a pending prefetch to
					// demand priority (the stale prefetch-queue entry dies
					// at pop time).
					f.queued[p] = queueDemand
					f.demandQ.push(fetchRequest{reg: p, gen: f.gen[p]})
				}
			}
		}
		return false
	}
	if portsNeeded > f.readsLeft {
		f.stats.ReadPortConflicts++
		return false
	}
	f.readsLeft -= portsNeeded
	for i := range ops {
		if ops[i].ViaBypass {
			f.stats.BypassReads++
		} else {
			f.stats.Reads++
			f.stats.UpperHits++
			slot := f.slotOf[ops[i].Reg]
			f.slots[slot].pinnedUntil = 0 // consumed: the pin has done its job
			f.repl.Touch(int(slot))
		}
	}
	return true
}

// Writeback implements File: the result is written to the lower bank (slot
// already reserved) and, if the caching policy selects it and an upper
// write port is free this cycle, also to the upper bank. A missing port
// skips the caching write — the value remains safe in the lower bank.
func (f *CacheFile) Writeback(t uint64, p PhysReg, hints WBHints) {
	var cache bool
	switch f.cfg.Caching {
	case CacheNonBypass:
		cache = !hints.BypassCaught
	case CacheReady:
		cache = hints.ReadyConsumer
	case CacheAll:
		cache = true
	case CacheNone:
		cache = false
	}
	if !cache {
		return
	}
	if f.upperWritesLeft <= 0 {
		f.stats.CachingSkipped++
		return
	}
	f.upperWritesLeft--
	f.stats.CachingWrites++
	f.insertUpper(p, t)
}

// NotePrefetch implements File (prefetch-first-pair): stage p into the
// upper bank if its value has been produced and it is not already present,
// in flight, or queued.
func (f *CacheFile) NotePrefetch(t uint64, p PhysReg, w uint64) {
	if f.cfg.Prefetch != PrefetchFirstPair {
		return
	}
	if w > t { // value not yet produced; nothing to read from the lower bank
		return
	}
	if f.slotOf[p] >= 0 || f.inflight[p] || f.queued[p] != queueNone {
		return
	}
	f.queued[p] = queuePref
	f.prefQ.push(fetchRequest{reg: p, gen: f.gen[p]})
}

// Release implements File: invalidate any upper-bank copy and cancel
// pending transfers for p (the physical register is being reallocated).
func (f *CacheFile) Release(p PhysReg) {
	f.gen[p]++
	f.queued[p] = queueNone
	f.inflight[p] = false
	if s := f.slotOf[p]; s >= 0 {
		f.slots[s].valid = false
		f.slotOf[p] = -1
		f.freeSlots = append(f.freeSlots, s)
	}
}

// Stats implements File.
func (f *CacheFile) Stats() FileStats { return f.stats }

// UpperResidents returns the number of valid upper-bank entries (test and
// instrumentation hook).
func (f *CacheFile) UpperResidents() int {
	n := 0
	for _, s := range f.slots {
		if s.valid {
			n++
		}
	}
	return n
}

// InUpper reports whether p currently has an upper-bank copy.
func (f *CacheFile) InUpper(p PhysReg) bool { return f.slotOf[p] >= 0 }

// Describe reports p's residency state (diagnostics).
func (f *CacheFile) Describe(p PhysReg) string {
	return fmt.Sprintf("inUpper=%v inflight=%v queued=%d gen=%d demandQ=%d prefQ=%d deliveries=%d",
		f.slotOf[p] >= 0, f.inflight[p], f.queued[p], f.gen[p],
		f.demandQ.len(), f.prefQ.len(), len(f.deliveries))
}
