package core

import (
	"strings"
	"testing"
)

// These tests cover the less-traveled paths: the many-bank slow path of
// the one-level file, the generic File-interface fallbacks of the
// cluster-aware organizations, and the diagnostic helpers.

func TestOneLevelManyBanksSlowPath(t *testing.T) {
	f := NewOneLevel(OneLevelConfig{
		NumPhys: 64, Banks: 16, ReadPortsPerBank: 1, WritePortsPerBank: 1,
	})
	f.BeginCycle(10)
	// Registers 0 and 16 share bank 0 under the round-robin initial
	// spread; the per-bank port limit must hold on the slow path too.
	if !f.TryRead(10, ops([2]uint64{0, 0}), false) {
		t.Fatal("first bank-0 read should succeed")
	}
	if f.TryRead(10, ops([2]uint64{16, 0}), false) {
		t.Fatal("second bank-0 read should be port-limited")
	}
	if !f.TryRead(10, ops([2]uint64{1, 0}), false) {
		t.Fatal("bank-1 read should succeed")
	}
	// Bypass and not-ready classifications on the slow path.
	f.BeginCycle(8)
	o := ops([2]uint64{2, 10})
	if !f.TryRead(8, o, false) || !o[0].ViaBypass {
		t.Fatal("slow path should bypass at w-2")
	}
	f.BeginCycle(5)
	if f.TryRead(5, ops([2]uint64{2, 10}), false) {
		t.Fatal("slow path should reject unproduced operands")
	}
}

func TestOneLevelGenericWriteback(t *testing.T) {
	f := NewOneLevel(OneLevelConfig{
		NumPhys: 8, Banks: 2, ReadPortsPerBank: 1, WritePortsPerBank: 1,
	})
	f.BeginCycle(0)
	// The generic File method reserves in bank 0.
	if w := f.ReserveWriteback(3); w != 3 {
		t.Errorf("generic ReserveWriteback = %d", w)
	}
	if w := f.ReserveWriteback(3); w != 4 {
		t.Errorf("contended generic ReserveWriteback = %d, want 4", w)
	}
	// The no-op File methods must be callable.
	f.Writeback(3, 0, WBHints{})
	f.NotePrefetch(3, 0, 0)
}

func TestOneLevelUnknownAssignmentPanics(t *testing.T) {
	f := NewOneLevel(OneLevelConfig{
		NumPhys: 8, Banks: 2, ReadPortsPerBank: 1, WritePortsPerBank: 1,
		Assignment: BankAssignment(9),
	})
	defer func() {
		if recover() == nil {
			t.Fatal("unknown assignment policy did not panic")
		}
	}()
	f.AssignBank(0)
}

func TestReplicatedGenericFileInterface(t *testing.T) {
	f := repl2()
	f.BeginCycle(20)
	// TryRead without a cluster hint reads from cluster 0.
	if !f.TryRead(20, ops([2]uint64{1, 0}), false) {
		t.Fatal("generic TryRead failed")
	}
	if w := f.ReserveWriteback(25); w != 25 {
		t.Errorf("generic ReserveWriteback = %d", w)
	}
	// No-op methods must be callable through the interface.
	var file File = f
	file.Writeback(25, 1, WBHints{})
	file.NotePrefetch(25, 1, 0)
	file.Release(1)
	if file.ReadLatency() != 1 {
		t.Error("replicated banks are single-cycle")
	}
}

func TestReplicatedRemoteDelayDefault(t *testing.T) {
	f := NewReplicated(ReplicatedConfig{
		NumPhys: 8, Clusters: 2, ReadPortsPerBank: 1, WritePortsPerBank: 1,
		// RemoteDelay 0 defaults to 1, like the 21264.
	})
	f.SetHome(3, 0)
	f.BeginCycle(9)
	o := ops([2]uint64{3, 10})
	if !f.TryReadCluster(9, o, 1) || !o[0].ViaBypass {
		t.Fatal("remote consumer should see the bus at w+1 with the default delay")
	}
}

func TestCacheFileDescribe(t *testing.T) {
	f := NewCacheFile(PaperCacheConfig())
	f.BeginCycle(1)
	f.Writeback(1, 5, WBHints{})
	d := f.Describe(5)
	for _, want := range []string{"inUpper=true", "inflight=false", "queued=0"} {
		if !strings.Contains(d, want) {
			t.Errorf("Describe(5) = %q missing %q", d, want)
		}
	}
}

func TestCacheFileAllPinnedForcedEviction(t *testing.T) {
	// When every slot is pinned, inserts must still proceed (forced
	// eviction) so the file cannot deadlock.
	cfg := PaperCacheConfig()
	cfg.UpperSize = 2
	cfg.NumPhys = 16
	f := NewCacheFile(cfg)
	// Fill both slots with pinned demand fetches.
	f.BeginCycle(1)
	for _, r := range []PhysReg{1, 2} {
		f.Writeback(1, r, WBHints{BypassCaught: true}) // lower only
	}
	f.TryRead(1, ops([2]uint64{1, 1}), true)
	f.TryRead(1, ops([2]uint64{2, 1}), true)
	f.BeginCycle(2) // grants
	f.BeginCycle(3) // deliveries: both slots pinned
	if f.UpperResidents() != 2 {
		t.Fatalf("expected 2 pinned residents, have %d", f.UpperResidents())
	}
	// A caching write must still find a victim.
	f.Writeback(3, 9, WBHints{})
	if !f.InUpper(9) {
		t.Fatal("insert with all slots pinned did not proceed")
	}
	if f.UpperResidents() != 2 {
		t.Errorf("residents = %d after forced eviction", f.UpperResidents())
	}
}

func TestCacheFileStaleQueueEntriesDropped(t *testing.T) {
	// A prefetch promoted to a demand fetch leaves a dead prefetch-queue
	// entry; popping it must not grant a second transfer.
	cfg := PaperCacheConfig()
	cfg.Buses = 1
	f := NewCacheFile(cfg)
	f.BeginCycle(1)
	f.Writeback(1, 7, WBHints{BypassCaught: true}) // lower only
	f.NotePrefetch(1, 7, 1)                        // prefetch-queued
	f.TryRead(1, ops([2]uint64{7, 1}), true)       // promoted to demand
	f.BeginCycle(2)                                // grant (demand)
	f.BeginCycle(3)                                // delivery
	if got := f.Stats().DemandFetches; got != 1 {
		t.Errorf("demand fetches = %d, want 1", got)
	}
	if got := f.Stats().Prefetches; got != 0 {
		t.Errorf("stale prefetch entry was granted: %d", got)
	}
	if !f.InUpper(7) {
		t.Error("promoted fetch did not deliver")
	}
}

func TestMonolithicInterfaceNoops(t *testing.T) {
	var f File = NewMonolithic(MonolithicConfig{
		NumPhys: 8, Latency: 1, FullBypass: true, ReadPorts: 1, WritePorts: 1,
	})
	f.BeginCycle(0)
	f.Writeback(0, 1, WBHints{})
	f.NotePrefetch(0, 1, 0)
	f.Release(1)
	if f.ReadLatency() != 1 {
		t.Error("latency mismatch through the interface")
	}
}

func TestFileStatsSub(t *testing.T) {
	a := FileStats{Reads: 10, BypassReads: 8, ReadPortConflicts: 6, UpperHits: 5,
		DemandFetches: 4, Prefetches: 3, CachingWrites: 2, CachingSkipped: 1, Evictions: 9}
	b := FileStats{Reads: 1, BypassReads: 1, ReadPortConflicts: 1, UpperHits: 1,
		DemandFetches: 1, Prefetches: 1, CachingWrites: 1, CachingSkipped: 1, Evictions: 1}
	d := a.Sub(b)
	if d.Reads != 9 || d.BypassReads != 7 || d.ReadPortConflicts != 5 || d.UpperHits != 4 ||
		d.DemandFetches != 3 || d.Prefetches != 2 || d.CachingWrites != 1 ||
		d.CachingSkipped != 0 || d.Evictions != 8 {
		t.Errorf("Sub = %+v", d)
	}
}
