package core

import "fmt"

// BankAssignment selects how results are distributed over the banks of a
// one-level organization.
type BankAssignment uint8

const (
	// AssignRoundRobin cycles destination registers over the banks.
	AssignRoundRobin BankAssignment = iota
	// AssignLeastLoaded places each result in the bank with the fewest
	// live registers.
	AssignLeastLoaded
)

// String returns the assignment policy name.
func (b BankAssignment) String() string {
	switch b {
	case AssignRoundRobin:
		return "round-robin"
	case AssignLeastLoaded:
		return "least-loaded"
	}
	return "unknown"
}

// OneLevelConfig describes a single-level multiple-banked register file:
// every bank can feed the functional units directly, each result lives in
// exactly one bank (no replication), and banks have private read/write
// ports. This is the organization the paper outlines in Section 3
// (Figure 4a) and lists as ongoing work; it is implemented here as an
// extension for comparison against the register file cache.
type OneLevelConfig struct {
	// NumPhys is the number of physical registers.
	NumPhys int
	// Banks is the number of banks.
	Banks int
	// ReadPortsPerBank and WritePortsPerBank bound per-bank, per-cycle
	// port usage.
	ReadPortsPerBank, WritePortsPerBank int
	// Assignment selects the result-distribution policy.
	Assignment BankAssignment
}

// OneLevel is the single-level multiple-banked register file. All banks
// are one-cycle with a single bypass level; the cost of banking is read
// port contention within each bank.
type OneLevel struct {
	cfg       OneLevelConfig
	bankOf    []int32 // per physical register; -1 until first write-back
	live      []int   // live registers per bank (least-loaded policy)
	readsLeft []int
	wb        []*wbReservation
	nextBank  int
	now       uint64
	stats     FileStats
}

// NewOneLevel validates cfg and builds the model.
func NewOneLevel(cfg OneLevelConfig) *OneLevel {
	if cfg.NumPhys <= 0 {
		panic("core: NumPhys must be positive")
	}
	if cfg.Banks <= 0 {
		panic("core: bank count must be positive")
	}
	if cfg.ReadPortsPerBank <= 0 || cfg.WritePortsPerBank <= 0 {
		panic("core: port counts must be positive (use Unlimited)")
	}
	f := &OneLevel{
		cfg:       cfg,
		bankOf:    make([]int32, cfg.NumPhys),
		live:      make([]int, cfg.Banks),
		readsLeft: make([]int, cfg.Banks),
		wb:        make([]*wbReservation, cfg.Banks),
	}
	for i := range f.bankOf {
		// Architectural initial values are spread round-robin.
		f.bankOf[i] = int32(i % cfg.Banks)
		f.live[i%cfg.Banks]++
	}
	for b := range f.wb {
		f.wb[b] = newWBReservation(cfg.WritePortsPerBank)
	}
	return f
}

// ReadLatency implements File: banks are single-cycle.
func (f *OneLevel) ReadLatency() int { return 1 }

// BeginCycle implements File.
func (f *OneLevel) BeginCycle(t uint64) {
	f.now = t
	for b := range f.readsLeft {
		f.readsLeft[b] = f.cfg.ReadPortsPerBank
		f.wb[b].advance(t)
	}
}

// AssignBank chooses (and records) the home bank for physical register p
// according to the assignment policy. The simulator calls it at rename
// time, when the destination register is allocated.
func (f *OneLevel) AssignBank(p PhysReg) int {
	var b int
	switch f.cfg.Assignment {
	case AssignRoundRobin:
		b = f.nextBank
		f.nextBank = (f.nextBank + 1) % f.cfg.Banks
	case AssignLeastLoaded:
		b = 0
		for i := 1; i < f.cfg.Banks; i++ {
			if f.live[i] < f.live[b] {
				b = i
			}
		}
	default:
		panic(fmt.Sprintf("core: unknown bank assignment %d", f.cfg.Assignment))
	}
	f.bankOf[p] = int32(b)
	f.live[b]++
	return b
}

// ReserveWriteback implements File. The bank is not known to this method,
// so the one-level file exposes ReserveWritebackBank; ReserveWriteback
// reserves in the most recently assigned register's bank only when callers
// use the generic interface. To keep the File contract usable, the generic
// method reserves the globally earliest slot across banks for the last
// assigned bank — simulators that model banking precisely should call
// ReserveWritebackBank.
func (f *OneLevel) ReserveWriteback(earliest uint64) uint64 {
	// Generic fallback: pick the bank with the earliest available slot.
	best := f.wb[0].reserve(earliest)
	return best
}

// ReserveWritebackBank books a write-back slot in p's home bank.
func (f *OneLevel) ReserveWritebackBank(p PhysReg, earliest uint64) uint64 {
	return f.wb[f.bankOf[p]].reserve(earliest)
}

// TryRead implements File: operands arrive via the (single-level) bypass
// at t = w−1, otherwise through a read port of the operand's home bank.
func (f *OneLevel) TryRead(t uint64, ops []Operand, demand bool) bool {
	var need [8]int // per-bank demand of this instruction (≤ Banks banks used)
	if f.cfg.Banks > len(need) {
		return f.tryReadSlow(t, ops)
	}
	for i := range ops {
		w := ops[i].Bus
		switch {
		case t+2 == w:
			ops[i].ViaBypass = true
		case t+1 >= w:
			ops[i].ViaBypass = false
			need[f.bankOf[ops[i].Reg]]++
		default:
			return false
		}
	}
	for b := 0; b < f.cfg.Banks; b++ {
		if need[b] > f.readsLeft[b] {
			f.stats.ReadPortConflicts++
			return false
		}
	}
	for b := 0; b < f.cfg.Banks; b++ {
		f.readsLeft[b] -= need[b]
	}
	for i := range ops {
		if ops[i].ViaBypass {
			f.stats.BypassReads++
		} else {
			f.stats.Reads++
		}
	}
	return true
}

// tryReadSlow handles configurations with more banks than the fast path's
// fixed buffer.
func (f *OneLevel) tryReadSlow(t uint64, ops []Operand) bool {
	need := make(map[int32]int, len(ops))
	for i := range ops {
		w := ops[i].Bus
		switch {
		case t+2 == w:
			ops[i].ViaBypass = true
		case t+1 >= w:
			ops[i].ViaBypass = false
			need[f.bankOf[ops[i].Reg]]++
		default:
			return false
		}
	}
	for b, n := range need {
		if n > f.readsLeft[b] {
			f.stats.ReadPortConflicts++
			return false
		}
	}
	for b, n := range need {
		f.readsLeft[b] -= n
	}
	for i := range ops {
		if ops[i].ViaBypass {
			f.stats.BypassReads++
		} else {
			f.stats.Reads++
		}
	}
	return true
}

// Writeback implements File; nothing beyond the reserved bank write is
// needed.
func (f *OneLevel) Writeback(t uint64, p PhysReg, hints WBHints) {}

// NotePrefetch implements File; a one-level organization has no transfers.
func (f *OneLevel) NotePrefetch(t uint64, p PhysReg, w uint64) {}

// Release implements File: the register's bank slot is freed.
func (f *OneLevel) Release(p PhysReg) {
	if b := f.bankOf[p]; b >= 0 && f.live[b] > 0 {
		f.live[b]--
	}
}

// Stats implements File.
func (f *OneLevel) Stats() FileStats { return f.stats }

// BankOf returns p's current home bank (test hook).
func (f *OneLevel) BankOf(p PhysReg) int { return int(f.bankOf[p]) }
