package core

// Replacement selects the upper-bank replacement policy.
type Replacement uint8

const (
	// PseudoLRU is the paper's tree pseudo-LRU policy.
	PseudoLRU Replacement = iota
	// TrueLRU is an exact-LRU variant, provided for ablation studies.
	TrueLRU
)

// String returns the policy name.
func (r Replacement) String() string {
	switch r {
	case PseudoLRU:
		return "pseudo-LRU"
	case TrueLRU:
		return "true-LRU"
	}
	return "unknown"
}

// replacer picks victims among n slots.
type replacer interface {
	// Touch marks slot i most recently used.
	Touch(i int)
	// Victim returns the slot to replace (and marks it used).
	Victim() int
}

// treePLRU is a binary-tree pseudo-LRU over a power-of-two number of slots.
// Each internal node stores one bit pointing toward the less recently used
// subtree.
type treePLRU struct {
	bits []bool // internal nodes, heap order; len = n-1
	n    int
}

func newTreePLRU(n int) *treePLRU {
	if n <= 0 || n&(n-1) != 0 {
		panic("core: tree pseudo-LRU size must be a positive power of two")
	}
	return &treePLRU{bits: make([]bool, n-1), n: n}
}

// Touch implements replacer: flip the bits along the path to i so they
// point away from it.
func (p *treePLRU) Touch(i int) {
	if i < 0 || i >= p.n {
		panic("core: pseudo-LRU touch out of range")
	}
	node := 0
	lo, hi := 0, p.n
	for hi-lo > 1 {
		mid := (lo + hi) / 2
		if i < mid {
			p.bits[node] = true // LRU side is the right subtree
			node = 2*node + 1
			hi = mid
		} else {
			p.bits[node] = false // LRU side is the left subtree
			node = 2*node + 2
			lo = mid
		}
	}
}

// Victim implements replacer: follow the LRU bits to a leaf and touch it.
func (p *treePLRU) Victim() int {
	node := 0
	lo, hi := 0, p.n
	for hi-lo > 1 {
		mid := (lo + hi) / 2
		if p.bits[node] {
			// A true bit records that the last access went left, so the
			// LRU side is the right subtree.
			node = 2*node + 2
			lo = mid
		} else {
			node = 2*node + 1
			hi = mid
		}
	}
	p.Touch(lo)
	return lo
}

// listLRU is exact LRU via use timestamps.
type listLRU struct {
	stamp []uint64
	clock uint64
}

func newListLRU(n int) *listLRU {
	if n <= 0 {
		panic("core: LRU size must be positive")
	}
	return &listLRU{stamp: make([]uint64, n)}
}

// Touch implements replacer.
func (l *listLRU) Touch(i int) {
	l.clock++
	l.stamp[i] = l.clock
}

// Victim implements replacer.
func (l *listLRU) Victim() int {
	best := 0
	for i := 1; i < len(l.stamp); i++ {
		if l.stamp[i] < l.stamp[best] {
			best = i
		}
	}
	l.Touch(best)
	return best
}

// newReplacer builds the requested policy; pseudo-LRU falls back to exact
// LRU for non-power-of-two sizes.
func newReplacer(policy Replacement, n int) replacer {
	if policy == PseudoLRU && n&(n-1) == 0 {
		return newTreePLRU(n)
	}
	return newListLRU(n)
}
