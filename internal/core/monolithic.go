package core

import "fmt"

// MonolithicConfig describes a single-banked register file.
type MonolithicConfig struct {
	// NumPhys is the number of physical registers.
	NumPhys int
	// Latency is the read access time in cycles (1 or 2 in the paper).
	Latency int
	// FullBypass selects a complete bypass network (one level per read
	// cycle). When false, only the last bypass level is present: dependent
	// instructions may issue no earlier than one cycle before the
	// producer's write-back.
	FullBypass bool
	// ReadPorts and WritePorts bound per-cycle port usage; use Unlimited
	// for the infinite-bandwidth experiments.
	ReadPorts, WritePorts int
}

// Monolithic is a single-banked register file: the paper's baseline
// architectures (1-cycle; 2-cycle with full bypass; 2-cycle with a single
// level of bypass).
type Monolithic struct {
	cfg       MonolithicConfig
	wb        *wbReservation
	now       uint64
	readsLeft int
	stats     FileStats
}

// NewMonolithic validates cfg and builds the model.
func NewMonolithic(cfg MonolithicConfig) *Monolithic {
	if cfg.NumPhys <= 0 {
		panic("core: NumPhys must be positive")
	}
	if cfg.Latency < 1 {
		panic(fmt.Sprintf("core: latency %d out of range", cfg.Latency))
	}
	if cfg.ReadPorts <= 0 || cfg.WritePorts <= 0 {
		panic("core: port counts must be positive (use Unlimited)")
	}
	return &Monolithic{cfg: cfg, wb: newWBReservation(cfg.WritePorts)}
}

// ReadLatency implements File.
func (m *Monolithic) ReadLatency() int { return m.cfg.Latency }

// BeginCycle implements File.
func (m *Monolithic) BeginCycle(t uint64) {
	m.now = t
	m.readsLeft = m.cfg.ReadPorts
	m.wb.advance(t)
}

// ReserveWriteback implements File.
func (m *Monolithic) ReserveWriteback(earliest uint64) uint64 {
	return m.wb.reserve(earliest)
}

// minIssueDelta returns how many cycles before the producer's write-back a
// consumer may issue. With L bypass levels (full bypass), the earliest
// consumer executes back-to-back at c+1 = w, i.e. issues at w−(L+1). With
// only the last level, the earliest execution is w+L−1, i.e. issue at w−2.
// The register file itself serves issues at w−1 and later (write-through:
// a value written at w is readable by a read stage starting at w).
func (m *Monolithic) minIssueDelta() uint64 {
	if m.cfg.FullBypass {
		return uint64(m.cfg.Latency) + 1
	}
	return 2
}

// TryRead implements File. An operand with bus cycle w is obtainable at
// issue cycle t iff t+delta ≥ w (delta per minIssueDelta); it comes from
// the bypass network (no port) iff t ≤ w−2; issues at t ≥ w−1 read through
// a port.
func (m *Monolithic) TryRead(t uint64, ops []Operand, demand bool) bool {
	delta := m.minIssueDelta()
	portsNeeded := 0
	for i := range ops {
		if t+delta < ops[i].Bus {
			return false // value not yet catchable
		}
		if t+1 < ops[i].Bus {
			ops[i].ViaBypass = true
		} else {
			ops[i].ViaBypass = false
			portsNeeded++
		}
	}
	if portsNeeded > m.readsLeft {
		m.stats.ReadPortConflicts++
		return false
	}
	m.readsLeft -= portsNeeded
	for i := range ops {
		if ops[i].ViaBypass {
			m.stats.BypassReads++
		} else {
			m.stats.Reads++
		}
	}
	return true
}

// Writeback implements File. The lower-bank write slot was reserved by
// ReserveWriteback; nothing further is needed for a single bank.
func (m *Monolithic) Writeback(t uint64, p PhysReg, hints WBHints) {}

// NotePrefetch implements File; a single bank has nothing to prefetch.
func (m *Monolithic) NotePrefetch(t uint64, p PhysReg, w uint64) {}

// Release implements File; a single bank keeps no cached state.
func (m *Monolithic) Release(p PhysReg) {}

// Stats implements File.
func (m *Monolithic) Stats() FileStats { return m.stats }
