// Package isa defines the dynamic instruction model consumed by the
// pipeline simulator.
//
// The simulator is trace-driven: workloads are streams of already-decoded
// dynamic instructions (see internal/trace). Instructions carry logical
// register operands, a class that selects a functional unit and latency,
// and — for branches and memory operations — the metadata the timing model
// needs (actual outcome, effective address). Values are never computed;
// only timing is simulated, which is exactly what the paper measures.
package isa

import "fmt"

// Class identifies the kind of functional unit an instruction needs.
type Class uint8

const (
	// IntALU is a simple 1-cycle integer operation.
	IntALU Class = iota
	// IntMul is an integer multiply (2 cycles in the paper's Table 1).
	IntMul
	// IntDiv is an integer divide (14 cycles).
	IntDiv
	// FPALU is a simple FP operation (2 cycles).
	FPALU
	// FPDiv is an FP divide (14 cycles).
	FPDiv
	// Load is a memory read through the load/store unit.
	Load
	// Store is a memory write through the load/store unit.
	Store
	// Branch is a conditional branch, executed on a simple integer unit.
	Branch
	// NumClasses is the number of instruction classes.
	NumClasses
)

var classNames = [NumClasses]string{
	"IntALU", "IntMul", "IntDiv", "FPALU", "FPDiv", "Load", "Store", "Branch",
}

// String returns the class mnemonic.
func (c Class) String() string {
	if int(c) < len(classNames) {
		return classNames[c]
	}
	return fmt.Sprintf("Class(%d)", uint8(c))
}

// IsMem reports whether the class accesses data memory.
func (c Class) IsMem() bool { return c == Load || c == Store }

// IsFP reports whether the class uses the floating-point register file.
func (c Class) IsFP() bool { return c == FPALU || c == FPDiv }

// Register file name spaces. The simulated ISA is RISC-like with 32 integer
// and 32 FP logical registers, like the Alpha ISA used in the paper.
const (
	// NumLogicalInt is the number of integer logical registers.
	NumLogicalInt = 32
	// NumLogicalFP is the number of FP logical registers.
	NumLogicalFP = 32
	// NumLogical is the total logical register count across both files.
	NumLogical = NumLogicalInt + NumLogicalFP
)

// Reg is a logical register number. Integer registers are 0..31 and FP
// registers are 32..63. RegNone marks an absent operand.
type Reg int16

// RegNone marks an absent source or destination operand.
const RegNone Reg = -1

// IsFP reports whether r names an FP logical register.
func (r Reg) IsFP() bool { return r >= NumLogicalInt }

// Valid reports whether r names a real register (not RegNone).
func (r Reg) Valid() bool { return r >= 0 && r < NumLogical }

// IntReg returns the logical register for integer register number n.
func IntReg(n int) Reg { return Reg(n) }

// FPReg returns the logical register for FP register number n.
func FPReg(n int) Reg { return Reg(NumLogicalInt + n) }

// Instr is one dynamic (already fetched-and-decoded) instruction.
type Instr struct {
	// PC is the instruction address (byte-addressed), used by the I-cache
	// and branch predictor.
	PC uint64
	// Class selects the functional unit and latency.
	Class Class
	// Dest is the destination logical register, or RegNone (stores,
	// branches).
	Dest Reg
	// Src1 and Src2 are source logical registers, RegNone if unused.
	Src1, Src2 Reg
	// Addr is the effective address for loads and stores.
	Addr uint64
	// Taken is the actual outcome for branches.
	Taken bool
	// Target is the branch target address for taken branches.
	Target uint64
}

// HasDest reports whether the instruction writes a register.
func (in *Instr) HasDest() bool { return in.Dest.Valid() }

// Sources appends the valid source registers of in to dst and returns it.
func (in *Instr) Sources(dst []Reg) []Reg {
	if in.Src1.Valid() {
		dst = append(dst, in.Src1)
	}
	if in.Src2.Valid() {
		dst = append(dst, in.Src2)
	}
	return dst
}

// String formats the instruction for debugging.
func (in *Instr) String() string {
	s := fmt.Sprintf("%#x %s", in.PC, in.Class)
	if in.Dest.Valid() {
		s += fmt.Sprintf(" d%d", in.Dest)
	}
	if in.Src1.Valid() {
		s += fmt.Sprintf(" s%d", in.Src1)
	}
	if in.Src2.Valid() {
		s += fmt.Sprintf(" s%d", in.Src2)
	}
	if in.Class.IsMem() {
		s += fmt.Sprintf(" @%#x", in.Addr)
	}
	if in.Class == Branch {
		if in.Taken {
			s += fmt.Sprintf(" T->%#x", in.Target)
		} else {
			s += " NT"
		}
	}
	return s
}

// Stream produces dynamic instructions one at a time. Implementations must
// be deterministic for a given construction so that different register file
// architectures are compared on identical instruction sequences.
type Stream interface {
	// Next returns the next dynamic instruction. The returned pointer is
	// only valid until the following call to Next.
	Next() *Instr
}

// Latency returns the execution latency in cycles for each class, per the
// paper's Table 1 (simple int 1; int mult 2; int div 14; simple FP 2;
// FP div 14; loads/stores take 1 cycle in the FU plus cache time; branches
// execute on simple integer units).
func Latency(c Class) int {
	switch c {
	case IntALU, Branch:
		return 1
	case IntMul:
		return 2
	case IntDiv:
		return 14
	case FPALU:
		return 2
	case FPDiv:
		return 14
	case Load, Store:
		return 1 // address generation; memory time added by the D-cache model
	}
	return 1
}
