package isa

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestClassString(t *testing.T) {
	cases := map[Class]string{
		IntALU: "IntALU", IntMul: "IntMul", IntDiv: "IntDiv",
		FPALU: "FPALU", FPDiv: "FPDiv", Load: "Load", Store: "Store",
		Branch: "Branch",
	}
	for c, want := range cases {
		if got := c.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", c, got, want)
		}
	}
	if got := Class(200).String(); !strings.Contains(got, "200") {
		t.Errorf("out-of-range class String() = %q", got)
	}
}

func TestClassPredicates(t *testing.T) {
	for c := Class(0); c < NumClasses; c++ {
		wantMem := c == Load || c == Store
		if got := c.IsMem(); got != wantMem {
			t.Errorf("%v.IsMem() = %v, want %v", c, got, wantMem)
		}
		wantFP := c == FPALU || c == FPDiv
		if got := c.IsFP(); got != wantFP {
			t.Errorf("%v.IsFP() = %v, want %v", c, got, wantFP)
		}
	}
}

func TestRegNamespaces(t *testing.T) {
	if r := IntReg(5); r.IsFP() || !r.Valid() {
		t.Errorf("IntReg(5) = %d: IsFP=%v Valid=%v", r, r.IsFP(), r.Valid())
	}
	if r := FPReg(5); !r.IsFP() || !r.Valid() {
		t.Errorf("FPReg(5) = %d: IsFP=%v Valid=%v", r, r.IsFP(), r.Valid())
	}
	if RegNone.Valid() {
		t.Error("RegNone reported Valid")
	}
	if Reg(NumLogical).Valid() {
		t.Error("out-of-range register reported Valid")
	}
}

func TestSources(t *testing.T) {
	in := Instr{Src1: IntReg(1), Src2: IntReg(2)}
	got := in.Sources(nil)
	if len(got) != 2 || got[0] != IntReg(1) || got[1] != IntReg(2) {
		t.Errorf("Sources = %v", got)
	}
	in = Instr{Src1: RegNone, Src2: IntReg(2)}
	got = in.Sources(nil)
	if len(got) != 1 || got[0] != IntReg(2) {
		t.Errorf("Sources with one operand = %v", got)
	}
	in = Instr{Src1: RegNone, Src2: RegNone}
	if got := in.Sources(nil); len(got) != 0 {
		t.Errorf("Sources with no operands = %v", got)
	}
}

func TestHasDest(t *testing.T) {
	in := Instr{Dest: IntReg(3)}
	if !in.HasDest() {
		t.Error("HasDest false for valid dest")
	}
	in.Dest = RegNone
	if in.HasDest() {
		t.Error("HasDest true for RegNone")
	}
}

func TestLatencyTable(t *testing.T) {
	want := map[Class]int{
		IntALU: 1, Branch: 1, IntMul: 2, IntDiv: 14,
		FPALU: 2, FPDiv: 14, Load: 1, Store: 1,
	}
	for c, lat := range want {
		if got := Latency(c); got != lat {
			t.Errorf("Latency(%v) = %d, want %d", c, got, lat)
		}
	}
}

func TestInstrString(t *testing.T) {
	in := Instr{PC: 0x1000, Class: Load, Dest: IntReg(4), Src1: IntReg(2), Src2: RegNone, Addr: 0xbeef}
	s := in.String()
	for _, sub := range []string{"0x1000", "Load", "d4", "s2", "0xbeef"} {
		if !strings.Contains(s, sub) {
			t.Errorf("String() = %q missing %q", s, sub)
		}
	}
	br := Instr{PC: 0x2000, Class: Branch, Dest: RegNone, Src1: IntReg(1), Src2: RegNone, Taken: true, Target: 0x3000}
	s = br.String()
	if !strings.Contains(s, "T->0x3000") {
		t.Errorf("taken branch String() = %q", s)
	}
	br.Taken = false
	if s = br.String(); !strings.Contains(s, "NT") {
		t.Errorf("not-taken branch String() = %q", s)
	}
}

// Property: IntReg and FPReg never collide and are always valid for
// in-range inputs.
func TestQuickRegSpaces(t *testing.T) {
	f := func(nRaw uint8) bool {
		n := int(nRaw % NumLogicalInt)
		i, fp := IntReg(n), FPReg(n)
		return i.Valid() && fp.Valid() && i != fp && !i.IsFP() && fp.IsFP()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
