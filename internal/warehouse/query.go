package warehouse

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strconv"

	"repro/internal/stats"
	"repro/internal/trace"
	"repro/rf/api"
)

// Pagination bounds for rows queries.
const (
	// DefaultLimit is the rows-query page size when the document asks for
	// none.
	DefaultLimit = 1000
	// MaxLimit caps one page; larger requests are clamped, not rejected,
	// so a generous client still pages correctly.
	MaxLimit = 10000
)

var (
	queryOps   = map[string]bool{api.QueryOpRows: true, api.QueryOpAggregate: true, api.QueryOpPareto: true, api.QueryOpSeries: true}
	metricOps  = map[string]bool{"sum": true, "mean": true, "min": true, "max": true}
	metricCols = map[string]bool{
		"ipc": true, "cycles": true, "instructions": true, "area": true,
		"mispredict_rate": true, "icache_miss_rate": true, "dcache_miss_rate": true,
	}
	groupCols = map[string]bool{"benchmark": true, "arch": true, "family": true, "suite": true, "sweep": true}
	dimCols   = map[string]bool{
		"read_ports": true, "write_ports": true, "buses": true,
		"upper_sizes": true, "banks": true, "clusters": true, "phys_regs": true,
	}
)

// ParseQuery decodes and validates a JSON query document. Unknown
// fields, trailing garbage, unsupported schema versions and unknown
// vocabulary are all rejected loudly, mirroring sweep.ParseSpec.
func ParseQuery(data []byte) (*api.Query, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var q api.Query
	if err := dec.Decode(&q); err != nil {
		return nil, fmt.Errorf("warehouse: bad query: %w", err)
	}
	if err := dec.Decode(new(json.RawMessage)); err != io.EOF {
		return nil, fmt.Errorf("warehouse: bad query: trailing data after document")
	}
	if err := ValidateQuery(&q); err != nil {
		return nil, err
	}
	return &q, nil
}

// ValidateQuery reports a query-document error, or nil.
func ValidateQuery(q *api.Query) error {
	if q.Schema != 0 && q.Schema != api.Version {
		return fmt.Errorf("warehouse: query schema version %d not supported (this build speaks %d)",
			q.Schema, api.Version)
	}
	if q.Op != "" && !queryOps[q.Op] {
		return fmt.Errorf("warehouse: unknown query op %q", q.Op)
	}
	seen := map[string]bool{}
	for _, g := range q.GroupBy {
		if !groupCols[g] {
			return fmt.Errorf("warehouse: unknown group_by column %q", g)
		}
		if seen[g] {
			return fmt.Errorf("warehouse: duplicate group_by column %q", g)
		}
		seen[g] = true
	}
	for _, m := range q.Metrics {
		if !metricOps[m.Op] {
			return fmt.Errorf("warehouse: unknown metric op %q", m.Op)
		}
		if !metricCols[m.Metric] {
			return fmt.Errorf("warehouse: unknown metric %q", m.Metric)
		}
	}
	for dim, vals := range q.Dims {
		if !dimCols[dim] {
			return fmt.Errorf("warehouse: unknown dimension %q", dim)
		}
		for _, v := range vals {
			if v < 0 {
				return fmt.Errorf("warehouse: dimension %s value %d must be ≥ 0 (0 matches unlimited)", dim, v)
			}
		}
	}
	if q.Limit < 0 {
		return fmt.Errorf("warehouse: limit %d must be ≥ 0", q.Limit)
	}
	if q.Cursor != "" {
		if _, err := strconv.ParseUint(q.Cursor, 10, 63); err != nil {
			return fmt.Errorf("warehouse: bad cursor %q", q.Cursor)
		}
	}
	return nil
}

// segFilter is one segment's compiled row predicate: the query's string
// filters resolved to dictionary-id sets, so the scan compares integers.
type segFilter struct {
	never bool // a filter names values absent from this segment
	sets  []idSet
	dims  []dimSet
}

type idSet struct {
	col   []uint32
	allow map[uint32]bool
}

type dimSet struct {
	col   []uint32
	allow map[uint32]bool
}

// compileFilter resolves the query's filters against one segment.
func compileFilter(s *Segment, q *api.Query) segFilter {
	var f segFilter
	addStr := func(col string, want []string) {
		if len(want) == 0 {
			return
		}
		allow := map[uint32]bool{}
		for id, v := range s.dicts[col] {
			for _, w := range want {
				if v == w {
					allow[uint32(id)] = true
				}
			}
		}
		if len(allow) == 0 {
			f.never = true
			return
		}
		f.sets = append(f.sets, idSet{col: s.str[col], allow: allow})
	}
	addStr("benchmark", q.Benchmarks)
	addStr("arch", q.Archs)
	addStr("family", q.Families)
	for dim, vals := range q.Dims {
		if len(vals) == 0 {
			continue // an empty list filters nothing, like the string filters
		}
		allow := map[uint32]bool{}
		for _, v := range vals {
			allow[uint32(v)] = true
		}
		f.dims = append(f.dims, dimSet{col: s.u32[dim], allow: allow})
	}
	return f
}

func (f *segFilter) match(i int) bool {
	for _, set := range f.sets {
		if !set.allow[set.col[i]] {
			return false
		}
	}
	for _, d := range f.dims {
		if !d.allow[d.col[i]] {
			return false
		}
	}
	return true
}

// metricAt returns a metric accessor for one segment, or nil for an
// unknown metric (already rejected by validation).
func metricAt(s *Segment, metric string) func(int) float64 {
	switch metric {
	case "cycles":
		col := s.u64["cycles"]
		return func(i int) float64 { return float64(col[i]) }
	case "instructions":
		col := s.u64["instructions"]
		return func(i int) float64 { return float64(col[i]) }
	default:
		col := s.f64[metric]
		if col == nil && s.N > 0 {
			return nil
		}
		return func(i int) float64 { return col[i] }
	}
}

// safeHmean is stats.HarmonicMean tolerant of degenerate data: it
// returns 0 for an empty slice or any non-positive value instead of
// panicking, since a warehouse query must not crash the server on a
// pathological row.
func safeHmean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	for _, x := range xs {
		if x <= 0 {
			return 0
		}
	}
	return stats.HarmonicMean(xs)
}

// Eval runs a validated query over the given segments, scanning them in
// slice order. The scan order is deterministic — segments sorted by
// sweep id, rows in job-expansion order — so float accumulations are
// reproducible and a rebuilt warehouse answers byte-identically.
func Eval(segs []*Segment, q *api.Query) (*api.QueryResult, error) {
	if err := ValidateQuery(q); err != nil {
		return nil, err
	}
	op := q.Op
	if op == "" {
		op = api.QueryOpRows
	}
	res := &api.QueryResult{Schema: api.Version, Op: op}

	limit := q.Limit
	if limit == 0 {
		limit = DefaultLimit
	}
	if limit > MaxLimit {
		limit = MaxLimit
	}
	offset := 0
	if q.Cursor != "" {
		v, err := strconv.ParseUint(q.Cursor, 10, 63)
		if err != nil {
			return nil, fmt.Errorf("warehouse: bad cursor %q", q.Cursor)
		}
		offset = int(v)
	}

	agg := newAggregator(q)
	for _, s := range segs {
		if q.Sweep != "" && s.Sweep != q.Sweep {
			continue
		}
		f := compileFilter(s, q)
		if f.never {
			continue
		}
		metrics := make([]func(int) float64, len(agg.metrics))
		for mi, m := range agg.metrics {
			metrics[mi] = metricAt(s, m.Metric)
		}
		for i := 0; i < s.N; i++ {
			if !f.match(i) {
				continue
			}
			switch op {
			case api.QueryOpRows:
				if res.Matched >= offset && len(res.Rows) < limit {
					res.Rows = append(res.Rows, rowAt(s, i))
				}
			case api.QueryOpAggregate:
				agg.add(s, i, metrics)
			case api.QueryOpSeries, api.QueryOpPareto:
				agg.addSeries(s, i)
			}
			res.Matched++
		}
	}

	switch op {
	case api.QueryOpRows:
		if offset+len(res.Rows) < res.Matched && len(res.Rows) == limit {
			res.NextCursor = strconv.Itoa(offset + len(res.Rows))
		}
	case api.QueryOpAggregate:
		res.Groups = agg.groups()
	case api.QueryOpSeries:
		res.Series = agg.series()
	case api.QueryOpPareto:
		res.Frontier = agg.frontier()
	}
	return res, nil
}

// rowAt materializes one segment row as a wire row.
func rowAt(s *Segment, i int) api.QueryRow {
	return api.QueryRow{
		Sweep:        s.Sweep,
		Benchmark:    s.strAt("benchmark", i),
		Arch:         s.strAt("arch", i),
		Family:       s.strAt("family", i),
		FP:           s.fp[i],
		Seed:         s.u64["seed"][i],
		Instructions: s.u64["instructions"][i],
		Cycles:       s.u64["cycles"][i],
		IPC:          s.f64["ipc"][i],
		MispredRate:  s.f64["mispredict_rate"][i],
		ICacheMiss:   s.f64["icache_miss_rate"][i],
		DCacheMiss:   s.f64["dcache_miss_rate"][i],
		Area:         s.f64["area"][i],
		Key:          s.keys[i],
	}
}

// aggregator accumulates group-by buckets (aggregate op) and per-arch /
// per-benchmark IPC cells (series and pareto ops).
type aggregator struct {
	groupBy []string
	metrics []api.QueryMetric

	buckets map[string]*bucket

	archOrder  []string
	archCells  map[string]map[string]*cell // arch → benchmark → mean cell
	archArea   map[string]float64
	benchOrder []string
	benchFP    map[string]bool
}

type bucket struct {
	key   []string
	count int
	sum   []float64
	min   []float64
	max   []float64
}

type cell struct {
	sum float64
	n   int
}

func newAggregator(q *api.Query) *aggregator {
	metrics := q.Metrics
	if len(metrics) == 0 {
		metrics = []api.QueryMetric{{Op: "mean", Metric: "ipc"}}
	}
	return &aggregator{
		groupBy: q.GroupBy, metrics: metrics,
		buckets:   map[string]*bucket{},
		archCells: map[string]map[string]*cell{}, archArea: map[string]float64{},
		benchFP: map[string]bool{},
	}
}

// groupVal renders one group-by column for one row.
func groupVal(s *Segment, i int, col string) string {
	switch col {
	case "suite":
		if s.fp[i] {
			return "fp"
		}
		return "int"
	case "sweep":
		return s.Sweep
	default:
		return s.strAt(col, i)
	}
}

func (a *aggregator) add(s *Segment, i int, metrics []func(int) float64) {
	key := make([]string, len(a.groupBy))
	for ki, col := range a.groupBy {
		key[ki] = groupVal(s, i, col)
	}
	joined := ""
	for _, k := range key {
		joined += k + "\x00"
	}
	b := a.buckets[joined]
	if b == nil {
		b = &bucket{
			key: key,
			sum: make([]float64, len(a.metrics)),
			min: make([]float64, len(a.metrics)),
			max: make([]float64, len(a.metrics)),
		}
		a.buckets[joined] = b
	}
	for mi := range a.metrics {
		v := 0.0
		if metrics[mi] != nil {
			v = metrics[mi](i)
		}
		if b.count == 0 {
			b.min[mi], b.max[mi] = v, v
		} else {
			if v < b.min[mi] {
				b.min[mi] = v
			}
			if v > b.max[mi] {
				b.max[mi] = v
			}
		}
		b.sum[mi] += v
	}
	b.count++
}

func (a *aggregator) addSeries(s *Segment, i int) {
	arch := s.strAt("arch", i)
	bench := s.strAt("benchmark", i)
	cells := a.archCells[arch]
	if cells == nil {
		cells = map[string]*cell{}
		a.archCells[arch] = cells
		a.archOrder = append(a.archOrder, arch)
	}
	if _, ok := a.benchFP[bench]; !ok {
		a.benchFP[bench] = s.fp[i]
		a.benchOrder = append(a.benchOrder, bench)
	}
	c := cells[bench]
	if c == nil {
		c = &cell{}
		cells[bench] = c
	}
	c.sum += s.f64["ipc"][i]
	c.n++
	if _, ok := a.archArea[arch]; !ok {
		a.archArea[arch] = s.f64["area"][i]
	}
}

// groups renders the aggregate buckets sorted by key, with each value
// named "op_metric".
func (a *aggregator) groups() []api.QueryGroup {
	joined := make([]string, 0, len(a.buckets))
	for k := range a.buckets {
		joined = append(joined, k)
	}
	sort.Strings(joined)
	out := make([]api.QueryGroup, 0, len(joined))
	for _, k := range joined {
		b := a.buckets[k]
		g := api.QueryGroup{Key: b.key, Count: b.count, Values: map[string]float64{}}
		for mi, m := range a.metrics {
			var v float64
			switch m.Op {
			case "sum":
				v = b.sum[mi]
			case "mean":
				v = b.sum[mi] / float64(b.count)
			case "min":
				v = b.min[mi]
			case "max":
				v = b.max[mi]
			}
			g.Values[m.Op+"_"+m.Metric] = v
		}
		out = append(out, g)
	}
	return out
}

// suiteBenchOrder returns the matched benchmarks in canonical suite
// order — SPECint95 then SPECfp95, as the paper's figures list them —
// with any benchmark unknown to the registry appended in first-seen
// order (a forward-compatibility hatch for custom workloads).
func (a *aggregator) suiteBenchOrder() []string {
	known := map[string]bool{}
	var out []string
	for _, p := range trace.All() {
		known[p.Name] = true
		if _, ok := a.benchFP[p.Name]; ok {
			out = append(out, p.Name)
		}
	}
	for _, b := range a.benchOrder {
		if !known[b] {
			out = append(out, b)
		}
	}
	return out
}

// series renders one QuerySeries per architecture in first-seen order.
func (a *aggregator) series() []api.QuerySeries {
	benches := a.suiteBenchOrder()
	out := make([]api.QuerySeries, 0, len(a.archOrder))
	for _, arch := range a.archOrder {
		cells := a.archCells[arch]
		s := api.QuerySeries{Arch: arch}
		var intIPC, fpIPC []float64
		for _, b := range benches {
			c := cells[b]
			if c == nil {
				continue
			}
			ipc := c.sum / float64(c.n)
			s.Points = append(s.Points, api.SeriesPoint{Benchmark: b, IPC: ipc})
			if a.benchFP[b] {
				fpIPC = append(fpIPC, ipc)
			} else {
				intIPC = append(intIPC, ipc)
			}
		}
		s.IntHmean = safeHmean(intIPC)
		s.FPHmean = safeHmean(fpIPC)
		out = append(out, s)
	}
	return out
}

// frontier extracts the (area, IPC) Pareto frontier over the matched
// architectures: per-arch harmonic mean of per-benchmark mean IPC
// against the arch's modeled area. Architectures with unmodeled area
// (unbounded ports) or degenerate IPC are excluded — a frontier needs
// both coordinates.
func (a *aggregator) frontier() []api.ParetoPoint {
	var pts []api.ParetoPoint
	for _, arch := range a.archOrder {
		ar := a.archArea[arch]
		if ar <= 0 {
			continue
		}
		var ipcs []float64
		for _, c := range a.archCells[arch] {
			ipcs = append(ipcs, c.sum/float64(c.n))
		}
		sort.Float64s(ipcs)
		hm := safeHmean(ipcs)
		if hm <= 0 {
			continue
		}
		pts = append(pts, api.ParetoPoint{Arch: arch, IPC: hm, Area: ar})
	}
	cost := make([]float64, len(pts))
	value := make([]float64, len(pts))
	for i, p := range pts {
		cost[i], value[i] = p.Area, p.IPC
	}
	keep := stats.ParetoFrontier(cost, value)
	out := make([]api.ParetoPoint, 0, len(keep))
	for _, i := range keep {
		out = append(out, pts[i])
	}
	return out
}
