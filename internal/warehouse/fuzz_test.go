package warehouse

import (
	"testing"
)

// FuzzParseQuery hardens the query document parser: whatever bytes a
// tenant posts to /v1/query, ParseQuery must either reject them or
// return a document that re-validates cleanly and evaluates without
// panicking — over an empty warehouse and over a populated segment.
// The committed corpus under testdata/fuzz seeds one document per op
// plus the rejection classes the unit tests pin.
func FuzzParseQuery(f *testing.F) {
	seeds := []string{
		`{}`,
		`{"op": "rows", "limit": 5, "cursor": "10"}`,
		`{"schema": 1, "op": "aggregate", "group_by": ["family", "suite"], "metrics": [{"op": "mean", "metric": "ipc"}, {"op": "max", "metric": "area"}]}`,
		`{"op": "series", "sweep": "s000001", "benchmarks": ["compress", "swim"]}`,
		`{"op": "pareto", "families": ["rfcache"], "dims": {"read_ports": [4, 8], "buses": [2]}}`,
		`{"op": "drop"}`,
		`{"schema": 99}`,
		`{"op": "rows"} trailing`,
		`{"dims": {"read_ports": [-1]}}`,
		`{"cursor": "abc"}`,
		`{`,
		`[]`,
		`null`,
		`{"metrics": [{"op": "mean", "metric": "speed"}]}`,
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}

	jobs, rows := testJobsRows(f)
	seg := buildSegment(f, "s000001", "", jobs, rows)
	segSets := [][]*Segment{nil, {seg}}

	f.Fuzz(func(t *testing.T, doc []byte) {
		q, err := ParseQuery(doc)
		if err != nil {
			return
		}
		if q == nil {
			t.Fatal("ParseQuery returned nil query without error")
		}
		if err := ValidateQuery(q); err != nil {
			t.Fatalf("accepted document fails re-validation: %v\ndoc: %s", err, doc)
		}
		for _, segs := range segSets {
			res, err := Eval(segs, q)
			if err != nil {
				t.Fatalf("accepted document fails Eval: %v\ndoc: %s", err, doc)
			}
			if res == nil {
				t.Fatalf("Eval returned nil result for doc: %s", doc)
			}
		}
	})
}
