package warehouse

import (
	"repro/internal/area"
	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/sweep"
)

// Meta is the per-row metadata the warehouse derives from a job at
// ingest: the register file family, its integer dimensions in the sweep
// matrix vocabulary, the policy tokens, the suite flag, and the modeled
// area. The NDJSON row stream carries none of this — it is exactly what
// a client today re-derives by re-expanding the spec — so indexing it
// is what makes server-side family/dim filtering possible.
type Meta struct {
	// Family is the registry family name (1cycle, 2cycle, 2cycle1b,
	// rfcache, onelevel, replicated).
	Family string
	// Caching and Prefetch are the rfcache policy tokens in spec
	// vocabulary (nonbypass/ready/all/none, demand/firstpair); empty for
	// other families.
	Caching, Prefetch string
	// FP marks an FP-suite benchmark (SPECfp95 proxy).
	FP bool
	// Integer dimensions, named after the sweep matrix keys. 0 means
	// unlimited (ports) or not applicable to the family, mirroring the
	// spec convention.
	ReadPorts, WritePorts, Buses, UpperSizes, Banks, Clusters, PhysRegs int
	// Area is the modeled register file area in the paper's 10⁴λ² unit,
	// or 0 when any modeled port count is unlimited (cost is undefined).
	Area float64
}

// normPort maps a core port count to the spec vocabulary: unbounded
// (core.Unlimited) and non-positive counts become 0.
func normPort(v int) int {
	if v <= 0 || v >= core.Unlimited {
		return 0
	}
	return v
}

// cachingToken returns the spec-vocabulary token for a caching policy
// (the inverse of arch.ParseCachingPolicy).
func cachingToken(p core.CachingPolicy) string {
	switch p {
	case core.CacheNonBypass:
		return "nonbypass"
	case core.CacheReady:
		return "ready"
	case core.CacheAll:
		return "all"
	case core.CacheNone:
		return "none"
	}
	return "unknown"
}

// prefetchToken returns the spec-vocabulary token for a prefetch policy
// (the inverse of arch.ParsePrefetchPolicy).
func prefetchToken(p core.PrefetchPolicy) string {
	switch p {
	case core.FetchOnDemand:
		return "demand"
	case core.PrefetchFirstPair:
		return "firstpair"
	}
	return "unknown"
}

// MetaOf derives the warehouse metadata for one job. The derivation is a
// pure function of the job's configuration, so ingest-time rows and
// store-rebuilt rows produce identical columns.
func MetaOf(j sweep.Job) Meta {
	m := Meta{FP: j.Profile.FP, PhysRegs: j.Config.PhysRegs}
	regs := j.Config.PhysRegs
	switch rf := j.Config.RF; rf.Kind {
	case sim.RFMonolithic:
		switch {
		case rf.Mono.Latency <= 1:
			m.Family = "1cycle"
		case rf.Mono.FullBypass:
			m.Family = "2cycle"
		default:
			m.Family = "2cycle1b"
		}
		m.ReadPorts = normPort(rf.Mono.ReadPorts)
		m.WritePorts = normPort(rf.Mono.WritePorts)
		if m.ReadPorts > 0 && m.WritePorts > 0 {
			m.Area = area.SingleBank{Regs: regs, Read: m.ReadPorts, Write: m.WritePorts}.Area()
		}
	case sim.RFCache:
		c := rf.Cache
		m.Family = "rfcache"
		m.Caching = cachingToken(c.Caching)
		m.Prefetch = prefetchToken(c.Prefetch)
		m.ReadPorts = normPort(c.ReadPorts)
		m.WritePorts = normPort(c.LowerWritePorts)
		m.Buses = normPort(c.Buses)
		m.UpperSizes = c.UpperSize
		if m.ReadPorts > 0 && m.Buses > 0 &&
			normPort(c.UpperWritePorts) > 0 && normPort(c.LowerWritePorts) > 0 {
			m.Area = area.TwoLevel{
				UpperRegs: c.UpperSize, LowerRegs: regs,
				Read: c.ReadPorts, UpperWrite: c.UpperWritePorts,
				LowerWrite: c.LowerWritePorts, Buses: c.Buses,
			}.Area()
		}
	case sim.RFOneLevel:
		c := rf.OneLevel
		m.Family = "onelevel"
		m.Banks = c.Banks
		m.ReadPorts = normPort(c.ReadPortsPerBank)
		m.WritePorts = normPort(c.WritePortsPerBank)
		if m.Banks > 0 && m.ReadPorts > 0 && m.WritePorts > 0 {
			perBank := (regs + m.Banks - 1) / m.Banks
			m.Area = float64(m.Banks) * area.BankArea(perBank, m.ReadPorts, m.WritePorts) / area.AreaUnit
		}
	case sim.RFReplicated:
		c := rf.Replicated
		m.Family = "replicated"
		m.Clusters = c.Clusters
		m.ReadPorts = normPort(c.ReadPortsPerBank)
		m.WritePorts = normPort(c.WritePortsPerBank)
		if m.Clusters > 0 && m.ReadPorts > 0 && m.WritePorts > 0 {
			m.Area = float64(m.Clusters) * area.BankArea(regs, m.ReadPorts, m.WritePorts) / area.AreaUnit
		}
	}
	return m
}
