package warehouse

import (
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"repro/internal/sim"
	"repro/internal/sweep"
	"repro/rf/api"
)

// testSpecJSON exercises every register file family, with every
// dimension bounded so areas are modeled, plus one unbounded
// architecture (2cycle) whose area stays unmodeled.
const testSpecJSON = `{
  "name": "wh-test",
  "instructions": 4000,
  "benchmarks": ["compress", "swim"],
  "architectures": [
    {"kind": "1cycle", "read_ports": [4], "write_ports": [3]},
    {"kind": "2cycle"},
    {"kind": "rfcache", "read_ports": [4], "write_ports": [3], "buses": [2],
     "upper_sizes": [16], "caching": ["nonbypass", "ready"], "prefetch": ["demand"]},
    {"kind": "onelevel", "banks": [2], "read_ports": [4], "write_ports": [3]},
    {"kind": "replicated", "clusters": [2], "read_ports": [2], "write_ports": [2]}
  ]
}`

// testJobsRows expands the test spec and fabricates a deterministic row
// per job, as an ingest seam or a store rebuild would produce them.
func testJobsRows(t testing.TB) ([]sweep.Job, []sweep.Row) {
	t.Helper()
	s, err := sweep.ParseSpec(strings.NewReader(testSpecJSON))
	if err != nil {
		t.Fatal(err)
	}
	jobs, err := s.Jobs()
	if err != nil {
		t.Fatal(err)
	}
	rows := make([]sweep.Row, len(jobs))
	for i, j := range jobs {
		res := sim.Result{
			Instructions:   j.Config.MaxInstructions,
			Cycles:         j.Config.MaxInstructions/2 + uint64(i*37),
			IPC:            1 + float64(i%5)*0.25,
			Branches:       100,
			Mispredicts:    uint64(i),
			ICacheMissRate: 0.01 * float64(i%3),
			DCacheMissRate: 0.02,
		}
		rows[i] = sweep.RowOf(j, sweep.Outcome{Result: res, Key: j.Key()})
	}
	return jobs, rows
}

// buildSegment runs every (job, row) pair through a Builder.
func buildSegment(t testing.TB, sweepID, tenant string, jobs []sweep.Job, rows []sweep.Row) *Segment {
	t.Helper()
	b := NewBuilder(sweepID, "wh-test", tenant, len(jobs))
	// Reverse order: the builder addresses rows by job index, not arrival.
	for i := len(jobs) - 1; i >= 0; i-- {
		if err := b.Add(i, jobs[i], rows[i]); err != nil {
			t.Fatal(err)
		}
	}
	seg, err := b.Segment()
	if err != nil {
		t.Fatal(err)
	}
	return seg
}

// evalJSON canonicalizes a query evaluation for byte comparison.
func evalJSON(t testing.TB, segs []*Segment, q *api.Query) string {
	t.Helper()
	res, err := Eval(segs, q)
	if err != nil {
		t.Fatal(err)
	}
	out, err := json.Marshal(res)
	if err != nil {
		t.Fatal(err)
	}
	return string(out)
}

func TestSegmentRoundtrip(t *testing.T) {
	jobs, rows := testJobsRows(t)
	seg := buildSegment(t, "s000001", "acme", jobs, rows)
	if seg.N != len(jobs) {
		t.Fatalf("segment has %d rows, want %d", seg.N, len(jobs))
	}
	data := seg.encode()
	back, err := decodeSegment(data)
	if err != nil {
		t.Fatal(err)
	}
	if back.Sweep != "s000001" || back.Name != "wh-test" || back.Tenant != "acme" || back.N != seg.N {
		t.Fatalf("decoded identity = %q/%q/%q/%d", back.Sweep, back.Name, back.Tenant, back.N)
	}
	for _, q := range []*api.Query{
		{Op: api.QueryOpRows},
		{Op: api.QueryOpSeries},
		{Op: api.QueryOpPareto},
		{Op: api.QueryOpAggregate, GroupBy: []string{"family", "suite"},
			Metrics: []api.QueryMetric{{Op: "mean", Metric: "ipc"}, {Op: "max", Metric: "cycles"}}},
	} {
		if got, want := evalJSON(t, []*Segment{back}, q), evalJSON(t, []*Segment{seg}, q); got != want {
			t.Errorf("op %s: decoded segment answers differently:\n got %s\nwant %s", q.Op, got, want)
		}
	}

	// Corruption anywhere in the column data must be detected.
	data[10] ^= 0xff
	if _, err := decodeSegment(data); err == nil {
		t.Error("decodeSegment accepted corrupt column data")
	}
}

func TestOpenSkipsBadSegmentFiles(t *testing.T) {
	dir := t.TempDir()
	jobs, rows := testJobsRows(t)
	seg := buildSegment(t, "s000001", "", jobs, rows)
	if err := writeSegData(dir, seg.Sweep, seg.encode()); err != nil {
		t.Fatal(err)
	}
	// Garbage bytes, and a valid segment stored under the wrong name.
	if err := os.WriteFile(filepath.Join(dir, "s000002.seg"), []byte("not a segment"), 0o644); err != nil {
		t.Fatal(err)
	}
	mis := buildSegment(t, "s000003", "", jobs, rows)
	if err := os.WriteFile(filepath.Join(dir, "s000009.seg"), mis.encode(), 0o644); err != nil {
		t.Fatal(err)
	}

	w, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	st := w.Stats()
	if st.Segments != 1 || st.Rows != len(jobs) {
		t.Fatalf("Open loaded %d segments / %d rows, want 1 / %d", st.Segments, st.Rows, len(jobs))
	}
	if !w.Has("s000001") || w.Has("s000003") {
		t.Error("Open kept the wrong segments")
	}
}

func TestSealRequiresCompleteBuilder(t *testing.T) {
	jobs, rows := testJobsRows(t)
	w, err := Open(t.TempDir(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	w.Begin("s000001", "wh-test", "", len(jobs))
	w.Add("s000001", 0, jobs[0], rows[0])
	if err := w.Seal("s000001"); err == nil {
		t.Error("Seal accepted an incomplete builder")
	}
	if w.Has("s000001") {
		t.Error("incomplete sweep was indexed")
	}
	if w.Stats().IngestErrors == 0 {
		t.Error("incomplete seal not counted as an ingest error")
	}
	// A row for a sweep with no open builder is an ingest error too.
	w.Add("s999999", 0, jobs[0], rows[0])
	if got := w.Stats().IngestErrors; got != 2 {
		t.Errorf("IngestErrors = %d, want 2", got)
	}
}

func TestMetaOfFamilies(t *testing.T) {
	jobs, _ := testJobsRows(t)
	families := map[string]int{}
	for _, j := range jobs {
		m := MetaOf(j)
		families[m.Family]++
		switch m.Family {
		case "1cycle":
			if m.ReadPorts != 4 || m.WritePorts != 3 || m.Area <= 0 {
				t.Errorf("1cycle meta = %+v", m)
			}
		case "2cycle":
			// Unbounded ports: dims normalize to 0 and area stays unmodeled.
			if m.ReadPorts != 0 || m.WritePorts != 0 || m.Area != 0 {
				t.Errorf("2cycle meta = %+v", m)
			}
		case "rfcache":
			if m.Caching != "nonbypass" && m.Caching != "ready" {
				t.Errorf("rfcache caching token = %q", m.Caching)
			}
			if m.Prefetch != "demand" || m.UpperSizes != 16 || m.Buses != 2 || m.Area <= 0 {
				t.Errorf("rfcache meta = %+v", m)
			}
		case "onelevel":
			if m.Banks != 2 || m.Area <= 0 {
				t.Errorf("onelevel meta = %+v", m)
			}
		case "replicated":
			if m.Clusters != 2 || m.Area <= 0 {
				t.Errorf("replicated meta = %+v", m)
			}
		default:
			t.Errorf("unexpected family %q", m.Family)
		}
		if m.PhysRegs < 33 {
			t.Errorf("family %s: PhysRegs = %d", m.Family, m.PhysRegs)
		}
	}
	want := map[string]int{"1cycle": 2, "2cycle": 2, "rfcache": 4, "onelevel": 2, "replicated": 2}
	if !reflect.DeepEqual(families, want) {
		t.Errorf("family counts = %v, want %v", families, want)
	}
}

func TestParseQueryValidation(t *testing.T) {
	good := `{"schema": 1, "op": "aggregate", "benchmarks": ["compress"],
	  "families": ["rfcache"], "dims": {"read_ports": [4, 0]},
	  "group_by": ["family", "suite"],
	  "metrics": [{"op": "mean", "metric": "ipc"}], "limit": 10}`
	if _, err := ParseQuery([]byte(good)); err != nil {
		t.Fatalf("good query rejected: %v", err)
	}
	bad := []string{
		`{"op": "drop"}`,
		`{"op": "rows"} trailing`,
		`{"op": "rows", "nope": 1}`,
		`{"schema": 99}`,
		`{"group_by": ["color"]}`,
		`{"group_by": ["arch", "arch"]}`,
		`{"metrics": [{"op": "median", "metric": "ipc"}]}`,
		`{"metrics": [{"op": "mean", "metric": "speed"}]}`,
		`{"dims": {"voltage": [1]}}`,
		`{"dims": {"read_ports": [-1]}}`,
		`{"limit": -5}`,
		`{"cursor": "abc"}`,
		`{"cursor": "-3"}`,
	}
	for _, doc := range bad {
		if _, err := ParseQuery([]byte(doc)); err == nil {
			t.Errorf("ParseQuery accepted %s", doc)
		}
	}
}

func TestEvalRowsPagination(t *testing.T) {
	jobs, rows := testJobsRows(t)
	seg := buildSegment(t, "s000001", "", jobs, rows)
	segs := []*Segment{seg}

	full, err := Eval(segs, &api.Query{Op: api.QueryOpRows})
	if err != nil {
		t.Fatal(err)
	}
	if full.Matched != len(jobs) || len(full.Rows) != len(jobs) || full.NextCursor != "" {
		t.Fatalf("full page: matched %d, %d rows, cursor %q", full.Matched, len(full.Rows), full.NextCursor)
	}

	var paged []api.QueryRow
	q := &api.Query{Op: api.QueryOpRows, Limit: 5}
	pages := 0
	for {
		res, err := Eval(segs, q)
		if err != nil {
			t.Fatal(err)
		}
		if res.Matched != len(jobs) {
			t.Fatalf("page %d: matched %d, want %d", pages, res.Matched, len(jobs))
		}
		paged = append(paged, res.Rows...)
		pages++
		if res.NextCursor == "" {
			break
		}
		q.Cursor = res.NextCursor
	}
	if pages != 3 {
		t.Errorf("12 rows at limit 5 took %d pages, want 3", pages)
	}
	if !reflect.DeepEqual(paged, full.Rows) {
		t.Error("paged rows differ from the single-page scan")
	}
}

func TestEvalFilters(t *testing.T) {
	jobs, rows := testJobsRows(t)
	seg := buildSegment(t, "s000001", "", jobs, rows)
	segs := []*Segment{seg}

	cases := []struct {
		name string
		q    api.Query
		want int
	}{
		{"benchmark", api.Query{Benchmarks: []string{"compress"}}, 6},
		{"family", api.Query{Families: []string{"rfcache"}}, 4},
		{"dim", api.Query{Dims: map[string][]int{"read_ports": {4}}}, 8},
		{"dim-unlimited", api.Query{Dims: map[string][]int{"read_ports": {0}}}, 2},
		{"empty-dim-list", api.Query{Dims: map[string][]int{"read_ports": {}}}, 12},
		{"absent-value", api.Query{Benchmarks: []string{"nope"}}, 0},
		{"wrong-sweep", api.Query{Sweep: "s999999"}, 0},
		{"sweep", api.Query{Sweep: "s000001"}, 12},
	}
	for _, tc := range cases {
		res, err := Eval(segs, &tc.q)
		if err != nil {
			t.Fatal(err)
		}
		if res.Matched != tc.want {
			t.Errorf("%s: matched %d, want %d", tc.name, res.Matched, tc.want)
		}
	}
}

func TestEvalAggregate(t *testing.T) {
	jobs, rows := testJobsRows(t)
	seg := buildSegment(t, "s000001", "", jobs, rows)
	res, err := Eval([]*Segment{seg}, &api.Query{
		Op: api.QueryOpAggregate, GroupBy: []string{"family"},
		Metrics: []api.QueryMetric{{Op: "sum", Metric: "ipc"}, {Op: "min", Metric: "ipc"}, {Op: "max", Metric: "ipc"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Recompute the expectation straight off the rows.
	wantSum := map[string]float64{}
	wantCount := map[string]int{}
	for i, j := range jobs {
		f := MetaOf(j).Family
		wantSum[f] += rows[i].IPC
		wantCount[f]++
	}
	if len(res.Groups) != len(wantSum) {
		t.Fatalf("%d groups, want %d", len(res.Groups), len(wantSum))
	}
	for _, g := range res.Groups {
		f := g.Key[0]
		if g.Count != wantCount[f] {
			t.Errorf("family %s: count %d, want %d", f, g.Count, wantCount[f])
		}
		if got := g.Values["sum_ipc"]; got != wantSum[f] {
			t.Errorf("family %s: sum_ipc %v, want %v", f, got, wantSum[f])
		}
		if g.Values["min_ipc"] > g.Values["max_ipc"] {
			t.Errorf("family %s: min %v > max %v", f, g.Values["min_ipc"], g.Values["max_ipc"])
		}
	}
	// Groups come out sorted by key.
	for i := 1; i < len(res.Groups); i++ {
		if res.Groups[i-1].Key[0] >= res.Groups[i].Key[0] {
			t.Errorf("groups unsorted: %q before %q", res.Groups[i-1].Key[0], res.Groups[i].Key[0])
		}
	}
}

func TestEvalSeriesAndFrontier(t *testing.T) {
	jobs, rows := testJobsRows(t)
	seg := buildSegment(t, "s000001", "", jobs, rows)
	segs := []*Segment{seg}

	sres, err := Eval(segs, &api.Query{Op: api.QueryOpSeries})
	if err != nil {
		t.Fatal(err)
	}
	if len(sres.Series) != 6 {
		t.Fatalf("%d series, want 6 architectures", len(sres.Series))
	}
	for _, s := range sres.Series {
		if len(s.Points) != 2 {
			t.Fatalf("arch %s has %d points, want 2", s.Arch, len(s.Points))
		}
		// Suite order: compress (SPECint) before swim (SPECfp).
		if s.Points[0].Benchmark != "compress" || s.Points[1].Benchmark != "swim" {
			t.Errorf("arch %s points out of suite order: %v", s.Arch, s.Points)
		}
		if s.IntHmean != s.Points[0].IPC {
			t.Errorf("arch %s IntHmean = %v, want %v (single benchmark)", s.Arch, s.IntHmean, s.Points[0].IPC)
		}
		if s.FPHmean != s.Points[1].IPC {
			t.Errorf("arch %s FPHmean = %v, want %v (single benchmark)", s.Arch, s.FPHmean, s.Points[1].IPC)
		}
	}

	pres, err := Eval(segs, &api.Query{Op: api.QueryOpPareto})
	if err != nil {
		t.Fatal(err)
	}
	if len(pres.Frontier) == 0 {
		t.Fatal("empty frontier despite modeled areas")
	}
	for _, p := range pres.Frontier {
		if p.Area <= 0 || p.IPC <= 0 {
			t.Errorf("frontier point %+v has an unmodeled coordinate", p)
		}
		// The 2cycle arch has unmodeled area and must never appear.
		for _, j := range jobs {
			if j.Config.RF.Name == p.Arch && MetaOf(j).Area == 0 {
				t.Errorf("frontier includes unmodeled arch %s", p.Arch)
			}
		}
	}
	// No frontier point may dominate another.
	for i, a := range pres.Frontier {
		for k, b := range pres.Frontier {
			if i != k && a.Area <= b.Area && a.IPC >= b.IPC && (a.Area < b.Area || a.IPC > b.IPC) {
				t.Errorf("frontier point %+v dominates %+v", a, b)
			}
		}
	}
}

func TestWarehouseLifecycleAndTenancy(t *testing.T) {
	dir := t.TempDir()
	jobs, rows := testJobsRows(t)
	w, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	w.Begin("s000001", "wh-test", "acme", len(jobs))
	for i := range jobs {
		w.Add("s000001", i, jobs[i], rows[i])
	}
	if err := w.Seal("s000001"); err != nil {
		t.Fatal(err)
	}
	if !w.Has("s000001") {
		t.Fatal("sealed sweep not indexed")
	}

	q := &api.Query{Op: api.QueryOpRows}
	owned, err := w.Query(q, "acme", true)
	if err != nil {
		t.Fatal(err)
	}
	if owned.Matched != len(jobs) {
		t.Errorf("owner sees %d rows, want %d", owned.Matched, len(jobs))
	}
	other, err := w.Query(q, "rival", true)
	if err != nil {
		t.Fatal(err)
	}
	if other.Matched != 0 {
		t.Errorf("non-owner sees %d rows, want 0", other.Matched)
	}
	open, err := w.Query(q, "anyone", false)
	if err != nil {
		t.Fatal(err)
	}
	if open.Matched != len(jobs) {
		t.Errorf("untenanted query sees %d rows, want %d", open.Matched, len(jobs))
	}
	st := w.Stats()
	if st.Segments != 1 || st.Rows != len(jobs) || st.Bytes <= 0 || st.Queries != 3 {
		t.Errorf("Stats = %+v", st)
	}

	// A restart loads the sealed segment back from disk.
	w2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !w2.Has("s000001") {
		t.Fatal("reopened warehouse lost the segment")
	}
	// Reusing the sweep id (journal-less server restart) drops the stale
	// sealed segment immediately.
	w2.Begin("s000001", "other", "", len(jobs))
	if w2.Has("s000001") {
		t.Error("Begin kept a stale segment under a reused sweep id")
	}
	if _, err := os.Stat(filepath.Join(dir, "s000001.seg")); !os.IsNotExist(err) {
		t.Error("Begin left the stale segment file on disk")
	}
}

func TestRebuildSweepMatchesIngest(t *testing.T) {
	jobs, rows := testJobsRows(t)
	live, err := Open(t.TempDir(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	live.Begin("s000001", "wh-test", "", len(jobs))
	for i := range jobs {
		live.Add("s000001", i, jobs[i], rows[i])
	}
	if err := live.Seal("s000001"); err != nil {
		t.Fatal(err)
	}

	// Rebuild the same sweep purely from a result "store".
	byKey := map[sweep.Key]sim.Result{}
	for i, j := range jobs {
		byKey[j.Key()] = sim.Result{
			Instructions: rows[i].Instructions, Cycles: rows[i].Cycles, IPC: rows[i].IPC,
			Branches: 100, Mispredicts: uint64(i),
			ICacheMissRate: rows[i].ICacheMiss, DCacheMissRate: rows[i].DCacheMiss,
		}
	}
	get := func(k sweep.Key) (sim.Result, bool) { r, ok := byKey[k]; return r, ok }
	rebuilt, err := Open(t.TempDir(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := rebuilt.RebuildSweep("s000001", "wh-test", "", jobs, nil, nil, get); err != nil {
		t.Fatal(err)
	}

	for _, q := range []*api.Query{
		{Op: api.QueryOpRows},
		{Op: api.QueryOpSeries},
		{Op: api.QueryOpPareto},
		{Op: api.QueryOpAggregate, GroupBy: []string{"arch"}},
	} {
		a, err := live.Query(q, "", false)
		if err != nil {
			t.Fatal(err)
		}
		b, err := rebuilt.Query(q, "", false)
		if err != nil {
			t.Fatal(err)
		}
		aj, _ := json.Marshal(a)
		bj, _ := json.Marshal(b)
		if string(aj) != string(bj) {
			t.Errorf("op %s: rebuilt warehouse answers differently:\n live %s\nrebuilt %s", q.Op, aj, bj)
		}
	}

	// A job missing from both store and journal must fail the rebuild.
	delete(byKey, jobs[3].Key())
	empty, err := Open(t.TempDir(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := empty.RebuildSweep("s000002", "wh-test", "", jobs, nil, nil, get); err == nil {
		t.Error("RebuildSweep succeeded with a missing result")
	}
	// With the journaled row available it falls back and succeeds.
	have := make([]bool, len(jobs))
	have[3] = true
	if err := empty.RebuildSweep("s000002", "wh-test", "", jobs, rows, have, get); err != nil {
		t.Errorf("RebuildSweep with journal fallback: %v", err)
	}
}

func TestSegmentFromRows(t *testing.T) {
	jobs, rows := testJobsRows(t)
	seg, err := SegmentFromRows("s000001", "wh-test", jobs, rows)
	if err != nil {
		t.Fatal(err)
	}
	want := buildSegment(t, "s000001", "", jobs, rows)
	q := &api.Query{Op: api.QueryOpSeries}
	if got, exp := evalJSON(t, []*Segment{seg}, q), evalJSON(t, []*Segment{want}, q); got != exp {
		t.Errorf("SegmentFromRows answers differently:\n got %s\nwant %s", got, exp)
	}

	// Rows out of job order are a hard error, not silent misattribution.
	shuffled := append([]sweep.Row(nil), rows...)
	shuffled[0], shuffled[1] = shuffled[1], shuffled[0]
	if _, err := SegmentFromRows("s000001", "wh-test", jobs, shuffled); err == nil {
		t.Error("SegmentFromRows accepted rows out of job order")
	}
	if _, err := SegmentFromRows("s000001", "wh-test", jobs, rows[:3]); err == nil {
		t.Error("SegmentFromRows accepted a short row slice")
	}
}
