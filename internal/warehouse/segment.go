package warehouse

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"math"
	"os"
	"path/filepath"

	"repro/internal/sweep"
)

// The on-disk segment layout:
//
//	magic "RFW1" | column data | footer JSON | footer length (u32 LE) | magic "1WFR"
//
// The column data is the canonical column sequence back to back, each
// column a fixed-width little-endian array of Segment.N values:
// dictionary indexes (u32) for the string columns, u64 / f64-bits / u32
// for the numeric columns, one byte per row for fp, and 64 bytes per
// row for the content keys. The footer carries the identity, row count,
// string dictionaries, and a CRC-32 of the column data; offsets are not
// stored because the column order and widths are fixed by rows alone.
const (
	segMagic  = "RFW1"
	segTrail  = "1WFR"
	segSchema = 1
	keyHexLen = 64
)

// Canonical column order. Dictionary columns first, then u64, f64, u32,
// then the fp bytes and the key column. Encoder and decoder both walk
// these lists, so they cannot disagree on offsets.
var (
	dictCols = []string{"benchmark", "arch", "family", "caching", "prefetch"}
	u64Cols  = []string{"seed", "instructions", "cycles"}
	f64Cols  = []string{"ipc", "mispredict_rate", "icache_miss_rate", "dcache_miss_rate", "area"}
	u32Cols  = []string{"read_ports", "write_ports", "buses", "upper_sizes", "banks", "clusters", "phys_regs"}
)

// Segment is one sweep's rows in column-per-metric layout, fully
// resident in memory. Segments are immutable once built.
type Segment struct {
	Sweep  string
	Name   string
	Tenant string
	// N is the row count.
	N int

	dicts map[string][]string // dictionary per string column
	str   map[string][]uint32 // dictionary indexes per string column
	u64   map[string][]uint64
	f64   map[string][]float64
	u32   map[string][]uint32
	fp    []bool
	keys  []string // 64-char hex content keys
	size  int      // encoded byte size, for the metrics accounting
}

// dict looks one row's value up in a string column.
func (s *Segment) strAt(col string, i int) string {
	return s.dicts[col][s.str[col][i]]
}

// Builder accumulates one sweep's rows by job index, so the sealed
// segment is ordered by the sweep's job expansion — not by completion
// order — and a rebuild from the store reproduces it byte-identically.
type Builder struct {
	sweepID, name, tenant string
	rows                  []sweep.Row
	metas                 []Meta
	have                  []bool
	n                     int
}

// NewBuilder starts a builder for a sweep of jobs rows.
func NewBuilder(sweepID, name, tenant string, jobs int) *Builder {
	return &Builder{
		sweepID: sweepID, name: name, tenant: tenant,
		rows: make([]sweep.Row, jobs), metas: make([]Meta, jobs), have: make([]bool, jobs),
	}
}

// Add records job idx's published row. Re-adding an index overwrites it
// (journal replay may re-deliver rows); out-of-range indexes error.
func (b *Builder) Add(idx int, j sweep.Job, row sweep.Row) error {
	if idx < 0 || idx >= len(b.rows) {
		return fmt.Errorf("warehouse: sweep %s: row index %d out of range [0,%d)", b.sweepID, idx, len(b.rows))
	}
	if !b.have[idx] {
		b.have[idx] = true
		b.n++
	}
	b.rows[idx] = row
	b.metas[idx] = MetaOf(j)
	return nil
}

// Complete reports whether every job index has a row.
func (b *Builder) Complete() bool { return b.n == len(b.rows) }

// Segment freezes the builder into a columnar segment. Missing rows are
// an error: a sealed segment must cover the whole sweep, or queries
// would silently under-aggregate.
func (b *Builder) Segment() (*Segment, error) {
	if !b.Complete() {
		return nil, fmt.Errorf("warehouse: sweep %s: %d of %d rows missing",
			b.sweepID, len(b.rows)-b.n, len(b.rows))
	}
	s := &Segment{
		Sweep: b.sweepID, Name: b.name, Tenant: b.tenant, N: len(b.rows),
		dicts: map[string][]string{}, str: map[string][]uint32{},
		u64: map[string][]uint64{}, f64: map[string][]float64{}, u32: map[string][]uint32{},
	}
	interned := map[string]map[string]uint32{}
	intern := func(col, v string) uint32 {
		m := interned[col]
		if m == nil {
			m = map[string]uint32{}
			interned[col] = m
		}
		id, ok := m[v]
		if !ok {
			id = uint32(len(s.dicts[col]))
			s.dicts[col] = append(s.dicts[col], v)
			m[v] = id
		}
		return id
	}
	for i := range b.rows {
		row, meta := b.rows[i], b.metas[i]
		s.str["benchmark"] = append(s.str["benchmark"], intern("benchmark", row.Benchmark))
		s.str["arch"] = append(s.str["arch"], intern("arch", row.Arch))
		s.str["family"] = append(s.str["family"], intern("family", meta.Family))
		s.str["caching"] = append(s.str["caching"], intern("caching", meta.Caching))
		s.str["prefetch"] = append(s.str["prefetch"], intern("prefetch", meta.Prefetch))
		s.u64["seed"] = append(s.u64["seed"], row.Seed)
		s.u64["instructions"] = append(s.u64["instructions"], row.Instructions)
		s.u64["cycles"] = append(s.u64["cycles"], row.Cycles)
		s.f64["ipc"] = append(s.f64["ipc"], row.IPC)
		s.f64["mispredict_rate"] = append(s.f64["mispredict_rate"], row.MispredRate)
		s.f64["icache_miss_rate"] = append(s.f64["icache_miss_rate"], row.ICacheMiss)
		s.f64["dcache_miss_rate"] = append(s.f64["dcache_miss_rate"], row.DCacheMiss)
		s.f64["area"] = append(s.f64["area"], meta.Area)
		s.u32["read_ports"] = append(s.u32["read_ports"], uint32(meta.ReadPorts))
		s.u32["write_ports"] = append(s.u32["write_ports"], uint32(meta.WritePorts))
		s.u32["buses"] = append(s.u32["buses"], uint32(meta.Buses))
		s.u32["upper_sizes"] = append(s.u32["upper_sizes"], uint32(meta.UpperSizes))
		s.u32["banks"] = append(s.u32["banks"], uint32(meta.Banks))
		s.u32["clusters"] = append(s.u32["clusters"], uint32(meta.Clusters))
		s.u32["phys_regs"] = append(s.u32["phys_regs"], uint32(meta.PhysRegs))
		s.fp = append(s.fp, meta.FP)
		if len(row.Key) != keyHexLen {
			return nil, fmt.Errorf("warehouse: sweep %s row %d: key %q is not %d hex chars",
				b.sweepID, i, row.Key, keyHexLen)
		}
		s.keys = append(s.keys, row.Key)
	}
	return s, nil
}

// segFooter is the JSON trailer of a segment file.
type segFooter struct {
	Schema int                 `json:"schema"`
	Sweep  string              `json:"sweep"`
	Name   string              `json:"name,omitempty"`
	Tenant string              `json:"tenant,omitempty"`
	Rows   int                 `json:"rows"`
	Dicts  map[string][]string `json:"dicts"`
	CRC    uint32              `json:"crc"`
}

// encode renders the segment in the on-disk layout.
func (s *Segment) encode() []byte {
	var data bytes.Buffer
	le := binary.LittleEndian
	var b8 [8]byte
	for _, col := range dictCols {
		for _, v := range s.str[col] {
			le.PutUint32(b8[:4], v)
			data.Write(b8[:4])
		}
	}
	for _, col := range u64Cols {
		for _, v := range s.u64[col] {
			le.PutUint64(b8[:], v)
			data.Write(b8[:])
		}
	}
	for _, col := range f64Cols {
		for _, v := range s.f64[col] {
			le.PutUint64(b8[:], math.Float64bits(v))
			data.Write(b8[:])
		}
	}
	for _, col := range u32Cols {
		for _, v := range s.u32[col] {
			le.PutUint32(b8[:4], v)
			data.Write(b8[:4])
		}
	}
	for _, v := range s.fp {
		if v {
			data.WriteByte(1)
		} else {
			data.WriteByte(0)
		}
	}
	for _, k := range s.keys {
		data.WriteString(k)
	}

	foot, err := json.Marshal(segFooter{
		Schema: segSchema, Sweep: s.Sweep, Name: s.Name, Tenant: s.Tenant,
		Rows: s.N, Dicts: s.dicts, CRC: crc32.ChecksumIEEE(data.Bytes()),
	})
	if err != nil {
		// The footer is plain exported data; Marshal cannot fail on it.
		panic(fmt.Sprintf("warehouse: unencodable footer: %v", err))
	}
	out := make([]byte, 0, 4+data.Len()+len(foot)+8)
	out = append(out, segMagic...)
	out = append(out, data.Bytes()...)
	out = append(out, foot...)
	le.PutUint32(b8[:4], uint32(len(foot)))
	out = append(out, b8[:4]...)
	out = append(out, segTrail...)
	return out
}

// writeSegData persists one encoded segment atomically (tmp + rename)
// under dir.
func writeSegData(dir, sweepID string, data []byte) error {
	tmp, err := os.CreateTemp(dir, ".seg-*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name())
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), filepath.Join(dir, segFileName(sweepID)))
}

// segFileName maps a sweep id to its segment file name.
func segFileName(sweepID string) string { return sweepID + ".seg" }

// decodeSegment parses one segment file's bytes, verifying framing,
// checksum and dictionary references. Any inconsistency is an error:
// the warehouse treats a bad segment as absent and rebuilds it from the
// store rather than serving corrupt aggregates.
func decodeSegment(data []byte) (*Segment, error) {
	if len(data) < 12 || string(data[:4]) != segMagic || string(data[len(data)-4:]) != segTrail {
		return nil, fmt.Errorf("warehouse: bad segment framing")
	}
	le := binary.LittleEndian
	footLen := int(le.Uint32(data[len(data)-8 : len(data)-4]))
	footEnd := len(data) - 8
	if footLen <= 0 || footLen > footEnd-4 {
		return nil, fmt.Errorf("warehouse: bad segment footer length %d", footLen)
	}
	var foot segFooter
	if err := json.Unmarshal(data[footEnd-footLen:footEnd], &foot); err != nil {
		return nil, fmt.Errorf("warehouse: bad segment footer: %w", err)
	}
	if foot.Schema != segSchema {
		return nil, fmt.Errorf("warehouse: segment schema %d not supported", foot.Schema)
	}
	n := foot.Rows
	if n < 0 {
		return nil, fmt.Errorf("warehouse: negative row count %d", n)
	}
	body := data[4 : footEnd-footLen]
	want := n * (4*len(dictCols) + 8*len(u64Cols) + 8*len(f64Cols) + 4*len(u32Cols) + 1 + keyHexLen)
	if len(body) != want {
		return nil, fmt.Errorf("warehouse: segment body is %d bytes, want %d for %d rows", len(body), want, n)
	}
	if crc := crc32.ChecksumIEEE(body); crc != foot.CRC {
		return nil, fmt.Errorf("warehouse: segment checksum mismatch")
	}
	s := &Segment{
		Sweep: foot.Sweep, Name: foot.Name, Tenant: foot.Tenant, N: n, size: len(data),
		dicts: foot.Dicts, str: map[string][]uint32{},
		u64: map[string][]uint64{}, f64: map[string][]float64{}, u32: map[string][]uint32{},
	}
	if s.dicts == nil {
		s.dicts = map[string][]string{}
	}
	off := 0
	for _, col := range dictCols {
		vals := make([]uint32, n)
		for i := range vals {
			vals[i] = le.Uint32(body[off:])
			if int(vals[i]) >= len(s.dicts[col]) {
				return nil, fmt.Errorf("warehouse: %s dictionary index %d out of range", col, vals[i])
			}
			off += 4
		}
		s.str[col] = vals
	}
	for _, col := range u64Cols {
		vals := make([]uint64, n)
		for i := range vals {
			vals[i] = le.Uint64(body[off:])
			off += 8
		}
		s.u64[col] = vals
	}
	for _, col := range f64Cols {
		vals := make([]float64, n)
		for i := range vals {
			vals[i] = math.Float64frombits(le.Uint64(body[off:]))
			off += 8
		}
		s.f64[col] = vals
	}
	for _, col := range u32Cols {
		vals := make([]uint32, n)
		for i := range vals {
			vals[i] = le.Uint32(body[off:])
			off += 4
		}
		s.u32[col] = vals
	}
	s.fp = make([]bool, n)
	for i := range s.fp {
		s.fp[i] = body[off] != 0
		off++
	}
	s.keys = make([]string, n)
	for i := range s.keys {
		s.keys[i] = string(body[off : off+keyHexLen])
		off += keyHexLen
	}
	return s, nil
}
