// Package warehouse is the read-side result index of the sweep service:
// a columnar, disk-backed warehouse of completed sweep rows with a
// server-side query evaluator (filter, group-by, Pareto frontier,
// figure-series extraction).
//
// One segment per sweep, in column-per-metric layout with the string
// columns dictionary-encoded and a JSON footer schema (segment.go).
// Rows are ingested at row-publish time through a seam next to the
// write-ahead journal hook in internal/server, ordered by job index —
// never by completion order — and sealed to disk when the sweep
// finishes.
//
// The warehouse is never authoritative: every column is a pure function
// of (job, result), both recoverable from the content-addressed store,
// so a deleted or corrupt warehouse directory is rebuilt by scanning
// the store (RebuildSweep) and answers every query byte-identically.
// That invariant is also why segments exclude the stream-level "cached"
// flag: delivery provenance is not reconstructible, results are.
package warehouse

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/sim"
	"repro/internal/sweep"
	"repro/rf/api"
)

// Options configures Open.
type Options struct {
	// Logf receives operational messages (load-skip, seal failures);
	// nil discards them.
	Logf func(format string, args ...any)
}

// Stats is a point-in-time snapshot for /metrics.
type Stats struct {
	// Segments and Rows count sealed segments and their total rows.
	Segments int
	Rows     int
	// Bytes is the encoded size of all sealed segments.
	Bytes int64
	// Queries and QuerySeconds count served queries and their cumulative
	// evaluation time.
	Queries      uint64
	QuerySeconds float64
	// IngestErrors counts rows or sweeps the warehouse failed to index;
	// the store remains authoritative, so these are rebuild candidates,
	// not data loss.
	IngestErrors uint64
}

// Warehouse owns a directory of sealed segments plus the in-memory
// builders of still-running sweeps. All methods are safe for concurrent
// use.
type Warehouse struct {
	dir  string
	logf func(string, ...any)

	mu       sync.Mutex
	segs     map[string]*Segment
	order    []string // segment sweep ids, sorted
	builders map[string]*Builder
	bytes    int64

	queries      atomic.Uint64
	queryNanos   atomic.Int64
	ingestErrors atomic.Uint64
}

// Open loads every readable segment under dir, creating it if needed.
// Unreadable or corrupt segment files are skipped with a log line — the
// server rebuilds them from the store — so one bad file never blocks
// startup.
func Open(dir string, opts Options) (*Warehouse, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("warehouse: %w", err)
	}
	w := &Warehouse{
		dir:  dir,
		logf: opts.Logf,
		segs: map[string]*Segment{}, builders: map[string]*Builder{},
	}
	if w.logf == nil {
		w.logf = func(string, ...any) {}
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("warehouse: %w", err)
	}
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".seg") {
			continue
		}
		path := filepath.Join(dir, e.Name())
		data, err := os.ReadFile(path)
		if err != nil {
			w.logf("warehouse: skipping %s: %v", e.Name(), err)
			continue
		}
		seg, err := decodeSegment(data)
		if err != nil || segFileName(seg.Sweep) != e.Name() {
			w.logf("warehouse: skipping %s: %v", e.Name(), err)
			continue
		}
		w.segs[seg.Sweep] = seg
		w.bytes += int64(len(data))
	}
	w.reorder()
	return w, nil
}

// reorder rebuilds the sorted segment id list; callers hold w.mu (or
// have exclusive access during Open).
func (w *Warehouse) reorder() {
	w.order = w.order[:0]
	for id := range w.segs {
		w.order = append(w.order, id)
	}
	// Shorter ids first, then lexicographic: "s1000000" sorts after
	// "s999999" even though the zero-padded width overflowed.
	sort.Slice(w.order, func(a, b int) bool {
		if len(w.order[a]) != len(w.order[b]) {
			return len(w.order[a]) < len(w.order[b])
		}
		return w.order[a] < w.order[b]
	})
}

// Begin opens a builder for a newly admitted sweep of jobs rows. Any
// sealed segment already carrying this sweep id is dropped: on a
// journal-less server, sweep ids restart from zero, so an id collision
// means the old segment describes a dead identity.
func (w *Warehouse) Begin(sweepID, name, tenant string, jobs int) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if old := w.segs[sweepID]; old != nil {
		delete(w.segs, sweepID)
		w.bytes -= int64(old.size)
		w.reorder()
		os.Remove(filepath.Join(w.dir, segFileName(sweepID)))
	}
	w.builders[sweepID] = NewBuilder(sweepID, name, tenant, jobs)
}

// Add indexes one published row of a running sweep. Rows for unknown
// sweeps (or bad indexes) count as ingest errors and are dropped — the
// store still holds the result, so a rebuild recovers them.
func (w *Warehouse) Add(sweepID string, idx int, j sweep.Job, row sweep.Row) {
	w.mu.Lock()
	b := w.builders[sweepID]
	var err error
	if b != nil {
		err = b.Add(idx, j, row)
	}
	w.mu.Unlock()
	if b == nil {
		w.ingestErrors.Add(1)
		return
	}
	if err != nil {
		w.ingestErrors.Add(1)
		w.logf("warehouse: %v", err)
	}
}

// Seal freezes a finished sweep's builder into a segment and persists
// it. Sealing a sweep with no open builder is a no-op. An incomplete
// builder is an ingest error: the sweep stays unindexed rather than
// serving partial aggregates.
func (w *Warehouse) Seal(sweepID string) error {
	w.mu.Lock()
	b := w.builders[sweepID]
	delete(w.builders, sweepID)
	w.mu.Unlock()
	if b == nil {
		return nil
	}
	return w.install(b)
}

// install freezes a builder, persists the segment, and registers it.
func (w *Warehouse) install(b *Builder) error {
	seg, err := b.Segment()
	if err != nil {
		w.ingestErrors.Add(1)
		w.logf("warehouse: %v", err)
		return err
	}
	data := seg.encode()
	seg.size = len(data)
	if err := writeSegData(w.dir, seg.Sweep, data); err != nil {
		// Serve the segment from memory anyway: queries stay correct this
		// process lifetime, and the next restart rebuilds from the store.
		w.ingestErrors.Add(1)
		w.logf("warehouse: persisting sweep %s: %v", seg.Sweep, err)
	}
	w.mu.Lock()
	if old := w.segs[seg.Sweep]; old != nil {
		w.bytes -= int64(old.size)
	}
	w.segs[seg.Sweep] = seg
	w.bytes += int64(seg.size)
	w.reorder()
	w.mu.Unlock()
	return nil
}

// Discard drops a running sweep's builder (cancellation): canceled
// sweeps are incomplete by construction and are never indexed.
func (w *Warehouse) Discard(sweepID string) {
	w.mu.Lock()
	delete(w.builders, sweepID)
	w.mu.Unlock()
}

// Has reports whether a sealed segment exists for the sweep.
func (w *Warehouse) Has(sweepID string) bool {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.segs[sweepID] != nil
}

// RebuildSweep reconstructs one finished sweep's segment without having
// observed its rows live: each job's result is fetched from the
// content-addressed store (get), falling back to the journaled row for
// results the store has evicted. It errors — leaving the sweep
// unindexed — if any job is recoverable from neither.
func (w *Warehouse) RebuildSweep(sweepID, name, tenant string, jobs []sweep.Job,
	rows []sweep.Row, have []bool, get func(sweep.Key) (sim.Result, bool)) error {
	b := NewBuilder(sweepID, name, tenant, len(jobs))
	for i, j := range jobs {
		k := j.Key()
		if res, ok := get(k); ok {
			if err := b.Add(i, j, sweep.RowOf(j, sweep.Outcome{Result: res, Key: k, Cached: true})); err != nil {
				w.ingestErrors.Add(1)
				return err
			}
			continue
		}
		if i < len(rows) && i < len(have) && have[i] {
			if err := b.Add(i, j, rows[i]); err != nil {
				w.ingestErrors.Add(1)
				return err
			}
			continue
		}
		w.ingestErrors.Add(1)
		return fmt.Errorf("warehouse: sweep %s: job %d missing from store and journal", sweepID, i)
	}
	return w.install(b)
}

// SegmentFromRows builds an in-memory segment from a sweep's expanded
// jobs and its streamed NDJSON rows — the client-side parity path of
// rfbatch's -query -from mode, which re-aggregates a row stream through
// the exact evaluator the server runs. Rows must be in job order (as
// rfbatch and the rfserved stream emit them), each row keyed by its
// job's content address.
func SegmentFromRows(sweepID, name string, jobs []sweep.Job, rows []sweep.Row) (*Segment, error) {
	if len(rows) != len(jobs) {
		return nil, fmt.Errorf("warehouse: %d rows for %d jobs", len(rows), len(jobs))
	}
	b := NewBuilder(sweepID, name, "", len(jobs))
	for i, j := range jobs {
		if rows[i].Key != string(j.Key()) {
			return nil, fmt.Errorf("warehouse: row %d key %s does not match job key %s (rows not in job order?)",
				i, rows[i].Key, j.Key())
		}
		if err := b.Add(i, j, rows[i]); err != nil {
			return nil, err
		}
	}
	return b.Segment()
}

// Query evaluates one query document over the sealed segments. When
// tenanted, only segments owned by owner are visible — the same
// ownership rule as the results stream.
func (w *Warehouse) Query(q *api.Query, owner string, tenanted bool) (*api.QueryResult, error) {
	start := time.Now()
	w.mu.Lock()
	segs := make([]*Segment, 0, len(w.order))
	for _, id := range w.order {
		seg := w.segs[id]
		if tenanted && seg.Tenant != owner {
			continue
		}
		segs = append(segs, seg)
	}
	w.mu.Unlock()
	res, err := Eval(segs, q)
	w.queries.Add(1)
	w.queryNanos.Add(int64(time.Since(start)))
	return res, err
}

// Stats snapshots the warehouse counters.
func (w *Warehouse) Stats() Stats {
	w.mu.Lock()
	st := Stats{Segments: len(w.segs), Bytes: w.bytes}
	for _, seg := range w.segs {
		st.Rows += seg.N
	}
	w.mu.Unlock()
	st.Queries = w.queries.Load()
	st.QuerySeconds = float64(w.queryNanos.Load()) / 1e9
	st.IngestErrors = w.ingestErrors.Load()
	return st
}
