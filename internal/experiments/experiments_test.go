package experiments

import (
	"strings"
	"testing"

	"repro/internal/trace"
)

// tiny returns a fast experiment budget for tests.
func tiny() Options { return Options{Instructions: 12000} }

func TestFig1MonotoneAndComplete(t *testing.T) {
	r := Fig1(tiny())
	if len(r.Sizes) != 8 || len(r.IntHM) != 8 || len(r.FPHM) != 8 {
		t.Fatalf("Fig1 shape wrong: %d/%d/%d", len(r.Sizes), len(r.IntHM), len(r.FPHM))
	}
	// The paper's Figure 1: IPC grows with register count and flattens;
	// 256 registers must beat 48 on both suites.
	if r.IntHM[7] <= r.IntHM[0] {
		t.Errorf("int IPC did not grow with registers: %.3f -> %.3f", r.IntHM[0], r.IntHM[7])
	}
	if r.FPHM[7] <= r.FPHM[0] {
		t.Errorf("fp IPC did not grow with registers: %.3f -> %.3f", r.FPHM[0], r.FPHM[7])
	}
	var sb strings.Builder
	r.Render(&sb)
	if !strings.Contains(sb.String(), "256") {
		t.Error("render missing register sizes")
	}
}

func TestFig2Ordering(t *testing.T) {
	r := Fig2(tiny())
	if len(r.Archs) != 3 {
		t.Fatal("Fig2 needs 3 architectures")
	}
	one, full, single := r.Archs[0], r.Archs[1], r.Archs[2]
	if !(one.IntHM >= full.IntHM && full.IntHM >= single.IntHM) {
		t.Errorf("int ordering violated: %.3f %.3f %.3f", one.IntHM, full.IntHM, single.IntHM)
	}
	if !(one.FPHM >= full.FPHM && full.FPHM >= single.FPHM) {
		t.Errorf("fp ordering violated: %.3f %.3f %.3f", one.FPHM, full.FPHM, single.FPHM)
	}
	// Integer codes must be hit harder by the single-bypass 2-cycle file.
	intLoss := 1 - single.IntHM/one.IntHM
	fpLoss := 1 - single.FPHM/one.FPHM
	if intLoss <= fpLoss {
		t.Errorf("int loss %.3f should exceed fp loss %.3f", intLoss, fpLoss)
	}
	// Every benchmark present.
	for _, p := range trace.All() {
		if _, ok := one.IPC[p.Name]; !ok {
			t.Errorf("benchmark %s missing from Fig2", p.Name)
		}
	}
}

func TestFig3Distributions(t *testing.T) {
	r := Fig3(tiny())
	for name, cdf := range map[string][]float64{
		"IntValue": r.IntValue, "IntReady": r.IntReady,
		"FPValue": r.FPValue, "FPReady": r.FPReady,
	} {
		if len(cdf) != 33 {
			t.Fatalf("%s: CDF length %d", name, len(cdf))
		}
		prev := -1.0
		for i, v := range cdf {
			if v < prev-1e-9 {
				t.Errorf("%s: CDF not monotone at %d", name, i)
			}
			prev = v
		}
	}
	// Ready values are a subset of live values: the ready CDF dominates.
	for i := range r.IntValue {
		if r.IntReady[i] < r.IntValue[i]-1e-9 {
			t.Errorf("ready CDF below value CDF at %d: %.2f < %.2f", i, r.IntReady[i], r.IntValue[i])
		}
	}
	// The paper's point: a handful of registers suffices 90% of the time.
	if p := p90(r.IntValue); p > 24 {
		t.Errorf("int 90th percentile %d implausibly high", p)
	}
}

func TestFig5PolicyComparison(t *testing.T) {
	r := Fig5(tiny())
	if len(r.Archs) != 4 {
		t.Fatal("Fig5 needs 4 configurations")
	}
	for _, a := range r.Archs {
		if a.IntHM <= 0 || a.FPHM <= 0 {
			t.Errorf("%s: non-positive hmean", a.Name)
		}
	}
}

func TestFig6And7Consistency(t *testing.T) {
	r6 := Fig6(tiny())
	rfc, two := r6.Archs[1], r6.Archs[2]
	if rfc.IntHM <= two.IntHM {
		t.Errorf("RF cache (%.3f) should beat the 2-cycle single-bypass file (%.3f)", rfc.IntHM, two.IntHM)
	}
	r7 := Fig7(tiny())
	if r7.Archs[0].IntHM <= 0 || r7.Archs[1].IntHM <= 0 {
		t.Error("Fig7 produced non-positive IPC")
	}
}

func TestFig9HeadlineDirection(t *testing.T) {
	r := Fig9(Options{Instructions: 15000})
	// The paper's headline: with cycle time factored in, the RF cache
	// crushes the non-pipelined single bank.
	if sp := r.Best("rf-cache", "int") / r.Best("1-cycle", "int"); sp < 1.3 {
		t.Errorf("int speedup %.2f, expected well above 1.3", sp)
	}
	if sp := r.Best("rf-cache", "fp") / r.Best("1-cycle", "fp"); sp < 1.3 {
		t.Errorf("fp speedup %.2f, expected well above 1.3", sp)
	}
	if len(r.Rows) != 12 {
		t.Errorf("Fig9 rows = %d, want 12", len(r.Rows))
	}
	var sb strings.Builder
	r.Render(&sb)
	if !strings.Contains(sb.String(), "C4") {
		t.Error("render missing configurations")
	}
}

func TestFig8Frontiers(t *testing.T) {
	r := Fig8(Options{Instructions: 8000})
	for _, arch := range r.ArchOrder {
		if len(r.Points[arch]) == 0 {
			t.Fatalf("no points for %s", arch)
		}
		if len(r.IntFrontier[arch]) == 0 || len(r.FPFrontier[arch]) == 0 {
			t.Fatalf("empty frontier for %s", arch)
		}
		// Frontier must be monotone: increasing area, increasing IPC.
		pts := r.Points[arch]
		prevA, prevV := -1.0, -1.0
		for _, i := range r.IntFrontier[arch] {
			if pts[i].Area < prevA || pts[i].IntRel <= prevV {
				t.Errorf("%s frontier not monotone", arch)
			}
			prevA, prevV = pts[i].Area, pts[i].IntRel
		}
	}
	// Relative IPC never exceeds ~1 (the baseline has unlimited ports).
	for _, pts := range r.Points {
		for _, p := range pts {
			if p.IntRel > 1.05 || p.FPRel > 1.05 {
				t.Errorf("relative IPC %v/%v exceeds the unlimited-port baseline", p.IntRel, p.FPRel)
			}
		}
	}
}

func TestTablesRender(t *testing.T) {
	var sb strings.Builder
	Table1(&sb)
	for _, want := range []string{"Gshare", "128 int / 128 FP", "8 instructions"} {
		if !strings.Contains(sb.String(), want) {
			t.Errorf("Table 1 missing %q", want)
		}
	}
	sb.Reset()
	Table2(&sb)
	for _, want := range []string{"C1", "C4", "10921", "4.71"} {
		if !strings.Contains(sb.String(), want) {
			t.Errorf("Table 2 missing %q", want)
		}
	}
}

func TestSuiteHmean(t *testing.T) {
	ipc := map[string]float64{}
	for _, p := range trace.All() {
		ipc[p.Name] = 2.0
	}
	i, f := suiteHmean(ipc)
	if i != 2 || f != 2 {
		t.Errorf("hmean of constant 2 = %v/%v", i, f)
	}
	// Missing benchmarks are skipped, not zero-counted.
	delete(ipc, "gcc")
	i, _ = suiteHmean(ipc)
	if i != 2 {
		t.Errorf("hmean with missing entry = %v", i)
	}
}

func TestOptionsDefaults(t *testing.T) {
	var o Options
	if o.instructions() == 0 {
		t.Error("zero default instruction budget")
	}
	if o.parallelism() < 1 {
		t.Error("zero default parallelism")
	}
	o = Options{Instructions: 5, Parallelism: 3}
	if o.instructions() != 5 || o.parallelism() != 3 {
		t.Error("explicit options not honored")
	}
}

func TestAblations(t *testing.T) {
	r := Ablations(Options{Instructions: 8000})
	if len(r.Policies) != 8 {
		t.Errorf("policy cross product has %d entries, want 8", len(r.Policies))
	}
	if len(r.UpperSizes) != 4 || len(r.Buses) != 3 || len(r.Replacement) != 2 {
		t.Errorf("sweep sizes wrong: %d/%d/%d", len(r.UpperSizes), len(r.Buses), len(r.Replacement))
	}
	if len(r.Organizations) != 4 {
		t.Errorf("organization comparison has %d entries", len(r.Organizations))
	}
	for _, p := range r.UpperSizes {
		if p.Int <= 0 || p.FP <= 0 {
			t.Errorf("upper size %d produced non-positive hmeans", p.Param)
		}
	}
	// Larger upper banks should not clearly hurt.
	first, last := r.UpperSizes[0], r.UpperSizes[len(r.UpperSizes)-1]
	if last.FP < first.FP*0.95 {
		t.Errorf("64-entry upper bank (%.3f) clearly worse than 8-entry (%.3f)", last.FP, first.FP)
	}
	var sb strings.Builder
	r.Render(&sb)
	for _, want := range []string{"Upper-bank size sweep", "bus sweep", "replacement", "organizations"} {
		if !strings.Contains(sb.String(), want) {
			t.Errorf("ablation report missing %q", want)
		}
	}
}
