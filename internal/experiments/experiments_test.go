package experiments

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/sweep"
	"repro/internal/trace"
)

var update = flag.Bool("update", false, "rewrite the golden files under testdata/")

// budget returns the full instruction budget, or the reduced one under
// `go test -short`. The reduced budgets keep every test's qualitative
// assertion valid while cutting the package wall-clock several-fold; the
// default path keeps the full budgets.
func budget(full, short uint64) uint64 {
	if testing.Short() {
		return short
	}
	return full
}

// tiny returns a fast experiment budget for tests. All tests share the
// package-wide sweep runner, so configurations repeated across figures
// (the 1-cycle baseline, the paper cache, ...) simulate once per budget.
func tiny() Options { return Options{Instructions: budget(12000, 4000)} }

func TestFig1MonotoneAndComplete(t *testing.T) {
	r := Fig1(tiny())
	if len(r.Sizes) != 8 || len(r.IntHM) != 8 || len(r.FPHM) != 8 {
		t.Fatalf("Fig1 shape wrong: %d/%d/%d", len(r.Sizes), len(r.IntHM), len(r.FPHM))
	}
	// The paper's Figure 1: IPC grows with register count and flattens;
	// 256 registers must beat 48 on both suites.
	if r.IntHM[7] <= r.IntHM[0] {
		t.Errorf("int IPC did not grow with registers: %.3f -> %.3f", r.IntHM[0], r.IntHM[7])
	}
	if r.FPHM[7] <= r.FPHM[0] {
		t.Errorf("fp IPC did not grow with registers: %.3f -> %.3f", r.FPHM[0], r.FPHM[7])
	}
	var sb strings.Builder
	r.Render(&sb)
	if !strings.Contains(sb.String(), "256") {
		t.Error("render missing register sizes")
	}
}

func TestFig2Ordering(t *testing.T) {
	r := Fig2(tiny())
	if len(r.Archs) != 3 {
		t.Fatal("Fig2 needs 3 architectures")
	}
	one, full, single := r.Archs[0], r.Archs[1], r.Archs[2]
	if !(one.IntHM >= full.IntHM && full.IntHM >= single.IntHM) {
		t.Errorf("int ordering violated: %.3f %.3f %.3f", one.IntHM, full.IntHM, single.IntHM)
	}
	if !(one.FPHM >= full.FPHM && full.FPHM >= single.FPHM) {
		t.Errorf("fp ordering violated: %.3f %.3f %.3f", one.FPHM, full.FPHM, single.FPHM)
	}
	// Integer codes must be hit harder by the single-bypass 2-cycle file.
	intLoss := 1 - single.IntHM/one.IntHM
	fpLoss := 1 - single.FPHM/one.FPHM
	if intLoss <= fpLoss {
		t.Errorf("int loss %.3f should exceed fp loss %.3f", intLoss, fpLoss)
	}
	// Every benchmark present.
	for _, p := range trace.All() {
		if _, ok := one.IPC[p.Name]; !ok {
			t.Errorf("benchmark %s missing from Fig2", p.Name)
		}
	}
}

func TestFig3Distributions(t *testing.T) {
	r := Fig3(tiny())
	for name, cdf := range map[string][]float64{
		"IntValue": r.IntValue, "IntReady": r.IntReady,
		"FPValue": r.FPValue, "FPReady": r.FPReady,
	} {
		if len(cdf) != 33 {
			t.Fatalf("%s: CDF length %d", name, len(cdf))
		}
		prev := -1.0
		for i, v := range cdf {
			if v < prev-1e-9 {
				t.Errorf("%s: CDF not monotone at %d", name, i)
			}
			prev = v
		}
	}
	// Ready values are a subset of live values: the ready CDF dominates.
	for i := range r.IntValue {
		if r.IntReady[i] < r.IntValue[i]-1e-9 {
			t.Errorf("ready CDF below value CDF at %d: %.2f < %.2f", i, r.IntReady[i], r.IntValue[i])
		}
	}
	// The paper's point: a handful of registers suffices 90% of the time.
	if p := p90(r.IntValue); p > 24 {
		t.Errorf("int 90th percentile %d implausibly high", p)
	}
}

func TestFig5PolicyComparison(t *testing.T) {
	r := Fig5(tiny())
	if len(r.Archs) != 4 {
		t.Fatal("Fig5 needs 4 configurations")
	}
	for _, a := range r.Archs {
		if a.IntHM <= 0 || a.FPHM <= 0 {
			t.Errorf("%s: non-positive hmean", a.Name)
		}
	}
}

func TestFig6And7Consistency(t *testing.T) {
	r6 := Fig6(tiny())
	rfc, two := r6.Archs[1], r6.Archs[2]
	if rfc.IntHM <= two.IntHM {
		t.Errorf("RF cache (%.3f) should beat the 2-cycle single-bypass file (%.3f)", rfc.IntHM, two.IntHM)
	}
	r7 := Fig7(tiny())
	if r7.Archs[0].IntHM <= 0 || r7.Archs[1].IntHM <= 0 {
		t.Error("Fig7 produced non-positive IPC")
	}
}

func TestFig9HeadlineDirection(t *testing.T) {
	r := Fig9(Options{Instructions: budget(15000, 5000)})
	// The paper's headline: with cycle time factored in, the RF cache
	// crushes the non-pipelined single bank.
	if sp := r.Best("rf-cache", "int") / r.Best("1-cycle", "int"); sp < 1.3 {
		t.Errorf("int speedup %.2f, expected well above 1.3", sp)
	}
	if sp := r.Best("rf-cache", "fp") / r.Best("1-cycle", "fp"); sp < 1.3 {
		t.Errorf("fp speedup %.2f, expected well above 1.3", sp)
	}
	if len(r.Rows) != 12 {
		t.Errorf("Fig9 rows = %d, want 12", len(r.Rows))
	}
	var sb strings.Builder
	r.Render(&sb)
	if !strings.Contains(sb.String(), "C4") {
		t.Error("render missing configurations")
	}
}

func TestFig8Frontiers(t *testing.T) {
	if testing.Short() {
		// Fig8's exhaustive port sweep is 792 simulations — close to half
		// of this package's entire workload; its structural assertions are
		// covered by the default (full-budget) path.
		t.Skip("skipping the Figure 8 port sweep in -short mode")
	}
	r := Fig8(Options{Instructions: 8000})
	for _, arch := range r.ArchOrder {
		if len(r.Points[arch]) == 0 {
			t.Fatalf("no points for %s", arch)
		}
		if len(r.IntFrontier[arch]) == 0 || len(r.FPFrontier[arch]) == 0 {
			t.Fatalf("empty frontier for %s", arch)
		}
		// Frontier must be monotone: increasing area, increasing IPC.
		pts := r.Points[arch]
		prevA, prevV := -1.0, -1.0
		for _, i := range r.IntFrontier[arch] {
			if pts[i].Area < prevA || pts[i].IntRel <= prevV {
				t.Errorf("%s frontier not monotone", arch)
			}
			prevA, prevV = pts[i].Area, pts[i].IntRel
		}
	}
	// Relative IPC never exceeds ~1 (the baseline has unlimited ports).
	for _, pts := range r.Points {
		for _, p := range pts {
			if p.IntRel > 1.05 || p.FPRel > 1.05 {
				t.Errorf("relative IPC %v/%v exceeds the unlimited-port baseline", p.IntRel, p.FPRel)
			}
		}
	}
}

func TestTablesRender(t *testing.T) {
	var sb strings.Builder
	Table1(&sb)
	for _, want := range []string{"Gshare", "128 int / 128 FP", "8 instructions"} {
		if !strings.Contains(sb.String(), want) {
			t.Errorf("Table 1 missing %q", want)
		}
	}
	sb.Reset()
	Table2(&sb)
	for _, want := range []string{"C1", "C4", "10921", "4.71"} {
		if !strings.Contains(sb.String(), want) {
			t.Errorf("Table 2 missing %q", want)
		}
	}
}

func TestSuiteHmean(t *testing.T) {
	ipc := map[string]float64{}
	for _, p := range trace.All() {
		ipc[p.Name] = 2.0
	}
	i, f := suiteHmean(ipc)
	if i != 2 || f != 2 {
		t.Errorf("hmean of constant 2 = %v/%v", i, f)
	}
	// Missing benchmarks are skipped, not zero-counted.
	delete(ipc, "gcc")
	i, _ = suiteHmean(ipc)
	if i != 2 {
		t.Errorf("hmean with missing entry = %v", i)
	}
}

func TestOptionsDefaults(t *testing.T) {
	var o Options
	if o.instructions() == 0 {
		t.Error("zero default instruction budget")
	}
	if o.runner() == nil {
		t.Error("nil default runner")
	}
	o = Options{Instructions: 5, Parallelism: 3}
	if o.instructions() != 5 {
		t.Error("explicit options not honored")
	}
	if o.runner() != sharedRunner {
		t.Error("default runner is not the shared one")
	}
}

func TestAblations(t *testing.T) {
	r := Ablations(Options{Instructions: budget(8000, 2500)})
	if len(r.Policies) != 8 {
		t.Errorf("policy cross product has %d entries, want 8", len(r.Policies))
	}
	if len(r.UpperSizes) != 4 || len(r.Buses) != 3 || len(r.Replacement) != 2 {
		t.Errorf("sweep sizes wrong: %d/%d/%d", len(r.UpperSizes), len(r.Buses), len(r.Replacement))
	}
	if len(r.Organizations) != 4 {
		t.Errorf("organization comparison has %d entries", len(r.Organizations))
	}
	for _, p := range r.UpperSizes {
		if p.Int <= 0 || p.FP <= 0 {
			t.Errorf("upper size %d produced non-positive hmeans", p.Param)
		}
	}
	// Larger upper banks should not clearly hurt.
	first, last := r.UpperSizes[0], r.UpperSizes[len(r.UpperSizes)-1]
	if last.FP < first.FP*0.95 {
		t.Errorf("64-entry upper bank (%.3f) clearly worse than 8-entry (%.3f)", last.FP, first.FP)
	}
	var sb strings.Builder
	r.Render(&sb)
	for _, want := range []string{"Upper-bank size sweep", "bus sweep", "replacement", "organizations"} {
		if !strings.Contains(sb.String(), want) {
			t.Errorf("ablation report missing %q", want)
		}
	}
}

// checkGolden compares rendered output against a golden file, rewriting
// it under -update.
func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run `go test -run Golden -update ./internal/experiments/`): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("%s: output diverged from golden file.\n--- got ---\n%s\n--- want ---\n%s", name, got, want)
	}
}

// TestTable2Golden locks the Table 2 renderer (area/cycle-time model plus
// formatting) against regressions.
func TestTable2Golden(t *testing.T) {
	var buf bytes.Buffer
	Table2(&buf)
	checkGolden(t, "table2.golden", buf.Bytes())
}

// goldenBudget is the fixed small budget of the figure golden tests; it
// must not vary with -short, or the files would not match.
const goldenBudget = 6000

// TestFig2Golden locks the full Figure 2 pipeline — trace generation,
// simulation, suite aggregation and rendering — at a fixed small budget.
// The simulations are deterministic at every parallelism level, so this
// diff-checks refactors of the experiments and sweep layers.
func TestFig2Golden(t *testing.T) {
	var buf bytes.Buffer
	Fig2(Options{Instructions: goldenBudget}).Render(&buf)
	checkGolden(t, "fig2.golden", buf.Bytes())
}

// TestFig2GoldenAcrossParallelism re-runs the Figure 2 golden comparison
// with fresh (uncached) runners at parallelism 1 and 8: the event-driven
// scheduler must produce byte-identical renders regardless of how the
// simulations are distributed over workers.
func TestFig2GoldenAcrossParallelism(t *testing.T) {
	for _, par := range []int{1, 8} {
		var buf bytes.Buffer
		opt := Options{
			Instructions: goldenBudget,
			Parallelism:  par,
			Runner:       sweep.NewRunner(sweep.RunnerConfig{DisableCache: true}),
		}
		Fig2(opt).Render(&buf)
		checkGolden(t, "fig2.golden", buf.Bytes())
		if t.Failed() {
			t.Fatalf("parallelism %d diverged from the golden render", par)
		}
	}
}

// TestResultsIdenticalAcrossParallelism asserts the scheduler's Result
// structs — every counter, not just the rendered digits — are identical
// whether a batch runs on one worker or eight.
func TestResultsIdenticalAcrossParallelism(t *testing.T) {
	u := core.Unlimited
	specs := []sim.RFSpec{
		sim.Mono1Cycle(4, 2),
		sim.PaperCache(),
		sim.OneLevelSpec(core.OneLevelConfig{Banks: 2, ReadPortsPerBank: 2, WritePortsPerBank: 2}),
		sim.Mono2CycleSingle(u, u),
	}
	var jobs []sweep.Job
	for _, spec := range specs {
		for _, bench := range []string{"compress", "swim", "gcc"} {
			prof, ok := trace.ByName(bench)
			if !ok {
				t.Fatalf("unknown benchmark %s", bench)
			}
			jobs = append(jobs, sweep.Job{Profile: prof, Config: sim.DefaultConfig(spec, 5000)})
		}
	}
	one := sweep.NewRunner(sweep.RunnerConfig{DisableCache: true}).RunOutcomes(jobs, 1)
	eight := sweep.NewRunner(sweep.RunnerConfig{DisableCache: true}).RunOutcomes(jobs, 8)
	for i := range jobs {
		if !reflect.DeepEqual(one[i].Result, eight[i].Result) {
			t.Errorf("job %d (%s on %s): results diverged across parallelism:\np1: %+v\np8: %+v",
				i, jobs[i].Config.RF.Name, jobs[i].Profile.Name, one[i].Result, eight[i].Result)
		}
	}
}
