// Package experiments regenerates every table and figure of the paper's
// evaluation (Section 4): the IPC-vs-registers curve (Figure 1), the
// register file latency/bypass study (Figure 2), the live-value
// distributions (Figure 3), the caching/prefetching policy comparison
// (Figure 5), the architecture comparisons (Figures 6 and 7), the
// area/performance Pareto study (Figure 8), the cycle-time-factored
// throughput comparison (Figure 9), and Tables 1 and 2.
//
// Each Fig*/Table* function runs the required simulations (in parallel
// across benchmarks and configurations) and returns a structured result
// whose Render method prints the same rows/series the paper reports.
package experiments

import (
	"fmt"
	"io"

	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/sweep"
	"repro/internal/trace"
)

// Options configures an experiment run.
type Options struct {
	// Instructions is the per-benchmark dynamic instruction budget
	// (the paper used 100M; the default here is 120K, which is enough for
	// stable relative comparisons on the synthetic workloads).
	Instructions uint64
	// Parallelism bounds concurrent simulations; 0 uses GOMAXPROCS.
	Parallelism int
	// Runner, when non-nil, executes the simulations; sharing one Runner
	// across figures caches identical configurations (the 1-cycle
	// baseline alone recurs in Figures 2, 6 and 8). When nil a
	// process-wide shared runner is used.
	Runner *sweep.Runner
}

// DefaultOptions returns the standard experiment budget.
func DefaultOptions() Options {
	return Options{Instructions: 120000}
}

func (o Options) instructions() uint64 {
	if o.Instructions == 0 {
		return 120000
	}
	return o.Instructions
}

// sharedRunner memoizes simulations across every figure run in this
// process that does not bring its own Runner.
var sharedRunner = sweep.NewRunner(sweep.RunnerConfig{})

func (o Options) runner() *sweep.Runner {
	if o.Runner != nil {
		return o.Runner
	}
	return sharedRunner
}

// job is one simulation to run; the runner stores the result at out.
type job struct {
	cfg  sim.Config
	prof trace.Profile
	out  *sim.Result
}

// runAll executes jobs through the sweep engine: bounded parallelism plus
// content-addressed caching of repeated configurations.
func runAll(opt Options, jobs []job) {
	sjobs := make([]sweep.Job, len(jobs))
	for i, j := range jobs {
		sjobs[i] = sweep.Job{Profile: j.prof, Config: j.cfg}
	}
	outs := opt.runner().RunOutcomes(sjobs, opt.Parallelism)
	for i := range jobs {
		*jobs[i].out = outs[i].Result
	}
}

// suiteHmean computes per-suite harmonic means of a benchmark-indexed IPC
// map, in trace.All() order.
func suiteHmean(ipc map[string]float64) (intHM, fpHM float64) {
	var ints, fps []float64
	for _, p := range trace.All() {
		v, ok := ipc[p.Name]
		if !ok {
			continue
		}
		if p.FP {
			fps = append(fps, v)
		} else {
			ints = append(ints, v)
		}
	}
	return stats.HarmonicMean(ints), stats.HarmonicMean(fps)
}

// header prints a figure banner.
func header(w io.Writer, title, caption string) {
	fmt.Fprintf(w, "\n== %s ==\n%s\n\n", title, caption)
}

// pct formats a fractional delta as a signed percentage.
func pct(f float64) string { return fmt.Sprintf("%+.1f%%", 100*f) }
