package experiments

import (
	"fmt"
	"io"

	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/stats"
)

// AblationResult holds the extension studies beyond the paper: the policy
// cross product under limited bandwidth (the regime where the paper notes
// prefetching becomes visible), the upper-bank size and bus-count sweeps,
// the replacement-policy comparison, and the alternative multi-banked
// organizations evaluated at comparable port budgets.
type AblationResult struct {
	// Policies: caching×prefetch under C2-like bandwidth.
	Policies []ArchIPC
	// UpperSizes maps upper-bank capacity → suite hmeans.
	UpperSizes []SweepPoint
	// Buses maps bus count → suite hmeans.
	Buses []SweepPoint
	// Replacement compares pseudo-LRU and true LRU.
	Replacement []ArchIPC
	// Organizations compares the RF cache with the one-level and
	// replicated organizations.
	Organizations []ArchIPC
}

// SweepPoint is one point of a one-dimensional parameter sweep.
type SweepPoint struct {
	Param int
	Int   float64
	FP    float64
}

// limitedCache returns the C2-like bandwidth cache configuration used by
// the ablations.
func limitedCache() core.CacheConfig {
	c := core.PaperCacheConfig()
	c.ReadPorts, c.UpperWritePorts, c.LowerWritePorts, c.Buses = 4, 3, 3, 2
	return c
}

// Ablations runs every extension study.
func Ablations(opt Options) *AblationResult {
	res := &AblationResult{}

	// Policy cross product under limited bandwidth.
	var specs []sim.RFSpec
	for _, caching := range []core.CachingPolicy{core.CacheReady, core.CacheNonBypass, core.CacheAll, core.CacheNone} {
		for _, pf := range []core.PrefetchPolicy{core.FetchOnDemand, core.PrefetchFirstPair} {
			c := limitedCache()
			c.Caching = caching
			c.Prefetch = pf
			specs = append(specs, sim.CacheSpec(c))
		}
	}
	res.Policies = runArchs(opt, specs, nil)

	// Upper-bank size sweep.
	var sizeSpecs []sim.RFSpec
	sizes := []int{8, 16, 32, 64}
	for _, s := range sizes {
		c := limitedCache()
		c.UpperSize = s
		spec := sim.CacheSpec(c)
		spec.Name = fmt.Sprintf("upper=%d", s)
		sizeSpecs = append(sizeSpecs, spec)
	}
	for i, a := range runArchs(opt, sizeSpecs, nil) {
		res.UpperSizes = append(res.UpperSizes, SweepPoint{Param: sizes[i], Int: a.IntHM, FP: a.FPHM})
	}

	// Bus-count sweep.
	var busSpecs []sim.RFSpec
	buses := []int{1, 2, 4}
	for _, b := range buses {
		c := limitedCache()
		c.Buses = b
		spec := sim.CacheSpec(c)
		spec.Name = fmt.Sprintf("buses=%d", b)
		busSpecs = append(busSpecs, spec)
	}
	for i, a := range runArchs(opt, busSpecs, nil) {
		res.Buses = append(res.Buses, SweepPoint{Param: buses[i], Int: a.IntHM, FP: a.FPHM})
	}

	// Replacement policy.
	var replSpecs []sim.RFSpec
	for _, pol := range []core.Replacement{core.PseudoLRU, core.TrueLRU} {
		c := limitedCache()
		c.Replacement = pol
		spec := sim.CacheSpec(c)
		spec.Name = pol.String()
		replSpecs = append(replSpecs, spec)
	}
	res.Replacement = runArchs(opt, replSpecs, nil)

	// Alternative organizations at comparable read bandwidth.
	res.Organizations = runArchs(opt, []sim.RFSpec{
		sim.CacheSpec(limitedCache()),
		sim.OneLevelSpec(core.OneLevelConfig{
			Banks: 2, ReadPortsPerBank: 2, WritePortsPerBank: 2,
		}),
		sim.OneLevelSpec(core.OneLevelConfig{
			Banks: 2, ReadPortsPerBank: 2, WritePortsPerBank: 2,
			Assignment: core.AssignLeastLoaded,
		}),
		sim.ReplicatedSpec(core.ReplicatedConfig{
			Clusters: 2, ReadPortsPerBank: 2, WritePortsPerBank: 3, RemoteDelay: 1,
		}),
	}, nil)

	return res
}

// Render prints the ablation report.
func (r *AblationResult) Render(w io.Writer) {
	header(w, "Extensions & ablations", "Design-space studies beyond the paper's headline configurations")

	fmt.Fprintln(w, "Caching × prefetch policies, limited bandwidth (4R/3W upper, 2 buses):")
	tab := stats.NewTable("policy", "Int hmean", "FP hmean")
	for _, a := range r.Policies {
		tab.AddRow(a.Name, fmt.Sprintf("%.3f", a.IntHM), fmt.Sprintf("%.3f", a.FPHM))
	}
	fmt.Fprint(w, tab)

	fmt.Fprintln(w, "\nUpper-bank size sweep:")
	tab = stats.NewTable("entries", "Int hmean", "FP hmean")
	for _, p := range r.UpperSizes {
		tab.AddRow(fmt.Sprint(p.Param), fmt.Sprintf("%.3f", p.Int), fmt.Sprintf("%.3f", p.FP))
	}
	fmt.Fprint(w, tab)

	fmt.Fprintln(w, "\nInter-bank bus sweep:")
	tab = stats.NewTable("buses", "Int hmean", "FP hmean")
	for _, p := range r.Buses {
		tab.AddRow(fmt.Sprint(p.Param), fmt.Sprintf("%.3f", p.Int), fmt.Sprintf("%.3f", p.FP))
	}
	fmt.Fprint(w, tab)

	fmt.Fprintln(w, "\nUpper-bank replacement policy:")
	tab = stats.NewTable("policy", "Int hmean", "FP hmean")
	for _, a := range r.Replacement {
		tab.AddRow(a.Name, fmt.Sprintf("%.3f", a.IntHM), fmt.Sprintf("%.3f", a.FPHM))
	}
	fmt.Fprint(w, tab)

	fmt.Fprintln(w, "\nMultiple-banked organizations (comparable per-cycle read bandwidth):")
	tab = stats.NewTable("organization", "Int hmean", "FP hmean")
	for _, a := range r.Organizations {
		tab.AddRow(a.Name, fmt.Sprintf("%.3f", a.IntHM), fmt.Sprintf("%.3f", a.FPHM))
	}
	fmt.Fprint(w, tab)
}
