package experiments

import (
	"fmt"
	"io"

	"repro/internal/area"
	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/trace"
)

// PortPoint is one port configuration evaluated in the Figure 8 sweep.
type PortPoint struct {
	// Label describes the port configuration.
	Label string
	// Area is the register file area in 10⁴λ² (one file, the paper's
	// Table 2 convention).
	Area float64
	// IntRel and FPRel are suite harmonic-mean IPCs relative to the
	// 1-cycle single bank with unlimited ports.
	IntRel, FPRel float64
}

// Fig8Result holds the Figure 8 sweep: for each architecture, the Pareto
// frontier of (area, relative IPC) over port configurations, separately
// for SpecInt95 and SpecFP95.
type Fig8Result struct {
	// Points holds every evaluated configuration per architecture.
	Points map[string][]PortPoint
	// IntFrontier and FPFrontier are indices into Points per architecture.
	IntFrontier map[string][]int
	FPFrontier  map[string][]int
	// ArchOrder fixes rendering order.
	ArchOrder []string
}

// fig8Config couples a simulator spec with its area-model cost.
type fig8Config struct {
	arch  string
	label string
	spec  sim.RFSpec
	area  float64
}

// fig8Sweep enumerates the port configurations of the three single-bypass
// architectures, mirroring the paper's exhaustive read/write port search
// (pruned here to the plausible neighborhood of the paper's Table 2).
func fig8Sweep() []fig8Config {
	var out []fig8Config
	for _, r := range []int{2, 3, 4, 6} {
		for _, w := range []int{1, 2, 3, 4} {
			sb := area.SingleBank{Regs: 128, Read: r, Write: w}
			out = append(out, fig8Config{
				arch:  "1-cycle",
				label: fmt.Sprintf("R%dW%d", r, w),
				spec:  sim.Mono1Cycle(r, w),
				area:  sb.Area(),
			})
			out = append(out, fig8Config{
				arch:  "2-cycle",
				label: fmt.Sprintf("R%dW%d", r, w),
				spec:  sim.Mono2CycleSingle(r, w),
				area:  sb.Area(),
			})
		}
	}
	for _, r := range []int{2, 3, 4} {
		for _, w := range []int{2, 3, 4} {
			for _, b := range []int{1, 2, 3} {
				cfg := core.PaperCacheConfig()
				cfg.ReadPorts, cfg.UpperWritePorts, cfg.LowerWritePorts, cfg.Buses = r, w, w, b
				tl := area.TwoLevel{
					UpperRegs: 16, LowerRegs: 128,
					Read: r, UpperWrite: w, LowerWrite: w, Buses: b,
				}
				out = append(out, fig8Config{
					arch:  "rf-cache",
					label: fmt.Sprintf("R%dW%dB%d", r, w, b),
					spec:  sim.CacheSpec(cfg),
					area:  tl.Area(),
				})
			}
		}
	}
	return out
}

// Fig8 reproduces the paper's Figure 8: relative performance for a varying
// area cost, keeping only Pareto-optimal port configurations per
// architecture.
func Fig8(opt Options) *Fig8Result {
	configs := fig8Sweep()
	profiles := trace.All()

	// Baseline: 1-cycle, unlimited ports.
	baseIPC := make([]sim.Result, len(profiles))
	var jobs []job
	for pi, p := range profiles {
		cfg := sim.DefaultConfig(sim.Mono1Cycle(core.Unlimited, core.Unlimited), opt.instructions())
		jobs = append(jobs, job{cfg: cfg, prof: p, out: &baseIPC[pi]})
	}
	results := make([]sim.Result, len(configs)*len(profiles))
	for ci := range configs {
		for pi, p := range profiles {
			cfg := sim.DefaultConfig(configs[ci].spec, opt.instructions())
			jobs = append(jobs, job{cfg: cfg, prof: p, out: &results[ci*len(profiles)+pi]})
		}
	}
	runAll(opt, jobs)

	base := map[string]float64{}
	for pi, p := range profiles {
		base[p.Name] = baseIPC[pi].IPC
	}
	baseInt, baseFP := suiteHmean(base)

	res := &Fig8Result{
		Points:      map[string][]PortPoint{},
		IntFrontier: map[string][]int{},
		FPFrontier:  map[string][]int{},
		ArchOrder:   []string{"1-cycle", "rf-cache", "2-cycle"},
	}
	for ci, c := range configs {
		ipc := map[string]float64{}
		for pi, p := range profiles {
			ipc[p.Name] = results[ci*len(profiles)+pi].IPC
		}
		intHM, fpHM := suiteHmean(ipc)
		res.Points[c.arch] = append(res.Points[c.arch], PortPoint{
			Label: c.label, Area: c.area,
			IntRel: intHM / baseInt, FPRel: fpHM / baseFP,
		})
	}
	for arch, pts := range res.Points {
		costs := make([]float64, len(pts))
		intv := make([]float64, len(pts))
		fpv := make([]float64, len(pts))
		for i, p := range pts {
			costs[i], intv[i], fpv[i] = p.Area, p.IntRel, p.FPRel
		}
		res.IntFrontier[arch] = stats.ParetoFrontier(costs, intv)
		res.FPFrontier[arch] = stats.ParetoFrontier(costs, fpv)
	}
	return res
}

// Render prints the Pareto frontiers.
func (r *Fig8Result) Render(w io.Writer) {
	header(w, "Figure 8", "Relative performance (vs 1-cycle w/ unlimited ports) for a varying area cost; Pareto-optimal port configurations")
	for _, suite := range []string{"SpecInt95", "SpecFP95"} {
		fmt.Fprintf(w, "%s:\n", suite)
		tab := stats.NewTable("architecture", "config", "area(10^4 λ^2)", "relative IPC")
		for _, arch := range r.ArchOrder {
			frontier := r.IntFrontier[arch]
			if suite == "SpecFP95" {
				frontier = r.FPFrontier[arch]
			}
			for _, i := range frontier {
				p := r.Points[arch][i]
				rel := p.IntRel
				if suite == "SpecFP95" {
					rel = p.FPRel
				}
				tab.AddRow(arch, p.Label, fmt.Sprintf("%.0f", p.Area), fmt.Sprintf("%.3f", rel))
			}
		}
		fmt.Fprint(w, tab)
		fmt.Fprintln(w)
	}
}
