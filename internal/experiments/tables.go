package experiments

import (
	"fmt"
	"io"

	"repro/internal/area"
	"repro/internal/stats"
)

// Table1 renders the paper's Table 1 (processor microarchitectural
// parameters, as encoded in sim.DefaultConfig).
func Table1(w io.Writer) {
	header(w, "Table 1", "Processor microarchitectural parameters")
	tab := stats.NewTable("parameter", "value")
	rows := [][2]string{
		{"Fetch width", "8 instructions (up to 1 taken branch)"},
		{"I-cache", "64KB, 2-way, 64B lines, 1-cycle hit, 6-cycle miss"},
		{"Branch predictor", "Gshare with 64K entries"},
		{"Instruction window size", "128 entries"},
		{"Functional units", "6 simple int (1); 3 int mul/div (2, 14); 4 simple FP (2); 2 FP div (14); 4 load/store"},
		{"Load/store queue", "64 entries with store-load forwarding"},
		{"Issue mechanism", "8-way out-of-order; loads execute when prior store addresses are known"},
		{"Physical registers", "128 int / 128 FP"},
		{"D-cache", "64KB, 2-way, 64B lines, write-back, 1-cycle hit, 6-cycle miss (8 dirty), 16 MSHRs"},
		{"Commit width", "8 instructions"},
	}
	for _, r := range rows {
		tab.AddRow(r[0], r[1])
	}
	fmt.Fprint(w, tab)
}

// Table2 renders the paper's Table 2 — the port configurations C1–C4 with
// modeled area and cycle time — side by side with the paper's published
// values, validating the calibrated cost model.
func Table2(w io.Writer) {
	header(w, "Table 2", "Port configurations and area/cycle-time model (modeled vs published)")
	tab := stats.NewTable(
		"conf", "ports",
		"SB area", "(paper)", "1-cyc ns", "(paper)", "2-cyc ns", "(paper)",
		"RFC area", "(paper)", "RFC ns", "(paper)")
	pub := area.PublishedTable2()
	for i, c := range area.Table2() {
		ports := fmt.Sprintf("R%dW%d | R%dW%d+W%dB%d",
			c.SB.Read, c.SB.Write, c.RFC.Read, c.RFC.UpperWrite, c.RFC.LowerWrite, c.RFC.Buses)
		tab.AddRow(c.Name, ports,
			fmt.Sprintf("%.0f", c.SB.Area()), fmt.Sprintf("%.0f", pub[i].SBArea),
			fmt.Sprintf("%.2f", c.SB.CycleTime(1)), fmt.Sprintf("%.2f", pub[i].SB1Cycle),
			fmt.Sprintf("%.2f", c.SB.CycleTime(2)), fmt.Sprintf("%.2f", pub[i].SB2Cycle),
			fmt.Sprintf("%.0f", c.RFC.Area()), fmt.Sprintf("%.0f", pub[i].RFCArea),
			fmt.Sprintf("%.2f", c.RFC.CycleTime()), fmt.Sprintf("%.2f", pub[i].RFCCycle))
	}
	fmt.Fprint(w, tab)
	fmt.Fprintln(w, "\nAreas in 10^4 λ^2; cycle times in ns at λ=0.5µm. Model constants calibrated by regression on the published values (see internal/area).")
}
