package experiments

import (
	"fmt"
	"io"

	"repro/internal/area"
	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/trace"
)

// Fig9Row is one configuration × architecture point of Figure 9.
type Fig9Row struct {
	Config string
	Arch   string
	// CycleNS is the processor cycle time in ns from the area model.
	CycleNS float64
	// IntHM and FPHM are suite harmonic-mean IPCs.
	IntHM, FPHM float64
	// IntRel and FPRel are instruction throughputs (IPC/cycle time)
	// relative to the 1-cycle single bank at configuration C1.
	IntRel, FPRel float64
}

// Fig9Result holds the cycle-time-factored comparison of Figure 9.
type Fig9Result struct{ Rows []Fig9Row }

// Fig9 reproduces the paper's Figure 9: instruction throughput when the
// register file access time sets the processor cycle time, for the
// matched-area configurations C1–C4 of Table 2.
func Fig9(opt Options) *Fig9Result {
	type variant struct {
		arch    string
		spec    func(c area.PaperConfig) sim.RFSpec
		cycleNS func(c area.PaperConfig) float64
	}
	variants := []variant{
		{
			arch:    "1-cycle",
			spec:    func(c area.PaperConfig) sim.RFSpec { return sim.Mono1Cycle(c.SB.Read, c.SB.Write) },
			cycleNS: func(c area.PaperConfig) float64 { return c.SB.CycleTime(1) },
		},
		{
			arch: "rf-cache",
			spec: func(c area.PaperConfig) sim.RFSpec {
				cfg := core.PaperCacheConfig()
				cfg.ReadPorts = c.RFC.Read
				cfg.UpperWritePorts = c.RFC.UpperWrite
				cfg.LowerWritePorts = c.RFC.LowerWrite
				cfg.Buses = c.RFC.Buses
				return sim.CacheSpec(cfg)
			},
			cycleNS: func(c area.PaperConfig) float64 { return c.RFC.CycleTime() },
		},
		{
			arch:    "2-cycle, 1-bypass",
			spec:    func(c area.PaperConfig) sim.RFSpec { return sim.Mono2CycleSingle(c.SB.Read, c.SB.Write) },
			cycleNS: func(c area.PaperConfig) float64 { return c.SB.CycleTime(2) },
		},
	}
	configs := area.Table2()
	profiles := trace.All()
	results := make([]sim.Result, len(configs)*len(variants)*len(profiles))
	var jobs []job
	idx := func(ci, vi, pi int) int { return (ci*len(variants)+vi)*len(profiles) + pi }
	for ci, c := range configs {
		for vi, v := range variants {
			for pi, p := range profiles {
				cfg := sim.DefaultConfig(v.spec(c), opt.instructions())
				jobs = append(jobs, job{cfg: cfg, prof: p, out: &results[idx(ci, vi, pi)]})
			}
		}
	}
	runAll(opt, jobs)

	res := &Fig9Result{}
	var baseInt, baseFP float64 // 1-cycle @ C1 throughput
	for ci, c := range configs {
		for vi, v := range variants {
			ipc := map[string]float64{}
			for pi, p := range profiles {
				ipc[p.Name] = results[idx(ci, vi, pi)].IPC
			}
			intHM, fpHM := suiteHmean(ipc)
			ns := v.cycleNS(c)
			row := Fig9Row{
				Config: c.Name, Arch: v.arch, CycleNS: ns,
				IntHM: intHM, FPHM: fpHM,
			}
			if ci == 0 && vi == 0 {
				baseInt = intHM / ns
				baseFP = fpHM / ns
			}
			row.IntRel = (intHM / ns) / baseInt
			row.FPRel = (fpHM / ns) / baseFP
			res.Rows = append(res.Rows, row)
		}
	}
	return res
}

// Best returns the best (max) relative throughput per architecture for a
// suite ("int" or "fp").
func (r *Fig9Result) Best(arch, suite string) float64 {
	best := 0.0
	for _, row := range r.Rows {
		if row.Arch != arch {
			continue
		}
		v := row.IntRel
		if suite == "fp" {
			v = row.FPRel
		}
		if v > best {
			best = v
		}
	}
	return best
}

// Render prints the figure data and the paper's headline speedups.
func (r *Fig9Result) Render(w io.Writer) {
	header(w, "Figure 9", "Relative instruction throughput when the RF access time sets the cycle time (configs C1–C4 of Table 2)")
	tab := stats.NewTable("config", "architecture", "cycle(ns)", "Int IPC", "FP IPC", "Int rel-throughput", "FP rel-throughput")
	for _, row := range r.Rows {
		tab.AddRow(row.Config, row.Arch, fmt.Sprintf("%.2f", row.CycleNS),
			fmt.Sprintf("%.3f", row.IntHM), fmt.Sprintf("%.3f", row.FPHM),
			fmt.Sprintf("%.3f", row.IntRel), fmt.Sprintf("%.3f", row.FPRel))
	}
	fmt.Fprint(w, tab)
	rfcInt, rfcFP := r.Best("rf-cache", "int"), r.Best("rf-cache", "fp")
	oneInt, oneFP := r.Best("1-cycle", "int"), r.Best("1-cycle", "fp")
	twoInt, twoFP := r.Best("2-cycle, 1-bypass", "int"), r.Best("2-cycle, 1-bypass", "fp")
	fmt.Fprintf(w, "\nBest-config speedup of RF cache over 1-cycle:          Int %s, FP %s (paper: +87%%, +92%%)\n",
		pct(rfcInt/oneInt-1), pct(rfcFP/oneFP-1))
	fmt.Fprintf(w, "Best-config speedup of RF cache over 2-cycle/1-bypass: Int %s, FP %s (paper: +9%%, ≈0%%)\n",
		pct(rfcInt/twoInt-1), pct(rfcFP/twoFP-1))
}
