package experiments

import (
	"fmt"
	"io"

	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/trace"
)

// Fig1Result holds the Figure 1 data: harmonic-mean IPC of each suite for
// a varying number of physical registers (reorder buffer and instruction
// queue of 256 entries, one-cycle register file, unlimited ports).
type Fig1Result struct {
	Sizes []int
	IntHM []float64
	FPHM  []float64
}

// Fig1 reproduces the paper's Figure 1.
func Fig1(opt Options) *Fig1Result {
	res := &Fig1Result{Sizes: []int{48, 64, 96, 128, 160, 192, 224, 256}}
	profiles := trace.All()
	results := make([]sim.Result, len(res.Sizes)*len(profiles))
	var jobs []job
	for si, size := range res.Sizes {
		for pi, p := range profiles {
			cfg := sim.DefaultConfig(sim.Mono1Cycle(core.Unlimited, core.Unlimited), opt.instructions())
			cfg.WindowSize = 256
			cfg.PhysRegs = size
			jobs = append(jobs, job{cfg: cfg, prof: p, out: &results[si*len(profiles)+pi]})
		}
	}
	runAll(opt, jobs)
	for si := range res.Sizes {
		ipc := map[string]float64{}
		for pi, p := range profiles {
			ipc[p.Name] = results[si*len(profiles)+pi].IPC
		}
		intHM, fpHM := suiteHmean(ipc)
		res.IntHM = append(res.IntHM, intHM)
		res.FPHM = append(res.FPHM, fpHM)
	}
	return res
}

// Render prints the figure data.
func (r *Fig1Result) Render(w io.Writer) {
	header(w, "Figure 1", "IPC for a varying number of physical registers (hmean; ROB/IQ = 256; 1-cycle RF)")
	tab := stats.NewTable("registers", "SpecInt95 IPC", "SpecFP95 IPC")
	for i, s := range r.Sizes {
		tab.AddRow(fmt.Sprint(s), fmt.Sprintf("%.3f", r.IntHM[i]), fmt.Sprintf("%.3f", r.FPHM[i]))
	}
	fmt.Fprint(w, tab)
}

// ArchIPC is one architecture's per-benchmark IPC plus suite hmeans.
type ArchIPC struct {
	Name  string
	IPC   map[string]float64
	IntHM float64
	FPHM  float64
}

// runArchs simulates every benchmark under each register file spec.
func runArchs(opt Options, specs []sim.RFSpec, mutate func(*sim.Config)) []ArchIPC {
	profiles := trace.All()
	results := make([]sim.Result, len(specs)*len(profiles))
	var jobs []job
	for ai, spec := range specs {
		for pi, p := range profiles {
			cfg := sim.DefaultConfig(spec, opt.instructions())
			if mutate != nil {
				mutate(&cfg)
			}
			jobs = append(jobs, job{cfg: cfg, prof: p, out: &results[ai*len(profiles)+pi]})
		}
	}
	runAll(opt, jobs)
	out := make([]ArchIPC, len(specs))
	for ai, spec := range specs {
		a := ArchIPC{Name: spec.Name, IPC: map[string]float64{}}
		for pi, p := range profiles {
			a.IPC[p.Name] = results[ai*len(profiles)+pi].IPC
		}
		a.IntHM, a.FPHM = suiteHmean(a.IPC)
		out[ai] = a
	}
	return out
}

// renderArchTable prints per-benchmark IPCs for a set of architectures,
// grouped by suite with harmonic means, in the layout of the paper's
// per-benchmark bar charts.
func renderArchTable(w io.Writer, archs []ArchIPC) {
	cols := []string{"benchmark"}
	for _, a := range archs {
		cols = append(cols, a.Name)
	}
	tab := stats.NewTable(cols...)
	addRow := func(name string) {
		cells := []string{name}
		for _, a := range archs {
			cells = append(cells, fmt.Sprintf("%.3f", a.IPC[name]))
		}
		tab.AddRow(cells...)
	}
	for _, p := range trace.SpecInt95() {
		addRow(p.Name)
	}
	cells := []string{"Hmean(Int)"}
	for _, a := range archs {
		cells = append(cells, fmt.Sprintf("%.3f", a.IntHM))
	}
	tab.AddRow(cells...)
	for _, p := range trace.SpecFP95() {
		addRow(p.Name)
	}
	cells = []string{"Hmean(FP)"}
	for _, a := range archs {
		cells = append(cells, fmt.Sprintf("%.3f", a.FPHM))
	}
	tab.AddRow(cells...)
	fmt.Fprint(w, tab)
}

// Fig2Result holds Figure 2: the impact of register file latency and
// bypass levels on a single-banked file.
type Fig2Result struct{ Archs []ArchIPC }

// Fig2 reproduces the paper's Figure 2 (1-cycle/1-bypass vs
// 2-cycle/2-bypass vs 2-cycle/1-bypass, unlimited ports).
func Fig2(opt Options) *Fig2Result {
	u := core.Unlimited
	return &Fig2Result{Archs: runArchs(opt, []sim.RFSpec{
		sim.Mono1Cycle(u, u), sim.Mono2CycleFull(u, u), sim.Mono2CycleSingle(u, u),
	}, nil)}
}

// Render prints the figure data.
func (r *Fig2Result) Render(w io.Writer) {
	header(w, "Figure 2", "IPC for a 1-cycle RF, a 2-cycle RF, and a 2-cycle RF with one bypass level")
	renderArchTable(w, r.Archs)
	one, full, single := r.Archs[0], r.Archs[1], r.Archs[2]
	fmt.Fprintf(w, "\nSpecInt95: 2-cycle/1-byp -> 2-cycle/2-byp %s; -> 1-cycle %s (paper: +20%%, +22%%)\n",
		pct(full.IntHM/single.IntHM-1), pct(one.IntHM/single.IntHM-1))
	fmt.Fprintf(w, "SpecFP95:  2-cycle/1-byp -> 2-cycle/2-byp %s; -> 1-cycle %s (paper: +6%%, +7%%)\n",
		pct(full.FPHM/single.FPHM-1), pct(one.FPHM/single.FPHM-1))
}

// Fig3Result holds Figure 3: the cumulative distribution of the number of
// registers holding values needed by pending (and by ready) instructions.
type Fig3Result struct {
	// IntValue etc. are CDF percentages for register counts 0..32.
	IntValue, IntReady []float64
	FPValue, FPReady   []float64
}

// Fig3 reproduces the paper's Figure 3 using the live-value
// instrumentation of the simulator.
func Fig3(opt Options) *Fig3Result {
	profiles := trace.All()
	results := make([]sim.Result, len(profiles))
	var jobs []job
	for pi, p := range profiles {
		cfg := sim.DefaultConfig(sim.Mono1Cycle(core.Unlimited, core.Unlimited), opt.instructions())
		cfg.ValueStats = true
		jobs = append(jobs, job{cfg: cfg, prof: p, out: &results[pi]})
	}
	runAll(opt, jobs)
	var intVal, intRdy, fpVal, fpRdy stats.Histogram
	for pi, p := range profiles {
		if p.FP {
			fpVal.Merge(&results[pi].ValueHist)
			fpRdy.Merge(&results[pi].ReadyHist)
		} else {
			intVal.Merge(&results[pi].ValueHist)
			intRdy.Merge(&results[pi].ReadyHist)
		}
	}
	return &Fig3Result{
		IntValue: intVal.CDF(32), IntReady: intRdy.CDF(32),
		FPValue: fpVal.CDF(32), FPReady: fpRdy.CDF(32),
	}
}

// Render prints the figure data.
func (r *Fig3Result) Render(w io.Writer) {
	header(w, "Figure 3", "Cumulative distribution (% of cycles) of #registers holding values needed by pending / ready instructions")
	tab := stats.NewTable("#regs", "Int value&instr", "Int value&ready", "FP value&instr", "FP value&ready")
	for n := 0; n <= 16; n++ {
		tab.AddRow(fmt.Sprint(n),
			fmt.Sprintf("%.1f", r.IntValue[n]), fmt.Sprintf("%.1f", r.IntReady[n]),
			fmt.Sprintf("%.1f", r.FPValue[n]), fmt.Sprintf("%.1f", r.FPReady[n]))
	}
	fmt.Fprint(w, tab)
	fmt.Fprintf(w, "\n90th percentile registers needed: Int value %d / ready %d, FP value %d / ready %d (paper: ≈4-5 / <4, ≈5 / <3)\n",
		p90(r.IntValue), p90(r.IntReady), p90(r.FPValue), p90(r.FPReady))
}

// p90 returns the first count whose CDF reaches 90%.
func p90(cdf []float64) int {
	for i, v := range cdf {
		if v >= 90 {
			return i
		}
	}
	return len(cdf) - 1
}

// Fig5Result holds Figure 5: the four register-file-cache policy
// combinations.
type Fig5Result struct{ Archs []ArchIPC }

// Fig5 reproduces the paper's Figure 5 ({ready, non-bypass} × {fetch-on-
// demand, prefetch-first-pair}, unlimited bandwidth).
func Fig5(opt Options) *Fig5Result {
	mk := func(c core.CachingPolicy, pf core.PrefetchPolicy) sim.RFSpec {
		cfg := core.PaperCacheConfig()
		cfg.Caching = c
		cfg.Prefetch = pf
		return sim.CacheSpec(cfg)
	}
	return &Fig5Result{Archs: runArchs(opt, []sim.RFSpec{
		mk(core.CacheReady, core.FetchOnDemand),
		mk(core.CacheNonBypass, core.FetchOnDemand),
		mk(core.CacheReady, core.PrefetchFirstPair),
		mk(core.CacheNonBypass, core.PrefetchFirstPair),
	}, nil)}
}

// Render prints the figure data.
func (r *Fig5Result) Render(w io.Writer) {
	header(w, "Figure 5", "IPC for different register file cache architectures (128+16 registers, unlimited bandwidth)")
	renderArchTable(w, r.Archs)
	rd, nb := r.Archs[2], r.Archs[3]
	fmt.Fprintf(w, "\nnon-bypass vs ready caching (with prefetch): Int %s, FP %s (paper: +3%%, +2%%)\n",
		pct(nb.IntHM/rd.IntHM-1), pct(nb.FPHM/rd.FPHM-1))
}

// Fig6Result holds Figure 6: the register file cache against single-banked
// files with the same (single-level) bypass complexity.
type Fig6Result struct{ Archs []ArchIPC }

// Fig6 reproduces the paper's Figure 6.
func Fig6(opt Options) *Fig6Result {
	u := core.Unlimited
	return &Fig6Result{Archs: runArchs(opt, []sim.RFSpec{
		sim.Mono1Cycle(u, u),
		sim.PaperCache(),
		sim.Mono2CycleSingle(u, u),
	}, nil)}
}

// Render prints the figure data.
func (r *Fig6Result) Render(w io.Writer) {
	header(w, "Figure 6", "Register file cache vs single bank with a single level of bypass")
	renderArchTable(w, r.Archs)
	one, rfc, two := r.Archs[0], r.Archs[1], r.Archs[2]
	fmt.Fprintf(w, "\nRF cache vs 2-cycle: Int %s, FP %s (paper: +10%%, +4%%)\n",
		pct(rfc.IntHM/two.IntHM-1), pct(rfc.FPHM/two.FPHM-1))
	fmt.Fprintf(w, "RF cache vs 1-cycle: Int %s, FP %s (paper: -10%%, -2%%)\n",
		pct(rfc.IntHM/one.IntHM-1), pct(rfc.FPHM/one.FPHM-1))
}

// Fig7Result holds Figure 7: the register file cache against the 2-cycle
// single bank with a full bypass network.
type Fig7Result struct{ Archs []ArchIPC }

// Fig7 reproduces the paper's Figure 7.
func Fig7(opt Options) *Fig7Result {
	u := core.Unlimited
	return &Fig7Result{Archs: runArchs(opt, []sim.RFSpec{
		sim.PaperCache(),
		sim.Mono2CycleFull(u, u),
	}, nil)}
}

// Render prints the figure data.
func (r *Fig7Result) Render(w io.Writer) {
	header(w, "Figure 7", "Register file cache vs single bank with full bypass")
	renderArchTable(w, r.Archs)
	rfc, two := r.Archs[0], r.Archs[1]
	fmt.Fprintf(w, "\nRF cache vs 2-cycle full bypass: Int %s, FP %s (paper: -8%%, -2%%) — with a much simpler bypass network\n",
		pct(rfc.IntHM/two.IntHM-1), pct(rfc.FPHM/two.FPHM-1))
}
