package sim

import (
	"reflect"
	"testing"

	"repro/internal/core"
)

// lockstepSpecs is a mixed batch covering every register file kind plus a
// monolithic latency/bypass variant — the organizations whose issue-path
// special cases (clusters, demand fetches, catchability deltas) are most
// likely to interact with a shared front-end.
func lockstepSpecs() []RFSpec {
	u := core.Unlimited
	return []RFSpec{
		Mono1Cycle(u, u),
		Mono2CycleFull(u, u),
		Mono2CycleSingle(6, 4),
		PaperCache(),
		OneLevelSpec(core.OneLevelConfig{Banks: 2, ReadPortsPerBank: 4, WritePortsPerBank: 2}),
		ReplicatedSpec(core.ReplicatedConfig{Clusters: 2, ReadPortsPerBank: 4, WritePortsPerBank: 4, RemoteDelay: 1}),
	}
}

// TestLockstepMatchesSolo pins the lockstep contract at the simulator
// level: a batch driven by one shared front-end pass produces results
// deep-equal to running each configuration alone on a private generator.
func TestLockstepMatchesSolo(t *testing.T) {
	const budget = 40000
	specs := lockstepSpecs()
	for _, bench := range []string{"compress", "swim"} {
		cfgs := make([]Config, len(specs))
		for i, spec := range specs {
			cfgs[i] = DefaultConfig(spec, budget)
		}
		got := NewLockstep(cfgs, testStream(bench)).Run()
		for i, spec := range specs {
			want := New(cfgs[i], testStream(bench)).Run()
			if !reflect.DeepEqual(got[i], want) {
				t.Errorf("%s/%s: lockstep result diverges from solo run\nlockstep: %+v\nsolo:     %+v",
					bench, spec.Name, got[i], want)
			}
		}
	}
}

// TestLockstepUnevenBudgets checks that back-ends finishing at different
// times release their cursors and the rest run to completion unchanged.
func TestLockstepUnevenBudgets(t *testing.T) {
	u := core.Unlimited
	specs := []RFSpec{Mono1Cycle(u, u), PaperCache(), Mono2CycleSingle(6, 4)}
	budgets := []uint64{12000, 45000, 90000}
	cfgs := make([]Config, len(specs))
	for i, spec := range specs {
		cfgs[i] = DefaultConfig(spec, budgets[i])
	}
	got := NewLockstep(cfgs, testStream("gcc")).Run()
	for i := range specs {
		want := New(cfgs[i], testStream("gcc")).Run()
		if !reflect.DeepEqual(got[i], want) {
			t.Errorf("%s@%d: lockstep result diverges from solo run", specs[i].Name, budgets[i])
		}
	}
}

// TestLockstepChunkWindowBounded verifies that chunk recycling keeps the
// live window small: the round-robin scheduler holds cursors within about
// one chunk of each other, so the shared stream must never accumulate
// proportionally to the run length.
func TestLockstepChunkWindowBounded(t *testing.T) {
	u := core.Unlimited
	specs := []RFSpec{Mono1Cycle(u, u), Mono2CycleSingle(6, 4), PaperCache()}
	cfgs := make([]Config, len(specs))
	for i, spec := range specs {
		cfgs[i] = DefaultConfig(spec, 200000)
	}
	l := NewLockstep(cfgs, testStream("compress"))
	l.Run()
	// head..tail counts live chunks plus the recycle list's former spread;
	// anything beyond a handful means recycling is broken.
	if n := l.fe.liveChunks(); n > 4 {
		t.Errorf("live chunk window is %d chunks, want ≤ 4 (recycling broken)", n)
	}
}
