// Package sim is the cycle-level 8-wide out-of-order processor (Table 1
// of the paper) that evaluates the register file organizations in
// internal/core: gshare branch prediction, split I/D caches, a 128-entry
// ROB ring, a 64-entry load/store queue, and an event-driven
// wakeup/select scheduler that is allocation-free in steady state.
//
// A Simulator consumes one isa.Stream (normally a trace.Generator) and
// produces a Result. The lockstep engine (NewLockstep) runs several
// configurations of the same workload simultaneously behind one shared
// front-end pass: a Frontend materializes the instruction stream into
// refcounted chunks and precomputes branch-predictor outcomes once per
// predictor geometry, and each back-end consumes a feed over those
// chunks — results are bit-identical to running each configuration
// alone. See docs/ARCHITECTURE.md for the front-end/back-end split and
// its correctness argument.
package sim
