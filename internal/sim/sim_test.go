package sim

import (
	"testing"

	"repro/internal/core"
	"repro/internal/isa"
	"repro/internal/trace"
)

// testInstrs returns the per-run instruction budget: the full 60000 by
// default, reduced under `go test -short` (the qualitative orderings the
// tests assert are stable well below the reduced budget).
func testInstrs() uint64 {
	if testing.Short() {
		return 20000
	}
	return 60000
}

func testStream(name string) *trace.Generator {
	p, ok := trace.ByName(name)
	if !ok {
		panic("unknown benchmark " + name)
	}
	return trace.New(p)
}

func run(t *testing.T, rf RFSpec, bench string, n uint64) Result {
	t.Helper()
	cfg := DefaultConfig(rf, n)
	return New(cfg, testStream(bench)).Run()
}

func TestSmokeAllArchitectures(t *testing.T) {
	u := core.Unlimited
	specs := []RFSpec{
		Mono1Cycle(u, u),
		Mono2CycleFull(u, u),
		Mono2CycleSingle(u, u),
		PaperCache(),
	}
	for _, spec := range specs {
		r := run(t, spec, "compress", testInstrs())
		want := testInstrs() - testInstrs()/4 // post-warmup commits
		if r.Instructions+16 < want || r.Instructions > want+16 {
			t.Errorf("%s: measured %d instructions, want ≈%d", spec.Name, r.Instructions, want)
		}
		if r.IPC <= 0.3 || r.IPC > 8 {
			t.Errorf("%s: IPC %.3f implausible", spec.Name, r.IPC)
		}
		t.Logf("%-28s IPC %.3f mispred %.2f%% D$miss %.2f%%",
			spec.Name, r.IPC, 100*r.MispredictRate(), 100*r.DCacheMissRate)
	}
}

// The paper's central qualitative orderings must hold on every benchmark
// class: 1-cycle ≥ 2-cycle-full-bypass ≥ 2-cycle-single-bypass, and the
// register file cache lands between 1-cycle and 2-cycle-single-bypass.
func TestArchitectureOrdering(t *testing.T) {
	u := core.Unlimited
	for _, bench := range []string{"compress", "swim"} {
		one := run(t, Mono1Cycle(u, u), bench, testInstrs()).IPC
		twoFull := run(t, Mono2CycleFull(u, u), bench, testInstrs()).IPC
		twoSingle := run(t, Mono2CycleSingle(u, u), bench, testInstrs()).IPC
		rfc := run(t, PaperCache(), bench, testInstrs()).IPC
		t.Logf("%s: 1c=%.3f 2c-full=%.3f 2c-1byp=%.3f rfc=%.3f", bench, one, twoFull, twoSingle, rfc)
		if !(one >= twoFull*0.999) {
			t.Errorf("%s: 1-cycle (%.3f) should beat 2-cycle full bypass (%.3f)", bench, one, twoFull)
		}
		if !(twoFull >= twoSingle*0.999) {
			t.Errorf("%s: 2-cycle full (%.3f) should beat single bypass (%.3f)", bench, twoFull, twoSingle)
		}
		if !(one >= rfc*0.999) {
			t.Errorf("%s: 1-cycle (%.3f) should beat the RF cache (%.3f)", bench, one, rfc)
		}
		if !(rfc >= twoSingle*0.999) {
			t.Errorf("%s: RF cache (%.3f) should beat 2-cycle single bypass (%.3f)", bench, rfc, twoSingle)
		}
	}
}

func TestDeterministicRuns(t *testing.T) {
	a := run(t, PaperCache(), "li", 20000)
	b := run(t, PaperCache(), "li", 20000)
	if a.Cycles != b.Cycles || a.IPC != b.IPC || a.Mispredicts != b.Mispredicts {
		t.Errorf("identical runs diverged: %+v vs %+v", a, b)
	}
}

func TestIntCodesMoreBranchSensitive(t *testing.T) {
	// Figure 2's key asymmetry: integer codes lose more from the 2-cycle
	// single-bypass file than FP codes do.
	u := core.Unlimited
	lossOn := func(bench string) float64 {
		one := run(t, Mono1Cycle(u, u), bench, testInstrs()).IPC
		two := run(t, Mono2CycleSingle(u, u), bench, testInstrs()).IPC
		return 1 - two/one
	}
	intLoss := lossOn("go")
	fpLoss := lossOn("mgrid")
	t.Logf("go loss %.1f%%, mgrid loss %.1f%%", intLoss*100, fpLoss*100)
	if intLoss <= fpLoss {
		t.Errorf("integer loss %.3f should exceed FP loss %.3f", intLoss, fpLoss)
	}
}

func TestMorePhysicalRegistersHelp(t *testing.T) {
	u := core.Unlimited
	ipcAt := func(regs int) float64 {
		cfg := DefaultConfig(Mono1Cycle(u, u), testInstrs())
		cfg.WindowSize = 256
		cfg.PhysRegs = regs
		return New(cfg, testStream("swim")).Run().IPC
	}
	small, large := ipcAt(48), ipcAt(160)
	t.Logf("IPC: 48 regs %.3f, 160 regs %.3f", small, large)
	if large <= small {
		t.Errorf("more registers did not help: %.3f vs %.3f", small, large)
	}
}

func TestReadPortLimitHurts(t *testing.T) {
	u := core.Unlimited
	wide := run(t, Mono1Cycle(u, u), "swim", testInstrs()).IPC
	narrow := run(t, Mono1Cycle(2, u), "swim", testInstrs()).IPC
	t.Logf("unlimited ports %.3f, 2 read ports %.3f", wide, narrow)
	if narrow >= wide {
		t.Errorf("2 read ports (%.3f) should lose to unlimited (%.3f)", narrow, wide)
	}
}

func TestWritePortLimitHurts(t *testing.T) {
	u := core.Unlimited
	wide := run(t, Mono1Cycle(u, u), "swim", testInstrs()).IPC
	narrow := run(t, Mono1Cycle(u, 1), "swim", testInstrs()).IPC
	if narrow >= wide {
		t.Errorf("1 write port (%.3f) should lose to unlimited (%.3f)", narrow, wide)
	}
}

func TestPrefetchHelpsWithLimitedBuses(t *testing.T) {
	// The paper: prefetching matters more under limited bandwidth.
	mk := func(pf core.PrefetchPolicy) RFSpec {
		c := core.PaperCacheConfig()
		c.Prefetch = pf
		c.ReadPorts, c.UpperWritePorts, c.LowerWritePorts, c.Buses = 4, 3, 3, 2
		return CacheSpec(c)
	}
	demand := run(t, mk(core.FetchOnDemand), "mgrid", testInstrs()).IPC
	pref := run(t, mk(core.PrefetchFirstPair), "mgrid", testInstrs()).IPC
	t.Logf("fetch-on-demand %.3f, prefetch-first-pair %.3f", demand, pref)
	if pref < demand*0.98 {
		t.Errorf("prefetching (%.3f) should not clearly lose to demand fetching (%.3f)", pref, demand)
	}
}

func TestValueStatsInstrumentation(t *testing.T) {
	u := core.Unlimited
	cfg := DefaultConfig(Mono1Cycle(u, u), 20000)
	cfg.ValueStats = true
	r := New(cfg, testStream("compress")).Run()
	if r.ValueHist.Total() == 0 || r.ReadyHist.Total() == 0 {
		t.Fatal("value statistics not collected")
	}
	// The paper's Figure 3: ~90% of cycles need only a handful of live
	// registers, and ready values are a subset of live values.
	p90 := r.ValueHist.Percentile(90)
	if p90 > 40 {
		t.Errorf("90th percentile of live values = %d, expected small", p90)
	}
	if r.ReadyHist.Mean() > r.ValueHist.Mean() {
		t.Errorf("ready mean %.2f exceeds value mean %.2f", r.ReadyHist.Mean(), r.ValueHist.Mean())
	}
	t.Logf("live values P90=%d mean=%.2f; ready P90=%d mean=%.2f",
		p90, r.ValueHist.Mean(), r.ReadyHist.Percentile(90), r.ReadyHist.Mean())
}

func TestOneLevelRuns(t *testing.T) {
	spec := OneLevelSpec(core.OneLevelConfig{
		Banks: 2, ReadPortsPerBank: 4, WritePortsPerBank: 2,
	})
	r := run(t, spec, "compress", 20000)
	if r.Instructions < 14000 || r.Instructions > 20000 {
		t.Fatalf("one-level run measured %d instructions", r.Instructions)
	}
	if r.IPC <= 0.3 {
		t.Errorf("one-level IPC %.3f implausible", r.IPC)
	}
}

func TestCachingPolicies(t *testing.T) {
	mk := func(p core.CachingPolicy) RFSpec {
		c := core.PaperCacheConfig()
		c.Caching = p
		return CacheSpec(c)
	}
	nb := run(t, mk(core.CacheNonBypass), "compress", testInstrs()).IPC
	rd := run(t, mk(core.CacheReady), "compress", testInstrs()).IPC
	none := run(t, mk(core.CacheNone), "compress", testInstrs()).IPC
	t.Logf("non-bypass %.3f, ready %.3f, cache-none %.3f", nb, rd, none)
	if none >= nb {
		t.Errorf("cache-none (%.3f) should lose to non-bypass caching (%.3f)", none, nb)
	}
}

func TestMispredictionPenaltyGrowsWithLatency(t *testing.T) {
	// On a branchy code the 2-cycle file must lose strictly more cycles
	// than on a branch-free... approximated by comparing mispredict-heavy
	// "go" against predictable "swim".
	u := core.Unlimited
	r1 := run(t, Mono1Cycle(u, u), "go", testInstrs())
	r2 := run(t, Mono2CycleFull(u, u), "go", testInstrs())
	if r2.Cycles <= r1.Cycles {
		t.Errorf("2-cycle file used %d cycles vs %d for 1-cycle on go", r2.Cycles, r1.Cycles)
	}
}

func TestConfigValidation(t *testing.T) {
	u := core.Unlimited
	good := DefaultConfig(Mono1Cycle(u, u), 1000)
	if err := good.Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	muts := []func(*Config){
		func(c *Config) { c.FetchWidth = 0 },
		func(c *Config) { c.WindowSize = 1 },
		func(c *Config) { c.FetchQueue = 2 },
		func(c *Config) { c.LSQSize = 1 },
		func(c *Config) { c.PhysRegs = 32 },
		func(c *Config) { c.SimpleInt = 0 },
		func(c *Config) { c.MaxInstructions = 0 },
	}
	for i, mut := range muts {
		cfg := DefaultConfig(Mono1Cycle(u, u), 1000)
		mut(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("mutation %d not rejected", i)
		}
	}
}

func TestStatsSanity(t *testing.T) {
	r := run(t, PaperCache(), "compress", 30000)
	if r.Branches == 0 || r.Mispredicts > r.Branches {
		t.Errorf("branch stats broken: %d/%d", r.Mispredicts, r.Branches)
	}
	st := r.IntFile
	if st.Reads == 0 {
		t.Error("no register file reads recorded")
	}
	if st.CachingWrites == 0 {
		t.Error("no caching writes recorded")
	}
	if r.StoreForwards == 0 {
		t.Log("note: no store forwards in this run (allowed, but unusual)")
	}
}

// A tiny hand-built stream exercising an exact dependence chain; verifies
// end-to-end latency accounting: with a 1-cycle RF and full bypass, a chain
// of N dependent 1-cycle adds commits in ≈N cycles, while a 2-cycle
// single-bypass file needs ≈2N.
type chainStream struct{ i uint64 }

func (c *chainStream) Next() *isa.Instr {
	c.i++
	return &isa.Instr{
		PC:    0x1000,
		Class: isa.IntALU,
		Dest:  isa.IntReg(5),
		Src1:  isa.IntReg(5),
		Src2:  isa.RegNone,
	}
}

func TestDependenceChainLatency(t *testing.T) {
	u := core.Unlimited
	const n = 5000
	one := New(DefaultConfig(Mono1Cycle(u, u), n), &chainStream{}).Run()
	single := New(DefaultConfig(Mono2CycleSingle(u, u), n), &chainStream{}).Run()
	ratio1 := float64(one.Cycles) / float64(one.Instructions)
	ratio2 := float64(single.Cycles) / float64(single.Instructions)
	t.Logf("cycles per chain op: 1-cycle %.2f, 2-cycle single bypass %.2f", ratio1, ratio2)
	if ratio1 < 0.95 || ratio1 > 1.3 {
		t.Errorf("1-cycle chain throughput %.2f cycles/op, want ≈1", ratio1)
	}
	if ratio2 < 1.9 || ratio2 > 2.4 {
		t.Errorf("2-cycle single-bypass chain throughput %.2f cycles/op, want ≈2", ratio2)
	}
}

func TestReplicatedRuns(t *testing.T) {
	spec := ReplicatedSpec(core.ReplicatedConfig{
		Clusters: 2, ReadPortsPerBank: 4, WritePortsPerBank: 4, RemoteDelay: 1,
	})
	r := run(t, spec, "compress", 30000)
	if r.IPC <= 0.3 {
		t.Fatalf("replicated IPC %.3f implausible", r.IPC)
	}
	// Replication halves read-port pressure but costs a cross-cluster
	// cycle: it should land below the unlimited 1-cycle file but remain
	// competitive.
	one := run(t, Mono1Cycle(core.Unlimited, core.Unlimited), "compress", 30000)
	t.Logf("replicated %.3f vs 1-cycle %.3f", r.IPC, one.IPC)
	if r.IPC > one.IPC*1.001 {
		t.Errorf("replicated (%.3f) should not beat the unlimited 1-cycle file (%.3f)", r.IPC, one.IPC)
	}
	if r.IPC < one.IPC*0.5 {
		t.Errorf("replicated (%.3f) implausibly far below 1-cycle (%.3f)", r.IPC, one.IPC)
	}
}

func TestReplicatedRemoteDelayHurts(t *testing.T) {
	mk := func(delay int) float64 {
		spec := ReplicatedSpec(core.ReplicatedConfig{
			Clusters: 2, ReadPortsPerBank: 4, WritePortsPerBank: 4, RemoteDelay: delay,
		})
		return run(t, spec, "compress", 30000).IPC
	}
	fast, slow := mk(1), mk(4)
	t.Logf("remote delay 1: %.3f, delay 4: %.3f", fast, slow)
	if slow >= fast {
		t.Errorf("larger cross-cluster delay did not hurt: %.3f vs %.3f", slow, fast)
	}
}
