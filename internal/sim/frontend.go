package sim

import (
	"repro/internal/bpred"
	"repro/internal/isa"
)

// This file implements the shared lockstep front-end: one pass over the
// dynamic instruction stream feeding N simulator back-ends.
//
// A sequential sweep re-generates (and re-predicts) the identical trace
// once per register file configuration. The front-end instead materializes
// the stream once, in fixed-size chunks, and hands each back-end a cursor
// (feed) over the shared chunks. Branch predictor outcomes are likewise
// computed once per predictor geometry — gshare state depends only on the
// branch sequence, which every configuration sees identically — and stored
// as per-chunk bitmaps the cursors replay. What remains per configuration
// is exactly the state that is timing-dependent: rename (the LIFO free
// list makes physical register names depend on the commit/dispatch
// interleaving), caches, LSQ, and the register file model itself.
//
// A Frontend and its feeds are confined to a single goroutine: the
// lockstep driver multiplexes its back-ends itself (see Lockstep.Run), so
// the chunk list needs no locking.

// feChunkSize is the number of instructions materialized per chunk. Large
// enough to amortize scheduling, small enough that the two or three live
// chunks (the cursor spread is bounded by the lockstep driver) stay modest:
// one chunk is ~feChunkSize * sizeof(isa.Instr) ≈ 256 KiB.
const feChunkSize = 4096

// feChunk is one materialized stretch of the stream. correct holds, per
// predictor class, one bit per instruction: for branches, whether the
// class's gshare predicted the outcome correctly (bits at non-branch
// positions are never read). Chunks are recycled through a free list once
// every cursor has moved past them.
type feChunk struct {
	instrs  [feChunkSize]isa.Instr
	correct [][feChunkSize / 64]uint64
	refs    int
	next    *feChunk
}

// predClass is one distinct branch predictor geometry, with the master
// predictor that consumes the stream exactly once on behalf of every
// back-end sharing that geometry.
type predClass struct {
	bits, hist uint
	pred       *bpred.Gshare
}

// Frontend owns the underlying stream, the live chunk window, and the
// master predictors.
type Frontend struct {
	stream  isa.Stream
	classes []predClass
	feeds   []*feed
	head    *feChunk // oldest live chunk
	tail    *feChunk // newest materialized chunk
	free    *feChunk // recycle list
	started bool
}

// newFrontend wraps stream. Feeds are added with newFeed before start.
func newFrontend(stream isa.Stream) *Frontend {
	return &Frontend{stream: stream}
}

// classOf returns the index of the predictor class (bits, hist), creating
// it on first use.
func (fe *Frontend) classOf(bits, hist uint) int {
	for i := range fe.classes {
		if fe.classes[i].bits == bits && fe.classes[i].hist == hist {
			return i
		}
	}
	fe.classes = append(fe.classes, predClass{
		bits: bits, hist: hist, pred: bpred.NewGshareHist(bits, hist),
	})
	return len(fe.classes) - 1
}

// newFeed returns a cursor over the shared stream for a back-end with the
// given predictor geometry. All feeds must exist before start: the
// per-chunk outcome bitmaps are sized by the class set.
func (fe *Frontend) newFeed(bits, hist uint) *feed {
	if fe.started {
		panic("sim: front-end feed created after the stream started")
	}
	f := &feed{fe: fe, class: fe.classOf(bits, hist)}
	fe.feeds = append(fe.feeds, f)
	return f
}

// start materializes the first chunk and attaches every feed to it.
func (fe *Frontend) start() {
	if fe.started {
		return
	}
	fe.started = true
	first := fe.materialize()
	for _, f := range fe.feeds {
		f.ch = first
		first.refs++
	}
}

// materialize appends one chunk: it pulls feChunkSize instructions from
// the stream and runs every master predictor over the branches, in stream
// order — the same Update sequence a private per-simulator predictor would
// see, so the recorded outcomes are bit-identical to the sequential path.
func (fe *Frontend) materialize() *feChunk {
	ch := fe.free
	if ch != nil {
		fe.free = ch.next
		ch.next = nil
		for c := range ch.correct {
			ch.correct[c] = [feChunkSize / 64]uint64{}
		}
	} else {
		ch = &feChunk{correct: make([][feChunkSize / 64]uint64, len(fe.classes))}
	}
	for i := range ch.instrs {
		in := fe.stream.Next()
		ch.instrs[i] = *in
		if in.Class == isa.Branch {
			for c := range fe.classes {
				if fe.classes[c].pred.Update(in.PC, in.Taken) {
					ch.correct[c][i>>6] |= 1 << uint(i&63)
				}
			}
		}
	}
	if fe.tail == nil {
		fe.head, fe.tail = ch, ch
	} else {
		fe.tail.next = ch
		fe.tail = ch
	}
	return ch
}

// advance moves a cursor from ch to the next chunk, materializing it if
// this cursor is the front-most, and recycles chunks no cursor holds.
func (fe *Frontend) advance(ch *feChunk) *feChunk {
	next := ch.next
	if next == nil {
		next = fe.materialize()
	}
	ch.refs--
	next.refs++
	fe.reap()
	return next
}

// release detaches a finished back-end's cursor so its chunk can recycle.
func (fe *Frontend) release(f *feed) {
	if f.ch == nil {
		return
	}
	f.ch.refs--
	f.ch = nil
	fe.reap()
}

// reap moves leading refs-free chunks onto the free list.
func (fe *Frontend) reap() {
	for fe.head != nil && fe.head != fe.tail && fe.head.refs == 0 {
		ch := fe.head
		fe.head = ch.next
		ch.next = fe.free
		fe.free = ch
	}
}

// liveChunks reports the length of the live chunk window (tests).
func (fe *Frontend) liveChunks() int {
	n := 0
	for ch := fe.head; ch != nil; ch = ch.next {
		n++
	}
	return n
}

// feed is one back-end's cursor over the shared stream. It implements
// isa.Stream; the simulator additionally consults Correct for branch
// outcomes instead of updating a private predictor (see Simulator.fetch).
type feed struct {
	fe    *Frontend
	ch    *feChunk
	i     int    // index of the next instruction within ch
	pos   uint64 // instructions consumed (global stream position)
	class int
}

// Next implements isa.Stream. The returned pointer is valid until the
// following Next call, like every other stream.
func (f *feed) Next() *isa.Instr {
	if f.i == feChunkSize {
		f.ch = f.fe.advance(f.ch)
		f.i = 0
	}
	in := &f.ch.instrs[f.i]
	f.i++
	f.pos++
	return in
}

// Correct reports whether the feed's predictor class predicted the most
// recently returned instruction — which must be a branch — correctly. It
// must be called before the next Next (the simulator's fetch stage
// processes each pending instruction fully before pulling another, so this
// holds by construction).
func (f *feed) Correct() bool {
	i := f.i - 1
	return f.ch.correct[f.class][i>>6]&(1<<uint(i&63)) != 0
}

// geometry returns the feed's predictor geometry for validation against
// the simulator configuration.
func (f *feed) geometry() (bits, hist uint) {
	c := &f.fe.classes[f.class]
	return c.bits, c.hist
}
