package sim

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/stats"
)

// Result holds the measurements of one simulation run.
type Result struct {
	// Instructions is the number of committed instructions.
	Instructions uint64
	// Cycles is the number of simulated cycles.
	Cycles uint64
	// IPC is Instructions / Cycles.
	IPC float64

	// Branches and Mispredicts count fetched conditional branches.
	Branches, Mispredicts uint64

	// ICacheMissRate and DCacheMissRate are per-access miss rates.
	ICacheMissRate, DCacheMissRate float64

	// StoreForwards counts store→load forwards in the LSQ.
	StoreForwards uint64

	// IntFile and FPFile are the register file model statistics.
	IntFile, FPFile core.FileStats

	// DispatchStalls counts cycles with blocked dispatch (window, rename,
	// or LSQ pressure).
	DispatchStalls uint64
	// FUConflicts counts issue attempts rejected by functional unit
	// occupancy.
	FUConflicts uint64
	// BranchStallCycles counts fetch cycles lost to unresolved
	// mispredicted branches; the quantity the register file latency
	// amplifies.
	BranchStallCycles uint64
	// ICacheStallCycles counts fetch cycles lost to instruction cache
	// misses.
	ICacheStallCycles uint64

	// ValueHist and ReadyHist are the Figure 3 live-value distributions
	// (only populated with Config.ValueStats).
	ValueHist, ReadyHist stats.Histogram
}

// MispredictRate returns mispredictions per branch, or 0.
func (r *Result) MispredictRate() float64 {
	if r.Branches == 0 {
		return 0
	}
	return float64(r.Mispredicts) / float64(r.Branches)
}

// String summarizes the run.
func (r *Result) String() string {
	return fmt.Sprintf("IPC %.3f (%d instructions, %d cycles, %.1f%% branch mispredict, %.1f%% D$ miss)",
		r.IPC, r.Instructions, r.Cycles, 100*r.MispredictRate(), 100*r.DCacheMissRate)
}

func (s *Simulator) result() Result {
	b := &s.base
	rate := func(miss, missBase, acc, accBase uint64) float64 {
		if acc == accBase {
			return 0
		}
		return float64(miss-missBase) / float64(acc-accBase)
	}
	return Result{
		Instructions:      s.committed - b.committed,
		Cycles:            s.cycle - b.cycles,
		IPC:               float64(s.committed-b.committed) / float64(s.cycle-b.cycles),
		Branches:          s.branches - b.branches,
		Mispredicts:       s.mispredicts - b.mispredicts,
		ICacheMissRate:    rate(s.icache.Misses(), b.icacheMiss, s.icache.Accesses(), b.icacheAcc),
		DCacheMissRate:    rate(s.dcache.Misses(), b.dcacheMiss, s.dcache.Accesses(), b.dcacheAcc),
		StoreForwards:     s.ldst.Forwards() - b.forwards,
		IntFile:           s.intFile.Stats().Sub(b.intStats),
		FPFile:            s.fpFile.Stats().Sub(b.fpStats),
		DispatchStalls:    s.dispatchStall - b.dispatchStalls,
		FUConflicts:       s.fuConflicts - b.fuConflicts,
		BranchStallCycles: s.branchStallCyc - b.branchStallCyc,
		ICacheStallCycles: s.icacheStallCyc - b.icacheStallCyc,
		ValueHist:         s.valueHist,
		ReadyHist:         s.readyHist,
	}
}
