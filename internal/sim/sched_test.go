package sim

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/isa"
)

// readyMaskReference recomputes the ready set the way the pre-scheduler
// code discovered it — a full window walk checking every issue-gating
// source against the result-bus table — and returns it as a bitmap. On top
// of the producers-issued condition it applies the catchability deferral
// (readyHold): a uop enters the mask only once an issue attempt could get
// past the gate file's not-yet-catchable check.
func (s *Simulator) readyMaskReference() []uint64 {
	// The mask is inspected after a completed step; the cycle whose
	// processReadyEvents last ran is s.cycle-1.
	t := s.cycle - 1
	ref := make([]uint64, len(s.readyMask))
	for i, n := s.robHead, 0; n < s.robCount; i, n = (i+1)%len(s.rob), n+1 {
		u := &s.rob[i]
		if !u.live || u.issued {
			continue
		}
		scheduled := true
		for k := 0; k < u.issueSrcs; k++ {
			if s.regBus[fileIdx(u.src[k].fp)][u.src[k].phys] == notScheduled {
				scheduled = false
				break
			}
		}
		if scheduled && s.readyHold(u) <= t {
			ref[i>>6] |= 1 << uint(i&63)
		}
	}
	return ref
}

// checkSchedulerInvariants asserts, after a completed cycle, that the
// event-driven scheduler state matches a from-scratch recomputation: the
// ready mask equals the window-scan reference, and every consumer list is
// sequence-ordered, holds only live unissued uops, and links the register
// it is indexed under.
func checkSchedulerInvariants(t *testing.T, s *Simulator) {
	t.Helper()
	ref := s.readyMaskReference()
	for w := range ref {
		if ref[w] != s.readyMask[w] {
			t.Fatalf("cycle %d: ready mask word %d = %#x, window-scan reference %#x",
				s.cycle, w, s.readyMask[w], ref[w])
		}
	}
	for fi := 0; fi < 2; fi++ {
		for p := range s.consHead[fi] {
			var lastSeq uint64
			lastK := int32(-1)
			for id := s.consHead[fi][p]; id != nodeNone; id = s.node(id).next {
				n := s.node(id)
				u := s.nodeOwner(id)
				if !u.live || u.issued {
					t.Fatalf("cycle %d: consumer list f%d p%d holds dead or issued uop #%d",
						s.cycle, fi, p, u.seq)
				}
				// A uop sourcing the same register through both operands
				// appears twice, in operand order.
				if u.seq < lastSeq || (u.seq == lastSeq && id&1 <= lastK) {
					t.Fatalf("cycle %d: consumer list f%d p%d out of order: #%d after #%d",
						s.cycle, fi, p, u.seq, lastSeq)
				}
				lastSeq, lastK = u.seq, id&1
				if k := int(id & 1); u.src[k].phys != core.PhysReg(p) || fileIdx(u.src[k].fp) != fi {
					t.Fatalf("cycle %d: consumer node of #%d (src %d) filed under wrong register f%d p%d",
						s.cycle, u.seq, k, fi, p)
				}
				if n.next != nodeNone && s.node(n.next).prev != id {
					t.Fatalf("cycle %d: consumer list f%d p%d back-link broken", s.cycle, fi, p)
				}
			}
		}
	}
}

// TestReadySetMatchesWindowScan cross-checks the wakeup-driven ready set
// against the brute-force window scan it replaced, every cycle, on
// architectures with contended ports (so uops linger in the ready set
// across failed issue attempts) and on the cache organization (demand
// fetches, prefetches).
func TestReadySetMatchesWindowScan(t *testing.T) {
	u := core.Unlimited
	limited := core.PaperCacheConfig()
	limited.ReadPorts, limited.UpperWritePorts, limited.LowerWritePorts, limited.Buses = 4, 2, 3, 2
	specs := []RFSpec{
		Mono2CycleSingle(4, 2),
		Mono1Cycle(u, u),
		CacheSpec(limited),
		OneLevelSpec(core.OneLevelConfig{Banks: 2, ReadPortsPerBank: 2, WritePortsPerBank: 2}),
		ReplicatedSpec(core.ReplicatedConfig{Clusters: 2, ReadPortsPerBank: 4, WritePortsPerBank: 4, RemoteDelay: 1}),
	}
	for _, spec := range specs {
		for _, bench := range []string{"compress", "swim"} {
			s := New(DefaultConfig(spec, 1<<40), testStream(bench))
			for c := 0; c < 3000; c++ {
				s.step()
				checkSchedulerInvariants(t, s)
				if t.Failed() {
					t.Fatalf("%s/%s: invariant violated", spec.Name, bench)
				}
			}
		}
	}
}

// eventRec is one captured pipeline event.
type eventRec struct {
	cycle uint64
	stage string
	seq   uint64
}

// recTracer records events with their uop sequence numbers.
type recTracer struct{ events []eventRec }

func (r *recTracer) Event(cycle uint64, stage, detail string) {
	var seq uint64
	if _, err := fmt.Sscanf(detail, "#%d", &seq); err != nil {
		return
	}
	r.events = append(r.events, eventRec{cycle, stage, seq})
}

func (r *recTracer) find(stage string, seq uint64) []eventRec {
	var out []eventRec
	for _, e := range r.events {
		if e.stage == stage && e.seq == seq {
			out = append(out, e)
		}
	}
	return out
}

// scriptStream replays a fixed prologue and then an endless filler
// instruction.
type scriptStream struct {
	script []isa.Instr
	i      int
	filler isa.Instr
}

func (s *scriptStream) Next() *isa.Instr {
	if s.i < len(s.script) {
		in := &s.script[s.i]
		s.i++
		return in
	}
	return &s.filler
}

// TestWakeupOrderingSameCycleMultiProducer builds a dependence pattern in
// which two producers with different latencies complete in the same cycle
// and share a consumer: an IntDiv (14 cycles) and an IntMul (2 cycles)
// whose issue is delayed by a 12-deep ALU chain so both finish together.
// The consumer must be woken exactly once, issue exactly once, and only
// after both producers issued; per-cycle issue order must remain oldest
// first throughout.
func TestWakeupOrderingSameCycleMultiProducer(t *testing.T) {
	alu := func(pc uint64, dest, src1, src2 isa.Reg) isa.Instr {
		return isa.Instr{PC: pc, Class: isa.IntALU, Dest: dest, Src1: src1, Src2: src2}
	}
	var script []isa.Instr
	pc := uint64(0x1000)
	next := func() uint64 { pc += 4; return pc }
	// seq 1: the slow producer.
	script = append(script, isa.Instr{PC: next(), Class: isa.IntDiv,
		Dest: isa.IntReg(1), Src1: isa.IntReg(0), Src2: isa.RegNone})
	// seq 2..13: the delay chain feeding the fast producer.
	script = append(script, alu(next(), isa.IntReg(10), isa.IntReg(0), isa.RegNone))
	for i := 0; i < 11; i++ {
		script = append(script, alu(next(), isa.IntReg(10), isa.IntReg(10), isa.RegNone))
	}
	// seq 14: the fast producer.
	script = append(script, isa.Instr{PC: next(), Class: isa.IntMul,
		Dest: isa.IntReg(2), Src1: isa.IntReg(10), Src2: isa.RegNone})
	// seq 15: the shared consumer.
	script = append(script, alu(next(), isa.IntReg(3), isa.IntReg(1), isa.IntReg(2)))

	stream := &scriptStream{
		script: script,
		filler: alu(0x4000, isa.IntReg(20), isa.IntReg(0), isa.RegNone),
	}
	u := core.Unlimited
	cfg := DefaultConfig(Mono1Cycle(u, u), 40)
	s := New(cfg, stream)
	rec := &recTracer{}
	s.SetTracer(rec)
	s.Run()

	const divSeq, mulSeq, consSeq = 1, 14, 15
	divDone := rec.find("complete", divSeq)
	mulDone := rec.find("complete", mulSeq)
	if len(divDone) != 1 || len(mulDone) != 1 {
		t.Fatalf("producers completed %d/%d times, want once each", len(divDone), len(mulDone))
	}
	if divDone[0].cycle != mulDone[0].cycle {
		t.Fatalf("producers completed at cycles %d and %d, want the same cycle (chain mistimed)",
			divDone[0].cycle, mulDone[0].cycle)
	}
	consIssue := rec.find("issue", consSeq)
	if len(consIssue) != 1 {
		t.Fatalf("consumer issued %d times, want exactly once", len(consIssue))
	}
	divIssue := rec.find("issue", divSeq)
	mulIssue := rec.find("issue", mulSeq)
	if len(divIssue) != 1 || len(mulIssue) != 1 {
		t.Fatalf("producers issued %d/%d times", len(divIssue), len(mulIssue))
	}
	if consIssue[0].cycle < divIssue[0].cycle || consIssue[0].cycle < mulIssue[0].cycle {
		t.Errorf("consumer issued at %d before a producer (div %d, mul %d)",
			consIssue[0].cycle, divIssue[0].cycle, mulIssue[0].cycle)
	}
	// The select stage must pick ready instructions oldest first within
	// every cycle.
	var lastCycle, lastSeq uint64
	for _, e := range rec.events {
		if e.stage != "issue" {
			continue
		}
		if e.cycle == lastCycle && e.seq <= lastSeq {
			t.Errorf("cycle %d: issue order not oldest-first (#%d after #%d)", e.cycle, e.seq, lastSeq)
		}
		lastCycle, lastSeq = e.cycle, e.seq
	}
}

// TestSteadyStateZeroAllocs pins the cycle loop at zero heap allocations
// per cycle in the steady state, for every register file organization. All
// event plumbing (wakeup lists, completion/write-back chains, fetch queue,
// operand scratch) is preallocated or embedded in the ROB entries.
func TestSteadyStateZeroAllocs(t *testing.T) {
	u := core.Unlimited
	specs := []RFSpec{
		Mono1Cycle(u, u),
		PaperCache(),
		OneLevelSpec(core.OneLevelConfig{Banks: 2, ReadPortsPerBank: 4, WritePortsPerBank: 2}),
		ReplicatedSpec(core.ReplicatedConfig{Clusters: 2, ReadPortsPerBank: 4, WritePortsPerBank: 4, RemoteDelay: 1}),
	}
	for _, spec := range specs {
		for _, bench := range []string{"compress", "swim"} {
			name := strings.SplitN(spec.Name, " ", 2)[0] + "/" + bench
			s := New(DefaultConfig(spec, 1<<40), testStream(bench))
			// Let every queue, cache and pool reach its steady-state
			// capacity before measuring.
			for c := 0; c < 30000; c++ {
				s.step()
			}
			avg := testing.AllocsPerRun(20, func() {
				for c := 0; c < 500; c++ {
					s.step()
				}
			})
			if avg != 0 {
				t.Errorf("%s: %.2f allocs per 500 steady-state cycles, want 0", name, avg)
			}
		}
	}
}
