package sim

import "repro/internal/isa"

// Lockstep drives N processor configurations through a single pass over
// one instruction stream. The shared front-end (see frontend.go)
// materializes the trace and branch predictor outcomes once; each
// configuration keeps its own timing-dependent back-end (rename, caches,
// LSQ, register file model, scheduler). The batch state is laid out as
// parallel arrays over the configurations — simulators, cursors, results,
// completion flags — advanced by a chunk-granular round-robin scheduler.
//
// Results are bit-identical to running each configuration alone: the
// cursors replay the identical instruction sequence a private generator
// would produce, and predictor outcomes are a pure function of the branch
// sequence. The per-configuration saving is the trace generation and
// prediction work; the cost is the live chunk window, which the scheduler
// bounds to the cursor spread (one chunk plus a fetch overshoot).
//
// A Lockstep is single-goroutine, like a Simulator.
type Lockstep struct {
	fe    *Frontend
	sims  []*Simulator
	feeds []*feed
	done  []bool
}

// NewLockstep builds one simulator per configuration, all fed by a single
// shared pass over stream. Configurations may differ arbitrarily — those
// with equal predictor geometry additionally share prediction work. It
// panics on an empty batch or invalid configurations, like New.
func NewLockstep(cfgs []Config, stream isa.Stream) *Lockstep {
	if len(cfgs) == 0 {
		panic("sim: empty lockstep batch")
	}
	l := &Lockstep{
		fe:    newFrontend(stream),
		sims:  make([]*Simulator, len(cfgs)),
		feeds: make([]*feed, len(cfgs)),
		done:  make([]bool, len(cfgs)),
	}
	for i := range cfgs {
		l.feeds[i] = l.fe.newFeed(cfgs[i].PredictorBits, cfgs[i].HistoryBits)
		l.sims[i] = New(cfgs[i], l.feeds[i])
	}
	return l
}

// Width returns the number of configurations in the batch.
func (l *Lockstep) Width() int { return len(l.sims) }

// Run simulates every configuration to its instruction budget and returns
// their results in configuration order. The scheduler advances each
// back-end until its cursor crosses the current chunk boundary, then
// rotates to the next, so all cursors stay within about one chunk of each
// other and chunks recycle as the slowest cursor passes them.
func (l *Lockstep) Run() []Result {
	l.fe.start()
	results := make([]Result, len(l.sims))
	running := len(l.sims)
	for target := uint64(feChunkSize); running > 0; target += feChunkSize {
		for i, s := range l.sims {
			if l.done[i] {
				continue
			}
			f := l.feeds[i]
			for s.committed < s.cfg.MaxInstructions && f.pos < target {
				s.step()
			}
			if s.committed >= s.cfg.MaxInstructions {
				results[i] = s.result()
				l.done[i] = true
				l.fe.release(f)
				running--
			}
		}
	}
	return results
}
