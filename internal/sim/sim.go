package sim

import (
	"fmt"
	"math/bits"

	"repro/internal/bpred"
	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/isa"
	"repro/internal/lsq"
	"repro/internal/rename"
	"repro/internal/stats"
)

// notScheduled marks a physical register whose producer has not yet issued.
const notScheduled = ^uint64(0)

// eventHorizon bounds how far in the future completion/write-back events
// can be scheduled.
const eventHorizon = 4096

// deadlockLimit aborts runs that stop committing (a model bug, not a
// workload property).
const deadlockLimit = 100000

// srcOp is one renamed source operand.
type srcOp struct {
	phys core.PhysReg
	fp   bool
}

// nodeNone marks an empty consumer-list link, event chain, or producer
// table slot. All scheduler links are int32 indices rather than pointers:
// a node id encodes (ROB slot, source index) as robIdx*2+k, and event
// chains carry ROB slot indices directly. Index links keep the scheduler
// state pointer-free, so the garbage collector neither traces the window
// every cycle nor interposes write barriers on the hot linking paths.
const nodeNone int32 = -1

// consumerNode links one source operand of an in-flight uop into the
// consumer list of the physical register it reads. The nodes are embedded
// in the uop itself (no allocation) and the lists are doubly linked so an
// issuing instruction unlinks in O(1). One list per physical register
// replaces the per-cycle window scans: it is the wakeup list (producer
// issue decrements waiters' pending counts), the prefetch-first-pair
// candidate list, and the ready-caching consumer census. The owner uop and
// source index are recovered from the node id (robIdx = id>>1, k = id&1),
// so the node itself stores only the links.
type consumerNode struct {
	prev, next int32 // node ids; nodeNone terminates
	// gating marks sources that gate issue and whose producer had not yet
	// issued at dispatch: the producer's issue decrements owner.pending.
	gating bool
}

// uop is one in-flight instruction.
type uop struct {
	in   isa.Instr
	seq  uint64
	live bool

	dest   core.PhysReg // -1 if none
	destFP bool
	prev   rename.PhysReg
	destL  isa.Reg

	src  [2]srcOp
	nsrc int
	// issueSrcs is the number of leading sources that gate issue. For
	// stores only the address register does: the address generation may
	// proceed before the data is produced (split store-address/store-data,
	// as in real designs), and in-order commit automatically enforces the
	// data dependence — the data producer is older and must commit first.
	issueSrcs int

	lsqTicket int

	// cluster is the execution cluster for replicated organizations.
	cluster int8

	issued    bool
	completed bool

	issueCycle    uint64
	completeCycle uint64
	wbCycle       uint64

	mispredicted bool
	bypassCaught bool

	// Scheduler state. robIdx is the uop's own slot in the ROB ring (its
	// bit position in the ready mask); pending counts issue-gating sources
	// whose producer has not yet issued; srcNode embeds the consumer-list
	// nodes; nextComp/nextWB chain the uop into the per-cycle completion
	// and write-back event lists.
	robIdx           int32
	pending          int8
	srcNode          [2]consumerNode
	nextComp, nextWB int32 // ROB slot of the next uop in the event chain
	nextReady        int32 // ROB slot chain of the deferred-ready wheel
}

// Simulator runs one workload on one processor configuration.
type Simulator struct {
	cfg    Config
	stream isa.Stream

	intFile, fpFile core.File
	oneLevel        [2]*core.OneLevel   // non-nil for RFOneLevel; [0]=int,[1]=fp
	replicated      [2]*core.Replicated // non-nil for RFReplicated
	rmap            *rename.Map
	pred            *bpred.Gshare
	icache, dcache  *cache.Cache
	ldst            *lsq.Queue

	// predFeed, when non-nil, replays branch predictor outcomes computed
	// once by a shared lockstep front-end (frontend.go); pred is nil then.
	// The outcome sequence is identical to a private predictor's, so
	// results do not depend on which path a simulator uses.
	predFeed *feed

	// ROB ring buffer.
	rob      []uop
	robHead  int
	robCount int

	// readyMask holds one bit per ROB slot: set while the uop is live,
	// unissued, and all of its issue-gating producers have issued. Issue
	// selection scans set bits in ring order from robHead (oldest first)
	// instead of walking every live uop.
	readyMask []uint64

	// Per-physical-register consumer lists (see consumerNode), indexed by
	// file then register; entries are node ids (nodeNone when empty).
	consHead, consTail [2][]int32

	// Fetch queue ring buffer.
	fetchQ []fetchEntry
	fqHead int
	fqLen  int

	// Per-file result-bus cycle and producer tables, indexed by physical
	// register; index 0 = int file, 1 = FP file. Producers are ROB slot
	// indices (nodeNone when never produced); like the old pointer form,
	// an entry may refer to a recycled slot, so readers re-check live.
	regBus      [2][]uint64
	regProducer [2][]int32

	// Per-cycle completion and write-back event lists, chained through the
	// uops themselves (nextComp/nextWB) in FIFO order — no slice churn.
	// Entries are ROB slot indices; nodeNone means empty.
	compHead, compTail [eventHorizon]int32
	wbHead, wbTail     [eventHorizon]int32

	// readyEv defers ready-mask entry to the cycle a uop's operands first
	// become catchable (see scheduleReady): a consumer of a long-latency
	// producer would otherwise sit in the mask failing tryReadOperands —
	// side-effect-free by the register file models' early not-yet-catchable
	// exit — every cycle until the value approaches the bypass window.
	readyEv [eventHorizon]int32

	fu fuPools

	// readLat caches the files' constant operand-read latencies
	// ([0]=int, [1]=fp), avoiding an interface call per issued uop.
	readLat [2]uint64

	// catchDelta is how many cycles before an operand's result-bus cycle
	// an issue attempt can first succeed, per file: the not-yet-catchable
	// threshold of the file's TryRead (minIssueDelta for monolithic files,
	// the two-level bypass window of 2 for the banked organizations).
	catchDelta [2]uint64

	cycle     uint64
	seq       uint64
	committed uint64

	fetchResumeAt uint64
	blockedBranch bool
	// pendingValid marks that the next instruction has already been pulled
	// from the stream and sits in the fetch-queue slot the next push will
	// occupy (it stalled on an I-cache miss or a full queue).
	pendingValid bool

	// Operand scratch buffers, indexed by file: at most two sources per
	// instruction, so fixed arrays (no heap growth).
	ops  [2][2]core.Operand
	nOps [2]int

	// Value-stats scratch bitmaps (Figure 3 instrumentation only).
	vsVal, vsReady [2][]uint64

	// instrumentation
	mispredicts    uint64
	branches       uint64
	valueHist      stats.Histogram
	readyHist      stats.Histogram
	dispatchStall  uint64
	fuConflicts    uint64
	branchStallCyc uint64
	icacheStallCyc uint64
	lastCommitAt   uint64

	warmed bool
	base   snapshot

	tracer Tracer
}

// snapshot records statistics at the warmup boundary; results report the
// deltas from it.
type snapshot struct {
	cycles, committed     uint64
	branches, mispredicts uint64
	icacheAcc, icacheMiss uint64
	dcacheAcc, dcacheMiss uint64
	forwards              uint64
	dispatchStalls        uint64
	fuConflicts           uint64
	branchStallCyc        uint64
	icacheStallCyc        uint64
	intStats, fpStats     core.FileStats
}

type fetchEntry struct {
	in           isa.Instr
	mispredicted bool
}

// fuPool tracks one functional-unit class: each unit accepts one
// instruction per cycle (pipelined); divides occupy their unit for the full
// latency. earliestFree caches min(busyUntil) so the common "all units
// busy" case is a single comparison instead of a pool scan.
//
// Pools whose every instruction occupies its unit for a single cycle
// (pipelined = true) degenerate to a per-cycle grant counter: a unit taken
// at t is free again at t+1, so availability at t depends only on how many
// grants cycle t has already made. The counter path and the busyUntil scan
// accept and reject identically; the counter just skips the bookkeeping.
type fuPool struct {
	busyUntil    []uint64
	earliestFree uint64

	pipelined bool
	lastGrant uint64
	granted   int
}

// take acquires a unit at cycle t, occupying it for occupy cycles, and
// reports whether one was free.
func (p *fuPool) take(t, occupy uint64) bool {
	if p.pipelined {
		if p.lastGrant != t {
			p.lastGrant = t
			p.granted = 0
		}
		if p.granted == len(p.busyUntil) {
			return false
		}
		p.granted++
		return true
	}
	if p.earliestFree > t {
		return false // all busy: O(1) fast path
	}
	for i, busy := range p.busyUntil {
		if busy <= t {
			p.busyUntil[i] = t + occupy
			m := p.busyUntil[0]
			for _, b := range p.busyUntil[1:] {
				if b < m {
					m = b
				}
			}
			p.earliestFree = m
			return true
		}
	}
	panic("sim: fuPool earliestFree out of sync with pool state")
}

// fuPools holds the functional unit pools of Table 1, plus a class-indexed
// dispatch table (pool and occupancy per class) so the per-issue lookup is
// two array loads instead of a switch.
type fuPools struct {
	simpleInt fuPool
	intMulDiv fuPool
	simpleFP  fuPool
	fpDiv     fuPool
	mem       fuPool

	byClass [isa.NumClasses]*fuPool
	occupy  [isa.NumClasses]uint64
}

func newFUPools(c *Config) fuPools {
	f := fuPools{
		// simpleInt, simpleFP and mem serve only occupy-1 classes, so they
		// use the per-cycle counter path; the divide pools track real
		// multi-cycle occupancy.
		simpleInt: fuPool{busyUntil: make([]uint64, c.SimpleInt), pipelined: true},
		intMulDiv: fuPool{busyUntil: make([]uint64, c.IntMulDiv)},
		simpleFP:  fuPool{busyUntil: make([]uint64, c.SimpleFP), pipelined: true},
		fpDiv:     fuPool{busyUntil: make([]uint64, c.FPDiv)},
		mem:       fuPool{busyUntil: make([]uint64, c.MemPorts), pipelined: true},
	}
	for cls := isa.Class(0); cls < isa.NumClasses; cls++ {
		f.byClass[cls] = f.poolFor(cls)
		// Divides block their unit for the full latency; every other class
		// is fully pipelined and occupies its unit for a single cycle.
		f.occupy[cls] = 1
		if cls == isa.IntDiv || cls == isa.FPDiv {
			f.occupy[cls] = uint64(isa.Latency(cls))
		}
	}
	return f
}

func (f *fuPools) poolFor(c isa.Class) *fuPool {
	switch c {
	case isa.IntALU, isa.Branch:
		return &f.simpleInt
	case isa.IntMul, isa.IntDiv:
		return &f.intMulDiv
	case isa.FPALU:
		return &f.simpleFP
	case isa.FPDiv:
		return &f.fpDiv
	case isa.Load, isa.Store:
		return &f.mem
	}
	panic(fmt.Sprintf("sim: no functional unit pool for %v", c))
}

// take acquires a unit at cycle t for an instruction of class c, returning
// false if all units are busy.
func (f *fuPools) take(c isa.Class, t uint64) bool {
	return f.byClass[c].take(t, f.occupy[c])
}

// New builds a simulator for the given configuration and instruction
// stream. It panics on invalid configurations (experiment definitions are
// code, not user input).
func New(cfg Config, stream isa.Stream) *Simulator {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	s := &Simulator{
		cfg:       cfg,
		stream:    stream,
		intFile:   cfg.buildFile(),
		fpFile:    cfg.buildFile(),
		rmap:      rename.NewMap(cfg.PhysRegs, cfg.PhysRegs),
		icache:    cache.New(cfg.ICache),
		dcache:    cache.New(cfg.DCache),
		ldst:      lsq.New(cfg.LSQSize),
		rob:       make([]uop, cfg.WindowSize),
		readyMask: make([]uint64, (cfg.WindowSize+63)/64),
		fetchQ:    make([]fetchEntry, cfg.FetchQueue),
		fu:        newFUPools(&cfg),
	}
	if f, ok := stream.(*feed); ok {
		// A lockstep front-end cursor carries precomputed predictor
		// outcomes; no private predictor is built.
		if bits, hist := f.geometry(); bits != cfg.PredictorBits || hist != cfg.HistoryBits {
			panic("sim: front-end feed predictor geometry does not match the configuration")
		}
		s.predFeed = f
	} else {
		s.pred = bpred.NewGshareHist(cfg.PredictorBits, cfg.HistoryBits)
	}
	if cfg.RF.Kind == RFOneLevel {
		s.oneLevel[0] = s.intFile.(*core.OneLevel)
		s.oneLevel[1] = s.fpFile.(*core.OneLevel)
	}
	if cfg.RF.Kind == RFReplicated {
		s.replicated[0] = s.intFile.(*core.Replicated)
		s.replicated[1] = s.fpFile.(*core.Replicated)
	}
	s.readLat[0] = uint64(s.intFile.ReadLatency())
	s.readLat[1] = uint64(s.fpFile.ReadLatency())
	for f := 0; f < 2; f++ {
		// The not-yet-catchable threshold of each file's TryRead: issue
		// attempts at t < bus−catchDelta fail without side effects. Both
		// files share the RF spec, so the deltas coincide today, but they
		// are kept per-file like readLat.
		s.catchDelta[f] = 2
		if cfg.RF.Kind == RFMonolithic && cfg.RF.Mono.FullBypass {
			s.catchDelta[f] = uint64(cfg.RF.Mono.Latency) + 1
		}
	}
	for f := 0; f < 2; f++ {
		s.regBus[f] = make([]uint64, cfg.PhysRegs)
		s.regProducer[f] = make([]int32, cfg.PhysRegs)
		s.consHead[f] = make([]int32, cfg.PhysRegs)
		s.consTail[f] = make([]int32, cfg.PhysRegs)
		for p := 0; p < cfg.PhysRegs; p++ {
			// Architectural registers hold committed values from the start;
			// free-list registers get a bus cycle when renamed.
			s.regBus[f][p] = 0
			s.regProducer[f][p] = nodeNone
			s.consHead[f][p] = nodeNone
			s.consTail[f][p] = nodeNone
		}
	}
	for i := range s.compHead {
		s.compHead[i], s.compTail[i] = nodeNone, nodeNone
		s.wbHead[i], s.wbTail[i] = nodeNone, nodeNone
		s.readyEv[i] = nodeNone
	}
	if cfg.ValueStats {
		words := (cfg.PhysRegs + 63) / 64
		for f := 0; f < 2; f++ {
			s.vsVal[f] = make([]uint64, words)
			s.vsReady[f] = make([]uint64, words)
		}
	}
	return s
}

func (s *Simulator) fileFor(fp bool) core.File {
	if fp {
		return s.fpFile
	}
	return s.intFile
}

func fileIdx(fp bool) int {
	if fp {
		return 1
	}
	return 0
}

// node resolves a consumer-list node id to its embedded node.
func (s *Simulator) node(id int32) *consumerNode {
	return &s.rob[id>>1].srcNode[id&1]
}

// nodeOwner resolves a node id to the uop owning the source operand.
func (s *Simulator) nodeOwner(id int32) *uop { return &s.rob[id>>1] }

// robWrap reduces a ROB ring index in [0, 2*len(rob)) into range. The ring
// steps by at most one capacity, so a compare replaces the modulo (whose
// hardware divide otherwise shows up in every commit/dispatch step).
func (s *Simulator) robWrap(i int) int {
	if n := len(s.rob); i >= n {
		i -= n
	}
	return i
}

// fqWrap is robWrap for the fetch queue ring.
func (s *Simulator) fqWrap(i int) int {
	if n := len(s.fetchQ); i >= n {
		i -= n
	}
	return i
}

// setReady marks u selectable for issue.
func (s *Simulator) setReady(u *uop) {
	s.readyMask[u.robIdx>>6] |= 1 << uint(u.robIdx&63)
}

// clearReady removes u from the issue candidates.
func (s *Simulator) clearReady(u *uop) {
	s.readyMask[u.robIdx>>6] &^= 1 << uint(u.robIdx&63)
}

// scheduleReady makes u an issue candidate — immediately when its operands
// are already catchable at cycle t, otherwise at the first cycle an issue
// attempt can get past the register file's not-yet-catchable check. Until
// that cycle every attempt would fail in the gate file (the first file
// TryRead consults: integer if any issue-gating source is integer, FP
// otherwise) before consuming ports or counting conflicts, so deferring
// the mask entry is invisible to results — it only skips attempts that do
// nothing.
func (s *Simulator) scheduleReady(u *uop, t uint64) {
	hold := s.readyHold(u)
	if hold <= t {
		s.setReady(u)
		return
	}
	if hold-t >= eventHorizon {
		panic("sim: ready event beyond event horizon")
	}
	slot := hold % eventHorizon
	u.nextReady = s.readyEv[slot]
	s.readyEv[slot] = u.robIdx
}

// readyHold returns the first cycle at which an issue attempt for u can
// get past the gate file's not-yet-catchable check (0 when its operands
// are already catchable). The hold is fixed once every issue-gating
// producer has issued: the operands' result-bus cycles no longer change.
func (s *Simulator) readyHold(u *uop) uint64 {
	var hold uint64
	if u.issueSrcs == 0 {
		return 0
	}
	gate := 1
	for k := 0; k < u.issueSrcs; k++ {
		if !u.src[k].fp {
			gate = 0
			break
		}
	}
	d := s.catchDelta[gate]
	for k := 0; k < u.issueSrcs; k++ {
		if fileIdx(u.src[k].fp) != gate {
			continue
		}
		w := s.regBus[gate][u.src[k].phys]
		if s.replicated[0] != nil {
			w = s.replicated[gate].BusCycleAt(u.src[k].phys, w, int(u.cluster))
		}
		if w > d && w-d > hold {
			hold = w - d
		}
	}
	return hold
}

// processReadyEvents moves uops whose operands become catchable at cycle t
// into the ready mask, before the issue stage scans it.
func (s *Simulator) processReadyEvents(t uint64) {
	slot := t % eventHorizon
	for id := s.readyEv[slot]; id != nodeNone; {
		u := &s.rob[id]
		id = u.nextReady
		u.nextReady = nodeNone
		s.setReady(u)
	}
	s.readyEv[slot] = nodeNone
}

// Run simulates until MaxInstructions commit and returns the results.
func (s *Simulator) Run() Result {
	for s.committed < s.cfg.MaxInstructions {
		s.step()
	}
	return s.result()
}

// step advances the simulation by one cycle.
func (s *Simulator) step() {
	t := s.cycle
	s.intFile.BeginCycle(t)
	s.fpFile.BeginCycle(t)
	s.processCompletions(t)
	s.processWritebacks(t)
	s.commit(t)
	s.processReadyEvents(t)
	s.issue(t)
	s.dispatch(t)
	s.fetch(t)
	if s.cfg.ValueStats && s.warmed {
		s.recordValueStats(t)
	}
	if !s.warmed && s.committed >= s.cfg.WarmupInstructions {
		s.warmed = true
		s.base = snapshot{
			cycles: s.cycle + 1, committed: s.committed,
			branches: s.branches, mispredicts: s.mispredicts,
			icacheAcc: s.icache.Accesses(), icacheMiss: s.icache.Misses(),
			dcacheAcc: s.dcache.Accesses(), dcacheMiss: s.dcache.Misses(),
			forwards:       s.ldst.Forwards(),
			dispatchStalls: s.dispatchStall,
			fuConflicts:    s.fuConflicts,
			branchStallCyc: s.branchStallCyc,
			icacheStallCyc: s.icacheStallCyc,
			intStats:       s.intFile.Stats(), fpStats: s.fpFile.Stats(),
		}
	}
	s.cycle++
	if t-s.lastCommitAt > deadlockLimit {
		panic(fmt.Sprintf("sim: no commit for %d cycles at cycle %d (%s)\n%s",
			deadlockLimit, t, s.cfg.RF.Name, s.describeHead(t)))
	}
}

// describeHead reports why the window head cannot retire — the forensic
// payload of the deadlock panic.
func (s *Simulator) describeHead(t uint64) string {
	if s.robCount == 0 {
		return fmt.Sprintf("empty window; fetchResumeAt=%d blockedBranch=%v fetchQ=%d",
			s.fetchResumeAt, s.blockedBranch, s.fqLen)
	}
	u := &s.rob[s.robHead]
	desc := fmt.Sprintf("head seq=%d %v issued=%v completed=%v wb=%d complete=%d pending=%d",
		u.seq, u.in.Class, u.issued, u.completed, u.wbCycle, u.completeCycle, u.pending)
	for k := 0; k < u.nsrc; k++ {
		fi := fileIdx(u.src[k].fp)
		w := s.regBus[fi][u.src[k].phys]
		desc += fmt.Sprintf("\n  src%d p%d fp=%v bus=%d", k, u.src[k].phys, u.src[k].fp, w)
		if cf, ok := s.fileFor(u.src[k].fp).(*core.CacheFile); ok {
			desc += " " + cf.Describe(u.src[k].phys)
		}
	}
	if u.in.Class == isa.Load {
		desc += fmt.Sprintf("\n  canIssueLoad=%v", s.ldst.CanIssueLoad(u.lsqTicket))
	}
	return desc
}

// processCompletions handles instructions finishing execution at cycle t:
// branch resolution (fetch redirect) and store address availability.
func (s *Simulator) processCompletions(t uint64) {
	slot := t % eventHorizon
	for id := s.compHead[slot]; id != nodeNone; {
		u := &s.rob[id]
		id = u.nextComp
		u.nextComp = nodeNone
		u.completed = true
		u.completeCycle = t
		if s.tracer != nil {
			s.trace(t, "complete", "%s", traceUop(u))
		}
		switch u.in.Class {
		case isa.Branch:
			if u.mispredicted {
				s.blockedBranch = false
				if s.fetchResumeAt < t+1 {
					s.fetchResumeAt = t + 1
				}
			}
		case isa.Store:
			s.ldst.SetAddress(u.lsqTicket, u.in.Addr)
			s.ldst.IssueStore(u.lsqTicket)
		}
	}
	s.compHead[slot], s.compTail[slot] = nodeNone, nodeNone
}

// processWritebacks delivers results to the register files at their
// reserved write-back cycles, computing the caching-policy hints.
func (s *Simulator) processWritebacks(t uint64) {
	slot := t % eventHorizon
	for id := s.wbHead[slot]; id != nodeNone; {
		u := &s.rob[id]
		id = u.nextWB
		u.nextWB = nodeNone
		file := s.fileFor(u.destFP)
		if s.tracer != nil {
			s.trace(t, "writeback", "%s bypassCaught=%v", traceUop(u), u.bypassCaught)
		}
		hints := core.WBHints{BypassCaught: u.bypassCaught}
		if s.cfg.RF.Kind == RFCache {
			hints.ReadyConsumer = s.hasReadyConsumer(u, t)
		}
		file.Writeback(t, u.dest, hints)
	}
	s.wbHead[slot], s.wbTail[slot] = nodeNone, nodeNone
}

// hasReadyConsumer reports whether some not-yet-issued window instruction
// sources u's result and has all of its operands produced by cycle t (the
// "ready caching" predicate). The consumer list of u.dest holds exactly
// the unissued window instructions that source it (issued consumers are
// unlinked), so only actual consumers are inspected.
func (s *Simulator) hasReadyConsumer(u *uop, t uint64) bool {
	fi := fileIdx(u.destFP)
	for id := s.consHead[fi][u.dest]; id != nodeNone; id = s.node(id).next {
		c := s.nodeOwner(id)
		allReady := true
		for k := 0; k < c.nsrc; k++ {
			w := s.regBus[fileIdx(c.src[k].fp)][c.src[k].phys]
			if w == notScheduled || w > t {
				allReady = false
				break
			}
		}
		if allReady {
			return true
		}
	}
	return false
}

// commit retires completed instructions in order, releasing the previous
// physical registers of their logical destinations. Only the window head
// is ever inspected: retirement needs no scan of the live window.
func (s *Simulator) commit(t uint64) {
	for n := 0; n < s.cfg.CommitWidth && s.robCount > 0; n++ {
		u := &s.rob[s.robHead]
		if !u.completed {
			return
		}
		if u.dest >= 0 {
			if t < u.wbCycle {
				return
			}
		} else if t <= u.completeCycle {
			return
		}
		if u.in.Class.IsMem() {
			s.ldst.Commit(u.seq, s.dcache, t)
		}
		if u.dest >= 0 && u.prev != rename.PhysNone {
			s.rmap.Release(u.destL, u.prev)
			s.fileFor(u.destFP).Release(core.PhysReg(u.prev))
		}
		if s.tracer != nil {
			s.trace(t, "commit", "%s", traceUop(u))
		}
		u.live = false
		s.robHead = s.robWrap(s.robHead + 1)
		s.robCount--
		s.committed++
		s.lastCommitAt = t
	}
}

// issue selects up to IssueWidth ready instructions, oldest first, subject
// to functional unit, load disambiguation, and register file constraints.
// Candidates come from the ready mask; instructions woken by a producer
// issuing earlier in the same pass occupy later ring positions and are
// picked up by the same scan, preserving the oldest-first single-pass
// semantics of a full window walk.
func (s *Simulator) issue(t uint64) {
	if s.robCount == 0 {
		return
	}
	left := s.cfg.IssueWidth
	end := s.robHead + s.robCount
	if n := len(s.rob); end <= n {
		s.issueScan(t, s.robHead, end, &left)
	} else {
		if s.issueScan(t, s.robHead, n, &left) {
			return
		}
		s.issueScan(t, 0, end-n, &left)
	}
}

// issueScan attempts to issue ready instructions with ROB indices in
// [lo, hi), in index order; it returns true once the issue width is
// exhausted. The mask word is re-read on every step so wakeups performed
// by instructions issued earlier in the scan are visible.
func (s *Simulator) issueScan(t uint64, lo, hi int, left *int) bool {
	for i := lo; i < hi; {
		w := s.readyMask[i>>6] >> uint(i&63)
		if w == 0 {
			i = (i | 63) + 1
			continue
		}
		i += bits.TrailingZeros64(w)
		if i >= hi {
			return false
		}
		u := &s.rob[i]
		i++
		if u.in.Class == isa.Load && !s.ldst.CanIssueLoad(u.lsqTicket) {
			continue
		}
		if !s.tryReadOperands(u, t) {
			continue
		}
		if !s.fu.take(u.in.Class, t) {
			s.fuConflicts++
			continue
		}
		s.doIssue(u, t)
		(*left)--
		if *left == 0 {
			return true
		}
	}
	return false
}

// tryReadOperands secures register file access for u's sources, split
// across the integer and FP files. If the integer part succeeds but the FP
// part fails, the consumed integer ports stay consumed this cycle — the
// hardware analogue is a speculative read that is discarded.
func (s *Simulator) tryReadOperands(u *uop, t uint64) bool {
	s.nOps[0], s.nOps[1] = 0, 0
	for k := 0; k < u.issueSrcs; k++ {
		fi := fileIdx(u.src[k].fp)
		s.ops[fi][s.nOps[fi]] = core.Operand{Reg: u.src[k].phys, Bus: s.regBus[fi][u.src[k].phys]}
		s.nOps[fi]++
	}
	opsInt := s.ops[0][:s.nOps[0]]
	opsFP := s.ops[1][:s.nOps[1]]
	if s.replicated[0] != nil {
		if len(opsInt) > 0 && !s.replicated[0].TryReadCluster(t, opsInt, int(u.cluster)) {
			return false
		}
		if len(opsFP) > 0 && !s.replicated[1].TryReadCluster(t, opsFP, int(u.cluster)) {
			return false
		}
	} else {
		if len(opsInt) > 0 && !s.intFile.TryRead(t, opsInt, true) {
			return false
		}
		if len(opsFP) > 0 && !s.fpFile.TryRead(t, opsFP, true) {
			return false
		}
	}
	// Mark producers whose results were captured from the bypass network.
	for j := range opsInt {
		if opsInt[j].ViaBypass {
			if pi := s.regProducer[0][opsInt[j].Reg]; pi != nodeNone && s.rob[pi].live {
				s.rob[pi].bypassCaught = true
			}
		}
	}
	for j := range opsFP {
		if opsFP[j].ViaBypass {
			if pi := s.regProducer[1][opsFP[j].Reg]; pi != nodeNone && s.rob[pi].live {
				s.rob[pi].bypassCaught = true
			}
		}
	}
	return true
}

// readLatency returns the operand-read pipeline depth for u. The per-file
// latencies are constants cached at construction (readLat), so this is
// pure arithmetic — no interface dispatch on the issue path.
func (s *Simulator) readLatency(u *uop) uint64 {
	var l uint64
	for k := 0; k < u.nsrc; k++ {
		if fl := s.readLat[fileIdx(u.src[k].fp)]; fl > l {
			l = fl
		}
	}
	if l == 0 { // no register sources: dest file's latency gates the stage
		l = s.readLat[fileIdx(u.destFP)]
	}
	return l
}

// unlinkConsumers removes u's source nodes from their consumer lists; the
// lists then hold only unissued consumers.
func (s *Simulator) unlinkConsumers(u *uop) {
	for k := 0; k < u.nsrc; k++ {
		n := &u.srcNode[k]
		fi := fileIdx(u.src[k].fp)
		p := u.src[k].phys
		if n.prev != nodeNone {
			s.node(n.prev).next = n.next
		} else {
			s.consHead[fi][p] = n.next
		}
		if n.next != nodeNone {
			s.node(n.next).prev = n.prev
		} else {
			s.consTail[fi][p] = n.prev
		}
		n.prev, n.next = nodeNone, nodeNone
	}
}

// wakeConsumers notifies the waiters of physical register p (file fi) that
// its producer has issued and scheduled a result-bus cycle. Waiters whose
// last gating producer this was become issue candidates.
func (s *Simulator) wakeConsumers(fi int, p core.PhysReg, t uint64) {
	for id := s.consHead[fi][p]; id != nodeNone; {
		n := s.node(id)
		owner := id >> 1
		id = n.next
		if !n.gating {
			continue
		}
		n.gating = false
		c := &s.rob[owner]
		if c.pending--; c.pending == 0 {
			s.scheduleReady(c, t)
		}
	}
}

// doIssue finalizes the issue of u at cycle t: schedules completion and
// write-back, wakes dependents, and triggers prefetch-first-pair.
func (s *Simulator) doIssue(u *uop, t uint64) {
	u.issued = true
	u.issueCycle = t
	s.clearReady(u)
	s.unlinkConsumers(u)
	l := s.readLatency(u)
	var c uint64
	switch u.in.Class {
	case isa.Load:
		res := s.ldst.IssueLoad(u.lsqTicket, s.dcache, t+l+1)
		c = t + l + uint64(res.Latency)
	case isa.Store:
		c = t + l + 1
	default:
		c = t + l + uint64(isa.Latency(u.in.Class))
	}
	u.completeCycle = c
	if s.tracer != nil {
		s.trace(t, "issue", "%s L=%d complete@%d", traceUop(u), l, c)
	}
	if c-t >= eventHorizon {
		panic("sim: completion beyond event horizon")
	}
	cs := c % eventHorizon
	u.nextComp = nodeNone
	if s.compTail[cs] != nodeNone {
		s.rob[s.compTail[cs]].nextComp = u.robIdx
	} else {
		s.compHead[cs] = u.robIdx
	}
	s.compTail[cs] = u.robIdx

	if u.dest >= 0 {
		var w uint64
		switch s.cfg.RF.Kind {
		case RFOneLevel:
			w = s.oneLevel[fileIdx(u.destFP)].ReserveWritebackBank(u.dest, c+1)
		case RFReplicated:
			w = s.replicated[fileIdx(u.destFP)].ReserveWritebackAll(u.dest, c+1)
		default:
			w = s.fileFor(u.destFP).ReserveWriteback(c + 1)
		}
		u.wbCycle = w
		fi := fileIdx(u.destFP)
		s.regBus[fi][u.dest] = w
		s.wakeConsumers(fi, u.dest, t)
		if w-t >= eventHorizon {
			panic("sim: write-back beyond event horizon")
		}
		ws := w % eventHorizon
		u.nextWB = nodeNone
		if s.wbTail[ws] != nodeNone {
			s.rob[s.wbTail[ws]].nextWB = u.robIdx
		} else {
			s.wbHead[ws] = u.robIdx
		}
		s.wbTail[ws] = u.robIdx
		if s.cfg.RF.Kind == RFCache {
			s.prefetchFirstPair(u, t)
		}
	}
}

// prefetchFirstPair implements the paper's prefetching scheme: when u
// issues, find the first in-window instruction that consumes u's result and
// prefetch its *other* source operand into the upper bank. The head of
// u.dest's consumer list is that first consumer — the list is kept in
// dispatch (sequence) order and issued consumers are unlinked.
func (s *Simulator) prefetchFirstPair(u *uop, t uint64) {
	fi := fileIdx(u.destFP)
	id := s.consHead[fi][u.dest]
	if id == nodeNone {
		return
	}
	c := s.nodeOwner(id)
	uses := int(id & 1)
	// Prefetch the other operand, if any.
	for k := 0; k < c.nsrc; k++ {
		if k == uses {
			continue
		}
		ofi := fileIdx(c.src[k].fp)
		w := s.regBus[ofi][c.src[k].phys]
		if w != notScheduled {
			s.fileFor(c.src[k].fp).NotePrefetch(t, c.src[k].phys, w)
		}
	}
}

// dispatch renames and inserts fetched instructions into the window,
// registering each source on its physical register's consumer list and
// counting the issue-gating producers still outstanding.
func (s *Simulator) dispatch(t uint64) {
	for n := 0; n < s.cfg.FetchWidth && s.fqLen > 0; n++ {
		fe := &s.fetchQ[s.fqHead]
		if s.robCount == len(s.rob) {
			s.dispatchStall++
			return
		}
		in := &fe.in
		if in.HasDest() && !s.rmap.CanRename(in.Dest) {
			s.dispatchStall++
			return
		}
		if in.Class.IsMem() && s.ldst.Full() {
			s.dispatchStall++
			return
		}

		s.seq++
		idx := s.robWrap(s.robHead + s.robCount)
		u := &s.rob[idx]
		*u = uop{in: *in, seq: s.seq, live: true, dest: -1, lsqTicket: -1,
			mispredicted: fe.mispredicted, robIdx: int32(idx)}
		if s.replicated[0] != nil {
			u.cluster = int8(s.seq % uint64(s.replicated[0].Clusters()))
		}

		// Sources: read the current mappings.
		u.nsrc = 0
		for _, r := range [2]isa.Reg{in.Src1, in.Src2} {
			if !r.Valid() {
				continue
			}
			p, fp := s.rmap.Lookup(r)
			u.src[u.nsrc] = srcOp{phys: core.PhysReg(p), fp: fp}
			u.nsrc++
		}
		u.issueSrcs = u.nsrc
		if in.Class == isa.Store && u.nsrc > 1 {
			u.issueSrcs = 1 // address only; see the issueSrcs field comment
		}
		// Destination: allocate a new physical register.
		if in.HasDest() {
			newP, prevP := s.rmap.Rename(in.Dest)
			u.dest = core.PhysReg(newP)
			u.destFP = in.Dest.IsFP()
			u.prev = prevP
			u.destL = in.Dest
			fi := fileIdx(u.destFP)
			s.regBus[fi][u.dest] = notScheduled
			s.regProducer[fi][u.dest] = u.robIdx
			if s.cfg.RF.Kind == RFOneLevel {
				s.oneLevel[fi].AssignBank(u.dest)
			}
			if s.cfg.RF.Kind == RFReplicated {
				s.replicated[fi].SetHome(u.dest, int(u.cluster))
			}
		}
		if in.Class.IsMem() {
			u.lsqTicket = s.ldst.Insert(u.seq, lsqKind(in.Class))
			if in.Class == isa.Load {
				s.ldst.SetAddress(u.lsqTicket, in.Addr)
			}
		}
		// Consumer-list registration and wakeup accounting. Appending at
		// dispatch keeps every list in sequence order.
		for k := 0; k < u.nsrc; k++ {
			fi := fileIdx(u.src[k].fp)
			p := u.src[k].phys
			nid := u.robIdx<<1 | int32(k)
			node := &u.srcNode[k]
			node.gating = k < u.issueSrcs && s.regBus[fi][p] == notScheduled
			if node.gating {
				u.pending++
			}
			node.next = nodeNone
			node.prev = s.consTail[fi][p]
			if node.prev != nodeNone {
				s.node(node.prev).next = nid
			} else {
				s.consHead[fi][p] = nid
			}
			s.consTail[fi][p] = nid
		}
		if u.pending == 0 {
			s.scheduleReady(u, t)
		}
		s.robCount++
		s.fqHead = s.fqWrap(s.fqHead + 1)
		s.fqLen--
		if s.tracer != nil {
			s.trace(t, "dispatch", "%s", traceUop(u))
		}
	}
}

func lsqKind(c isa.Class) lsq.Kind {
	if c == isa.Load {
		return lsq.KindLoad
	}
	return lsq.KindStore
}

// fetch brings up to FetchWidth instructions into the fetch queue, stopping
// at taken branches, I-cache misses, and mispredicted branches (which stall
// fetch until resolution).
func (s *Simulator) fetch(t uint64) {
	if s.blockedBranch {
		s.branchStallCyc++
		return
	}
	if t < s.fetchResumeAt {
		s.icacheStallCyc++
		return
	}
	for n := 0; n < s.cfg.FetchWidth && s.fqLen < len(s.fetchQ); n++ {
		// The pending instruction is materialized directly in the slot it
		// will occupy once fetched: the push index fqWrap(fqHead+fqLen) is
		// invariant under dispatch pops (head+1, len-1 preserve the sum), so
		// the slot stays stable across I-cache stall cycles and no separate
		// pending buffer — and its extra copy — is needed.
		fe := &s.fetchQ[s.fqWrap(s.fqHead+s.fqLen)]
		if !s.pendingValid {
			fe.in = *s.stream.Next()
			fe.mispredicted = false
			s.pendingValid = true
		}
		in := &fe.in
		if n == 0 {
			res := s.icache.Access(in.PC, false, t)
			if !res.Hit {
				s.fetchResumeAt = t + uint64(res.Latency) - 1
				return
			}
		}
		s.pendingValid = false
		if in.Class == isa.Branch {
			s.branches++
			var correct bool
			if s.predFeed != nil {
				correct = s.predFeed.Correct()
			} else {
				correct = s.pred.Update(in.PC, in.Taken)
			}
			if !correct {
				s.mispredicts++
				fe.mispredicted = true
				s.blockedBranch = true
				s.fqLen++
				return
			}
			s.fqLen++
			if in.Taken {
				return // at most one taken branch per fetch cycle
			}
			continue
		}
		s.fqLen++
	}
}

// recordValueStats implements the Figure 3 instrumentation: per cycle,
// count distinct physical registers that hold a produced value and are
// source operands of (a) any unissued window instruction, and (b) an
// unissued instruction whose operands are all produced. The distinct-set
// bookkeeping uses preallocated bitmaps.
func (s *Simulator) recordValueStats(t uint64) {
	for f := 0; f < 2; f++ {
		clear(s.vsVal[f])
		clear(s.vsReady[f])
	}
	nVal, nReady := 0, 0
	for i, n := s.robHead, 0; n < s.robCount; i, n = s.robWrap(i+1), n+1 {
		u := &s.rob[i]
		if !u.live || u.issued {
			continue
		}
		allReady := true
		for k := 0; k < u.nsrc; k++ {
			w := s.regBus[fileIdx(u.src[k].fp)][u.src[k].phys]
			if w == notScheduled || w > t {
				allReady = false
			}
		}
		for k := 0; k < u.nsrc; k++ {
			fi := fileIdx(u.src[k].fp)
			w := s.regBus[fi][u.src[k].phys]
			if w == notScheduled || w > t {
				continue // no value yet
			}
			p := u.src[k].phys
			bit := uint64(1) << uint(p&63)
			if s.vsVal[fi][p>>6]&bit == 0 {
				s.vsVal[fi][p>>6] |= bit
				nVal++
			}
			if allReady && s.vsReady[fi][p>>6]&bit == 0 {
				s.vsReady[fi][p>>6] |= bit
				nReady++
			}
		}
	}
	s.valueHist.Add(nVal)
	s.readyHist.Add(nReady)
}
