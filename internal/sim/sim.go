package sim

import (
	"fmt"

	"repro/internal/bpred"
	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/isa"
	"repro/internal/lsq"
	"repro/internal/rename"
	"repro/internal/stats"
)

// notScheduled marks a physical register whose producer has not yet issued.
const notScheduled = ^uint64(0)

// eventHorizon bounds how far in the future completion/write-back events
// can be scheduled.
const eventHorizon = 4096

// deadlockLimit aborts runs that stop committing (a model bug, not a
// workload property).
const deadlockLimit = 100000

// srcOp is one renamed source operand.
type srcOp struct {
	phys core.PhysReg
	fp   bool
}

// uop is one in-flight instruction.
type uop struct {
	in   isa.Instr
	seq  uint64
	live bool

	dest   core.PhysReg // -1 if none
	destFP bool
	prev   rename.PhysReg
	destL  isa.Reg

	src  [2]srcOp
	nsrc int
	// issueSrcs is the number of leading sources that gate issue. For
	// stores only the address register does: the address generation may
	// proceed before the data is produced (split store-address/store-data,
	// as in real designs), and in-order commit automatically enforces the
	// data dependence — the data producer is older and must commit first.
	issueSrcs int

	lsqTicket int

	// cluster is the execution cluster for replicated organizations.
	cluster int8

	issued    bool
	completed bool

	issueCycle    uint64
	completeCycle uint64
	wbCycle       uint64

	mispredicted bool
	bypassCaught bool
}

// Simulator runs one workload on one processor configuration.
type Simulator struct {
	cfg    Config
	stream isa.Stream

	intFile, fpFile core.File
	oneLevel        [2]*core.OneLevel   // non-nil for RFOneLevel; [0]=int,[1]=fp
	replicated      [2]*core.Replicated // non-nil for RFReplicated
	rmap            *rename.Map
	pred            *bpred.Gshare
	icache, dcache  *cache.Cache
	ldst            *lsq.Queue

	// ROB ring buffer.
	rob      []uop
	robHead  int
	robCount int

	fetchQ []fetchEntry

	// Per-file result-bus cycle and producer tables, indexed by physical
	// register; index 0 = int file, 1 = FP file.
	regBus      [2][]uint64
	regProducer [2][]*uop

	completionAt [eventHorizon][]*uop
	wbAt         [eventHorizon][]*uop

	fu fuPools

	cycle     uint64
	seq       uint64
	committed uint64

	fetchResumeAt uint64
	blockedBranch bool
	pendingInstr  *isa.Instr

	// scratch buffers
	opsInt, opsFP     []core.Operand
	opsIntIx, opsFPIx []int

	// instrumentation
	mispredicts    uint64
	branches       uint64
	valueHist      stats.Histogram
	readyHist      stats.Histogram
	dispatchStall  uint64
	fuConflicts    uint64
	branchStallCyc uint64
	icacheStallCyc uint64
	lastCommitAt   uint64

	warmed bool
	base   snapshot

	tracer Tracer
}

// snapshot records statistics at the warmup boundary; results report the
// deltas from it.
type snapshot struct {
	cycles, committed     uint64
	branches, mispredicts uint64
	icacheAcc, icacheMiss uint64
	dcacheAcc, dcacheMiss uint64
	forwards              uint64
	dispatchStalls        uint64
	fuConflicts           uint64
	branchStallCyc        uint64
	icacheStallCyc        uint64
	intStats, fpStats     core.FileStats
}

type fetchEntry struct {
	in           isa.Instr
	mispredicted bool
}

// fuPools tracks functional unit occupancy: each unit accepts one
// instruction per cycle (pipelined); divides occupy their unit for the full
// latency.
type fuPools struct {
	simpleInt []uint64
	intMulDiv []uint64
	simpleFP  []uint64
	fpDiv     []uint64
	mem       []uint64
}

func newFUPools(c *Config) fuPools {
	return fuPools{
		simpleInt: make([]uint64, c.SimpleInt),
		intMulDiv: make([]uint64, c.IntMulDiv),
		simpleFP:  make([]uint64, c.SimpleFP),
		fpDiv:     make([]uint64, c.FPDiv),
		mem:       make([]uint64, c.MemPorts),
	}
}

func (f *fuPools) poolFor(c isa.Class) []uint64 {
	switch c {
	case isa.IntALU, isa.Branch:
		return f.simpleInt
	case isa.IntMul, isa.IntDiv:
		return f.intMulDiv
	case isa.FPALU:
		return f.simpleFP
	case isa.FPDiv:
		return f.fpDiv
	case isa.Load, isa.Store:
		return f.mem
	}
	panic(fmt.Sprintf("sim: no functional unit pool for %v", c))
}

// take acquires a unit at cycle t for an instruction of class c, returning
// false if all units are busy. Divides block their unit for the full
// latency; other classes are fully pipelined.
func (f *fuPools) take(c isa.Class, t uint64) bool {
	pool := f.poolFor(c)
	for i, busy := range pool {
		if busy <= t {
			occupy := uint64(1)
			if c == isa.IntDiv || c == isa.FPDiv {
				occupy = uint64(isa.Latency(c))
			}
			pool[i] = t + occupy
			return true
		}
	}
	return false
}

// New builds a simulator for the given configuration and instruction
// stream. It panics on invalid configurations (experiment definitions are
// code, not user input).
func New(cfg Config, stream isa.Stream) *Simulator {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	s := &Simulator{
		cfg:     cfg,
		stream:  stream,
		intFile: cfg.buildFile(),
		fpFile:  cfg.buildFile(),
		rmap:    rename.NewMap(cfg.PhysRegs, cfg.PhysRegs),
		pred:    bpred.NewGshareHist(cfg.PredictorBits, cfg.HistoryBits),
		icache:  cache.New(cfg.ICache),
		dcache:  cache.New(cfg.DCache),
		ldst:    lsq.New(cfg.LSQSize),
		rob:     make([]uop, cfg.WindowSize),
		fu:      newFUPools(&cfg),
	}
	if cfg.RF.Kind == RFOneLevel {
		s.oneLevel[0] = s.intFile.(*core.OneLevel)
		s.oneLevel[1] = s.fpFile.(*core.OneLevel)
	}
	if cfg.RF.Kind == RFReplicated {
		s.replicated[0] = s.intFile.(*core.Replicated)
		s.replicated[1] = s.fpFile.(*core.Replicated)
	}
	for f := 0; f < 2; f++ {
		s.regBus[f] = make([]uint64, cfg.PhysRegs)
		s.regProducer[f] = make([]*uop, cfg.PhysRegs)
		// Architectural registers hold committed values from the start;
		// free-list registers get a bus cycle when renamed.
		for p := range s.regBus[f] {
			s.regBus[f][p] = 0
		}
	}
	return s
}

func (s *Simulator) fileFor(fp bool) core.File {
	if fp {
		return s.fpFile
	}
	return s.intFile
}

func fileIdx(fp bool) int {
	if fp {
		return 1
	}
	return 0
}

// Run simulates until MaxInstructions commit and returns the results.
func (s *Simulator) Run() Result {
	for s.committed < s.cfg.MaxInstructions {
		t := s.cycle
		s.intFile.BeginCycle(t)
		s.fpFile.BeginCycle(t)
		s.processCompletions(t)
		s.processWritebacks(t)
		s.commit(t)
		s.issue(t)
		s.dispatch(t)
		s.fetch(t)
		if s.cfg.ValueStats && s.warmed {
			s.recordValueStats(t)
		}
		if !s.warmed && s.committed >= s.cfg.WarmupInstructions {
			s.warmed = true
			s.base = snapshot{
				cycles: s.cycle + 1, committed: s.committed,
				branches: s.branches, mispredicts: s.mispredicts,
				icacheAcc: s.icache.Accesses(), icacheMiss: s.icache.Misses(),
				dcacheAcc: s.dcache.Accesses(), dcacheMiss: s.dcache.Misses(),
				forwards:       s.ldst.Forwards(),
				dispatchStalls: s.dispatchStall,
				fuConflicts:    s.fuConflicts,
				branchStallCyc: s.branchStallCyc,
				icacheStallCyc: s.icacheStallCyc,
				intStats:       s.intFile.Stats(), fpStats: s.fpFile.Stats(),
			}
		}
		s.cycle++
		if t-s.lastCommitAt > deadlockLimit {
			panic(fmt.Sprintf("sim: no commit for %d cycles at cycle %d (%s)\n%s",
				deadlockLimit, t, s.cfg.RF.Name, s.describeHead(t)))
		}
	}
	return s.result()
}

// describeHead reports why the window head cannot retire — the forensic
// payload of the deadlock panic.
func (s *Simulator) describeHead(t uint64) string {
	if s.robCount == 0 {
		return fmt.Sprintf("empty window; fetchResumeAt=%d blockedBranch=%v fetchQ=%d",
			s.fetchResumeAt, s.blockedBranch, len(s.fetchQ))
	}
	u := &s.rob[s.robHead]
	desc := fmt.Sprintf("head seq=%d %v issued=%v completed=%v wb=%d complete=%d",
		u.seq, u.in.Class, u.issued, u.completed, u.wbCycle, u.completeCycle)
	for k := 0; k < u.nsrc; k++ {
		fi := fileIdx(u.src[k].fp)
		w := s.regBus[fi][u.src[k].phys]
		desc += fmt.Sprintf("\n  src%d p%d fp=%v bus=%d", k, u.src[k].phys, u.src[k].fp, w)
		if cf, ok := s.fileFor(u.src[k].fp).(*core.CacheFile); ok {
			desc += " " + cf.Describe(u.src[k].phys)
		}
	}
	if u.in.Class == isa.Load {
		desc += fmt.Sprintf("\n  canIssueLoad=%v", s.ldst.CanIssueLoad(u.lsqTicket))
	}
	return desc
}

// processCompletions handles instructions finishing execution at cycle t:
// branch resolution (fetch redirect) and store address availability.
func (s *Simulator) processCompletions(t uint64) {
	slot := &s.completionAt[t%eventHorizon]
	for _, u := range *slot {
		u.completed = true
		u.completeCycle = t
		s.trace(t, "complete", "%s", traceUop(u))
		switch u.in.Class {
		case isa.Branch:
			if u.mispredicted {
				s.blockedBranch = false
				if s.fetchResumeAt < t+1 {
					s.fetchResumeAt = t + 1
				}
			}
		case isa.Store:
			s.ldst.SetAddress(u.lsqTicket, u.in.Addr)
			s.ldst.IssueStore(u.lsqTicket)
		}
	}
	*slot = (*slot)[:0]
}

// processWritebacks delivers results to the register files at their
// reserved write-back cycles, computing the caching-policy hints.
func (s *Simulator) processWritebacks(t uint64) {
	slot := &s.wbAt[t%eventHorizon]
	for _, u := range *slot {
		file := s.fileFor(u.destFP)
		s.trace(t, "writeback", "%s bypassCaught=%v", traceUop(u), u.bypassCaught)
		hints := core.WBHints{BypassCaught: u.bypassCaught}
		if s.cfg.RF.Kind == RFCache {
			hints.ReadyConsumer = s.hasReadyConsumer(u, t)
		}
		file.Writeback(t, u.dest, hints)
	}
	*slot = (*slot)[:0]
}

// hasReadyConsumer reports whether some not-yet-issued window instruction
// sources u's result and has all of its operands produced by cycle t (the
// "ready caching" predicate).
func (s *Simulator) hasReadyConsumer(u *uop, t uint64) bool {
	fi := fileIdx(u.destFP)
	for i, n := s.robHead, 0; n < s.robCount; i, n = (i+1)%len(s.rob), n+1 {
		c := &s.rob[i]
		if !c.live || c.issued || c.seq <= u.seq {
			continue
		}
		uses := false
		allReady := true
		for k := 0; k < c.nsrc; k++ {
			w := s.regBus[fileIdx(c.src[k].fp)][c.src[k].phys]
			if w == notScheduled || w > t {
				allReady = false
				break
			}
			if fileIdx(c.src[k].fp) == fi && c.src[k].phys == u.dest {
				uses = true
			}
		}
		if uses && allReady {
			return true
		}
	}
	return false
}

// commit retires completed instructions in order, releasing the previous
// physical registers of their logical destinations.
func (s *Simulator) commit(t uint64) {
	for n := 0; n < s.cfg.CommitWidth && s.robCount > 0; n++ {
		u := &s.rob[s.robHead]
		if !u.completed {
			return
		}
		if u.dest >= 0 {
			if t < u.wbCycle {
				return
			}
		} else if t <= u.completeCycle {
			return
		}
		if u.in.Class.IsMem() {
			s.ldst.Commit(u.seq, s.dcache, t)
		}
		if u.dest >= 0 && u.prev != rename.PhysNone {
			s.rmap.Release(u.destL, u.prev)
			s.fileFor(u.destFP).Release(core.PhysReg(u.prev))
		}
		s.trace(t, "commit", "%s", traceUop(u))
		u.live = false
		s.robHead = (s.robHead + 1) % len(s.rob)
		s.robCount--
		s.committed++
		s.lastCommitAt = t
	}
}

// issue selects up to IssueWidth ready instructions, oldest first, subject
// to functional unit, load disambiguation, and register file constraints.
func (s *Simulator) issue(t uint64) {
	issued := 0
	for i, n := s.robHead, 0; n < s.robCount && issued < s.cfg.IssueWidth; i, n = (i+1)%len(s.rob), n+1 {
		u := &s.rob[i]
		if !u.live || u.issued {
			continue
		}
		// All issue-gating producers must have scheduled their results.
		scheduled := true
		for k := 0; k < u.issueSrcs; k++ {
			if s.regBus[fileIdx(u.src[k].fp)][u.src[k].phys] == notScheduled {
				scheduled = false
				break
			}
		}
		if !scheduled {
			continue
		}
		if u.in.Class == isa.Load && !s.ldst.CanIssueLoad(u.lsqTicket) {
			continue
		}
		if !s.tryReadOperands(u, t) {
			continue
		}
		if !s.fu.take(u.in.Class, t) {
			s.fuConflicts++
			continue
		}
		s.doIssue(u, t)
		issued++
	}
}

// tryReadOperands secures register file access for u's sources, split
// across the integer and FP files. If the integer part succeeds but the FP
// part fails, the consumed integer ports stay consumed this cycle — the
// hardware analogue is a speculative read that is discarded.
func (s *Simulator) tryReadOperands(u *uop, t uint64) bool {
	s.opsInt = s.opsInt[:0]
	s.opsFP = s.opsFP[:0]
	s.opsIntIx = s.opsIntIx[:0]
	s.opsFPIx = s.opsFPIx[:0]
	for k := 0; k < u.issueSrcs; k++ {
		op := core.Operand{Reg: u.src[k].phys, Bus: s.regBus[fileIdx(u.src[k].fp)][u.src[k].phys]}
		if u.src[k].fp {
			s.opsFP = append(s.opsFP, op)
			s.opsFPIx = append(s.opsFPIx, k)
		} else {
			s.opsInt = append(s.opsInt, op)
			s.opsIntIx = append(s.opsIntIx, k)
		}
	}
	if s.replicated[0] != nil {
		if len(s.opsInt) > 0 && !s.replicated[0].TryReadCluster(t, s.opsInt, int(u.cluster)) {
			return false
		}
		if len(s.opsFP) > 0 && !s.replicated[1].TryReadCluster(t, s.opsFP, int(u.cluster)) {
			return false
		}
	} else {
		if len(s.opsInt) > 0 && !s.intFile.TryRead(t, s.opsInt, true) {
			return false
		}
		if len(s.opsFP) > 0 && !s.fpFile.TryRead(t, s.opsFP, true) {
			return false
		}
	}
	// Mark producers whose results were captured from the bypass network.
	for j := range s.opsInt {
		if s.opsInt[j].ViaBypass {
			if p := s.regProducer[0][s.opsInt[j].Reg]; p != nil && p.live {
				p.bypassCaught = true
			}
		}
	}
	for j := range s.opsFP {
		if s.opsFP[j].ViaBypass {
			if p := s.regProducer[1][s.opsFP[j].Reg]; p != nil && p.live {
				p.bypassCaught = true
			}
		}
	}
	return true
}

// readLatency returns the operand-read pipeline depth for u.
func (s *Simulator) readLatency(u *uop) uint64 {
	l := 0
	for k := 0; k < u.nsrc; k++ {
		if fl := s.fileFor(u.src[k].fp).ReadLatency(); fl > l {
			l = fl
		}
	}
	if l == 0 { // no register sources: dest file's latency gates the stage
		l = s.fileFor(u.destFP).ReadLatency()
	}
	return uint64(l)
}

// doIssue finalizes the issue of u at cycle t: schedules completion and
// write-back, and triggers prefetch-first-pair.
func (s *Simulator) doIssue(u *uop, t uint64) {
	u.issued = true
	u.issueCycle = t
	l := s.readLatency(u)
	var c uint64
	switch u.in.Class {
	case isa.Load:
		res := s.ldst.IssueLoad(u.lsqTicket, s.dcache, t+l+1)
		c = t + l + uint64(res.Latency)
	case isa.Store:
		c = t + l + 1
	default:
		c = t + l + uint64(isa.Latency(u.in.Class))
	}
	u.completeCycle = c
	s.trace(t, "issue", "%s L=%d complete@%d", traceUop(u), l, c)
	if c-t >= eventHorizon {
		panic("sim: completion beyond event horizon")
	}
	s.completionAt[c%eventHorizon] = append(s.completionAt[c%eventHorizon], u)

	if u.dest >= 0 {
		var w uint64
		switch s.cfg.RF.Kind {
		case RFOneLevel:
			w = s.oneLevel[fileIdx(u.destFP)].ReserveWritebackBank(u.dest, c+1)
		case RFReplicated:
			w = s.replicated[fileIdx(u.destFP)].ReserveWritebackAll(u.dest, c+1)
		default:
			w = s.fileFor(u.destFP).ReserveWriteback(c + 1)
		}
		u.wbCycle = w
		s.regBus[fileIdx(u.destFP)][u.dest] = w
		if w-t >= eventHorizon {
			panic("sim: write-back beyond event horizon")
		}
		s.wbAt[w%eventHorizon] = append(s.wbAt[w%eventHorizon], u)
		if s.cfg.RF.Kind == RFCache {
			s.prefetchFirstPair(u, t)
		}
	}
}

// prefetchFirstPair implements the paper's prefetching scheme: when u
// issues, find the first in-window instruction that consumes u's result and
// prefetch its *other* source operand into the upper bank.
func (s *Simulator) prefetchFirstPair(u *uop, t uint64) {
	fi := fileIdx(u.destFP)
	for i, n := s.robHead, 0; n < s.robCount; i, n = (i+1)%len(s.rob), n+1 {
		c := &s.rob[i]
		if !c.live || c.issued || c.seq <= u.seq {
			continue
		}
		uses := -1
		for k := 0; k < c.nsrc; k++ {
			if fileIdx(c.src[k].fp) == fi && c.src[k].phys == u.dest {
				uses = k
				break
			}
		}
		if uses < 0 {
			continue
		}
		// Prefetch the other operand, if any.
		for k := 0; k < c.nsrc; k++ {
			if k == uses {
				continue
			}
			ofi := fileIdx(c.src[k].fp)
			w := s.regBus[ofi][c.src[k].phys]
			if w != notScheduled {
				s.fileFor(c.src[k].fp).NotePrefetch(t, c.src[k].phys, w)
			}
		}
		return // only the first consumer
	}
}

// dispatch renames and inserts fetched instructions into the window.
func (s *Simulator) dispatch(t uint64) {
	for n := 0; n < s.cfg.FetchWidth && len(s.fetchQ) > 0; n++ {
		fe := &s.fetchQ[0]
		if s.robCount == len(s.rob) {
			s.dispatchStall++
			return
		}
		in := &fe.in
		if in.HasDest() && !s.rmap.CanRename(in.Dest) {
			s.dispatchStall++
			return
		}
		if in.Class.IsMem() && s.ldst.Full() {
			s.dispatchStall++
			return
		}

		s.seq++
		idx := (s.robHead + s.robCount) % len(s.rob)
		u := &s.rob[idx]
		*u = uop{in: *in, seq: s.seq, live: true, dest: -1, lsqTicket: -1, mispredicted: fe.mispredicted}
		if s.replicated[0] != nil {
			u.cluster = int8(s.seq % uint64(s.replicated[0].Clusters()))
		}

		// Sources: read the current mappings.
		u.nsrc = 0
		for _, r := range [2]isa.Reg{in.Src1, in.Src2} {
			if !r.Valid() {
				continue
			}
			p, fp := s.rmap.Lookup(r)
			u.src[u.nsrc] = srcOp{phys: core.PhysReg(p), fp: fp}
			u.nsrc++
		}
		u.issueSrcs = u.nsrc
		if in.Class == isa.Store && u.nsrc > 1 {
			u.issueSrcs = 1 // address only; see the issueSrcs field comment
		}
		// Destination: allocate a new physical register.
		if in.HasDest() {
			newP, prevP := s.rmap.Rename(in.Dest)
			u.dest = core.PhysReg(newP)
			u.destFP = in.Dest.IsFP()
			u.prev = prevP
			u.destL = in.Dest
			fi := fileIdx(u.destFP)
			s.regBus[fi][u.dest] = notScheduled
			s.regProducer[fi][u.dest] = u
			if s.cfg.RF.Kind == RFOneLevel {
				s.oneLevel[fi].AssignBank(u.dest)
			}
			if s.cfg.RF.Kind == RFReplicated {
				s.replicated[fi].SetHome(u.dest, int(u.cluster))
			}
		}
		if in.Class.IsMem() {
			u.lsqTicket = s.ldst.Insert(u.seq, lsqKind(in.Class))
			if in.Class == isa.Load {
				s.ldst.SetAddress(u.lsqTicket, in.Addr)
			}
		}
		s.robCount++
		s.fetchQ = s.fetchQ[1:]
		s.trace(t, "dispatch", "%s", traceUop(u))
	}
}

func lsqKind(c isa.Class) lsq.Kind {
	if c == isa.Load {
		return lsq.KindLoad
	}
	return lsq.KindStore
}

// fetch brings up to FetchWidth instructions into the fetch queue, stopping
// at taken branches, I-cache misses, and mispredicted branches (which stall
// fetch until resolution).
func (s *Simulator) fetch(t uint64) {
	if s.blockedBranch {
		s.branchStallCyc++
		return
	}
	if t < s.fetchResumeAt {
		s.icacheStallCyc++
		return
	}
	for n := 0; n < s.cfg.FetchWidth && len(s.fetchQ) < s.cfg.FetchQueue; n++ {
		if s.pendingInstr == nil {
			in := *s.stream.Next()
			s.pendingInstr = &in
		}
		in := s.pendingInstr
		if n == 0 {
			res := s.icache.Access(in.PC, false, t)
			if !res.Hit {
				s.fetchResumeAt = t + uint64(res.Latency) - 1
				return
			}
		}
		fe := fetchEntry{in: *in}
		s.pendingInstr = nil
		if in.Class == isa.Branch {
			s.branches++
			correct := s.pred.Update(in.PC, in.Taken)
			if !correct {
				s.mispredicts++
				fe.mispredicted = true
				s.blockedBranch = true
				s.fetchQ = append(s.fetchQ, fe)
				return
			}
			s.fetchQ = append(s.fetchQ, fe)
			if in.Taken {
				return // at most one taken branch per fetch cycle
			}
			continue
		}
		s.fetchQ = append(s.fetchQ, fe)
	}
}

// recordValueStats implements the Figure 3 instrumentation: per cycle,
// count distinct physical registers that hold a produced value and are
// source operands of (a) any unissued window instruction, and (b) an
// unissued instruction whose operands are all produced.
func (s *Simulator) recordValueStats(t uint64) {
	var seenVal, seenReady [2]map[core.PhysReg]bool
	for f := 0; f < 2; f++ {
		seenVal[f] = make(map[core.PhysReg]bool, 16)
		seenReady[f] = make(map[core.PhysReg]bool, 8)
	}
	for i, n := s.robHead, 0; n < s.robCount; i, n = (i+1)%len(s.rob), n+1 {
		u := &s.rob[i]
		if !u.live || u.issued {
			continue
		}
		allReady := true
		for k := 0; k < u.nsrc; k++ {
			w := s.regBus[fileIdx(u.src[k].fp)][u.src[k].phys]
			if w == notScheduled || w > t {
				allReady = false
			}
		}
		for k := 0; k < u.nsrc; k++ {
			fi := fileIdx(u.src[k].fp)
			w := s.regBus[fi][u.src[k].phys]
			if w == notScheduled || w > t {
				continue // no value yet
			}
			seenVal[fi][u.src[k].phys] = true
			if allReady {
				seenReady[fi][u.src[k].phys] = true
			}
		}
	}
	s.valueHist.Add(len(seenVal[0]) + len(seenVal[1]))
	s.readyHist.Add(len(seenReady[0]) + len(seenReady[1]))
}
