// Package sim implements the cycle-level simulator of the paper's 8-way
// dynamically-scheduled superscalar processor (Table 1), parameterized by
// the register file architecture under study (internal/core).
//
// The pipeline has six stages — fetch; decode+rename; read operands (1 or 2
// cycles, per the register file); execute; write-back; commit — with 8-wide
// fetch/issue/commit, a 128-entry instruction window, a gshare predictor,
// split 64KB I/D caches, a 64-entry load/store queue with forwarding, and
// 128+128 physical registers.
//
// Branch misprediction is modeled timing-directed: fetch stalls past a
// mispredicted branch until the branch executes, so architectures that
// resolve branches later (deeper operand-read pipelines) pay a
// proportionally larger penalty — the paper's dominant integer-code effect.
package sim

import (
	"fmt"

	"repro/internal/cache"
	"repro/internal/core"
)

// RFKind selects a register file architecture.
type RFKind uint8

const (
	// RFMonolithic is a single-banked file (1- or 2-cycle, 1 or full
	// bypass levels).
	RFMonolithic RFKind = iota
	// RFCache is the paper's two-level register file cache.
	RFCache
	// RFOneLevel is the single-level multiple-banked organization
	// (extension).
	RFOneLevel
	// RFReplicated is the fully-replicated clustered organization of the
	// Alpha 21264 integer unit (paper §5 related work; extension).
	RFReplicated
)

// RFSpec describes the register file architecture for both the integer and
// FP files (the paper configures them identically).
type RFSpec struct {
	// Kind selects which configuration field applies.
	Kind RFKind
	// Mono applies when Kind == RFMonolithic; NumPhys is overridden by
	// Config.PhysRegs.
	Mono core.MonolithicConfig
	// Cache applies when Kind == RFCache; NumPhys likewise overridden.
	Cache core.CacheConfig
	// OneLevel applies when Kind == RFOneLevel.
	OneLevel core.OneLevelConfig
	// Replicated applies when Kind == RFReplicated.
	Replicated core.ReplicatedConfig
	// Name describes the spec in outputs.
	Name string
}

// Mono1Cycle returns the paper's baseline: one-cycle single-banked file
// with its single level of bypass.
func Mono1Cycle(readPorts, writePorts int) RFSpec {
	return RFSpec{
		Kind: RFMonolithic,
		Mono: core.MonolithicConfig{Latency: 1, FullBypass: true, ReadPorts: readPorts, WritePorts: writePorts},
		Name: "1-cycle",
	}
}

// Mono2CycleFull returns the two-cycle file with two bypass levels.
func Mono2CycleFull(readPorts, writePorts int) RFSpec {
	return RFSpec{
		Kind: RFMonolithic,
		Mono: core.MonolithicConfig{Latency: 2, FullBypass: true, ReadPorts: readPorts, WritePorts: writePorts},
		Name: "2-cycle, 2-bypass",
	}
}

// Mono2CycleSingle returns the two-cycle file with one (the last) bypass
// level.
func Mono2CycleSingle(readPorts, writePorts int) RFSpec {
	return RFSpec{
		Kind: RFMonolithic,
		Mono: core.MonolithicConfig{Latency: 2, FullBypass: false, ReadPorts: readPorts, WritePorts: writePorts},
		Name: "2-cycle, 1-bypass",
	}
}

// CacheSpec returns a register file cache spec.
func CacheSpec(cfg core.CacheConfig) RFSpec {
	name := fmt.Sprintf("rf-cache (%s + %s)", cfg.Caching, cfg.Prefetch)
	return RFSpec{Kind: RFCache, Cache: cfg, Name: name}
}

// PaperCache returns the paper's best configuration: non-bypass caching
// with prefetch-first-pair, unlimited bandwidth.
func PaperCache() RFSpec { return CacheSpec(core.PaperCacheConfig()) }

// OneLevelSpec returns a one-level multi-banked spec.
func OneLevelSpec(cfg core.OneLevelConfig) RFSpec {
	return RFSpec{
		Kind: RFOneLevel, OneLevel: cfg,
		Name: fmt.Sprintf("one-level (%d banks, %s)", cfg.Banks, cfg.Assignment),
	}
}

// ReplicatedSpec returns a fully-replicated clustered spec (21264-style).
func ReplicatedSpec(cfg core.ReplicatedConfig) RFSpec {
	return RFSpec{
		Kind: RFReplicated, Replicated: cfg,
		Name: fmt.Sprintf("replicated (%d clusters)", cfg.Clusters),
	}
}

// Config is the full processor configuration. DefaultConfig matches the
// paper's Table 1.
type Config struct {
	// FetchWidth, IssueWidth and CommitWidth are per-cycle limits (8).
	FetchWidth, IssueWidth, CommitWidth int
	// WindowSize is the instruction window / reorder buffer size (128;
	// 256 in the Figure 1 experiment).
	WindowSize int
	// FetchQueue buffers fetched instructions awaiting dispatch.
	FetchQueue int
	// LSQSize is the load/store queue capacity (64).
	LSQSize int
	// PhysRegs is the per-file physical register count (128 int + 128 FP).
	PhysRegs int
	// PredictorBits sizes the gshare table (16 → 64K entries).
	PredictorBits uint
	// HistoryBits is the gshare global history length. The paper's 100M
	// instruction runs can afford full 16-bit histories; at this
	// repository's run lengths a shorter history avoids cold-table
	// compulsory mispredictions (see internal/bpred).
	HistoryBits uint
	// Functional unit pool sizes (Table 1): 6 simple int (branches too),
	// 3 int mul/div, 4 simple FP, 2 FP div, 4 load/store ports.
	SimpleInt, IntMulDiv, SimpleFP, FPDiv, MemPorts int
	// ICache and DCache configure the caches; zero values use the paper's.
	ICache, DCache cache.Config
	// RF selects the register file architecture.
	RF RFSpec
	// MaxInstructions ends the run after this many committed instructions.
	MaxInstructions uint64
	// WarmupInstructions excludes the first commits from all statistics
	// (caches, predictor and register file state keep warming during it),
	// mirroring the paper's skip of each benchmark's initialization.
	WarmupInstructions uint64
	// ValueStats enables the Figure 3 live-value instrumentation
	// (per-cycle window scans; measurably slower).
	ValueStats bool
}

// DefaultConfig returns the paper's Table 1 processor with the given
// register file architecture and instruction budget.
func DefaultConfig(rf RFSpec, maxInstructions uint64) Config {
	return Config{
		FetchWidth: 8, IssueWidth: 8, CommitWidth: 8,
		WindowSize: 128, FetchQueue: 16, LSQSize: 64,
		PhysRegs: 128, PredictorBits: 16, HistoryBits: 8,
		SimpleInt: 6, IntMulDiv: 3, SimpleFP: 4, FPDiv: 2, MemPorts: 4,
		ICache: cache.ICacheConfig(), DCache: cache.DCacheConfig(),
		RF:                 rf,
		MaxInstructions:    maxInstructions,
		WarmupInstructions: maxInstructions / 4,
	}
}

// Validate reports a configuration error, or nil.
func (c *Config) Validate() error {
	switch {
	case c.FetchWidth < 1 || c.IssueWidth < 1 || c.CommitWidth < 1:
		return fmt.Errorf("sim: widths must be ≥ 1")
	case c.WindowSize < 2:
		return fmt.Errorf("sim: window size %d too small", c.WindowSize)
	case c.FetchQueue < c.FetchWidth:
		return fmt.Errorf("sim: fetch queue smaller than fetch width")
	case c.LSQSize < 2:
		return fmt.Errorf("sim: LSQ size %d too small", c.LSQSize)
	case c.PhysRegs < 33:
		return fmt.Errorf("sim: %d physical registers cannot back 32 logical", c.PhysRegs)
	case c.SimpleInt < 1 || c.IntMulDiv < 1 || c.SimpleFP < 1 || c.FPDiv < 1 || c.MemPorts < 1:
		return fmt.Errorf("sim: every functional unit pool needs at least one unit")
	case c.MaxInstructions == 0:
		return fmt.Errorf("sim: MaxInstructions must be positive")
	case c.WarmupInstructions >= c.MaxInstructions:
		return fmt.Errorf("sim: warmup (%d) must be shorter than the run (%d)",
			c.WarmupInstructions, c.MaxInstructions)
	case c.HistoryBits > c.PredictorBits:
		return fmt.Errorf("sim: history bits %d exceed predictor index bits %d",
			c.HistoryBits, c.PredictorBits)
	}
	return nil
}

// buildFile constructs one register file instance from the spec.
func (c *Config) buildFile() core.File {
	switch c.RF.Kind {
	case RFMonolithic:
		cfg := c.RF.Mono
		cfg.NumPhys = c.PhysRegs
		return core.NewMonolithic(cfg)
	case RFCache:
		cfg := c.RF.Cache
		cfg.NumPhys = c.PhysRegs
		return core.NewCacheFile(cfg)
	case RFOneLevel:
		cfg := c.RF.OneLevel
		cfg.NumPhys = c.PhysRegs
		return core.NewOneLevel(cfg)
	case RFReplicated:
		cfg := c.RF.Replicated
		cfg.NumPhys = c.PhysRegs
		return core.NewReplicated(cfg)
	}
	panic(fmt.Sprintf("sim: unknown register file kind %d", c.RF.Kind))
}
