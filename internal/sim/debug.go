package sim

import (
	"fmt"
	"io"

	"repro/internal/isa"
)

// Tracer receives pipeline events for debugging and teaching. Attach one
// with Simulator.SetTracer before Run. The zero-cost path (no tracer) is
// preserved: event formatting happens only when a tracer is installed.
type Tracer interface {
	// Event receives one pipeline event at the given cycle.
	Event(cycle uint64, stage string, detail string)
}

// WriterTracer formats events one per line to an io.Writer.
type WriterTracer struct {
	W io.Writer
	// From/To bound the traced cycle window; zero values trace everything.
	From, To uint64
}

// Event implements Tracer.
func (t *WriterTracer) Event(cycle uint64, stage, detail string) {
	if cycle < t.From || (t.To != 0 && cycle > t.To) {
		return
	}
	fmt.Fprintf(t.W, "[%8d] %-9s %s\n", cycle, stage, detail)
}

// SetTracer installs a pipeline tracer (nil disables tracing). Must be
// called before Run.
func (s *Simulator) SetTracer(t Tracer) { s.tracer = t }

func (s *Simulator) trace(t uint64, stage string, format string, args ...any) {
	if s.tracer == nil {
		return
	}
	s.tracer.Event(t, stage, fmt.Sprintf(format, args...))
}

// traceUop renders an instruction compactly for trace lines.
func traceUop(u *uop) string {
	d := ""
	if u.dest >= 0 {
		file := "i"
		if u.destFP {
			file = "f"
		}
		d = fmt.Sprintf(" -> %s%d", file, u.dest)
	}
	extra := ""
	switch u.in.Class {
	case isa.Branch:
		if u.in.Taken {
			extra = " T"
		} else {
			extra = " NT"
		}
		if u.mispredicted {
			extra += "!"
		}
	case isa.Load, isa.Store:
		extra = fmt.Sprintf(" @%#x", u.in.Addr)
	}
	return fmt.Sprintf("#%d %v%s%s", u.seq, u.in.Class, d, extra)
}
