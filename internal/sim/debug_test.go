package sim

import (
	"strings"
	"testing"

	"repro/internal/core"
)

func TestTracerRecordsAllStages(t *testing.T) {
	var sb strings.Builder
	cfg := DefaultConfig(PaperCache(), 2000)
	s := New(cfg, testStream("compress"))
	s.SetTracer(&WriterTracer{W: &sb})
	s.Run()
	out := sb.String()
	for _, stage := range []string{"dispatch", "issue", "complete", "writeback", "commit"} {
		if !strings.Contains(out, stage) {
			t.Errorf("trace missing %q events", stage)
		}
	}
	if !strings.Contains(out, "IntALU") {
		t.Error("trace missing instruction rendering")
	}
}

func TestTracerWindowing(t *testing.T) {
	var sb strings.Builder
	cfg := DefaultConfig(Mono1Cycle(core.Unlimited, core.Unlimited), 2000)
	s := New(cfg, testStream("compress"))
	s.SetTracer(&WriterTracer{W: &sb, From: 100, To: 110})
	s.Run()
	for _, line := range strings.Split(strings.TrimSpace(sb.String()), "\n") {
		if line == "" {
			continue
		}
		var cyc uint64
		if _, err := fmtSscanfCycle(line, &cyc); err != nil {
			t.Fatalf("unparseable trace line %q", line)
		}
		if cyc < 100 || cyc > 110 {
			t.Fatalf("event outside window: %q", line)
		}
	}
}

// fmtSscanfCycle extracts the bracketed cycle from a trace line.
func fmtSscanfCycle(line string, out *uint64) (int, error) {
	i := strings.IndexByte(line, '[')
	j := strings.IndexByte(line, ']')
	if i < 0 || j <= i {
		return 0, errBadLine
	}
	var v uint64
	for _, c := range strings.TrimSpace(line[i+1 : j]) {
		if c < '0' || c > '9' {
			return 0, errBadLine
		}
		v = v*10 + uint64(c-'0')
	}
	*out = v
	return 1, nil
}

var errBadLine = &badLineError{}

type badLineError struct{}

func (*badLineError) Error() string { return "bad trace line" }

func TestTracerDisabledByDefault(t *testing.T) {
	// Simply runs without a tracer; the hot path must not panic and the
	// result must be identical to a traced run.
	cfg := DefaultConfig(PaperCache(), 5000)
	plain := New(cfg, testStream("li")).Run()

	traced := New(cfg, testStream("li"))
	traced.SetTracer(&WriterTracer{W: discardWriter{}})
	got := traced.Run()
	if plain.IPC != got.IPC || plain.Cycles != got.Cycles {
		t.Errorf("tracing changed results: %v vs %v", plain.IPC, got.IPC)
	}
}

type discardWriter struct{}

func (discardWriter) Write(p []byte) (int, error) { return len(p), nil }

func TestStallCountersPopulated(t *testing.T) {
	r := run(t, Mono1Cycle(4, 2), "gcc", 40000)
	if r.BranchStallCycles == 0 {
		t.Error("no branch stall cycles recorded on a mispredicting code")
	}
	if r.ICacheStallCycles == 0 {
		t.Error("no I-cache stall cycles recorded on a large-footprint code")
	}
	if r.BranchStallCycles+r.ICacheStallCycles >= r.Cycles {
		t.Error("stall cycles exceed total cycles")
	}
}

func TestFUConflictsUnderNarrowMachine(t *testing.T) {
	cfg := DefaultConfig(Mono1Cycle(core.Unlimited, core.Unlimited), 30000)
	cfg.SimpleInt, cfg.MemPorts = 1, 1 // starve the pools
	r := New(cfg, testStream("compress")).Run()
	if r.FUConflicts == 0 {
		t.Error("no FU conflicts on a 1-ALU machine at 8-wide issue")
	}
	wide := run(t, Mono1Cycle(core.Unlimited, core.Unlimited), "compress", 30000)
	if r.IPC >= wide.IPC {
		t.Errorf("starved machine (%.3f) should lose to the full machine (%.3f)", r.IPC, wide.IPC)
	}
}

func TestBranchStallsGrowWithRFLatency(t *testing.T) {
	u := core.Unlimited
	one := run(t, Mono1Cycle(u, u), "go", 40000)
	two := run(t, Mono2CycleFull(u, u), "go", 40000)
	if two.BranchStallCycles <= one.BranchStallCycles {
		t.Errorf("branch stall cycles did not grow with RF latency: %d vs %d",
			two.BranchStallCycles, one.BranchStallCycles)
	}
}

func TestTinyWindowStillCorrect(t *testing.T) {
	cfg := DefaultConfig(PaperCache(), 10000)
	cfg.WindowSize = 4
	cfg.FetchQueue = 8
	cfg.LSQSize = 4
	r := New(cfg, testStream("compress")).Run()
	if r.Instructions == 0 || r.IPC <= 0 || r.IPC > 4 {
		t.Errorf("tiny-window run implausible: %+v", r.IPC)
	}
	wide := run(t, PaperCache(), "compress", 10000)
	if r.IPC >= wide.IPC {
		t.Errorf("4-entry window (%.3f) should lose to 128 (%.3f)", r.IPC, wide.IPC)
	}
}

func TestZeroWarmupSupported(t *testing.T) {
	cfg := DefaultConfig(Mono1Cycle(core.Unlimited, core.Unlimited), 10000)
	cfg.WarmupInstructions = 0
	r := New(cfg, testStream("compress")).Run()
	if r.Instructions < 10000 {
		t.Errorf("zero-warmup run measured %d instructions", r.Instructions)
	}
}

func TestMixedFPStoreTiming(t *testing.T) {
	// FP benchmarks store FP data through integer address registers; this
	// exercises the split-store path across both register files.
	r := run(t, PaperCache(), "swim", 30000)
	if r.FPFile.Reads == 0 || r.IntFile.Reads == 0 {
		t.Error("mixed-file reads missing on an FP workload")
	}
}

func TestLSQPressureThrottlesDispatch(t *testing.T) {
	cfg := DefaultConfig(Mono1Cycle(core.Unlimited, core.Unlimited), 20000)
	cfg.LSQSize = 2
	r := New(cfg, testStream("swim")).Run()
	wide := run(t, Mono1Cycle(core.Unlimited, core.Unlimited), "swim", 20000)
	if r.IPC >= wide.IPC {
		t.Errorf("2-entry LSQ (%.3f) should lose to 64 (%.3f)", r.IPC, wide.IPC)
	}
	if r.DispatchStalls == 0 {
		t.Error("no dispatch stalls with a 2-entry LSQ")
	}
}
