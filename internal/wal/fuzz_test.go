package wal_test

import (
	"bytes"
	"encoding/binary"
	"hash/crc32"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/wal"
)

// frame builds one valid record frame, for seeding the corpus.
func frame(payload []byte) []byte {
	b := make([]byte, wal.HeaderBytes+len(payload))
	binary.LittleEndian.PutUint32(b[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(b[4:8], crc32.ChecksumIEEE(payload))
	copy(b[wal.HeaderBytes:], payload)
	return b
}

// FuzzWALReplay feeds arbitrary bytes to recovery as a segment file and
// pins the two safety properties the journal promises for damaged
// input: recovery never panics or errors, and truncation is monotone —
// reopening the recovered directory yields exactly the records the
// first recovery yielded, byte for byte.
func FuzzWALReplay(f *testing.F) {
	f.Add([]byte{})
	f.Add(frame([]byte("hello")))
	f.Add(append(frame([]byte("a")), frame([]byte("bb"))...))
	f.Add(append(frame([]byte("good")), frame([]byte("torn"))[:7]...))
	bad := frame([]byte("flip"))
	bad[wal.HeaderBytes] ^= 0x01
	f.Add(append(frame([]byte("ok")), bad...))
	huge := make([]byte, wal.HeaderBytes)
	binary.LittleEndian.PutUint32(huge[0:4], 0xfffffff0)
	f.Add(huge)
	f.Add(bytes.Repeat([]byte{0}, 64))

	f.Fuzz(func(t *testing.T, data []byte) {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, wal.SegName(1)), data, 0o644); err != nil {
			t.Fatal(err)
		}
		w, err := wal.Open(dir, wal.Options{SyncInterval: -1})
		if err != nil {
			t.Fatalf("Open on arbitrary segment bytes: %v", err)
		}
		var first [][]byte
		w.Replay(func(_ uint64, p []byte) error {
			first = append(first, append([]byte(nil), p...))
			return nil
		})
		w.Close()

		// Every recovered record must be an intact frame from the input.
		off := 0
		for i, p := range first {
			if !bytes.Equal(data[off+wal.HeaderBytes:off+wal.HeaderBytes+len(p)], p) {
				t.Fatalf("record %d does not match input bytes", i)
			}
			off += wal.HeaderBytes + len(p)
		}

		// Monotone: a second recovery of the truncated directory yields
		// the same records.
		re, err := wal.Open(dir, wal.Options{SyncInterval: -1})
		if err != nil {
			t.Fatalf("second Open: %v", err)
		}
		defer re.Close()
		var second [][]byte
		re.Replay(func(_ uint64, p []byte) error {
			second = append(second, append([]byte(nil), p...))
			return nil
		})
		if len(second) != len(first) {
			t.Fatalf("second recovery yielded %d records, first yielded %d", len(second), len(first))
		}
		for i := range second {
			if !bytes.Equal(second[i], first[i]) {
				t.Fatalf("record %d changed between recoveries: %q vs %q", i, first[i], second[i])
			}
		}
		if st := re.Stats(); st.TruncatedBytes != 0 {
			t.Fatalf("second recovery truncated %d more bytes; truncation is not monotone", st.TruncatedBytes)
		}
	})
}
