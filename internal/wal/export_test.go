package wal

import "os"

// SetWriteHook replaces the write step that commits a framed record to
// the active segment, letting crash-consistency tests tear a record
// mid-write. Tests only.
func (w *WAL) SetWriteHook(f func(f *os.File, b []byte) (int, error)) {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.write = f
}

// SetRenameHook replaces the rename step that commits a finished
// snapshot temp file, letting crash-consistency tests simulate a
// compactor killed mid-commit. Tests only.
func (w *WAL) SetRenameHook(f func(oldpath, newpath string) error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.rename = f
}

// Failed reports whether a write error has poisoned the journal. Tests
// only.
func (w *WAL) Failed() bool {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.failed
}

// HeaderBytes and MaxRecordBytes export framing constants for tests.
const (
	HeaderBytes    = headerBytes
	MaxRecordBytes = maxRecordBytes
)

// SegName exports the segment naming scheme for tests that fabricate
// journal directories byte by byte.
func SegName(start uint64) string { return segName(start) }
