package wal_test

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/wal"
)

// These tests mirror internal/store's crash suite: a journal is damaged
// at precise points — torn tail, flipped bit, empty segment, stale temp
// file, failed write — and reopening must recover exactly the longest
// intact prefix of records, repeatably. A "crashed" WAL is deliberately
// never Closed; a real crash doesn't flush anything.

func mustOpen(t *testing.T, dir string, opts Options) *wal.WAL {
	t.Helper()
	w, err := wal.Open(dir, opts)
	if err != nil {
		t.Fatalf("Open(%s): %v", dir, err)
	}
	return w
}

// Options aliases wal.Options so the helper signature stays short.
type Options = wal.Options

func payload(i int) []byte { return []byte(fmt.Sprintf("record-%04d", i)) }

func appendN(t *testing.T, w *wal.WAL, from, n int) {
	t.Helper()
	for i := from; i < from+n; i++ {
		idx, err := w.Append(payload(i))
		if err != nil {
			t.Fatalf("Append(%d): %v", i, err)
		}
		if want := uint64(i + 1); idx != want {
			t.Fatalf("Append(%d) returned index %d, want %d", i, idx, want)
		}
	}
}

func replayAll(t *testing.T, w *wal.WAL) (indexes []uint64, payloads [][]byte) {
	t.Helper()
	err := w.Replay(func(index uint64, p []byte) error {
		indexes = append(indexes, index)
		payloads = append(payloads, append([]byte(nil), p...))
		return nil
	})
	if err != nil {
		t.Fatalf("Replay: %v", err)
	}
	return indexes, payloads
}

// onlySegment returns the path of the single segment file in dir.
func onlySegment(t *testing.T, dir string) string {
	t.Helper()
	matches, err := filepath.Glob(filepath.Join(dir, "seg-*.wal"))
	if err != nil || len(matches) != 1 {
		t.Fatalf("want exactly one segment, got %v (err %v)", matches, err)
	}
	return matches[0]
}

func TestWALAppendReplayRoundTrip(t *testing.T) {
	dir := t.TempDir()
	w := mustOpen(t, dir, Options{})
	appendN(t, w, 0, 25)
	if err := w.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	re := mustOpen(t, dir, Options{})
	defer re.Close()
	indexes, payloads := replayAll(t, re)
	if len(payloads) != 25 {
		t.Fatalf("replayed %d records, want 25", len(payloads))
	}
	for i, p := range payloads {
		if indexes[i] != uint64(i+1) {
			t.Errorf("record %d replayed with index %d, want %d", i, indexes[i], i+1)
		}
		if !bytes.Equal(p, payload(i)) {
			t.Errorf("record %d replayed as %q, want %q", i, p, payload(i))
		}
	}
	if st := re.Stats(); st.Replayed != 25 || st.TruncatedBytes != 0 {
		t.Errorf("stats after clean reopen: %+v", st)
	}
	// The chain continues where it left off.
	if idx, err := re.Append(payload(25)); err != nil || idx != 26 {
		t.Fatalf("Append after reopen: index %d err %v, want 26 nil", idx, err)
	}
}

func TestWALRotationSpansSegments(t *testing.T) {
	dir := t.TempDir()
	// ~19-byte payloads + 8-byte headers against a 64-byte threshold:
	// every couple of appends rotates.
	w := mustOpen(t, dir, Options{SegmentBytes: 64})
	appendN(t, w, 0, 40)
	w.Close()

	segs, _ := filepath.Glob(filepath.Join(dir, "seg-*.wal"))
	if len(segs) < 10 {
		t.Fatalf("rotation produced %d segments, want many", len(segs))
	}
	re := mustOpen(t, dir, Options{})
	defer re.Close()
	_, payloads := replayAll(t, re)
	if len(payloads) != 40 {
		t.Fatalf("replayed %d records across segments, want 40", len(payloads))
	}
	for i, p := range payloads {
		if !bytes.Equal(p, payload(i)) {
			t.Fatalf("record %d = %q, want %q", i, p, payload(i))
		}
	}
}

// TestWALCrashConsistency damages a freshly written journal in the ways
// a crash (or disk corruption) can, and asserts recovery keeps exactly
// the longest intact prefix — and that a second reopen recovers the
// same records (truncation is monotone, so recovery is idempotent).
func TestWALCrashConsistency(t *testing.T) {
	const total = 12
	cases := []struct {
		name string
		// damage mutates the journal directory after total records were
		// written and the WAL abandoned; returns how many records must
		// survive.
		damage func(t *testing.T, dir string) int
	}{
		{
			// kill -9 mid-write: the final record's frame is cut short.
			name: "torn tail",
			damage: func(t *testing.T, dir string) int {
				seg := onlySegment(t, dir)
				info, _ := os.Stat(seg)
				if err := os.Truncate(seg, info.Size()-5); err != nil {
					t.Fatal(err)
				}
				return total - 1
			},
		},
		{
			// Tear inside the header, not the payload.
			name: "torn header",
			damage: func(t *testing.T, dir string) int {
				seg := onlySegment(t, dir)
				info, _ := os.Stat(seg)
				recLen := int64(wal.HeaderBytes + len(payload(0)))
				if err := os.Truncate(seg, info.Size()-recLen+3); err != nil {
					t.Fatal(err)
				}
				return total - 1
			},
		},
		{
			// Bit rot in the middle of the file: everything from the
			// flipped record on is untrusted.
			name: "bit flip",
			damage: func(t *testing.T, dir string) int {
				seg := onlySegment(t, dir)
				data, err := os.ReadFile(seg)
				if err != nil {
					t.Fatal(err)
				}
				recLen := wal.HeaderBytes + len(payload(0))
				victim := 4 // fifth record, flip a payload byte
				data[victim*recLen+wal.HeaderBytes] ^= 0x40
				if err := os.WriteFile(seg, data, 0o644); err != nil {
					t.Fatal(err)
				}
				return victim
			},
		},
		{
			// A length prefix smashed into an absurd value must not
			// allocate or read past the cap.
			name: "oversized length prefix",
			damage: func(t *testing.T, dir string) int {
				seg := onlySegment(t, dir)
				data, err := os.ReadFile(seg)
				if err != nil {
					t.Fatal(err)
				}
				recLen := wal.HeaderBytes + len(payload(0))
				binary.LittleEndian.PutUint32(data[3*recLen:], 0xffffffff)
				if err := os.WriteFile(seg, data, 0o644); err != nil {
					t.Fatal(err)
				}
				return 3
			},
		},
		{
			// A crash right after openSegmentLocked leaves a zero-byte
			// segment; it must not confuse recovery or appends.
			name: "empty segment",
			damage: func(t *testing.T, dir string) int {
				if err := os.WriteFile(filepath.Join(dir, wal.SegName(uint64(total+1))), nil, 0o644); err != nil {
					t.Fatal(err)
				}
				return total
			},
		},
		{
			// A crash mid-snapshot leaves a stale temp file; it must be
			// swept, not parsed.
			name: "stale tmp",
			damage: func(t *testing.T, dir string) int {
				if err := os.WriteFile(filepath.Join(dir, "tmp-123456"), []byte("half a snapshot"), 0o644); err != nil {
					t.Fatal(err)
				}
				return total
			},
		},
		{
			// A deleted early segment breaks the chain: later segments
			// must be dropped rather than replayed out of order.
			name: "gap in chain",
			damage: func(t *testing.T, dir string) int {
				seg := onlySegment(t, dir)
				if err := os.Remove(seg); err != nil {
					t.Fatal(err)
				}
				// Fabricate a later segment the chain cannot reach.
				frame := make([]byte, wal.HeaderBytes+3)
				binary.LittleEndian.PutUint32(frame[0:4], 3)
				binary.LittleEndian.PutUint32(frame[4:8], crc32.ChecksumIEEE([]byte("zzz")))
				copy(frame[wal.HeaderBytes:], "zzz")
				if err := os.WriteFile(filepath.Join(dir, wal.SegName(uint64(total+5))), frame, 0o644); err != nil {
					t.Fatal(err)
				}
				return 0
			},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			w := mustOpen(t, dir, Options{SyncInterval: -1})
			appendN(t, w, 0, total)
			w.Sync()
			// Crash: the WAL is abandoned, never Closed.
			want := tc.damage(t, dir)

			re := mustOpen(t, dir, Options{SyncInterval: -1})
			_, payloads := replayAll(t, re)
			if len(payloads) != want {
				t.Fatalf("recovered %d records, want %d", len(payloads), want)
			}
			for i, p := range payloads {
				if !bytes.Equal(p, payload(i)) {
					t.Fatalf("record %d recovered as %q, want %q", i, p, payload(i))
				}
			}
			if want < total {
				if st := re.Stats(); st.TruncatedBytes == 0 {
					t.Error("records were lost but TruncatedBytes is 0")
				}
			}
			// No temp debris survives recovery.
			if tmp, _ := filepath.Glob(filepath.Join(dir, "tmp-*")); len(tmp) != 0 {
				t.Errorf("temp files survived reopen: %v", tmp)
			}
			// The journal must accept appends again, and a second reopen
			// must see the same prefix plus the new record — recovery
			// monotone and idempotent.
			if _, err := re.Append([]byte("after-crash")); err != nil {
				t.Fatalf("Append after recovery: %v", err)
			}
			re.Close()

			re2 := mustOpen(t, dir, Options{SyncInterval: -1})
			defer re2.Close()
			_, payloads2 := replayAll(t, re2)
			if len(payloads2) != want+1 {
				t.Fatalf("second reopen recovered %d records, want %d", len(payloads2), want+1)
			}
			for i := 0; i < want; i++ {
				if !bytes.Equal(payloads2[i], payload(i)) {
					t.Fatalf("second reopen record %d = %q, want %q", i, payloads2[i], payload(i))
				}
			}
			if !bytes.Equal(payloads2[want], []byte("after-crash")) {
				t.Fatalf("post-recovery append lost: %q", payloads2[want])
			}
		})
	}
}

// TestWALFailedWriteTruncatesBack injects a write error (and a short
// write) and asserts the failed append leaves no partial frame behind:
// the next append lands cleanly and recovery sees a gap-free chain.
func TestWALFailedWriteTruncatesBack(t *testing.T) {
	for _, tc := range []struct {
		name string
		hook func(f *os.File, b []byte) (int, error)
	}{
		{"write error after partial data", func(f *os.File, b []byte) (int, error) {
			f.Write(b[:len(b)/2])
			return len(b) / 2, fmt.Errorf("injected: disk full")
		}},
		{"silent short write", func(f *os.File, b []byte) (int, error) {
			return f.Write(b[:len(b)-3])
		}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			w := mustOpen(t, dir, Options{SyncInterval: -1})
			appendN(t, w, 0, 3)

			w.SetWriteHook(tc.hook)
			if _, err := w.Append(payload(3)); err == nil {
				t.Fatal("Append with failing write hook returned nil error")
			}
			if w.Failed() {
				t.Fatal("journal poisoned even though truncate-back succeeded")
			}
			w.SetWriteHook((*os.File).Write)
			// The failed index was not consumed: this lands at index 4.
			if idx, err := w.Append(payload(3)); err != nil || idx != 4 {
				t.Fatalf("Append after recovery: index %d err %v, want 4 nil", idx, err)
			}
			if st := w.Stats(); st.AppendErrors != 1 || st.Appends != 4 {
				t.Errorf("stats: %+v, want 1 append error and 4 appends", st)
			}
			w.Close()

			re := mustOpen(t, dir, Options{})
			defer re.Close()
			_, payloads := replayAll(t, re)
			if len(payloads) != 4 {
				t.Fatalf("recovered %d records, want 4", len(payloads))
			}
			if st := re.Stats(); st.TruncatedBytes != 0 {
				t.Errorf("failed write left torn bytes on disk: %+v", st)
			}
		})
	}
}

func TestWALSnapshotCompactAndResume(t *testing.T) {
	dir := t.TempDir()
	w := mustOpen(t, dir, Options{})
	appendN(t, w, 0, 10)
	if err := w.Compact([]byte("state-after-10")); err != nil {
		t.Fatalf("Compact: %v", err)
	}
	if segs, _ := filepath.Glob(filepath.Join(dir, "seg-*.wal")); len(segs) != 0 {
		t.Fatalf("segments survived compaction: %v", segs)
	}
	appendN(t, w, 10, 5)
	w.Close()

	re := mustOpen(t, dir, Options{})
	defer re.Close()
	snap, idx, ok := re.Snapshot()
	if !ok || idx != 10 || string(snap) != "state-after-10" {
		t.Fatalf("Snapshot() = %q, %d, %v; want state-after-10, 10, true", snap, idx, ok)
	}
	indexes, payloads := replayAll(t, re)
	if len(payloads) != 5 {
		t.Fatalf("replayed %d post-snapshot records, want 5", len(payloads))
	}
	for i, p := range payloads {
		if indexes[i] != uint64(11+i) || !bytes.Equal(p, payload(10+i)) {
			t.Errorf("post-snapshot record %d: index %d payload %q", i, indexes[i], p)
		}
	}
	// The chain keeps its global numbering.
	if nidx, err := re.Append(payload(15)); err != nil || nidx != 16 {
		t.Fatalf("Append after compacted reopen: index %d err %v, want 16 nil", nidx, err)
	}
}

// TestWALCompactRenameFailure fails the snapshot commit rename and
// asserts nothing was thrown away: the records are all still
// recoverable and the old snapshot (none) is still in force.
func TestWALCompactRenameFailure(t *testing.T) {
	dir := t.TempDir()
	w := mustOpen(t, dir, Options{SyncInterval: -1})
	appendN(t, w, 0, 8)
	w.SetRenameHook(func(_, _ string) error { return fmt.Errorf("injected: crashed before commit") })
	if err := w.Compact([]byte("doomed")); err == nil {
		t.Fatal("Compact with failing rename returned nil error")
	}
	// Crash: abandon without Close.

	re := mustOpen(t, dir, Options{})
	defer re.Close()
	if _, _, ok := re.Snapshot(); ok {
		t.Fatal("uncommitted snapshot visible after reopen")
	}
	_, payloads := replayAll(t, re)
	if len(payloads) != 8 {
		t.Fatalf("recovered %d records after failed compaction, want 8", len(payloads))
	}
	if tmp, _ := filepath.Glob(filepath.Join(dir, "tmp-*")); len(tmp) != 0 {
		t.Errorf("temp files survived reopen: %v", tmp)
	}
}

// TestWALCrashAfterCompact abandons the WAL right after a successful
// compaction: reopen must serve the snapshot with nothing to replay.
func TestWALCrashAfterCompact(t *testing.T) {
	dir := t.TempDir()
	w := mustOpen(t, dir, Options{})
	appendN(t, w, 0, 6)
	if err := w.Compact([]byte("base")); err != nil {
		t.Fatalf("Compact: %v", err)
	}
	// Crash: abandon without Close.

	re := mustOpen(t, dir, Options{})
	defer re.Close()
	snap, idx, ok := re.Snapshot()
	if !ok || idx != 6 || string(snap) != "base" {
		t.Fatalf("Snapshot() = %q, %d, %v; want base, 6, true", snap, idx, ok)
	}
	if indexes, _ := replayAll(t, re); len(indexes) != 0 {
		t.Fatalf("replayed %d records covered by the snapshot, want 0", len(indexes))
	}
	if idx, err := re.Append([]byte("next")); err != nil || idx != 7 {
		t.Fatalf("Append after compacted crash: index %d err %v, want 7 nil", idx, err)
	}
}

func TestWALRejectsOversizedRecord(t *testing.T) {
	dir := t.TempDir()
	w := mustOpen(t, dir, Options{})
	defer w.Close()
	if _, err := w.Append(make([]byte, wal.MaxRecordBytes+1)); err == nil {
		t.Fatal("Append accepted a record over the size cap")
	}
	if _, err := w.Append([]byte("small")); err != nil {
		t.Fatalf("journal unusable after oversized reject: %v", err)
	}
}

func TestWALEmptyDirAndReplayOrder(t *testing.T) {
	dir := t.TempDir()
	w := mustOpen(t, dir, Options{})
	defer w.Close()
	if _, _, ok := w.Snapshot(); ok {
		t.Error("fresh journal claims a snapshot")
	}
	if indexes, _ := replayAll(t, w); len(indexes) != 0 {
		t.Errorf("fresh journal replayed %d records", len(indexes))
	}
	if w.Index() != 0 {
		t.Errorf("fresh journal Index() = %d, want 0", w.Index())
	}
}

// TestWALReplayAbortsOnError pins that a replay callback error stops
// the walk and surfaces.
func TestWALReplayAbortsOnError(t *testing.T) {
	dir := t.TempDir()
	w := mustOpen(t, dir, Options{})
	appendN(t, w, 0, 5)
	w.Close()

	re := mustOpen(t, dir, Options{})
	defer re.Close()
	n := 0
	err := re.Replay(func(uint64, []byte) error {
		n++
		if n == 3 {
			return fmt.Errorf("boom")
		}
		return nil
	})
	if err == nil || !strings.Contains(err.Error(), "boom") {
		t.Fatalf("Replay error = %v, want boom", err)
	}
	if n != 3 {
		t.Fatalf("callback ran %d times after aborting error, want 3", n)
	}
}
