// Package wal implements the append-only write-ahead journal under the
// rfserved coordinator's crash-resume path (cmd/rfserved -wal-dir): a
// sequence of length-prefixed, CRC32-checksummed records spread over
// rotated segment files, plus an atomically written snapshot that bounds
// replay cost.
//
// Layout under the journal directory:
//
//	snap.json             latest snapshot: {schema, index, data}
//	seg-<first>.wal       records, named by the global index (16-digit
//	                      hex) of the first record the segment holds
//
// Each record is framed as
//
//	[4B length, little endian][4B IEEE CRC32 of payload][payload]
//
// and the payload is opaque to this package (the coordinator and server
// journal small JSON documents). Records carry implicit global indexes:
// the first record ever appended is index 1, and a segment's name pins
// the index of its first record, so the chain is self-describing.
//
// Durability is batched: Append issues the write(2) immediately — a
// record survives a crash of the process as soon as Append returns — and
// a background group-commit goroutine fsyncs the active segment every
// SyncInterval, so a machine crash loses at most one sync window. Sync
// forces an fsync for callers that need a hard barrier.
//
// Recovery (Open) tolerates torn tails: the record chain is replayed
// until the first frame that is short, oversized, or fails its CRC, the
// damaged segment is truncated at the last good record, and any segment
// that does not continue the chain exactly where it broke is discarded.
// Truncation is therefore monotone — reopening a journal never recovers
// fewer (or different) records than the previous open did, a property
// pinned by FuzzWALReplay. A corrupt or missing snapshot is treated as
// absent; a snapshot that names an index beyond the surviving records
// simply means the covered segments were already deleted.
package wal

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

const (
	headerBytes = 8
	// maxRecordBytes rejects absurd length prefixes during recovery (a
	// torn or bit-flipped header must not trigger a giant allocation).
	maxRecordBytes = 64 << 20
	snapName       = "snap.json"
	segPrefix      = "seg-"
	segSuffix      = ".wal"
)

// Options configures a WAL. The zero value is usable.
type Options struct {
	// SegmentBytes is the rotation threshold: the active segment is
	// closed and a new one started once it exceeds this size; 0 means
	// 4 MiB.
	SegmentBytes int64
	// SyncInterval is the group-commit window: the active segment is
	// fsynced at most this long after an Append marked it dirty; 0 means
	// 2 ms. Negative disables background fsync entirely (Sync and Close
	// still flush) — for tests and callers that batch their own syncs.
	SyncInterval time.Duration
}

// Stats counts journal activity. Replay-side fields are set by Open;
// append-side fields accumulate over the WAL's lifetime.
type Stats struct {
	// Appends counts records durably handed to the OS; AppendErrors
	// counts Append calls that failed (the journal is failed and
	// read-only once a write error leaves the tail in an unknown state).
	Appends      uint64 `json:"appends"`
	AppendErrors uint64 `json:"append_errors"`
	// Fsyncs counts group-commit and explicit syncs that reached fsync(2).
	Fsyncs uint64 `json:"fsyncs"`
	// Replayed is how many records Open recovered (after the snapshot);
	// ReplayDuration is how long recovery took.
	Replayed       uint64        `json:"replayed"`
	ReplayDuration time.Duration `json:"replay_duration"`
	// TruncatedBytes is how much torn or unreachable data recovery cut
	// away; Compactions counts successful Compact calls.
	TruncatedBytes int64  `json:"truncated_bytes"`
	Compactions    uint64 `json:"compactions"`
}

// snapFile is the on-disk schema of snap.json. Data is opaque
// application state (base64 in the JSON encoding).
type snapFile struct {
	Schema int    `json:"schema"`
	Index  uint64 `json:"index"`
	Data   []byte `json:"data"`
}

// WAL is an append-only journal. It is safe for concurrent use; there
// must be at most one WAL open per directory.
type WAL struct {
	dir  string
	opts Options

	// write commits one framed record to the active segment and rename
	// commits a finished snapshot temp file; the crash-consistency tests
	// swap them to cut the journal down mid-operation.
	write  func(f *os.File, b []byte) (int, error)
	rename func(oldpath, newpath string) error

	mu        sync.Mutex
	f         *os.File // active segment; nil until the next Append opens one
	segBytes  int64    // bytes in the active segment
	liveBytes int64    // bytes across all live segments
	next      uint64   // global index of the next record to append
	snapIndex uint64
	snapData  []byte
	replay    [][]byte // recovered post-snapshot payloads, until Replay drains them
	dirty     bool     // active segment has unsynced appends
	failed    bool     // a write error left the tail unknown; journal is read-only
	closed    bool
	stats     Stats

	syncc chan struct{}
	stop  chan struct{}
	done  chan struct{}
}

// Open loads (or initializes) the journal rooted at dir, recovering the
// record chain and truncating any torn tail. The recovered records are
// held for a single Replay call; Append continues the chain.
func Open(dir string, opts Options) (*WAL, error) {
	if opts.SegmentBytes <= 0 {
		opts.SegmentBytes = 4 << 20
	}
	if opts.SyncInterval == 0 {
		opts.SyncInterval = 2 * time.Millisecond
	}
	w := &WAL{
		dir:    dir,
		opts:   opts,
		write:  func(f *os.File, b []byte) (int, error) { return f.Write(b) },
		rename: os.Rename,
		next:   1,
		syncc:  make(chan struct{}, 1),
		stop:   make(chan struct{}),
		done:   make(chan struct{}),
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	t0 := time.Now()
	if err := w.load(); err != nil {
		return nil, err
	}
	w.stats.ReplayDuration = time.Since(t0)
	w.stats.Replayed = uint64(len(w.replay))
	go w.syncLoop()
	return w, nil
}

// load recovers the snapshot and the record chain.
func (w *WAL) load() error {
	names, err := os.ReadDir(w.dir)
	if err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	type seg struct {
		path  string
		start uint64
		size  int64
	}
	var segs []seg
	for _, de := range names {
		name := de.Name()
		// A crash between CreateTemp and rename (snapshot write) leaves a
		// stale tmp- file; sweep it now.
		if strings.HasPrefix(name, "tmp-") {
			os.Remove(filepath.Join(w.dir, name))
			continue
		}
		start, ok := segStart(name)
		if !ok {
			continue
		}
		info, err := de.Info()
		if err != nil {
			continue
		}
		segs = append(segs, seg{path: filepath.Join(w.dir, name), start: start, size: info.Size()})
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i].start < segs[j].start })

	// Snapshot: corrupt or missing means absent. (It is written
	// atomically, so a torn snapshot file cannot exist; corruption here
	// is outside interference, and replaying from the records alone is
	// the safest answer we have.)
	if data, err := os.ReadFile(filepath.Join(w.dir, snapName)); err == nil {
		var sf snapFile
		if json.Unmarshal(data, &sf) == nil && sf.Schema == 1 {
			w.snapIndex = sf.Index
			w.snapData = sf.Data
		}
	}

	// Replay the chain. Each segment must begin exactly where the
	// previous one ended; the first torn or corrupt frame ends the chain
	// (truncate-at-first-bad-record), except that a following segment
	// starting at exactly the broken index continues it — that is the
	// signature of a failed append retried into a fresh segment, not of
	// lost records.
	idx := uint64(0) // global index of the last good record
	broken := false
	for _, sg := range segs {
		if idx == 0 {
			// Chain start: the first surviving segment must not leave a
			// gap after the snapshot, or the records beyond the gap are
			// not safe to apply.
			if sg.start > w.snapIndex+1 {
				w.discard(sg.path, sg.size)
				broken = true
				continue
			}
			idx = sg.start - 1
		}
		if broken || sg.start != idx+1 {
			w.discard(sg.path, sg.size)
			broken = true
			continue
		}
		n, good, err := w.scanSegment(sg.path, sg.start)
		if err != nil {
			return err
		}
		idx = sg.start - 1 + uint64(n)
		if good < sg.size {
			// Torn tail: cut the segment back to its last good record. A
			// later segment may still continue the chain at idx+1.
			if err := os.Truncate(sg.path, good); err != nil {
				return fmt.Errorf("wal: truncating torn tail of %s: %w", sg.path, err)
			}
			w.stats.TruncatedBytes += sg.size - good
			sg.size = good
		}
		w.liveBytes += sg.size
	}
	if idx > 0 {
		w.next = idx + 1
	}
	if w.snapIndex >= w.next {
		// All surviving records are covered by the snapshot (the
		// compaction that wrote it already deleted them).
		w.next = w.snapIndex + 1
	}
	return nil
}

// discard removes a segment that recovery cannot reach (a gap in the
// chain); its bytes count as truncated.
func (w *WAL) discard(path string, size int64) {
	os.Remove(path)
	w.stats.TruncatedBytes += size
}

// scanSegment replays one segment file, buffering payloads with global
// index beyond the snapshot. It returns the number of good records and
// the byte offset just past the last one.
func (w *WAL) scanSegment(path string, start uint64) (n int, good int64, err error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return 0, 0, fmt.Errorf("wal: %w", err)
	}
	off := int64(0)
	for {
		rest := data[off:]
		if len(rest) < headerBytes {
			return n, off, nil
		}
		ln := binary.LittleEndian.Uint32(rest[0:4])
		crc := binary.LittleEndian.Uint32(rest[4:8])
		if ln > maxRecordBytes || int(ln) > len(rest)-headerBytes {
			return n, off, nil
		}
		payload := rest[headerBytes : headerBytes+int(ln)]
		if crc32.ChecksumIEEE(payload) != crc {
			return n, off, nil
		}
		if start+uint64(n) > w.snapIndex {
			w.replay = append(w.replay, append([]byte(nil), payload...))
		}
		n++
		off += headerBytes + int64(ln)
	}
}

// segStart parses a segment filename into the global index of its first
// record.
func segStart(name string) (uint64, bool) {
	base, ok := strings.CutPrefix(name, segPrefix)
	if !ok {
		return 0, false
	}
	base, ok = strings.CutSuffix(base, segSuffix)
	if !ok || len(base) != 16 {
		return 0, false
	}
	v, err := strconv.ParseUint(base, 16, 64)
	if err != nil || v == 0 {
		return 0, false
	}
	return v, true
}

func segName(start uint64) string {
	return fmt.Sprintf("%s%016x%s", segPrefix, start, segSuffix)
}

// Snapshot returns the recovered snapshot payload and the global index
// of the last record it covers; ok is false when no snapshot survived.
func (w *WAL) Snapshot() (data []byte, index uint64, ok bool) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.snapData == nil {
		return nil, 0, false
	}
	return w.snapData, w.snapIndex, true
}

// Replay calls fn for every recovered post-snapshot record in append
// order, then releases the recovery buffer. It must be called (at most
// once) before the first Append; fn's error aborts the walk.
func (w *WAL) Replay(fn func(index uint64, payload []byte) error) error {
	w.mu.Lock()
	recs := w.replay
	first := w.next - uint64(len(recs))
	w.replay = nil
	w.mu.Unlock()
	for i, p := range recs {
		if err := fn(first+uint64(i), p); err != nil {
			return err
		}
	}
	return nil
}

// Append journals one record. The record has reached the OS when Append
// returns (it survives a crash of this process); it is on stable storage
// after the next group-commit fsync. The returned index identifies the
// record in the global chain.
//
// A write error poisons the journal: the tail state is unknown, so every
// subsequent Append fails too (counted in Stats.AppendErrors) rather
// than risk interleaving good records with torn ones. Callers degrade to
// running unjournaled.
func (w *WAL) Append(payload []byte) (uint64, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	switch {
	case w.closed:
		return 0, errors.New("wal: closed")
	case w.failed:
		w.stats.AppendErrors++
		return 0, errors.New("wal: journal failed on an earlier write error")
	case len(payload) > maxRecordBytes:
		w.stats.AppendErrors++
		return 0, fmt.Errorf("wal: record of %d bytes exceeds the %d limit", len(payload), maxRecordBytes)
	}
	if w.f == nil {
		if err := w.openSegmentLocked(); err != nil {
			w.stats.AppendErrors++
			return 0, err
		}
	}
	buf := make([]byte, headerBytes+len(payload))
	binary.LittleEndian.PutUint32(buf[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(buf[4:8], crc32.ChecksumIEEE(payload))
	copy(buf[headerBytes:], payload)
	n, err := w.write(w.f, buf)
	if err != nil || n != len(buf) {
		// Try to cut the segment back to its pre-append size; if even
		// that fails the tail is unknown and the journal must stop.
		if terr := w.f.Truncate(w.segBytes); terr != nil {
			w.failed = true
		}
		w.stats.AppendErrors++
		if err == nil {
			err = fmt.Errorf("wal: short write (%d of %d bytes)", n, len(buf))
		}
		return 0, err
	}
	idx := w.next
	w.next++
	w.segBytes += int64(len(buf))
	w.liveBytes += int64(len(buf))
	w.dirty = true
	w.stats.Appends++
	select {
	case w.syncc <- struct{}{}:
	default:
	}
	if w.segBytes >= w.opts.SegmentBytes {
		w.rotateLocked()
	}
	return idx, nil
}

// openSegmentLocked starts the segment whose first record will be w.next.
func (w *WAL) openSegmentLocked() error {
	path := filepath.Join(w.dir, segName(w.next))
	f, err := os.OpenFile(path, os.O_CREATE|os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	w.f = f
	w.segBytes = 0
	syncDir(w.dir)
	return nil
}

// rotateLocked retires the active segment (synced, so rotation doubles
// as a durability barrier); the next Append opens a fresh one.
func (w *WAL) rotateLocked() {
	w.syncLocked()
	w.f.Close()
	w.f = nil
	w.segBytes = 0
}

// Sync forces an fsync of the active segment.
func (w *WAL) Sync() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.syncLocked()
}

func (w *WAL) syncLocked() error {
	if !w.dirty || w.f == nil {
		return nil
	}
	if err := w.f.Sync(); err != nil {
		return err
	}
	w.dirty = false
	w.stats.Fsyncs++
	return nil
}

// syncLoop is the group-commit goroutine: it coalesces appends landing
// within SyncInterval of each other into one fsync.
func (w *WAL) syncLoop() {
	defer close(w.done)
	for {
		select {
		case <-w.stop:
			w.Sync()
			return
		case <-w.syncc:
			if w.opts.SyncInterval > 0 {
				t := time.NewTimer(w.opts.SyncInterval)
				select {
				case <-t.C:
				case <-w.stop:
					t.Stop()
					w.Sync()
					return
				}
			}
			w.Sync()
		}
	}
}

// Compact makes snapshot the journal's new base state: everything the
// records up to now describe is assumed folded into it. The snapshot is
// written atomically (temp file + rename), and on success every live
// segment is deleted — replay cost resets to the snapshot alone.
func (w *WAL) Compact(snapshot []byte) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return errors.New("wal: closed")
	}
	// The snapshot must never describe state from records the disk does
	// not yet hold durably: sync and retire the active segment first.
	if w.f != nil {
		if err := w.syncLocked(); err != nil {
			return err
		}
		w.f.Close()
		w.f = nil
		w.segBytes = 0
	}
	sf := snapFile{Schema: 1, Index: w.next - 1, Data: snapshot}
	data, err := json.Marshal(sf)
	if err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	tmp, err := os.CreateTemp(w.dir, "tmp-*")
	if err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	_, werr := tmp.Write(append(data, '\n'))
	serr := tmp.Sync()
	cerr := tmp.Close()
	if werr != nil || serr != nil || cerr != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("wal: snapshot write: %w", errors.Join(werr, serr, cerr))
	}
	if err := w.rename(tmp.Name(), filepath.Join(w.dir, snapName)); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("wal: %w", err)
	}
	syncDir(w.dir)
	w.snapIndex = sf.Index
	w.snapData = sf.Data
	w.stats.Compactions++
	// Every live segment is now covered by the snapshot. A crash between
	// the rename above and these deletes is safe: recovery skips records
	// at or below the snapshot index.
	names, _ := os.ReadDir(w.dir)
	for _, de := range names {
		if _, ok := segStart(de.Name()); ok {
			os.Remove(filepath.Join(w.dir, de.Name()))
		}
	}
	w.liveBytes = 0
	return nil
}

// SizeBytes returns the bytes of record data live in the journal —
// what a restart would have to replay (the snapshot not included).
func (w *WAL) SizeBytes() int64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.liveBytes
}

// Index returns the global index of the last appended (or recovered)
// record; 0 means the journal is empty.
func (w *WAL) Index() uint64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.next - 1
}

// Stats returns activity counters.
func (w *WAL) Stats() Stats {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.stats
}

// Close flushes and closes the journal. The WAL must not be used after
// Close.
func (w *WAL) Close() error {
	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		return nil
	}
	w.closed = true
	w.mu.Unlock()
	close(w.stop)
	<-w.done // the final sync has run
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.f != nil {
		w.f.Close()
		w.f = nil
	}
	return nil
}

// syncDir fsyncs a directory so a freshly created or renamed entry
// survives a machine crash. Best effort: some filesystems reject
// directory fsync, and losing it only re-runs recovery work.
func syncDir(dir string) {
	d, err := os.Open(dir)
	if err != nil {
		return
	}
	d.Sync()
	d.Close()
}
