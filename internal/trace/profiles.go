package trace

// This file defines the 18 SPEC95 proxy profiles. The parameters are tuned
// so the baseline simulator reproduces the qualitative landscape the paper
// depends on: SpecInt proxies have small-to-large code
// footprints, short dependence chains, frequent and partially unpredictable
// branches; SpecFP proxies have loop-dominated control flow, long
// independent chains (high ILP), streaming memory and rare mispredictions.
// Comments on each profile note the real program's dominant behaviour that
// the parameters mimic.

func intMix(p *Profile) {
	p.WIntALU, p.WIntMul, p.WIntDiv = 52, 2, 0.4
	p.WLoad, p.WStore = 30, 13
}

func fpMix(p *Profile) {
	p.WIntALU, p.WIntMul = 14, 1
	p.WFPALU, p.WFPDiv = 40, 1.6
	p.WLoad, p.WStore = 30, 13
}

// SpecInt95 returns the eight SpecInt95 proxy profiles.
func SpecInt95() []Profile {
	ps := []Profile{
		{ // compress: tight dictionary loops, data-dependent compression decisions
			Name: "compress", StaticInstrs: 1200, MaxLoopDepth: 2, BodyMean: 7, TripMean: 24,
			BranchEvery: 5, FracRandomBranch: 0.2, RandomBias: 0.35,
			DepDistP: 0.45, DestPool: 8, FracStream: 0.35, WorkingSet: 1 << 18, Seed: 101,
		},
		{ // gcc: huge code footprint, irregular control flow
			Name: "gcc", StaticInstrs: 26000, MaxLoopDepth: 3, BodyMean: 9, TripMean: 7,
			BranchEvery: 5, FracRandomBranch: 0.06, RandomBias: 0.35,
			DepDistP: 0.42, DestPool: 10, FracStream: 0.25, WorkingSet: 1 << 20, Seed: 102,
		},
		{ // go: the suite's least predictable branches, deep decision trees
			Name: "go", StaticInstrs: 17000, MaxLoopDepth: 3, BodyMean: 8, TripMean: 5,
			BranchEvery: 4, FracRandomBranch: 0.22, RandomBias: 0.38,
			DepDistP: 0.45, DestPool: 10, FracStream: 0.2, WorkingSet: 1 << 19, Seed: 103,
		},
		{ // ijpeg: regular DCT/quantization loops, very predictable
			Name: "ijpeg", StaticInstrs: 3200, MaxLoopDepth: 3, BodyMean: 14, TripMean: 32,
			BranchEvery: 8, FracRandomBranch: 0.09, RandomBias: 0.3,
			DepDistP: 0.28, DestPool: 14, FracStream: 0.75, WorkingSet: 1 << 19, Seed: 104,
		},
		{ // li: lisp interpreter, pointer chasing (serial load chains)
			Name: "li", StaticInstrs: 4200, MaxLoopDepth: 2, BodyMean: 7, TripMean: 9,
			BranchEvery: 5, FracRandomBranch: 0.08, RandomBias: 0.35,
			DepDistP: 0.5, DestPool: 8, FracStream: 0.15, WorkingSet: 1 << 19, Seed: 105,
		},
		{ // m88ksim: CPU simulator main loop, moderately predictable dispatch
			Name: "m88ksim", StaticInstrs: 6400, MaxLoopDepth: 2, BodyMean: 10, TripMean: 14,
			BranchEvery: 6, FracRandomBranch: 0.03, RandomBias: 0.3,
			DepDistP: 0.4, DestPool: 10, FracStream: 0.4, WorkingSet: 1 << 18, Seed: 106,
		},
		{ // perl: interpreter dispatch, hash lookups
			Name: "perl", StaticInstrs: 12500, MaxLoopDepth: 3, BodyMean: 8, TripMean: 8,
			BranchEvery: 5, FracRandomBranch: 0.06, RandomBias: 0.35,
			DepDistP: 0.45, DestPool: 10, FracStream: 0.2, WorkingSet: 1 << 19, Seed: 107,
		},
		{ // vortex: OO database, large code but well-predicted calls
			Name: "vortex", StaticInstrs: 23000, MaxLoopDepth: 3, BodyMean: 11, TripMean: 10,
			BranchEvery: 6, FracRandomBranch: 0.01, RandomBias: 0.3,
			DepDistP: 0.38, DestPool: 12, FracStream: 0.35, WorkingSet: 1 << 20, Seed: 108,
		},
	}
	for i := range ps {
		intMix(&ps[i])
	}
	return ps
}

// SpecFP95 returns the ten SpecFP95 proxy profiles.
func SpecFP95() []Profile {
	ps := []Profile{
		{ // applu: PDE solver, blocked loops
			Name: "applu", FP: true, StaticInstrs: 5200, MaxLoopDepth: 3, BodyMean: 18, TripMean: 30,
			BranchEvery: 12, FracRandomBranch: 0.012, RandomBias: 0.3,
			DepDistP: 0.14, DestPool: 18, FracStream: 0.85, WorkingSet: 1 << 21, Seed: 201,
		},
		{ // apsi: meteorology, mixed loop sizes, some scalar code
			Name: "apsi", FP: true, StaticInstrs: 6800, MaxLoopDepth: 3, BodyMean: 14, TripMean: 18,
			BranchEvery: 9, FracRandomBranch: 0.02, RandomBias: 0.3,
			DepDistP: 0.18, DestPool: 16, FracStream: 0.7, WorkingSet: 1 << 21, Seed: 202,
		},
		{ // fpppp: enormous straight-line basic blocks, extreme ILP
			Name: "fpppp", FP: true, StaticInstrs: 9000, MaxLoopDepth: 2, BodyMean: 55, TripMean: 22,
			BranchEvery: 40, FracRandomBranch: 0.006, RandomBias: 0.3,
			DepDistP: 0.1, DestPool: 26, FracStream: 0.6, WorkingSet: 1 << 19, Seed: 203,
		},
		{ // hydro2d: hydrodynamics, vectorizable loops
			Name: "hydro2d", FP: true, StaticInstrs: 4600, MaxLoopDepth: 3, BodyMean: 16, TripMean: 40,
			BranchEvery: 11, FracRandomBranch: 0.01, RandomBias: 0.3,
			DepDistP: 0.15, DestPool: 18, FracStream: 0.85, WorkingSet: 1 << 21, Seed: 204,
		},
		{ // mgrid: multigrid stencil, the most regular code in the suite
			Name: "mgrid", FP: true, StaticInstrs: 2600, MaxLoopDepth: 3, BodyMean: 20, TripMean: 80,
			BranchEvery: 16, FracRandomBranch: 0.006, RandomBias: 0.3,
			DepDistP: 0.28, DestPool: 22, FracStream: 0.93, WorkingSet: 1 << 22, Seed: 205,
		},
		{ // su2cor: quantum physics, larger working set, some gather access
			Name: "su2cor", FP: true, StaticInstrs: 5800, MaxLoopDepth: 3, BodyMean: 14, TripMean: 24,
			BranchEvery: 10, FracRandomBranch: 0.018, RandomBias: 0.3,
			DepDistP: 0.18, DestPool: 16, FracStream: 0.55, WorkingSet: 1 << 22, Seed: 206,
		},
		{ // swim: shallow-water stencil, pure streaming
			Name: "swim", FP: true, StaticInstrs: 2100, MaxLoopDepth: 2, BodyMean: 22, TripMean: 90,
			BranchEvery: 18, FracRandomBranch: 0.005, RandomBias: 0.3,
			DepDistP: 0.13, DestPool: 22, FracStream: 0.95, WorkingSet: 1 << 22, Seed: 207,
		},
		{ // tomcatv: mesh generation, strided sweeps with cache misses
			Name: "tomcatv", FP: true, StaticInstrs: 1900, MaxLoopDepth: 2, BodyMean: 18, TripMean: 60,
			BranchEvery: 13, FracRandomBranch: 0.01, RandomBias: 0.3,
			DepDistP: 0.18, DestPool: 18, FracStream: 0.8, WorkingSet: 1 << 23, Seed: 208,
		},
		{ // turb3d: turbulence FFTs, mixed strides
			Name: "turb3d", FP: true, StaticInstrs: 4000, MaxLoopDepth: 3, BodyMean: 16, TripMean: 28,
			BranchEvery: 11, FracRandomBranch: 0.012, RandomBias: 0.3,
			DepDistP: 0.15, DestPool: 18, FracStream: 0.75, WorkingSet: 1 << 21, Seed: 209,
		},
		{ // wave5: particle-in-cell, scatter/gather plus dense field sweeps
			Name: "wave5", FP: true, StaticInstrs: 5400, MaxLoopDepth: 3, BodyMean: 15, TripMean: 26,
			BranchEvery: 10, FracRandomBranch: 0.018, RandomBias: 0.3,
			DepDistP: 0.18, DestPool: 16, FracStream: 0.6, WorkingSet: 1 << 22, Seed: 210,
		},
	}
	for i := range ps {
		fpMix(&ps[i])
	}
	return ps
}

// All returns every profile: SpecInt95 then SpecFP95.
func All() []Profile {
	return append(SpecInt95(), SpecFP95()...)
}

// ByName returns the profile with the given name, or false.
func ByName(name string) (Profile, bool) {
	for _, p := range All() {
		if p.Name == name {
			return p, true
		}
	}
	return Profile{}, false
}
