package trace

import (
	"bytes"
	"io"
	"testing"
	"testing/quick"

	"repro/internal/isa"
)

func TestRoundTrip(t *testing.T) {
	g := New(testProfile())
	var buf bytes.Buffer
	const n = 20000
	if err := Capture(&buf, g, n); err != nil {
		t.Fatal(err)
	}

	// Replay must be byte-for-byte identical to a fresh generator walk.
	ref := New(testProfile())
	r, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		got, err := r.Read()
		if err != nil {
			t.Fatalf("instruction %d: %v", i, err)
		}
		want := ref.Next()
		if *got != *want {
			t.Fatalf("instruction %d differs:\n got %v\nwant %v", i, got, want)
		}
	}
	if _, err := r.Read(); err != io.EOF {
		t.Errorf("expected EOF at end, got %v", err)
	}
	if r.Count() != n {
		t.Errorf("Count = %d", r.Count())
	}
}

func TestCompactEncoding(t *testing.T) {
	g := New(testProfile())
	var buf bytes.Buffer
	const n = 10000
	if err := Capture(&buf, g, n); err != nil {
		t.Fatal(err)
	}
	perInstr := float64(buf.Len()) / n
	if perInstr > 10 {
		t.Errorf("encoding uses %.1f bytes/instruction, want ≤ 10", perInstr)
	}
}

func TestBadMagicRejected(t *testing.T) {
	if _, err := NewReader(bytes.NewReader([]byte("notatrace..."))); err == nil {
		t.Fatal("bad magic accepted")
	}
	if _, err := NewReader(bytes.NewReader(nil)); err == nil {
		t.Fatal("empty stream accepted")
	}
}

func TestTruncatedStream(t *testing.T) {
	g := New(testProfile())
	var buf bytes.Buffer
	if err := Capture(&buf, g, 100); err != nil {
		t.Fatal(err)
	}
	// Chop mid-record.
	data := buf.Bytes()[:buf.Len()-3]
	r, err := NewReader(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, err := r.Read(); err != nil {
			if err == io.EOF && r.Count() == 100 {
				t.Fatal("truncation not detected")
			}
			return // any error (EOF early or wrapped) is acceptable detection
		}
	}
}

func TestNextPanicsAtEOF(t *testing.T) {
	g := New(testProfile())
	var buf bytes.Buffer
	if err := Capture(&buf, g, 5); err != nil {
		t.Fatal(err)
	}
	r, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		r.Next()
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Next past end did not panic")
		}
	}()
	r.Next()
}

func TestWriterCount(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	g := New(testProfile())
	for i := 0; i < 7; i++ {
		if err := w.Write(g.Next()); err != nil {
			t.Fatal(err)
		}
	}
	if w.Count() != 7 {
		t.Errorf("Count = %d", w.Count())
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
}

// Property: any hand-built instruction survives a round trip (fields the
// format encodes).
func TestQuickInstrRoundTrip(t *testing.T) {
	f := func(pcRaw uint32, clsRaw, d, s1, s2 uint8, taken bool, addr uint32, tgt uint32) bool {
		in := isa.Instr{
			PC:    uint64(pcRaw),
			Class: isa.Class(clsRaw % uint8(isa.NumClasses)),
			Dest:  isa.Reg(int16(d%64)) - 0,
			Src1:  isa.Reg(int16(s1 % 64)),
			Src2:  isa.Reg(int16(s2 % 64)),
		}
		switch in.Class {
		case isa.Branch:
			in.Dest = isa.RegNone
			in.Taken = taken
			in.Target = uint64(tgt) + 4 // nonzero
		case isa.Store:
			in.Dest = isa.RegNone
			in.Addr = uint64(addr)
		case isa.Load:
			in.Addr = uint64(addr)
		}
		var buf bytes.Buffer
		w, err := NewWriter(&buf)
		if err != nil {
			return false
		}
		if err := w.Write(&in); err != nil || w.Flush() != nil {
			return false
		}
		r, err := NewReader(&buf)
		if err != nil {
			return false
		}
		got, err := r.Read()
		if err != nil {
			return false
		}
		return *got == in
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCharacterizeMatchesPaperPremises(t *testing.T) {
	// The premise the register file cache rests on (paper §3): most values
	// are read at most once. Both suites must exhibit it.
	for _, name := range []string{"compress", "swim"} {
		p, _ := ByName(name)
		c := Characterize(New(p), 60000)
		if got := c.ReadAtMostOnce(); got < 0.6 {
			t.Errorf("%s: only %.0f%% of values read ≤ once; paper measures 85-88%%", name, 100*got)
		}
		if c.NeverRead() <= 0 {
			t.Errorf("%s: no never-read values; paper reports a significant fraction", name)
		}
		if c.Instructions != 60000 || c.ValuesProduced == 0 {
			t.Errorf("%s: characterization incomplete: %+v", name, c)
		}
	}
}

func TestCharacterizeReport(t *testing.T) {
	p, _ := ByName("gcc")
	c := Characterize(New(p), 20000)
	s := c.String()
	for _, want := range []string{"instructions: 20000", "mix:", "branches:", "values:", "dependence distance", "memory:"} {
		if !bytes.Contains([]byte(s), []byte(want)) {
			t.Errorf("report missing %q:\n%s", want, s)
		}
	}
}

func TestCharacterizeBranchCounts(t *testing.T) {
	p, _ := ByName("li")
	c := Characterize(New(p), 30000)
	if c.Branches == 0 || c.TakenBranches == 0 || c.TakenBranches > c.Branches {
		t.Errorf("branch counts broken: %d/%d", c.TakenBranches, c.Branches)
	}
	var sum uint64
	for _, n := range c.Mix {
		sum += n
	}
	if sum != c.Instructions {
		t.Errorf("mix does not sum to instruction count: %d vs %d", sum, c.Instructions)
	}
}
