package trace

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/isa"
	"repro/internal/stats"
)

// Characterization summarizes the dynamic behaviour of a workload — the
// quantities the paper's premises rest on (instruction mix, branch
// behaviour, and especially the register value-reuse statistics of
// Section 3: "most register values are read at most once").
type Characterization struct {
	// Instructions is the number of dynamic instructions analyzed.
	Instructions uint64
	// Mix counts instructions per class.
	Mix [isa.NumClasses]uint64
	// Branches and TakenBranches count conditional branches.
	Branches, TakenBranches uint64
	// ValuesProduced counts register-writing instructions.
	ValuesProduced uint64
	// ReadsPerValue histograms how many times each produced value is read
	// before its logical register is overwritten.
	ReadsPerValue stats.Histogram
	// DepDistance histograms the producer→consumer distance in dynamic
	// instructions (capped at 255).
	DepDistance stats.Histogram
	// DistinctLines counts distinct 64-byte data lines touched.
	DistinctLines int
}

// Characterize runs the generator for n instructions and measures it.
func Characterize(g *Generator, n uint64) *Characterization {
	c := &Characterization{}
	type live struct {
		reads    uint64
		bornAt   uint64
		produced bool
	}
	values := make([]live, isa.NumLogical)
	lines := make(map[uint64]struct{})
	for i := uint64(0); i < n; i++ {
		in := g.Next()
		c.Instructions++
		c.Mix[in.Class]++
		if in.Class == isa.Branch {
			c.Branches++
			if in.Taken {
				c.TakenBranches++
			}
		}
		for _, r := range [2]isa.Reg{in.Src1, in.Src2} {
			if !r.Valid() {
				continue
			}
			v := &values[r]
			v.reads++
			if v.produced {
				d := i - v.bornAt
				if d > 255 {
					d = 255
				}
				c.DepDistance.Add(int(d))
			}
		}
		if in.Class.IsMem() {
			lines[in.Addr>>6] = struct{}{}
		}
		if in.HasDest() {
			v := &values[in.Dest]
			if v.produced {
				reads := v.reads
				if reads > 16 {
					reads = 16
				}
				c.ReadsPerValue.Add(int(reads))
			}
			values[in.Dest] = live{bornAt: i, produced: true}
			c.ValuesProduced++
		}
	}
	c.DistinctLines = len(lines)
	return c
}

// ReadAtMostOnce returns the fraction of produced values read zero or one
// times — the paper measures 88% (int) and 85% (FP).
func (c *Characterization) ReadAtMostOnce() float64 {
	t := c.ReadsPerValue.Total()
	if t == 0 {
		return 0
	}
	return float64(c.ReadsPerValue.Count(0)+c.ReadsPerValue.Count(1)) / float64(t)
}

// NeverRead returns the fraction of produced values never read.
func (c *Characterization) NeverRead() float64 {
	t := c.ReadsPerValue.Total()
	if t == 0 {
		return 0
	}
	return float64(c.ReadsPerValue.Count(0)) / float64(t)
}

// String renders a human-readable report.
func (c *Characterization) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "instructions: %d\n", c.Instructions)
	type mc struct {
		cls isa.Class
		n   uint64
	}
	var mix []mc
	for cl := isa.Class(0); cl < isa.NumClasses; cl++ {
		if c.Mix[cl] > 0 {
			mix = append(mix, mc{cl, c.Mix[cl]})
		}
	}
	sort.Slice(mix, func(i, j int) bool { return mix[i].n > mix[j].n })
	b.WriteString("mix:")
	for _, m := range mix {
		fmt.Fprintf(&b, " %s %.1f%%", m.cls, 100*float64(m.n)/float64(c.Instructions))
	}
	b.WriteByte('\n')
	if c.Branches > 0 {
		fmt.Fprintf(&b, "branches: %.1f%% of instructions, %.1f%% taken\n",
			100*float64(c.Branches)/float64(c.Instructions),
			100*float64(c.TakenBranches)/float64(c.Branches))
	}
	fmt.Fprintf(&b, "values: %d produced; %.1f%% read ≤ once (%.1f%% never read); mean reads/value %.2f\n",
		c.ValuesProduced, 100*c.ReadAtMostOnce(), 100*c.NeverRead(), c.ReadsPerValue.Mean())
	fmt.Fprintf(&b, "dependence distance: median %d, p90 %d dynamic instructions\n",
		c.DepDistance.Percentile(50), c.DepDistance.Percentile(90))
	fmt.Fprintf(&b, "memory: %d distinct 64B lines touched\n", c.DistinctLines)
	return b.String()
}
