package trace

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"

	"repro/internal/isa"
)

// This file implements a compact binary capture/replay format for dynamic
// instruction streams, so that a workload (synthetic or externally
// produced) can be stored and simulated repeatedly with exact fidelity.
//
// Format: a 8-byte magic+version header, then one record per instruction:
//
//	flags  byte   — class (low 4 bits), taken (bit 4), hasAddr (bit 5),
//	                hasTarget (bit 6)
//	pc     uvarint (delta-encoded against the previous PC)
//	dest   byte   — logical register + 1 (0 = none)
//	src1   byte
//	src2   byte
//	addr   uvarint (present iff hasAddr; delta-encoded per instruction PC)
//	target uvarint (present iff hasTarget)
//
// The encoding is stdlib-only (encoding/binary varints) and typically
// takes 5–8 bytes per instruction.

// traceMagic identifies trace files; the last byte is the format version.
var traceMagic = [8]byte{'r', 'f', 't', 'r', 'a', 'c', 'e', 1}

// Writer serializes instructions to an io.Writer.
type Writer struct {
	w      *bufio.Writer
	lastPC uint64
	count  uint64
	buf    []byte
}

// NewWriter writes the header and returns a trace writer.
func NewWriter(w io.Writer) (*Writer, error) {
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(traceMagic[:]); err != nil {
		return nil, fmt.Errorf("trace: writing header: %w", err)
	}
	return &Writer{w: bw, buf: make([]byte, 0, 32)}, nil
}

func zigzag(v int64) uint64 { return uint64(v<<1) ^ uint64(v>>63) }

func unzigzag(u uint64) int64 { return int64(u>>1) ^ -int64(u&1) }

// Write appends one instruction.
func (t *Writer) Write(in *isa.Instr) error {
	flags := byte(in.Class) & 0x0f
	if in.Taken {
		flags |= 1 << 4
	}
	hasAddr := in.Class.IsMem()
	if hasAddr {
		flags |= 1 << 5
	}
	hasTarget := in.Class == isa.Branch && in.Target != 0
	if hasTarget {
		flags |= 1 << 6
	}
	t.buf = t.buf[:0]
	t.buf = append(t.buf, flags)
	t.buf = binary.AppendUvarint(t.buf, zigzag(int64(in.PC)-int64(t.lastPC)))
	t.buf = append(t.buf, regByte(in.Dest), regByte(in.Src1), regByte(in.Src2))
	if hasAddr {
		t.buf = binary.AppendUvarint(t.buf, in.Addr)
	}
	if hasTarget {
		t.buf = binary.AppendUvarint(t.buf, in.Target)
	}
	t.lastPC = in.PC
	t.count++
	if _, err := t.w.Write(t.buf); err != nil {
		return fmt.Errorf("trace: writing instruction %d: %w", t.count, err)
	}
	return nil
}

// Count returns the number of instructions written.
func (t *Writer) Count() uint64 { return t.count }

// Flush completes the stream.
func (t *Writer) Flush() error {
	if err := t.w.Flush(); err != nil {
		return fmt.Errorf("trace: flush: %w", err)
	}
	return nil
}

func regByte(r isa.Reg) byte {
	if !r.Valid() {
		return 0
	}
	return byte(r) + 1
}

func byteReg(b byte) isa.Reg {
	if b == 0 {
		return isa.RegNone
	}
	return isa.Reg(b) - 1
}

// Reader replays a serialized trace. It implements isa.Stream; Next panics
// on a malformed stream and wraps io.EOF into ErrEndOfTrace through Err
// after the stream ends — callers that need graceful endings use Read.
type Reader struct {
	r      *bufio.Reader
	lastPC uint64
	cur    isa.Instr
	count  uint64
}

// NewReader validates the header and returns a trace reader.
func NewReader(r io.Reader) (*Reader, error) {
	br := bufio.NewReader(r)
	var magic [8]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return nil, fmt.Errorf("trace: reading header: %w", err)
	}
	if magic != traceMagic {
		return nil, fmt.Errorf("trace: bad magic %q", magic[:])
	}
	return &Reader{r: br}, nil
}

// Read returns the next instruction, or io.EOF at a clean end of stream.
func (t *Reader) Read() (*isa.Instr, error) {
	flags, err := t.r.ReadByte()
	if err != nil {
		if err == io.EOF {
			return nil, io.EOF
		}
		return nil, fmt.Errorf("trace: instruction %d: %w", t.count+1, err)
	}
	dpc, err := binary.ReadUvarint(t.r)
	if err != nil {
		return nil, fmt.Errorf("trace: instruction %d pc: %w", t.count+1, err)
	}
	var regs [3]byte
	if _, err := io.ReadFull(t.r, regs[:]); err != nil {
		return nil, fmt.Errorf("trace: instruction %d regs: %w", t.count+1, err)
	}
	t.cur = isa.Instr{
		PC:    uint64(int64(t.lastPC) + unzigzag(dpc)),
		Class: isa.Class(flags & 0x0f),
		Taken: flags&(1<<4) != 0,
		Dest:  byteReg(regs[0]),
		Src1:  byteReg(regs[1]),
		Src2:  byteReg(regs[2]),
	}
	if flags&(1<<5) != 0 {
		if t.cur.Addr, err = binary.ReadUvarint(t.r); err != nil {
			return nil, fmt.Errorf("trace: instruction %d addr: %w", t.count+1, err)
		}
	}
	if flags&(1<<6) != 0 {
		if t.cur.Target, err = binary.ReadUvarint(t.r); err != nil {
			return nil, fmt.Errorf("trace: instruction %d target: %w", t.count+1, err)
		}
	}
	t.lastPC = t.cur.PC
	t.count++
	return &t.cur, nil
}

// Next implements isa.Stream; it panics at end of stream (simulations must
// be sized within the capture — use Read for graceful handling).
func (t *Reader) Next() *isa.Instr {
	in, err := t.Read()
	if err != nil {
		panic(fmt.Sprintf("trace: stream ended after %d instructions: %v", t.count, err))
	}
	return in
}

// Count returns the number of instructions read so far.
func (t *Reader) Count() uint64 { return t.count }

// Capture serializes n instructions of stream into w.
func Capture(w io.Writer, stream isa.Stream, n uint64) error {
	tw, err := NewWriter(w)
	if err != nil {
		return err
	}
	for i := uint64(0); i < n; i++ {
		if err := tw.Write(stream.Next()); err != nil {
			return err
		}
	}
	return tw.Flush()
}
