// Package trace generates the synthetic dynamic instruction streams that
// substitute for the paper's SPEC95 workloads.
//
// Each workload is described by a Profile and realized as a randomly
// generated *static* program — a tree of counted loops whose bodies contain
// ALU/FP/memory instructions, data-dependent forward branches, and loop
// back-edges — which is then *walked* to produce the dynamic stream. This
// two-phase construction matters: because branches, registers, and memory
// references belong to static instructions with fixed PCs, the branch
// predictor, the instruction cache, and the register-dependence structure
// all see realistic, learnable patterns rather than white noise.
//
// Generation and walking are fully deterministic for a given profile, so
// every register file architecture is evaluated on bit-identical
// instruction sequences.
package trace

import (
	"fmt"
	"sync"

	"repro/internal/isa"
	"repro/internal/rng"
)

// Profile parameterizes one synthetic workload.
type Profile struct {
	// Name is the benchmark name (SPEC95 proxy).
	Name string
	// FP marks SpecFP95 proxies (affects instruction mix defaults and
	// reporting groups).
	FP bool

	// StaticInstrs is the approximate static code size in instructions;
	// it determines the I-cache footprint (4 bytes per instruction).
	StaticInstrs int
	// MaxLoopDepth bounds loop nesting.
	MaxLoopDepth int
	// BodyMean is the mean loop-body length in items.
	BodyMean int
	// TripMean is the mean loop trip count.
	TripMean int

	// Instruction-mix weights for non-branch instructions (relative).
	WIntALU, WIntMul, WIntDiv, WFPALU, WFPDiv, WLoad, WStore float64

	// BranchEvery inserts roughly one conditional forward branch per this
	// many body items (in addition to loop back-edges).
	BranchEvery int
	// FracRandomBranch is the fraction of forward branches whose outcome
	// is data-dependent (unlearnable); the rest are strongly biased.
	FracRandomBranch float64
	// RandomBias is P(taken) for data-dependent branches.
	RandomBias float64

	// DepDistP is the geometric parameter for source-register selection:
	// larger values pick more recent producers (shorter dependence
	// distances, less ILP).
	DepDistP float64
	// DestPool is the number of distinct destination registers cycled per
	// class (small pools tighten dependence chains).
	DestPool int

	// FracStream is the fraction of static memory instructions with
	// streaming (sequential) access; the rest address randomly within
	// WorkingSet bytes.
	FracStream float64
	// WorkingSet is the data working-set size in bytes (power of two).
	WorkingSet int

	// Seed fixes the generator stream.
	Seed uint64
}

// Validate reports a configuration error, or nil.
func (p *Profile) Validate() error {
	switch {
	case p.Name == "":
		return fmt.Errorf("trace: profile has no name")
	case p.StaticInstrs < 8:
		return fmt.Errorf("trace: %s: StaticInstrs %d too small", p.Name, p.StaticInstrs)
	case p.MaxLoopDepth < 1:
		return fmt.Errorf("trace: %s: MaxLoopDepth must be ≥ 1", p.Name)
	case p.BodyMean < 2:
		return fmt.Errorf("trace: %s: BodyMean must be ≥ 2", p.Name)
	case p.TripMean < 2:
		return fmt.Errorf("trace: %s: TripMean must be ≥ 2", p.Name)
	case p.DepDistP <= 0 || p.DepDistP > 1:
		return fmt.Errorf("trace: %s: DepDistP %v out of (0,1]", p.Name, p.DepDistP)
	case p.DestPool < 2:
		return fmt.Errorf("trace: %s: DestPool must be ≥ 2", p.Name)
	case p.WorkingSet <= 0 || p.WorkingSet&(p.WorkingSet-1) != 0:
		return fmt.Errorf("trace: %s: WorkingSet must be a positive power of two", p.Name)
	case p.BranchEvery < 1:
		return fmt.Errorf("trace: %s: BranchEvery must be ≥ 1", p.Name)
	}
	if p.WIntALU+p.WIntMul+p.WIntDiv+p.WFPALU+p.WFPDiv+p.WLoad+p.WStore <= 0 {
		return fmt.Errorf("trace: %s: instruction mix is empty", p.Name)
	}
	return nil
}

// hotRegionBytes and hotRegionFrac parameterize the two-level locality of
// random memory accesses: hotRegionFrac of them fall within a
// hotRegionBytes hot subset of the working set.
const (
	hotRegionBytes = 16 << 10
	hotRegionFrac  = 0.9
	hotRegionBase  = 0x80000
)

// memMode distinguishes streaming from random accesses.
type memMode uint8

const (
	memNone memMode = iota
	memStream
	memRandom
)

// brKind distinguishes branch roles.
type brKind uint8

const (
	brNone brKind = iota
	brLoop        // loop back-edge: taken while iterations remain
	brIf          // forward hammock branch: taken skips the then-part
)

// sInstr is one static instruction.
type sInstr struct {
	pc         uint64
	class      isa.Class
	dest       isa.Reg
	src1, src2 isa.Reg

	kind   brKind
	target uint64
	pTaken float64
	skip   int // brIf: items to skip when taken

	mode   memMode
	base   uint64
	stride uint64
}

// item is one position in a block: a static instruction or a nested loop.
type item struct {
	instr int32 // index into program.instrs, or -1
	loop  *loop
}

type loop struct {
	body     []item
	backedge int32 // index of the back-edge branch
	tripMean int
	headPC   uint64
}

// program is the generated static code.
type program struct {
	instrs []sInstr
	top    *loop // the whole program wrapped in an infinite loop
}

// Generator walks a generated program, producing the dynamic stream.
// It implements isa.Stream.
type Generator struct {
	prof Profile
	prog *program
	r    *rng.PCG

	// walker state
	frames  []frame
	offsets []uint64 // per static mem instruction: current stream offset
	cur     isa.Instr

	emitted uint64
}

type frame struct {
	l         *loop
	pos       int
	remaining int
	atEdge    bool // body finished; back-edge branch is next
}

// progCache memoizes generated static programs by profile. A program is a
// pure function of its Profile, is immutable once built, and is read-only
// during walking, so concurrent Generators can share one copy. Building
// dominates the fixed cost of short simulations (large-footprint profiles
// like gcc spend ~10ms here), and sweeps re-run the same 18 profiles
// hundreds of times, so memoization pays for itself immediately. The cache
// is bounded by the set of distinct profiles used in the process.
var (
	progMu    sync.Mutex
	progCache = map[Profile]*program{}
)

// buildProgram returns the (possibly cached) static program for prof.
func buildProgram(prof Profile) *program {
	progMu.Lock()
	prog, ok := progCache[prof]
	progMu.Unlock()
	if ok {
		return prog
	}
	// Built outside the lock: concurrent builders for the same profile
	// produce identical programs, so a duplicated build is wasted work,
	// never an inconsistency.
	prog = newBuilder(prof).build()
	progMu.Lock()
	progCache[prof] = prog
	progMu.Unlock()
	return prog
}

// New generates the static program for prof and returns a walker over its
// dynamic instruction stream. It panics on invalid profiles (profiles are
// compiled-in experiment definitions, not user input).
func New(prof Profile) *Generator {
	if err := prof.Validate(); err != nil {
		panic(err)
	}
	prog := buildProgram(prof)
	g := &Generator{
		prof:    prof,
		prog:    prog,
		r:       rng.New(prof.Seed, 0xD1CE),
		offsets: make([]uint64, len(prog.instrs)),
	}
	g.pushLoop(prog.top)
	return g
}

// Profile returns the generator's profile.
func (g *Generator) Profile() Profile { return g.prof }

// StaticSize returns the number of static instructions generated.
func (g *Generator) StaticSize() int { return len(g.prog.instrs) }

// Emitted returns the number of dynamic instructions produced so far.
func (g *Generator) Emitted() uint64 { return g.emitted }

func (g *Generator) pushLoop(l *loop) {
	g.frames = append(g.frames, frame{l: l, remaining: g.drawTrips(l.tripMean)})
}

// drawTrips returns the trip count for one loop entry. Trip counts are
// fixed per static loop — like the compile-time bounds of real loops — so
// a history-based predictor can learn short loops and pays one exit
// misprediction per entry on long ones, matching real codes.
func (g *Generator) drawTrips(mean int) int {
	if mean <= 1 {
		return 1
	}
	return mean
}

// Next implements isa.Stream.
func (g *Generator) Next() *isa.Instr {
	for {
		f := &g.frames[len(g.frames)-1]
		if f.atEdge || f.pos >= len(f.l.body) {
			// Emit the back-edge branch for this iteration.
			f.atEdge = false
			si := &g.prog.instrs[f.l.backedge]
			taken := f.remaining > 1
			g.emit(si, taken)
			if taken {
				f.remaining--
				f.pos = 0
			} else {
				// Loop exits; top-level loop restarts with fresh trips.
				if len(g.frames) == 1 {
					f.remaining = g.drawTrips(f.l.tripMean)
					if f.remaining < 1 {
						f.remaining = 1
					}
					f.pos = 0
					// Top back-edge is always taken in the emitted stream:
					// rewrite the outcome for predictability.
					g.cur.Taken = true
				} else {
					g.frames = g.frames[:len(g.frames)-1]
				}
			}
			return &g.cur
		}
		it := f.l.body[f.pos]
		if it.loop != nil {
			f.pos++
			g.pushLoop(it.loop)
			continue
		}
		si := &g.prog.instrs[it.instr]
		f.pos++
		if si.kind == brIf {
			taken := g.r.Bernoulli(si.pTaken)
			if taken {
				f.pos += si.skip
				if f.pos > len(f.l.body) {
					f.pos = len(f.l.body)
				}
			}
			g.emit(si, taken)
			return &g.cur
		}
		g.emit(si, false)
		return &g.cur
	}
}

// emit fills g.cur from the static instruction, resolving dynamic fields
// (branch outcome, memory address).
func (g *Generator) emit(si *sInstr, taken bool) {
	g.emitted++
	g.cur = isa.Instr{
		PC:    si.pc,
		Class: si.class,
		Dest:  si.dest,
		Src1:  si.src1,
		Src2:  si.src2,
	}
	if si.class == isa.Branch {
		g.cur.Taken = taken
		g.cur.Target = si.target
	}
	if si.mode != memNone {
		idx := int32(si.pc-pcBase) / 4
		switch si.mode {
		case memStream:
			g.cur.Addr = si.base + g.offsets[idx]
			g.offsets[idx] = (g.offsets[idx] + si.stride) & uint64(g.prof.WorkingSet-1)
		case memRandom:
			// Random accesses follow a two-level locality model: most land
			// in a single shared hot region (temporal reuse, like the hot
			// part of a real heap), the rest anywhere in the working set
			// (capacity misses).
			if g.prof.WorkingSet > hotRegionBytes && g.r.Bernoulli(hotRegionFrac) {
				g.cur.Addr = hotRegionBase + uint64(g.r.Intn(hotRegionBytes))&^7
			} else {
				g.cur.Addr = si.base + uint64(g.r.Intn(g.prof.WorkingSet))&^7
			}
		}
	}
}
