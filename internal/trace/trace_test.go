package trace

import (
	"testing"
	"testing/quick"

	"repro/internal/bpred"
	"repro/internal/isa"
)

func testProfile() Profile {
	p := Profile{
		Name: "test", StaticInstrs: 500, MaxLoopDepth: 2, BodyMean: 8, TripMean: 10,
		BranchEvery: 4, FracRandomBranch: 0.2, RandomBias: 0.5,
		DepDistP: 0.5, DestPool: 8, FracStream: 0.5, WorkingSet: 1 << 16, Seed: 42,
	}
	intMix(&p)
	return p
}

func TestValidateCatchesBadProfiles(t *testing.T) {
	mutations := []func(*Profile){
		func(p *Profile) { p.Name = "" },
		func(p *Profile) { p.StaticInstrs = 2 },
		func(p *Profile) { p.MaxLoopDepth = 0 },
		func(p *Profile) { p.BodyMean = 1 },
		func(p *Profile) { p.TripMean = 1 },
		func(p *Profile) { p.DepDistP = 0 },
		func(p *Profile) { p.DepDistP = 1.5 },
		func(p *Profile) { p.DestPool = 1 },
		func(p *Profile) { p.WorkingSet = 1000 }, // not a power of two
		func(p *Profile) { p.BranchEvery = 0 },
		func(p *Profile) {
			p.WIntALU, p.WIntMul, p.WIntDiv, p.WLoad, p.WStore = 0, 0, 0, 0, 0
		},
	}
	for i, mut := range mutations {
		p := testProfile()
		mut(&p)
		if err := p.Validate(); err == nil {
			t.Errorf("mutation %d not caught by Validate", i)
		}
	}
	p := testProfile()
	if err := p.Validate(); err != nil {
		t.Errorf("valid profile rejected: %v", err)
	}
}

func TestDeterministicStream(t *testing.T) {
	a, b := New(testProfile()), New(testProfile())
	for i := 0; i < 5000; i++ {
		x, y := a.Next(), b.Next()
		if *x != *y {
			t.Fatalf("instruction %d differs: %v vs %v", i, x, y)
		}
	}
}

func TestSeedChangesProgram(t *testing.T) {
	p1, p2 := testProfile(), testProfile()
	p2.Seed = 43
	a, b := New(p1), New(p2)
	diff := 0
	for i := 0; i < 1000; i++ {
		if *a.Next() != *b.Next() {
			diff++
		}
	}
	if diff < 100 {
		t.Errorf("different seeds produced near-identical streams (%d/1000 differ)", diff)
	}
}

func TestStreamRunsForever(t *testing.T) {
	g := New(testProfile())
	for i := 0; i < 200000; i++ {
		if g.Next() == nil {
			t.Fatal("stream ended")
		}
	}
	if g.Emitted() != 200000 {
		t.Errorf("Emitted = %d", g.Emitted())
	}
}

func TestStaticSizeNearBudget(t *testing.T) {
	p := testProfile()
	g := New(p)
	size := g.StaticSize()
	// Branches and loop scaffolding are not budgeted, so allow headroom.
	if size < p.StaticInstrs/2 || size > p.StaticInstrs*3 {
		t.Errorf("static size %d far from budget %d", size, p.StaticInstrs)
	}
}

func TestInstructionFieldsWellFormed(t *testing.T) {
	g := New(testProfile())
	for i := 0; i < 20000; i++ {
		in := g.Next()
		if in.Class >= isa.NumClasses {
			t.Fatalf("bad class %d", in.Class)
		}
		switch in.Class {
		case isa.Branch:
			if in.Dest.Valid() {
				t.Fatal("branch with destination")
			}
			if in.Taken && in.Target == 0 {
				t.Fatal("taken branch without target")
			}
		case isa.Store:
			if in.Dest.Valid() {
				t.Fatal("store with destination")
			}
			if in.Addr == 0 {
				t.Fatal("store without address")
			}
		case isa.Load:
			if !in.Dest.Valid() {
				t.Fatal("load without destination")
			}
			if in.Addr == 0 {
				t.Fatal("load without address")
			}
		default:
			if !in.Dest.Valid() {
				t.Fatalf("%v without destination", in.Class)
			}
		}
		if in.Src1.Valid() && !in.Src1.Valid() {
			t.Fatal("unreachable")
		}
		if in.PC < pcBase {
			t.Fatalf("PC %#x below base", in.PC)
		}
	}
}

func TestMixRoughlyHonored(t *testing.T) {
	g := New(testProfile())
	var counts [isa.NumClasses]int
	const n = 100000
	for i := 0; i < n; i++ {
		counts[g.Next().Class]++
	}
	frac := func(c isa.Class) float64 { return float64(counts[c]) / n }
	if f := frac(isa.IntALU); f < 0.25 || f > 0.65 {
		t.Errorf("IntALU fraction %.2f out of band", f)
	}
	if f := frac(isa.Load); f < 0.10 || f > 0.40 {
		t.Errorf("Load fraction %.2f out of band", f)
	}
	if f := frac(isa.Branch); f < 0.08 || f > 0.40 {
		t.Errorf("Branch fraction %.2f out of band", f)
	}
}

func TestFPProfileEmitsFPOps(t *testing.T) {
	prof, ok := ByName("swim")
	if !ok {
		t.Fatal("swim profile missing")
	}
	g := New(prof)
	fp := 0
	const n = 50000
	for i := 0; i < n; i++ {
		if g.Next().Class.IsFP() {
			fp++
		}
	}
	if f := float64(fp) / n; f < 0.2 {
		t.Errorf("FP fraction %.2f too low for an FP benchmark", f)
	}
}

func TestBranchPredictabilityOrdering(t *testing.T) {
	// go (unpredictable) must mispredict far more than mgrid (regular).
	rate := func(name string) float64 {
		prof, ok := ByName(name)
		if !ok {
			t.Fatalf("profile %s missing", name)
		}
		g := New(prof)
		pred := bpred.NewGshare(16)
		for i := 0; i < 200000; i++ {
			in := g.Next()
			if in.Class == isa.Branch {
				pred.Update(in.PC, in.Taken)
			}
		}
		return pred.MispredictRate()
	}
	goRate, mgridRate := rate("go"), rate("mgrid")
	if goRate < 2*mgridRate {
		t.Errorf("go mispredict %.3f not clearly above mgrid %.3f", goRate, mgridRate)
	}
	if goRate < 0.04 {
		t.Errorf("go mispredict rate %.3f unrealistically low", goRate)
	}
	if mgridRate > 0.05 {
		t.Errorf("mgrid mispredict rate %.3f unrealistically high", mgridRate)
	}
}

func TestLoopBackedgesMostlyTaken(t *testing.T) {
	g := New(testProfile())
	taken, total := 0, 0
	for i := 0; i < 100000; i++ {
		in := g.Next()
		if in.Class == isa.Branch && in.Taken {
			taken++
		}
		if in.Class == isa.Branch {
			total++
		}
	}
	if total == 0 {
		t.Fatal("no branches emitted")
	}
	f := float64(taken) / float64(total)
	if f < 0.2 || f > 0.95 {
		t.Errorf("taken fraction %.2f implausible", f)
	}
}

func TestAllProfilesValidAndDistinct(t *testing.T) {
	all := All()
	if len(all) != 18 {
		t.Fatalf("expected 18 profiles, got %d", len(all))
	}
	names := map[string]bool{}
	seeds := map[uint64]bool{}
	for _, p := range all {
		if err := p.Validate(); err != nil {
			t.Errorf("%s: %v", p.Name, err)
		}
		if names[p.Name] {
			t.Errorf("duplicate name %s", p.Name)
		}
		names[p.Name] = true
		if seeds[p.Seed] {
			t.Errorf("duplicate seed %d (%s)", p.Seed, p.Name)
		}
		seeds[p.Seed] = true
	}
	if len(SpecInt95()) != 8 || len(SpecFP95()) != 10 {
		t.Error("suite sizes wrong")
	}
}

func TestByName(t *testing.T) {
	if _, ok := ByName("gcc"); !ok {
		t.Error("gcc not found")
	}
	if _, ok := ByName("nonexistent"); ok {
		t.Error("found a benchmark that should not exist")
	}
}

func TestAllProfilesProduceStreams(t *testing.T) {
	for _, p := range All() {
		g := New(p)
		var branches, mems int
		for i := 0; i < 20000; i++ {
			in := g.Next()
			if in.Class == isa.Branch {
				branches++
			}
			if in.Class.IsMem() {
				mems++
			}
		}
		if branches == 0 {
			t.Errorf("%s: no branches", p.Name)
		}
		if mems == 0 {
			t.Errorf("%s: no memory operations", p.Name)
		}
	}
}

func TestStreamingAddressesAdvance(t *testing.T) {
	p := testProfile()
	p.FracStream = 1.0
	g := New(p)
	seen := map[uint64][]uint64{} // PC -> addresses
	for i := 0; i < 50000; i++ {
		in := g.Next()
		if in.Class.IsMem() {
			seen[in.PC] = append(seen[in.PC], in.Addr)
		}
	}
	streams := 0
	for _, addrs := range seen {
		if len(addrs) < 3 {
			continue
		}
		sequential := true
		for i := 1; i < len(addrs); i++ {
			d := int64(addrs[i]) - int64(addrs[i-1])
			if d != 8 && d < 0 { // allow wraparound resets
				sequential = false
				break
			}
		}
		if sequential {
			streams++
		}
	}
	if streams == 0 {
		t.Error("no streaming access patterns detected")
	}
}

// Property: every generated profile walk stays within its logical register
// name space and never emits an instruction sourcing an FP register into an
// integer-only slot (branch/address registers are integer).
func TestQuickRegisterDiscipline(t *testing.T) {
	f := func(seed uint64) bool {
		p := testProfile()
		p.Seed = seed
		g := New(p)
		for i := 0; i < 2000; i++ {
			in := g.Next()
			if in.Class == isa.Branch || in.Class.IsMem() {
				if in.Src1.Valid() && in.Src1.IsFP() {
					return false // address/condition registers are integer
				}
			}
			for _, r := range []isa.Reg{in.Dest, in.Src1, in.Src2} {
				if r != isa.RegNone && !r.Valid() {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}
