package trace

import (
	"repro/internal/isa"
	"repro/internal/rng"
)

// pcBase is the address of the first static instruction.
const pcBase = 0x10000

// builder generates the static program for a profile.
type builder struct {
	prof Profile
	r    *rng.PCG
	prog *program

	// recentInt/recentFP track destination registers in emission order so
	// sources can be drawn with a geometric recency distribution;
	// freshInt/freshFP track the not-yet-consumed subset. Sources are
	// mostly drawn consume-once from the fresh lists: the paper's register
	// usage measurements (88% of values read at most once, a significant
	// fraction never read) are a premise of the register file cache, and
	// the synthetic codes must reproduce them.
	recentInt []isa.Reg
	recentFP  []isa.Reg
	freshInt  []isa.Reg
	freshFP   []isa.Reg

	nextIntDest int
	nextFPDest  int
	nextBase    uint64

	mixCum []float64
	mixCls []isa.Class
}

func newBuilder(prof Profile) *builder {
	b := &builder{
		prof: prof,
		r:    rng.New(prof.Seed, 0xB111D),
		prog: &program{},
	}
	// Seed recency lists so early instructions have producers to source.
	for i := 0; i < 4; i++ {
		b.recentInt = append(b.recentInt, isa.IntReg(i))
		b.recentFP = append(b.recentFP, isa.FPReg(i))
		b.freshInt = append(b.freshInt, isa.IntReg(i))
		b.freshFP = append(b.freshFP, isa.FPReg(i))
	}
	// Build the cumulative mix table.
	weights := []struct {
		w float64
		c isa.Class
	}{
		{prof.WIntALU, isa.IntALU}, {prof.WIntMul, isa.IntMul},
		{prof.WIntDiv, isa.IntDiv}, {prof.WFPALU, isa.FPALU},
		{prof.WFPDiv, isa.FPDiv}, {prof.WLoad, isa.Load},
		{prof.WStore, isa.Store},
	}
	sum := 0.0
	for _, w := range weights {
		if w.w <= 0 {
			continue
		}
		sum += w.w
		b.mixCum = append(b.mixCum, sum)
		b.mixCls = append(b.mixCls, w.c)
	}
	for i := range b.mixCum {
		b.mixCum[i] /= sum
	}
	return b
}

// build generates the whole program: the top-level infinite loop whose body
// fills the static-size budget.
func (b *builder) build() *program {
	budget := b.prof.StaticInstrs
	top := &loop{tripMean: 1 << 20} // effectively infinite; walker re-arms it
	top.headPC = b.nextPC()
	for budget > 0 {
		top.body = append(top.body, b.buildBlock(1, &budget)...)
	}
	top.backedge = b.addBackedge(top)
	b.prog.top = top
	return b.prog
}

// nextPC returns the PC the next emitted static instruction will get.
func (b *builder) nextPC() uint64 { return pcBase + uint64(len(b.prog.instrs))*4 }

// buildBlock emits items until the budget share for this block is
// exhausted. Nested loops and forward hammocks are inserted on the way.
func (b *builder) buildBlock(depth int, budget *int) []item {
	var items []item
	bodyLen := b.r.Geometric(1/float64(b.prof.BodyMean)) + 1
	sinceBranch := 0
	for i := 0; i < bodyLen && *budget > 0; i++ {
		// Nested loop?
		if depth < b.prof.MaxLoopDepth && *budget > 3*b.prof.BodyMean && b.r.Bernoulli(0.12) {
			l := &loop{tripMean: b.drawTripMean()}
			l.headPC = b.nextPC()
			l.body = b.buildBlock(depth+1, budget)
			l.backedge = b.addBackedge(l)
			items = append(items, item{instr: -1, loop: l})
			continue
		}
		// Forward hammock branch?
		sinceBranch++
		if sinceBranch >= b.prof.BranchEvery && *budget > 2 && b.r.Bernoulli(0.7) {
			sinceBranch = 0
			brIdx := b.addInstr(b.newBranch())
			items = append(items, item{instr: brIdx})
			// Then-part: 1..4 instructions skipped when taken.
			k := 1 + b.r.Intn(4)
			skipped := 0
			for j := 0; j < k && *budget > 0; j++ {
				idx := b.addInstr(b.newBodyInstr())
				items = append(items, item{instr: idx})
				*budget--
				skipped++
			}
			si := &b.prog.instrs[brIdx]
			si.skip = skipped
			si.target = b.nextPC() // join point
			continue
		}
		idx := b.addInstr(b.newBodyInstr())
		items = append(items, item{instr: idx})
		*budget--
	}
	if len(items) == 0 {
		idx := b.addInstr(b.newBodyInstr())
		items = append(items, item{instr: idx})
		if *budget > 0 {
			*budget--
		}
	}
	return items
}

func (b *builder) drawTripMean() int {
	m := b.prof.TripMean/2 + b.r.Intn(b.prof.TripMean)
	if m < 2 {
		m = 2
	}
	return m
}

// addBackedge appends the loop's back-edge branch and records its index.
func (b *builder) addBackedge(l *loop) int32 {
	br := sInstr{
		class:  isa.Branch,
		dest:   isa.RegNone,
		src1:   b.pickSource(false),
		src2:   isa.RegNone,
		kind:   brLoop,
		target: l.headPC,
	}
	return b.addInstr(br)
}

// newBranch builds a forward conditional branch. A FracRandomBranch
// fraction of branches are data-dependent (outcome drawn per execution with
// probability RandomBias); the rest are deterministic — always-not-taken
// mostly, always-taken sometimes — like the strongly biased branches that
// dominate real codes and that history predictors learn perfectly.
func (b *builder) newBranch() sInstr {
	var p float64 // deterministic not-taken
	if b.r.Bernoulli(0.25) {
		p = 1 // deterministic taken
	}
	if b.r.Bernoulli(b.prof.FracRandomBranch) {
		p = b.prof.RandomBias
	}
	return sInstr{
		class:  isa.Branch,
		dest:   isa.RegNone,
		src1:   b.pickSource(false),
		src2:   isa.RegNone,
		kind:   brIf,
		pTaken: p,
	}
}

// newBodyInstr draws a non-branch instruction from the profile mix.
func (b *builder) newBodyInstr() sInstr {
	cls := b.drawClass()
	si := sInstr{class: cls, dest: isa.RegNone, src1: isa.RegNone, src2: isa.RegNone}
	switch cls {
	case isa.IntALU, isa.IntMul, isa.IntDiv:
		si.src1 = b.pickSource(false)
		if b.r.Bernoulli(0.45) { // the rest use immediates, like real code
			si.src2 = b.pickSource(false)
		}
		si.dest = b.pickIntDest()
	case isa.FPALU, isa.FPDiv:
		si.src1 = b.pickSource(true)
		if b.r.Bernoulli(0.7) {
			si.src2 = b.pickSource(true)
		}
		si.dest = b.pickFPDest()
	case isa.Load:
		si.src1 = b.pickAddrReg()
		if b.fpData() {
			si.dest = b.pickFPDest()
		} else {
			si.dest = b.pickIntDest()
		}
		b.setMem(&si)
	case isa.Store:
		si.src1 = b.pickAddrReg()
		si.src2 = b.pickSource(b.fpData())
		b.setMem(&si)
	}
	return si
}

// pickAddrReg draws an address register. Real memory addresses come mostly
// from base pointers and induction variables that are available early —
// which is what lets loads disambiguate against prior stores quickly; a
// minority chase computed pointers (critical in li-like codes).
func (b *builder) pickAddrReg() isa.Reg {
	if b.r.Bernoulli(0.7) {
		return isa.IntReg(30 + b.r.Intn(2))
	}
	return b.pickSource(false)
}

// pickSource draws a source register. Most draws consume a fresh (not yet
// read) recent value — real codes read 85–90% of values exactly once (the
// paper's Section 3 measurement) — while the rest re-read an arbitrary
// recent value.
func (b *builder) pickSource(fp bool) isa.Reg {
	fresh := &b.freshInt
	recent := b.recentInt
	if fp {
		fresh = &b.freshFP
		recent = b.recentFP
	}
	if len(*fresh) > 0 && b.r.Bernoulli(0.85) {
		d := b.r.Geometric(b.prof.DepDistP)
		if d > len(*fresh) {
			d = len(*fresh)
		}
		idx := len(*fresh) - d
		r := (*fresh)[idx]
		*fresh = append((*fresh)[:idx], (*fresh)[idx+1:]...)
		return r
	}
	// Re-reads concentrate on long-lived "global" registers (stack and
	// global pointers in real code), matching the paper's observation that
	// the few multiply-read values are stable ones. FP codes re-read
	// almost exclusively through such stable registers (loop constants);
	// integer codes re-read transient values more often — which is why the
	// paper's register file cache costs integer codes more IPC than FP.
	globalFrac := 0.55
	if b.prof.FP {
		globalFrac = 0.94
	}
	if b.r.Bernoulli(globalFrac) {
		if fp {
			return isa.FPReg(30 + b.r.Intn(2))
		}
		return isa.IntReg(30 + b.r.Intn(2))
	}
	d := b.r.Geometric(b.prof.DepDistP)
	if d > len(recent) {
		d = len(recent)
	}
	return recent[len(recent)-d]
}

// fpData reports whether a memory value should live in the FP file; FP
// profiles move mostly FP data.
func (b *builder) fpData() bool {
	if b.prof.FP {
		return b.r.Bernoulli(0.75)
	}
	return b.r.Bernoulli(0.05)
}

func (b *builder) setMem(si *sInstr) {
	si.base = 0x100000 + b.nextBase
	if b.r.Bernoulli(b.prof.FracStream) {
		si.mode = memStream
		si.stride = 8
		b.nextBase += 1 << 12 // separate streams
	} else {
		si.mode = memRandom
		b.nextBase += 64
	}
	b.nextBase &= 1<<28 - 1
}

func (b *builder) drawClass() isa.Class {
	x := b.r.Float64()
	for i, c := range b.mixCum {
		if x < c {
			return b.mixCls[i]
		}
	}
	return b.mixCls[len(b.mixCls)-1]
}

// pickIntDest cycles destinations over a bounded pool, which (with renaming)
// leaves ILP intact but keeps chains flowing through few names.
func (b *builder) pickIntDest() isa.Reg {
	r := isa.IntReg(2 + b.nextIntDest%(b.prof.DestPool))
	b.nextIntDest++
	if b.r.Bernoulli(0.3) { // occasional irregular reuse
		r = isa.IntReg(2 + b.r.Intn(b.prof.DestPool))
	}
	b.recentInt = append(b.recentInt, r)
	if len(b.recentInt) > 64 {
		b.recentInt = b.recentInt[1:]
	}
	b.freshInt = append(b.freshInt, r)
	if len(b.freshInt) > 24 { // values that age out are never read
		b.freshInt = b.freshInt[1:]
	}
	return r
}

func (b *builder) pickFPDest() isa.Reg {
	r := isa.FPReg(2 + b.nextFPDest%(b.prof.DestPool))
	b.nextFPDest++
	if b.r.Bernoulli(0.3) {
		r = isa.FPReg(2 + b.r.Intn(b.prof.DestPool))
	}
	b.recentFP = append(b.recentFP, r)
	if len(b.recentFP) > 64 {
		b.recentFP = b.recentFP[1:]
	}
	b.freshFP = append(b.freshFP, r)
	if len(b.freshFP) > 24 {
		b.freshFP = b.freshFP[1:]
	}
	return r
}

// addInstr appends si to the program, assigning its PC, and returns its
// index.
func (b *builder) addInstr(si sInstr) int32 {
	si.pc = b.nextPC()
	b.prog.instrs = append(b.prog.instrs, si)
	return int32(len(b.prog.instrs) - 1)
}
