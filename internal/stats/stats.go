// Package stats provides the small statistical toolkit used by the
// experiment harnesses: harmonic means (the paper reports harmonic-mean
// IPC), cumulative distributions (Figure 3), and fixed-width text tables.
package stats

import (
	"encoding/json"
	"fmt"
	"math"
	"sort"
	"strings"
)

// HarmonicMean returns the harmonic mean of xs. It returns 0 for an empty
// slice and panics if any value is non-positive (IPC values are always
// positive).
func HarmonicMean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		if x <= 0 {
			panic(fmt.Sprintf("stats: HarmonicMean of non-positive value %v", x))
		}
		sum += 1 / x
	}
	return float64(len(xs)) / sum
}

// ArithmeticMean returns the arithmetic mean of xs, or 0 for an empty slice.
func ArithmeticMean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// GeometricMean returns the geometric mean of xs, or 0 for an empty slice.
// It panics on non-positive values.
func GeometricMean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		if x <= 0 {
			panic(fmt.Sprintf("stats: GeometricMean of non-positive value %v", x))
		}
		sum += math.Log(x)
	}
	return math.Exp(sum / float64(len(xs)))
}

// Speedup returns (new/old - 1) expressed as a fraction; e.g. 0.10 means
// "10% faster".
func Speedup(old, new float64) float64 {
	if old == 0 {
		return 0
	}
	return new/old - 1
}

// Histogram counts integer-valued observations (e.g. "number of live
// registers this cycle"). The zero value is ready to use.
type Histogram struct {
	counts []uint64
	total  uint64
}

// Add records one observation of value v (clamped at 0).
func (h *Histogram) Add(v int) {
	if v < 0 {
		v = 0
	}
	for v >= len(h.counts) {
		h.counts = append(h.counts, 0)
	}
	h.counts[v]++
	h.total++
}

// AddN records n observations of value v.
func (h *Histogram) AddN(v int, n uint64) {
	if v < 0 {
		v = 0
	}
	for v >= len(h.counts) {
		h.counts = append(h.counts, 0)
	}
	h.counts[v] += n
	h.total += n
}

// Total returns the number of recorded observations.
func (h *Histogram) Total() uint64 { return h.total }

// MarshalJSON encodes the histogram as its counts array; the total is
// recomputed on decode. An empty histogram encodes as null, so the zero
// value round-trips. This keeps types embedding a Histogram (sim.Result)
// losslessly JSON-serializable, which the disk-backed result store in
// internal/store relies on.
func (h Histogram) MarshalJSON() ([]byte, error) {
	if h.total == 0 {
		return []byte("null"), nil
	}
	return json.Marshal(h.counts)
}

// UnmarshalJSON decodes a counts array produced by MarshalJSON.
func (h *Histogram) UnmarshalJSON(data []byte) error {
	h.counts, h.total = nil, 0
	if err := json.Unmarshal(data, &h.counts); err != nil {
		return err
	}
	for _, c := range h.counts {
		h.total += c
	}
	return nil
}

// Count returns the number of observations with value v.
func (h *Histogram) Count(v int) uint64 {
	if v < 0 || v >= len(h.counts) {
		return 0
	}
	return h.counts[v]
}

// Max returns the largest recorded value, or -1 if empty.
func (h *Histogram) Max() int {
	for v := len(h.counts) - 1; v >= 0; v-- {
		if h.counts[v] > 0 {
			return v
		}
	}
	return -1
}

// Mean returns the mean of the recorded observations, or 0 if empty.
func (h *Histogram) Mean() float64 {
	if h.total == 0 {
		return 0
	}
	sum := 0.0
	for v, c := range h.counts {
		sum += float64(v) * float64(c)
	}
	return sum / float64(h.total)
}

// CDF returns the cumulative distribution as percentages: result[v] is the
// percentage of observations with value ≤ v, for v in [0, upTo].
func (h *Histogram) CDF(upTo int) []float64 {
	out := make([]float64, upTo+1)
	if h.total == 0 {
		return out
	}
	var cum uint64
	for v := 0; v <= upTo; v++ {
		if v < len(h.counts) {
			cum += h.counts[v]
		}
		out[v] = 100 * float64(cum) / float64(h.total)
	}
	return out
}

// Percentile returns the smallest value v such that at least pct percent of
// observations are ≤ v. pct is in (0, 100].
func (h *Histogram) Percentile(pct float64) int {
	if h.total == 0 {
		return 0
	}
	need := uint64(math.Ceil(pct / 100 * float64(h.total)))
	var cum uint64
	for v, c := range h.counts {
		cum += c
		if cum >= need {
			return v
		}
	}
	return len(h.counts) - 1
}

// Merge adds all observations of other into h.
func (h *Histogram) Merge(other *Histogram) {
	for v, c := range other.counts {
		if c > 0 {
			h.AddN(v, c)
		}
	}
}

// Table builds fixed-width text tables in the style of the paper's tables.
type Table struct {
	header []string
	rows   [][]string
}

// NewTable creates a table with the given column headers.
func NewTable(header ...string) *Table {
	return &Table{header: header}
}

// AddRow appends a row; cells beyond the header width are dropped and short
// rows are padded with empty cells.
func (t *Table) AddRow(cells ...string) {
	row := make([]string, len(t.header))
	for i := range row {
		if i < len(cells) {
			row[i] = cells[i]
		}
	}
	t.rows = append(t.rows, row)
}

// AddRowf appends a row formatting each value with the given verb (e.g.
// "%.2f") after the leading label.
func (t *Table) AddRowf(label, verb string, vals ...float64) {
	cells := make([]string, 0, len(vals)+1)
	cells = append(cells, label)
	for _, v := range vals {
		cells = append(cells, fmt.Sprintf(verb, v))
	}
	t.AddRow(cells...)
}

// String renders the table with aligned columns.
func (t *Table) String() string {
	width := make([]int, len(t.header))
	for i, h := range t.header {
		width[i] = len(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if len(c) > width[i] {
				width[i] = len(c)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", width[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.header)
	total := len(width) - 1
	for _, w := range width {
		total += w + 1
	}
	b.WriteString(strings.Repeat("-", total))
	b.WriteByte('\n')
	for _, row := range t.rows {
		writeRow(row)
	}
	return b.String()
}

// Series is a named sequence of (x, y) points, used to emit figure data.
type Series struct {
	Name string
	X    []float64
	Y    []float64
}

// Add appends one point.
func (s *Series) Add(x, y float64) {
	s.X = append(s.X, x)
	s.Y = append(s.Y, y)
}

// ParetoFrontier filters (cost, value) points to those not dominated by any
// other point: a point is kept iff no other point has lower-or-equal cost
// and strictly higher value, or strictly lower cost and equal-or-higher
// value. The result is sorted by ascending cost. The indices of the kept
// points (into the input slices) are returned.
func ParetoFrontier(cost, value []float64) []int {
	if len(cost) != len(value) {
		panic("stats: ParetoFrontier slice lengths differ")
	}
	idx := make([]int, len(cost))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool {
		ia, ib := idx[a], idx[b]
		if cost[ia] != cost[ib] {
			return cost[ia] < cost[ib]
		}
		return value[ia] > value[ib]
	})
	var keep []int
	best := math.Inf(-1)
	for _, i := range idx {
		if value[i] > best {
			keep = append(keep, i)
			best = value[i]
		}
	}
	return keep
}
