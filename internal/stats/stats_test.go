package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, eps float64) bool { return math.Abs(a-b) <= eps }

func TestHarmonicMean(t *testing.T) {
	cases := []struct {
		in   []float64
		want float64
	}{
		{nil, 0},
		{[]float64{2}, 2},
		{[]float64{1, 1, 1}, 1},
		{[]float64{2, 2}, 2},
		{[]float64{1, 2}, 4.0 / 3},
		{[]float64{2, 4, 4}, 3}, // 3 / (1/2+1/4+1/4)
	}
	for _, c := range cases {
		if got := HarmonicMean(c.in); !almostEqual(got, c.want, 1e-12) {
			t.Errorf("HarmonicMean(%v) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestHarmonicMeanPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for non-positive input")
		}
	}()
	HarmonicMean([]float64{1, 0})
}

func TestMeans(t *testing.T) {
	xs := []float64{1, 2, 4}
	if got := ArithmeticMean(xs); !almostEqual(got, 7.0/3, 1e-12) {
		t.Errorf("ArithmeticMean = %v", got)
	}
	if got := GeometricMean(xs); !almostEqual(got, 2, 1e-12) {
		t.Errorf("GeometricMean = %v, want 2", got)
	}
	if ArithmeticMean(nil) != 0 || GeometricMean(nil) != 0 {
		t.Error("empty means should be 0")
	}
}

func TestMeanInequality(t *testing.T) {
	// HM ≤ GM ≤ AM for positive values.
	f := func(a, b, c uint16) bool {
		xs := []float64{float64(a%100) + 1, float64(b%100) + 1, float64(c%100) + 1}
		hm, gm, am := HarmonicMean(xs), GeometricMean(xs), ArithmeticMean(xs)
		return hm <= gm+1e-9 && gm <= am+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSpeedup(t *testing.T) {
	if got := Speedup(2, 3); !almostEqual(got, 0.5, 1e-12) {
		t.Errorf("Speedup(2,3) = %v", got)
	}
	if got := Speedup(4, 2); !almostEqual(got, -0.5, 1e-12) {
		t.Errorf("Speedup(4,2) = %v", got)
	}
	if got := Speedup(0, 5); got != 0 {
		t.Errorf("Speedup(0,5) = %v, want 0", got)
	}
}

func TestHistogramBasics(t *testing.T) {
	var h Histogram
	if h.Max() != -1 {
		t.Errorf("empty Max = %d, want -1", h.Max())
	}
	h.Add(3)
	h.Add(3)
	h.Add(0)
	h.AddN(5, 2)
	if h.Total() != 5 {
		t.Errorf("Total = %d", h.Total())
	}
	if h.Count(3) != 2 || h.Count(5) != 2 || h.Count(0) != 1 || h.Count(4) != 0 {
		t.Errorf("counts wrong: %d %d %d %d", h.Count(3), h.Count(5), h.Count(0), h.Count(4))
	}
	if h.Max() != 5 {
		t.Errorf("Max = %d", h.Max())
	}
	want := (3.0 + 3 + 0 + 5 + 5) / 5
	if got := h.Mean(); !almostEqual(got, want, 1e-12) {
		t.Errorf("Mean = %v, want %v", got, want)
	}
	if h.Count(-1) != 0 {
		t.Error("negative Count should be 0")
	}
}

func TestHistogramNegativeClamped(t *testing.T) {
	var h Histogram
	h.Add(-7)
	if h.Count(0) != 1 {
		t.Error("negative Add not clamped to 0")
	}
}

func TestHistogramCDF(t *testing.T) {
	var h Histogram
	h.AddN(0, 10)
	h.AddN(1, 40)
	h.AddN(2, 50)
	cdf := h.CDF(3)
	want := []float64{10, 50, 100, 100}
	for i := range want {
		if !almostEqual(cdf[i], want[i], 1e-9) {
			t.Errorf("CDF[%d] = %v, want %v", i, cdf[i], want[i])
		}
	}
	var empty Histogram
	for _, v := range empty.CDF(2) {
		if v != 0 {
			t.Error("empty CDF should be all zero")
		}
	}
}

func TestHistogramPercentile(t *testing.T) {
	var h Histogram
	h.AddN(1, 50)
	h.AddN(10, 50)
	if got := h.Percentile(50); got != 1 {
		t.Errorf("P50 = %d, want 1", got)
	}
	if got := h.Percentile(90); got != 10 {
		t.Errorf("P90 = %d, want 10", got)
	}
	if got := h.Percentile(100); got != 10 {
		t.Errorf("P100 = %d, want 10", got)
	}
	var empty Histogram
	if empty.Percentile(50) != 0 {
		t.Error("empty percentile should be 0")
	}
}

func TestHistogramMerge(t *testing.T) {
	var a, b Histogram
	a.AddN(1, 3)
	b.AddN(1, 2)
	b.AddN(4, 1)
	a.Merge(&b)
	if a.Total() != 6 || a.Count(1) != 5 || a.Count(4) != 1 {
		t.Errorf("after merge: total=%d c1=%d c4=%d", a.Total(), a.Count(1), a.Count(4))
	}
}

// Property: CDF is monotone non-decreasing and ends at 100 when it covers
// the max value.
func TestQuickCDFMonotone(t *testing.T) {
	f := func(vals []uint8) bool {
		var h Histogram
		for _, v := range vals {
			h.Add(int(v % 32))
		}
		if h.Total() == 0 {
			return true
		}
		cdf := h.CDF(31)
		prev := -1.0
		for _, p := range cdf {
			if p < prev {
				return false
			}
			prev = p
		}
		return almostEqual(cdf[31], 100, 1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTableRendering(t *testing.T) {
	tab := NewTable("bench", "IPC")
	tab.AddRow("compress", "2.41")
	tab.AddRowf("gcc", "%.2f", 2.0)
	s := tab.String()
	for _, sub := range []string{"bench", "IPC", "compress", "2.41", "gcc", "2.00"} {
		if !strings.Contains(s, sub) {
			t.Errorf("table missing %q:\n%s", sub, s)
		}
	}
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	if len(lines) != 4 {
		t.Errorf("table has %d lines, want 4:\n%s", len(lines), s)
	}
}

func TestTableRowPadding(t *testing.T) {
	tab := NewTable("a", "b", "c")
	tab.AddRow("x") // short row should pad
	tab.AddRow("1", "2", "3", "4")
	s := tab.String()
	if strings.Contains(s, "4") {
		t.Errorf("overlong row not truncated:\n%s", s)
	}
}

func TestSeriesAdd(t *testing.T) {
	var s Series
	s.Add(1, 2)
	s.Add(3, 4)
	if len(s.X) != 2 || s.X[1] != 3 || s.Y[1] != 4 {
		t.Errorf("series = %+v", s)
	}
}

func TestParetoFrontier(t *testing.T) {
	cost := []float64{1, 2, 3, 2.5, 4}
	val := []float64{1, 3, 2, 3.5, 5}
	keep := ParetoFrontier(cost, val)
	// dominated: index 2 (cost 3, val 2 dominated by index 3: cost 2.5 val 3.5)
	want := map[int]bool{0: true, 1: true, 3: true, 4: true}
	if len(keep) != len(want) {
		t.Fatalf("frontier = %v", keep)
	}
	for _, i := range keep {
		if !want[i] {
			t.Errorf("index %d should not be on the frontier", i)
		}
	}
	// Frontier must be sorted by cost with strictly increasing value.
	for k := 1; k < len(keep); k++ {
		if cost[keep[k]] < cost[keep[k-1]] || val[keep[k]] <= val[keep[k-1]] {
			t.Errorf("frontier not monotone at %d", k)
		}
	}
}

func TestParetoFrontierMismatchedPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on mismatched lengths")
		}
	}()
	ParetoFrontier([]float64{1}, nil)
}

// Property: every point not on the frontier is dominated by some frontier
// point.
func TestQuickParetoDomination(t *testing.T) {
	f := func(pts []struct{ C, V uint8 }) bool {
		if len(pts) == 0 {
			return true
		}
		cost := make([]float64, len(pts))
		val := make([]float64, len(pts))
		for i, p := range pts {
			cost[i] = float64(p.C)
			val[i] = float64(p.V)
		}
		keep := ParetoFrontier(cost, val)
		onF := make(map[int]bool, len(keep))
		for _, i := range keep {
			onF[i] = true
		}
		for i := range pts {
			if onF[i] {
				continue
			}
			dominated := false
			for _, j := range keep {
				if (cost[j] <= cost[i] && val[j] > val[i]) ||
					(cost[j] < cost[i] && val[j] >= val[i]) ||
					(cost[j] == cost[i] && val[j] == val[i]) {
					dominated = true
					break
				}
			}
			if !dominated {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
