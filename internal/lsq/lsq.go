// Package lsq models the load/store queue of the simulated processor:
// 64 entries with store-to-load forwarding, where loads may execute once
// all prior store addresses are known (Table 1 of the paper).
package lsq

import "repro/internal/cache"

// Kind distinguishes loads from stores.
type Kind uint8

const (
	// KindLoad marks a load entry.
	KindLoad Kind = iota
	// KindStore marks a store entry.
	KindStore
)

// Entry is one queue slot.
type entry struct {
	seq       uint64 // program-order sequence number
	kind      Kind
	addr      uint64
	addrKnown bool
	done      bool
	valid     bool
}

// frontierNone marks "no store with an unknown address in the queue".
const frontierNone = ^uint64(0)

// Queue is a combined load/store queue indexed in program order.
type Queue struct {
	entries  []entry
	head     int
	count    int
	capacity int

	// storeRing lists the slot indices of in-queue stores in program
	// order (a ring over storeHead/storeCount). Load disambiguation and
	// forwarding only ever inspect stores, so scanning this ring instead
	// of the whole queue keeps IssueLoad proportional to the number of
	// stores, not the queue occupancy. storeBase is the absolute ordinal
	// of storeRing[storeHead], so a position survives commits of older
	// stores.
	storeRing  []int
	storeHead  int
	storeCount int
	storeBase  uint64

	// frontierSeq is the sequence number of the oldest store whose address
	// is still unknown (frontierNone when every store address is known);
	// frontierIdx is that store's slot and frontierOrd its absolute store
	// ordinal. A load may access memory exactly when its sequence number
	// is below the frontier, which makes the disambiguation check O(1)
	// instead of a scan over all earlier entries.
	frontierSeq uint64
	frontierIdx int
	frontierOrd uint64

	forwards uint64
	issued   uint64
}

// New returns a queue with the given capacity.
func New(capacity int) *Queue {
	if capacity <= 0 {
		panic("lsq: non-positive capacity")
	}
	return &Queue{
		entries:     make([]entry, capacity),
		storeRing:   make([]int, capacity),
		capacity:    capacity,
		frontierSeq: frontierNone,
	}
}

// wrap reduces a ring index in [0, 2*capacity) into [0, capacity). Ring
// steps only ever overshoot by less than one capacity, so a compare
// replaces the modulo (and its hardware divide) on the hot paths.
func (q *Queue) wrap(i int) int {
	if i >= q.capacity {
		i -= q.capacity
	}
	return i
}

// Full reports whether no slot is free.
func (q *Queue) Full() bool { return q.count == q.capacity }

// Len returns the number of occupied slots.
func (q *Queue) Len() int { return q.count }

// Cap returns the capacity.
func (q *Queue) Cap() int { return q.capacity }

// Insert allocates a slot for a memory operation with program-order
// sequence number seq and returns a ticket identifying it. The address is
// not yet known. Insert panics if the queue is full or seq is not
// monotonically increasing (callers check Full first; sequence ordering is
// a dispatch invariant).
func (q *Queue) Insert(seq uint64, kind Kind) int {
	if q.Full() {
		panic("lsq: insert into full queue")
	}
	idx := q.wrap(q.head + q.count)
	if q.count > 0 {
		prev := q.entries[q.wrap(q.head+q.count-1)]
		if prev.seq >= seq {
			panic("lsq: out-of-order insert")
		}
	}
	q.entries[idx] = entry{seq: seq, kind: kind, valid: true}
	q.count++
	if kind == KindStore {
		ord := q.storeBase + uint64(q.storeCount)
		q.storeRing[q.wrap(q.storeHead+q.storeCount)] = idx
		q.storeCount++
		if q.frontierSeq == frontierNone {
			// Inserts are youngest, so a new unknown-address store becomes the
			// frontier only when no older one exists.
			q.frontierSeq, q.frontierIdx, q.frontierOrd = seq, idx, ord
		}
	}
	return idx
}

// SetAddress records the effective address of ticket t (computed in the
// execute stage). When t is the frontier store, the frontier advances to
// the next store with an unknown address.
func (q *Queue) SetAddress(t int, addr uint64) {
	e := &q.entries[t]
	if !e.valid {
		panic("lsq: SetAddress on invalid ticket")
	}
	known := e.addrKnown
	e.addr = addr
	e.addrKnown = true
	if e.kind == KindStore && !known && e.seq == q.frontierSeq {
		q.advanceFrontier()
	}
}

// advanceFrontier moves the unknown-store frontier past stores whose
// addresses are now known. The walk resumes where the previous frontier
// stood, so the total work over a run is linear in the stores inserted.
func (q *Queue) advanceFrontier() {
	n := int(q.frontierOrd - q.storeBase)
	for n++; n < q.storeCount; n++ {
		i := q.storeRing[q.wrap(q.storeHead+n)]
		e := &q.entries[i]
		if !e.addrKnown {
			q.frontierSeq, q.frontierIdx, q.frontierOrd = e.seq, i, q.storeBase+uint64(n)
			return
		}
	}
	q.frontierSeq = frontierNone
}

// CanIssueLoad reports whether the load at ticket t may access memory:
// every earlier store must have a known address (conservative disambiguation,
// per the paper: "loads may execute when prior store addresses are known").
// The frontier makes this a single comparison.
func (q *Queue) CanIssueLoad(t int) bool {
	e := &q.entries[t]
	return e.valid && e.kind == KindLoad && e.addrKnown && e.seq < q.frontierSeq
}

// Result describes a completed load lookup.
type Result struct {
	// Forwarded reports whether the value came from an earlier in-queue
	// store (no cache access needed).
	Forwarded bool
	// Latency is the load-to-use latency in cycles.
	Latency int
	// CacheHit is meaningful when !Forwarded.
	CacheHit bool
}

// IssueLoad performs the memory access for the load at ticket t at absolute
// cycle now, using dc for the data cache (may be nil for a perfect cache).
// It must only be called when CanIssueLoad(t) is true.
func (q *Queue) IssueLoad(t int, dc *cache.Cache, now uint64) Result {
	e := &q.entries[t]
	if !q.CanIssueLoad(t) {
		panic("lsq: IssueLoad before CanIssueLoad")
	}
	q.issued++
	// Search for the youngest earlier store to the same address. Only
	// stores can match, so the walk covers the store ring rather than
	// every queue entry.
	var match *entry
	for i, n := q.storeHead, 0; n < q.storeCount; i, n = q.wrap(i+1), n+1 {
		s := &q.entries[q.storeRing[i]]
		if s.seq >= e.seq {
			break
		}
		if s.addrKnown && sameWord(s.addr, e.addr) {
			match = s
		}
	}
	if match != nil {
		q.forwards++
		e.done = true
		return Result{Forwarded: true, Latency: 1}
	}
	if dc == nil {
		e.done = true
		return Result{Latency: 1, CacheHit: true}
	}
	r := dc.Access(e.addr, false, now)
	e.done = true
	return Result{Latency: r.Latency, CacheHit: r.Hit}
}

// IssueStore marks the store at ticket t executed (address known, data
// buffered). Stores write the cache at commit.
func (q *Queue) IssueStore(t int) {
	e := &q.entries[t]
	if !e.valid || e.kind != KindStore || !e.addrKnown {
		panic("lsq: IssueStore on invalid or address-less store")
	}
	e.done = true
}

// Done reports whether ticket t has executed.
func (q *Queue) Done(t int) bool { return q.entries[t].valid && q.entries[t].done }

// Commit retires the oldest entry, which must match seq; stores write the
// data cache at commit time. It returns the store write-back latency (0 for
// loads).
func (q *Queue) Commit(seq uint64, dc *cache.Cache, now uint64) int {
	if q.count == 0 {
		panic("lsq: commit from empty queue")
	}
	e := &q.entries[q.head]
	if e.seq != seq {
		panic("lsq: commit out of order")
	}
	lat := 0
	if e.kind == KindStore {
		if dc != nil {
			r := dc.Access(e.addr, true, now)
			lat = r.Latency
		}
		// The oldest entry is by construction the oldest store, so it
		// leaves the front of the store ring.
		q.storeHead = q.wrap(q.storeHead + 1)
		q.storeCount--
		q.storeBase++
	}
	e.valid = false
	q.head = q.wrap(q.head + 1)
	q.count--
	return lat
}

// Flush empties the queue (used on reset).
func (q *Queue) Flush() {
	for i := range q.entries {
		q.entries[i] = entry{}
	}
	q.head, q.count = 0, 0
	q.storeHead, q.storeCount, q.storeBase = 0, 0, 0
	q.frontierSeq, q.frontierIdx, q.frontierOrd = frontierNone, 0, 0
}

// Forwards returns the number of store-to-load forwards.
func (q *Queue) Forwards() uint64 { return q.forwards }

// IssuedLoads returns the number of loads issued.
func (q *Queue) IssuedLoads() uint64 { return q.issued }

// sameWord reports whether two addresses fall in the same 8-byte word,
// the forwarding granularity.
func sameWord(a, b uint64) bool { return a>>3 == b>>3 }
