package lsq

import (
	"testing"
	"testing/quick"

	"repro/internal/cache"
)

func TestInsertAndCapacity(t *testing.T) {
	q := New(2)
	if q.Full() || q.Len() != 0 || q.Cap() != 2 {
		t.Fatal("fresh queue state wrong")
	}
	q.Insert(1, KindLoad)
	q.Insert(2, KindStore)
	if !q.Full() || q.Len() != 2 {
		t.Error("queue should be full")
	}
}

func TestInsertFullPanics(t *testing.T) {
	q := New(1)
	q.Insert(1, KindLoad)
	defer func() {
		if recover() == nil {
			t.Fatal("insert into full queue did not panic")
		}
	}()
	q.Insert(2, KindLoad)
}

func TestOutOfOrderInsertPanics(t *testing.T) {
	q := New(4)
	q.Insert(5, KindLoad)
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-order insert did not panic")
		}
	}()
	q.Insert(3, KindLoad)
}

func TestLoadWaitsForPriorStoreAddress(t *testing.T) {
	q := New(8)
	st := q.Insert(1, KindStore)
	ld := q.Insert(2, KindLoad)
	q.SetAddress(ld, 0x100)
	if q.CanIssueLoad(ld) {
		t.Error("load issued before prior store address known")
	}
	q.SetAddress(st, 0x200)
	if !q.CanIssueLoad(ld) {
		t.Error("load blocked although all prior store addresses known")
	}
}

func TestLoadNeedsOwnAddress(t *testing.T) {
	q := New(8)
	ld := q.Insert(1, KindLoad)
	if q.CanIssueLoad(ld) {
		t.Error("load with unknown address reported issuable")
	}
}

func TestStoreForwarding(t *testing.T) {
	q := New(8)
	st := q.Insert(1, KindStore)
	ld := q.Insert(2, KindLoad)
	q.SetAddress(st, 0x100)
	q.SetAddress(ld, 0x104) // same 8-byte word
	r := q.IssueLoad(ld, nil, 0)
	if !r.Forwarded || r.Latency != 1 {
		t.Errorf("expected forward, got %+v", r)
	}
	if q.Forwards() != 1 {
		t.Errorf("Forwards = %d", q.Forwards())
	}
}

func TestNoForwardAcrossWords(t *testing.T) {
	q := New(8)
	st := q.Insert(1, KindStore)
	ld := q.Insert(2, KindLoad)
	q.SetAddress(st, 0x100)
	q.SetAddress(ld, 0x108) // next word
	r := q.IssueLoad(ld, nil, 0)
	if r.Forwarded {
		t.Error("forwarded across different words")
	}
}

func TestYoungestMatchingStoreForwards(t *testing.T) {
	// Two stores to the same word; the load must see the younger one —
	// observable here only through the forward flag, but exercises the scan.
	q := New(8)
	s1 := q.Insert(1, KindStore)
	s2 := q.Insert(2, KindStore)
	ld := q.Insert(3, KindLoad)
	q.SetAddress(s1, 0x100)
	q.SetAddress(s2, 0x100)
	q.SetAddress(ld, 0x100)
	if r := q.IssueLoad(ld, nil, 0); !r.Forwarded {
		t.Error("load did not forward from earlier stores")
	}
}

func TestLaterStoreDoesNotForward(t *testing.T) {
	q := New(8)
	ld := q.Insert(1, KindLoad)
	st := q.Insert(2, KindStore)
	q.SetAddress(ld, 0x100)
	q.SetAddress(st, 0x100)
	if r := q.IssueLoad(ld, nil, 0); r.Forwarded {
		t.Error("load forwarded from a younger store")
	}
}

func TestLoadUsesCache(t *testing.T) {
	q := New(8)
	dc := cache.New(cache.DCacheConfig())
	ld := q.Insert(1, KindLoad)
	q.SetAddress(ld, 0x1000)
	r := q.IssueLoad(ld, dc, 0)
	if r.Forwarded || r.CacheHit {
		t.Errorf("cold load should miss: %+v", r)
	}
	if r.Latency != 7 {
		t.Errorf("cold load latency = %d, want 7", r.Latency)
	}
}

func TestIssueLoadRequiresReadiness(t *testing.T) {
	q := New(8)
	q.Insert(1, KindStore)
	ld := q.Insert(2, KindLoad)
	q.SetAddress(ld, 0x10)
	defer func() {
		if recover() == nil {
			t.Fatal("IssueLoad before CanIssueLoad did not panic")
		}
	}()
	q.IssueLoad(ld, nil, 0)
}

func TestCommitOrderAndStoreWriteback(t *testing.T) {
	q := New(8)
	dc := cache.New(cache.DCacheConfig())
	st := q.Insert(1, KindStore)
	ld := q.Insert(2, KindLoad)
	q.SetAddress(st, 0x40)
	q.SetAddress(ld, 0x80)
	q.IssueStore(st)
	q.IssueLoad(ld, dc, 0)
	if lat := q.Commit(1, dc, 10); lat == 0 {
		t.Error("store commit should access the cache")
	}
	if lat := q.Commit(2, dc, 11); lat != 0 {
		t.Errorf("load commit latency = %d, want 0", lat)
	}
	if q.Len() != 0 {
		t.Errorf("queue not empty after commits: %d", q.Len())
	}
}

func TestCommitOutOfOrderPanics(t *testing.T) {
	q := New(8)
	q.Insert(1, KindLoad)
	q.Insert(2, KindLoad)
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-order commit did not panic")
		}
	}()
	q.Commit(2, nil, 0)
}

func TestDoneTracking(t *testing.T) {
	q := New(8)
	st := q.Insert(1, KindStore)
	if q.Done(st) {
		t.Error("fresh entry reported done")
	}
	q.SetAddress(st, 0x10)
	q.IssueStore(st)
	if !q.Done(st) {
		t.Error("issued store not done")
	}
}

func TestFlush(t *testing.T) {
	q := New(4)
	q.Insert(1, KindLoad)
	q.Insert(2, KindStore)
	q.Flush()
	if q.Len() != 0 || q.Full() {
		t.Error("flush did not empty queue")
	}
	// After flush, inserts restart cleanly.
	q.Insert(1, KindLoad)
	if q.Len() != 1 {
		t.Error("insert after flush failed")
	}
}

func TestWrapAround(t *testing.T) {
	q := New(2)
	seq := uint64(1)
	for i := 0; i < 10; i++ {
		tk := q.Insert(seq, KindLoad)
		q.SetAddress(tk, uint64(i*64))
		q.IssueLoad(tk, nil, uint64(i))
		q.Commit(seq, nil, uint64(i))
		seq++
	}
	if q.Len() != 0 {
		t.Error("wraparound bookkeeping broken")
	}
}

// Property: with only loads (no stores), every load with a known address is
// issuable, and commit drains in order without panic.
func TestQuickLoadsAlwaysIssuable(t *testing.T) {
	f := func(addrs []uint16) bool {
		q := New(64)
		seq := uint64(1)
		var tickets []int
		var seqs []uint64
		for _, a := range addrs {
			if q.Full() {
				break
			}
			tk := q.Insert(seq, KindLoad)
			q.SetAddress(tk, uint64(a))
			if !q.CanIssueLoad(tk) {
				return false
			}
			q.IssueLoad(tk, nil, 0)
			tickets = append(tickets, tk)
			seqs = append(seqs, seq)
			seq++
		}
		for _, s := range seqs {
			q.Commit(s, nil, 0)
		}
		return q.Len() == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: a load never forwards unless some earlier store shares its
// word.
func TestQuickForwardImpliesMatch(t *testing.T) {
	f := func(storeAddrs []uint8, loadAddr uint8) bool {
		q := New(64)
		seq := uint64(1)
		stores := storeAddrs
		if len(stores) > 30 {
			stores = stores[:30]
		}
		match := false
		for _, a := range stores {
			tk := q.Insert(seq, KindStore)
			q.SetAddress(tk, uint64(a))
			if uint64(a)>>3 == uint64(loadAddr)>>3 {
				match = true
			}
			seq++
		}
		ld := q.Insert(seq, KindLoad)
		q.SetAddress(ld, uint64(loadAddr))
		r := q.IssueLoad(ld, nil, 0)
		return r.Forwarded == match
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// canIssueLoadReference is the pre-frontier O(n) disambiguation check: a
// scan over every earlier entry looking for a store with an unknown
// address.
func canIssueLoadReference(q *Queue, t int) bool {
	e := &q.entries[t]
	if !e.valid || e.kind != KindLoad || !e.addrKnown {
		return false
	}
	for i, n := q.head, 0; n < q.count; i, n = (i+1)%q.capacity, n+1 {
		s := &q.entries[i]
		if s.seq >= e.seq {
			break
		}
		if s.kind == KindStore && !s.addrKnown {
			return false
		}
	}
	return true
}

// checkFrontier asserts CanIssueLoad agrees with the reference scan for
// every live entry.
func checkFrontier(t *testing.T, q *Queue) {
	t.Helper()
	for i, n := q.head, 0; n < q.count; i, n = (i+1)%q.capacity, n+1 {
		if !q.entries[i].valid {
			continue
		}
		got, want := q.CanIssueLoad(i), canIssueLoadReference(q, i)
		if got != want {
			t.Fatalf("ticket %d (seq %d): CanIssueLoad=%v, reference scan=%v (frontier %d)",
				i, q.entries[i].seq, got, want, q.frontierSeq)
		}
	}
}

// TestFrontierMatchesScan drives a deterministic pseudo-random mix of
// inserts, out-of-order store address resolutions, and in-order commits
// through the queue, checking the O(1) frontier check against the
// reference scan after every operation (including across ring wraparound).
func TestFrontierMatchesScan(t *testing.T) {
	q := New(8)
	rnd := uint64(0x9E3779B97F4A7C15)
	next := func(n uint64) uint64 { // xorshift; deterministic
		rnd ^= rnd << 13
		rnd ^= rnd >> 7
		rnd ^= rnd << 17
		return rnd % n
	}
	seq := uint64(0)
	var unresolved []int // store tickets with unknown addresses
	for op := 0; op < 5000; op++ {
		switch {
		case !q.Full() && next(3) != 0:
			seq++
			if next(2) == 0 {
				tk := q.Insert(seq, KindLoad)
				q.SetAddress(tk, next(1<<16))
			} else {
				tk := q.Insert(seq, KindStore)
				if next(4) == 0 { // some stores resolve immediately
					q.SetAddress(tk, next(1<<16))
				} else {
					unresolved = append(unresolved, tk)
				}
			}
		case len(unresolved) > 0:
			// Resolve a random pending store — models out-of-order
			// completion, including multiple same-cycle resolutions.
			i := int(next(uint64(len(unresolved))))
			q.SetAddress(unresolved[i], next(1<<16))
			unresolved[i] = unresolved[len(unresolved)-1]
			unresolved = unresolved[:len(unresolved)-1]
		case q.count > 0:
			// Commit the head once it is executable.
			h := q.head
			e := &q.entries[h]
			if e.kind == KindLoad {
				if !q.CanIssueLoad(h) {
					continue
				}
				q.IssueLoad(h, nil, uint64(op))
			} else if !e.addrKnown {
				continue
			}
			q.Commit(e.seq, nil, uint64(op))
		}
		checkFrontier(t, q)
	}
}

// TestFrontierAdvancesPastKnownStores pins the basic frontier movement: a
// load behind two unknown stores becomes issuable only when both resolve,
// regardless of resolution order.
func TestFrontierAdvancesPastKnownStores(t *testing.T) {
	q := New(8)
	s1 := q.Insert(1, KindStore)
	s2 := q.Insert(2, KindStore)
	ld := q.Insert(3, KindLoad)
	q.SetAddress(ld, 0x100)
	if q.CanIssueLoad(ld) {
		t.Fatal("load issuable behind two unknown stores")
	}
	q.SetAddress(s2, 0x200) // younger store first: frontier must not move
	if q.CanIssueLoad(ld) {
		t.Fatal("load issuable while the older store address is unknown")
	}
	q.SetAddress(s1, 0x300)
	if !q.CanIssueLoad(ld) {
		t.Fatal("load not issuable after all prior store addresses resolved")
	}
}
