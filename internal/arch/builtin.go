package arch

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/sim"
)

// checkCaching / checkPrefetch adapt the policy parsers to Dim.Check.
func checkCaching(s string) error {
	_, err := ParseCachingPolicy(s)
	return err
}

func checkPrefetch(s string) error {
	_, err := ParsePrefetchPolicy(s)
	return err
}

// monoFamily builds the three single-banked variants: they share the
// dimension schema and differ only in the sim constructor.
func monoFamily(name, doc string, mk func(readPorts, writePorts int) sim.RFSpec) Family {
	return Family{
		Name: name,
		Doc:  doc,
		Dims: []Dim{IntDim("read_ports", 0), IntDim("write_ports", 0)},
		Build: func(v Values) (sim.RFSpec, error) {
			r, w := Ports(v.Int("read_ports")), Ports(v.Int("write_ports"))
			rf := mk(r, w)
			rf.Name = fmt.Sprintf("%s R%sW%s", rf.Name, PortLabel(r), PortLabel(w))
			return rf, nil
		},
	}
}

func init() {
	MustRegister(monoFamily("1cycle",
		"one-cycle single-banked file, full bypass (the paper's baseline)",
		sim.Mono1Cycle))
	MustRegister(monoFamily("2cycle",
		"two-cycle single-banked file, two bypass levels",
		sim.Mono2CycleFull))
	MustRegister(monoFamily("2cycle1b",
		"two-cycle single-banked file, one bypass level",
		sim.Mono2CycleSingle))

	MustRegister(Family{
		Name: "rfcache",
		Doc:  "two-level register file cache (the paper's proposal)",
		Dims: []Dim{
			IntDim("read_ports", 0), IntDim("write_ports", 0),
			IntDim("buses", 0), IntDim("upper_sizes", 16),
			StrDim("caching", "nonbypass", checkCaching),
			StrDim("prefetch", "firstpair", checkPrefetch),
		},
		Build: func(v Values) (sim.RFSpec, error) {
			cs, ps := v.Str("caching"), v.Str("prefetch")
			caching, err := ParseCachingPolicy(cs)
			if err != nil {
				return sim.RFSpec{}, err
			}
			prefetch, err := ParsePrefetchPolicy(ps)
			if err != nil {
				return sim.RFSpec{}, err
			}
			w := Ports(v.Int("write_ports"))
			cfg := core.PaperCacheConfig()
			cfg.ReadPorts = Ports(v.Int("read_ports"))
			cfg.UpperWritePorts = w
			cfg.LowerWritePorts = w
			cfg.Buses = Ports(v.Int("buses"))
			cfg.UpperSize = v.Int("upper_sizes")
			cfg.Caching = caching
			cfg.Prefetch = prefetch
			rf := sim.CacheSpec(cfg)
			rf.Name = fmt.Sprintf("rf-cache R%sW%sB%s U%d %s+%s",
				PortLabel(cfg.ReadPorts), PortLabel(cfg.UpperWritePorts),
				PortLabel(cfg.Buses), cfg.UpperSize, cs, ps)
			return rf, nil
		},
	})

	MustRegister(Family{
		Name: "onelevel",
		Doc:  "one-level multi-banked organization (extension)",
		Dims: []Dim{
			IntDim("banks", 2),
			IntDim("read_ports", 0), IntDim("write_ports", 0),
		},
		Build: func(v Values) (sim.RFSpec, error) {
			banks := v.Int("banks")
			r, w := Ports(v.Int("read_ports")), Ports(v.Int("write_ports"))
			rf := sim.OneLevelSpec(core.OneLevelConfig{
				Banks:             banks,
				ReadPortsPerBank:  r,
				WritePortsPerBank: w,
			})
			rf.Name = fmt.Sprintf("one-level %db R%sW%s", banks, PortLabel(r), PortLabel(w))
			return rf, nil
		},
	})

	MustRegister(Family{
		Name: "replicated",
		Doc:  "fully-replicated clustered file (21264-style; extension)",
		Dims: []Dim{
			IntDim("clusters", 2),
			IntDim("read_ports", 0), IntDim("write_ports", 0),
		},
		Build: func(v Values) (sim.RFSpec, error) {
			clusters := v.Int("clusters")
			r, w := Ports(v.Int("read_ports")), Ports(v.Int("write_ports"))
			rf := sim.ReplicatedSpec(core.ReplicatedConfig{
				Clusters:          clusters,
				ReadPortsPerBank:  r,
				WritePortsPerBank: w,
				RemoteDelay:       1,
			})
			rf.Name = fmt.Sprintf("replicated %dc R%sW%s", clusters, PortLabel(r), PortLabel(w))
			return rf, nil
		},
	})
}
