// Package arch is the architecture-family registry: the single place
// where register file families — the paper's four (monolithic in three
// port/bypass variants, the register file cache, the one-level
// multi-banked file, the replicated clustered file) and any user-defined
// ones — register a name, a parameter schema, a validator and an RFSpec
// builder.
//
// Everything that resolves a family by name goes through this registry:
// sweep-matrix expansion (internal/sweep), server-side job validation
// (internal/server, via the sweep spec), and the CLIs. A family is
// described by an ordered list of dimensions (Dim); expansion is the
// generic cross product of the matrix's dimension lists, with the
// family's Build called once per point. The phys_regs dimension is
// common to every family and handled by the registry itself, innermost
// in the cross product, suffixing " P<n>" to the spec name for non-128
// values.
//
// Determinism matters here: the registry's expansion order (dimension
// lists in declaration order, phys_regs innermost) fixes job order
// within a sweep, which in turn fixes the NDJSON row order every
// consumer sees. rf/testdata/registry_golden.ndjson pins this end to
// end — names, dimension order and config hashes are all locked.
//
// The public surface of this package is re-exported by the top-level rf
// package; new families should be registered through rf.RegisterFamily.
package arch
