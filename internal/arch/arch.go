package arch

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"repro/internal/core"
	"repro/internal/sim"
)

// Matrix describes one register file family plus per-dimension value
// lists. Every empty list defaults to a single family-appropriate value,
// and the expansion is the cross product of all lists. It is the JSON
// "architectures" element of a sweep spec (sweep.ArchMatrix is an alias
// of this type).
type Matrix struct {
	// Kind is the family name: 1cycle, 2cycle, 2cycle1b, rfcache,
	// onelevel, replicated, or any registered user-defined family.
	Kind string `json:"kind"`
	// ReadPorts and WritePorts list port counts; 0 means unlimited. For
	// onelevel and replicated they are per-bank counts.
	ReadPorts  []int `json:"read_ports,omitempty"`
	WritePorts []int `json:"write_ports,omitempty"`
	// Buses lists rf-cache transfer bus counts; 0 means unlimited.
	Buses []int `json:"buses,omitempty"`
	// UpperSizes lists rf-cache upper bank capacities (default 16).
	UpperSizes []int `json:"upper_sizes,omitempty"`
	// Caching lists rf-cache caching policies: nonbypass, ready, all,
	// none (default nonbypass).
	Caching []string `json:"caching,omitempty"`
	// Prefetch lists rf-cache prefetch policies: demand, firstpair
	// (default firstpair).
	Prefetch []string `json:"prefetch,omitempty"`
	// Banks lists bank counts for onelevel (default 2).
	Banks []int `json:"banks,omitempty"`
	// Clusters lists cluster counts for replicated (default 2).
	Clusters []int `json:"clusters,omitempty"`
	// PhysRegs lists per-file physical register counts (default 128).
	PhysRegs []int `json:"phys_regs,omitempty"`
}

// Dim is one dimension of a family's parameter schema: which matrix list
// it consumes, the default when that list is empty, and (for string
// dimensions) a value check applied at validation time.
type Dim struct {
	// Name is the matrix dimension: read_ports, write_ports, buses,
	// upper_sizes, caching, prefetch, banks or clusters.
	Name string
	// IsString selects between the int and string value spaces.
	IsString bool
	// IntDefault / StrDefault apply when the matrix list is empty.
	IntDefault int
	StrDefault string
	// Check, for string dimensions, validates one listed value without
	// expanding the matrix (policy enumerations).
	Check func(string) error
}

// IntDim declares an integer dimension with a default.
func IntDim(name string, def int) Dim { return Dim{Name: name, IntDefault: def} }

// StrDim declares a string dimension with a default and a value check.
func StrDim(name, def string, check func(string) error) Dim {
	return Dim{Name: name, IsString: true, StrDefault: def, Check: check}
}

// Values holds one chosen value per dimension for a single expansion
// point, keyed by dimension name.
type Values struct {
	ints map[string]int
	strs map[string]string
}

// Int returns the chosen value of an integer dimension.
func (v Values) Int(name string) int {
	n, ok := v.ints[name]
	if !ok {
		panic(fmt.Sprintf("arch: family read undeclared int dimension %q", name))
	}
	return n
}

// Str returns the chosen value of a string dimension.
func (v Values) Str(name string) string {
	s, ok := v.strs[name]
	if !ok {
		panic(fmt.Sprintf("arch: family read undeclared string dimension %q", name))
	}
	return s
}

// Family is one registered register file family.
type Family struct {
	// Name is the canonical kind string used in sweep specs
	// (case-insensitive on lookup, stored lowercase).
	Name string
	// Doc is a one-line description for listings.
	Doc string
	// Dims is the parameter schema: the matrix dimensions the family's
	// cross product consumes, outermost first. The phys_regs dimension is
	// implicit and always innermost.
	Dims []Dim
	// Validate, when non-nil, performs extra whole-matrix validation
	// beyond the per-dimension Check hooks. It must not expand the
	// matrix.
	Validate func(m *Matrix) error
	// Build constructs the register file spec for one expansion point.
	// The spec's Name must fully describe the point (it labels report
	// rows); the registry appends the phys-regs suffix itself.
	Build func(v Values) (sim.RFSpec, error)
}

var (
	regMu    sync.RWMutex
	families = map[string]Family{}
)

// intDims and strDims are the dimension names a Matrix can carry, by
// value space; Register rejects families declaring anything else, so a
// bad schema fails at registration instead of panicking on the first
// spec that names the family.
var (
	intDims = map[string]bool{
		"read_ports": true, "write_ports": true, "buses": true,
		"upper_sizes": true, "banks": true, "clusters": true,
	}
	strDims = map[string]bool{"caching": true, "prefetch": true}
)

// Register adds a family to the registry. It fails on an empty or
// duplicate name, a nil Build, and a Dim naming a dimension the sweep
// matrix does not carry (or carrying it in the wrong value space).
func Register(f Family) error {
	name := strings.ToLower(strings.TrimSpace(f.Name))
	if name == "" {
		return fmt.Errorf("arch: family name missing")
	}
	if f.Build == nil {
		return fmt.Errorf("arch: family %q has no Build", name)
	}
	seen := map[string]bool{}
	for _, d := range f.Dims {
		known := intDims
		if d.IsString {
			known = strDims
		}
		if !known[d.Name] {
			return fmt.Errorf("arch: family %q declares unknown %s dimension %q (matrix dimensions: read_ports, write_ports, buses, upper_sizes, banks, clusters; string: caching, prefetch)",
				name, dimSpace(d), d.Name)
		}
		if seen[d.Name] {
			return fmt.Errorf("arch: family %q declares dimension %q twice", name, d.Name)
		}
		seen[d.Name] = true
	}
	f.Name = name
	regMu.Lock()
	defer regMu.Unlock()
	if _, dup := families[name]; dup {
		return fmt.Errorf("arch: family %q already registered", name)
	}
	families[name] = f
	return nil
}

// dimSpace names a Dim's value space for error messages.
func dimSpace(d Dim) string {
	if d.IsString {
		return "string"
	}
	return "int"
}

// MustRegister is Register, panicking on error (init-time use).
func MustRegister(f Family) {
	if err := Register(f); err != nil {
		panic(err)
	}
}

// Lookup resolves a family by kind name, case-insensitively.
func Lookup(kind string) (Family, bool) {
	regMu.RLock()
	defer regMu.RUnlock()
	f, ok := families[strings.ToLower(kind)]
	return f, ok
}

// Families returns every registered family, sorted by name.
func Families() []Family {
	regMu.RLock()
	out := make([]Family, 0, len(families))
	for _, f := range families {
		out = append(out, f)
	}
	regMu.RUnlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// family resolves the matrix's family, with the spec-facing error
// wording.
func (m *Matrix) family() (Family, error) {
	if m.Kind == "" {
		return Family{}, fmt.Errorf("architecture kind missing")
	}
	f, ok := Lookup(m.Kind)
	if !ok {
		return Family{}, fmt.Errorf("unknown architecture kind %q", m.Kind)
	}
	return f, nil
}

// Validate checks the matrix without expanding it: the kind must be
// registered, every listed value of a checked string dimension must
// parse, and the family's own Validate hook (if any) must accept it.
func (m *Matrix) Validate() error {
	f, err := m.family()
	if err != nil {
		return err
	}
	for _, d := range f.Dims {
		if !d.IsString || d.Check == nil {
			continue
		}
		for _, v := range m.strList(d.Name) {
			if err := d.Check(v); err != nil {
				return err
			}
		}
	}
	if f.Validate != nil {
		return f.Validate(m)
	}
	return nil
}

// MaxCount is the saturation bound of point and job counting: any matrix
// or spec expanding to at least this many points reports exactly
// MaxCount. It fits a 32-bit int so the package builds on every GOARCH,
// and it dwarfs any job limit a server would actually accept.
const MaxCount = 1 << 30

// MulSat multiplies saturating at MaxCount; both factors must be in
// [1, MaxCount].
func MulSat(a, b int) int {
	if a > MaxCount/b {
		return MaxCount
	}
	return a * b
}

// CountOr is the length a dimension list contributes to a cross product:
// its own length, or 1 when empty (the default applies).
func CountOr(n int) int {
	if n == 0 {
		return 1
	}
	return n
}

// PointCount returns how many architecture points the matrix expands to
// (saturating at MaxCount), without building them. An unregistered kind
// contributes only the dimensions common to every family; Validate is
// the call that rejects it.
func (m *Matrix) PointCount() int {
	n := CountOr(len(m.PhysRegs))
	f, err := m.family()
	if err != nil {
		// Match the dimensions Validate-passing callers would see for the
		// common lists; the kind error surfaces via Validate.
		return MulSat(MulSat(CountOr(len(m.ReadPorts)), CountOr(len(m.WritePorts))), n)
	}
	for _, d := range f.Dims {
		if d.IsString {
			n = MulSat(n, CountOr(len(m.strList(d.Name))))
		} else {
			n = MulSat(n, CountOr(len(m.intList(d.Name))))
		}
	}
	return n
}

// Point is one expanded architecture configuration.
type Point struct {
	// RF is the built register file spec, fully named.
	RF sim.RFSpec
	// PhysRegs is the per-file physical register count for the point.
	PhysRegs int
}

// Expand returns the cross product of the matrix dimensions as named
// register file specs: the family's declared dimensions outermost-first,
// phys_regs innermost, exactly the order the dimension lists appear.
func (m *Matrix) Expand() ([]Point, error) {
	f, err := m.family()
	if err != nil {
		return nil, err
	}
	type axis struct {
		d    Dim
		ints []int
		strs []string
		n    int
	}
	axes := make([]axis, len(f.Dims))
	for i, d := range f.Dims {
		a := axis{d: d}
		if d.IsString {
			a.strs = m.strList(d.Name)
			if len(a.strs) == 0 {
				a.strs = []string{d.StrDefault}
			}
			a.n = len(a.strs)
		} else {
			a.ints = m.intList(d.Name)
			if len(a.ints) == 0 {
				a.ints = []int{d.IntDefault}
			}
			a.n = len(a.ints)
		}
		axes[i] = a
	}
	regs := m.PhysRegs
	if len(regs) == 0 {
		regs = []int{128}
	}

	idx := make([]int, len(axes))
	var out []Point
	for {
		v := Values{ints: map[string]int{}, strs: map[string]string{}}
		for i, a := range axes {
			if a.d.IsString {
				v.strs[a.d.Name] = a.strs[idx[i]]
			} else {
				v.ints[a.d.Name] = a.ints[idx[i]]
			}
		}
		rf, err := f.Build(v)
		if err != nil {
			return nil, err
		}
		for _, r := range regs {
			p := Point{RF: rf, PhysRegs: r}
			if r != 128 {
				p.RF.Name = fmt.Sprintf("%s P%d", rf.Name, r)
			}
			out = append(out, p)
		}
		// Odometer: the last declared dimension varies fastest (phys_regs,
		// handled above, is faster still).
		k := len(idx) - 1
		for ; k >= 0; k-- {
			idx[k]++
			if idx[k] < axes[k].n {
				break
			}
			idx[k] = 0
		}
		if k < 0 {
			return out, nil
		}
	}
}

// intList maps a dimension name onto the matrix's integer list.
func (m *Matrix) intList(name string) []int {
	switch name {
	case "read_ports":
		return m.ReadPorts
	case "write_ports":
		return m.WritePorts
	case "buses":
		return m.Buses
	case "upper_sizes":
		return m.UpperSizes
	case "banks":
		return m.Banks
	case "clusters":
		return m.Clusters
	}
	panic(fmt.Sprintf("arch: unknown int dimension %q", name))
}

// strList maps a dimension name onto the matrix's string list.
func (m *Matrix) strList(name string) []string {
	switch name {
	case "caching":
		return m.Caching
	case "prefetch":
		return m.Prefetch
	}
	panic(fmt.Sprintf("arch: unknown string dimension %q", name))
}

// Ports maps the spec convention (0 or negative = unlimited) onto
// core.Unlimited.
func Ports(v int) int {
	if v <= 0 {
		return core.Unlimited
	}
	return v
}

// PortLabel renders a port count for spec names.
func PortLabel(v int) string {
	if v == core.Unlimited {
		return "∞"
	}
	return fmt.Sprint(v)
}

// ParseCachingPolicy parses a caching policy name: nonbypass, ready, all
// or none (case-insensitive). It is the one enumeration of policy names,
// shared by sweep specs and the CLIs.
func ParseCachingPolicy(s string) (core.CachingPolicy, error) {
	switch strings.ToLower(s) {
	case "nonbypass":
		return core.CacheNonBypass, nil
	case "ready":
		return core.CacheReady, nil
	case "all":
		return core.CacheAll, nil
	case "none":
		return core.CacheNone, nil
	}
	return 0, fmt.Errorf("unknown caching policy %q", s)
}

// ParsePrefetchPolicy parses a prefetch policy name: demand/on-demand or
// firstpair/first-pair (case-insensitive).
func ParsePrefetchPolicy(s string) (core.PrefetchPolicy, error) {
	switch strings.ToLower(s) {
	case "demand", "on-demand":
		return core.FetchOnDemand, nil
	case "firstpair", "first-pair":
		return core.PrefetchFirstPair, nil
	}
	return 0, fmt.Errorf("unknown prefetch policy %q", s)
}
