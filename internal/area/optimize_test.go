package area

import (
	"testing"
	"testing/quick"
)

func TestSingleBankCandidates(t *testing.T) {
	cs := SingleBankCandidates(128, 4, 3)
	if len(cs) != 3*3 { // reads 2..4 × writes 1..3
		t.Fatalf("candidate count = %d", len(cs))
	}
	for _, c := range cs {
		if c.Regs != 128 || c.Read < 2 || c.Read > 4 || c.Write < 1 || c.Write > 3 {
			t.Errorf("bad candidate %+v", c)
		}
	}
}

func TestTwoLevelCandidates(t *testing.T) {
	cs := TwoLevelCandidates(16, 128, 3, 2, 2)
	if len(cs) != 2*2*2 {
		t.Fatalf("candidate count = %d", len(cs))
	}
	for _, c := range cs {
		if c.UpperRegs != 16 || c.LowerRegs != 128 {
			t.Errorf("bad candidate %+v", c)
		}
	}
}

func TestFastestSingleBankUnder(t *testing.T) {
	cs := SingleBankCandidates(128, 6, 4)
	// Generous budget: must return the most-ported config.
	best, ok := FastestSingleBankUnder(1e9, cs)
	if !ok || best.Read != 6 || best.Write != 4 {
		t.Errorf("generous budget chose %+v", best)
	}
	// Budget below the cheapest config: nothing fits.
	if _, ok := FastestSingleBankUnder(1, cs); ok {
		t.Error("impossible budget satisfied")
	}
	// The paper's C1 budget (≈10921) fits 3R2W but not 4R4W.
	best, ok = FastestSingleBankUnder(11000, cs)
	if !ok {
		t.Fatal("C1 budget unsatisfiable")
	}
	if best.Area() > 11000 {
		t.Errorf("chosen config area %.0f exceeds budget", best.Area())
	}
	if best.Read+best.Write < 5 {
		t.Errorf("C1 budget should afford ≥5 ports, got %+v", best)
	}
}

func TestFastestTwoLevelUnder(t *testing.T) {
	cs := TwoLevelCandidates(16, 128, 4, 4, 3)
	best, ok := FastestTwoLevelUnder(10600, cs)
	if !ok {
		t.Fatal("C1-like budget unsatisfiable")
	}
	if best.Area() > 10600 {
		t.Errorf("area %.0f over budget", best.Area())
	}
	if _, ok := FastestTwoLevelUnder(100, cs); ok {
		t.Error("impossible budget satisfied")
	}
}

func TestCycleTimeFrontier(t *testing.T) {
	pts := []CyclePoint{
		{"a", 100, 5.0},
		{"b", 200, 4.0},
		{"c", 150, 6.0}, // dominated by a (cheaper and faster)
		{"d", 300, 4.5}, // dominated by b
		{"e", 400, 3.0},
	}
	f := CycleTimeFrontier(pts)
	want := []string{"a", "b", "e"}
	if len(f) != len(want) {
		t.Fatalf("frontier = %+v", f)
	}
	for i, p := range f {
		if p.Label != want[i] {
			t.Errorf("frontier[%d] = %s, want %s", i, p.Label, want[i])
		}
	}
}

// Property: the frontier is strictly decreasing in cycle time and
// increasing in area, and every input point is dominated by (or equal to)
// some frontier point.
func TestQuickCycleTimeFrontier(t *testing.T) {
	f := func(raw []struct{ A, C uint8 }) bool {
		if len(raw) == 0 {
			return true
		}
		pts := make([]CyclePoint, len(raw))
		for i, r := range raw {
			pts[i] = CyclePoint{Area: float64(r.A), CycleNS: float64(r.C) + 1}
		}
		fr := CycleTimeFrontier(pts)
		for i := 1; i < len(fr); i++ {
			if fr[i].Area < fr[i-1].Area || fr[i].CycleNS >= fr[i-1].CycleNS {
				return false
			}
		}
		for _, p := range pts {
			dominated := false
			for _, q := range fr {
				if q.Area <= p.Area && q.CycleNS <= p.CycleNS {
					dominated = true
					break
				}
			}
			if !dominated {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: chosen configs always fit their budget.
func TestQuickBudgetRespected(t *testing.T) {
	cs := SingleBankCandidates(128, 6, 4)
	f := func(budgetRaw uint16) bool {
		budget := float64(budgetRaw) * 3
		best, ok := FastestSingleBankUnder(budget, cs)
		return !ok || best.Area() <= budget
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
