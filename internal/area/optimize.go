package area

import "sort"

// This file provides the search helpers behind Figure 8/9-style studies:
// enumerate port configurations of each architecture, filter by an area
// budget, and rank by clock rate. IPC ranking needs simulation (see
// internal/experiments); these helpers answer the pure cost-model side.

// SingleBankCandidates enumerates single-banked configurations with read
// ports in [2, maxRead] and write ports in [1, maxWrite].
func SingleBankCandidates(regs, maxRead, maxWrite int) []SingleBank {
	var out []SingleBank
	for r := 2; r <= maxRead; r++ {
		for w := 1; w <= maxWrite; w++ {
			out = append(out, SingleBank{Regs: regs, Read: r, Write: w})
		}
	}
	return out
}

// TwoLevelCandidates enumerates register-file-cache configurations over
// the plausible neighborhood of the paper's Table 2.
func TwoLevelCandidates(upperRegs, lowerRegs, maxRead, maxWrite, maxBuses int) []TwoLevel {
	var out []TwoLevel
	for r := 2; r <= maxRead; r++ {
		for w := 1; w <= maxWrite; w++ {
			for b := 1; b <= maxBuses; b++ {
				out = append(out, TwoLevel{
					UpperRegs: upperRegs, LowerRegs: lowerRegs,
					Read: r, UpperWrite: w, LowerWrite: w, Buses: b,
				})
			}
		}
	}
	return out
}

// FastestSingleBankUnder returns the configuration with the most total
// ports whose area fits the budget (in 10⁴λ² units), breaking ties by
// lower cycle time, along with whether any candidate fits.
func FastestSingleBankUnder(budget float64, candidates []SingleBank) (SingleBank, bool) {
	best := -1
	for i, c := range candidates {
		if c.Area() > budget {
			continue
		}
		if best < 0 {
			best = i
			continue
		}
		bi, ci := candidates[best], c
		if ci.Read+ci.Write > bi.Read+bi.Write ||
			(ci.Read+ci.Write == bi.Read+bi.Write && ci.AccessTime() < bi.AccessTime()) {
			best = i
		}
	}
	if best < 0 {
		return SingleBank{}, false
	}
	return candidates[best], true
}

// FastestTwoLevelUnder returns the two-level configuration with the most
// upper-bank bandwidth (read ports, then buses, then write ports) fitting
// the budget.
func FastestTwoLevelUnder(budget float64, candidates []TwoLevel) (TwoLevel, bool) {
	best := -1
	better := func(a, b TwoLevel) bool {
		if a.Read != b.Read {
			return a.Read > b.Read
		}
		if a.Buses != b.Buses {
			return a.Buses > b.Buses
		}
		if a.UpperWrite != b.UpperWrite {
			return a.UpperWrite > b.UpperWrite
		}
		return a.CycleTime() < b.CycleTime()
	}
	for i, c := range candidates {
		if c.Area() > budget {
			continue
		}
		if best < 0 || better(c, candidates[best]) {
			best = i
		}
	}
	if best < 0 {
		return TwoLevel{}, false
	}
	return candidates[best], true
}

// CyclePoint pairs a configuration label with its cost-model outputs.
type CyclePoint struct {
	Label   string
	Area    float64
	CycleNS float64
}

// CycleTimeFrontier returns, sorted by area, the candidates not dominated
// in (area, cycle time): every kept point is strictly faster than all
// cheaper kept points.
func CycleTimeFrontier(points []CyclePoint) []CyclePoint {
	sorted := append([]CyclePoint(nil), points...)
	sort.Slice(sorted, func(i, j int) bool {
		if sorted[i].Area != sorted[j].Area {
			return sorted[i].Area < sorted[j].Area
		}
		return sorted[i].CycleNS < sorted[j].CycleNS
	})
	var out []CyclePoint
	bestNS := 0.0
	for _, p := range sorted {
		if len(out) == 0 || p.CycleNS < bestNS {
			out = append(out, p)
			bestNS = p.CycleNS
		}
	}
	return out
}
