// Package area implements the analytical register-file area and access-time
// model used to reproduce the paper's Table 2, Figure 8 and Figure 9.
//
// The paper used an area model by Llosa & Arazabal (UPC technical report,
// in Spanish) and an access-time model extending CACTI, configured for a
// λ = 0.5 µm process. Neither is available, so this package substitutes a
// model with the standard multi-ported-SRAM functional forms, with its
// constants calibrated by regression against the paper's own published
// Table 2 numbers:
//
//   - Area: each port adds one wire track to the register cell in both
//     dimensions (Rixner et al.), so a bank of N registers of B bits with R
//     read and W write ports occupies
//
//     area(N,R,W) = N · B · (a0 + ar·R + aw·W)²   [λ²]
//
//     Fitting the four single-banked points of Table 2 gives a0 = 27.1,
//     ar = 16.1, aw = 20.05. The same constants then independently predict
//     the paper's four register-file-cache areas to within ~1.5%.
//
//   - Access time: word-line/bit-line delays grow with the cell pitch
//     (∝ total ports P) and with the array extent (∝ √(N·B)):
//
//     t(N,P) = α·√N'·(1 + γ·P) + β·P + δ   [ns],  N' = N·B/64
//
//     with α = 0.186, γ = 0.148, β = −0.055, δ = 1.32 fit to the eight
//     published cycle times (max error < 0.03 ns). The small negative β is
//     a regression artifact without physical meaning; it is retained
//     because the goal of this model is to reproduce the paper's cost
//     landscape, not to be a process simulator.
//
// Register width is 64 bits throughout, as in the paper's Alpha-like ISA.
package area

import "math"

// Bits is the register width in bits.
const Bits = 64

// Calibrated constants (see package comment).
const (
	a0 = 27.1
	ar = 16.1
	aw = 20.05

	alpha = 0.186
	gamma = 0.148
	beta  = -0.055
	delta = 1.32
)

// BankArea returns the area in λ² of a bank with n registers, r read ports
// and w write ports.
func BankArea(n, r, w int) float64 {
	pitch := a0 + ar*float64(r) + aw*float64(w)
	return float64(n) * Bits * pitch * pitch
}

// BankAccessTime returns the access time in ns of a bank with n registers
// and p total ports.
func BankAccessTime(n, p int) float64 {
	return alpha*math.Sqrt(float64(n))*(1+gamma*float64(p)) + beta*float64(p) + delta
}

// AreaUnit is the paper's area unit: 10⁴ λ².
const AreaUnit = 1e4

// SingleBank describes a monolithic register file configuration for the
// cost model.
type SingleBank struct {
	// Regs is the number of physical registers.
	Regs int
	// Read and Write are the port counts.
	Read, Write int
}

// Area returns the file area in units of 10⁴ λ² (the paper's Table 2
// unit).
func (s SingleBank) Area() float64 {
	return BankArea(s.Regs, s.Read, s.Write) / AreaUnit
}

// AccessTime returns the access time in ns.
func (s SingleBank) AccessTime() float64 {
	return BankAccessTime(s.Regs, s.Read+s.Write)
}

// CycleTime returns the processor cycle time in ns when the register file
// access sets the critical path, for a file pipelined over stages cycles
// (the paper's 2-cycle configurations optimistically assume two equal
// stages with no inter-stage overhead).
func (s SingleBank) CycleTime(stages int) float64 {
	return s.AccessTime() / float64(stages)
}

// TwoLevel describes a register file cache configuration for the cost
// model, following Table 2's convention: each bus between the levels adds
// a read port to the lowest level and a write port to the uppermost level.
type TwoLevel struct {
	// UpperRegs and LowerRegs are the bank capacities (16 and 128 in the
	// paper).
	UpperRegs, LowerRegs int
	// Read is the upper bank's read-port count (feeding the FUs).
	Read int
	// UpperWrite is the upper bank's result-write port count (caching
	// writes at write-back).
	UpperWrite int
	// LowerWrite is the lower bank's result-write port count.
	LowerWrite int
	// Buses is the number of lower→upper transfer buses.
	Buses int
}

// UpperPorts returns the uppermost bank's total port count: R reads, W
// result writes, plus one write port per bus.
func (t TwoLevel) UpperPorts() int { return t.Read + t.UpperWrite + t.Buses }

// LowerPorts returns the lowest bank's total port count: W result writes
// plus one read port per bus.
func (t TwoLevel) LowerPorts() int { return t.LowerWrite + t.Buses }

// Area returns the total area of both banks in units of 10⁴ λ².
func (t TwoLevel) Area() float64 {
	upper := BankArea(t.UpperRegs, t.Read, t.UpperWrite+t.Buses)
	lower := BankArea(t.LowerRegs, t.Buses, t.LowerWrite)
	return (upper + lower) / AreaUnit
}

// CycleTime returns the processor cycle time in ns: the uppermost bank
// must be accessible in one cycle and the lowest bank in two (the paper
// pipelines the lower bank over two processor cycles).
func (t TwoLevel) CycleTime() float64 {
	upper := BankAccessTime(t.UpperRegs, t.UpperPorts())
	lower := BankAccessTime(t.LowerRegs, t.LowerPorts()) / 2
	return math.Max(upper, lower)
}

// PaperConfig is one row of the paper's Table 2: matched-area
// configurations of the three architectures.
type PaperConfig struct {
	// Name is C1..C4.
	Name string
	// SB is the single-banked port configuration (shared by the paper's
	// 1-cycle and 2-cycle variants).
	SB SingleBank
	// RFC is the register file cache configuration.
	RFC TwoLevel
}

// Table2 returns the paper's four configurations C1–C4 (port counts from
// Table 2; 128 physical registers, 16-entry upper bank).
func Table2() []PaperConfig {
	return []PaperConfig{
		{
			Name: "C1",
			SB:   SingleBank{Regs: 128, Read: 3, Write: 2},
			RFC:  TwoLevel{UpperRegs: 16, LowerRegs: 128, Read: 3, UpperWrite: 2, LowerWrite: 2, Buses: 2},
		},
		{
			Name: "C2",
			SB:   SingleBank{Regs: 128, Read: 3, Write: 3},
			RFC:  TwoLevel{UpperRegs: 16, LowerRegs: 128, Read: 4, UpperWrite: 3, LowerWrite: 3, Buses: 2},
		},
		{
			Name: "C3",
			SB:   SingleBank{Regs: 128, Read: 4, Write: 3},
			RFC:  TwoLevel{UpperRegs: 16, LowerRegs: 128, Read: 4, UpperWrite: 4, LowerWrite: 4, Buses: 2},
		},
		{
			Name: "C4",
			SB:   SingleBank{Regs: 128, Read: 4, Write: 4},
			RFC:  TwoLevel{UpperRegs: 16, LowerRegs: 128, Read: 4, UpperWrite: 4, LowerWrite: 4, Buses: 3},
		},
	}
}

// Published holds the paper's Table 2 reference values for validation and
// for the modeled-vs-published columns of the Table 2 renderer.
type Published struct {
	Name              string
	SBArea, SB1Cycle  float64 // one-cycle single-banked: area (10⁴λ²), cycle time (ns)
	SB2Cycle          float64 // two-cycle single-banked cycle time (ns)
	RFCArea, RFCCycle float64 // register file cache: area, cycle time
}

// PublishedTable2 returns the paper's printed Table 2 numbers.
func PublishedTable2() []Published {
	return []Published{
		{Name: "C1", SBArea: 10921, SB1Cycle: 4.71, SB2Cycle: 2.35, RFCArea: 10593, RFCCycle: 2.45},
		{Name: "C2", SBArea: 15070, SB1Cycle: 4.98, SB2Cycle: 2.49, RFCArea: 15487, RFCCycle: 2.55},
		{Name: "C3", SBArea: 18855, SB1Cycle: 5.22, SB2Cycle: 2.61, RFCArea: 20529, RFCCycle: 2.61},
		{Name: "C4", SBArea: 24163, SB1Cycle: 5.48, SB2Cycle: 2.74, RFCArea: 25296, RFCCycle: 2.67},
	}
}
