package area

import (
	"math"
	"testing"
	"testing/quick"
)

// The calibration requirement: the model must reproduce the paper's
// published Table 2 to tight tolerances — that is the whole point of this
// package.
func TestModelReproducesTable2Areas(t *testing.T) {
	pub := PublishedTable2()
	for i, cfg := range Table2() {
		gotSB := cfg.SB.Area()
		if rel := math.Abs(gotSB-pub[i].SBArea) / pub[i].SBArea; rel > 0.01 {
			t.Errorf("%s single-bank area %.0f vs published %.0f (%.1f%% off)",
				cfg.Name, gotSB, pub[i].SBArea, rel*100)
		}
		gotRFC := cfg.RFC.Area()
		if rel := math.Abs(gotRFC-pub[i].RFCArea) / pub[i].RFCArea; rel > 0.02 {
			t.Errorf("%s RF-cache area %.0f vs published %.0f (%.1f%% off)",
				cfg.Name, gotRFC, pub[i].RFCArea, rel*100)
		}
	}
}

func TestModelReproducesTable2CycleTimes(t *testing.T) {
	pub := PublishedTable2()
	for i, cfg := range Table2() {
		got1 := cfg.SB.CycleTime(1)
		if math.Abs(got1-pub[i].SB1Cycle) > 0.05 {
			t.Errorf("%s 1-cycle time %.3f vs published %.2f", cfg.Name, got1, pub[i].SB1Cycle)
		}
		got2 := cfg.SB.CycleTime(2)
		if math.Abs(got2-pub[i].SB2Cycle) > 0.05 {
			t.Errorf("%s 2-cycle time %.3f vs published %.2f", cfg.Name, got2, pub[i].SB2Cycle)
		}
		gotRFC := cfg.RFC.CycleTime()
		if math.Abs(gotRFC-pub[i].RFCCycle) > 0.05 {
			t.Errorf("%s RF-cache cycle time %.3f vs published %.2f", cfg.Name, gotRFC, pub[i].RFCCycle)
		}
	}
}

func TestAreaMonotoneInPorts(t *testing.T) {
	base := BankArea(128, 3, 2)
	if BankArea(128, 4, 2) <= base {
		t.Error("adding a read port did not grow area")
	}
	if BankArea(128, 3, 3) <= base {
		t.Error("adding a write port did not grow area")
	}
	if BankArea(256, 3, 2) <= base {
		t.Error("doubling registers did not grow area")
	}
}

func TestWritePortCostsMoreThanRead(t *testing.T) {
	// Table 2's deltas show write ports cost more area; the calibrated
	// model must preserve that.
	dRead := BankArea(128, 4, 2) - BankArea(128, 3, 2)
	dWrite := BankArea(128, 3, 3) - BankArea(128, 3, 2)
	if dWrite <= dRead {
		t.Errorf("write-port delta %.0f ≤ read-port delta %.0f", dWrite, dRead)
	}
}

func TestAccessTimeMonotone(t *testing.T) {
	base := BankAccessTime(128, 5)
	if BankAccessTime(128, 6) <= base {
		t.Error("adding a port did not slow the bank")
	}
	if BankAccessTime(256, 5) <= base {
		t.Error("doubling registers did not slow the bank")
	}
	if BankAccessTime(16, 5) >= base {
		t.Error("a smaller bank should be faster")
	}
}

func TestUpperBankFasterThanFullFile(t *testing.T) {
	// The architectural premise: a 16-register heavily-ported bank is much
	// faster than the 128-register file.
	small := BankAccessTime(16, 7)
	big := BankAccessTime(128, 5)
	if small >= big*0.7 {
		t.Errorf("16-reg bank (%.2f ns) not clearly faster than 128-reg file (%.2f ns)", small, big)
	}
}

func TestTwoLevelPortAccounting(t *testing.T) {
	cfg := TwoLevel{UpperRegs: 16, LowerRegs: 128, Read: 3, UpperWrite: 2, LowerWrite: 2, Buses: 2}
	if got := cfg.UpperPorts(); got != 7 {
		t.Errorf("UpperPorts = %d, want 7", got)
	}
	if got := cfg.LowerPorts(); got != 4 {
		t.Errorf("LowerPorts = %d, want 4", got)
	}
}

func TestTwoLevelCycleTimeIsMaxOfBanks(t *testing.T) {
	cfg := TwoLevel{UpperRegs: 16, LowerRegs: 128, Read: 3, UpperWrite: 2, LowerWrite: 2, Buses: 2}
	upper := BankAccessTime(16, 7)
	lower := BankAccessTime(128, 4) / 2
	want := math.Max(upper, lower)
	if got := cfg.CycleTime(); got != want {
		t.Errorf("CycleTime = %v, want %v", got, want)
	}
}

func TestRFCTotalAreaComparableToSingleBank(t *testing.T) {
	// The paper's point: for each configuration the RF cache costs about
	// the same area as the single bank (within ~10%).
	for _, cfg := range Table2() {
		sb, rfc := cfg.SB.Area(), cfg.RFC.Area()
		if rel := math.Abs(rfc-sb) / sb; rel > 0.12 {
			t.Errorf("%s: RFC area %.0f vs SB %.0f differ by %.0f%%", cfg.Name, rfc, sb, rel*100)
		}
	}
}

func TestRFCCycleTimeRoughlyHalfOfSingleBank(t *testing.T) {
	// Headline premise of Figure 9: the RF cache runs at roughly the
	// 2-cycle pipelined clock, i.e. about half the 1-cycle single bank's.
	for _, cfg := range Table2() {
		one := cfg.SB.CycleTime(1)
		rfc := cfg.RFC.CycleTime()
		if ratio := rfc / one; ratio > 0.6 {
			t.Errorf("%s: RFC cycle %.2f / 1-cycle %.2f = %.2f, want ≈0.5", cfg.Name, rfc, one, ratio)
		}
	}
}

// Property: area is strictly increasing in each argument.
func TestQuickAreaMonotonicity(t *testing.T) {
	f := func(nRaw, rRaw, wRaw uint8) bool {
		n := int(nRaw%200) + 8
		r := int(rRaw%8) + 1
		w := int(wRaw%8) + 1
		a := BankArea(n, r, w)
		return BankArea(n+8, r, w) > a && BankArea(n, r+1, w) > a && BankArea(n, r, w+1) > a
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: access time is increasing in registers and (over the calibrated
// range of port counts) in ports.
func TestQuickAccessTimeMonotonicity(t *testing.T) {
	f := func(nRaw, pRaw uint8) bool {
		n := int(nRaw%240) + 16
		p := int(pRaw%12) + 2
		t0 := BankAccessTime(n, p)
		return BankAccessTime(n+16, p) > t0 && BankAccessTime(n, p+1) > t0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
