package store

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/sim"
	"repro/internal/sweep"
	"repro/rf/api"
)

// fakeBackend scripts one Backend's behavior for hedge tests.
type fakeBackend struct {
	delay    time.Duration
	res      sim.Result
	ok       bool
	err      error
	gets     atomic.Int64
	canceled atomic.Int64 // Gets that observed ctx cancellation before answering
}

func (f *fakeBackend) Get(ctx context.Context, k sweep.Key) (sim.Result, bool, error) {
	f.gets.Add(1)
	if f.delay > 0 {
		select {
		case <-time.After(f.delay):
		case <-ctx.Done():
			f.canceled.Add(1)
			return sim.Result{}, false, ctx.Err()
		}
	}
	return f.res, f.ok, f.err
}

func (f *fakeBackend) Put(context.Context, sweep.Key, sim.Result) error { return nil }
func (f *fakeBackend) Has(ctx context.Context, k sweep.Key) (bool, error) {
	_, ok, err := f.Get(ctx, k)
	return ok, err
}
func (f *fakeBackend) Len() int         { return 0 }
func (f *fakeBackend) SizeBytes() int64 { return 0 }

// TestHedgeSecondaryWins: a slow primary forces a hedge; the fast
// secondary's result wins, and the loser is canceled rather than left
// running to the end of its delay.
func TestHedgeSecondaryWins(t *testing.T) {
	slow := &fakeBackend{delay: 30 * time.Second, res: sim.Result{Cycles: 1}, ok: true}
	fast := &fakeBackend{res: sim.Result{Cycles: 2}, ok: true}
	ti := NewTiers(TierConfig{
		Remotes: []Tier{
			{Name: "slow", Backend: slow},
			{Name: "fast", Backend: fast},
		},
		HedgeAfter: 10 * time.Millisecond,
	})
	defer ti.Close()

	res, ok := ti.Get(key(0))
	if !ok || res.Cycles != 2 {
		t.Fatalf("Get = (%+v, %v), want the fast secondary's result", res, ok)
	}
	st := ti.Stats()
	if st.HedgedFetches != 1 || st.HedgeWins != 1 {
		t.Fatalf("hedged=%d wins=%d, want 1/1", st.HedgedFetches, st.HedgeWins)
	}
	if st.Hits["fast"] != 1 {
		t.Fatalf("Hits = %v, want fast:1", st.Hits)
	}
	// The slow primary's goroutine must be canceled by the winner, not
	// left sleeping for its full 30s delay.
	deadline := time.Now().Add(5 * time.Second)
	for slow.canceled.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("losing fetch was never canceled (goroutine leak)")
		}
		time.Sleep(time.Millisecond)
	}
}

// TestHedgeAllFail: when every tier errors, the read degrades to a
// miss (so the caller simulates) rather than failing the sweep.
func TestHedgeAllFail(t *testing.T) {
	a := &fakeBackend{err: errors.New("down")}
	b := &fakeBackend{err: errors.New("also down")}
	ti := NewTiers(TierConfig{Remotes: []Tier{
		{Name: "a", Backend: a},
		{Name: "b", Backend: b},
	}})
	defer ti.Close()

	if _, ok := ti.Get(key(0)); ok {
		t.Fatal("Get reported a hit with every tier failing")
	}
	st := ti.Stats()
	if st.Misses != 1 {
		t.Fatalf("Misses = %d, want 1", st.Misses)
	}
	if st.RemoteErrors != 2 {
		t.Fatalf("RemoteErrors = %d, want 2", st.RemoteErrors)
	}
	if st.HedgedFetches != 0 {
		t.Fatalf("HedgedFetches = %d, want 0 (immediate failover is not a hedge)", st.HedgedFetches)
	}
}

// TestRemoteMissFailsOverImmediately: a clean 404 from the primary
// fires the next tier at once, well before the hedge timer.
func TestRemoteMissFailsOverImmediately(t *testing.T) {
	empty := &fakeBackend{}
	holds := &fakeBackend{res: sim.Result{Cycles: 7}, ok: true}
	ti := NewTiers(TierConfig{
		Remotes: []Tier{
			{Name: "empty", Backend: empty},
			{Name: "holds", Backend: holds},
		},
		HedgeAfter: time.Hour, // immediate failover must not wait for this
	})
	defer ti.Close()

	done := make(chan struct{})
	var res sim.Result
	var ok bool
	go func() { res, ok = ti.Get(key(0)); close(done) }()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("failover waited on the hedge timer")
	}
	if !ok || res.Cycles != 7 {
		t.Fatalf("Get = (%+v, %v), want the second tier's result", res, ok)
	}
	if st := ti.Stats(); st.HedgedFetches != 0 {
		t.Fatalf("HedgedFetches = %d, want 0", st.HedgedFetches)
	}
}

// TestRemoteHitPromotesToLocal: a remote hit lands in the local store
// so the next read never leaves the node.
func TestRemoteHitPromotesToLocal(t *testing.T) {
	local := mustOpen(t, t.TempDir(), Options{})
	defer local.Close()
	back := &fakeBackend{res: sim.Result{Cycles: 42}, ok: true}
	ti := NewTiers(TierConfig{Local: local, Remotes: []Tier{{Name: "remote", Backend: back}}})
	defer ti.Close()

	if res, ok := ti.Get(key(0)); !ok || res.Cycles != 42 {
		t.Fatalf("Get = (%+v, %v), want remote hit", res, ok)
	}
	if res, ok := ti.Get(key(0)); !ok || res.Cycles != 42 {
		t.Fatalf("second Get = (%+v, %v), want local hit", res, ok)
	}
	st := ti.Stats()
	if st.Hits["remote"] != 1 || st.Hits["local"] != 1 || st.Promotions != 1 {
		t.Fatalf("stats = %+v, want remote:1 local:1 promotions:1", st)
	}
	if got := back.gets.Load(); got != 1 {
		t.Fatalf("backend saw %d Gets, want 1 (promotion must absorb the second)", got)
	}
}

// TestRemoteCorruptObjectIsError: an object document whose embedded key
// does not match the requested key must surface as an error (counted,
// retried on other tiers), never as a wrong result.
func TestRemoteCorruptObjectIsError(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		// Always answer with some other key's object.
		json.NewEncoder(w).Encode(api.Object{Key: string(key(99)), Result: sim.Result{Cycles: 13}})
	}))
	defer srv.Close()

	r := NewRemote(srv.URL, RemoteOptions{})
	if _, ok, err := r.Get(context.Background(), key(0)); ok || err == nil {
		t.Fatalf("Get on corrupt document = (ok=%v, err=%v), want (false, error)", ok, err)
	}

	ti := NewTiers(TierConfig{Remotes: []Tier{{Name: "remote", ID: srv.URL, Backend: r}}})
	defer ti.Close()
	if _, ok := ti.Get(key(0)); ok {
		t.Fatal("tiered Get returned a wrong-key object as a hit")
	}
	st := ti.Stats()
	if st.RemoteErrors != 1 || st.Misses != 1 {
		t.Fatalf("errors=%d misses=%d, want 1/1", st.RemoteErrors, st.Misses)
	}
}

// TestRemoteRoundTrip exercises Remote against a real object API shape:
// 404 is a clean miss, PUT then GET round-trips the result.
func TestRemoteRoundTrip(t *testing.T) {
	objects := map[string]sim.Result{}
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/objects/{key}", func(w http.ResponseWriter, r *http.Request) {
		k := r.PathValue("key")
		res, ok := objects[k]
		if !ok {
			http.Error(w, "no object", http.StatusNotFound)
			return
		}
		json.NewEncoder(w).Encode(api.Object{Key: k, Result: res})
	})
	mux.HandleFunc("PUT /v1/objects/{key}", func(w http.ResponseWriter, r *http.Request) {
		var obj api.Object
		if err := json.NewDecoder(r.Body).Decode(&obj); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		objects[obj.Key] = obj.Result
		fmt.Fprint(w, `{"ok":true}`)
	})
	srv := httptest.NewServer(mux)
	defer srv.Close()

	r := NewRemote(srv.URL, RemoteOptions{})
	ctx := context.Background()
	if _, ok, err := r.Get(ctx, key(0)); ok || err != nil {
		t.Fatalf("Get on empty remote = (ok=%v, err=%v), want clean miss", ok, err)
	}
	if err := r.Put(ctx, key(0), sim.Result{Cycles: 5}); err != nil {
		t.Fatalf("Put: %v", err)
	}
	res, ok, err := r.Get(ctx, key(0))
	if err != nil || !ok || res.Cycles != 5 {
		t.Fatalf("Get after Put = (%+v, %v, %v), want hit with Cycles=5", res, ok, err)
	}
	if ok, err := r.Has(ctx, key(0)); !ok || err != nil {
		t.Fatalf("Has = (%v, %v), want (true, nil)", ok, err)
	}
}

// staticPeers is a PeerSource pinned to a fixed candidate list.
type staticPeers struct{ urls []string }

func (s staticPeers) Peers(sweep.Key) []string { return s.urls }

// TestPeerFailsOverAcrossCandidates: a dead first candidate must not
// end the read — the next advertiser serves it.
func TestPeerFailsOverAcrossCandidates(t *testing.T) {
	good := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		json.NewEncoder(w).Encode(api.Object{Key: string(key(0)), Result: sim.Result{Cycles: 9}})
	}))
	defer good.Close()
	dead := httptest.NewServer(http.HandlerFunc(nil))
	dead.Close() // refused connections from here on

	p := NewPeer(staticPeers{urls: []string{dead.URL, good.URL}}, RemoteOptions{})
	res, ok, err := p.Get(context.Background(), key(0))
	if err != nil || !ok || res.Cycles != 9 {
		t.Fatalf("Get = (%+v, %v, %v), want the live peer's result", res, ok, err)
	}

	// No advertisers at all is a clean miss.
	none := NewPeer(staticPeers{}, RemoteOptions{})
	if _, ok, err := none.Get(context.Background(), key(0)); ok || err != nil {
		t.Fatalf("Get with no advertisers = (ok=%v, err=%v), want clean miss", ok, err)
	}
}

// TestWriteBehindReplicates: local Puts reach write-through remotes.
func TestWriteBehindReplicates(t *testing.T) {
	var puts atomic.Int64
	mux := http.NewServeMux()
	mux.HandleFunc("PUT /v1/objects/{key}", func(w http.ResponseWriter, r *http.Request) {
		puts.Add(1)
		fmt.Fprint(w, `{"ok":true}`)
	})
	srv := httptest.NewServer(mux)
	defer srv.Close()

	local := mustOpen(t, t.TempDir(), Options{})
	defer local.Close()
	ti := NewTiers(TierConfig{Local: local, Remotes: []Tier{{
		Name: "remote", ID: srv.URL,
		Backend:      NewRemote(srv.URL, RemoteOptions{}),
		WriteThrough: true,
	}}})
	for i := 0; i < 5; i++ {
		ti.Put(key(i), sim.Result{Cycles: uint64(i)})
	}
	ti.Close() // drains the write-behind queue
	if got := puts.Load(); got != 5 {
		t.Fatalf("remote saw %d PUTs, want 5", got)
	}
	if _, ok := local.Get(key(3)); !ok {
		t.Fatal("local tier missing a written key")
	}
}

// TestTierOrderSharded: with shard routing on, every key has a stable
// primary and the full candidate set is still consulted.
func TestTierOrderSharded(t *testing.T) {
	ti := NewTiers(TierConfig{
		Remotes: []Tier{
			{Name: "remote", ID: "http://a"},
			{Name: "remote", ID: "http://b"},
			{Name: "remote", ID: "http://c"},
		},
		Shards: 16,
	})
	defer ti.Close()
	primaries := map[int]bool{}
	for i := 0; i < 64; i++ {
		k := sweep.Key(fmt.Sprintf("%08x%056x", uint32(i)*2654435761, i))
		o1, o2 := ti.order(k), ti.order(k)
		if len(o1) != 3 {
			t.Fatalf("order dropped candidates: %v", o1)
		}
		for j := range o1 {
			if o1[j] != o2[j] {
				t.Fatalf("order not deterministic for %s: %v vs %v", k[:8], o1, o2)
			}
		}
		primaries[o1[0]] = true
	}
	if len(primaries) < 2 {
		t.Fatalf("64 keys all routed to one primary; rendezvous not spreading")
	}
}
