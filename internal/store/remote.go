package store

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	"repro/internal/sim"
	"repro/internal/sweep"
	"repro/rf/api"
)

// maxObjectBody bounds how much of a remote object response is read: a
// misbehaving or malicious tier cannot balloon memory. Result documents
// are a few KB; 4 MiB leaves two orders of magnitude of headroom.
const maxObjectBody = 4 << 20

// RemoteOptions configures a Remote backend.
type RemoteOptions struct {
	// APIKey, when set, authenticates object requests against a
	// tenant-registry server (sent as X-RF-API-Key).
	APIKey string
	// Client is the HTTP client to use; nil means a client with a
	// per-attempt Timeout of 5s.
	Client *http.Client
}

// Remote is a Backend over another rfserved's GET/PUT /v1/objects API —
// the remote blob tier of the store. It is stateless and safe for
// concurrent use.
type Remote struct {
	base   string
	apiKey string
	hc     *http.Client
}

// NewRemote returns a backend for the rfserved object API rooted at
// base (e.g. "http://store-1:8080").
func NewRemote(base string, opts RemoteOptions) *Remote {
	hc := opts.Client
	if hc == nil {
		hc = &http.Client{Timeout: 5 * time.Second}
	}
	return &Remote{
		base:   strings.TrimSuffix(base, "/"),
		apiKey: opts.APIKey,
		hc:     hc,
	}
}

// URL returns the remote's base URL.
func (r *Remote) URL() string { return r.base }

func (r *Remote) objectURL(k sweep.Key) string {
	return r.base + "/v1/objects/" + string(k)
}

func (r *Remote) newRequest(ctx context.Context, method, url string, body io.Reader) (*http.Request, error) {
	req, err := http.NewRequestWithContext(ctx, method, url, body)
	if err != nil {
		return nil, err
	}
	req.Header.Set(api.VersionHeader, fmt.Sprint(api.Version))
	if r.apiKey != "" {
		req.Header.Set(api.KeyHeader, r.apiKey)
	}
	return req, nil
}

// Get fetches one object. A 404 is a clean miss; any transport failure,
// non-2xx status, or a document whose embedded key does not match the
// requested key (the entry-embeds-key corruption check, applied over
// HTTP exactly as it is on disk) is an error — never a wrong result.
func (r *Remote) Get(ctx context.Context, k sweep.Key) (sim.Result, bool, error) {
	req, err := r.newRequest(ctx, http.MethodGet, r.objectURL(k), nil)
	if err != nil {
		return sim.Result{}, false, err
	}
	resp, err := r.hc.Do(req)
	if err != nil {
		return sim.Result{}, false, err
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusNotFound {
		io.Copy(io.Discard, io.LimitReader(resp.Body, maxObjectBody))
		return sim.Result{}, false, nil
	}
	if resp.StatusCode/100 != 2 {
		io.Copy(io.Discard, io.LimitReader(resp.Body, maxObjectBody))
		return sim.Result{}, false, fmt.Errorf("store remote: GET %s: %s", k[:8], resp.Status)
	}
	var obj api.Object
	if err := json.NewDecoder(io.LimitReader(resp.Body, maxObjectBody)).Decode(&obj); err != nil {
		return sim.Result{}, false, fmt.Errorf("store remote: GET %s: %w", k[:8], err)
	}
	if obj.Key != string(k) {
		return sim.Result{}, false, fmt.Errorf("store remote: object %s holds key %.8s", k[:8], obj.Key)
	}
	return obj.Result, true, nil
}

// Put uploads one object (write-behind from the tier layer). Failures
// are reported, not retried: the object remains durable in the local
// tier and a future read-through will miss remotely and repopulate.
func (r *Remote) Put(ctx context.Context, k sweep.Key, res sim.Result) error {
	body, err := json.Marshal(api.Object{Key: string(k), Result: res})
	if err != nil {
		return err
	}
	req, err := r.newRequest(ctx, http.MethodPut, r.objectURL(k), bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := r.hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, io.LimitReader(resp.Body, maxObjectBody))
	if resp.StatusCode/100 != 2 {
		return fmt.Errorf("store remote: PUT %s: %s", k[:8], resp.Status)
	}
	return nil
}

// Has probes for an object without transferring it (HEAD).
func (r *Remote) Has(ctx context.Context, k sweep.Key) (bool, error) {
	req, err := r.newRequest(ctx, http.MethodHead, r.objectURL(k), nil)
	if err != nil {
		return false, err
	}
	resp, err := r.hc.Do(req)
	if err != nil {
		return false, err
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, io.LimitReader(resp.Body, maxObjectBody))
	switch {
	case resp.StatusCode/100 == 2:
		return true, nil
	case resp.StatusCode == http.StatusNotFound:
		return false, nil
	default:
		return false, fmt.Errorf("store remote: HEAD %s: %s", k[:8], resp.Status)
	}
}

// Len and SizeBytes are unknown for a remote tier.
func (r *Remote) Len() int         { return 0 }
func (r *Remote) SizeBytes() int64 { return 0 }
