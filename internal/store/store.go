// Package store persists sweep results on disk, content-addressed by the
// same SHA-256 job key as the in-memory sweep cache (workload profile +
// processor configuration + instruction budget + seed override). It is
// the durability layer under cmd/rfbatch --store and the rfserved sweep
// service: identical configurations are simulated once per store, not
// once per process.
//
// Layout under the store directory:
//
//	index.json          LRU order and sizes (most recent first)
//	objects/<key>.json  one result per entry, written atomically
//
// Entry files are written to a temporary file and renamed into place, so
// a crash mid-write leaves only a stray tmp- file (removed on the next
// Open), never a half-visible entry. Loading tolerates corruption: a
// missing or unparsable index is rebuilt from the object files, and a
// truncated or otherwise undecodable entry is dropped — skipped at open
// when unindexed, or turned into a miss (and deleted) on first Get.
//
// The store is size-capped: when the object bytes exceed Options.MaxBytes
// the least-recently-used entries are evicted. A Store satisfies
// sweep.Cache, so it plugs directly into sweep.Runner, usually behind a
// sweep.Tiered front of in-memory MemCache.
package store

import (
	"container/list"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/sim"
	"repro/internal/sweep"
)

// Options configures a Store.
type Options struct {
	// MaxBytes caps the total size of entry files; 0 means unlimited.
	// When a Put pushes the store over the cap, least-recently-used
	// entries are evicted (never the entry just written, so a single
	// oversized result is retained until a later Put displaces it).
	MaxBytes int64
	// FlushInterval debounces index.json persistence: the index is
	// written this long after it first becomes dirty, and always on
	// Close. 0 means DefaultFlushInterval; negative flushes only on
	// Close. Entry files are always durable immediately — a crash
	// between flushes loses at most LRU ordering, and load() re-adopts
	// every committed object from the objects directory regardless.
	FlushInterval time.Duration
}

// DefaultFlushInterval is the index debounce used when
// Options.FlushInterval is zero.
const DefaultFlushInterval = 500 * time.Millisecond

// Stats counts store activity since Open.
type Stats struct {
	Hits      uint64 `json:"hits"`
	Misses    uint64 `json:"misses"`
	Puts      uint64 `json:"puts"`
	Evictions uint64 `json:"evictions"`
	// Corrupt counts entries dropped because their file was missing,
	// truncated, or undecodable.
	Corrupt uint64 `json:"corrupt"`
	// IOErrors counts writes that failed; the store degrades to a smaller
	// cache rather than failing the sweep.
	IOErrors uint64 `json:"io_errors"`
	// IndexWrites counts index.json persists. With debounced flushing
	// this stays far below Puts on a hot sweep.
	IndexWrites uint64 `json:"index_writes"`
}

// entry is one resident result.
type entry struct {
	key  sweep.Key
	size int64
}

// Store is a disk-backed, LRU-evicting, content-addressed result store.
// It is safe for concurrent use.
type Store struct {
	dir     string
	objects string
	opts    Options
	// rename commits a finished temp file; os.Rename outside tests. The
	// crash-consistency tests swap it to cut writers down mid-commit.
	rename func(oldpath, newpath string) error

	// readHook, when non-nil, runs during Get's disk read with s.mu
	// released. Tests use it to prove concurrent hits overlap.
	readHook func(sweep.Key)

	mu           sync.Mutex
	entries      map[sweep.Key]*list.Element
	lru          *list.List // front = most recently used
	total        int64
	stats        Stats
	dirty        bool // index order changed since last persist
	flushPending bool // an index flush timer is armed
	closed       bool
	flush        time.Duration // resolved Options.FlushInterval
}

// indexFile is the on-disk schema of index.json.
type indexFile struct {
	Schema  int          `json:"schema"`
	Entries []indexEntry `json:"entries"` // most recently used first
}

type indexEntry struct {
	Key  string `json:"key"`
	Size int64  `json:"size"`
}

// entryFile is the on-disk schema of one objects/<key>.json file. The
// embedded key lets Get verify the file belongs to its name, so a partial
// or foreign file never serves a wrong result.
type entryFile struct {
	Key    string     `json:"key"`
	Result sim.Result `json:"result"`
}

// Open loads (or initializes) the store rooted at dir.
func Open(dir string, opts Options) (*Store, error) {
	s := &Store{
		dir:     dir,
		objects: filepath.Join(dir, "objects"),
		opts:    opts,
		rename:  os.Rename,
		entries: make(map[sweep.Key]*list.Element),
		lru:     list.New(),
		flush:   opts.FlushInterval,
	}
	if s.flush == 0 {
		s.flush = DefaultFlushInterval
	}
	if err := os.MkdirAll(s.objects, 0o755); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	if err := s.load(); err != nil {
		return nil, err
	}
	s.mu.Lock()
	s.evictLocked("")
	s.mu.Unlock()
	return s, nil
}

// load populates the in-memory index from index.json and the objects
// directory, tolerating corruption in both.
func (s *Store) load() error {
	names, err := os.ReadDir(s.objects)
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	onDisk := make(map[sweep.Key]int64, len(names))
	for _, de := range names {
		name := de.Name()
		// A crash between CreateTemp and rename leaves a tmp- file;
		// sweep it now.
		if strings.HasPrefix(name, "tmp-") {
			os.Remove(filepath.Join(s.objects, name))
			continue
		}
		key, ok := keyOfFilename(name)
		if !ok {
			continue
		}
		info, err := de.Info()
		if err != nil {
			continue
		}
		onDisk[key] = info.Size()
	}

	// Adopt the index order where it is intact; entries whose file
	// vanished are dropped, sizes are re-stated from disk.
	var idx indexFile
	if data, err := os.ReadFile(filepath.Join(s.dir, "index.json")); err == nil {
		if json.Unmarshal(data, &idx) != nil || idx.Schema != 1 {
			idx.Entries = nil // corrupt index: rebuild from files below
		}
	}
	for _, ie := range idx.Entries {
		key := sweep.Key(ie.Key)
		size, ok := onDisk[key]
		if !ok {
			continue
		}
		if _, dup := s.entries[key]; dup {
			continue
		}
		s.entries[key] = s.lru.PushBack(&entry{key: key, size: size})
		s.total += size
		delete(onDisk, key)
	}

	// Files the index does not know about (crash before the index write,
	// or a rebuilt index) are adopted after probing that they decode;
	// truncated leftovers are deleted, not fatal. Adopted entries rank
	// behind indexed ones, newest first among themselves.
	orphans := make([]sweep.Key, 0, len(onDisk))
	for key := range onDisk {
		orphans = append(orphans, key)
	}
	sort.Slice(orphans, func(i, j int) bool {
		mi, _ := os.Stat(s.path(orphans[i]))
		mj, _ := os.Stat(s.path(orphans[j]))
		if mi == nil || mj == nil {
			return orphans[i] < orphans[j]
		}
		if !mi.ModTime().Equal(mj.ModTime()) {
			return mi.ModTime().After(mj.ModTime())
		}
		return orphans[i] < orphans[j]
	})
	for _, key := range orphans {
		if _, err := s.read(key); err != nil {
			s.drop(key)
			s.stats.Corrupt++
			continue
		}
		s.entries[key] = s.lru.PushBack(&entry{key: key, size: onDisk[key]})
		s.total += onDisk[key]
		s.dirty = true
	}
	return nil
}

// keyOfFilename maps an object filename back to its key, rejecting
// anything that is not a lowercase-hex SHA-256 name.
func keyOfFilename(name string) (sweep.Key, bool) {
	base, ok := strings.CutSuffix(name, ".json")
	if !ok {
		return "", false
	}
	return sweep.Key(base), validKey(sweep.Key(base))
}

// ValidKey reports whether k is a well-formed store key — lowercase hex
// SHA-256, the only shape the store turns into filenames and the object
// API accepts in URL paths.
func ValidKey(k sweep.Key) bool { return validKey(k) }

// validKey reports whether k is a lowercase hex SHA-256 — the only keys
// the store will turn into filenames.
func validKey(k sweep.Key) bool {
	if len(k) != 64 {
		return false
	}
	for i := 0; i < len(k); i++ {
		c := k[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

func (s *Store) path(k sweep.Key) string {
	return filepath.Join(s.objects, string(k)+".json")
}

// read loads and verifies one entry file.
func (s *Store) read(k sweep.Key) (sim.Result, error) {
	data, err := os.ReadFile(s.path(k))
	if err != nil {
		return sim.Result{}, err
	}
	var ef entryFile
	if err := json.Unmarshal(data, &ef); err != nil {
		return sim.Result{}, err
	}
	if ef.Key != string(k) {
		return sim.Result{}, fmt.Errorf("store: entry %s holds key %s", k, ef.Key)
	}
	return ef.Result, nil
}

// drop removes an entry's file and index state, if present.
func (s *Store) drop(k sweep.Key) {
	os.Remove(s.path(k))
	if el, ok := s.entries[k]; ok {
		s.total -= el.Value.(*entry).size
		s.lru.Remove(el)
		delete(s.entries, k)
		s.dirty = true
	}
}

// Get returns the stored result for a key. A corrupt entry counts as a
// miss and is deleted.
//
// The disk read happens with s.mu released: the lock only guards the
// membership check before and the revalidation after, so concurrent
// warm-sweep hits overlap on file I/O instead of serializing. Entry
// files are immutable once renamed into place (Put never rewrites an
// existing key), which makes the unlocked read safe; the only racing
// mutation is removal, handled by re-checking membership afterwards.
func (s *Store) Get(k sweep.Key) (sim.Result, bool) {
	s.mu.Lock()
	if _, ok := s.entries[k]; !ok {
		s.stats.Misses++
		s.mu.Unlock()
		return sim.Result{}, false
	}
	s.mu.Unlock()

	if s.readHook != nil {
		s.readHook(k)
	}
	res, err := s.read(k)

	s.mu.Lock()
	defer s.mu.Unlock()
	el, present := s.entries[k]
	if err != nil {
		// Only a still-indexed entry is corruption; if a concurrent
		// eviction removed the entry (and its file) mid-read, this is
		// an ordinary miss.
		if present {
			s.drop(k)
			s.stats.Corrupt++
		}
		s.stats.Misses++
		return sim.Result{}, false
	}
	if present {
		s.lru.MoveToFront(el)
		s.dirty = true
		s.scheduleFlushLocked()
	}
	// The read succeeded against an immutable entry file, so the result
	// is valid even if the entry was evicted while we read it.
	s.stats.Hits++
	return res, true
}

// Has reports whether a key is resident, without touching LRU order,
// stats, or the disk.
func (s *Store) Has(k sweep.Key) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	_, ok := s.entries[k]
	return ok
}

// Put stores a result under its key, atomically (write to a temporary
// file, then rename), evicting least-recently-used entries if the store
// exceeds its size cap. Results are deterministic per key, so an existing
// entry is only touched, never rewritten. Write failures degrade to a
// cache miss later rather than failing the caller.
func (s *Store) Put(k sweep.Key, res sim.Result) {
	if !validKey(k) {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if el, ok := s.entries[k]; ok {
		s.lru.MoveToFront(el)
		s.dirty = true
		s.scheduleFlushLocked()
		return
	}
	data, err := json.Marshal(entryFile{Key: string(k), Result: res})
	if err != nil {
		s.stats.IOErrors++
		return
	}
	data = append(data, '\n')
	if err := s.writeAtomic(s.path(k), data); err != nil {
		s.stats.IOErrors++
		return
	}
	s.entries[k] = s.lru.PushFront(&entry{key: k, size: int64(len(data))})
	s.total += int64(len(data))
	s.stats.Puts++
	s.evictLocked(k)
	// The entry file above is already durable; the index is only LRU
	// order, so its persistence is debounced instead of rewritten per
	// insert (which re-marshaled the full index — O(n²) bytes over an
	// n-job sweep). A crash before the flush recovers every committed
	// object through load()'s rebuild-from-objects path.
	s.dirty = true
	s.scheduleFlushLocked()
}

// scheduleFlushLocked arms a one-shot index flush FlushInterval from
// now, unless one is already pending or the debounce is disabled.
func (s *Store) scheduleFlushLocked() {
	if s.flushPending || s.closed || s.flush < 0 {
		return
	}
	s.flushPending = true
	time.AfterFunc(s.flush, s.flushIndex)
}

// flushIndex is the timer callback behind scheduleFlushLocked.
func (s *Store) flushIndex() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.flushPending = false
	if s.closed || !s.dirty {
		return
	}
	s.persistLocked()
}

// writeAtomic writes data to path via a tmp- file in the objects
// directory plus rename, so readers never observe a partial entry. The
// tmp file is fsynced before the rename: without it, a machine crash
// shortly after the rename can leave the final name pointing at
// zero-length or partial content, which a journaled coordinator would
// then trust as a completed result on resume.
func (s *Store) writeAtomic(path string, data []byte) error {
	tmp, err := os.CreateTemp(s.objects, "tmp-*")
	if err != nil {
		return err
	}
	_, werr := tmp.Write(data)
	if werr == nil {
		werr = tmp.Sync()
	}
	cerr := tmp.Close()
	if werr != nil || cerr != nil {
		os.Remove(tmp.Name())
		if werr != nil {
			return werr
		}
		return cerr
	}
	if err := s.rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return nil
}

// evictLocked removes least-recently-used entries until the store fits
// its cap, never evicting keep (the entry just written).
func (s *Store) evictLocked(keep sweep.Key) {
	if s.opts.MaxBytes <= 0 {
		return
	}
	for s.total > s.opts.MaxBytes {
		el := s.lru.Back()
		if el == nil {
			return
		}
		e := el.Value.(*entry)
		if e.key == keep {
			return // a single oversized entry stays resident
		}
		s.drop(e.key)
		s.stats.Evictions++
	}
}

// persistLocked writes index.json atomically; failures are counted, not
// fatal (the index rebuilds from object files on the next Open).
func (s *Store) persistLocked() {
	idx := indexFile{Schema: 1}
	for el := s.lru.Front(); el != nil; el = el.Next() {
		e := el.Value.(*entry)
		idx.Entries = append(idx.Entries, indexEntry{Key: string(e.key), Size: e.size})
	}
	data, err := json.MarshalIndent(idx, "", " ")
	if err != nil {
		s.stats.IOErrors++
		return
	}
	if err := s.writeAtomic(filepath.Join(s.dir, "index.json"), append(data, '\n')); err != nil {
		s.stats.IOErrors++
		return
	}
	s.stats.IndexWrites++
	s.dirty = false
}

// Close flushes a dirty index and disarms the debounce timer. The store
// must not be used after Close.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.dirty {
		s.persistLocked()
	}
	s.closed = true // a pending flushIndex becomes a no-op
	if s.stats.IOErrors > 0 {
		return fmt.Errorf("store: %d write errors (see Stats)", s.stats.IOErrors)
	}
	return nil
}

// Len returns the number of resident entries.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.entries)
}

// SizeBytes returns the total size of resident entry files.
func (s *Store) SizeBytes() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.total
}

// Stats returns activity counters since Open.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}

// ShardOf maps a key to one of n shard buckets by its leading 32 bits.
// Every node in a fleet computes the same mapping, so shard ids are a
// compact, stable inventory language: workers advertise the buckets
// they hold and the coordinator routes misses to advertisers.
func ShardOf(k sweep.Key, n int) int {
	if n <= 0 {
		return 0
	}
	pfx := string(k)
	if len(pfx) > 8 {
		pfx = pfx[:8]
	}
	v, err := strconv.ParseUint(pfx, 16, 64)
	if err != nil {
		// Not a hex key (never the case for real job keys): degrade to
		// a stable bucket rather than failing.
		v = uint64(len(k))
	}
	return int(v % uint64(n))
}

// RendezvousScore ranks a candidate owner of a shard for highest-
// random-weight (rendezvous) hashing: among candidates, the highest
// score owns the shard. Ranking by a stable identity (worker name,
// remote URL) keeps ownership consistent across restarts and
// re-registrations, so every node routes a given key the same way.
func RendezvousScore(id string, shard int) uint64 {
	h := fnv.New64a()
	h.Write([]byte(id))
	h.Write([]byte{'|'})
	h.Write([]byte(strconv.Itoa(shard)))
	v := h.Sum64()
	// FNV-1a diffuses trailing bytes poorly — inputs differing only in
	// the shard suffix keep nearly identical high bits, which would let
	// one identity win every shard. A fmix64-style finalizer restores
	// the avalanche.
	v ^= v >> 33
	v *= 0xff51afd7ed558ccd
	v ^= v >> 33
	v *= 0xc4ceb9fe1a85ec53
	v ^= v >> 33
	return v
}

// ShardInventory returns the sorted shard buckets (out of n) that hold
// at least one resident entry.
func (s *Store) ShardInventory(n int) []int {
	if n <= 0 {
		return nil
	}
	s.mu.Lock()
	held := make(map[int]bool)
	for k := range s.entries {
		held[ShardOf(k, n)] = true
	}
	s.mu.Unlock()
	out := make([]int, 0, len(held))
	for sh := range held {
		out = append(out, sh)
	}
	sort.Ints(out)
	return out
}
