package store

import (
	"context"
	"sync"

	"repro/internal/sim"
	"repro/internal/sweep"
)

// PeerSource resolves which fleet peers may hold a key: Peers returns
// the object-API base URLs of the workers advertising the key's shard,
// best candidate first (rendezvous order). dispatch.Coordinator
// implements it from the inventory workers report on every poll.
type PeerSource interface {
	Peers(k sweep.Key) []string
}

// Peer is a Backend over the worker fleet's advertised store inventory:
// a read-only tier whose membership changes as workers come and go.
// Candidates for a key are tried in order with a shared context, so the
// tier-level hedging still bounds and cancels the whole attempt.
//
// Several workers can legitimately advertise the same shard — each
// stores what it simulated, not what it "owns" — so a 404 from the
// best-ranked candidate falls through to the next rather than ending
// the read.
type Peer struct {
	src  PeerSource
	opts RemoteOptions

	mu      sync.Mutex
	remotes map[string]*Remote // per-URL clients, reused across reads
}

// NewPeer returns the fleet-peer tier over src.
func NewPeer(src PeerSource, opts RemoteOptions) *Peer {
	return &Peer{src: src, opts: opts, remotes: make(map[string]*Remote)}
}

func (p *Peer) remote(url string) *Remote {
	p.mu.Lock()
	defer p.mu.Unlock()
	r, ok := p.remotes[url]
	if !ok {
		r = NewRemote(url, p.opts)
		p.remotes[url] = r
	}
	return r
}

// Get tries the advertising peers in rank order. No advertiser is a
// clean miss; an attempt error is remembered but later candidates are
// still tried, and the read reports an error only when no peer hit.
func (p *Peer) Get(ctx context.Context, k sweep.Key) (sim.Result, bool, error) {
	var firstErr error
	for _, url := range p.src.Peers(k) {
		res, ok, err := p.remote(url).Get(ctx, k)
		if ok {
			return res, true, nil
		}
		if err != nil && firstErr == nil {
			firstErr = err
		}
		if ctx.Err() != nil {
			break
		}
	}
	return sim.Result{}, false, firstErr
}

// Put is a no-op: peers populate their own stores by simulating, and
// promotion happens on the reading node's local tier.
func (p *Peer) Put(context.Context, sweep.Key, sim.Result) error { return nil }

// Has probes the advertising peers.
func (p *Peer) Has(ctx context.Context, k sweep.Key) (bool, error) {
	var firstErr error
	for _, url := range p.src.Peers(k) {
		ok, err := p.remote(url).Has(ctx, k)
		if ok {
			return true, nil
		}
		if err != nil && firstErr == nil {
			firstErr = err
		}
		if ctx.Err() != nil {
			break
		}
	}
	return false, firstErr
}

// Len and SizeBytes are unknown for the fleet tier.
func (p *Peer) Len() int         { return 0 }
func (p *Peer) SizeBytes() int64 { return 0 }
