package store

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/sim"
)

// These tests simulate a writer killed at precise points inside the
// tmp+rename commit protocol, via the injected rename hook, and assert
// the invariant the store documents: committed entries are never lost,
// uncommitted or torn entries are skipped or repaired, and no debris
// survives a reopen. The dying store is deliberately never Closed — a
// crash doesn't flush anything.

// crashingRename returns a rename hook that commits normally until an
// object write matches victim; that rename is skipped (the classic
// kill -9 between write and rename), leaving the temp file behind.
func crashingRename(victim string) func(string, string) error {
	return func(oldpath, newpath string) error {
		if strings.Contains(newpath, victim) {
			return nil // "crashed": tmp stays, target never appears
		}
		return os.Rename(oldpath, newpath)
	}
}

func countTmpFiles(t *testing.T, dir string) int {
	t.Helper()
	names, err := os.ReadDir(filepath.Join(dir, "objects"))
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for _, de := range names {
		if strings.HasPrefix(de.Name(), "tmp-") {
			n++
		}
	}
	return n
}

// TestCrashBeforeObjectRename kills the writer after the temp file is
// written but before it is renamed into place. The entry must be gone
// after reopen (it was never committed), every earlier entry must
// survive, and the stray temp file must be swept.
func TestCrashBeforeObjectRename(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, Options{})
	s.Put(key(0), sim.Result{Cycles: 10})
	s.Put(key(1), sim.Result{Cycles: 11})

	s.SetRenameHook(crashingRename(string(key(2))))
	s.Put(key(2), sim.Result{Cycles: 12})
	// The dying process believed the Put succeeded; both views are
	// acceptable pre-crash. What matters is the state after reopen.
	if countTmpFiles(t, dir) == 0 {
		t.Fatal("crash simulation left no temp debris; the hook did not fire")
	}

	re := mustOpen(t, dir, Options{})
	for i, want := range []uint64{10, 11} {
		res, ok := re.Get(key(i))
		if !ok || res.Cycles != want {
			t.Errorf("committed entry %d lost after crash: ok=%v res=%+v", i, ok, res)
		}
	}
	if _, ok := re.Get(key(2)); ok {
		t.Error("uncommitted entry served after crash")
	}
	if n := countTmpFiles(t, dir); n != 0 {
		t.Errorf("%d temp files survived reopen, want 0", n)
	}
	// The reopened store must accept the key again.
	re.Put(key(2), sim.Result{Cycles: 12})
	if res, ok := re.Get(key(2)); !ok || res.Cycles != 12 {
		t.Errorf("re-put after crash not served: ok=%v res=%+v", ok, res)
	}
}

// TestCrashTearsObjectFile simulates a torn write surviving the rename
// (a non-atomic filesystem flushing half a page): the committed file is
// truncated mid-JSON. The reopened store must treat it as a miss, repair
// by deletion, and keep serving every intact entry.
func TestCrashTearsObjectFile(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, Options{})
	s.Put(key(0), sim.Result{Cycles: 10})

	s.SetRenameHook(func(oldpath, newpath string) error {
		if err := os.Rename(oldpath, newpath); err != nil {
			return err
		}
		if strings.Contains(newpath, string(key(1))) {
			info, err := os.Stat(newpath)
			if err != nil {
				return err
			}
			return os.Truncate(newpath, info.Size()/2)
		}
		return nil
	})
	s.Put(key(1), sim.Result{Cycles: 11})

	re := mustOpen(t, dir, Options{})
	if res, ok := re.Get(key(0)); !ok || res.Cycles != 10 {
		t.Errorf("intact entry lost next to a torn one: ok=%v res=%+v", ok, res)
	}
	if _, ok := re.Get(key(1)); ok {
		t.Error("torn entry served after reopen")
	}
	if re.Stats().Corrupt == 0 {
		t.Error("torn entry left no corruption trace in stats")
	}
	if _, err := os.Stat(filepath.Join(dir, "objects", string(key(1))+".json")); !os.IsNotExist(err) {
		t.Errorf("torn entry file not repaired by deletion: %v", err)
	}
}

// TestCrashBeforeIndexRename kills the writer after the object file is
// committed but before the refreshed index lands: the object exists, the
// index has never heard of it. Reopen must adopt the orphan and serve it.
func TestCrashBeforeIndexRename(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, Options{})
	s.Put(key(0), sim.Result{Cycles: 10})

	s.SetRenameHook(crashingRename("index.json"))
	s.Put(key(1), sim.Result{Cycles: 11})

	re := mustOpen(t, dir, Options{})
	for i, want := range []uint64{10, 11} {
		res, ok := re.Get(key(i))
		if !ok || res.Cycles != want {
			t.Errorf("entry %d lost to a stale index: ok=%v res=%+v", i, ok, res)
		}
	}
	if n := countTmpFiles(t, dir); n != 0 {
		t.Errorf("%d temp files survived reopen, want 0", n)
	}
}

// TestCrashStormLosesNothingCommitted interleaves successful and killed
// writers: every Put whose commit completed must survive, every killed
// one must vanish cleanly, across two consecutive crashes and reopens.
func TestCrashStormLosesNothingCommitted(t *testing.T) {
	dir := t.TempDir()
	committed := map[int]uint64{}

	s := mustOpen(t, dir, Options{})
	for i := 0; i < 4; i++ {
		s.Put(key(i), sim.Result{Cycles: uint64(100 + i)})
		committed[i] = uint64(100 + i)
	}
	s.SetRenameHook(crashingRename(string(key(4))))
	s.Put(key(4), sim.Result{Cycles: 104}) // dies mid-commit

	s = mustOpen(t, dir, Options{})
	s.Put(key(5), sim.Result{Cycles: 105})
	committed[5] = 105
	s.SetRenameHook(crashingRename(string(key(6))))
	s.Put(key(6), sim.Result{Cycles: 106}) // dies mid-commit

	re := mustOpen(t, dir, Options{})
	for i, want := range committed {
		res, ok := re.Get(key(i))
		if !ok || res.Cycles != want {
			t.Errorf("committed entry %d lost in the storm: ok=%v res=%+v", i, ok, res)
		}
	}
	for _, i := range []int{4, 6} {
		if _, ok := re.Get(key(i)); ok {
			t.Errorf("killed writer's entry %d resurrected", i)
		}
	}
	if got, want := re.Len(), len(committed); got != want {
		t.Errorf("reopened store has %d entries, want %d", got, want)
	}
	if n := countTmpFiles(t, dir); n != 0 {
		t.Errorf("%d temp files survived the storm, want 0", n)
	}
}
