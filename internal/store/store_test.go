package store

import (
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/sweep"
)

// key synthesizes a distinct valid store key (64 lowercase hex digits).
func key(i int) sweep.Key {
	return sweep.Key(fmt.Sprintf("%064x", i+1))
}

func mustOpen(t *testing.T, dir string, opts Options) *Store {
	t.Helper()
	s, err := Open(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// entrySize measures the on-disk size of one entry with the given result.
func entrySize(t *testing.T, res sim.Result) int64 {
	t.Helper()
	s := mustOpen(t, t.TempDir(), Options{})
	s.Put(key(0), res)
	return s.SizeBytes()
}

func TestPutGetAcrossReopen(t *testing.T) {
	dir := t.TempDir()
	var hist stats.Histogram
	hist.Add(3)
	hist.AddN(7, 2)
	want := sim.Result{
		Instructions: 120000, Cycles: 60000, IPC: 2,
		Branches: 1000, Mispredicts: 77,
		ICacheMissRate: 0.015625, DCacheMissRate: 0.03125,
		ValueHist: hist,
	}

	s := mustOpen(t, dir, Options{})
	s.Put(key(0), want)
	if got, ok := s.Get(key(0)); !ok || !reflect.DeepEqual(got, want) {
		t.Fatalf("same-process get = %+v, %v", got, ok)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// A fresh process sees the entry, bit-for-bit.
	s2 := mustOpen(t, dir, Options{})
	defer s2.Close()
	got, ok := s2.Get(key(0))
	if !ok {
		t.Fatal("entry lost across reopen")
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("reopened entry differs:\n got %+v\nwant %+v", got, want)
	}
	if _, ok := s2.Get(key(1)); ok {
		t.Error("get of an absent key hit")
	}
	st := s2.Stats()
	if st.Hits != 1 || st.Misses != 1 {
		t.Errorf("stats = %+v, want 1 hit / 1 miss", st)
	}
}

func TestEvictionOrder(t *testing.T) {
	res := sim.Result{Cycles: 1}
	size := entrySize(t, res)
	dir := t.TempDir()
	// Room for exactly three entries.
	s := mustOpen(t, dir, Options{MaxBytes: 3*size + size/2})
	a, b, c, d := key(0), key(1), key(2), key(3)
	s.Put(a, res)
	s.Put(b, res)
	s.Put(c, res)
	if s.Len() != 3 {
		t.Fatalf("len = %d before eviction, want 3", s.Len())
	}
	// Touch a so b becomes the least recently used …
	if _, ok := s.Get(a); !ok {
		t.Fatal("warm get missed")
	}
	// … then overflow: b, and only b, must go.
	s.Put(d, res)
	if s.Len() != 3 {
		t.Fatalf("len = %d after eviction, want 3", s.Len())
	}
	if _, ok := s.Get(b); ok {
		t.Error("least-recently-used entry b survived eviction")
	}
	for _, k := range []sweep.Key{a, c, d} {
		if _, ok := s.Get(k); !ok {
			t.Errorf("entry %s... evicted out of LRU order", k[:8])
		}
	}
	if st := s.Stats(); st.Evictions != 1 {
		t.Errorf("evictions = %d, want 1", st.Evictions)
	}
	if _, err := os.Stat(s.path(b)); !os.IsNotExist(err) {
		t.Error("evicted entry file still on disk")
	}

	// LRU order survives a reopen: touch c, reopen, overflow → a goes
	// (c and d are more recent).
	s.Get(c)
	s.Close()
	s2 := mustOpen(t, dir, Options{MaxBytes: 3*size + size/2})
	defer s2.Close()
	s2.Put(key(4), res)
	if _, ok := s2.Get(a); ok {
		t.Error("reopen forgot the LRU order: a outlived c and d")
	}
	for _, k := range []sweep.Key{c, d, key(4)} {
		if _, ok := s2.Get(k); !ok {
			t.Errorf("entry %s... wrongly evicted after reopen", k[:8])
		}
	}
}

func TestOversizedEntryRetained(t *testing.T) {
	s := mustOpen(t, t.TempDir(), Options{MaxBytes: 1})
	s.Put(key(0), sim.Result{Cycles: 1})
	if s.Len() != 1 {
		t.Fatal("sole oversized entry was evicted at Put")
	}
	// The next Put displaces it.
	s.Put(key(1), sim.Result{Cycles: 2})
	if s.Len() != 1 {
		t.Fatalf("len = %d, want 1", s.Len())
	}
	if _, ok := s.Get(key(1)); !ok {
		t.Error("newest entry evicted instead of the oversized one")
	}
}

// TestTruncatedEntrySkipped simulates a crash that corrupts an entry
// file: loading must succeed and the entry must degrade to a miss.
func TestTruncatedEntrySkipped(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, Options{})
	s.Put(key(0), sim.Result{Cycles: 1})
	s.Put(key(1), sim.Result{Cycles: 2})
	s.Close()

	// Truncate entry 0 mid-JSON (indexed entry → discovered on Get).
	p0 := filepath.Join(dir, "objects", string(key(0))+".json")
	data, err := os.ReadFile(p0)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(p0, data[:len(data)/2], 0o644); err != nil {
		t.Fatal(err)
	}

	s2 := mustOpen(t, dir, Options{})
	if _, ok := s2.Get(key(0)); ok {
		t.Error("truncated entry served a result")
	}
	if got, ok := s2.Get(key(1)); !ok || got.Cycles != 2 {
		t.Error("intact entry lost alongside the corrupt one")
	}
	if st := s2.Stats(); st.Corrupt != 1 {
		t.Errorf("corrupt count = %d, want 1", st.Corrupt)
	}
	if _, err := os.Stat(p0); !os.IsNotExist(err) {
		t.Error("corrupt entry file not removed")
	}
	s2.Close()

	// Same crash with the index also gone (unindexed entry → probed and
	// dropped at Open).
	s3 := mustOpen(t, dir, Options{})
	s3.Put(key(0), sim.Result{Cycles: 1})
	s3.Close()
	if err := os.WriteFile(p0, data[:len(data)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.Remove(filepath.Join(dir, "index.json")); err != nil {
		t.Fatal(err)
	}
	s4 := mustOpen(t, dir, Options{})
	defer s4.Close()
	if _, ok := s4.Get(key(0)); ok {
		t.Error("truncated orphan entry served a result")
	}
	if st := s4.Stats(); st.Corrupt != 1 {
		t.Errorf("corrupt count after orphan probe = %d, want 1", st.Corrupt)
	}
	if got, ok := s4.Get(key(1)); !ok || got.Cycles != 2 {
		t.Error("intact entry lost during index rebuild")
	}
}

func TestCorruptIndexRebuilt(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, Options{})
	s.Put(key(0), sim.Result{Cycles: 9})
	s.Close()
	if err := os.WriteFile(filepath.Join(dir, "index.json"), []byte(`{"schema":`), 0o644); err != nil {
		t.Fatal(err)
	}
	s2 := mustOpen(t, dir, Options{})
	defer s2.Close()
	if got, ok := s2.Get(key(0)); !ok || got.Cycles != 9 {
		t.Error("entries lost under a corrupt index")
	}
}

func TestTmpFilesSweptAtOpen(t *testing.T) {
	dir := t.TempDir()
	mustOpen(t, dir, Options{}).Close()
	stray := filepath.Join(dir, "objects", "tmp-123456")
	if err := os.WriteFile(stray, []byte("partial"), 0o644); err != nil {
		t.Fatal(err)
	}
	mustOpen(t, dir, Options{}).Close()
	if _, err := os.Stat(stray); !os.IsNotExist(err) {
		t.Error("stray tmp file not removed at open")
	}
}

func TestForeignAndInvalidNamesIgnored(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, Options{})
	s.Put("../../etc/passwd", sim.Result{})
	s.Put("short", sim.Result{})
	s.Put(sweep.Key("ZZ"+string(key(0))[2:]), sim.Result{})
	if s.Len() != 0 {
		t.Fatalf("invalid keys stored: len = %d", s.Len())
	}
	s.Close()
	for _, name := range []string{"README.txt", "deadbeef.json"} {
		if err := os.WriteFile(filepath.Join(dir, "objects", name), []byte("x"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	s2 := mustOpen(t, dir, Options{})
	defer s2.Close()
	if s2.Len() != 0 {
		t.Errorf("foreign object files adopted: len = %d", s2.Len())
	}
}

func TestConcurrentAccess(t *testing.T) {
	size := entrySize(t, sim.Result{Cycles: 1})
	// A cap small enough to force constant eviction under load.
	s := mustOpen(t, t.TempDir(), Options{MaxBytes: 8 * size})
	defer s.Close()
	const (
		workers = 8
		span    = 32
		rounds  = 40
	)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				k := key((w*7 + i) % span)
				if res, ok := s.Get(k); ok {
					if res.Cycles != uint64((w*7+i)%span)+1 {
						t.Errorf("key %s returned wrong payload", k[:8])
					}
					continue
				}
				s.Put(k, sim.Result{Cycles: uint64((w*7+i)%span) + 1})
			}
		}(w)
	}
	wg.Wait()
	if s.SizeBytes() > 8*size {
		t.Errorf("store over cap after concurrent load: %d > %d", s.SizeBytes(), 8*size)
	}
}

// TestRunnerResumesFromStore is the --store contract: a second process
// (fresh Runner, fresh Store over the same directory) performs zero
// simulations.
func TestRunnerResumesFromStore(t *testing.T) {
	dir := t.TempDir()
	jobs := make([]sweep.Job, 6)
	for i := range jobs {
		jobs[i] = sweep.Job{Seed: uint64(i + 1)}
	}
	var sims atomic.Int64
	run := func() []sweep.Outcome {
		st := mustOpen(t, dir, Options{})
		defer st.Close()
		r := sweep.NewRunner(sweep.RunnerConfig{
			Cache: sweep.Tiered(sweep.NewMemCache(), st),
			Simulate: func(j sweep.Job) sim.Result {
				sims.Add(1)
				return sim.Result{Cycles: j.Seed * 10}
			},
		})
		return r.RunOutcomes(jobs, 4)
	}
	first := run()
	if got := sims.Load(); got != int64(len(jobs)) {
		t.Fatalf("cold run simulated %d of %d jobs", got, len(jobs))
	}
	second := run()
	if got := sims.Load(); got != int64(len(jobs)) {
		t.Errorf("warm run re-simulated: %d total", got)
	}
	for i := range jobs {
		if !second[i].Cached {
			t.Errorf("warm job %d not marked cached", i)
		}
		if !reflect.DeepEqual(first[i].Result, second[i].Result) {
			t.Errorf("warm job %d result differs from cold run", i)
		}
	}
}
