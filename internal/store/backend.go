package store

import (
	"context"

	"repro/internal/sim"
	"repro/internal/sweep"
)

// Backend is one tier of the multi-backend result store: the local disk
// Store, a remote rfserved object API, or the worker fleet's advertised
// inventory. Get/Put/Has carry a Context because remote tiers are
// network calls that the hedged read-through must be able to cancel
// when a rival tier answers first.
//
// Get distinguishes a clean miss (ok=false, err=nil) from a failed
// fetch (err != nil): misses fall through to the next tier silently,
// errors are counted as remote_errors and trigger an immediate hedge.
type Backend interface {
	Get(ctx context.Context, k sweep.Key) (sim.Result, bool, error)
	Put(ctx context.Context, k sweep.Key, res sim.Result) error
	Has(ctx context.Context, k sweep.Key) (bool, error)
	// Len and SizeBytes are advisory occupancy figures; tiers that
	// cannot know them (remote, peer) report 0.
	Len() int
	SizeBytes() int64
}

// localBackend adapts the disk Store's synchronous, infallible-surface
// methods to the Backend contract. Local I/O ignores the context: disk
// reads are not worth the cancellation plumbing, and the Store already
// degrades corruption and write failures to misses internally.
type localBackend struct{ s *Store }

// Backend returns the store as the local tier of a multi-backend
// read-through stack.
func (s *Store) Backend() Backend { return localBackend{s} }

func (l localBackend) Get(_ context.Context, k sweep.Key) (sim.Result, bool, error) {
	res, ok := l.s.Get(k)
	return res, ok, nil
}

func (l localBackend) Put(_ context.Context, k sweep.Key, res sim.Result) error {
	l.s.Put(k, res)
	return nil
}

func (l localBackend) Has(_ context.Context, k sweep.Key) (bool, error) {
	return l.s.Has(k), nil
}

func (l localBackend) Len() int         { return l.s.Len() }
func (l localBackend) SizeBytes() int64 { return l.s.SizeBytes() }
