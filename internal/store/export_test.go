package store

import "repro/internal/sweep"

// SetRenameHook replaces the rename step that commits a temp file into
// place, letting crash-consistency tests simulate a writer killed
// mid-commit. Tests only.
func (s *Store) SetRenameHook(f func(oldpath, newpath string) error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.rename = f
}

// SetReadHook installs a callback that runs during Get's disk read,
// after the membership check releases s.mu and before revalidation
// reacquires it. The lock-contention regression test uses it as a
// rendezvous point to prove two Gets can be inside the read at once.
// Must be set before the store is shared between goroutines. Tests only.
func (s *Store) SetReadHook(f func(k sweep.Key)) {
	s.readHook = f
}
