package store

// SetRenameHook replaces the rename step that commits a temp file into
// place, letting crash-consistency tests simulate a writer killed
// mid-commit. Tests only.
func (s *Store) SetRenameHook(f func(oldpath, newpath string) error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.rename = f
}
