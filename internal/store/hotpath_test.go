package store

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/sim"
	"repro/internal/sweep"
)

// TestGetReadsOutsideLock proves the warm-hit fast path does not hold
// s.mu across the disk read: two concurrent Gets must both be inside
// read() at the same instant. With the old lock-across-read behavior
// the second Get blocks on the mutex before its membership check, the
// rendezvous never completes, and the test fails on the timeout arm.
func TestGetReadsOutsideLock(t *testing.T) {
	s := mustOpen(t, t.TempDir(), Options{})
	defer s.Close()
	k := key(0)
	s.Put(k, sim.Result{Cycles: 7})

	var inRead atomic.Int32
	release := make(chan struct{})
	var timedOut atomic.Bool
	s.SetReadHook(func(sweep.Key) {
		if inRead.Add(1) == 2 {
			close(release)
		}
		select {
		case <-release:
		case <-time.After(10 * time.Second):
			timedOut.Store(true)
		}
	})

	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if res, ok := s.Get(k); !ok || res.Cycles != 7 {
				t.Errorf("concurrent get = %+v, %v", res, ok)
			}
		}()
	}
	wg.Wait()
	if timedOut.Load() {
		t.Fatal("second Get never entered the disk read: hits serialize on s.mu")
	}
	if st := s.Stats(); st.Hits != 2 || st.Misses != 0 {
		t.Errorf("stats = %+v, want exactly 2 hits", st)
	}
}

// TestConcurrentHitStatsExact is the -race torture test for the
// unlocked-read Get: heavy concurrent hits and misses must neither
// serialize (covered above) nor double-count stats — every Get
// increments exactly one of Hits/Misses.
func TestConcurrentHitStatsExact(t *testing.T) {
	s := mustOpen(t, t.TempDir(), Options{})
	defer s.Close()
	const resident = 16
	for i := 0; i < resident; i++ {
		s.Put(key(i), sim.Result{Cycles: uint64(i) + 1})
	}
	const (
		workers = 8
		rounds  = 200
	)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				if i%4 == 3 {
					// A deliberate miss: keys >= resident never exist.
					if _, ok := s.Get(key(resident + (w*rounds+i)%7)); ok {
						t.Error("absent key hit")
					}
					continue
				}
				k := (w*13 + i) % resident
				res, ok := s.Get(key(k))
				if !ok || res.Cycles != uint64(k)+1 {
					t.Errorf("key %d = %+v, %v", k, res, ok)
				}
			}
		}(w)
	}
	wg.Wait()
	st := s.Stats()
	wantHits := uint64(workers * rounds * 3 / 4)
	wantMisses := uint64(workers * rounds / 4)
	if st.Hits != wantHits || st.Misses != wantMisses {
		t.Errorf("stats = %d hits / %d misses, want %d / %d (double- or under-counted)",
			st.Hits, st.Misses, wantHits, wantMisses)
	}
}

// TestCorruptEntryConcurrentGets drops a corrupt entry exactly once even
// when many Gets race on it: the first revalidation deletes it and
// counts Corrupt, the rest see an ordinary miss.
func TestCorruptEntryConcurrentGets(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, Options{})
	defer s.Close()
	k := key(0)
	s.Put(k, sim.Result{Cycles: 1})
	p := filepath.Join(dir, "objects", string(k)+".json")
	if err := os.WriteFile(p, []byte(`{"key":"`), 0o644); err != nil {
		t.Fatal(err)
	}

	const gets = 8
	var wg sync.WaitGroup
	for i := 0; i < gets; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, ok := s.Get(k); ok {
				t.Error("corrupt entry served a result")
			}
		}()
	}
	wg.Wait()
	st := s.Stats()
	if st.Corrupt != 1 {
		t.Errorf("corrupt count = %d, want exactly 1", st.Corrupt)
	}
	if st.Misses != gets {
		t.Errorf("misses = %d, want %d", st.Misses, gets)
	}
}

// TestIndexPersistenceDebounced pins the Put fix: N puts no longer
// rewrite index.json N times. With the debounce timer disabled the
// index is written exactly once, by Close.
func TestIndexPersistenceDebounced(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, Options{FlushInterval: -1})
	const puts = 50
	for i := 0; i < puts; i++ {
		s.Put(key(i), sim.Result{Cycles: uint64(i) + 1})
	}
	if got := s.Stats().IndexWrites; got != 0 {
		t.Fatalf("index written %d times before Close, want 0 (debounce broken)", got)
	}
	if _, err := os.Stat(filepath.Join(dir, "index.json")); !os.IsNotExist(err) {
		t.Fatal("index.json exists before the debounced flush")
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if got := s.Stats().IndexWrites; got != 1 {
		t.Fatalf("index writes after Close = %d, want 1 (vs %d puts)", got, puts)
	}
	// The flushed index carries the full LRU state.
	s2 := mustOpen(t, dir, Options{})
	defer s2.Close()
	if s2.Len() != puts {
		t.Errorf("reopen found %d entries, want %d", s2.Len(), puts)
	}
}

// TestIndexFlushTimerFires covers the timer arm of the debounce: with a
// short FlushInterval the index is persisted without any Close.
func TestIndexFlushTimerFires(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, Options{FlushInterval: 10 * time.Millisecond})
	defer s.Close()
	s.Put(key(0), sim.Result{Cycles: 1})
	deadline := time.Now().Add(5 * time.Second)
	for s.Stats().IndexWrites == 0 {
		if time.Now().After(deadline) {
			t.Fatal("flush timer never persisted the index")
		}
		time.Sleep(time.Millisecond)
	}
	if _, err := os.Stat(filepath.Join(dir, "index.json")); err != nil {
		t.Fatalf("index.json missing after timer flush: %v", err)
	}
}

// TestCrashBetweenFlushesRecoversObjects is the safety half of the
// debounce: a process killed before any index flush (no Close, timer
// never fired) still recovers every committed object, because entry
// files are durable at Put and load() rebuilds from the objects dir.
func TestCrashBetweenFlushesRecoversObjects(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, Options{FlushInterval: -1})
	const puts = 20
	for i := 0; i < puts; i++ {
		s.Put(key(i), sim.Result{Cycles: uint64(i) + 1})
	}
	// Simulated crash: the store is abandoned without Close, with the
	// index never written.
	if _, err := os.Stat(filepath.Join(dir, "index.json")); !os.IsNotExist(err) {
		t.Fatal("index.json written despite disabled flush; crash scenario invalid")
	}

	s2 := mustOpen(t, dir, Options{})
	defer s2.Close()
	if s2.Len() != puts {
		t.Fatalf("recovered %d of %d objects committed before the crash", s2.Len(), puts)
	}
	for i := 0; i < puts; i++ {
		res, ok := s2.Get(key(i))
		if !ok || res.Cycles != uint64(i)+1 {
			t.Errorf("object %d lost or wrong after crash recovery: %+v, %v", i, res, ok)
		}
	}
}

func TestShardOfStableAndBounded(t *testing.T) {
	const shards = 16
	seen := make(map[int]bool)
	for i := 0; i < 200; i++ {
		// Vary the leading 32 bits — that is the part ShardOf consumes.
		k := sweep.Key(fmt.Sprintf("%08x%056x", uint32(i)*2654435761, i))
		sh := ShardOf(k, shards)
		if sh != ShardOf(k, shards) {
			t.Fatalf("ShardOf not deterministic for %s", k[:8])
		}
		if sh < 0 || sh >= shards {
			t.Fatalf("shard %d out of range for %s", sh, k[:8])
		}
		seen[sh] = true
	}
	if len(seen) < 2 {
		t.Errorf("200 keys landed in %d shard(s); shard function degenerate", len(seen))
	}
	if ShardOf(key(0), 0) != 0 {
		t.Error("ShardOf with n<=0 must return 0")
	}
}

func TestShardInventory(t *testing.T) {
	s := mustOpen(t, t.TempDir(), Options{})
	defer s.Close()
	const shards = 8
	want := make(map[int]bool)
	for i := 0; i < 12; i++ {
		k := sweep.Key(fmt.Sprintf("%08x%056x", uint32(i)*0x20000000, i))
		if !validKey(k) {
			t.Fatalf("synthesized key invalid: %s", k)
		}
		s.Put(k, sim.Result{Cycles: 1})
		want[ShardOf(k, shards)] = true
	}
	inv := s.ShardInventory(shards)
	if len(inv) != len(want) {
		t.Fatalf("inventory %v, want %d distinct shards", inv, len(want))
	}
	for i, sh := range inv {
		if !want[sh] {
			t.Errorf("inventory lists unheld shard %d", sh)
		}
		if i > 0 && inv[i-1] >= sh {
			t.Errorf("inventory not sorted: %v", inv)
		}
	}
	if s.ShardInventory(0) != nil {
		t.Error("inventory with n<=0 must be nil")
	}
}

// BenchmarkStoreGetParallel measures the warm-hit fast path under
// parallel load — the path the unlocked read exists for.
func BenchmarkStoreGetParallel(b *testing.B) {
	dir := b.TempDir()
	s, err := Open(dir, Options{})
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	const resident = 64
	for i := 0; i < resident; i++ {
		s.Put(key(i), sim.Result{Cycles: uint64(i) + 1})
	}
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			if _, ok := s.Get(key(i % resident)); !ok {
				b.Error("resident key missed")
			}
			i++
		}
	})
}
