package store

import (
	"context"
	"strconv"
	"sync"
	"time"

	"repro/internal/sim"
	"repro/internal/sweep"
)

// Default hedging policy: a second backend is tried once the first has
// been silent this long, and a whole read-through gives up after the
// budget (falling back to simulation, never failing the sweep).
const (
	DefaultHedgeAfter  = 50 * time.Millisecond
	DefaultFetchBudget = 5 * time.Second
)

// Tier is one named remote backend inside a Tiers stack.
type Tier struct {
	// Name labels the tier in metrics ("remote", "peer").
	Name string
	// ID is a stable identity for rendezvous ranking when TierConfig
	// .Shards routes keys across several remotes; usually the tier's
	// URL. Empty falls back to Name plus position.
	ID      string
	Backend Backend
	// WriteThrough replicates local writes to this tier asynchronously
	// (write-behind); read-only tiers (the fleet-peer tier, whose
	// members populate themselves by simulating) leave it false.
	WriteThrough bool
}

// TierConfig assembles a multi-backend store.
type TierConfig struct {
	// Local is the authoritative on-node tier; nil means none (a pure
	// read-through front, e.g. a fresh coordinator reading the fleet).
	Local *Store
	// Remotes are consulted on a local miss. The first (after shard
	// ranking, if configured) is the primary; the rest are hedges.
	Remotes []Tier
	// HedgeAfter is how long the primary fetch may stay silent before
	// the next backend is fired too; 0 means DefaultHedgeAfter.
	HedgeAfter time.Duration
	// FetchBudget bounds one whole read-through across all hedges;
	// 0 means DefaultFetchBudget.
	FetchBudget time.Duration
	// Shards, when > 0 with several remotes, rendezvous-ranks the
	// remotes per key so each key has a consistent primary.
	Shards int
}

// TierStats is a point-in-time snapshot of read-through activity.
type TierStats struct {
	// Hits counts cache hits per tier name (including "local").
	Hits map[string]uint64 `json:"hits"`
	// Misses counts read-throughs that exhausted every tier and fell
	// back to simulation.
	Misses uint64 `json:"misses"`
	// HedgedFetches counts secondary fetches fired because an earlier
	// one was still silent past the hedge budget; HedgeWins counts the
	// reads those hedges won.
	HedgedFetches uint64 `json:"hedged_fetches"`
	HedgeWins     uint64 `json:"hedge_wins"`
	// RemoteErrors counts failed fetch/replicate attempts (transport
	// errors, non-2xx, corrupt documents). A clean 404 is a miss, not
	// an error.
	RemoteErrors uint64 `json:"remote_errors"`
	// Promotions counts remote hits copied into the local tier.
	Promotions uint64 `json:"promotions"`
	// WriteBehindDrops counts replications skipped because the
	// write-behind queue was full.
	WriteBehindDrops uint64 `json:"write_behind_drops"`
}

// Tiers is a hedged read-through over a local Store and remote
// backends. It satisfies sweep.Cache: Get walks local → remotes
// (hedged) and promotes remote hits into the local tier; Put writes
// locally and replicates to write-through remotes asynchronously.
// Close drains the replication queue.
type Tiers struct {
	local      *Store
	remotes    []Tier
	hedgeAfter time.Duration
	budget     time.Duration
	shards     int

	mu    sync.Mutex
	stats TierStats

	wb        chan wbItem
	wbDone    chan struct{}
	closeOnce sync.Once
}

type wbItem struct {
	k   sweep.Key
	res sim.Result
}

// writeBehindDepth bounds the replication queue; beyond it, writes are
// dropped (and counted) rather than stalling the sweep hot path.
const writeBehindDepth = 256

// NewTiers assembles a tiered store from cfg.
func NewTiers(cfg TierConfig) *Tiers {
	t := &Tiers{
		local:      cfg.Local,
		remotes:    cfg.Remotes,
		hedgeAfter: cfg.HedgeAfter,
		budget:     cfg.FetchBudget,
		shards:     cfg.Shards,
	}
	if t.hedgeAfter <= 0 {
		t.hedgeAfter = DefaultHedgeAfter
	}
	if t.budget <= 0 {
		t.budget = DefaultFetchBudget
	}
	t.stats.Hits = make(map[string]uint64)
	for _, ti := range cfg.Remotes {
		if ti.WriteThrough {
			t.wb = make(chan wbItem, writeBehindDepth)
			t.wbDone = make(chan struct{})
			go t.writeBehind()
			break
		}
	}
	return t
}

// Local returns the local tier, or nil.
func (t *Tiers) Local() *Store { return t.local }

// Get implements sweep.Cache over the tier stack.
func (t *Tiers) Get(k sweep.Key) (sim.Result, bool) {
	if t.local != nil {
		if res, ok := t.local.Get(k); ok {
			t.count(func(s *TierStats) { s.Hits["local"]++ })
			return res, true
		}
	}
	if len(t.remotes) == 0 {
		t.count(func(s *TierStats) { s.Misses++ })
		return sim.Result{}, false
	}
	res, idx, ok := t.fetch(k)
	if !ok {
		t.count(func(s *TierStats) { s.Misses++ })
		return sim.Result{}, false
	}
	name := t.remotes[idx].Name
	t.count(func(s *TierStats) { s.Hits[name]++ })
	if t.local != nil {
		// Promote: the next read of this key is a local hit.
		t.local.Put(k, res)
		t.count(func(s *TierStats) { s.Promotions++ })
	}
	return res, true
}

// fetchReply is one backend's answer inside a hedged fetch.
type fetchReply struct {
	res    sim.Result
	ok     bool
	err    error
	idx    int // index into t.remotes
	hedged bool
}

// fetch runs the hedged read-through over the remote tiers: fire the
// primary; if it stays silent past the hedge budget, fire the next tier
// too (a hedge); if it answers with a miss or an error, fail over to
// the next tier immediately. First success wins and the shared context
// cancels every loser. The reply channel is buffered to the fan-out, so
// canceled losers never leak a goroutine.
func (t *Tiers) fetch(k sweep.Key) (sim.Result, int, bool) {
	order := t.order(k)
	ctx, cancel := context.WithTimeout(context.Background(), t.budget)
	defer cancel()
	ch := make(chan fetchReply, len(order))
	launched := 0
	launch := func(hedged bool) {
		i := order[launched]
		launched++
		if hedged {
			t.count(func(s *TierStats) { s.HedgedFetches++ })
		}
		go func() {
			res, ok, err := t.remotes[i].Backend.Get(ctx, k)
			ch <- fetchReply{res: res, ok: ok, err: err, idx: i, hedged: hedged}
		}()
	}
	launch(false)
	timer := time.NewTimer(t.hedgeAfter)
	defer timer.Stop()
	for replies := 0; ; {
		select {
		case r := <-ch:
			replies++
			if r.err != nil {
				t.count(func(s *TierStats) { s.RemoteErrors++ })
			}
			if r.ok {
				if r.hedged {
					t.count(func(s *TierStats) { s.HedgeWins++ })
				}
				return r.res, r.idx, true
			}
			if launched < len(order) {
				launch(false) // failover, not a hedge: the loser already answered
			} else if replies == launched {
				return sim.Result{}, 0, false
			}
		case <-timer.C:
			if launched < len(order) {
				launch(true)
				timer.Reset(t.hedgeAfter)
			}
		case <-ctx.Done():
			return sim.Result{}, 0, false
		}
	}
}

// order returns remote indices in fetch order: flag order, or
// rendezvous-ranked per key when shard routing is on, so every key has
// a consistent primary across the fleet.
func (t *Tiers) order(k sweep.Key) []int {
	idx := make([]int, len(t.remotes))
	for i := range idx {
		idx[i] = i
	}
	if t.shards <= 0 || len(t.remotes) <= 1 {
		return idx
	}
	sh := ShardOf(k, t.shards)
	score := make([]uint64, len(t.remotes))
	for i, ti := range t.remotes {
		score[i] = RendezvousScore(ti.identity(i), sh)
	}
	// Insertion sort by descending score: the remote list is tiny.
	for i := 1; i < len(idx); i++ {
		for j := i; j > 0 && score[idx[j]] > score[idx[j-1]]; j-- {
			idx[j], idx[j-1] = idx[j-1], idx[j]
		}
	}
	return idx
}

func (ti Tier) identity(pos int) string {
	if ti.ID != "" {
		return ti.ID
	}
	return ti.Name + "#" + strconv.Itoa(pos)
}

// Put implements sweep.Cache: durable local write, asynchronous
// replication to write-through remotes.
func (t *Tiers) Put(k sweep.Key, res sim.Result) {
	if t.local != nil {
		t.local.Put(k, res)
	}
	if t.wb == nil {
		return
	}
	select {
	case t.wb <- wbItem{k: k, res: res}:
	default:
		t.count(func(s *TierStats) { s.WriteBehindDrops++ })
	}
}

// writeBehind is the single replication worker: best-effort, bounded,
// off the sweep hot path. Failures are counted and abandoned — the
// result stays durable locally and a later read-through repopulates.
func (t *Tiers) writeBehind() {
	defer close(t.wbDone)
	for it := range t.wb {
		for _, ti := range t.remotes {
			if !ti.WriteThrough {
				continue
			}
			ctx, cancel := context.WithTimeout(context.Background(), t.budget)
			if err := ti.Backend.Put(ctx, it.k, it.res); err != nil {
				t.count(func(s *TierStats) { s.RemoteErrors++ })
			}
			cancel()
		}
	}
}

// Close drains the write-behind queue. The local tier is owned by the
// caller and closed separately.
func (t *Tiers) Close() {
	t.closeOnce.Do(func() {
		if t.wb != nil {
			close(t.wb)
			<-t.wbDone
		}
	})
}

// Stats returns a snapshot of read-through counters.
func (t *Tiers) Stats() TierStats {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := t.stats
	out.Hits = make(map[string]uint64, len(t.stats.Hits))
	for name, n := range t.stats.Hits {
		out.Hits[name] = n
	}
	return out
}

func (t *Tiers) count(f func(*TierStats)) {
	t.mu.Lock()
	f(&t.stats)
	t.mu.Unlock()
}
