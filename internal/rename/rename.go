// Package rename implements register renaming: the logical→physical map
// and the physical-register free list of a dynamically scheduled processor.
//
// Semantics follow the paper's Section 2 description of why physical
// registers are "wasted": a physical register is allocated at decode/rename
// (before it holds a value) and is released only when the *next* instruction
// writing the same logical register commits (late release). This inflated
// lifetime is exactly what makes large register files necessary and what the
// register file cache exploits.
package rename

import (
	"fmt"

	"repro/internal/isa"
)

// PhysReg is a physical register number. PhysNone marks "no register".
type PhysReg int32

// PhysNone marks the absence of a physical register.
const PhysNone PhysReg = -1

// File manages renaming for a single register name space of a given number
// of logical and physical registers.
type File struct {
	mapTable []PhysReg // logical -> current physical
	freeList []PhysReg
	numPhys  int

	allocs   uint64
	releases uint64
}

// NewFile creates a rename file with numLogical architectural registers and
// numPhys physical registers. numPhys must be at least numLogical (every
// logical register needs a committed home).
func NewFile(numLogical, numPhys int) *File {
	if numPhys < numLogical {
		panic(fmt.Sprintf("rename: %d physical registers cannot back %d logical", numPhys, numLogical))
	}
	f := &File{mapTable: make([]PhysReg, numLogical), numPhys: numPhys}
	for i := range f.mapTable {
		f.mapTable[i] = PhysReg(i)
	}
	for p := numLogical; p < numPhys; p++ {
		f.freeList = append(f.freeList, PhysReg(p))
	}
	return f
}

// NumPhys returns the number of physical registers.
func (f *File) NumPhys() int { return f.numPhys }

// FreeCount returns the number of unallocated physical registers.
func (f *File) FreeCount() int { return len(f.freeList) }

// Lookup returns the current physical register for logical register l.
func (f *File) Lookup(l int) PhysReg { return f.mapTable[l] }

// CanRename reports whether a destination can be allocated.
func (f *File) CanRename() bool { return len(f.freeList) > 0 }

// Rename allocates a new physical register for logical destination l and
// returns (newPhys, prevPhys). prevPhys must be freed when the renaming
// instruction's *successor* writing l commits; the caller tracks that.
// Rename panics if no register is free (callers gate on CanRename, which is
// the dispatch-stall condition).
func (f *File) Rename(l int) (newP, prevP PhysReg) {
	if len(f.freeList) == 0 {
		panic("rename: no free physical register")
	}
	newP = f.freeList[len(f.freeList)-1]
	f.freeList = f.freeList[:len(f.freeList)-1]
	prevP = f.mapTable[l]
	f.mapTable[l] = newP
	f.allocs++
	return newP, prevP
}

// Release returns physical register p to the free list (called when the
// instruction that superseded p's logical mapping commits).
func (f *File) Release(p PhysReg) {
	if p == PhysNone {
		return
	}
	if int(p) < 0 || int(p) >= f.numPhys {
		panic(fmt.Sprintf("rename: release of invalid physical register %d", p))
	}
	f.freeList = append(f.freeList, p)
	f.releases++
}

// Allocs returns the number of Rename calls.
func (f *File) Allocs() uint64 { return f.allocs }

// Releases returns the number of Release calls with a real register.
func (f *File) Releases() uint64 { return f.releases }

// Map renames both integer and FP name spaces behind the isa.Reg numbering.
type Map struct {
	intFile *File
	fpFile  *File
}

// NewMap creates a renamer with physInt integer and physFP floating-point
// physical registers (the paper uses 128 of each).
func NewMap(physInt, physFP int) *Map {
	return &Map{
		intFile: NewFile(isa.NumLogicalInt, physInt),
		fpFile:  NewFile(isa.NumLogicalFP, physFP),
	}
}

// fileFor returns the file and local index for logical register r.
func (m *Map) fileFor(r isa.Reg) (*File, int) {
	if r.IsFP() {
		return m.fpFile, int(r) - isa.NumLogicalInt
	}
	return m.intFile, int(r)
}

// Lookup returns the current physical register backing logical register r,
// plus whether it is in the FP file.
func (m *Map) Lookup(r isa.Reg) (PhysReg, bool) {
	f, idx := m.fileFor(r)
	return f.Lookup(idx), r.IsFP()
}

// CanRename reports whether a destination in r's file can be allocated.
func (m *Map) CanRename(r isa.Reg) bool {
	f, _ := m.fileFor(r)
	return f.CanRename()
}

// Rename allocates a physical register for destination r.
func (m *Map) Rename(r isa.Reg) (newP, prevP PhysReg) {
	f, idx := m.fileFor(r)
	return f.Rename(idx)
}

// Release frees physical register p in r's file.
func (m *Map) Release(r isa.Reg, p PhysReg) {
	f, _ := m.fileFor(r)
	f.Release(p)
}

// IntFile returns the integer rename file (for statistics).
func (m *Map) IntFile() *File { return m.intFile }

// FPFile returns the FP rename file (for statistics).
func (m *Map) FPFile() *File { return m.fpFile }
