package rename

import (
	"testing"
	"testing/quick"

	"repro/internal/isa"
	"repro/internal/rng"
)

func TestInitialMapping(t *testing.T) {
	f := NewFile(32, 128)
	for l := 0; l < 32; l++ {
		if got := f.Lookup(l); got != PhysReg(l) {
			t.Errorf("initial Lookup(%d) = %d", l, got)
		}
	}
	if f.FreeCount() != 96 {
		t.Errorf("FreeCount = %d, want 96", f.FreeCount())
	}
}

func TestRenameUpdatesMapAndReturnsPrev(t *testing.T) {
	f := NewFile(32, 64)
	newP, prevP := f.Rename(5)
	if prevP != PhysReg(5) {
		t.Errorf("prev = %d, want 5", prevP)
	}
	if f.Lookup(5) != newP {
		t.Errorf("map not updated: %d vs %d", f.Lookup(5), newP)
	}
	if newP == prevP {
		t.Error("new register equals previous")
	}
}

func TestExhaustionAndRelease(t *testing.T) {
	f := NewFile(2, 4) // 2 free
	var prevs []PhysReg
	for f.CanRename() {
		_, prev := f.Rename(0)
		prevs = append(prevs, prev)
	}
	if f.FreeCount() != 0 {
		t.Fatal("should be exhausted")
	}
	f.Release(prevs[0])
	if !f.CanRename() {
		t.Error("release did not enable renaming")
	}
}

func TestRenamePanicsWhenExhausted(t *testing.T) {
	f := NewFile(2, 2) // no free registers at all
	defer func() {
		if recover() == nil {
			t.Fatal("Rename with empty free list did not panic")
		}
	}()
	f.Rename(0)
}

func TestReleaseNoneIsNoop(t *testing.T) {
	f := NewFile(2, 4)
	before := f.FreeCount()
	f.Release(PhysNone)
	if f.FreeCount() != before {
		t.Error("Release(PhysNone) changed free list")
	}
	if f.Releases() != 0 {
		t.Error("Release(PhysNone) counted as a release")
	}
}

func TestReleaseInvalidPanics(t *testing.T) {
	f := NewFile(2, 4)
	defer func() {
		if recover() == nil {
			t.Fatal("invalid release did not panic")
		}
	}()
	f.Release(PhysReg(99))
}

func TestNewFilePanicsOnTooFewPhys(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for phys < logical")
		}
	}()
	NewFile(32, 16)
}

func TestStatsCounting(t *testing.T) {
	f := NewFile(4, 8)
	_, p1 := f.Rename(0)
	_, p2 := f.Rename(1)
	f.Release(p1)
	f.Release(p2)
	if f.Allocs() != 2 || f.Releases() != 2 {
		t.Errorf("allocs=%d releases=%d", f.Allocs(), f.Releases())
	}
}

func TestMapSeparatesNamespaces(t *testing.T) {
	m := NewMap(64, 64)
	pi, fpI := m.Lookup(isa.IntReg(3))
	pf, fpF := m.Lookup(isa.FPReg(3))
	if fpI || !fpF {
		t.Error("namespace flags wrong")
	}
	if pi != PhysReg(3) || pf != PhysReg(3) {
		t.Errorf("initial physical registers: int=%d fp=%d", pi, pf)
	}
	// Renaming an int register must not disturb the FP map.
	m.Rename(isa.IntReg(3))
	if got, _ := m.Lookup(isa.FPReg(3)); got != PhysReg(3) {
		t.Error("int rename disturbed FP map")
	}
}

func TestMapCanRenamePerFile(t *testing.T) {
	m := NewMap(32, 33) // int file has 0 free, fp has 1
	if m.CanRename(isa.IntReg(0)) {
		t.Error("int file should be exhausted")
	}
	if !m.CanRename(isa.FPReg(0)) {
		t.Error("fp file should have a free register")
	}
}

func TestMapReleaseRoutesToRightFile(t *testing.T) {
	m := NewMap(33, 33)
	_, prev := m.Rename(isa.FPReg(7))
	if m.CanRename(isa.FPReg(0)) {
		t.Fatal("fp file should now be exhausted")
	}
	m.Release(isa.FPReg(7), prev)
	if !m.CanRename(isa.FPReg(0)) {
		t.Error("release did not return register to fp file")
	}
}

// Property: the classic rename invariant — at any point, the set
// {current mappings} ∪ {free list} ∪ {outstanding prev registers} is a
// partition of all physical registers (no loss, no duplication).
func TestQuickConservation(t *testing.T) {
	f := func(seed uint64, steps uint16) bool {
		const nLog, nPhys = 8, 24
		file := NewFile(nLog, nPhys)
		r := rng.New(seed, 11)
		var outstanding []PhysReg
		for i := 0; i < int(steps%500); i++ {
			if file.CanRename() && (len(outstanding) == 0 || r.Bernoulli(0.6)) {
				_, prev := file.Rename(r.Intn(nLog))
				outstanding = append(outstanding, prev)
			} else if len(outstanding) > 0 {
				k := r.Intn(len(outstanding))
				file.Release(outstanding[k])
				outstanding = append(outstanding[:k], outstanding[k+1:]...)
			}
			// Check the partition.
			seen := make(map[PhysReg]int, nPhys)
			for l := 0; l < nLog; l++ {
				seen[file.Lookup(l)]++
			}
			for _, p := range file.freeList {
				seen[p]++
			}
			for _, p := range outstanding {
				seen[p]++
			}
			if len(seen) != nPhys {
				return false
			}
			for _, c := range seen {
				if c != 1 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Property: Rename never hands out a register that is currently mapped.
func TestQuickNoDoubleAllocation(t *testing.T) {
	f := func(seed uint64) bool {
		file := NewFile(4, 12)
		r := rng.New(seed, 13)
		var outstanding []PhysReg
		for i := 0; i < 200; i++ {
			if file.CanRename() {
				newP, prev := file.Rename(r.Intn(4))
				for l := 0; l < 4; l++ {
					if l != 0 && file.Lookup(l) == newP && PhysReg(l) != newP {
						_ = l
					}
				}
				// newP must not be any *other* current mapping.
				count := 0
				for l := 0; l < 4; l++ {
					if file.Lookup(l) == newP {
						count++
					}
				}
				if count != 1 {
					return false
				}
				outstanding = append(outstanding, prev)
			}
			if len(outstanding) > 4 {
				file.Release(outstanding[0])
				outstanding = outstanding[1:]
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
