package repro

// One benchmark per paper table/figure, plus ablation benches for the
// design-space studies in experiments.Ablations. Each bench regenerates its
// experiment at a reduced instruction budget (benchInstructions) and
// reports the experiment's headline quantities via b.ReportMetric, so
// `go test -bench=. -benchmem` prints the reproduced numbers next to the
// timing. For full-budget runs use cmd/rfexp.

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/sim"
	"repro/internal/sweep"
	"repro/internal/trace"
)

const benchInstructions = 30000

// benchJSON selects a path for the BENCH_sim.json snapshot of the
// BenchmarkSim results, written after the benchmarks finish. CI gates the
// snapshot with cmd/benchgate (see the README's Performance section);
// refresh the committed baseline with:
//
//	go test -bench 'BenchmarkSim$|BenchmarkSweepRunner$|BenchmarkLockstep$' -benchtime 10x -run '^$' -benchjson BENCH_sim.json .
var benchJSON = flag.String("benchjson", "", "write a JSON snapshot of BenchmarkSim results to this path")

// benchSnapshot is the BENCH_sim.json schema. Cache, when present,
// carries the sweep-cache hit/miss counts recorded by
// BenchmarkSweepRunner; LockstepWidth is the batch width BenchmarkLockstep
// drove through one shared front-end pass. cmd/benchgate passes both
// through into its verdict JSON.
type benchSnapshot struct {
	Schema        int                    `json:"schema"`
	Go            string                 `json:"go"`
	Instrs        uint64                 `json:"instructions_per_run"`
	Benchmarks    map[string]benchRecord `json:"benchmarks"`
	Cache         *sweep.CacheStats      `json:"cache,omitempty"`
	LockstepWidth int                    `json:"lockstep_width,omitempty"`
}

// benchRecord is one benchmark's measurement.
type benchRecord struct {
	InstrsPerSec float64 `json:"instrs_per_sec"`
	SecPerOp     float64 `json:"sec_per_op"`
}

var (
	benchMu       sync.Mutex
	benchRecords  = map[string]benchRecord{}
	benchCache    *sweep.CacheStats
	lockstepWidth int
)

func recordBench(name string, instrsPerSec, secPerOp float64) {
	benchMu.Lock()
	defer benchMu.Unlock()
	benchRecords[name] = benchRecord{InstrsPerSec: instrsPerSec, SecPerOp: secPerOp}
}

func recordCache(stats sweep.CacheStats) {
	benchMu.Lock()
	defer benchMu.Unlock()
	benchCache = &stats
}

func recordLockstepWidth(w int) {
	benchMu.Lock()
	defer benchMu.Unlock()
	lockstepWidth = w
}

// TestMain writes the benchmark snapshot once the run completes.
func TestMain(m *testing.M) {
	code := m.Run()
	if *benchJSON != "" && code == 0 && len(benchRecords) > 0 {
		snap := benchSnapshot{
			Schema: 1, Go: runtime.Version(),
			Instrs: benchInstructions, Benchmarks: benchRecords,
			Cache: benchCache, LockstepWidth: lockstepWidth,
		}
		data, err := json.MarshalIndent(snap, "", "  ")
		if err == nil {
			err = os.WriteFile(*benchJSON, append(data, '\n'), 0o644)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
			code = 1
		}
	}
	os.Exit(code)
}

// BenchmarkSim measures raw scheduler throughput (simulated instructions
// per wall second) on each register file organization. These are the
// numbers the CI benchmark gate tracks.
func BenchmarkSim(b *testing.B) {
	u := core.Unlimited
	cases := []struct {
		name string
		spec sim.RFSpec
	}{
		{"monolithic", sim.Mono1Cycle(u, u)},
		{"cache", sim.PaperCache()},
		{"onelevel", sim.OneLevelSpec(core.OneLevelConfig{
			Banks: 2, ReadPortsPerBank: 4, WritePortsPerBank: 2,
		})},
		{"replicated", sim.ReplicatedSpec(core.ReplicatedConfig{
			Clusters: 2, ReadPortsPerBank: 4, WritePortsPerBank: 4, RemoteDelay: 1,
		})},
	}
	prof, ok := trace.ByName("compress")
	if !ok {
		b.Fatal("unknown benchmark compress")
	}
	for _, c := range cases {
		b.Run(c.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				cfg := sim.DefaultConfig(c.spec, benchInstructions)
				sim.New(cfg, trace.New(prof)).Run()
			}
			sec := b.Elapsed().Seconds()
			ips := float64(benchInstructions) * float64(b.N) / sec
			b.ReportMetric(ips, "instrs/s")
			recordBench("Sim/"+c.name, ips, sec/float64(b.N))
		})
	}
}

// BenchmarkSweepRunner measures the sweep engine end to end: each
// iteration runs the same small batch twice through one runner — a cold
// pass that simulates and a warm pass served entirely from the cache —
// so the number tracks both scheduler overhead and cache lookup cost.
// The final iteration's hit/miss counts land in the BENCH_sim.json
// snapshot's "cache" section (2 hits per cold+warm job pair wanted:
// the warm pass must be all hits).
func BenchmarkSweepRunner(b *testing.B) {
	u := core.Unlimited
	var jobs []sweep.Job
	for _, bench := range []string{"compress", "swim"} {
		prof, ok := trace.ByName(bench)
		if !ok {
			b.Fatalf("unknown benchmark %s", bench)
		}
		for _, spec := range []sim.RFSpec{sim.Mono1Cycle(u, u), sim.PaperCache()} {
			jobs = append(jobs, sweep.Job{Profile: prof, Config: sim.DefaultConfig(spec, benchInstructions)})
		}
	}
	b.ReportAllocs()
	var stats sweep.CacheStats
	for i := 0; i < b.N; i++ {
		r := sweep.NewRunner(sweep.RunnerConfig{})
		r.RunOutcomes(jobs, 0)
		r.RunOutcomes(jobs, 0)
		stats = r.CacheStats()
	}
	if stats.Hits != uint64(len(jobs)) || stats.Misses != uint64(len(jobs)) {
		b.Fatalf("cache stats = %+v, want %d hits / %d misses", stats, len(jobs), len(jobs))
	}
	recordCache(stats)
	sec := b.Elapsed().Seconds()
	simulated := float64(benchInstructions) * float64(len(jobs)) * float64(b.N)
	ips := simulated / sec
	b.ReportMetric(ips, "instrs/s")
	recordBench("SweepRunner", ips, sec/float64(b.N))
}

// BenchmarkLockstep measures the lockstep engine: all six built-in
// register file families simulating one benchmark, solo (six trace
// passes) versus batched behind one shared front-end pass. Both
// sub-benchmarks report aggregate throughput (simulated instructions
// across all six configurations per wall second), so the batch/solo
// ratio is the lockstep speedup directly.
func BenchmarkLockstep(b *testing.B) {
	u := core.Unlimited
	specs := []sim.RFSpec{
		sim.Mono1Cycle(u, u),
		sim.Mono2CycleFull(u, u),
		sim.Mono2CycleSingle(6, 4),
		sim.PaperCache(),
		sim.OneLevelSpec(core.OneLevelConfig{Banks: 2, ReadPortsPerBank: 4, WritePortsPerBank: 2}),
		sim.ReplicatedSpec(core.ReplicatedConfig{Clusters: 2, ReadPortsPerBank: 4, WritePortsPerBank: 4, RemoteDelay: 1}),
	}
	prof, ok := trace.ByName("compress")
	if !ok {
		b.Fatal("unknown benchmark compress")
	}
	cfgs := make([]sim.Config, len(specs))
	for i, spec := range specs {
		cfgs[i] = sim.DefaultConfig(spec, benchInstructions)
	}
	aggregate := float64(benchInstructions) * float64(len(cfgs))
	run := func(b *testing.B, name string, pass func()) {
		b.Run(name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				pass()
			}
			sec := b.Elapsed().Seconds()
			ips := aggregate * float64(b.N) / sec
			b.ReportMetric(ips, "instrs/s")
			recordBench("Lockstep/"+name, ips, sec/float64(b.N))
		})
	}
	run(b, "solo", func() {
		for i := range cfgs {
			sim.New(cfgs[i], trace.New(prof)).Run()
		}
	})
	run(b, "batch6", func() {
		sim.NewLockstep(cfgs, trace.New(prof)).Run()
	})
	recordLockstepWidth(len(cfgs))
}

func benchOpts() experiments.Options {
	return experiments.Options{Instructions: benchInstructions}
}

// BenchmarkTable2 regenerates the paper's Table 2 from the calibrated
// area/access-time model (no simulation; validates the cost model path).
func BenchmarkTable2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.Table2(discard{})
	}
}

type discard struct{}

func (discard) Write(p []byte) (int, error) { return len(p), nil }

// BenchmarkFig1 regenerates Figure 1 (IPC vs physical register count).
func BenchmarkFig1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.Fig1(benchOpts())
		b.ReportMetric(r.IntHM[len(r.IntHM)-1], "int-IPC@256regs")
		b.ReportMetric(r.FPHM[len(r.FPHM)-1], "fp-IPC@256regs")
	}
}

// BenchmarkFig2 regenerates Figure 2 (RF latency and bypass levels).
func BenchmarkFig2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.Fig2(benchOpts())
		b.ReportMetric(r.Archs[0].IntHM/r.Archs[2].IntHM, "int-1c/2c1b")
		b.ReportMetric(r.Archs[0].FPHM/r.Archs[2].FPHM, "fp-1c/2c1b")
	}
}

// BenchmarkFig3 regenerates Figure 3 (live-value distributions).
func BenchmarkFig3(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.Fig3(benchOpts())
		for n, v := range r.IntValue {
			if v >= 90 {
				b.ReportMetric(float64(n), "int-p90-live-regs")
				break
			}
		}
	}
}

// BenchmarkFig5 regenerates Figure 5 (caching × prefetch policies).
func BenchmarkFig5(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.Fig5(benchOpts())
		b.ReportMetric(r.Archs[3].IntHM/r.Archs[2].IntHM, "int-nonbypass/ready")
	}
}

// BenchmarkFig6 regenerates Figure 6 (RF cache vs single-bypass banks).
func BenchmarkFig6(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.Fig6(benchOpts())
		b.ReportMetric(r.Archs[1].IntHM/r.Archs[0].IntHM, "int-rfc/1cycle")
		b.ReportMetric(r.Archs[1].IntHM/r.Archs[2].IntHM, "int-rfc/2cycle")
	}
}

// BenchmarkFig7 regenerates Figure 7 (RF cache vs full-bypass 2-cycle).
func BenchmarkFig7(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.Fig7(benchOpts())
		b.ReportMetric(r.Archs[0].IntHM/r.Archs[1].IntHM, "int-rfc/2cycle-full")
	}
}

// BenchmarkFig8 regenerates Figure 8 (area/performance Pareto sweep).
func BenchmarkFig8(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.Fig8(benchOpts())
		b.ReportMetric(float64(len(r.IntFrontier["rf-cache"])), "rfc-frontier-points")
	}
}

// BenchmarkFig9 regenerates Figure 9 (throughput with cycle time factored
// in) and reports the paper's headline speedups.
func BenchmarkFig9(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.Fig9(benchOpts())
		b.ReportMetric(r.Best("rf-cache", "int")/r.Best("1-cycle", "int"), "int-speedup-vs-1c")
		b.ReportMetric(r.Best("rf-cache", "fp")/r.Best("1-cycle", "fp"), "fp-speedup-vs-1c")
	}
}

// runIPC is the ablation helper: IPC of one benchmark on one spec.
func runIPC(b *testing.B, spec sim.RFSpec, bench string) float64 {
	b.Helper()
	prof, ok := trace.ByName(bench)
	if !ok {
		b.Fatalf("unknown benchmark %s", bench)
	}
	return sim.New(sim.DefaultConfig(spec, benchInstructions), trace.New(prof)).Run().IPC
}

// BenchmarkAblationUpperSize sweeps the upper-bank capacity (the paper
// fixes 16; experiments.Ablations sweeps it).
func BenchmarkAblationUpperSize(b *testing.B) {
	for _, size := range []int{8, 16, 32} {
		b.Run(map[int]string{8: "08", 16: "16", 32: "32"}[size], func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				cfg := core.PaperCacheConfig()
				cfg.UpperSize = size
				b.ReportMetric(runIPC(b, sim.CacheSpec(cfg), "swim"), "IPC-swim")
			}
		})
	}
}

// BenchmarkAblationReplacement compares pseudo-LRU against exact LRU in
// the upper bank.
func BenchmarkAblationReplacement(b *testing.B) {
	for _, pol := range []core.Replacement{core.PseudoLRU, core.TrueLRU} {
		b.Run(pol.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				cfg := core.PaperCacheConfig()
				cfg.Replacement = pol
				b.ReportMetric(runIPC(b, sim.CacheSpec(cfg), "fpppp"), "IPC-fpppp")
			}
		})
	}
}

// BenchmarkAblationBuses sweeps the number of inter-bank buses at fixed
// ports (Table 2 pairs buses with ports; this isolates the bus effect).
func BenchmarkAblationBuses(b *testing.B) {
	for _, buses := range []int{1, 2, 4} {
		b.Run(map[int]string{1: "1", 2: "2", 4: "4"}[buses], func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				cfg := core.PaperCacheConfig()
				cfg.ReadPorts, cfg.UpperWritePorts, cfg.LowerWritePorts = 4, 3, 3
				cfg.Buses = buses
				b.ReportMetric(runIPC(b, sim.CacheSpec(cfg), "gcc"), "IPC-gcc")
			}
		})
	}
}

// BenchmarkAblationCachingPolicy crosses all four caching policies on an
// integer code under limited bandwidth.
func BenchmarkAblationCachingPolicy(b *testing.B) {
	for _, pol := range []core.CachingPolicy{core.CacheNonBypass, core.CacheReady, core.CacheAll, core.CacheNone} {
		b.Run(pol.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				cfg := core.PaperCacheConfig()
				cfg.Caching = pol
				cfg.ReadPorts, cfg.UpperWritePorts, cfg.LowerWritePorts, cfg.Buses = 4, 2, 3, 2
				b.ReportMetric(runIPC(b, sim.CacheSpec(cfg), "perl"), "IPC-perl")
			}
		})
	}
}

// BenchmarkAblationOneLevel evaluates the one-level multi-banked extension
// (paper §3/§6 future work) against the two-level cache at matched port
// budgets.
func BenchmarkAblationOneLevel(b *testing.B) {
	b.Run("one-level-2banks", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			spec := sim.OneLevelSpec(core.OneLevelConfig{
				Banks: 2, ReadPortsPerBank: 2, WritePortsPerBank: 2,
			})
			b.ReportMetric(runIPC(b, spec, "m88ksim"), "IPC-m88ksim")
		}
	})
	b.Run("rf-cache", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			cfg := core.PaperCacheConfig()
			cfg.ReadPorts, cfg.UpperWritePorts, cfg.LowerWritePorts, cfg.Buses = 4, 2, 2, 2
			b.ReportMetric(runIPC(b, sim.CacheSpec(cfg), "m88ksim"), "IPC-m88ksim")
		}
	})
}

// BenchmarkSimulatorThroughput measures raw simulation speed (instructions
// simulated per wall second), the practical limit on experiment budgets.
func BenchmarkSimulatorThroughput(b *testing.B) {
	prof, _ := trace.ByName("compress")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		cfg := sim.DefaultConfig(sim.PaperCache(), benchInstructions)
		sim.New(cfg, trace.New(prof)).Run()
	}
	b.ReportMetric(float64(benchInstructions)*float64(b.N)/b.Elapsed().Seconds(), "instrs/s")
}
