// Policies: compare the register file cache's caching policies (non-bypass
// vs ready vs cache-all vs cache-none) and fetch mechanisms (fetch-on-
// demand vs prefetch-first-pair) under realistic, limited bandwidth —
// the design space of the paper's Section 3 and Figure 5.
//
// Run with:
//
//	go run ./examples/policies
package main

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/trace"
)

func main() {
	benchmarks := []string{"compress", "gcc", "mgrid", "swim"}
	const instructions = 80000

	type variant struct {
		name    string
		caching core.CachingPolicy
		pf      core.PrefetchPolicy
	}
	variants := []variant{
		{"ready + fetch-on-demand", core.CacheReady, core.FetchOnDemand},
		{"non-bypass + fetch-on-demand", core.CacheNonBypass, core.FetchOnDemand},
		{"ready + prefetch-first-pair", core.CacheReady, core.PrefetchFirstPair},
		{"non-bypass + prefetch-first-pair", core.CacheNonBypass, core.PrefetchFirstPair},
		{"cache-all (ablation)", core.CacheAll, core.PrefetchFirstPair},
		{"cache-none (ablation)", core.CacheNone, core.PrefetchFirstPair},
	}

	cols := append([]string{"policy"}, benchmarks...)
	tab := stats.NewTable(cols...)
	for _, v := range variants {
		cells := []string{v.name}
		for _, b := range benchmarks {
			prof, ok := trace.ByName(b)
			if !ok {
				panic("unknown benchmark " + b)
			}
			cfg := core.PaperCacheConfig()
			cfg.Caching = v.caching
			cfg.Prefetch = v.pf
			// The paper's C2-like bandwidth: this is where policies
			// actually differ — with unlimited ports everything looks alike.
			cfg.ReadPorts, cfg.UpperWritePorts, cfg.LowerWritePorts, cfg.Buses = 4, 3, 3, 2
			r := sim.New(sim.DefaultConfig(sim.CacheSpec(cfg), instructions), trace.New(prof)).Run()
			cells = append(cells, fmt.Sprintf("%.3f", r.IPC))
		}
		tab.AddRow(cells...)
	}
	fmt.Println("IPC by caching policy and fetch mechanism (4R/3W upper ports, 2 buses):")
	fmt.Print(tab)
	fmt.Println("\nThe paper's findings to look for: non-bypass caching edges out ready")
	fmt.Println("caching and is far simpler to implement; prefetching helps mostly the")
	fmt.Println("regular FP codes; never caching cripples the upper bank.")
}
