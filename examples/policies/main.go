// Policies: compare the register file cache's caching policies (non-bypass
// vs ready vs cache-all vs cache-none) and fetch mechanisms (fetch-on-
// demand vs prefetch-first-pair) under realistic, limited bandwidth —
// the design space of the paper's Section 3 and Figure 5 — through the
// public rf SDK.
//
// Run with:
//
//	go run ./examples/policies
package main

import (
	"fmt"

	"repro/rf"
)

func main() {
	benchmarks := []string{"compress", "gcc", "mgrid", "swim"}
	const instructions = 80000

	type variant struct {
		name    string
		caching rf.CachingPolicy
		pf      rf.PrefetchPolicy
	}
	variants := []variant{
		{"ready + fetch-on-demand", rf.CacheReady, rf.FetchOnDemand},
		{"non-bypass + fetch-on-demand", rf.CacheNonBypass, rf.FetchOnDemand},
		{"ready + prefetch-first-pair", rf.CacheReady, rf.PrefetchFirstPair},
		{"non-bypass + prefetch-first-pair", rf.CacheNonBypass, rf.PrefetchFirstPair},
		{"cache-all (ablation)", rf.CacheAll, rf.PrefetchFirstPair},
		{"cache-none (ablation)", rf.CacheNone, rf.PrefetchFirstPair},
	}

	cols := append([]string{"policy"}, benchmarks...)
	tab := rf.NewTable(cols...)
	for _, v := range variants {
		cells := []string{v.name}
		for _, b := range benchmarks {
			prof, ok := rf.Benchmark(b)
			if !ok {
				panic("unknown benchmark " + b)
			}
			cfg := rf.PaperCacheConfig()
			cfg.Caching = v.caching
			cfg.Prefetch = v.pf
			// The paper's C2-like bandwidth: this is where policies
			// actually differ — with unlimited ports everything looks alike.
			cfg.ReadPorts, cfg.UpperWritePorts, cfg.LowerWritePorts, cfg.Buses = 4, 3, 3, 2
			r := rf.Run(rf.NewConfig(rf.CacheSpec(cfg), rf.MaxInstructions(instructions)), prof)
			cells = append(cells, fmt.Sprintf("%.3f", r.IPC))
		}
		tab.AddRow(cells...)
	}
	fmt.Println("IPC by caching policy and fetch mechanism (4R/3W upper ports, 2 buses):")
	fmt.Print(tab)
	fmt.Println("\nThe paper's findings to look for: non-bypass caching edges out ready")
	fmt.Println("caching and is far simpler to implement; prefetching helps mostly the")
	fmt.Println("regular FP codes; never caching cripples the upper bank.")
}
