// Quickstart: simulate one benchmark on the paper's register file cache
// and on the one-cycle baseline, and compare — using only the public rf
// SDK.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/rf"
)

func main() {
	// Pick a workload: the SPEC95 proxies ship with the library.
	prof, ok := rf.Benchmark("gcc")
	if !ok {
		log.Fatal("benchmark not found")
	}

	const instructions = 100000

	// Baseline: a one-cycle single-banked register file with unlimited
	// bandwidth (the paper's reference point).
	baseline := rf.NewConfig(rf.Mono1Cycle(rf.Unlimited, rf.Unlimited),
		rf.MaxInstructions(instructions))
	base := rf.Run(baseline, prof)

	// The paper's proposal: a two-level register file cache — a 16-entry
	// one-cycle upper bank over a 128-register lower bank, non-bypass
	// caching, prefetch-first-pair.
	rfc := rf.NewConfig(rf.PaperCache(), rf.MaxInstructions(instructions))
	cacheRes := rf.Run(rfc, prof)

	fmt.Printf("benchmark: %s (%d instructions)\n\n", prof.Name, instructions)
	fmt.Printf("1-cycle single bank:  %s\n", base.String())
	fmt.Printf("register file cache:  %s\n", cacheRes.String())
	fmt.Printf("\nIPC cost of the cache: %.1f%%  (the paper reports ≈10%% for SpecInt95)\n",
		100*(1-cacheRes.IPC/base.IPC))
	st := cacheRes.IntFile
	fmt.Printf("upper-bank hits: %d, bypass reads: %d, demand fetches: %d, prefetches: %d\n",
		st.UpperHits, st.BypassReads, st.DemandFetches, st.Prefetches)
	fmt.Println("\nThe point of the trade: the upper bank is small enough to cycle at")
	fmt.Println("roughly half the monolithic file's access time (see examples/areasweep),")
	fmt.Println("so the small IPC loss buys a much faster clock.")
}
