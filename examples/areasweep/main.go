// Areasweep: explore the area / cycle-time / IPC trade-off that motivates
// the register file cache (the paper's Figures 8 and 9 in miniature),
// through the public rf SDK and its cost-model subpackage rf/area.
//
// For a few matched-area port configurations, this example prints the
// modeled silicon cost and clock period of each architecture next to its
// simulated IPC and the resulting instruction throughput — the number that
// actually decides which design wins.
//
// Run with:
//
//	go run ./examples/areasweep
package main

import (
	"fmt"

	"repro/rf"
	"repro/rf/area"
)

func main() {
	const bench = "vortex"
	const instructions = 80000
	prof, ok := rf.Benchmark(bench)
	if !ok {
		panic("unknown benchmark")
	}

	fmt.Printf("Benchmark: %s — throughput = IPC / cycle time, relative to 1-cycle @ C1\n\n", bench)
	tab := rf.NewTable("config", "architecture", "area(10^4λ^2)", "cycle(ns)", "IPC", "throughput(rel)")

	var baseTP float64
	for _, c := range area.Table2() {
		type row struct {
			arch  string
			spec  rf.RFSpec
			areaV float64
			ns    float64
		}
		rfcCfg := rf.PaperCacheConfig()
		rfcCfg.ReadPorts = c.RFC.Read
		rfcCfg.UpperWritePorts = c.RFC.UpperWrite
		rfcCfg.LowerWritePorts = c.RFC.LowerWrite
		rfcCfg.Buses = c.RFC.Buses
		rows := []row{
			{"1-cycle single bank", rf.Mono1Cycle(c.SB.Read, c.SB.Write), c.SB.Area(), c.SB.CycleTime(1)},
			{"2-cycle, 1 bypass", rf.Mono2CycleSingle(c.SB.Read, c.SB.Write), c.SB.Area(), c.SB.CycleTime(2)},
			{"register file cache", rf.CacheSpec(rfcCfg), c.RFC.Area(), c.RFC.CycleTime()},
		}
		for _, r := range rows {
			res := rf.Run(rf.NewConfig(r.spec, rf.MaxInstructions(instructions)), prof)
			tp := res.IPC / r.ns
			if baseTP == 0 {
				baseTP = tp
			}
			tab.AddRow(c.Name, r.arch,
				fmt.Sprintf("%.0f", r.areaV), fmt.Sprintf("%.2f", r.ns),
				fmt.Sprintf("%.3f", res.IPC), fmt.Sprintf("%.2f", tp/baseTP))
		}
	}
	fmt.Print(tab)
	fmt.Println("\nReading the table: the register file cache gives up a little IPC but")
	fmt.Println("clocks nearly twice as fast as the non-pipelined single bank at the")
	fmt.Println("same silicon budget — the paper's ≈ +90% throughput headline.")
}
