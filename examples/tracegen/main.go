// Tracegen: define a custom synthetic workload profile and study how its
// character (branchiness, ILP, memory behaviour) moves the register file
// architecture trade-off — entirely through the public rf SDK.
//
// This is the extension hook for users who want workloads beyond the
// bundled SPEC95 proxies: an rf.Profile is an ordinary value — build
// one, Validate it, and simulate.
//
// Run with:
//
//	go run ./examples/tracegen
package main

import (
	"fmt"

	"repro/rf"
)

// customProfile builds a pointer-chasing, branchy workload — roughly "an
// interpreter dispatching over a cold heap" — the worst case for deep
// register file pipelines.
func customProfile() rf.Profile {
	p := rf.Profile{
		Name:         "interp",
		StaticInstrs: 9000,
		MaxLoopDepth: 2,
		BodyMean:     7,
		TripMean:     6,

		// Instruction mix: integer-only, load-heavy.
		WIntALU: 50, WIntMul: 1, WIntDiv: 0.2,
		WLoad: 34, WStore: 10,

		BranchEvery:      3,
		FracRandomBranch: 0.25, // indirect-dispatch-like unpredictability
		RandomBias:       0.4,

		DepDistP: 0.6, // tight chains: each step feeds the next
		DestPool: 8,

		FracStream: 0.1,
		WorkingSet: 1 << 21, // 2MB heap: plenty of cache misses

		Seed: 20000605,
	}
	return p
}

func main() {
	prof := customProfile()
	if err := prof.Validate(); err != nil {
		panic(err)
	}
	const instructions = 80000

	specs := []rf.RFSpec{
		rf.Mono1Cycle(rf.Unlimited, rf.Unlimited),
		rf.Mono2CycleFull(rf.Unlimited, rf.Unlimited),
		rf.Mono2CycleSingle(rf.Unlimited, rf.Unlimited),
		rf.PaperCache(),
	}

	fmt.Printf("custom workload %q: %d static instructions\n\n", prof.Name, rf.NewTrace(prof).StaticSize())
	tab := rf.NewTable("register file", "IPC", "mispredict", "D$ miss", "vs 1-cycle")
	var base float64
	for _, spec := range specs {
		r := rf.Run(rf.NewConfig(spec, rf.MaxInstructions(instructions)), prof)
		if base == 0 {
			base = r.IPC
		}
		tab.AddRow(spec.Name,
			fmt.Sprintf("%.3f", r.IPC),
			fmt.Sprintf("%.1f%%", 100*r.MispredictRate()),
			fmt.Sprintf("%.1f%%", 100*r.DCacheMissRate),
			fmt.Sprintf("%+.1f%%", 100*(r.IPC/base-1)))
	}
	fmt.Print(tab)
	fmt.Println("\nBranchy, chain-bound codes are exactly where a pipelined register file")
	fmt.Println("hurts (later branch resolution, serialized dependent issues) and where")
	fmt.Println("the register file cache recovers most of the loss with one bypass level.")
}
