package rf_test

import (
	"go/parser"
	"go/token"
	"io/fs"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
)

// TestExamplesImportOnlyPublicAPI enforces the SDK boundary: the
// runnable programs under examples/ are the public-surface showcase, so
// they must compile against repro/rf (and its subpackages) only — never
// against repro/internal/..., which external consumers cannot import.
// A CI step additionally builds and vets ./examples/... so the surface
// cannot silently break them.
func TestExamplesImportOnlyPublicAPI(t *testing.T) {
	root := filepath.Join("..", "examples")
	fset := token.NewFileSet()
	files := 0
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil || d.IsDir() || !strings.HasSuffix(path, ".go") {
			return err
		}
		files++
		f, err := parser.ParseFile(fset, path, nil, parser.ImportsOnly)
		if err != nil {
			return err
		}
		for _, imp := range f.Imports {
			p, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				return err
			}
			if strings.HasPrefix(p, "repro/internal/") || p == "repro/internal" {
				t.Errorf("%s imports %s; examples must use only the public rf SDK", path, p)
			}
			if strings.HasPrefix(p, "repro/") && p != "repro/rf" && !strings.HasPrefix(p, "repro/rf/") {
				t.Errorf("%s imports %s; examples must go through repro/rf", path, p)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if files == 0 {
		t.Fatal("no example files found; did examples/ move?")
	}
}

// TestRfbatchUsesClientSDK pins the acceptance criterion of the SDK
// carve-out: cmd/rfbatch must not hand-roll the wire protocol (net/http)
// or reach into the internal wire/config packages for the surfaces the
// SDK covers — rf/client is its only path to rfserved. (internal/store
// stays allowed: the disk store behind -store is a server-side concern
// the SDK deliberately does not re-export.)
func TestRfbatchUsesClientSDK(t *testing.T) {
	forbidden := map[string]string{
		"net/http":                "the wire protocol belongs to rf/client",
		"repro/internal/sweep":    "spec/report surfaces are covered by rf",
		"repro/internal/sim":      "config surfaces are covered by rf",
		"repro/internal/server":   "wire types are covered by rf/api",
		"repro/internal/dispatch": "wire types are covered by rf/api",
	}
	fset := token.NewFileSet()
	dir := filepath.Join("..", "cmd", "rfbatch")
	matches, err := filepath.Glob(filepath.Join(dir, "*.go"))
	if err != nil || len(matches) == 0 {
		t.Fatalf("globbing %s: %v (%d files)", dir, err, len(matches))
	}
	for _, path := range matches {
		f, err := parser.ParseFile(fset, path, nil, parser.ImportsOnly)
		if err != nil {
			t.Fatal(err)
		}
		for _, imp := range f.Imports {
			p, _ := strconv.Unquote(imp.Path.Value)
			if why, bad := forbidden[p]; bad {
				t.Errorf("%s imports %s: %s", path, p, why)
			}
		}
	}
}
