// Package api defines the versioned wire schema of the rfserved HTTP
// service: the JSON documents exchanged by submissions, status polls,
// the worker fleet protocol, and the /v1/version endpoint. rf/client,
// internal/server and internal/dispatch all marshal these exact types,
// so the three cannot drift apart.
//
// Versioning: every document that acknowledges a request carries
// "schema" (the spec/wire schema version, Version), and every HTTP
// exchange may negotiate it via the X-RF-API-Version request/response
// header (VersionHeader). A server rejects a mismatched client with
// 400 and an Error body; a client surfaces a mismatched server as a
// typed error (rf/client.ErrVersionMismatch).
//
// The result rows streamed by /v1/sweeps/{id}/results are NDJSON-encoded
// sweep.Row values (rf.Row) — deliberately unstamped, so the stream
// stays byte-identical to local rfbatch output.
package api

import (
	"repro/internal/sim"
	"repro/internal/sweep"
)

// Version is the wire schema version spoken by this build.
const Version = sweep.SchemaVersion

// VersionHeader is the HTTP header carrying the schema version on
// requests (what the client speaks) and responses (what the server
// speaks).
const VersionHeader = "X-RF-API-Version"

// KeyHeader is the HTTP header carrying the caller's API key. A server
// without a tenant registry ignores it; a server with one also accepts
// the key as an "Authorization: Bearer" credential.
const KeyHeader = "X-RF-API-Key"

// Machine-readable codes carried by Error.Code on admission failures.
const (
	// ErrCodeUnauthenticated marks a 401: the presented API key is not
	// registered.
	ErrCodeUnauthenticated = "unauthenticated"
	// ErrCodeForbidden marks a 403: the key is valid but the resource
	// belongs to another tenant.
	ErrCodeForbidden = "forbidden"
	// ErrCodeRateLimited marks a 429 from the per-tenant request rate
	// limiter; retry after Error.RetryAfterMS.
	ErrCodeRateLimited = "rate_limited"
	// ErrCodeOverQuota marks a 429 from a per-tenant capacity bound
	// (concurrent sweeps or queued jobs); retry once earlier work drains.
	ErrCodeOverQuota = "over_quota"
)

// Error is the JSON body of every non-2xx response.
type Error struct {
	Error string `json:"error"`
	// Code, when present, classifies the failure machine-readably (the
	// ErrCode constants). Absent on plain validation errors.
	Code string `json:"code,omitempty"`
	// RetryAfterMS, on 429 responses, is how long the caller should wait
	// before retrying. The same hint rides the Retry-After header in
	// whole seconds; this field keeps the sub-second precision.
	RetryAfterMS int64 `json:"retry_after_ms,omitempty"`
}

// SubmitResponse acknowledges POST /v1/sweeps.
type SubmitResponse struct {
	Schema     int    `json:"schema"`
	ID         string `json:"id"`
	Name       string `json:"name,omitempty"`
	Jobs       int    `json:"jobs"`
	StatusURL  string `json:"status_url"`
	ResultsURL string `json:"results_url"`
	// Tenant and Priority report who the sweep was admitted as and at
	// which scheduling tier. Stamped only by servers with a tenant
	// registry, so untenanted deployments keep their exact wire bytes.
	Tenant   string `json:"tenant,omitempty"`
	Priority int    `json:"priority,omitempty"`
}

// SweepStatus is the status document of one sweep
// (GET /v1/sweeps/{id}, and the acknowledgment of DELETE).
type SweepStatus struct {
	Schema int    `json:"schema"`
	ID     string `json:"id"`
	Name   string `json:"name,omitempty"`
	// State is running, done or canceled.
	State string `json:"state"`
	// Total, Completed, Cached and Simulated count jobs; Simulated is
	// Completed minus Cached. A canceled sweep's skipped jobs are
	// Total - Completed.
	Total     int `json:"total"`
	Completed int `json:"completed"`
	Cached    int `json:"cached"`
	Simulated int `json:"simulated"`
	// Submitted and Finished are RFC 3339 timestamps; Finished is empty
	// while the sweep runs.
	Submitted  string `json:"submitted"`
	Finished   string `json:"finished,omitempty"`
	ResultsURL string `json:"results_url"`
	// Tenant and Priority mirror the SubmitResponse fields; present only
	// on servers with a tenant registry.
	Tenant   string `json:"tenant,omitempty"`
	Priority int    `json:"priority,omitempty"`
	// Recovered marks a sweep that was resumed from the write-ahead
	// journal after a server restart (rfserved -wal-dir); absent on
	// sweeps that ran uninterrupted, so journal-less deployments keep
	// their exact wire bytes.
	Recovered bool `json:"recovered,omitempty"`
}

// SweepList is the body of GET /v1/sweeps.
type SweepList struct {
	Sweeps []SweepStatus `json:"sweeps"`
}

// VersionInfo is the body of GET /v1/version.
type VersionInfo struct {
	// Schema is the wire/spec schema version the server speaks.
	Schema int `json:"schema"`
	// Module is the server's module build version.
	Module string `json:"module"`
}

// Query ops understood by POST/GET /v1/query (Query.Op).
const (
	// QueryOpRows pages the matching rows themselves (cursor-paginated).
	QueryOpRows = "rows"
	// QueryOpAggregate groups matching rows and reduces metrics per group.
	QueryOpAggregate = "aggregate"
	// QueryOpPareto extracts the (area, IPC) Pareto frontier over the
	// matching architectures.
	QueryOpPareto = "pareto"
	// QueryOpSeries extracts per-architecture benchmark IPC series with
	// suite harmonic means — enough to render the paper's Figure 6
	// server-side.
	QueryOpSeries = "series"
)

// QueryMetric names one reduction inside an aggregate query: an operator
// (sum, mean, min, max) applied to a row metric (ipc, cycles,
// instructions, mispredict_rate, icache_miss_rate, dcache_miss_rate,
// area).
type QueryMetric struct {
	Op     string `json:"op"`
	Metric string `json:"metric"`
}

// Query is the versioned query document of GET/POST /v1/query. POST
// carries it as the request body; GET carries the same JSON URL-encoded
// in the q parameter. Empty filter lists match everything; filters
// compose conjunctively (a row must match every non-empty filter).
type Query struct {
	// Schema is the wire schema version; 0 (absent) means Version.
	Schema int `json:"schema,omitempty"`
	// Op selects the query shape (the QueryOp constants); default rows.
	Op string `json:"op,omitempty"`
	// Sweep restricts the query to one sweep id ("" = every sweep the
	// caller may see).
	Sweep string `json:"sweep,omitempty"`
	// Benchmarks, Archs and Families filter rows by exact benchmark name,
	// architecture display name, and register file family (the
	// rf.Families registry names: 1cycle, rfcache, ...).
	Benchmarks []string `json:"benchmarks,omitempty"`
	Archs      []string `json:"archs,omitempty"`
	Families   []string `json:"families,omitempty"`
	// Dims filters on integer architecture dimensions, keyed by the sweep
	// matrix vocabulary: read_ports, write_ports, buses, upper_sizes,
	// banks, clusters, phys_regs. A value of 0 matches unlimited ports,
	// mirroring the spec convention.
	Dims map[string][]int `json:"dims,omitempty"`
	// GroupBy names the aggregate grouping columns, in key order:
	// benchmark, arch, family, suite, sweep. Empty aggregates everything
	// into one group.
	GroupBy []string `json:"group_by,omitempty"`
	// Metrics lists the aggregate reductions; empty means mean ipc.
	Metrics []QueryMetric `json:"metrics,omitempty"`
	// Limit bounds one rows page (default 1000, max 10000); other ops
	// ignore it.
	Limit int `json:"limit,omitempty"`
	// Cursor resumes a rows query from a previous page's NextCursor.
	Cursor string `json:"cursor,omitempty"`
}

// QueryRow is one matched row in a rows-query page: the streamed NDJSON
// row fields plus the warehouse's derived columns (owning sweep, family,
// suite, modeled area). The transport-level cached flag is deliberately
// absent — the warehouse indexes results, not delivery provenance, so a
// rebuilt index answers byte-identically.
type QueryRow struct {
	Sweep        string  `json:"sweep"`
	Benchmark    string  `json:"benchmark"`
	Arch         string  `json:"arch"`
	Family       string  `json:"family"`
	FP           bool    `json:"fp,omitempty"`
	Seed         uint64  `json:"seed,omitempty"`
	Instructions uint64  `json:"instructions"`
	Cycles       uint64  `json:"cycles"`
	IPC          float64 `json:"ipc"`
	MispredRate  float64 `json:"mispredict_rate"`
	ICacheMiss   float64 `json:"icache_miss_rate"`
	DCacheMiss   float64 `json:"dcache_miss_rate"`
	// Area is the modeled register file area in the paper's 10⁴λ² unit;
	// 0 when the configuration has unbounded ports (area is unmodeled).
	Area float64 `json:"area,omitempty"`
	Key  string  `json:"key"`
}

// QueryGroup is one aggregate bucket: its group-by key values (parallel
// to Query.GroupBy), the row count, and one value per requested metric
// named "op_metric" (e.g. "mean_ipc").
type QueryGroup struct {
	Key    []string           `json:"key"`
	Count  int                `json:"count"`
	Values map[string]float64 `json:"values"`
}

// SeriesPoint is one benchmark's mean IPC inside a series.
type SeriesPoint struct {
	Benchmark string  `json:"benchmark"`
	IPC       float64 `json:"ipc"`
}

// QuerySeries is one architecture's figure series: per-benchmark mean
// IPC in suite order (SPECint95 then SPECfp95), with the suite harmonic
// means the paper's Figure 6 plots. A suite mean is 0 when the filter
// matched no benchmark of that suite.
type QuerySeries struct {
	Arch     string        `json:"arch"`
	Points   []SeriesPoint `json:"points"`
	IntHmean float64       `json:"int_hmean,omitempty"`
	FPHmean  float64       `json:"fp_hmean,omitempty"`
}

// ParetoPoint is one non-dominated architecture on the (area, IPC)
// frontier, area ascending.
type ParetoPoint struct {
	Arch string  `json:"arch"`
	IPC  float64 `json:"ipc"`
	Area float64 `json:"area"`
}

// QueryResult is the body of a successful /v1/query response. Matched
// counts every row passing the filters, independent of pagination; only
// the field matching Op is populated.
type QueryResult struct {
	Schema  int    `json:"schema"`
	Op      string `json:"op"`
	Matched int    `json:"matched"`
	// Rows is one page of a rows query; NextCursor resumes the next page
	// and is empty on the last one.
	Rows       []QueryRow    `json:"rows,omitempty"`
	Groups     []QueryGroup  `json:"groups,omitempty"`
	Series     []QuerySeries `json:"series,omitempty"`
	Frontier   []ParetoPoint `json:"frontier,omitempty"`
	NextCursor string        `json:"next_cursor,omitempty"`
}

// Object is the wire document of GET/PUT /v1/objects/{key}: one stored
// sweep result with its content key embedded. The embedded key mirrors
// the on-disk entry format — a reader verifies it against the key it
// asked for, so a truncated, foreign, or misrouted document degrades to
// a miss instead of serving a wrong result.
type Object struct {
	Key    string     `json:"key"`
	Result sim.Result `json:"result"`
}

// RegisterRequest is the body of POST /v1/workers/register.
type RegisterRequest struct {
	// Name labels the worker in listings (defaults to its id).
	Name string `json:"name,omitempty"`
	// Capacity is the worker's in-flight budget: the most jobs it may
	// hold leases on at once. Clamped to [1, the coordinator's
	// MaxCapacity].
	Capacity int `json:"capacity"`
	// ObjectsURL, when set, is the base URL where this worker serves its
	// local result store over GET /v1/objects/{key}. The coordinator
	// routes store misses to advertising workers by shard ownership.
	ObjectsURL string `json:"objects_url,omitempty"`
}

// RegisterResponse acknowledges a registration.
type RegisterResponse struct {
	ID string `json:"id"`
	// Capacity is the granted in-flight budget — the request's capacity
	// clamped to the coordinator's MaxCapacity. The worker must budget
	// against this value, not the one it asked for.
	Capacity int `json:"capacity"`
	// LeaseMS is the lease TTL: poll at least this often.
	LeaseMS int64 `json:"lease_ms"`
	// PollMS is how long an idle poll may be held open server-side.
	PollMS int64 `json:"poll_ms"`
	// StoreShards announces the coordinator's shard-bucket count for
	// store inventory. Workers advertise the shards their local store
	// holds (PollRequest.StoreShards) in this modulus; 0 means the
	// fleet-peer store tier is off.
	StoreShards int `json:"store_shards,omitempty"`
}

// TaskResult reports one finished job inside a poll request.
type TaskResult struct {
	Task   uint64     `json:"task"`
	Key    string     `json:"key"`
	Result sim.Result `json:"result"`
}

// Assignment hands one job to a worker inside a poll response.
type Assignment struct {
	Task uint64    `json:"task"`
	Key  string    `json:"key"`
	Job  sweep.Job `json:"job"`
}

// PollRequest is the body of POST /v1/workers/{id}/poll: completed
// results to report plus how many new jobs the worker wants.
type PollRequest struct {
	Results []TaskResult `json:"results,omitempty"`
	// Holding inventories every task id the worker believes it holds —
	// in-flight simulations plus finished-but-unreported results
	// (Results included). The coordinator requeues any lease absent from
	// it: that assignment traveled in a poll response the worker never
	// received, and would otherwise stay a ghost forever, since the
	// worker's continued polling keeps renewing the lease.
	Holding []uint64 `json:"holding,omitempty"`
	Want    int      `json:"want"`
	// StoreShards is the full shard inventory of the worker's local
	// result store, in the modulus announced at registration — the
	// buckets holding at least one object. Sent complete on every poll
	// that carries it (the coordinator replaces, not merges), omitted
	// when the worker has no store or nothing resident yet.
	StoreShards []int `json:"store_shards,omitempty"`
}

// PollResponse carries new leases back to the worker.
type PollResponse struct {
	Jobs    []Assignment `json:"jobs"`
	LeaseMS int64        `json:"lease_ms"`
}

// FleetStats is a point-in-time snapshot of coordinator fleet activity
// (embedded in GET /v1/workers and the dispatch metrics).
type FleetStats struct {
	// Workers is the number of currently registered workers.
	Workers int `json:"workers"`
	// Pending and Inflight count live tasks queued / leased right now.
	Pending  int `json:"pending"`
	Inflight int `json:"inflight"`
	// Enqueued counts tasks ever created (deduplicated Simulate calls
	// share a task and count once).
	Enqueued uint64 `json:"enqueued"`
	// Dispatched counts job leases handed out, including retries.
	Dispatched uint64 `json:"dispatched"`
	// Completed counts results accepted from workers.
	Completed uint64 `json:"completed"`
	// Requeued counts leases that expired and went back in the queue.
	Requeued uint64 `json:"requeued"`
	// Fallbacks counts tasks the coordinator simulated locally.
	Fallbacks uint64 `json:"fallbacks"`
	// Late counts results that arrived for unknown or finished tasks.
	Late uint64 `json:"late"`
	// Expired counts workers deregistered for missing their lease.
	Expired uint64 `json:"expired"`
	// Adopted counts live leases handed back to workers that reported
	// holding a task the coordinator believed was pending — the
	// crash-resume path (a restarted coordinator re-adopting the fleet's
	// in-flight work) and the expired-but-alive path. Omitted when zero
	// so journal-less deployments keep their exact wire bytes.
	Adopted uint64 `json:"adopted,omitempty"`
}

// WorkerInfo is one row of GET /v1/workers.
type WorkerInfo struct {
	ID         string `json:"id"`
	Name       string `json:"name"`
	Capacity   int    `json:"capacity"`
	Inflight   int    `json:"inflight"`
	Completed  uint64 `json:"completed"`
	Registered string `json:"registered"`
	// LeaseExpires is when the worker is deregistered unless it polls.
	LeaseExpires string `json:"lease_expires"`
	// ObjectsURL and StoreShards mirror the worker's store
	// advertisement: where it serves /v1/objects and how many shard
	// buckets of its inventory are populated. Omitted when the worker
	// advertises no store.
	ObjectsURL  string `json:"objects_url,omitempty"`
	StoreShards int    `json:"store_shards,omitempty"`
}

// WorkerList is the body of GET /v1/workers.
type WorkerList struct {
	Workers []WorkerInfo `json:"workers"`
	Stats   FleetStats   `json:"stats"`
}
