// Package area re-exports the register-file area and access-time cost
// model for SDK consumers: the analytical model calibrated against the
// paper's Table 2, the matched-area configurations C1–C4, and the
// candidate-search helpers behind Figure 8/9-style studies. See
// internal/area for the model's functional forms and calibration.
package area

import "repro/internal/area"

// Bits is the register width in bits.
const Bits = area.Bits

// AreaUnit is the paper's area unit: 10⁴ λ².
const AreaUnit = area.AreaUnit

// SingleBank describes a monolithic register file configuration for the
// cost model.
type SingleBank = area.SingleBank

// TwoLevel describes a register file cache configuration for the cost
// model.
type TwoLevel = area.TwoLevel

// PaperConfig is one row of the paper's Table 2: matched-area
// configurations of the architectures.
type PaperConfig = area.PaperConfig

// Published holds the paper's printed Table 2 reference values.
type Published = area.Published

// BankArea returns the area in λ² of a bank with n registers, r read
// ports and w write ports.
func BankArea(n, r, w int) float64 { return area.BankArea(n, r, w) }

// BankAccessTime returns the access time in ns of a bank with n
// registers and p total ports.
func BankAccessTime(n, p int) float64 { return area.BankAccessTime(n, p) }

// Table2 returns the paper's four matched-area configurations C1–C4.
func Table2() []PaperConfig { return area.Table2() }

// PublishedTable2 returns the paper's printed Table 2 numbers.
func PublishedTable2() []Published { return area.PublishedTable2() }

// SingleBankCandidates enumerates single-banked configurations with
// read ports in [2, maxRead] and write ports in [1, maxWrite].
func SingleBankCandidates(regs, maxRead, maxWrite int) []SingleBank {
	return area.SingleBankCandidates(regs, maxRead, maxWrite)
}

// TwoLevelCandidates enumerates register-file-cache configurations over
// the plausible neighborhood of the paper's Table 2.
func TwoLevelCandidates(upperRegs, lowerRegs, maxRead, maxWrite, maxBuses int) []TwoLevel {
	return area.TwoLevelCandidates(upperRegs, lowerRegs, maxRead, maxWrite, maxBuses)
}

// FastestSingleBankUnder returns the single-banked candidate with the
// most total ports fitting the area budget.
func FastestSingleBankUnder(budget float64, candidates []SingleBank) (SingleBank, bool) {
	return area.FastestSingleBankUnder(budget, candidates)
}

// FastestTwoLevelUnder returns the two-level candidate with the most
// upper-bank bandwidth fitting the area budget.
func FastestTwoLevelUnder(budget float64, candidates []TwoLevel) (TwoLevel, bool) {
	return area.FastestTwoLevelUnder(budget, candidates)
}
