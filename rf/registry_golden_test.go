package rf_test

import (
	"bytes"
	"os"
	"strconv"
	"testing"

	"repro/rf"
)

// fakeResult derives a deterministic result from the job's content
// address — the same derivation that produced the committed golden with
// the pre-refactor (switch-arm) expansion code. Any drift in family
// naming, dimension ordering, config construction or key hashing breaks
// byte identity.
func fakeResult(j rf.Job) rf.Result {
	v, _ := strconv.ParseUint(string(j.Key())[:16], 16, 64)
	instr := j.Config.MaxInstructions
	cycles := instr/2 + v%(instr/2)
	branches := v % 10007
	return rf.Result{
		Instructions:   instr,
		Cycles:         cycles,
		IPC:            float64(instr) / float64(cycles),
		Branches:       branches,
		Mispredicts:    branches % 97,
		ICacheMissRate: float64(v%13) / 1000,
		DCacheMissRate: float64(v%29) / 1000,
	}
}

// TestRegistryGoldenRoundTrip expands a spec covering every built-in
// architecture family through the registry-backed sweep path and checks
// the NDJSON rows are byte-identical to the golden generated before the
// registry refactor. This pins, for each family: the kind name, the
// dimension cross-product order, the spec display names, and the
// content-address of every expanded configuration.
func TestRegistryGoldenRoundTrip(t *testing.T) {
	specRaw, err := os.ReadFile("testdata/registry_spec.json")
	if err != nil {
		t.Fatal(err)
	}
	spec, err := rf.ParseSpec(bytes.NewReader(specRaw))
	if err != nil {
		t.Fatal(err)
	}

	// The spec must exercise every built-in family (other tests may
	// register additional user-defined families in this process; those
	// are outside the golden's scope).
	builtins := []string{"1cycle", "2cycle", "2cycle1b", "rfcache", "onelevel", "replicated"}
	kinds := map[string]bool{}
	for _, m := range spec.Architectures {
		kinds[m.Kind] = true
	}
	for _, name := range builtins {
		if _, ok := rf.LookupFamily(name); !ok {
			t.Errorf("built-in family %q not registered", name)
		}
		if !kinds[name] {
			t.Errorf("spec misses built-in family %q; extend testdata/registry_spec.json (and regenerate the golden)", name)
		}
	}

	jobs, err := spec.Jobs()
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	for _, j := range jobs {
		row := rf.RowOf(j, rf.Outcome{Result: fakeResult(j), Key: j.Key()})
		if err := rf.WriteRow(&buf, row); err != nil {
			t.Fatal(err)
		}
	}

	golden, err := os.ReadFile("testdata/registry_golden.ndjson")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), golden) {
		got, want := buf.Bytes(), golden
		gl, wl := bytes.Split(got, []byte("\n")), bytes.Split(want, []byte("\n"))
		for i := 0; i < len(gl) && i < len(wl); i++ {
			if !bytes.Equal(gl[i], wl[i]) {
				t.Fatalf("registry expansion diverged from pre-refactor golden at row %d:\ngot:  %s\nwant: %s",
					i, gl[i], wl[i])
			}
		}
		t.Fatalf("registry expansion row count changed: got %d rows, golden has %d", len(gl)-1, len(wl)-1)
	}
}
