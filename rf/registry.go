package rf

import "repro/internal/arch"

// Family is one registered register file family: a name, a parameter
// schema (Dims), an optional validator, and a builder turning one
// parameter point into an RFSpec. The four paper families are built in;
// RegisterFamily adds user-defined ones, which then resolve by name
// everywhere a built-in does — sweep specs, the rfserved service, and
// the CLIs.
type Family = arch.Family

// Dim is one dimension of a family's parameter schema.
type Dim = arch.Dim

// Values holds one chosen value per dimension for a single expansion
// point.
type Values = arch.Values

// ArchMatrix is one "architectures" element of a sweep spec: a family
// name plus per-dimension value lists, expanded to their cross product.
type ArchMatrix = arch.Matrix

// ArchPoint is one expanded architecture configuration.
type ArchPoint = arch.Point

// IntDim declares an integer dimension with a default.
func IntDim(name string, def int) Dim { return arch.IntDim(name, def) }

// StrDim declares a string dimension with a default and a per-value
// check.
func StrDim(name, def string, check func(string) error) Dim {
	return arch.StrDim(name, def, check)
}

// RegisterFamily adds a family to the global registry. It fails on an
// empty or duplicate name and on a nil Build.
func RegisterFamily(f Family) error { return arch.Register(f) }

// LookupFamily resolves a family by kind name, case-insensitively.
func LookupFamily(kind string) (Family, bool) { return arch.Lookup(kind) }

// Families returns every registered family, sorted by name.
func Families() []Family { return arch.Families() }

// Ports maps the sweep-spec port convention (0 or negative = unlimited)
// onto Unlimited; family Build functions use it to interpret dimension
// values.
func Ports(v int) int { return arch.Ports(v) }

// PortLabel renders a port count for spec names ("∞" for Unlimited).
func PortLabel(v int) string { return arch.PortLabel(v) }

// ParseCachingPolicy parses a caching policy name: nonbypass, ready,
// all or none (case-insensitive).
func ParseCachingPolicy(s string) (CachingPolicy, error) { return arch.ParseCachingPolicy(s) }

// ParsePrefetchPolicy parses a prefetch policy name: demand/on-demand
// or firstpair/first-pair (case-insensitive).
func ParsePrefetchPolicy(s string) (PrefetchPolicy, error) { return arch.ParsePrefetchPolicy(s) }
