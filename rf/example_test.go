package rf_test

import (
	"fmt"
	"strings"

	"repro/rf"
)

// ExampleNewConfig builds a configuration with functional options and
// runs one benchmark on the paper's register file cache. The simulator
// is deterministic, so the result is stable across runs and machines.
func ExampleNewConfig() {
	prof, ok := rf.Benchmark("compress")
	if !ok {
		panic("unknown benchmark")
	}
	cfg := rf.NewConfig(rf.PaperCache(), rf.MaxInstructions(20000))
	res := rf.Run(cfg, prof)
	fmt.Printf("%s on %q: IPC %.3f\n", prof.Name, cfg.RF.Name, res.IPC)
	// Output: compress on "rf-cache (non-bypass caching + prefetch-first-pair)": IPC 2.001
}

// ExampleRegisterFamily registers a user-defined register file family
// and expands a sweep spec against it. Registered families resolve by
// name everywhere built-ins do: sweep specs (rfbatch and the rfserved
// service), rfsim -rf, and the rf runner.
func ExampleRegisterFamily() {
	err := rf.RegisterFamily(rf.Family{
		Name: "examplebanked",
		Doc:  "one-level multi-banked file at a fixed write budget",
		Dims: []rf.Dim{rf.IntDim("banks", 2), rf.IntDim("read_ports", 4)},
		Build: func(v rf.Values) (rf.RFSpec, error) {
			return rf.OneLevelSpec(rf.OneLevelConfig{
				Banks:             v.Int("banks"),
				ReadPortsPerBank:  rf.Ports(v.Int("read_ports")),
				WritePortsPerBank: 2,
			}), nil
		},
	})
	if err != nil {
		panic(err)
	}

	spec, err := rf.ParseSpec(strings.NewReader(`{
	  "instructions": 5000,
	  "benchmarks": ["compress"],
	  "architectures": [{"kind": "examplebanked", "banks": [2, 4]}]
	}`))
	if err != nil {
		panic(err)
	}
	jobs, err := spec.Jobs()
	if err != nil {
		panic(err)
	}
	for _, j := range jobs {
		fmt.Println(j.Config.RF.Name)
	}
	// Output:
	// one-level (2 banks, round-robin)
	// one-level (4 banks, round-robin)
}
