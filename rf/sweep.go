package rf

import (
	"io"

	"repro/internal/sweep"
)

// Spec is a sweep matrix: benchmarks × architectures × seeds, each run
// for the same instruction budget. It is the JSON input of cmd/rfbatch
// and the submission body of the rfserved service (rf/client).
type Spec = sweep.Spec

// Job is one simulation of a sweep: a workload profile plus a full
// processor configuration.
type Job = sweep.Job

// Key is the content address of a Job.
type Key = sweep.Key

// Row is one job's flattened measurements — the NDJSON line format
// streamed by rfserved and written by rfbatch.
type Row = sweep.Row

// Report is the emission-ready form of a finished sweep.
type Report = sweep.Report

// Runner executes job batches through a bounded worker pool with a
// content-addressed result cache.
type Runner = sweep.Runner

// RunnerConfig configures a Runner.
type RunnerConfig = sweep.RunnerConfig

// Outcome is one job's result plus its cache provenance.
type Outcome = sweep.Outcome

// Progress reports one finished job to a progress callback.
type Progress = sweep.Progress

// CacheStats counts cache effectiveness across a Runner's lifetime.
type CacheStats = sweep.CacheStats

// Cache is the pluggable result cache behind a Runner.
type Cache = sweep.Cache

// ParseSpec decodes and validates a JSON sweep specification. Unknown
// fields and unsupported schema versions are rejected loudly.
func ParseSpec(r io.Reader) (*Spec, error) { return sweep.ParseSpec(r) }

// NewRunner returns a Runner with the given configuration.
func NewRunner(cfg RunnerConfig) *Runner { return sweep.NewRunner(cfg) }

// NewMemCache returns an unbounded in-memory result cache.
func NewMemCache() Cache { return sweep.NewMemCache() }

// Tiered combines a fast front cache with a durable back cache
// (write-through, promote-on-hit).
func Tiered(front, back Cache) Cache { return sweep.Tiered(front, back) }

// NewReport flattens parallel job/outcome slices into a report.
func NewReport(name string, jobs []Job, outs []Outcome, stats CacheStats) *Report {
	return sweep.NewReport(name, jobs, outs, stats)
}

// RowOf flattens one job outcome into a report row.
func RowOf(j Job, o Outcome) Row { return sweep.RowOf(j, o) }

// WriteRow emits one row as a single compact NDJSON line.
func WriteRow(w io.Writer, row Row) error { return sweep.WriteRow(w, row) }

// ReadRows decodes an NDJSON row stream — the inverse of WriteRow, and
// the reassembly seam for consumers of a remote results stream.
func ReadRows(r io.Reader) ([]Row, error) { return sweep.ReadRows(r) }

// Simulate runs one job to completion (the Runner's default execution
// hook).
func Simulate(j Job) Result { return sweep.Simulate(j) }

// SimulateLockstep runs a batch of jobs sharing one workload through a
// single lockstep front-end pass (the Runner's default batch hook);
// results are bit-identical to simulating each job alone.
func SimulateLockstep(jobs []Job) []Result { return sweep.SimulateLockstep(jobs) }

// LockstepGroups partitions jobs into lockstep batches of at most width
// same-workload jobs (width ≤ 0: unbounded), returning index groups.
func LockstepGroups(jobs []Job, width int) [][]int { return sweep.LockstepGroups(jobs, width) }

// DefaultLockstepWidth is the batch width cap used when
// RunnerConfig.Lockstep is 0.
const DefaultLockstepWidth = sweep.DefaultLockstepWidth
