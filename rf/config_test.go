package rf_test

import (
	"reflect"
	"strings"
	"testing"

	"repro/internal/sim"
	"repro/rf"
)

// TestNewConfigMatchesDefaultConfig pins cache-key compatibility: a
// config built through the SDK's functional options must be identical
// to one built by the internal constructor — otherwise SDK-submitted
// jobs and sweep-expanded jobs would hash to different content
// addresses and the shared result cache would split.
func TestNewConfigMatchesDefaultConfig(t *testing.T) {
	specs := []rf.RFSpec{
		rf.Mono1Cycle(rf.Unlimited, rf.Unlimited),
		rf.Mono2CycleSingle(4, 3),
		rf.PaperCache(),
	}
	for _, spec := range specs {
		got := rf.NewConfig(spec, rf.MaxInstructions(60000))
		want := sim.DefaultConfig(spec, 60000)
		if !reflect.DeepEqual(got, want) {
			t.Errorf("NewConfig(%s) = %+v\nwant %+v", spec.Name, got, want)
		}
	}
	// The SDK default budget matches the sweep spec default.
	if got := rf.NewConfig(rf.PaperCache()); got.MaxInstructions != rf.DefaultInstructions ||
		!reflect.DeepEqual(got, sim.DefaultConfig(rf.PaperCache(), rf.DefaultInstructions)) {
		t.Errorf("NewConfig() default = %+v", got)
	}
}

// TestNewConfigOptions pins the option semantics, including the derived
// warmup default (a quarter of the budget) and its explicit override in
// either order.
func TestNewConfigOptions(t *testing.T) {
	cfg := rf.NewConfig(rf.PaperCache(), rf.MaxInstructions(40000))
	if cfg.WarmupInstructions != 10000 {
		t.Errorf("derived warmup = %d, want 10000", cfg.WarmupInstructions)
	}
	for _, opts := range [][]rf.Option{
		{rf.Warmup(5), rf.MaxInstructions(40000)},
		{rf.MaxInstructions(40000), rf.Warmup(5)},
	} {
		if cfg := rf.NewConfig(rf.PaperCache(), opts...); cfg.WarmupInstructions != 5 {
			t.Errorf("explicit warmup lost: got %d", cfg.WarmupInstructions)
		}
	}

	cfg = rf.NewConfig(rf.Mono1Cycle(rf.Unlimited, rf.Unlimited),
		rf.PhysRegs(96), rf.WindowSize(256), rf.LSQSize(32),
		rf.Widths(4, 4, 4), rf.Predictor(14, 6), rf.ValueStats())
	if cfg.PhysRegs != 96 || cfg.WindowSize != 256 || cfg.LSQSize != 32 ||
		cfg.FetchWidth != 4 || cfg.PredictorBits != 14 || cfg.HistoryBits != 6 || !cfg.ValueStats {
		t.Errorf("options not applied: %+v", cfg)
	}
	if err := cfg.Validate(); err != nil {
		t.Errorf("option-built config invalid: %v", err)
	}
}

// TestRegisterFamilyUserDefined registers a new family through the
// public API and expands it through a sweep spec by name — the
// extensibility contract of the registry.
func TestRegisterFamilyUserDefined(t *testing.T) {
	err := rf.RegisterFamily(rf.Family{
		Name: "testfam-userdef",
		Doc:  "test-only family",
		Dims: []rf.Dim{rf.IntDim("banks", 4), rf.IntDim("read_ports", 0)},
		Build: func(v rf.Values) (rf.RFSpec, error) {
			spec := rf.OneLevelSpec(rf.OneLevelConfig{
				Banks:             v.Int("banks"),
				ReadPortsPerBank:  rf.Ports(v.Int("read_ports")),
				WritePortsPerBank: rf.Ports(0),
			})
			spec.Name = "testfam"
			return spec, nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}

	spec, err := rf.ParseSpec(strings.NewReader(
		`{"benchmarks":["compress"],"architectures":[{"kind":"testfam-userdef","banks":[2,8],"read_ports":[4]}]}`))
	if err != nil {
		t.Fatalf("spec naming a user-defined family rejected: %v", err)
	}
	jobs, err := spec.Jobs()
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) != 2 {
		t.Fatalf("expanded %d jobs, want 2 (banks cross product)", len(jobs))
	}
	if kind := jobs[0].Config.RF.Kind; kind != rf.RFOneLevel {
		t.Errorf("job built wrong spec kind %v", kind)
	}

	// Duplicate and malformed registrations fail loudly.
	if err := rf.RegisterFamily(rf.Family{Name: "testfam-userdef", Build: func(rf.Values) (rf.RFSpec, error) { return rf.RFSpec{}, nil }}); err == nil {
		t.Error("duplicate family registration accepted")
	}
	if err := rf.RegisterFamily(rf.Family{Name: "nobuild"}); err == nil {
		t.Error("family without Build accepted")
	}
	if err := rf.RegisterFamily(rf.Family{Build: func(rf.Values) (rf.RFSpec, error) { return rf.RFSpec{}, nil }}); err == nil {
		t.Error("family without name accepted")
	}
	// A dimension the sweep matrix cannot carry must fail at
	// registration, not panic on the first spec naming the family.
	build := func(rf.Values) (rf.RFSpec, error) { return rf.RFSpec{}, nil }
	for _, f := range []rf.Family{
		{Name: "baddim-int", Dims: []rf.Dim{rf.IntDim("depth", 2)}, Build: build},
		{Name: "baddim-space", Dims: []rf.Dim{rf.StrDim("banks", "x", nil)}, Build: build},
		{Name: "baddim-dup", Dims: []rf.Dim{rf.IntDim("banks", 2), rf.IntDim("banks", 4)}, Build: build},
	} {
		if err := rf.RegisterFamily(f); err == nil {
			t.Errorf("family %q with bad schema accepted", f.Name)
		}
	}
}
