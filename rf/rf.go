// Package rf is the public SDK of the register-file-architecture
// simulator: typed simulation configuration, the architecture-family
// registry, workload profiles, and the sweep engine, versioned under one
// schema.
//
// It is the stable entry point for programs outside this repository; the
// implementation lives under internal/ and is re-exported here as type
// aliases and thin wrappers, so values flow freely between the SDK and
// the internal packages without conversion.
//
// Build a configuration with functional options and simulate:
//
//	prof, _ := rf.Benchmark("gcc")
//	cfg := rf.NewConfig(rf.PaperCache(), rf.MaxInstructions(100000))
//	res := rf.Run(cfg, prof)
//	fmt.Println(res.IPC)
//
// Architecture families — the paper's four plus any user-defined ones —
// are resolved by name through one registry (RegisterFamily, Families):
// sweep-spec expansion, server-side validation and the CLIs all share
// it. Sweep matrices (Spec) expand benchmarks × architectures × seeds
// into jobs and run through a cached Runner; rf/client talks to a
// remote rfserved instance with the same schema.
//
// SchemaVersion stamps the JSON surfaces (sweep specs, the rfserved
// wire types in rf/api) and is negotiated over HTTP via the
// X-RF-API-Version header.
package rf

import (
	"runtime/debug"

	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/sweep"
	"repro/internal/trace"
)

// SchemaVersion is the version of the JSON sweep-spec and wire schema
// spoken by this build (see rf/api for the HTTP surface). It is the
// one sweep.SchemaVersion, re-exported, so the validator, the wire
// header and the -version stamps cannot drift apart.
const SchemaVersion = sweep.SchemaVersion

// ModuleVersion returns the module's build version ("(devel)" for
// source builds without version stamping).
func ModuleVersion() string {
	if bi, ok := debug.ReadBuildInfo(); ok && bi.Main.Version != "" {
		return bi.Main.Version
	}
	return "(devel)"
}

// Unlimited marks a port, bus or bandwidth count as unconstrained.
const Unlimited = core.Unlimited

// Config is the full processor configuration (the paper's Table 1
// defaults); construct it with NewConfig.
type Config = sim.Config

// RFSpec describes the register file architecture for both the integer
// and FP files.
type RFSpec = sim.RFSpec

// RFKind selects a register file architecture family.
type RFKind = sim.RFKind

// Register file architecture kinds.
const (
	RFMonolithic = sim.RFMonolithic
	RFCache      = sim.RFCache
	RFOneLevel   = sim.RFOneLevel
	RFReplicated = sim.RFReplicated
)

// Result holds the measurements of one simulation run.
type Result = sim.Result

// FileStats is the per-register-file statistics block of a Result.
type FileStats = core.FileStats

// Histogram is the distribution type of a Result's value statistics.
type Histogram = stats.Histogram

// MonolithicConfig configures a single-banked register file.
type MonolithicConfig = core.MonolithicConfig

// CacheConfig configures the two-level register file cache.
type CacheConfig = core.CacheConfig

// OneLevelConfig configures the one-level multi-banked organization.
type OneLevelConfig = core.OneLevelConfig

// ReplicatedConfig configures the fully-replicated clustered file.
type ReplicatedConfig = core.ReplicatedConfig

// CachingPolicy selects what the register file cache caches.
type CachingPolicy = core.CachingPolicy

// Caching policies.
const (
	CacheNonBypass = core.CacheNonBypass
	CacheReady     = core.CacheReady
	CacheAll       = core.CacheAll
	CacheNone      = core.CacheNone
)

// PrefetchPolicy selects how the register file cache fetches from the
// lower bank.
type PrefetchPolicy = core.PrefetchPolicy

// Prefetch policies.
const (
	FetchOnDemand     = core.FetchOnDemand
	PrefetchFirstPair = core.PrefetchFirstPair
)

// PaperCacheConfig returns the paper's best register-file-cache
// configuration (16-entry upper bank, non-bypass caching,
// prefetch-first-pair, unlimited bandwidth).
func PaperCacheConfig() CacheConfig { return core.PaperCacheConfig() }

// Mono1Cycle returns the paper's baseline: one-cycle single-banked file
// with its single level of bypass.
func Mono1Cycle(readPorts, writePorts int) RFSpec { return sim.Mono1Cycle(readPorts, writePorts) }

// Mono2CycleFull returns the two-cycle file with two bypass levels.
func Mono2CycleFull(readPorts, writePorts int) RFSpec {
	return sim.Mono2CycleFull(readPorts, writePorts)
}

// Mono2CycleSingle returns the two-cycle file with one (the last)
// bypass level.
func Mono2CycleSingle(readPorts, writePorts int) RFSpec {
	return sim.Mono2CycleSingle(readPorts, writePorts)
}

// CacheSpec returns a register file cache spec.
func CacheSpec(cfg CacheConfig) RFSpec { return sim.CacheSpec(cfg) }

// PaperCache returns the paper's best register-file-cache spec.
func PaperCache() RFSpec { return sim.PaperCache() }

// OneLevelSpec returns a one-level multi-banked spec.
func OneLevelSpec(cfg OneLevelConfig) RFSpec { return sim.OneLevelSpec(cfg) }

// ReplicatedSpec returns a fully-replicated clustered spec
// (21264-style).
func ReplicatedSpec(cfg ReplicatedConfig) RFSpec { return sim.ReplicatedSpec(cfg) }

// Profile is one synthetic workload: the SPEC95 proxies ship built in
// (Benchmarks), and a custom Profile is an ordinary value — fill the
// fields, Validate, and simulate.
type Profile = trace.Profile

// Trace generates the dynamic instruction stream of a Profile.
type Trace = trace.Generator

// NewTrace returns a deterministic trace generator for the profile.
func NewTrace(p Profile) *Trace { return trace.New(p) }

// Benchmark resolves a built-in workload by name.
func Benchmark(name string) (Profile, bool) { return trace.ByName(name) }

// Benchmarks returns all 18 built-in SPEC95 proxy workloads.
func Benchmarks() []Profile { return trace.All() }

// SpecInt95 returns the integer subset of the built-in workloads.
func SpecInt95() []Profile { return trace.SpecInt95() }

// SpecFP95 returns the floating-point subset of the built-in workloads.
func SpecFP95() []Profile { return trace.SpecFP95() }

// Run simulates one workload on one configuration and returns its
// measurements. The run is deterministic in (cfg, p).
func Run(cfg Config, p Profile) Result {
	return sim.New(cfg, trace.New(p)).Run()
}

// Table renders aligned text tables (a convenience for example
// programs and reports).
type Table = stats.Table

// NewTable returns a table with the given column headers.
func NewTable(header ...string) *Table { return stats.NewTable(header...) }
