package client_test

import (
	"bytes"
	"context"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/server"
	"repro/internal/sim"
	"repro/internal/sweep"
	"repro/rf"
	"repro/rf/api"
	"repro/rf/client"
)

// TestClientAgainstServer drives the real rfserved handler through the
// public client: version negotiation, submission, streaming, status.
// This is the compile-and-runtime guarantee that rf/client, rf/api and
// internal/server speak the same wire schema.
func TestClientAgainstServer(t *testing.T) {
	srv := server.New(server.Config{
		Simulate: func(j sweep.Job) sim.Result {
			return sim.Result{Instructions: j.Config.MaxInstructions, Cycles: 1000, IPC: 2}
		},
	})
	defer srv.Shutdown(context.Background())
	ts := httptest.NewServer(srv)
	defer ts.Close()

	ctx := context.Background()
	cl := client.New(ts.URL)

	v, err := cl.Version(ctx)
	if err != nil {
		t.Fatalf("Version: %v", err)
	}
	if v.Schema != rf.SchemaVersion || v.Module == "" {
		t.Errorf("Version = %+v, want schema %d and a module string", v, rf.SchemaVersion)
	}

	spec, err := rf.ParseSpec(strings.NewReader(
		`{"schema":1,"instructions":5000,"benchmarks":["compress","swim"],"architectures":[{"kind":"1cycle"},{"kind":"onelevel","banks":[2,4]}]}`))
	if err != nil {
		t.Fatal(err)
	}
	ack, err := cl.Submit(ctx, spec)
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	if ack.Schema != api.Version || ack.Jobs != 6 {
		t.Errorf("ack = %+v, want schema %d, 6 jobs", ack, api.Version)
	}

	var out bytes.Buffer
	if err := cl.StreamResults(ctx, ack.ID, &out); err != nil {
		t.Fatalf("StreamResults: %v", err)
	}
	rows, err := rf.ReadRows(bytes.NewReader(out.Bytes()))
	if err != nil {
		t.Fatalf("ReadRows on streamed NDJSON: %v", err)
	}
	if len(rows) != 6 {
		t.Fatalf("streamed %d rows, want 6", len(rows))
	}

	st, err := cl.Status(ctx, ack.ID)
	if err != nil {
		t.Fatalf("Status: %v", err)
	}
	if st.Schema != api.Version || st.State != "done" || st.Completed != 6 {
		t.Errorf("status = %+v, want schema %d, done, 6 completed", st, api.Version)
	}

	ls, err := cl.Sweeps(ctx)
	if err != nil {
		t.Fatalf("Sweeps: %v", err)
	}
	if len(ls.Sweeps) != 1 || ls.Sweeps[0].ID != ack.ID {
		t.Errorf("list = %+v, want the one submitted sweep", ls.Sweeps)
	}
}
