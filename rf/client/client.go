// Package client is the Go client for the rfserved HTTP API: sweep
// submission, NDJSON result streaming (with mid-stream resume), status
// polling, cancellation, worker-fleet registration, and version
// negotiation. cmd/rfbatch -remote and the internal/dispatch worker
// loop are built on it, so every consumer of the service — CLI, fleet
// or external program — shares one wire implementation.
//
//	cl := client.New("http://coordinator:8090")
//	ack, err := cl.Submit(ctx, spec)
//	...
//	err = cl.StreamResults(ctx, ack.ID, os.Stdout)
//	st, err := cl.Status(ctx, ack.ID)
//
// Every request carries the X-RF-API-Version header; a server speaking
// a different schema version is surfaced as *ErrVersionMismatch.
// Idempotent requests (GET, DELETE) are retried on network errors, 5xx
// responses and 429s, with capped, fully-jittered exponential backoff
// that honors the server's Retry-After hint; submissions are not
// retried (the caller decides whether re-submitting is safe).
// WithAPIKey authenticates every request against a multi-tenant server.
package client

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand/v2"
	"net/http"
	"strconv"
	"strings"
	"time"

	"repro/rf"
	"repro/rf/api"
)

// APIError is a non-2xx response from the server, carrying the error
// body (the message of the {"error": ...} document when the server sent
// one, otherwise the raw body).
type APIError struct {
	// StatusCode is the HTTP status.
	StatusCode int
	// Message is the server's error text.
	Message string
	// Code is the machine-readable failure class on admission errors
	// (the api.ErrCode constants); empty otherwise.
	Code string
	// RetryAfter is the server's back-off hint on 429 responses (from
	// the body's retry_after_ms, falling back to the Retry-After
	// header); 0 when the server sent none.
	RetryAfter time.Duration
}

func (e *APIError) Error() string {
	return fmt.Sprintf("rf: server returned %d: %s", e.StatusCode, e.Message)
}

// ErrVersionMismatch reports a server speaking a different wire schema
// version than this client.
type ErrVersionMismatch struct {
	// Client and Server are the two schema versions; Server is 0 when
	// the server's header did not parse.
	Client, Server int
}

func (e *ErrVersionMismatch) Error() string {
	return fmt.Sprintf("rf: API schema version mismatch: client speaks %d, server speaks %d",
		e.Client, e.Server)
}

// Client talks to one rfserved instance. It is safe for concurrent use.
type Client struct {
	base       string
	hc         *http.Client
	retries    int
	backoff    time.Duration
	maxBackoff time.Duration
	apiKey     string
	logf       func(string, ...any)
}

// Option configures a Client.
type Option func(*Client)

// WithHTTPClient supplies the underlying HTTP client (for custom
// transports or timeouts). The default has no fixed timeout: result
// streams and long polls are held open by design, so deadlines belong
// on the per-call context.
func WithHTTPClient(hc *http.Client) Option {
	return func(c *Client) {
		if hc != nil {
			c.hc = hc
		}
	}
}

// WithRetries sets how many times an idempotent request is retried
// after a transient failure (default 3; 0 disables retrying).
func WithRetries(n int) Option {
	return func(c *Client) { c.retries = n }
}

// WithBackoff sets the initial retry backoff, doubled per attempt up to
// the WithMaxBackoff cap (default 100ms).
func WithBackoff(d time.Duration) Option {
	return func(c *Client) {
		if d > 0 {
			c.backoff = d
		}
	}
}

// WithMaxBackoff caps the doubled retry backoff (default 5s).
func WithMaxBackoff(d time.Duration) Option {
	return func(c *Client) {
		if d > 0 {
			c.maxBackoff = d
		}
	}
}

// WithAPIKey authenticates every request with the tenant API key
// (carried in the X-RF-API-Key header). Servers without a tenant
// registry ignore it.
func WithAPIKey(key string) Option {
	return func(c *Client) { c.apiKey = key }
}

// WithLogf receives retry/resume lifecycle messages (default: silent).
func WithLogf(f func(string, ...any)) Option {
	return func(c *Client) {
		if f != nil {
			c.logf = f
		}
	}
}

// New returns a client for the rfserved instance at base
// (e.g. "http://coordinator:8090"; a trailing slash is normalized
// away so ServeMux path-cleaning cannot 301 a POST into a GET).
func New(base string, opts ...Option) *Client {
	c := &Client{
		base:       strings.TrimSuffix(base, "/"),
		hc:         &http.Client{},
		retries:    3,
		backoff:    100 * time.Millisecond,
		maxBackoff: 5 * time.Second,
		logf:       func(string, ...any) {},
	}
	for _, o := range opts {
		o(c)
	}
	return c
}

// BaseURL returns the normalized server base URL.
func (c *Client) BaseURL() string { return c.base }

// transient reports whether an attempt's failure is worth retrying:
// network errors, 5xx responses and 429 rate limits, never context
// cancellation.
func transient(err error) bool {
	if err == nil || errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return false
	}
	var ae *APIError
	if errors.As(err, &ae) {
		return ae.StatusCode >= 500 || ae.StatusCode == http.StatusTooManyRequests
	}
	var vm *ErrVersionMismatch
	return !errors.As(err, &vm)
}

// jitter spreads a delay uniformly over (0, d] (full jitter), so many
// clients retrying the same incident spread out instead of thundering
// back in lockstep.
func jitter(d time.Duration) time.Duration {
	if d <= 0 {
		return d
	}
	return time.Duration(1 + rand.Int64N(int64(d)))
}

// roundTrip performs one attempt: send, negotiate version, surface
// non-2xx as *APIError. On success the caller owns resp.Body.
func (c *Client) roundTrip(ctx context.Context, method, path string, body []byte) (*http.Response, error) {
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.base+path, rd)
	if err != nil {
		return nil, err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	req.Header.Set(api.VersionHeader, strconv.Itoa(api.Version))
	if c.apiKey != "" {
		req.Header.Set(api.KeyHeader, c.apiKey)
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return nil, err
	}
	if h := resp.Header.Get(api.VersionHeader); h != "" {
		if v, err := strconv.Atoi(h); err != nil || v != api.Version {
			drain(resp)
			return nil, &ErrVersionMismatch{Client: api.Version, Server: v}
		}
	}
	if resp.StatusCode < 200 || resp.StatusCode >= 300 {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		ae := &APIError{StatusCode: resp.StatusCode, Message: string(bytes.TrimSpace(msg))}
		var e api.Error
		if json.Unmarshal(msg, &e) == nil && e.Error != "" {
			ae.Message = e.Error
			ae.Code = e.Code
			ae.RetryAfter = time.Duration(e.RetryAfterMS) * time.Millisecond
		}
		if ae.RetryAfter <= 0 {
			// Fall back to the standard header (whole seconds).
			if secs, err := strconv.Atoi(resp.Header.Get("Retry-After")); err == nil && secs > 0 {
				ae.RetryAfter = time.Duration(secs) * time.Second
			}
		}
		drain(resp)
		return nil, ae
	}
	return resp, nil
}

func drain(resp *http.Response) {
	io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<16))
	resp.Body.Close()
}

// request is roundTrip plus retry for idempotent requests: exponential
// backoff doubled per attempt, capped at maxBackoff, fully jittered
// (uniform over (0, backoff]) so concurrent retriers fan out; a 429's
// Retry-After hint raises the delay when the server asks for longer.
func (c *Client) request(ctx context.Context, method, path string, body []byte, idempotent bool) (*http.Response, error) {
	backoff := c.backoff
	for attempt := 0; ; attempt++ {
		resp, err := c.roundTrip(ctx, method, path, body)
		if err == nil {
			return resp, nil
		}
		if !idempotent || attempt >= c.retries || !transient(err) {
			return nil, err
		}
		delay := jitter(backoff)
		var ae *APIError
		if errors.As(err, &ae) && ae.RetryAfter > delay {
			delay = ae.RetryAfter
		}
		c.logf("rf/client: %s %s failed (retry %d/%d in %v): %v",
			method, path, attempt+1, c.retries, delay, err)
		select {
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-time.After(delay):
		}
		backoff = min(backoff*2, c.maxBackoff)
	}
}

// doJSON performs a request and decodes the response document into out
// (which may be nil to discard it).
func (c *Client) doJSON(ctx context.Context, method, path string, in, out any, idempotent bool) error {
	var body []byte
	if in != nil {
		var err error
		if body, err = json.Marshal(in); err != nil {
			return err
		}
	}
	resp, err := c.request(ctx, method, path, body, idempotent)
	if err != nil {
		return err
	}
	defer drain(resp)
	if out == nil {
		return nil
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// Submit posts a sweep spec and returns the acknowledgment. It is not
// retried automatically: a duplicate submission starts a duplicate
// sweep (the server's result cache makes that cheap, but it is the
// caller's call).
func (c *Client) Submit(ctx context.Context, spec *rf.Spec) (*api.SubmitResponse, error) {
	var ack api.SubmitResponse
	if err := c.doJSON(ctx, http.MethodPost, "/v1/sweeps", spec, &ack, false); err != nil {
		return nil, err
	}
	return &ack, nil
}

// Status fetches one sweep's status document.
func (c *Client) Status(ctx context.Context, id string) (*api.SweepStatus, error) {
	var st api.SweepStatus
	if err := c.doJSON(ctx, http.MethodGet, "/v1/sweeps/"+id, nil, &st, true); err != nil {
		return nil, err
	}
	return &st, nil
}

// Sweeps lists every sweep the server knows.
func (c *Client) Sweeps(ctx context.Context) (*api.SweepList, error) {
	var ls api.SweepList
	if err := c.doJSON(ctx, http.MethodGet, "/v1/sweeps", nil, &ls, true); err != nil {
		return nil, err
	}
	return &ls, nil
}

// Cancel cancels a running sweep and returns its status.
func (c *Client) Cancel(ctx context.Context, id string) (*api.SweepStatus, error) {
	var st api.SweepStatus
	if err := c.doJSON(ctx, http.MethodDelete, "/v1/sweeps/"+id, nil, &st, true); err != nil {
		return nil, err
	}
	return &st, nil
}

// Query evaluates one warehouse query document server-side and returns
// a single result page. POST is used even though the query only reads:
// query documents outgrow URLs, and the request is idempotent so it is
// retried like a GET.
func (c *Client) Query(ctx context.Context, q *api.Query) (*api.QueryResult, error) {
	var res api.QueryResult
	if err := c.doJSON(ctx, http.MethodPost, "/v1/query", q, &res, true); err != nil {
		return nil, err
	}
	return &res, nil
}

// QueryPages evaluates a query and walks its cursor pagination, calling
// fn once per page until the server reports no next cursor or fn
// returns an error (which stops the walk and is returned). The caller's
// query document is not mutated.
func (c *Client) QueryPages(ctx context.Context, q *api.Query, fn func(*api.QueryResult) error) error {
	page := *q
	for {
		res, err := c.Query(ctx, &page)
		if err != nil {
			return err
		}
		if err := fn(res); err != nil {
			return err
		}
		if res.NextCursor == "" {
			return nil
		}
		page.Cursor = res.NextCursor
	}
}

// Version fetches the server's module and schema version.
func (c *Client) Version(ctx context.Context) (*api.VersionInfo, error) {
	var v api.VersionInfo
	if err := c.doJSON(ctx, http.MethodGet, "/v1/version", nil, &v, true); err != nil {
		return nil, err
	}
	return &v, nil
}

// Results opens the sweep's live NDJSON result stream. The caller owns
// the ReadCloser; the stream ends when the sweep reaches a terminal
// state. Most callers want StreamResults, which survives a mid-stream
// disconnect.
func (c *Client) Results(ctx context.Context, id string) (io.ReadCloser, error) {
	resp, err := c.request(ctx, http.MethodGet, "/v1/sweeps/"+id+"/results", nil, true)
	if err != nil {
		return nil, err
	}
	return resp.Body, nil
}

// Wait polls the sweep's status until it leaves the running state (or
// ctx ends), and returns the terminal status document.
func (c *Client) Wait(ctx context.Context, id string) (*api.SweepStatus, error) {
	backoff := c.backoff
	for {
		st, err := c.Status(ctx, id)
		if err != nil {
			return nil, err
		}
		if st.State != "running" {
			return st, nil
		}
		select {
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-time.After(backoff):
		}
		if backoff < time.Second {
			backoff *= 2
		}
	}
}

// StreamResults copies the sweep's NDJSON rows to w, verbatim and in
// job order, until the sweep reaches a terminal state. A mid-stream
// disconnect does not fail the call: the client falls back to status
// polling (Wait) until the sweep is terminal, re-opens the results
// stream, skips the rows already delivered, and continues — only whole
// lines are ever written, so the output is byte-identical to an
// uninterrupted stream.
func (c *Client) StreamResults(ctx context.Context, id string, w io.Writer) error {
	delivered := 0
	for attempt := 0; ; attempt++ {
		rc, err := c.Results(ctx, id)
		if err != nil {
			return err
		}
		n, err := copyNDJSON(w, rc, delivered)
		rc.Close()
		delivered += n
		if err == nil {
			// The server closes the stream only on a terminal sweep state,
			// so a clean end means everything has been delivered.
			return nil
		}
		// A failure writing to the caller's destination is not a broken
		// stream: re-downloading cannot fix it, so surface it at once.
		var we *destWriteError
		if errors.As(err, &we) {
			return we.err
		}
		if ctx.Err() != nil {
			return ctx.Err()
		}
		if attempt >= c.retries {
			return fmt.Errorf("rf: results stream of sweep %s broken after %d resumes: %w",
				id, attempt, err)
		}
		c.logf("rf/client: results stream of %s broken after %d rows (resuming): %v",
			id, delivered, err)
		// Let the sweep finish while the connection recovers; the rows
		// are replayable afterwards.
		if _, err := c.Wait(ctx, id); err != nil {
			return err
		}
	}
}

// destWriteError marks a failure writing to the caller's destination,
// as opposed to a failure reading the network stream — only the latter
// is worth a resume.
type destWriteError struct{ err error }

func (e *destWriteError) Error() string { return e.err.Error() }

// copyNDJSON writes the stream's complete lines to w, skipping the
// first skip lines, and returns how many new lines it wrote. A stream
// ending without a final newline reports io.ErrUnexpectedEOF so the
// caller resumes rather than emitting a truncated row; errors from w
// come back wrapped in *destWriteError.
func copyNDJSON(w io.Writer, r io.Reader, skip int) (int, error) {
	br := bufio.NewReader(r)
	written := 0
	for {
		line, err := br.ReadBytes('\n')
		if len(line) > 0 && line[len(line)-1] == '\n' {
			if skip > 0 {
				skip--
			} else {
				if _, werr := w.Write(line); werr != nil {
					return written, &destWriteError{werr}
				}
				written++
			}
		} else if len(line) > 0 {
			if err == nil || err == io.EOF {
				err = io.ErrUnexpectedEOF
			}
			return written, err
		}
		if err != nil {
			if err == io.EOF {
				return written, nil
			}
			return written, err
		}
	}
}

// RegisterWorker registers this process with a coordinator's worker
// fleet. It is not retried automatically (a retried registration leaks
// a ghost worker until its lease expires); internal/dispatch.RunWorker
// wraps it in its own retry loop.
func (c *Client) RegisterWorker(ctx context.Context, req api.RegisterRequest) (*api.RegisterResponse, error) {
	var resp api.RegisterResponse
	if err := c.doJSON(ctx, http.MethodPost, "/v1/workers/register", req, &resp, false); err != nil {
		return nil, err
	}
	return &resp, nil
}

// PollWorker reports finished results and leases new jobs — the
// heartbeat exchange of the fleet protocol. Not retried automatically:
// the worker loop owns pacing and must reconcile held leases itself.
func (c *Client) PollWorker(ctx context.Context, workerID string, req api.PollRequest) (*api.PollResponse, error) {
	var resp api.PollResponse
	if err := c.doJSON(ctx, http.MethodPost, "/v1/workers/"+workerID+"/poll", req, &resp, false); err != nil {
		return nil, err
	}
	return &resp, nil
}

// Workers lists the coordinator's registered fleet.
func (c *Client) Workers(ctx context.Context) (*api.WorkerList, error) {
	var ls api.WorkerList
	if err := c.doJSON(ctx, http.MethodGet, "/v1/workers", nil, &ls, true); err != nil {
		return nil, err
	}
	return &ls, nil
}
