package client

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/rf"
	"repro/rf/api"
)

func testSpec(t *testing.T) *rf.Spec {
	t.Helper()
	spec, err := rf.ParseSpec(strings.NewReader(
		`{"schema":1,"instructions":5000,"benchmarks":["compress"],"architectures":[{"kind":"1cycle"}]}`))
	if err != nil {
		t.Fatal(err)
	}
	return spec
}

// TestSubmitSurfacesErrorBody pins the failure contract of Submit: a
// non-2xx response yields an *APIError carrying the server's error
// message, not a generic status-code error.
func TestSubmitSurfacesErrorBody(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusRequestEntityTooLarge)
		fmt.Fprintln(w, `{"error": "sweep: spec expands to 9000 jobs, limit is 100"}`)
	}))
	defer ts.Close()

	_, err := New(ts.URL).Submit(context.Background(), testSpec(t))
	var ae *APIError
	if !errors.As(err, &ae) {
		t.Fatalf("Submit error = %v (%T), want *APIError", err, err)
	}
	if ae.StatusCode != http.StatusRequestEntityTooLarge {
		t.Errorf("StatusCode = %d, want 413", ae.StatusCode)
	}
	if want := "sweep: spec expands to 9000 jobs, limit is 100"; ae.Message != want {
		t.Errorf("Message = %q, want %q", ae.Message, want)
	}
}

// TestSubmitNonJSONErrorBody: a proxy-style plain-text error body is
// surfaced raw.
func TestSubmitNonJSONErrorBody(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "bad gateway", http.StatusBadGateway)
	}))
	defer ts.Close()

	cl := New(ts.URL, WithRetries(0))
	_, err := cl.Submit(context.Background(), testSpec(t))
	var ae *APIError
	if !errors.As(err, &ae) || ae.StatusCode != http.StatusBadGateway || ae.Message != "bad gateway" {
		t.Fatalf("Submit error = %v, want *APIError{502, bad gateway}", err)
	}
}

// TestVersionMismatch pins the negotiation contract: a server speaking
// a different schema version yields a typed *ErrVersionMismatch, on
// any verb, regardless of status code.
func TestVersionMismatch(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if got := r.Header.Get(api.VersionHeader); got != fmt.Sprint(api.Version) {
			t.Errorf("request version header = %q, want %d", got, api.Version)
		}
		w.Header().Set(api.VersionHeader, "2")
		w.WriteHeader(http.StatusBadRequest)
		fmt.Fprintln(w, `{"error": "rfserved: API schema version \"1\" not supported (this server speaks 2)"}`)
	}))
	defer ts.Close()

	cl := New(ts.URL)
	_, err := cl.Submit(context.Background(), testSpec(t))
	var vm *ErrVersionMismatch
	if !errors.As(err, &vm) {
		t.Fatalf("Submit error = %v (%T), want *ErrVersionMismatch", err, err)
	}
	if vm.Client != api.Version || vm.Server != 2 {
		t.Errorf("mismatch = client %d / server %d, want %d / 2", vm.Client, vm.Server, api.Version)
	}

	// Even a 200 from a wrong-version server must not be trusted.
	if _, err := cl.Status(context.Background(), "s000001"); !errors.As(err, &vm) {
		t.Errorf("Status error = %v, want *ErrVersionMismatch", err)
	}
}

// TestStreamResultsResumesAfterDisconnect pins the resume contract: a
// results stream killed mid-row falls back to status polling until the
// sweep is terminal, reopens the stream, skips what was already
// delivered, and produces byte-identical output.
func TestStreamResultsResumesAfterDisconnect(t *testing.T) {
	rows := make([]string, 6)
	for i := range rows {
		rows[i] = fmt.Sprintf(`{"benchmark":"b%d","arch":"a","instructions":1,"cycles":1,"ipc":1,"mispredict_rate":0,"icache_miss_rate":0,"dcache_miss_rate":0,"key":"k%d","cached":false}`, i, i)
	}
	full := strings.Join(rows, "\n") + "\n"

	var resultCalls, statusCalls atomic.Int64
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/sweeps/s000001/results", func(w http.ResponseWriter, r *http.Request) {
		if resultCalls.Add(1) == 1 {
			// Two complete rows, then a truncated third row, then the
			// connection dies.
			partial := rows[0] + "\n" + rows[1] + "\n" + rows[2][:20]
			w.Write([]byte(partial))
			if f, ok := w.(http.Flusher); ok {
				f.Flush()
			}
			panic(http.ErrAbortHandler)
		}
		w.Write([]byte(full))
	})
	mux.HandleFunc("GET /v1/sweeps/s000001", func(w http.ResponseWriter, r *http.Request) {
		st := api.SweepStatus{Schema: api.Version, ID: "s000001", State: "running", Total: 6}
		if statusCalls.Add(1) >= 3 {
			st.State = "done"
			st.Completed = 6
		}
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprintf(w, `{"schema":%d,"id":%q,"state":%q,"total":%d,"completed":%d}`,
			st.Schema, st.ID, st.State, st.Total, st.Completed)
	})
	ts := httptest.NewServer(mux)
	defer ts.Close()

	var out bytes.Buffer
	cl := New(ts.URL, WithBackoff(time.Millisecond), WithLogf(t.Logf))
	if err := cl.StreamResults(context.Background(), "s000001", &out); err != nil {
		t.Fatalf("StreamResults: %v", err)
	}
	if out.String() != full {
		t.Fatalf("resumed stream diverged:\ngot:\n%swant:\n%s", out.String(), full)
	}
	if n := statusCalls.Load(); n < 3 {
		t.Errorf("expected ≥3 status polls during the disconnect, saw %d", n)
	}
	if n := resultCalls.Load(); n != 2 {
		t.Errorf("expected exactly 2 stream opens, saw %d", n)
	}
}

// TestStreamResultsGivesUp: a stream that keeps dying eventually
// returns the underlying error instead of looping forever.
func TestStreamResultsGivesUp(t *testing.T) {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/sweeps/s1/results", func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte(`{"truncated`))
		if f, ok := w.(http.Flusher); ok {
			f.Flush()
		}
		panic(http.ErrAbortHandler)
	})
	mux.HandleFunc("GET /v1/sweeps/s1", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintf(w, `{"schema":%d,"id":"s1","state":"done"}`, api.Version)
	})
	ts := httptest.NewServer(mux)
	defer ts.Close()

	cl := New(ts.URL, WithRetries(2), WithBackoff(time.Millisecond))
	err := cl.StreamResults(context.Background(), "s1", &bytes.Buffer{})
	if err == nil || !strings.Contains(err.Error(), "broken after") {
		t.Fatalf("StreamResults error = %v, want broken-stream error", err)
	}
}

type failingWriter struct{ n int }

func (w *failingWriter) Write(p []byte) (int, error) {
	if w.n--; w.n < 0 {
		return 0, fmt.Errorf("broken pipe")
	}
	return len(p), nil
}

// TestStreamResultsWriteErrorIsFatal: a failure writing to the caller's
// destination must surface immediately — re-downloading the stream
// cannot fix a broken destination.
func TestStreamResultsWriteErrorIsFatal(t *testing.T) {
	var streamOpens atomic.Int64
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/sweeps/s1/results", func(w http.ResponseWriter, r *http.Request) {
		streamOpens.Add(1)
		w.Write([]byte("{\"a\":1}\n{\"a\":2}\n{\"a\":3}\n"))
	})
	ts := httptest.NewServer(mux)
	defer ts.Close()

	cl := New(ts.URL, WithBackoff(time.Millisecond))
	err := cl.StreamResults(context.Background(), "s1", &failingWriter{n: 1})
	if err == nil || !strings.Contains(err.Error(), "broken pipe") {
		t.Fatalf("StreamResults error = %v, want the destination's broken pipe", err)
	}
	if n := streamOpens.Load(); n != 1 {
		t.Errorf("stream opened %d times, want 1 (no resume on a destination failure)", n)
	}
}

// TestGetRetriesTransient: idempotent requests retry 5xx with backoff
// and succeed once the server recovers.
func TestGetRetriesTransient(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) < 3 {
			http.Error(w, "warming up", http.StatusServiceUnavailable)
			return
		}
		fmt.Fprintf(w, `{"schema":%d,"id":"s1","state":"done"}`, api.Version)
	}))
	defer ts.Close()

	st, err := New(ts.URL, WithBackoff(time.Millisecond)).Status(context.Background(), "s1")
	if err != nil {
		t.Fatalf("Status: %v", err)
	}
	if st.State != "done" || calls.Load() != 3 {
		t.Errorf("state %q after %d calls, want done after 3", st.State, calls.Load())
	}
}
